open Relational

let customer_schema =
  Schema.make
    [ ("number", Value.TInt); ("name", Value.TStr); ("plan", Value.TStr) ]

let call_schema =
  Schema.make
    [
      ("number", Value.TInt);
      ("callee", Value.TInt);
      ("minutes", Value.TInt);
      ("cost", Value.TFloat);
    ]

let plans = [| "basic"; "evening"; "unlimited-weekend"; "business" |]

let customers rng ~n =
  List.init n (fun i ->
      let number = i + 1 in
      Tuple.make
        [
          Value.Int number;
          Value.Str (Printf.sprintf "subscriber-%05d" number);
          Value.Str (Rng.pick rng plans);
        ])

let call rng zipf =
  let number = Zipf.sample zipf rng in
  let callee = Rng.int_range rng 1 (Zipf.n zipf) in
  let minutes = 1 + Rng.int rng 60 in
  let cost = float_of_int minutes *. 0.11 in
  Tuple.make
    [ Value.Int number; Value.Int callee; Value.Int minutes; Value.Float cost ]

(* Zipf-keyed call stream, mirroring [Banking.txn_stream]. *)
let call_stream rng zipf ~n = List.init n (fun _ -> call rng zipf)
