open Relational

(** Consumer-banking workload (§1: the ATM dollar_balance summary field
    that must be current before the next withdrawal — the
    Chemical-Bank example). *)

val account_schema : Schema.t
(** (acct:int, name:string, branch:string) — key acct. *)

val txn_schema : Schema.t
(** User schema of the transactions chronicle:
    (acct:int, kind:string ["deposit"|"withdrawal"], amount:float).
    Withdrawals carry negative amounts so that SUM(amount) is the
    balance. *)

val accounts : Rng.t -> n:int -> Tuple.t list
val txn : Rng.t -> Zipf.t -> Tuple.t

val txn_stream : Rng.t -> Zipf.t -> n:int -> Tuple.t list
(** [n] transactions whose account keys follow the Zipf law ([s = 0]
    degenerates to uniform) — the key stream the skew bench (E19) and
    the heavy-light differential tests append one by one. *)
