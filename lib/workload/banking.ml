open Relational

let account_schema =
  Schema.make
    [ ("acct", Value.TInt); ("name", Value.TStr); ("branch", Value.TStr) ]

let txn_schema =
  Schema.make
    [ ("acct", Value.TInt); ("kind", Value.TStr); ("amount", Value.TFloat) ]

let branches = [| "chelsea"; "soho"; "hoboken"; "princeton"; "newark" |]

let accounts rng ~n =
  List.init n (fun i ->
      let acct = i + 1 in
      Tuple.make
        [
          Value.Int acct;
          Value.Str (Printf.sprintf "holder-%05d" acct);
          Value.Str (Rng.pick rng branches);
        ])

let txn rng zipf =
  let acct = Zipf.sample zipf rng in
  let withdrawal = Rng.int rng 3 < 2 in
  let magnitude = 5. +. Rng.float rng 495. in
  let kind, amount =
    if withdrawal then ("withdrawal", -.magnitude) else ("deposit", magnitude)
  in
  Tuple.make [ Value.Int acct; Value.Str kind; Value.Float amount ]

(* A whole key stream at once: [n] transactions whose account keys
   follow the given Zipf law (s = 0 degenerates to uniform) — the
   skew-bench / differential-test driver. *)
let txn_stream rng zipf ~n = List.init n (fun _ -> txn rng zipf)
