open Relational

(** Cellular-telephony workload (§1's motivating example: total minutes
    this billing month displayed at phone power-on; §5.3's tiered
    discount plan). *)

val customer_schema : Schema.t
(** (number:int, name:string, plan:string) — key number. *)

val call_schema : Schema.t
(** User schema of the calls chronicle:
    (number:int, callee:int, minutes:int, cost:float). *)

val customers : Rng.t -> n:int -> Tuple.t list
val call : Rng.t -> Zipf.t -> Tuple.t

val call_stream : Rng.t -> Zipf.t -> n:int -> Tuple.t list
(** [n] calls whose caller keys follow the Zipf law — see
    {!Banking.txn_stream}. *)

val plans : string array
