(** Typed atomic values: the domain of chronicle and relation attributes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

val ty_of : t -> ty option
(** [ty_of v] is the type of [v], or [None] for [Null]. *)

val ty_name : ty -> string

val compare : t -> t -> int
(** Total order used by ordered indexes and set operations.  Numeric
    values compare numerically across [Int]/[Float]; [Null] sorts first;
    otherwise constructors are ordered [Null < Bool < numeric < Str]. *)

val equal : t -> t -> bool
val hash : t -> int

val is_null : t -> bool

(** {2 Arithmetic}  Numeric helpers used by aggregates; raise
    [Invalid_argument] on non-numeric input. *)

val to_float : t -> float
val to_int : t -> int
val add : t -> t -> t
(** Numeric addition; [Int + Int] stays [Int], otherwise [Float]. *)

val sub : t -> t -> t
(** Numeric subtraction, mirroring {!add}; the aggregate-inversion
    primitive of weighted (retraction) deltas. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_sexp : t -> Sexp.t
(** Tagged, lossless encoding (floats in hex notation). *)

val of_sexp : Sexp.t -> t
(** Raises [Failure] on malformed input. *)

(** {2 List keys}  Composite keys (e.g. group keys, index keys). *)

val compare_list : t list -> t list -> int
val equal_list : t list -> t list -> bool
val hash_list : t list -> int
val pp_list : Format.formatter -> t list -> unit
