type op = Eq | Ne | Le | Lt | Gt | Ge

type operand = Attr of string | Const of Value.t

type t =
  | True
  | False
  | Cmp of operand * op * operand
  | And of t * t
  | Or of t * t
  | Not of t

let eval_op op a b =
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Le -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b <= 0
  | Lt -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b < 0
  | Gt -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b > 0
  | Ge -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b >= 0

let compile schema pred =
  Stats.incr Stats.Predicate_compile;
  let operand = function
    | Attr name ->
        let i = Schema.pos schema name in
        fun (t : Tuple.t) -> t.(i)
    | Const v -> fun _ -> v
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (a, op, b) ->
        let fa = operand a and fb = operand b in
        fun t -> eval_op op (fa t) (fb t)
    | And (p, q) ->
        let fp = go p and fq = go q in
        fun t -> fp t && fq t
    | Or (p, q) ->
        let fp = go p and fq = go q in
        fun t -> fp t || fq t
    | Not p ->
        let fp = go p in
        fun t -> not (fp t)
  in
  go pred

let eval schema pred t = compile schema pred t

let attrs pred =
  let rec go acc = function
    | True | False -> acc
    | Cmp (a, _, b) ->
        let add acc = function Attr n -> n :: acc | Const _ -> acc in
        add (add acc a) b
    | And (p, q) | Or (p, q) -> go (go acc p) q
    | Not p -> go acc p
  in
  List.sort_uniq String.compare (go [] pred)

let is_ca_form pred =
  let rec disjunct = function
    | True | False | Cmp _ -> true
    | Or (p, q) -> disjunct p && disjunct q
    | And _ | Not _ -> false
  in
  disjunct pred

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let ( =% ) a v = Cmp (Attr a, Eq, Const v)
let ( <>% ) a v = Cmp (Attr a, Ne, Const v)
let ( <% ) a v = Cmp (Attr a, Lt, Const v)
let ( <=% ) a v = Cmp (Attr a, Le, Const v)
let ( >% ) a v = Cmp (Attr a, Gt, Const v)
let ( >=% ) a v = Cmp (Attr a, Ge, Const v)
let attr_eq a b = Cmp (Attr a, Eq, Attr b)

let op_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Le -> "<="
  | Lt -> "<"
  | Gt -> ">"
  | Ge -> ">="

let pp_operand ppf = function
  | Attr a -> Format.pp_print_string ppf a
  | Const v -> Value.pp ppf v

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (a, op, b) ->
      Format.fprintf ppf "%a %s %a" pp_operand a (op_name op) pp_operand b
  | And (p, q) -> Format.fprintf ppf "(%a AND %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a OR %a)" pp p pp q
  | Not p -> Format.fprintf ppf "NOT (%a)" pp p
