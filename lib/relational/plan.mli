(** Physical query plans: compile an {!Ra} expression once, run it many
    times with zero per-call recompilation.

    {!Ra.eval_naive} re-derives [schema_of] at every node on every call,
    recompiles every predicate and projector, and rebuilds every join
    hash table from scratch.  A compiled plan performs all of that
    analysis a single time:

    - schema resolution and static type checks happen at {!compile}
      ([Ra.Type_error] is raised there, not during execution);
    - selections are compiled to position-resolved closures, and
      conjunctive equality selections over a base relation with a
      covering index become index probes ([Stats.Index_scan]) instead of
      full scan + filter;
    - equi-join build tables are memoized across executions, keyed by
      the {!Relation.version}s beneath the build side
      ([Stats.Build_reuse]); any base-relation mutation invalidates them;
    - grouping reuses {!Groupby.compiled}.

    {!compile} bumps [Stats.Plan_compile]; during steady-state
    maintenance of cached plans the per-batch [Predicate_compile] /
    [Projector_compile] counters stay at zero — the constant-factor
    claim the benchmarks measure.

    Holding a plan is the intended usage for any caller that evaluates
    the same expression repeatedly (the chronicle layer caches one plan
    per persistent view); [Ra.eval] itself is [run ∘ compile]. *)

type t

val compile : Ra.t -> t
(** One-time analysis.  Raises [Ra.Type_error] on ill-formed
    expressions (the same errors {!Ra.schema_of} reports). *)

val run : t -> Tuple.t list
(** Execute against the current contents of the underlying relations.
    No recompilation: the only per-call work is data flow. *)

val eval : Ra.t -> Tuple.t list
(** [run ∘ compile]; what {!Ra.eval} dispatches to. *)

val compile_parallel : Exec.Pool.t -> Ra.t -> t
(** Like {!compile}, but when the pool's degree exceeds 1 and the
    expression is a top-level [GroupBy], the plan executes as a
    {e parallel scan/aggregate}: the input is split into contiguous
    ranges (a [Select]/[Project] chain over a base [Const] or [Rel] is
    itself evaluated range-wise, so the scan and the filter
    parallelize, not just the fold), each range folds into a partial
    group table on its own domain, and the partials merge in range
    order ({!Groupby.merge_partials}) — same result and output order as
    the sequential plan.  Intended for one-shot bulk evaluation (the
    initial materialization of a view over a large backing collection),
    {e not} for the incremental Δ-path, whose batches are far too small
    to amortize a fork/join.  With degree 1 (or any other expression
    shape) this is exactly {!compile}. *)

val schema : t -> Schema.t
(** Result schema, resolved at compile time. *)

val source : t -> Ra.t
(** The logical expression the plan was compiled from. *)

val pp : Format.formatter -> t -> unit
