(** Physical query plans: compile an {!Ra} expression once, run it many
    times with zero per-call recompilation.

    {!Ra.eval_naive} re-derives [schema_of] at every node on every call,
    recompiles every predicate and projector, and rebuilds every join
    hash table from scratch.  A compiled plan performs all of that
    analysis a single time:

    - schema resolution and static type checks happen at {!compile}
      ([Ra.Type_error] is raised there, not during execution);
    - selections are compiled to position-resolved closures, and
      conjunctive equality selections over a base relation with a
      covering index become index probes ([Stats.Index_scan]) instead of
      full scan + filter;
    - equi-join build tables are memoized across executions, keyed by
      the {!Relation.version}s beneath the build side
      ([Stats.Build_reuse]); any base-relation mutation invalidates them;
    - grouping reuses {!Groupby.compiled}.

    {!compile} bumps [Stats.Plan_compile]; during steady-state
    maintenance of cached plans the per-batch [Predicate_compile] /
    [Projector_compile] counters stay at zero — the constant-factor
    claim the benchmarks measure.

    Holding a plan is the intended usage for any caller that evaluates
    the same expression repeatedly (the chronicle layer caches one plan
    per persistent view); [Ra.eval] itself is [run ∘ compile]. *)

type t

val compile : Ra.t -> t
(** One-time analysis.  Raises [Ra.Type_error] on ill-formed
    expressions (the same errors {!Ra.schema_of} reports). *)

val run : t -> Tuple.t list
(** Execute against the current contents of the underlying relations.
    No recompilation: the only per-call work is data flow. *)

val eval : Ra.t -> Tuple.t list
(** [run ∘ compile]; what {!Ra.eval} dispatches to. *)

val compile_parallel : Exec.Pool.t -> Ra.t -> t
(** Like {!compile}, but when the pool's degree exceeds 1 the plan
    executes as {e parallel dataflow} over contiguous input ranges:

    - a [Select]/[Project]/[Rename]/[Prefix] chain over a base [Const]
      or [Rel] is evaluated range-wise, so scan and filter parallelize;
      a conjunctive-equality [Select] chain over a [Rel] with a covering
      index uses the same index-probe pushdown as the sequential plan,
      restricted per range to its own row-id interval
      ({!Relation.lookup_bounded}): each range pays one bounded probe
      ([Stats.Index_scan] + [Index_probe]) and touches hits only;
    - an [EquiJoin] materializes its (version-memoized) build table
      once on the submitting domain and range-splits the {e probe}
      side: each range probes the shared read-only table with the same
      per-tuple kernel as the sequential plan;
    - [ThetaJoin]/[Product] likewise materialize the right side once
      and split the left;
    - [Union], [Diff] and [Distinct] evaluate their inputs as a first
      parallel phase (each side's own ranges — joins and chains below
      them parallelize too), then perform the global first-occurrence
      set operation sequentially on the submitter and re-split for the
      consumer;
    - a top-level [GroupBy] folds each range into a partial group table
      on its own domain and merges the partials in range order
      ({!Groupby.merge_partials}); any other rangeable top-level shape
      concatenates the per-range outputs in range order.

    In every case the result — tuples and their order — is identical to
    the sequential plan's, and the work counters fire in the {e same
    kinds} as the sequential plan (the ranged pushdown included —
    [Index_scan]/[Index_probe] per range instead of once, [Tuple_read]
    per hit either way; only the probe {e counts} scale with the
    degree, never the per-tuple work).
    Intended for one-shot bulk evaluation (the initial materialization
    of a view over a large backing collection), {e not} for the
    incremental Δ-path, whose batches are far too small to amortize a
    fork/join.  With degree 1 (or a shape with no rangeable input, e.g.
    a bare [GroupBy] over another [GroupBy]) this is exactly
    {!compile}. *)

val schema : t -> Schema.t
(** Result schema, resolved at compile time. *)

val source : t -> Ra.t
(** The logical expression the plan was compiled from. *)

val pp : Format.formatter -> t -> unit
