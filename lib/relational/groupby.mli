(** The [GROUPBY(R, GL, AL)] operator of [MPR90], as used throughout the
    paper: group a tuple collection on attribute list [GL] and evaluate
    the aggregation list [AL] per group.  The result schema is
    [GL ++ aliases(AL)]. *)

val run :
  Schema.t ->
  Tuple.t list ->
  group_by:string list ->
  aggs:Aggregate.call list ->
  Schema.t * Tuple.t list
(** Batch evaluation, O(n) aggregate steps plus one hash lookup per
    tuple.  Output group order follows first appearance. *)

val run_rel :
  Relation.t -> group_by:string list -> aggs:Aggregate.call list -> Schema.t * Tuple.t list

(** {2 Compile-once batch grouping}

    {!run} re-resolves the grouping projector and aggregate argument
    positions on every call; physical plans ({!Plan}, [Delta]) instead
    resolve once at compile time and replay many batches through the
    result. *)

type compiled

val compiled :
  Schema.t -> group_by:string list -> aggs:Aggregate.call list -> compiled
(** One-time name resolution; raises [Schema.Unknown_attribute] like
    {!run} would. *)

val run_compiled : compiled -> Tuple.t list -> Tuple.t list
(** Fold one batch into a fresh group table: same semantics and output
    order as {!run}, zero per-call compilation. *)

val compiled_schema : compiled -> Schema.t

(** {2 Partial aggregation (parallel GROUPBY)}

    The split-and-merge half of the parallel scan/aggregate kernel:
    fold disjoint contiguous slices of the input independently (one
    {!partial} per slice, safe to build on separate domains — a partial
    touches only its own table), then merge the partials {e in slice
    order}.  Because slices are contiguous and the merge visits keys in
    per-slice first-appearance order, the merged result — including its
    output order — is exactly what one sequential {!run_compiled} over
    the concatenated input would produce (aggregate states merge with
    {!Aggregate.merge}; float-summing aggregates may differ in the last
    ulp because addition reassociates). *)

type partial

val run_compiled_partial : compiled -> Tuple.t list -> partial
val merge_partials : compiled -> partial list -> Tuple.t list

(** {2 Incremental group table}

    A mutable group table supporting per-tuple O(1) (modulo the group
    lookup) incremental steps — the primitive inside persistent-view
    maintenance. *)

type table

val create :
  Schema.t -> group_by:string list -> aggs:Aggregate.call list -> table

val step : table -> Tuple.t -> unit
(** Fold one input tuple into its group (creating the group if new).
    Bumps [Stats.Group_lookup] once and [Stats.Agg_step] per call. *)

val unstep : table -> Tuple.t -> [ `Inverted | `Reprobe ]
(** Inverse-aware merge of one retraction: undo one {!step} of [tuple].
    [`Inverted] means every aggregate call inverted in place
    ({!Aggregate.unstep}); [`Reprobe] means at least one could not
    (MIN/MAX losing its extremum, or an unknown group) and the table
    was left {e untouched} — recompute that group from retained
    history.  Empty groups are kept; dropping them is the caller's
    multiplicity bookkeeping. *)

val result_schema : table -> Schema.t
val result : table -> Tuple.t list
val group_count : table -> int

val current : table -> Value.t list -> Tuple.t option
(** Output row of the given group key, if the group exists. *)
