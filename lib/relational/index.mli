(** Secondary indexes over relations: composite-key maps from attribute
    values to row ids.

    Two families, matching the two index cost models of the paper's
    complexity analysis:
    - [Hash]: expected O(1) probes (what SCA₁'s IM-Constant tier uses);
    - [Ordered]: a B+-tree with O(log n) probes and range scans (the
      IM-log(R) tier and Theorem 4.4's O(log |V|) group localization). *)

type kind = Hash | Ordered

type t

val create : kind -> attrs:string list -> t
val kind : t -> kind
val attrs : t -> string list

val add : t -> Value.t list -> int -> unit
(** Bind a key to one more row id (multi-map).  Per-key row lists are
    kept sorted ascending — O(1) in the append-only common case where
    the new row id exceeds every stored one — so probes answer in the
    relation's scan order and {!find_bounded} can slice a contiguous
    sub-run. *)

val remove : t -> Value.t list -> int -> unit
(** Remove one binding of the key to this row id (no-op if absent). *)

val find : t -> Value.t list -> int list
(** Row ids bound to the key, ascending (bumps [Stats.Index_probe]). *)

val find_bounded : t -> Value.t list -> lo:int -> hi:int -> int list
(** The {e bounded probe}: row ids [r] bound to the key with
    [lo <= r < hi], ascending.  This is the primitive behind the
    range-split parallel plans' index-probe pushdown — each contiguous
    tuple-range of a base relation probes the index once and keeps only
    the sub-run of matches inside its own row range, so the per-range
    answers concatenate (in range order) to exactly {!find}'s answer.
    Empty when [lo >= hi].  Costs one probe ([Stats.Index_probe]; one
    B+-tree descent via [Btree.find_map] for [Ordered] — the slice runs
    at the leaf) regardless of the bounds. *)

val find_range : t -> lo:Value.t list option -> hi:Value.t list option -> int list
(** Ordered indexes only; raises [Invalid_argument] on hash indexes. *)

val cardinality : t -> int
(** Number of distinct keys. *)
