(** Heavy-light partitioning of join-input keys (Abo-Khamis et al.,
    "Maintaining Queries under Updates Using Heavy-Light Partitioning
    of the Input Relations"), specialized to the chronicle append path.

    A [t] is the partition state of {e one} compiled key-join site
    (one [Ca.KeyJoinRel] node of one view's Δ-plan).  Keys arriving in
    append deltas are counted with a bounded approximate-frequency
    table; a key whose count crosses the threshold is {e promoted}: its
    matched-tuple run against the opposite relation side is
    materialized once (via chunked bounded probes, so the run is
    byte-identical to what the lazy path would compute) and every later
    probe for that key is answered from the cached run without touching
    the relation.  Keys below the threshold stay {e light} and keep the
    existing lazy probe/scan.  Any mutation of the relation (detected
    through {!Relation.version}) demotes every heavy key — cached runs
    are only ever served at the exact relation version they were built
    at, which is what keeps the partitioned fold byte-identical to the
    sequential oracle at every parallelism degree.

    The state is ephemeral: it is never checkpointed or snapshotted,
    and recovery rebuilds it deterministically by replaying appends. *)

type t

val create : ?threshold:int -> unit -> t
(** [threshold <= 0] (the default) selects the adaptive policy: start
    at a small base and double whenever the heavy set outgrows its
    budget, demoting keys that fall under the new bar.  A positive
    [threshold] is a fixed promotion bar.  Count decay caps what any
    key's frequency can reach, so a bar of 65536 or more is treated as
    an explicit off-switch: probes skip tracking entirely and run the
    plain lazy fold (the pre-partition maintenance path, byte for
    byte). *)

val matches :
  t ->
  Relation.t ->
  attrs:string list ->
  project:(Tuple.t -> Tuple.t) ->
  Value.t list ->
  Tuple.t list
(** [matches t rel ~attrs ~project key] = [List.map project
    (Relation.lookup rel ~attrs key)], served from the heavy cache when
    [key] is heavy ([Stats.Heavy_probe]) and computed lazily otherwise
    ([Stats.Light_fold]), with promotion/demotion bookkeeping on the
    side.  The result (contents {e and} order) is always identical to
    the lazy expression above. *)

val threshold : t -> int
(** The current promotion bar (adaptive instances may have raised it
    above the base). *)

val heavy_count : t -> int
(** Number of keys currently holding materialized state. *)

val is_heavy : t -> Value.t list -> bool

val p_promote : string
(** ["heavy-promote"] — probe point hit immediately before a key's
    materialized run is installed. *)

val p_demote : string
(** ["heavy-demote"] — probe point hit immediately before a heavy
    key's state is torn down. *)

val set_probe : (string -> unit) option -> unit
(** Install (or clear) the global transition probe, called with
    {!p_promote} / {!p_demote} right {e before} the corresponding state
    change — the fault-injection hook: a probe that raises aborts the
    surrounding append mid-maintenance with the partition state no
    further along than the sequential oracle's, so the standard
    rollback + replay machinery recovers an identical database. *)
