type func = Count | Sum | Min | Max | Avg | Var | Stddev

type call = { func : func; arg : string option; alias : string }

let count_star alias = { func = Count; arg = None; alias }
let count arg alias = { func = Count; arg = Some arg; alias }
let sum arg alias = { func = Sum; arg = Some arg; alias }
let min_ arg alias = { func = Min; arg = Some arg; alias }
let max_ arg alias = { func = Max; arg = Some arg; alias }
let avg arg alias = { func = Avg; arg = Some arg; alias }
let var_ arg alias = { func = Var; arg = Some arg; alias }
let stddev arg alias = { func = Stddev; arg = Some arg; alias }

type state =
  | Count_st of int
  | Sum_st of Value.t option (* None = empty group *)
  | Minmax_st of Value.t option
  | Avg_st of float * int (* running sum, count of non-null *)
  | Moments_st of { n : int; sum : float; sumsq : float }

let init = function
  | Count -> Count_st 0
  | Sum -> Sum_st None
  | Min | Max -> Minmax_st None
  | Avg -> Avg_st (0., 0)
  | Var | Stddev -> Moments_st { n = 0; sum = 0.; sumsq = 0. }

let step func st v =
  Stats.incr Stats.Agg_step;
  match func, st with
  | Count, Count_st n -> Count_st (if Value.is_null v then n else n + 1)
  | Sum, Sum_st acc ->
      if Value.is_null v then st
      else Sum_st (Some (match acc with None -> v | Some a -> Value.add a v))
  | Min, Minmax_st acc ->
      if Value.is_null v then st
      else
        Minmax_st
          (Some
             (match acc with
             | None -> v
             | Some a -> if Value.compare v a < 0 then v else a))
  | Max, Minmax_st acc ->
      if Value.is_null v then st
      else
        Minmax_st
          (Some
             (match acc with
             | None -> v
             | Some a -> if Value.compare v a > 0 then v else a))
  | Avg, Avg_st (s, n) ->
      if Value.is_null v then st else Avg_st (s +. Value.to_float v, n + 1)
  | (Var | Stddev), Moments_st { n; sum; sumsq } ->
      if Value.is_null v then st
      else
        let x = Value.to_float v in
        Moments_st { n = n + 1; sum = sum +. x; sumsq = sumsq +. (x *. x) }
  | (Count | Sum | Min | Max | Avg | Var | Stddev), _ ->
      invalid_arg "Aggregate.step: state does not match function"

type inverse = Inverted of state | Reprobe

(* The weight −1 transition.  COUNT/SUM/AVG/VAR/STDDEV are group
   homomorphisms over (ℤ, +) / (ℝ, +) and invert exactly; MIN/MAX live
   in a semilattice with no inverse, so retracting the current extremum
   (or any value the state cannot account for) demands a re-probe of
   the group's retained history.  Null arguments are skipped exactly as
   {!step} skips them, so step∘unstep = id tuple-wise. *)
let unstep func st v =
  Stats.incr Stats.Agg_step;
  match func, st with
  | Count, Count_st n -> Inverted (Count_st (if Value.is_null v then n else n - 1))
  | Sum, Sum_st acc ->
      if Value.is_null v then Inverted st
      else (
        match acc with
        | None -> Reprobe (* nothing to invert: the state never saw [v] *)
        | Some a -> Inverted (Sum_st (Some (Value.sub a v))))
  | (Min | Max), Minmax_st acc ->
      if Value.is_null v then Inverted st
      else (
        match acc with
        | None -> Reprobe
        | Some a ->
            let c = Value.compare v a in
            if (func = Min && c > 0) || (func = Max && c < 0) then Inverted st
            else Reprobe (* retracting the extremum — or a value outside
                            the state's range *))
  | Avg, Avg_st (s, n) ->
      if Value.is_null v then Inverted st
      else if n <= 0 then Reprobe
      else if n = 1 then Inverted (Avg_st (0., 0))
      else Inverted (Avg_st (s -. Value.to_float v, n - 1))
  | (Var | Stddev), Moments_st { n; sum; sumsq } ->
      if Value.is_null v then Inverted st
      else if n <= 0 then Reprobe
      else if n = 1 then Inverted (Moments_st { n = 0; sum = 0.; sumsq = 0. })
      else
        let x = Value.to_float v in
        Inverted
          (Moments_st { n = n - 1; sum = sum -. x; sumsq = sumsq -. (x *. x) })
  | (Count | Sum | Min | Max | Avg | Var | Stddev), _ ->
      invalid_arg "Aggregate.unstep: state does not match function"

let merge func a b =
  match func, a, b with
  | Count, Count_st x, Count_st y -> Count_st (x + y)
  | Sum, Sum_st x, Sum_st y -> (
      match x, y with
      | None, s | s, None -> Sum_st s
      | Some x, Some y -> Sum_st (Some (Value.add x y)))
  | Min, Minmax_st x, Minmax_st y -> (
      match x, y with
      | None, s | s, None -> Minmax_st s
      | Some x, Some y -> Minmax_st (Some (if Value.compare x y <= 0 then x else y)))
  | Max, Minmax_st x, Minmax_st y -> (
      match x, y with
      | None, s | s, None -> Minmax_st s
      | Some x, Some y -> Minmax_st (Some (if Value.compare x y >= 0 then x else y)))
  | Avg, Avg_st (s1, n1), Avg_st (s2, n2) -> Avg_st (s1 +. s2, n1 + n2)
  | (Var | Stddev), Moments_st a, Moments_st b ->
      Moments_st
        { n = a.n + b.n; sum = a.sum +. b.sum; sumsq = a.sumsq +. b.sumsq }
  | (Count | Sum | Min | Max | Avg | Var | Stddev), _, _ ->
      invalid_arg "Aggregate.merge: state does not match function"

let final func st =
  match func, st with
  | Count, Count_st n -> Value.Int n
  | Sum, Sum_st None -> Value.Null
  | Sum, Sum_st (Some v) -> v
  | (Min | Max), Minmax_st acc -> (
      match acc with None -> Value.Null | Some v -> v)
  | Avg, Avg_st (_, 0) -> Value.Null
  | Avg, Avg_st (s, n) -> Value.Float (s /. float_of_int n)
  | (Var | Stddev), Moments_st { n = 0; _ } -> Value.Null
  | (Var | Stddev), Moments_st { n; sum; sumsq } ->
      let nf = float_of_int n in
      let mean = sum /. nf in
      (* population variance, clamped against rounding *)
      let var = Float.max 0. ((sumsq /. nf) -. (mean *. mean)) in
      Value.Float (match func with Stddev -> sqrt var | _ -> var)
  | (Count | Sum | Min | Max | Avg | Var | Stddev), _ ->
      invalid_arg "Aggregate.final: state does not match function"

let batch func values =
  final func (List.fold_left (step func) (init func) values)

let func_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"
  | Var -> "VAR"
  | Stddev -> "STDDEV"

let func_of_name s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "AVG" -> Some Avg
  | "VAR" | "VARIANCE" -> Some Var
  | "STDDEV" -> Some Stddev
  | _ -> None

let output_ty func arg_ty =
  match func, arg_ty with
  | Count, _ -> Value.TInt
  | (Avg | Var | Stddev), _ -> Value.TFloat
  | (Sum | Min | Max), Some ty -> ty
  | (Sum | Min | Max), None ->
      invalid_arg "Aggregate.output_ty: SUM/MIN/MAX need an argument"

let result_schema schema group_attrs calls =
  let group_part =
    List.map (fun a -> (a, Schema.ty schema a)) group_attrs
  in
  let agg_part =
    List.map
      (fun c ->
        let arg_ty = Option.map (Schema.ty schema) c.arg in
        (c.alias, output_ty c.func arg_ty))
      calls
  in
  Schema.make (group_part @ agg_part)

let pp_call ppf c =
  match c.arg with
  | None -> Format.fprintf ppf "%s(*) AS %s" (func_name c.func) c.alias
  | Some a -> Format.fprintf ppf "%s(%s) AS %s" (func_name c.func) a c.alias

let sexp_of_state = function
  | Count_st n -> Sexp.List [ Sexp.Atom "count"; Sexp.int n ]
  | Sum_st None -> Sexp.List [ Sexp.Atom "sum" ]
  | Sum_st (Some v) -> Sexp.List [ Sexp.Atom "sum"; Value.to_sexp v ]
  | Minmax_st None -> Sexp.List [ Sexp.Atom "minmax" ]
  | Minmax_st (Some v) -> Sexp.List [ Sexp.Atom "minmax"; Value.to_sexp v ]
  | Avg_st (s, n) -> Sexp.List [ Sexp.Atom "avg"; Sexp.float s; Sexp.int n ]
  | Moments_st { n; sum; sumsq } ->
      Sexp.List [ Sexp.Atom "moments"; Sexp.int n; Sexp.float sum; Sexp.float sumsq ]

let state_of_sexp = function
  | Sexp.List [ Sexp.Atom "count"; n ] -> Count_st (Sexp.to_int n)
  | Sexp.List [ Sexp.Atom "sum" ] -> Sum_st None
  | Sexp.List [ Sexp.Atom "sum"; v ] -> Sum_st (Some (Value.of_sexp v))
  | Sexp.List [ Sexp.Atom "minmax" ] -> Minmax_st None
  | Sexp.List [ Sexp.Atom "minmax"; v ] -> Minmax_st (Some (Value.of_sexp v))
  | Sexp.List [ Sexp.Atom "avg"; s; n ] -> Avg_st (Sexp.to_float s, Sexp.to_int n)
  | Sexp.List [ Sexp.Atom "moments"; n; sum; sumsq ] ->
      Moments_st
        { n = Sexp.to_int n; sum = Sexp.to_float sum; sumsq = Sexp.to_float sumsq }
  | sexp ->
      failwith (Printf.sprintf "Aggregate.state_of_sexp: %s" (Sexp.to_string sexp))
