(** Mutable in-memory relations with optional primary key and secondary
    indexes.

    Rows live in a growable array and are addressed by stable integer row
    ids; deletion leaves a tombstone.  Any mutation bumps the relation's
    version counter, which the chronicle layer's proactive-update rule
    (§2.3 of the paper) keys on. *)

type t

exception Key_violation of string
(** Raised on insert/update that would duplicate the primary key. *)

val create : name:string -> schema:Schema.t -> ?key:string list -> unit -> t
(** [key], when given, is enforced unique via an automatic hash index. *)

val name : t -> string
val schema : t -> Schema.t
val key : t -> string list option
val cardinality : t -> int
(** Number of live rows. *)

val version : t -> int
(** Monotone counter, bumped by every mutation. *)

val insert : t -> Tuple.t -> int
(** Returns the new row id.  Raises [Invalid_argument] if the tuple does
    not type-check against the schema, {!Key_violation} on duplicate
    key. *)

val insert_all : t -> Tuple.t list -> unit

val get : t -> int -> Tuple.t option
(** [None] if the row id was deleted. *)

val delete : t -> int -> Tuple.t option
(** Tombstone the row; returns the deleted tuple. *)

val update : t -> int -> Tuple.t -> unit
(** Replace the tuple at a live row id. *)

val delete_where : t -> Predicate.t -> int
(** Returns the number of rows deleted. *)

val iter : (int -> Tuple.t -> unit) -> t -> unit
(** Live rows only; bumps [Stats.Tuple_read] per row. *)

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Tuple.t list

val create_index : t -> Index.kind -> string list -> unit
(** Build (and thereafter maintain) a secondary index on the given
    attributes; idempotent per attribute list. *)

val has_index : t -> string list -> bool

val indexed_attrs : t -> string list list
(** Attribute lists of all maintained indexes (primary-key index
    included), in probe-preference order.  {!Plan.compile} uses this to
    push selections down into index scans. *)

val lookup : t -> attrs:string list -> Value.t list -> Tuple.t list
(** Rows whose [attrs] equal the key, in ascending row-id (scan) order.
    Uses a matching index when one exists, otherwise falls back to a
    full scan (each scanned row bumps [Stats.Tuple_read], making the
    difference measurable). *)

val lookup_rows : t -> attrs:string list -> Value.t list -> int list

val row_bound : t -> int
(** Exclusive upper bound on live row ids: every live row id is in
    [0, row_bound).  The range-split parallel plans partition this
    row-id space into contiguous per-task ranges (tombstones included —
    they cost nothing to a bounded probe). *)

val lookup_bounded :
  t -> attrs:string list -> Value.t list -> lo:int -> hi:int -> Tuple.t list
(** {!lookup} restricted to row ids in [lo, hi) — the relation-level
    bounded probe.  With a matching index this is one
    {!Index.find_bounded} (one [Stats.Index_probe], hits only);
    without, a scan of the row range.  For any contiguous partition of
    [0, row_bound) the per-range answers concatenate, in range order,
    to exactly {!lookup}'s answer. *)

val lookup_rows_bounded :
  t -> attrs:string list -> Value.t list -> lo:int -> hi:int -> int list

val find_by_key : t -> Value.t list -> Tuple.t option
(** Primary-key point lookup; raises [Invalid_argument] if the relation
    has no key. *)

val pp : Format.formatter -> t -> unit
