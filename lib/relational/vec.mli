(** Growable arrays (OCaml 5.1 predates [Dynarray]); row storage for
    relations and retained chronicle windows. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate t n] keeps the first [n] elements (transaction-rollback
    support).  Raises [Invalid_argument] if [n] is out of bounds. *)

val iter_range : ('a -> unit) -> 'a t -> pos:int -> len:int -> unit
