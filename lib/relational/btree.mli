(** In-memory B+-trees.

    The ordered index behind the paper's IM-log(R) and Theorem 4.4
    O(log |V|) bounds.  Keys live in the leaves, which are chained for
    range scans; internal nodes hold separator keys.  Every node visited
    during a descent bumps [Stats.Index_node_visit], and each top-level
    lookup bumps [Stats.Index_probe] — benchmarks read these to verify
    logarithmic behaviour directly.

    Deletion removes the entry from its leaf without rebalancing (leaves
    may underflow); lookups and scans stay correct and the height never
    grows from deletes, which is sufficient for this workload
    (chronicle systems are overwhelmingly insert-heavy). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) : sig
  type 'v t

  val create : ?degree:int -> unit -> 'v t
  (** [degree] = max children per internal node (default 32, min 4). *)

  val length : 'v t -> int
  val is_empty : 'v t -> bool
  val height : 'v t -> int

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val find_map : 'v t -> K.t -> ('v -> 'a option) -> 'a option
  (** [find_map t k f] is [Option.bind (find t k) f] in a single
      descent: [f] runs on the binding at the leaf, so a caller that
      only needs a {e slice} of the stored value (the bounded index
      probes of [Index.find_bounded]) pays one traversal and never
      re-materializes the full binding.  Counts one [Stats.Index_probe]
      and the same node visits as {!find}; [f] is not called when the
      key is absent. *)

  val insert : 'v t -> K.t -> 'v -> 'v option
  (** Insert or replace; returns the previous binding if any. *)

  val remove : 'v t -> K.t -> 'v option
  (** Remove; returns the removed binding if any. *)

  val update : 'v t -> K.t -> ('v option -> 'v option) -> unit
  (** [update t k f] rebinds [k] to [f (find t k)]; [f] returning [None]
      removes the binding. *)

  val min_binding : 'v t -> (K.t * 'v) option
  val max_binding : 'v t -> (K.t * 'v) option

  val iter : (K.t -> 'v -> unit) -> 'v t -> unit
  (** In ascending key order. *)

  val fold : (K.t -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc

  val iter_range : ?lo:K.t -> ?hi:K.t -> (K.t -> 'v -> unit) -> 'v t -> unit
  (** Keys [k] with [lo <= k <= hi] in ascending order (bounds optional
      and inclusive). *)

  val to_list : 'v t -> (K.t * 'v) list

  val check_invariants : 'v t -> unit
  (** Raises [Failure] if ordering, separator, or leaf-chain invariants
      are violated (test hook). *)
end
