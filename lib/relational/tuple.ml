type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get t i = t.(i)
let field schema t name = t.(Schema.pos schema name)

let projector schema names =
  Stats.incr Stats.Projector_compile;
  let positions = Array.of_list (List.map (Schema.pos schema) names) in
  fun t -> Array.map (fun i -> t.(i)) positions

let project schema names t = projector schema names t

let concat = Array.append

let remove schema name t =
  let i = Schema.pos schema name in
  Array.init (Array.length t - 1) (fun j -> if j < i then t.(j) else t.(j + 1))

let type_check schema t =
  arity t = Schema.arity schema
  && Array.for_all2
       (fun (a : Schema.attr) v ->
         match Value.ty_of v with None -> true | Some ty -> ty = a.ty)
       (Schema.attrs schema) t

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0
let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Value.pp)
    (Array.to_seq t)

let pp_with schema ppf t =
  let attrs = Schema.attrs schema in
  Format.fprintf ppf "@[<h>(%a)@]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (a, v) -> Format.fprintf ppf "%s=%a" a.Schema.name Value.pp v))
    (Seq.zip (Array.to_seq attrs) (Array.to_seq t))

module Set_tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let dedup tuples =
  let seen = Set_tbl.create 64 in
  List.filter
    (fun t ->
      if Set_tbl.mem seen t then false
      else begin
        Set_tbl.add seen t ();
        true
      end)
    tuples

let diff a b =
  let excluded = Set_tbl.create 64 in
  List.iter (fun t -> Set_tbl.replace excluded t ()) b;
  List.filter
    (fun t ->
      if Set_tbl.mem excluded t then false
      else begin
        (* collapse duplicates within [a] as well: set semantics *)
        Set_tbl.add excluded t ();
        true
      end)
    a
