type t =
  | Rel of Relation.t
  | Const of Schema.t * Tuple.t list
  | Select of Predicate.t * t
  | Project of string list * t
  | Product of t * t
  | EquiJoin of (string * string) list * t * t
  | ThetaJoin of Predicate.t * t * t
  | Union of t * t
  | Diff of t * t
  | GroupBy of string list * Aggregate.call list * t
  | Rename of (string * string) list * t
  | Prefix of string * t
  | Distinct of t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let join_schema pairs ls rs =
  (* check the pairs resolve and are type-compatible, then drop the
     right-side join attributes *)
  List.iter
    (fun (a, b) ->
      match Schema.pos_opt ls a, Schema.pos_opt rs b with
      | None, _ -> type_error "join attribute %s not in left operand" a
      | _, None -> type_error "join attribute %s not in right operand" b
      | Some _, Some _ ->
          if Schema.ty ls a <> Schema.ty rs b then
            type_error "join attributes %s and %s have different types" a b)
    pairs;
  let dropped = List.map snd pairs in
  let keep = List.filter (fun n -> not (List.mem n dropped)) (Schema.names rs) in
  Schema.concat ls (Schema.project rs keep)

let rec schema_of = function
  | Rel r -> Relation.schema r
  | Const (s, _) -> s
  | Select (p, e) ->
      let s = schema_of e in
      List.iter
        (fun a ->
          if not (Schema.mem s a) then
            type_error "selection mentions unknown attribute %s" a)
        (Predicate.attrs p);
      s
  | Project (attrs, e) -> (
      let s = schema_of e in
      try Schema.project s attrs
      with Schema.Unknown_attribute a ->
        type_error "projection on unknown attribute %s" a)
  | Product (l, r) -> (
      try Schema.concat (schema_of l) (schema_of r)
      with Schema.Duplicate_attribute a ->
        type_error "product operands share attribute %s" a)
  | EquiJoin (pairs, l, r) -> join_schema pairs (schema_of l) (schema_of r)
  | ThetaJoin (p, l, r) ->
      let s =
        try Schema.concat (schema_of l) (schema_of r)
        with Schema.Duplicate_attribute a ->
          type_error "join operands share attribute %s" a
      in
      List.iter
        (fun a ->
          if not (Schema.mem s a) then
            type_error "join predicate mentions unknown attribute %s" a)
        (Predicate.attrs p);
      s
  | Union (l, r) | Diff (l, r) ->
      let ls = schema_of l and rs = schema_of r in
      if not (Schema.union_compatible ls rs) then
        type_error "union/difference operands are not compatible: %a vs %a"
          Schema.pp ls Schema.pp rs;
      ls
  | GroupBy (gl, al, e) ->
      let s = schema_of e in
      (try Aggregate.result_schema s gl al
       with Schema.Unknown_attribute a ->
         type_error "grouping on unknown attribute %s" a)
  | Rename (mapping, e) -> (
      try Schema.rename (schema_of e) mapping
      with Schema.Duplicate_attribute a -> type_error "rename clashes on %s" a)
  | Prefix (p, e) -> Schema.prefix p (schema_of e)
  | Distinct e -> schema_of e

let hash_join pairs ls rs left right =
  let module Tbl = Hashtbl.Make (struct
    type t = Value.t list

    let equal = Value.equal_list
    let hash = Value.hash_list
  end) in
  let rkey = Tuple.projector rs (List.map snd pairs) in
  let lkey = Tuple.projector ls (List.map fst pairs) in
  let dropped = List.map snd pairs in
  let keep = List.filter (fun n -> not (List.mem n dropped)) (Schema.names rs) in
  let rproj = Tuple.projector rs keep in
  let table = Tbl.create 256 in
  List.iter
    (fun tu ->
      let k = Array.to_list (rkey tu) in
      Tbl.replace table k (tu :: Option.value ~default:[] (Tbl.find_opt table k)))
    right;
  List.concat_map
    (fun ltu ->
      let k = Array.to_list (lkey ltu) in
      Stats.incr Stats.Index_probe;
      match Tbl.find_opt table k with
      | None -> []
      | Some matches ->
          List.rev_map (fun rtu -> Tuple.concat ltu (rproj rtu)) matches)
    left

let rec eval_naive expr =
  match expr with
  | Rel r -> Relation.to_list r
  | Const (_, tuples) -> tuples
  | Select (p, e) ->
      let s = schema_of e in
      let keep = Predicate.compile s p in
      List.filter
        (fun tu ->
          Stats.incr Stats.Tuple_read;
          keep tu)
        (eval_naive e)
  | Project (attrs, e) ->
      let s = schema_of e in
      let proj = Tuple.projector s attrs in
      List.map proj (eval_naive e)
  | Product (l, r) ->
      let lt = eval_naive l and rt = eval_naive r in
      List.concat_map
        (fun ltu ->
          List.map
            (fun rtu ->
              Stats.incr Stats.Tuple_read;
              Tuple.concat ltu rtu)
            rt)
        lt
  | EquiJoin (pairs, l, r) ->
      ignore (schema_of expr);
      hash_join pairs (schema_of l) (schema_of r) (eval_naive l) (eval_naive r)
  | ThetaJoin (p, l, r) ->
      let s = schema_of expr in
      let keep = Predicate.compile s p in
      let lt = eval_naive l and rt = eval_naive r in
      List.concat_map
        (fun ltu ->
          List.filter_map
            (fun rtu ->
              Stats.incr Stats.Tuple_read;
              let tu = Tuple.concat ltu rtu in
              if keep tu then Some tu else None)
            rt)
        lt
  | Union (l, r) ->
      ignore (schema_of expr);
      Tuple.dedup (eval_naive l @ eval_naive r)
  | Diff (l, r) ->
      ignore (schema_of expr);
      Tuple.diff (eval_naive l) (eval_naive r)
  | GroupBy (gl, al, e) ->
      let s = schema_of e in
      snd (Groupby.run s (eval_naive e) ~group_by:gl ~aggs:al)
  | Rename (_, e) | Prefix (_, e) -> eval_naive e
  | Distinct e -> Tuple.dedup (eval_naive e)

(* [eval] is run ∘ compile over the physical-plan layer.  [Plan] sits
   above this module (its plans are built from [t] values), so the
   compiled pipeline is installed through a forward reference at library
   initialization; until then (i.e. inside this module only) [eval]
   falls back to the naive interpreter.  The library is built with
   [-linkall] so the installation is unconditional for every user, and
   the plan test-suite asserts (via [Stats.Plan_compile]) that the
   compiled path is really the one behind [eval]. *)
let eval_fn = ref eval_naive
let internal_set_eval f = eval_fn := f
let eval expr = !eval_fn expr

let eval_rel ~name expr =
  let schema = schema_of expr in
  let rel = Relation.create ~name ~schema () in
  List.iter (fun tu -> ignore (Relation.insert rel tu)) (eval expr);
  rel

let rec pp ppf = function
  | Rel r -> Format.pp_print_string ppf (Relation.name r)
  | Const (_, tuples) -> Format.fprintf ppf "{%d tuples}" (List.length tuples)
  | Select (p, e) -> Format.fprintf ppf "@[σ[%a](%a)@]" Predicate.pp p pp e
  | Project (attrs, e) ->
      Format.fprintf ppf "@[π[%s](%a)@]" (String.concat "," attrs) pp e
  | Product (l, r) -> Format.fprintf ppf "@[(%a × %a)@]" pp l pp r
  | EquiJoin (pairs, l, r) ->
      let pp_pair ppf (a, b) = Format.fprintf ppf "%s=%s" a b in
      Format.fprintf ppf "@[(%a ⋈[%a] %a)@]" pp l
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_pair)
        pairs pp r
  | ThetaJoin (p, l, r) ->
      Format.fprintf ppf "@[(%a ⋈θ[%a] %a)@]" pp l Predicate.pp p pp r
  | Union (l, r) -> Format.fprintf ppf "@[(%a ∪ %a)@]" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "@[(%a − %a)@]" pp l pp r
  | GroupBy (gl, al, e) ->
      Format.fprintf ppf "@[γ[%s; %a](%a)@]" (String.concat "," gl)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Aggregate.pp_call)
        al pp e
  | Rename (mapping, e) ->
      let pp_one ppf (a, b) = Format.fprintf ppf "%s→%s" a b in
      Format.fprintf ppf "@[ρ[%a](%a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_one)
        mapping pp e
  | Prefix (p, e) -> Format.fprintf ppf "@[ρ[%s.*](%a)@]" p pp e
  | Distinct e -> Format.fprintf ppf "@[δ(%a)@]" pp e
