type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

let ty_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"

(* Rank used to order values of distinct, non-coercible types.  Int and
   Float share a rank so that numeric comparison is consistent with
   equality across the two representations. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f ->
      (* Hash floats that are exact integers like the integer, so that
         [equal] implies equal hashes across Int/Float. *)
      if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Null | Bool _ | Str _ -> invalid_arg "Value.to_float: non-numeric"

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Null | Bool _ | Str _ -> invalid_arg "Value.to_int: non-numeric"

let add a b =
  match a, b with
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a +. to_float b)
  | _ -> invalid_arg "Value.add: non-numeric"

let sub a b =
  match a, b with
  | Int x, Int y -> Int (x - y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a -. to_float b)
  | _ -> invalid_arg "Value.sub: non-numeric"

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let rec compare_list a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' ->
      let c = compare x y in
      if c <> 0 then c else compare_list a' b'

let equal_list a b = compare_list a b = 0

let hash_list l = List.fold_left (fun acc v -> (acc * 31) + hash v) 7 l

let pp_list ppf l =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
    l

let to_sexp = function
  | Null -> Sexp.Atom "null"
  | Bool b -> Sexp.List [ Sexp.Atom "b"; Sexp.bool b ]
  | Int i -> Sexp.List [ Sexp.Atom "i"; Sexp.int i ]
  | Float f -> Sexp.List [ Sexp.Atom "f"; Sexp.float f ]
  | Str s -> Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ]

let of_sexp = function
  | Sexp.Atom "null" -> Null
  | Sexp.List [ Sexp.Atom "b"; v ] -> Bool (Sexp.to_bool v)
  | Sexp.List [ Sexp.Atom "i"; v ] -> Int (Sexp.to_int v)
  | Sexp.List [ Sexp.Atom "f"; v ] -> Float (Sexp.to_float v)
  | Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ] -> Str s
  | sexp -> failwith (Printf.sprintf "Value.of_sexp: %s" (Sexp.to_string sexp))
