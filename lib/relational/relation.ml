exception Key_violation of string

type t = {
  name : string;
  schema : Schema.t;
  key : string list option;
  rows : Tuple.t option Vec.t;
  mutable live : int;
  mutable version : int;
  mutable indexes : Index.t list;
}

let index_id attrs = String.concat "," attrs

let create ~name ~schema ?key () =
  let t =
    { name; schema; key; rows = Vec.create (); live = 0; version = 0; indexes = [] }
  in
  (match key with
  | Some attrs ->
      List.iter (fun a -> ignore (Schema.pos schema a)) attrs;
      t.indexes <- [ Index.create Index.Hash ~attrs ]
  | None -> ());
  t

let name t = t.name
let schema t = t.schema
let key t = t.key
let cardinality t = t.live
let version t = t.version

let find_index t attrs =
  let id = index_id attrs in
  List.find_opt (fun ix -> String.equal (index_id (Index.attrs ix)) id) t.indexes

let has_index t attrs = Option.is_some (find_index t attrs)
let indexed_attrs t = List.map Index.attrs t.indexes

let key_of t attrs tuple =
  List.map (fun a -> Tuple.field t.schema tuple a) attrs

let index_add t tuple row =
  List.iter (fun ix -> Index.add ix (key_of t (Index.attrs ix) tuple) row) t.indexes

let index_remove t tuple row =
  List.iter
    (fun ix -> Index.remove ix (key_of t (Index.attrs ix) tuple) row)
    t.indexes

let check_key t tuple =
  match t.key with
  | None -> ()
  | Some attrs -> (
      match find_index t attrs with
      | None -> ()
      | Some ix ->
          let k = key_of t attrs tuple in
          if Index.find ix k <> [] then
            raise
              (Key_violation
                 (Format.asprintf "%s: duplicate key %a" t.name Value.pp_list k)))

let insert t tuple =
  if not (Tuple.type_check t.schema tuple) then
    invalid_arg
      (Format.asprintf "Relation.insert %s: tuple %a does not match schema %a"
         t.name Tuple.pp tuple Schema.pp t.schema);
  check_key t tuple;
  let row = Vec.push t.rows (Some tuple) in
  index_add t tuple row;
  t.live <- t.live + 1;
  t.version <- t.version + 1;
  Stats.incr Stats.Tuple_write;
  row

let insert_all t tuples = List.iter (fun tu -> ignore (insert t tu)) tuples

let get t row = if row < Vec.length t.rows then Vec.get t.rows row else None

let delete t row =
  match get t row with
  | None -> None
  | Some tuple ->
      Vec.set t.rows row None;
      index_remove t tuple row;
      t.live <- t.live - 1;
      t.version <- t.version + 1;
      Some tuple

let update t row tuple =
  match get t row with
  | None -> invalid_arg "Relation.update: dead row"
  | Some old ->
      if not (Tuple.type_check t.schema tuple) then
        invalid_arg "Relation.update: tuple does not match schema";
      (* allow key-preserving updates; re-check only if the key changed *)
      (match t.key with
      | Some attrs
        when not (Value.equal_list (key_of t attrs old) (key_of t attrs tuple))
        ->
          check_key t tuple
      | Some _ | None -> ());
      index_remove t old row;
      Vec.set t.rows row (Some tuple);
      index_add t tuple row;
      t.version <- t.version + 1;
      Stats.incr Stats.Tuple_write

let iter f t =
  Vec.iteri
    (fun row slot ->
      match slot with
      | None -> ()
      | Some tuple ->
          Stats.incr Stats.Tuple_read;
          f row tuple)
    t.rows

let fold f acc t =
  let acc = ref acc in
  iter (fun _ tuple -> acc := f !acc tuple) t;
  !acc

let to_list t = List.rev (fold (fun acc tu -> tu :: acc) [] t)

let delete_where t pred =
  let matches = Predicate.compile t.schema pred in
  let victims = ref [] in
  iter (fun row tuple -> if matches tuple then victims := row :: !victims) t;
  List.iter (fun row -> ignore (delete t row)) !victims;
  List.length !victims

let create_index t kind attrs =
  List.iter (fun a -> ignore (Schema.pos t.schema a)) attrs;
  let id = index_id attrs in
  let already =
    List.exists
      (fun ix ->
        Index.kind ix = kind && String.equal (index_id (Index.attrs ix)) id)
      t.indexes
  in
  (* a same-attribute index of a different kind is allowed (e.g. an
     ordered index shadowing the key's hash index for range probes);
     prepending makes it the one lookups use *)
  if not already then begin
    let ix = Index.create kind ~attrs in
    iter (fun row tuple -> Index.add ix (key_of t attrs tuple) row) t;
    t.indexes <- ix :: t.indexes
  end

let lookup_rows t ~attrs key =
  match find_index t attrs with
  | Some ix -> Index.find ix key
  | None ->
      let hits = ref [] in
      iter
        (fun row tuple ->
          if Value.equal_list (key_of t attrs tuple) key then hits := row :: !hits)
        t;
      List.rev !hits

let lookup t ~attrs key =
  List.filter_map (get t) (lookup_rows t ~attrs key)

let row_bound t = Vec.length t.rows

let lookup_rows_bounded t ~attrs key ~lo ~hi =
  let lo = max lo 0 and hi = min hi (Vec.length t.rows) in
  if lo >= hi then []
  else
    match find_index t attrs with
    | Some ix -> Index.find_bounded ix key ~lo ~hi
    | None ->
        (* scan fallback restricted to the row range; each inspected
           slot bumps [Tuple_read] like the unbounded scan would *)
        let hits = ref [] in
        for row = hi - 1 downto lo do
          match Vec.get t.rows row with
          | None -> ()
          | Some tuple ->
              Stats.incr Stats.Tuple_read;
              if Value.equal_list (key_of t attrs tuple) key then
                hits := row :: !hits
        done;
        !hits

let lookup_bounded t ~attrs key ~lo ~hi =
  List.filter_map (get t) (lookup_rows_bounded t ~attrs key ~lo ~hi)

let find_by_key t key =
  match t.key with
  | None -> invalid_arg "Relation.find_by_key: relation has no primary key"
  | Some attrs -> (
      match lookup t ~attrs key with
      | [] -> None
      | [ tuple ] -> Some tuple
      | _ :: _ :: _ -> assert false (* uniqueness enforced on insert *))

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s %a [%d rows]" t.name Schema.pp t.schema t.live;
  iter (fun _ tuple -> Format.fprintf ppf "@,%a" (Tuple.pp_with t.schema) tuple) t;
  Format.fprintf ppf "@]"
