module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) = struct
  (* Nodes are exact-size arrays replaced on the insert/remove path
     (O(degree * height) cell copies per update); the root pointer is
     the only long-lived mutable cell.  [Node (seps, kids)] has
     [Array.length kids = Array.length seps + 1]; subtree [kids.(i)]
     holds keys [k] with [seps.(i-1) <= k < seps.(i)]. *)
  type 'v node =
    | Leaf of (K.t * 'v) array
    | Node of K.t array * 'v node array

  type 'v t = {
    degree : int; (* max children of an internal node; max leaf entries *)
    mutable root : 'v node;
    mutable size : int;
  }

  let create ?(degree = 32) () =
    let degree = max 4 degree in
    { degree; root = Leaf [||]; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  let height t =
    let rec go = function
      | Leaf _ -> 1
      | Node (_, kids) -> 1 + go kids.(0)
    in
    go t.root

  (* Position of [key] in a sorted entry array: [Found i] or the
     insertion point [Insert i]. *)
  let search_leaf entries key =
    let lo = ref 0 and hi = ref (Array.length entries) in
    let found = ref (-1) in
    while !found < 0 && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = K.compare key (fst entries.(mid)) in
      if c = 0 then found := mid else if c < 0 then hi := mid else lo := mid + 1
    done;
    if !found >= 0 then Ok !found else Error !lo

  (* Child index to descend into: the first [i] with [key < seps.(i)],
     i.e. the number of separators [<= key]. *)
  let child_index seps key =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare key seps.(mid) < 0 then hi := mid else lo := mid + 1
    done;
    !lo

  let find t key =
    Stats.incr Stats.Index_probe;
    let rec go node =
      Stats.incr Stats.Index_node_visit;
      match node with
      | Leaf entries -> (
          match search_leaf entries key with
          | Ok i -> Some (snd entries.(i))
          | Error _ -> None)
      | Node (seps, kids) -> go kids.(child_index seps key)
    in
    go t.root

  let mem t key = Option.is_some (find t key)

  let find_map t key f =
    Stats.incr Stats.Index_probe;
    let rec go node =
      Stats.incr Stats.Index_node_visit;
      match node with
      | Leaf entries -> (
          match search_leaf entries key with
          | Ok i -> f (snd entries.(i))
          | Error _ -> None)
      | Node (seps, kids) -> go kids.(child_index seps key)
    in
    go t.root

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j ->
        if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  let array_set a i x =
    let a' = Array.copy a in
    a'.(i) <- x;
    a'

  type 'v ins = Done of 'v node | Split of 'v node * K.t * 'v node

  let insert t key value =
    Stats.incr Stats.Index_probe;
    let replaced = ref None in
    let rec go node =
      Stats.incr Stats.Index_node_visit;
      match node with
      | Leaf entries -> (
          match search_leaf entries key with
          | Ok i ->
              replaced := Some (snd entries.(i));
              Done (Leaf (array_set entries i (key, value)))
          | Error i ->
              let entries' = array_insert entries i (key, value) in
              if Array.length entries' <= t.degree then Done (Leaf entries')
              else
                let mid = Array.length entries' / 2 in
                let left = Array.sub entries' 0 mid in
                let right =
                  Array.sub entries' mid (Array.length entries' - mid)
                in
                Split (Leaf left, fst right.(0), Leaf right))
      | Node (seps, kids) -> (
          let i = child_index seps key in
          match go kids.(i) with
          | Done child -> Done (Node (seps, array_set kids i child))
          | Split (l, sep, r) ->
              let seps' = array_insert seps i sep in
              let kids' = array_insert (array_set kids i l) (i + 1) r in
              if Array.length kids' <= t.degree then Done (Node (seps', kids'))
              else
                (* split the internal node; the middle separator moves up *)
                let msep = Array.length seps' / 2 in
                let up = seps'.(msep) in
                let lseps = Array.sub seps' 0 msep in
                let rseps =
                  Array.sub seps' (msep + 1) (Array.length seps' - msep - 1)
                in
                let lkids = Array.sub kids' 0 (msep + 1) in
                let rkids =
                  Array.sub kids' (msep + 1) (Array.length kids' - msep - 1)
                in
                Split (Node (lseps, lkids), up, Node (rseps, rkids)))
    in
    (match go t.root with
    | Done node -> t.root <- node
    | Split (l, sep, r) -> t.root <- Node ([| sep |], [| l; r |]));
    if Option.is_none !replaced then t.size <- t.size + 1;
    !replaced

  let remove t key =
    Stats.incr Stats.Index_probe;
    let removed = ref None in
    let rec go node =
      Stats.incr Stats.Index_node_visit;
      match node with
      | Leaf entries -> (
          match search_leaf entries key with
          | Ok i ->
              removed := Some (snd entries.(i));
              Leaf (array_remove entries i)
          | Error _ -> node)
      | Node (seps, kids) -> (
          let i = child_index seps key in
          let child = go kids.(i) in
          let empty =
            match child with
            | Leaf [||] -> true
            | Leaf _ | Node _ -> false
          in
          if not empty then Node (seps, array_set kids i child)
          else if Array.length kids = 1 then
            (* the node's only subtree emptied: propagate emptiness up *)
            Leaf [||]
          else
            (* Drop the emptied leaf together with one adjacent separator
               (either neighbour keeps the bounds valid).  A node may end
               up with a single child and no separators; that keeps all
               leaf depths equal, and the root fixup below collapses such
               chains at the top. *)
            let seps' = array_remove seps (min i (Array.length seps - 1)) in
            Node (seps', array_remove kids i))
    in
    t.root <- go t.root;
    let rec collapse_root () =
      match t.root with
      | Node ([||], kids) ->
          t.root <- kids.(0);
          collapse_root ()
      | Leaf _ | Node _ -> ()
    in
    collapse_root ();
    if Option.is_some !removed then t.size <- t.size - 1;
    !removed

  let update t key f =
    match f (find t key) with
    | Some v -> ignore (insert t key v)
    | None -> ignore (remove t key)

  let min_binding t =
    let rec go = function
      | Leaf [||] -> None
      | Leaf entries -> Some entries.(0)
      | Node (_, kids) -> go kids.(0)
    in
    go t.root

  let max_binding t =
    let rec go = function
      | Leaf [||] -> None
      | Leaf entries -> Some entries.(Array.length entries - 1)
      | Node (_, kids) -> go kids.(Array.length kids - 1)
    in
    go t.root

  let iter f t =
    let rec go = function
      | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
      | Node (_, kids) -> Array.iter go kids
    in
    go t.root

  let fold f t acc =
    let acc = ref acc in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let iter_range ?lo ?hi f t =
    let below_hi k =
      match hi with None -> true | Some h -> K.compare k h <= 0
    in
    let above_lo k =
      match lo with None -> true | Some l -> K.compare k l >= 0
    in
    let rec go node =
      Stats.incr Stats.Index_node_visit;
      match node with
      | Leaf entries ->
          Array.iter (fun (k, v) -> if above_lo k && below_hi k then f k v) entries
      | Node (seps, kids) ->
          let first = match lo with None -> 0 | Some l -> child_index seps l in
          let last =
            match hi with
            | None -> Array.length kids - 1
            | Some h -> child_index seps h
          in
          for i = first to last do
            go kids.(i)
          done
    in
    Stats.incr Stats.Index_probe;
    go t.root

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let check_sorted entries =
      for i = 1 to Array.length entries - 1 do
        if K.compare (fst entries.(i - 1)) (fst entries.(i)) >= 0 then
          fail "Btree: leaf entries not strictly sorted"
      done
    in
    (* returns (height, key count) of the subtree, checking that all keys
       lie within (lo, hi]-style bounds given as options *)
    let rec go node lo hi =
      match node with
      | Leaf entries ->
          check_sorted entries;
          if Array.length entries > t.degree then fail "Btree: leaf overflow";
          Array.iter
            (fun (k, _) ->
              (match lo with
              | Some l when K.compare k l < 0 -> fail "Btree: key below bound"
              | _ -> ());
              match hi with
              | Some h when K.compare k h >= 0 -> fail "Btree: key above bound"
              | _ -> ())
            entries;
          (1, Array.length entries)
      | Node (seps, kids) ->
          if Array.length kids <> Array.length seps + 1 then
            fail "Btree: kids/seps arity mismatch";
          if Array.length kids > t.degree then fail "Btree: node overflow";
          for i = 1 to Array.length seps - 1 do
            if K.compare seps.(i - 1) seps.(i) >= 0 then
              fail "Btree: separators not sorted"
          done;
          let heights = ref [] and count = ref 0 in
          Array.iteri
            (fun i kid ->
              let lo' = if i = 0 then lo else Some seps.(i - 1) in
              let hi' = if i = Array.length seps then hi else Some seps.(i) in
              let h, c = go kid lo' hi' in
              heights := h :: !heights;
              count := !count + c)
            kids;
          (match !heights with
          | [] -> fail "Btree: empty internal node"
          | h :: rest ->
              if not (List.for_all (Int.equal h) rest) then
                fail "Btree: uneven subtree heights");
          (1 + List.hd !heights, !count)
    in
    let _, count = go t.root None None in
    if count <> t.size then fail "Btree: size %d <> counted %d" t.size count
end
