(* Physical query plans: one-time analysis of an [Ra.t] expression into
   a closure tree that executes with zero per-call recompilation.

   [Ra.eval_naive] pays, on every invocation, for work that depends only
   on the expression: [schema_of] at every node, [Predicate.compile] for
   every selection/theta-join, [Tuple.projector] for every projection,
   and a fresh hash table for every equi-join build side.  [compile]
   performs all of that once and additionally

   - pushes conjunctive equality selections over base relations into
     index probes ([Stats.Index_scan]) when a covering index exists, and
   - memoizes equi-join build tables across executions of the same plan,
     keyed by the versions of the relations beneath the build side
     ([Stats.Build_reuse]); any mutation bumps [Relation.version] and
     invalidates the table.

   The chronicle layer compiles each persistent view once and replays
   the plan per appended batch, which is what turns the paper's
   maintenance-complexity classes into small measured constants. *)

module Tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

type t = { source : Ra.t; schema : Schema.t; exec : unit -> Tuple.t list }

let schema t = t.schema
let source t = t.source
let run t = t.exec ()
let pp ppf t = Ra.pp ppf t.source

(* ---- select pushdown analysis ---- *)

(* Peel nested selections down to a base-relation scan. *)
let rec select_target preds = function
  | Ra.Select (p, e) -> select_target (p :: preds) e
  | Ra.Rel r -> Some (r, preds)
  | _ -> None

let rec conjuncts acc = function
  | Predicate.And (p, q) -> conjuncts (conjuncts acc q) p
  | p -> p :: acc

let eq_const = function
  | Predicate.Cmp (Predicate.Attr a, Predicate.Eq, Predicate.Const v)
  | Predicate.Cmp (Predicate.Const v, Predicate.Eq, Predicate.Attr a) ->
      Some (a, v)
  | _ -> None

(* Choose the widest index of [rel] whose every attribute is bound by an
   equality atom; returns the index attrs, their key values, and the
   residual conjuncts (unconsumed atoms, one consumed per index attr). *)
let choose_index rel atoms =
  let bound = List.filter_map (fun p -> Option.map (fun eq -> (p, eq)) (eq_const p)) atoms in
  let usable attrs =
    List.for_all (fun a -> List.exists (fun (_, (b, _)) -> String.equal a b) bound) attrs
  in
  let best =
    List.fold_left
      (fun acc attrs ->
        if usable attrs then
          match acc with
          | Some prev when List.length prev >= List.length attrs -> acc
          | _ -> Some attrs
        else acc)
      None (Relation.indexed_attrs rel)
  in
  match best with
  | None -> None
  | Some attrs ->
      (* consume one bound atom per index attribute, in order *)
      let consumed = ref [] in
      let key =
        List.map
          (fun a ->
            let p, (_, v) =
              List.find
                (fun (p, (b, _)) ->
                  String.equal a b && not (List.memq p !consumed))
                bound
            in
            consumed := p :: !consumed;
            v)
          attrs
      in
      let residual = List.filter (fun p -> not (List.memq p !consumed)) atoms in
      Some (attrs, key, residual)

(* Relations occurring beneath an expression (for version-keyed build
   caching; an expression without relations is constant once compiled). *)
let rec rels_of acc = function
  | Ra.Rel r -> r :: acc
  | Ra.Const _ -> acc
  | Ra.Select (_, e)
  | Ra.Project (_, e)
  | Ra.GroupBy (_, _, e)
  | Ra.Rename (_, e)
  | Ra.Prefix (_, e)
  | Ra.Distinct e ->
      rels_of acc e
  | Ra.Product (l, r)
  | Ra.EquiJoin (_, l, r)
  | Ra.ThetaJoin (_, l, r)
  | Ra.Union (l, r)
  | Ra.Diff (l, r) ->
      rels_of (rels_of acc l) r

(* ---- compilation ---- *)

(* Per-left-tuple kernels, shared verbatim by the sequential plans and
   the range-split parallel plans below so that both produce identical
   outputs, in identical order, with identical [Stats] accounting. *)

(* θ-join: all matches of one left tuple against the materialized right
   side. *)
let theta_matches keep rt ltu =
  List.filter_map
    (fun rtu ->
      Stats.incr Stats.Tuple_read;
      let tu = Tuple.concat ltu rtu in
      if keep tu then Some tu else None)
    rt

(* Cartesian product: one left tuple against the materialized right
   side. *)
let product_matches rt ltu =
  List.map
    (fun rtu ->
      Stats.incr Stats.Tuple_read;
      Tuple.concat ltu rtu)
    rt

(* Hash-join probe: all matches of one left tuple against the build
   table.  ([List.rev_map] restores bucket insertion order: buckets are
   built by consing.) *)
let equijoin_probe pairs l r =
  let ls = Ra.schema_of l and rs = Ra.schema_of r in
  let lkey = Tuple.projector ls (List.map fst pairs) in
  let dropped = List.map snd pairs in
  let keep = List.filter (fun n -> not (List.mem n dropped)) (Schema.names rs) in
  let rproj = Tuple.projector rs keep in
  fun table ltu ->
    let k = Array.to_list (lkey ltu) in
    Stats.incr Stats.Index_probe;
    match Tbl.find_opt table k with
    | None -> []
    | Some matches ->
        List.rev_map (fun rtu -> Tuple.concat ltu (rproj rtu)) matches

let rec comp expr : Schema.t * (unit -> Tuple.t list) =
  (* [Ra.schema_of] both resolves this node's schema and performs the
     static checks the interpreter would have raised lazily. *)
  let schema = Ra.schema_of expr in
  let exec =
    match expr with
    | Ra.Rel r -> fun () -> Relation.to_list r
    | Ra.Const (_, tuples) -> fun () -> tuples
    | Ra.Select (p, e) -> (
        match select_target [ p ] e with
        | Some (rel, preds) -> compile_rel_select rel preds
        | None ->
            let child_schema, child = comp e in
            let keep = Predicate.compile child_schema p in
            fun () ->
              List.filter
                (fun tu ->
                  Stats.incr Stats.Tuple_read;
                  keep tu)
                (child ()))
    | Ra.Project (attrs, e) ->
        let child_schema, child = comp e in
        let proj = Tuple.projector child_schema attrs in
        fun () -> List.map proj (child ())
    | Ra.Product (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () ->
          let rt = rexec () in
          List.concat_map (product_matches rt) (lexec ())
    | Ra.EquiJoin (pairs, l, r) -> compile_equijoin pairs l r
    | Ra.ThetaJoin (p, l, r) ->
        let keep = Predicate.compile schema p in
        let _, lexec = comp l and _, rexec = comp r in
        fun () ->
          let rt = rexec () in
          List.concat_map (theta_matches keep rt) (lexec ())
    | Ra.Union (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () -> Tuple.dedup (lexec () @ rexec ())
    | Ra.Diff (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () -> Tuple.diff (lexec ()) (rexec ())
    | Ra.GroupBy (gl, al, e) ->
        let child_schema, child = comp e in
        let grouper = Groupby.compiled child_schema ~group_by:gl ~aggs:al in
        fun () -> Groupby.run_compiled grouper (child ())
    | Ra.Rename (_, e) | Ra.Prefix (_, e) ->
        let _, child = comp e in
        child
    | Ra.Distinct e ->
        let _, child = comp e in
        fun () -> Tuple.dedup (child ())
  in
  (schema, exec)

(* A chain of selections over a base relation: try to answer the
   equality part with one index probe, filter the rest.  Falls back to
   scan + filter when no covering index exists (or the predicate shape
   defeats the analysis — only a top-level conjunction of atoms can be
   pushed). *)
and compile_rel_select rel preds =
  let rschema = Relation.schema rel in
  let atoms = List.fold_left conjuncts [] preds in
  match choose_index rel atoms with
  | Some (attrs, key, residual) ->
      let keep =
        match residual with
        | [] -> None
        | ps -> Some (Predicate.compile rschema (Predicate.conj ps))
      in
      fun () ->
        Stats.incr Stats.Index_scan;
        let hits = Relation.lookup rel ~attrs key in
        List.filter
          (fun tu ->
            Stats.incr Stats.Tuple_read;
            match keep with None -> true | Some keep -> keep tu)
          hits
  | None ->
      let keep = Predicate.compile rschema (Predicate.conj atoms) in
      fun () ->
        List.filter
          (fun tu ->
            Stats.incr Stats.Tuple_read;
            keep tu)
          (Relation.to_list rel)

(* Version-memoized build side of a hash join: the build table is
   rebuilt only when some relation beneath the build expression has
   changed since the previous execution of this plan.  Returned as a
   fetch thunk so the range-split plan can refresh the table on the
   submitting domain and hand the (from then on read-only) table to its
   probe tasks. *)
and equijoin_build pairs r =
  let rs = Ra.schema_of r in
  let rkey = Tuple.projector rs (List.map snd pairs) in
  let build_rels = rels_of [] r in
  let cache : (int list * Tuple.t list Tbl.t) option ref = ref None in
  let _, rexec = comp r in
  fun () ->
    let versions = List.map Relation.version build_rels in
    match !cache with
    | Some (vs, tbl) when List.equal Int.equal vs versions ->
        Stats.incr Stats.Build_reuse;
        tbl
    | _ ->
        let tbl = Tbl.create 256 in
        List.iter
          (fun tu ->
            let k = Array.to_list (rkey tu) in
            Tbl.replace tbl k
              (tu :: Option.value ~default:[] (Tbl.find_opt tbl k)))
          (rexec ());
        cache := Some (versions, tbl);
        tbl

(* Hash join: memoized build + per-tuple probe over the probe side. *)
and compile_equijoin pairs l r =
  let fetch = equijoin_build pairs r in
  let probe = equijoin_probe pairs l r in
  let _, lexec = comp l in
  fun () ->
    let table = fetch () in
    List.concat_map (probe table) (lexec ())

let compile expr =
  Stats.incr Stats.Plan_compile;
  let schema, exec = comp expr in
  { source = expr; schema; exec }

let eval expr = run (compile expr)

(* ---- parallel scan/aggregate (bulk materialization) ----

   Bulk evaluation — the initial materialization of a persistent view
   over retained history, not the Δ-path — decomposes into independent
   work over contiguous input ranges.  A top-level GROUPBY folds each
   range into a partial group table and merges them order-preservingly
   (Groupby.merge_partials); any other rangeable shape concatenates its
   per-range outputs, which is the sequential output exactly.

   Which shapes are rangeable?  A Select/Project/Rename/Prefix chain
   over one base Const or Rel is compiled range-wise (the scan and the
   filter run inside the parallel tasks).  A Select chain over a base
   Rel whose equality conjuncts cover an index does better still: each
   range performs one *bounded probe* (Relation.lookup_bounded — the
   index answer sliced to the range's row-id interval) instead of
   scanning its slice, so the ranged path pays the same
   O(matches + probe) the sequential select-pushdown pays and fires
   the same counter kinds (Index_scan / Index_probe / Tuple_read per
   hit).  Ranges partition the relation's row-id space [0, row_bound);
   per-key index runs are sorted ascending, so the per-range answers
   concatenate to the sequential probe's answer — the scan order —
   exactly.  On top of that:

   - equi-joins and θ-joins/products range-split their probe (left)
     side: the build table (version-memoized for equi-joins) or the
     materialized right side is produced once on the submitting domain,
     then shared read-only by the probe tasks.  Per-range probe outputs
     concatenate to the sequential probe order because the left split
     is contiguous and the per-tuple kernel is shared with the
     sequential plan.
   - unions, differences and DISTINCT evaluate both inputs as a first
     parallel phase (each side's own ranges — joins and chains below
     them parallelize too), then perform the {e global} set operation
     ([Tuple.dedup]/[Tuple.diff] — first-occurrence semantics need the
     whole collection, so this stitch is inherently sequential, and
     costs exactly what the sequential plan's own dedup pass costs) on
     the submitter and re-split the result for the consumer.

   The two-phase shapes submit their inner phase with [Exec.Pool.map]
   {e before} the consumer's parallel section starts: every pool
   interaction happens on the submitting domain inside [mk], range
   thunks themselves never touch the pool, so parallel sections
   sequence and never nest (the pool's discipline). *)

let range_thunks ~jobs arr =
  Array.map
    (fun (start, len) () -> Array.to_list (Array.sub arr start len))
    (Exec.Pool.chunk_ranges ~jobs (Array.length arr))

(* Ranged select-pushdown: the parallel counterpart of
   [compile_rel_select].  When the peeled Select chain bottoms out in a
   base relation and a covering index binds every attribute of some
   index (same analysis, same [choose_index] preference order), each
   tuple-range probes the index bounded to its own row-id interval and
   filters the residual conjuncts over the hits — per-hit kernel
   identical to the sequential probe, so tuples, order and counter
   kinds all match the sequential plan.  [None] when no covering index
   exists (callers fall back to the ranged scan + filter). *)
let ranged_rel_select ~jobs preds expr =
  match select_target preds expr with
  | None -> None
  | Some (rel, preds) -> (
      let rschema = Relation.schema rel in
      let atoms = List.fold_left conjuncts [] preds in
      match choose_index rel atoms with
      | None -> None
      | Some (attrs, key, residual) ->
          let keep =
            match residual with
            | [] -> None
            | ps -> Some (Predicate.compile rschema (Predicate.conj ps))
          in
          Some
            ( rschema,
              fun () ->
                Array.map
                  (fun (start, len) () ->
                    Stats.incr Stats.Index_scan;
                    let hits =
                      Relation.lookup_bounded rel ~attrs key ~lo:start
                        ~hi:(start + len)
                    in
                    List.filter
                      (fun tu ->
                        Stats.incr Stats.Tuple_read;
                        match keep with
                        | None -> true
                        | Some keep -> keep tu)
                      hits)
                  (Exec.Pool.chunk_ranges ~jobs (Relation.row_bound rel)) ))

(* Compile [expr] into a function producing per-range input thunks:
   Some (schema, mk) where [mk ()] re-splits the base at call time (a
   Rel's contents are only known then; a Const's split is hoisted).
   The concatenation of the thunks' outputs, in array order, is exactly
   the sequential plan's output. *)
let rec comp_ranged ~pool expr :
    (Schema.t * (unit -> (unit -> Tuple.t list) array)) option =
  let jobs = Exec.Pool.jobs pool in
  match expr with
  | Ra.Const (schema, tuples) ->
      let arr = Array.of_list tuples in
      Some (schema, fun () -> range_thunks ~jobs arr)
  | Ra.Rel r ->
      Some
        ( Relation.schema r,
          fun () -> range_thunks ~jobs (Array.of_list (Relation.to_list r)) )
  | Ra.Select (p, e) -> (
      match ranged_rel_select ~jobs [ p ] e with
      | Some _ as pushed -> pushed
      | None ->
          (* generic ranged filter: each range keeps its own matches *)
          Option.map
            (fun (schema, mk) ->
              let keep = Predicate.compile schema p in
              ( schema,
                fun () ->
                  Array.map
                    (fun thunk () ->
                      List.filter
                        (fun tu ->
                          Stats.incr Stats.Tuple_read;
                          keep tu)
                        (thunk ()))
                    (mk ()) ))
            (comp_ranged ~pool e))
  | Ra.Project (attrs, e) ->
      Option.map
        (fun ((schema : Schema.t), mk) ->
          let proj = Tuple.projector schema attrs in
          ( Ra.schema_of expr,
            fun () ->
              Array.map (fun thunk () -> List.map proj (thunk ())) (mk ()) ))
        (comp_ranged ~pool e)
  | Ra.Rename (_, e) | Ra.Prefix (_, e) ->
      (* pure metadata: same rows, renamed schema *)
      Option.map
        (fun (_, mk) -> (Ra.schema_of expr, mk))
        (comp_ranged ~pool e)
  | Ra.EquiJoin (pairs, l, r) ->
      Option.map
        (fun (_, lmk) ->
          let fetch = equijoin_build pairs r in
          let probe = equijoin_probe pairs l r in
          ( Ra.schema_of expr,
            fun () ->
              (* refresh the memoized table on the submitter; the probe
                 tasks only read it *)
              let table = fetch () in
              Array.map
                (fun thunk () -> List.concat_map (probe table) (thunk ()))
                (lmk ()) ))
        (comp_ranged ~pool l)
  | Ra.ThetaJoin (p, l, r) ->
      Option.map
        (fun (_, lmk) ->
          let keep = Predicate.compile (Ra.schema_of expr) p in
          let _, rexec = comp r in
          ( Ra.schema_of expr,
            fun () ->
              let rt = rexec () in
              Array.map
                (fun thunk () ->
                  List.concat_map (theta_matches keep rt) (thunk ()))
                (lmk ()) ))
        (comp_ranged ~pool l)
  | Ra.Product (l, r) ->
      Option.map
        (fun (_, lmk) ->
          let _, rexec = comp r in
          ( Ra.schema_of expr,
            fun () ->
              let rt = rexec () in
              Array.map
                (fun thunk () ->
                  List.concat_map (product_matches rt) (thunk ()))
                (lmk ()) ))
        (comp_ranged ~pool l)
  | Ra.Union (l, r) ->
      let lmk = side_thunks ~pool l and rmk = side_thunks ~pool r in
      Some
        ( Ra.schema_of expr,
          fun () ->
            let slices = Exec.Pool.map pool (Array.append (lmk ()) (rmk ())) in
            (* global first-occurrence dedup, then re-split for the
               consumer: identical to the sequential
               [Tuple.dedup (l @ r)] because slice order is input
               order *)
            range_thunks ~jobs
              (Array.of_list
                 (Tuple.dedup (List.concat (Array.to_list slices)))) )
  | Ra.Diff (l, r) ->
      let lmk = side_thunks ~pool l and rmk = side_thunks ~pool r in
      Some
        ( Ra.schema_of expr,
          fun () ->
            let lthunks = lmk () and rthunks = rmk () in
            let k = Array.length lthunks in
            let slices = Exec.Pool.map pool (Array.append lthunks rthunks) in
            let ls =
              List.concat (Array.to_list (Array.sub slices 0 k))
            in
            let rs =
              List.concat
                (Array.to_list (Array.sub slices k (Array.length slices - k)))
            in
            range_thunks ~jobs (Array.of_list (Tuple.diff ls rs)) )
  | Ra.Distinct e ->
      Option.map
        (fun (_, mk) ->
          ( Ra.schema_of expr,
            fun () ->
              let slices = Exec.Pool.map pool (mk ()) in
              range_thunks ~jobs
                (Array.of_list
                   (Tuple.dedup (List.concat (Array.to_list slices)))) ))
        (comp_ranged ~pool e)
  | Ra.GroupBy _ -> None

(* A union/difference input: its own ranges when rangeable, else one
   sequential thunk (still evaluated inside the side's parallel
   phase). *)
and side_thunks ~pool expr : unit -> (unit -> Tuple.t list) array =
  match comp_ranged ~pool expr with
  | Some (_, mk) -> mk
  | None ->
      let _, exec = comp expr in
      fun () -> [| exec |]

let compile_parallel pool expr =
  let jobs = Exec.Pool.jobs pool in
  if jobs <= 1 then compile expr
  else
    match expr with
    | Ra.GroupBy (gl, al, child) ->
        Stats.incr Stats.Plan_compile;
        let schema = Ra.schema_of expr in
        let child_schema, mk_ranges =
          match comp_ranged ~pool child with
          | Some (child_schema, mk) -> (child_schema, mk)
          | None ->
              (* sequential scan, parallel fold *)
              let child_schema, exec = comp child in
              ( child_schema,
                fun () -> range_thunks ~jobs (Array.of_list (exec ())) )
        in
        let grouper = Groupby.compiled child_schema ~group_by:gl ~aggs:al in
        let exec () =
          let partials =
            Exec.Pool.map pool
              (Array.map
                 (fun thunk () ->
                   Groupby.run_compiled_partial grouper (thunk ()))
                 (mk_ranges ()))
          in
          Groupby.merge_partials grouper (Array.to_list partials)
        in
        { source = expr; schema; exec }
    | _ -> (
        (* no top-level fold to merge: parallelize the scan itself and
           concatenate the per-range outputs (the sequential output,
           exactly) *)
        match comp_ranged ~pool expr with
        | None -> compile expr
        | Some (_, mk) ->
            Stats.incr Stats.Plan_compile;
            let schema = Ra.schema_of expr in
            let exec () =
              List.concat (Array.to_list (Exec.Pool.map pool (mk ())))
            in
            { source = expr; schema; exec })

(* Make [Ra.eval] the compiled pipeline (see the note in ra.ml). *)
let () = Ra.internal_set_eval eval
