(* Physical query plans: one-time analysis of an [Ra.t] expression into
   a closure tree that executes with zero per-call recompilation.

   [Ra.eval_naive] pays, on every invocation, for work that depends only
   on the expression: [schema_of] at every node, [Predicate.compile] for
   every selection/theta-join, [Tuple.projector] for every projection,
   and a fresh hash table for every equi-join build side.  [compile]
   performs all of that once and additionally

   - pushes conjunctive equality selections over base relations into
     index probes ([Stats.Index_scan]) when a covering index exists, and
   - memoizes equi-join build tables across executions of the same plan,
     keyed by the versions of the relations beneath the build side
     ([Stats.Build_reuse]); any mutation bumps [Relation.version] and
     invalidates the table.

   The chronicle layer compiles each persistent view once and replays
   the plan per appended batch, which is what turns the paper's
   maintenance-complexity classes into small measured constants. *)

module Tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

type t = { source : Ra.t; schema : Schema.t; exec : unit -> Tuple.t list }

let schema t = t.schema
let source t = t.source
let run t = t.exec ()
let pp ppf t = Ra.pp ppf t.source

(* ---- select pushdown analysis ---- *)

(* Peel nested selections down to a base-relation scan. *)
let rec select_target preds = function
  | Ra.Select (p, e) -> select_target (p :: preds) e
  | Ra.Rel r -> Some (r, preds)
  | _ -> None

let rec conjuncts acc = function
  | Predicate.And (p, q) -> conjuncts (conjuncts acc q) p
  | p -> p :: acc

let eq_const = function
  | Predicate.Cmp (Predicate.Attr a, Predicate.Eq, Predicate.Const v)
  | Predicate.Cmp (Predicate.Const v, Predicate.Eq, Predicate.Attr a) ->
      Some (a, v)
  | _ -> None

(* Choose the widest index of [rel] whose every attribute is bound by an
   equality atom; returns the index attrs, their key values, and the
   residual conjuncts (unconsumed atoms, one consumed per index attr). *)
let choose_index rel atoms =
  let bound = List.filter_map (fun p -> Option.map (fun eq -> (p, eq)) (eq_const p)) atoms in
  let usable attrs =
    List.for_all (fun a -> List.exists (fun (_, (b, _)) -> String.equal a b) bound) attrs
  in
  let best =
    List.fold_left
      (fun acc attrs ->
        if usable attrs then
          match acc with
          | Some prev when List.length prev >= List.length attrs -> acc
          | _ -> Some attrs
        else acc)
      None (Relation.indexed_attrs rel)
  in
  match best with
  | None -> None
  | Some attrs ->
      (* consume one bound atom per index attribute, in order *)
      let consumed = ref [] in
      let key =
        List.map
          (fun a ->
            let p, (_, v) =
              List.find
                (fun (p, (b, _)) ->
                  String.equal a b && not (List.memq p !consumed))
                bound
            in
            consumed := p :: !consumed;
            v)
          attrs
      in
      let residual = List.filter (fun p -> not (List.memq p !consumed)) atoms in
      Some (attrs, key, residual)

(* Relations occurring beneath an expression (for version-keyed build
   caching; an expression without relations is constant once compiled). *)
let rec rels_of acc = function
  | Ra.Rel r -> r :: acc
  | Ra.Const _ -> acc
  | Ra.Select (_, e)
  | Ra.Project (_, e)
  | Ra.GroupBy (_, _, e)
  | Ra.Rename (_, e)
  | Ra.Prefix (_, e)
  | Ra.Distinct e ->
      rels_of acc e
  | Ra.Product (l, r)
  | Ra.EquiJoin (_, l, r)
  | Ra.ThetaJoin (_, l, r)
  | Ra.Union (l, r)
  | Ra.Diff (l, r) ->
      rels_of (rels_of acc l) r

(* ---- compilation ---- *)

let rec comp expr : Schema.t * (unit -> Tuple.t list) =
  (* [Ra.schema_of] both resolves this node's schema and performs the
     static checks the interpreter would have raised lazily. *)
  let schema = Ra.schema_of expr in
  let exec =
    match expr with
    | Ra.Rel r -> fun () -> Relation.to_list r
    | Ra.Const (_, tuples) -> fun () -> tuples
    | Ra.Select (p, e) -> (
        match select_target [ p ] e with
        | Some (rel, preds) -> compile_rel_select rel preds
        | None ->
            let child_schema, child = comp e in
            let keep = Predicate.compile child_schema p in
            fun () ->
              List.filter
                (fun tu ->
                  Stats.incr Stats.Tuple_read;
                  keep tu)
                (child ()))
    | Ra.Project (attrs, e) ->
        let child_schema, child = comp e in
        let proj = Tuple.projector child_schema attrs in
        fun () -> List.map proj (child ())
    | Ra.Product (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () ->
          let rt = rexec () in
          List.concat_map
            (fun ltu ->
              List.map
                (fun rtu ->
                  Stats.incr Stats.Tuple_read;
                  Tuple.concat ltu rtu)
                rt)
            (lexec ())
    | Ra.EquiJoin (pairs, l, r) -> compile_equijoin pairs l r
    | Ra.ThetaJoin (p, l, r) ->
        let keep = Predicate.compile schema p in
        let _, lexec = comp l and _, rexec = comp r in
        fun () ->
          let rt = rexec () in
          List.concat_map
            (fun ltu ->
              List.filter_map
                (fun rtu ->
                  Stats.incr Stats.Tuple_read;
                  let tu = Tuple.concat ltu rtu in
                  if keep tu then Some tu else None)
                rt)
            (lexec ())
    | Ra.Union (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () -> Tuple.dedup (lexec () @ rexec ())
    | Ra.Diff (l, r) ->
        let _, lexec = comp l and _, rexec = comp r in
        fun () -> Tuple.diff (lexec ()) (rexec ())
    | Ra.GroupBy (gl, al, e) ->
        let child_schema, child = comp e in
        let grouper = Groupby.compiled child_schema ~group_by:gl ~aggs:al in
        fun () -> Groupby.run_compiled grouper (child ())
    | Ra.Rename (_, e) | Ra.Prefix (_, e) ->
        let _, child = comp e in
        child
    | Ra.Distinct e ->
        let _, child = comp e in
        fun () -> Tuple.dedup (child ())
  in
  (schema, exec)

(* A chain of selections over a base relation: try to answer the
   equality part with one index probe, filter the rest.  Falls back to
   scan + filter when no covering index exists (or the predicate shape
   defeats the analysis — only a top-level conjunction of atoms can be
   pushed). *)
and compile_rel_select rel preds =
  let rschema = Relation.schema rel in
  let atoms = List.fold_left conjuncts [] preds in
  match choose_index rel atoms with
  | Some (attrs, key, residual) ->
      let keep =
        match residual with
        | [] -> None
        | ps -> Some (Predicate.compile rschema (Predicate.conj ps))
      in
      fun () ->
        Stats.incr Stats.Index_scan;
        let hits = Relation.lookup rel ~attrs key in
        List.filter
          (fun tu ->
            Stats.incr Stats.Tuple_read;
            match keep with None -> true | Some keep -> keep tu)
          hits
  | None ->
      let keep = Predicate.compile rschema (Predicate.conj atoms) in
      fun () ->
        List.filter
          (fun tu ->
            Stats.incr Stats.Tuple_read;
            keep tu)
          (Relation.to_list rel)

(* Hash join with a version-memoized build side: the build table is
   rebuilt only when some relation beneath the build expression has
   changed since the previous execution of this plan. *)
and compile_equijoin pairs l r =
  let ls = Ra.schema_of l and rs = Ra.schema_of r in
  let lkey = Tuple.projector ls (List.map fst pairs) in
  let rkey = Tuple.projector rs (List.map snd pairs) in
  let dropped = List.map snd pairs in
  let keep = List.filter (fun n -> not (List.mem n dropped)) (Schema.names rs) in
  let rproj = Tuple.projector rs keep in
  let build_rels = rels_of [] r in
  let cache : (int list * Tuple.t list Tbl.t) option ref = ref None in
  let _, lexec = comp l and _, rexec = comp r in
  fun () ->
    let versions = List.map Relation.version build_rels in
    let table =
      match !cache with
      | Some (vs, tbl) when List.equal Int.equal vs versions ->
          Stats.incr Stats.Build_reuse;
          tbl
      | _ ->
          let tbl = Tbl.create 256 in
          List.iter
            (fun tu ->
              let k = Array.to_list (rkey tu) in
              Tbl.replace tbl k
                (tu :: Option.value ~default:[] (Tbl.find_opt tbl k)))
            (rexec ());
          cache := Some (versions, tbl);
          tbl
    in
    List.concat_map
      (fun ltu ->
        let k = Array.to_list (lkey ltu) in
        Stats.incr Stats.Index_probe;
        match Tbl.find_opt table k with
        | None -> []
        | Some matches ->
            List.rev_map (fun rtu -> Tuple.concat ltu (rproj rtu)) matches)
      (lexec ())

let compile expr =
  Stats.incr Stats.Plan_compile;
  let schema, exec = comp expr in
  { source = expr; schema; exec }

let eval expr = run (compile expr)

(* ---- parallel scan/aggregate (bulk materialization) ----

   A top-level GROUPBY over a large backing collection — the initial
   materialization of a persistent view, not the Δ-path — decomposes
   into independent partial folds over contiguous input ranges plus an
   order-preserving merge (Groupby.merge_partials).  When the input is
   a Select/Project chain over one base Const or Rel, the chain itself
   is compiled range-wise so the scan and filter run inside the
   parallel tasks too; any other child shape falls back to a
   sequential child evaluation with only the fold parallelized. *)

let range_thunks ~jobs arr =
  Array.map
    (fun (start, len) () -> Array.to_list (Array.sub arr start len))
    (Exec.Pool.chunk_ranges ~jobs (Array.length arr))

(* Compile [expr] into a function producing per-range input thunks:
   Some (schema, mk) where [mk ()] re-splits the base at call time (a
   Rel's contents are only known then; a Const's split is hoisted). *)
let rec comp_ranged ~jobs expr :
    (Schema.t * (unit -> (unit -> Tuple.t list) array)) option =
  match expr with
  | Ra.Const (schema, tuples) ->
      let arr = Array.of_list tuples in
      Some (schema, fun () -> range_thunks ~jobs arr)
  | Ra.Rel r ->
      Some
        ( Relation.schema r,
          fun () -> range_thunks ~jobs (Array.of_list (Relation.to_list r)) )
  | Ra.Select (p, e) ->
      Option.map
        (fun (schema, mk) ->
          let keep = Predicate.compile schema p in
          ( schema,
            fun () ->
              Array.map
                (fun thunk () ->
                  List.filter
                    (fun tu ->
                      Stats.incr Stats.Tuple_read;
                      keep tu)
                    (thunk ()))
                (mk ()) ))
        (comp_ranged ~jobs e)
  | Ra.Project (attrs, e) ->
      Option.map
        (fun ((schema : Schema.t), mk) ->
          let proj = Tuple.projector schema attrs in
          ( Ra.schema_of expr,
            fun () ->
              Array.map (fun thunk () -> List.map proj (thunk ())) (mk ()) ))
        (comp_ranged ~jobs e)
  | _ -> None

let compile_parallel pool expr =
  let jobs = Exec.Pool.jobs pool in
  match expr with
  | Ra.GroupBy (gl, al, child) when jobs > 1 ->
      Stats.incr Stats.Plan_compile;
      let schema = Ra.schema_of expr in
      let ranged =
        match comp_ranged ~jobs child with
        | Some (child_schema, mk) -> (child_schema, mk)
        | None ->
            (* sequential scan, parallel fold *)
            let child_schema, exec = comp child in
            ( child_schema,
              fun () -> range_thunks ~jobs (Array.of_list (exec ())) )
      in
      let child_schema, mk_ranges = ranged in
      let grouper = Groupby.compiled child_schema ~group_by:gl ~aggs:al in
      let exec () =
        let partials =
          Exec.Pool.map pool
            (Array.map
               (fun thunk () -> Groupby.run_compiled_partial grouper (thunk ()))
               (mk_ranges ()))
        in
        Groupby.merge_partials grouper (Array.to_list partials)
      in
      { source = expr; schema; exec }
  | _ -> compile expr

(* Make [Ra.eval] the compiled pipeline (see the note in ra.ml). *)
let () = Ra.internal_set_eval eval
