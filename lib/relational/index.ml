type kind = Hash | Ordered

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

module Key_tree = Btree.Make (struct
  type t = Value.t list

  let compare = Value.compare_list
end)

type t = {
  kind : kind;
  attrs : string list;
  hash : int list Key_tbl.t; (* used when kind = Hash *)
  tree : int list Key_tree.t; (* used when kind = Ordered *)
}

let create kind ~attrs =
  { kind; attrs; hash = Key_tbl.create 64; tree = Key_tree.create () }

let kind t = t.kind
let attrs t = t.attrs

(* Per-key row lists are kept sorted ascending (row-insertion order in
   the common append-only case, where the new row id exceeds every
   stored one and the insert is O(1)).  Sortedness is what makes a
   probe's answer the relation's scan order, and what lets the bounded
   probes below slice a contiguous sub-run out of a key's run. *)
let rec insert_sorted row = function
  | [] -> [ row ]
  | r :: rest when r < row -> r :: insert_sorted row rest
  | rows -> row :: rows

let add t key row =
  match t.kind with
  | Hash ->
      let rows = Option.value ~default:[] (Key_tbl.find_opt t.hash key) in
      Key_tbl.replace t.hash key (insert_sorted row rows)
  | Ordered ->
      Key_tree.update t.tree key (function
        | None -> Some [ row ]
        | Some rows -> Some (insert_sorted row rows))

let remove_one rows row =
  let rec go = function
    | [] -> []
    | r :: rest -> if r = row then rest else r :: go rest
  in
  go rows

let remove t key row =
  match t.kind with
  | Hash -> (
      match Key_tbl.find_opt t.hash key with
      | None -> ()
      | Some rows -> (
          match remove_one rows row with
          | [] -> Key_tbl.remove t.hash key
          | rows' -> Key_tbl.replace t.hash key rows'))
  | Ordered ->
      Key_tree.update t.tree key (function
        | None -> None
        | Some rows -> (
            match remove_one rows row with [] -> None | rows' -> Some rows'))

let find t key =
  match t.kind with
  | Hash ->
      Stats.incr Stats.Index_probe;
      Option.value ~default:[] (Key_tbl.find_opt t.hash key)
  | Ordered -> Option.value ~default:[] (Key_tree.find t.tree key)

(* The sub-run of a sorted row list falling in [lo, hi).  Sortedness
   makes this a drop-prefix / take-while pass: once past [hi) nothing
   later can qualify. *)
let bounded_run ~lo ~hi rows =
  let rec skip = function
    | r :: rest when r < lo -> skip rest
    | rows -> take rows
  and take = function
    | r :: rest when r < hi -> r :: take rest
    | _ -> []
  in
  skip rows

let find_bounded t key ~lo ~hi =
  if lo >= hi then []
  else
    match t.kind with
    | Hash ->
        Stats.incr Stats.Index_probe;
        bounded_run ~lo ~hi
          (Option.value ~default:[] (Key_tbl.find_opt t.hash key))
    | Ordered ->
        (* one descent; the slice happens at the leaf *)
        Option.value ~default:[]
          (Key_tree.find_map t.tree key (fun rows ->
               Some (bounded_run ~lo ~hi rows)))

let find_range t ~lo ~hi =
  match t.kind with
  | Hash -> invalid_arg "Index.find_range: hash index has no order"
  | Ordered ->
      let acc = ref [] in
      Key_tree.iter_range ?lo ?hi (fun _ rows -> acc := rows :: !acc) t.tree;
      List.concat (List.rev !acc)

let cardinality t =
  match t.kind with
  | Hash -> Key_tbl.length t.hash
  | Ordered -> Key_tree.length t.tree
