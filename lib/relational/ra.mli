(** Relational algebra over relations, extended with grouping and
    aggregation.

    This is the substrate query language: Proposition 3.1's "obvious
    candidate" for the view-definition language ℒ (shown by the paper to
    be only IM-Cᵏ), the engine behind the recomputation baselines, and
    the language for ad-hoc queries over persistent views.

    Semantics: [Select]/[Project]/[Product]/[Join]/[GroupBy] are
    evaluated with bag semantics; [Union], [Diff] and [Distinct] apply
    set semantics (union "discards tuples common to E₁ and E₂", as in
    the paper's Δ-rules). *)

type t =
  | Rel of Relation.t
  | Const of Schema.t * Tuple.t list  (** inline literal collection *)
  | Select of Predicate.t * t
  | Project of string list * t
  | Product of t * t
      (** Cartesian product; operand attribute names must be disjoint
          (use [Rename]/[Prefix]). *)
  | EquiJoin of (string * string) list * t * t
      (** [(a, b)] pairs equate left attribute [a] with right attribute
          [b]; the right join attributes are dropped from the result. *)
  | ThetaJoin of Predicate.t * t * t
      (** General join: product filtered by a predicate over the
          concatenated schema. *)
  | Union of t * t
  | Diff of t * t
  | GroupBy of string list * Aggregate.call list * t
  | Rename of (string * string) list * t
  | Prefix of string * t  (** qualify every attribute as ["p.a"] *)
  | Distinct of t

exception Type_error of string

val schema_of : t -> Schema.t
(** Static schema; raises {!Type_error} on ill-formed expressions
    (unknown attributes, union-incompatible operands, name clashes). *)

val eval : t -> Tuple.t list
(** Evaluate to a tuple list (bumps the usual tuple counters).
    Equivalent to [Plan.run (Plan.compile e)]: one compilation pass
    (schema resolution, predicate/projector compilation, select
    pushdown) followed by a zero-recompilation execution.  Callers that
    evaluate the same expression repeatedly should hold a {!Plan.t}
    instead. *)

val eval_naive : t -> Tuple.t list
(** The original tree-walking interpreter, which re-derives schemas and
    recompiles predicates/projectors at every node on every call.  Kept
    as the executable reference semantics: the property suite checks
    [Plan.run (Plan.compile e)] against [eval_naive e]. *)

val eval_rel : name:string -> t -> Relation.t
(** Evaluate and materialize into a fresh relation. *)

val pp : Format.formatter -> t -> unit

(**/**)

val internal_set_eval : (t -> Tuple.t list) -> unit
(** Wired once by {!Plan} at library initialization so that [eval] is
    the compiled pipeline without a module cycle.  Not for users. *)

(**/**)
