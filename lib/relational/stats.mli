(** Global operation counters.

    The complexity claims of the chronicle paper are stated "modulo index
    lookups" and in terms of tuples touched, not wall-clock time.  Every
    hot path in the engine bumps one of these counters so that tests and
    benchmarks can verify a complexity *shape* (e.g. "zero chronicle
    tuples scanned per append", "O(log |R|) index probes") independently
    of machine noise. *)

type counter =
  | Index_probe      (** one key lookup in a hash or B+-tree index *)
  | Index_node_visit (** one B+-tree node traversed (log-factor witness) *)
  | Tuple_read       (** one tuple materialized or inspected *)
  | Tuple_write      (** one tuple inserted/updated in a relation or view *)
  | Agg_step         (** one incremental aggregate-state transition *)
  | Group_lookup     (** one group-key localization in a persistent view *)
  | Chronicle_scan   (** one *stored* chronicle tuple read back (should be
                         0 during incremental maintenance) *)
  | Plan_compile     (** one physical-plan compilation ({!Plan.compile} or
                         {!Delta.compile}); steady-state maintenance should
                         show 0 per batch *)
  | Plan_cache_hit   (** one per-view plan-cache hit on the maintenance path *)
  | Plan_cache_miss  (** one plan-cache miss (first use, or recompile after
                         redefinition) *)
  | Index_scan       (** one selection answered by an index probe instead of
                         a full scan + filter (select-pushdown) *)
  | Build_reuse      (** one hash-join build table reused because the build
                         side's relation versions were unchanged *)
  | Predicate_compile  (** one [Predicate.compile] name-resolution pass *)
  | Projector_compile  (** one [Tuple.projector] position-resolution pass *)
  | Journal_append   (** one transaction record written to the write-ahead
                         journal before any state mutation *)
  | Journal_bytes    (** bytes written to the journal (via {!add}) *)
  | Journal_replay   (** one journal record replayed through the normal
                         delta path during recovery *)
  | Checkpoint       (** one atomic checkpoint (tmp-write + rename +
                         journal truncation) completed *)
  | Rollback         (** one transactional append rolled back after a
                         mid-batch failure (no partial state observable) *)
  | Staged_appends   (** one append accepted into a group-commit staging
                         queue (acked later, in watermark order) *)
  | Group_commit     (** one multi-append group committed under a single
                         write-ahead record (one journal append + one
                         sync for the whole group) *)
  | Group_size_max   (** high-water mark: the largest group (in appends)
                         committed since the last {!reset} — maintained
                         with {!record_max}, not additive *)
  | Sync_retry       (** one transient storage-sync failure absorbed by the
                         durability layer's bounded retry/backoff loop *)
  | Scrub_record     (** one journal record CRC-verified by a read-only
                         {!Scrub} pass *)
  | Checkpoint_fallback
                     (** one damaged checkpoint generation skipped during
                         recovery in favour of an older one *)
  | Salvage_quarantined
                     (** one damaged journal suffix moved to a quarantine
                         sidecar by salvage recovery *)
  | Heavy_promote    (** one join key promoted to the heavy partition (its
                         matched-tuple run materialized; see {!Skew}) *)
  | Heavy_demote     (** one heavy join key demoted back to light (its
                         cached run discarded) *)
  | Heavy_probe      (** one join-Δ match answered from a heavy key's
                         cached run (no relation probe) *)
  | Light_fold       (** one join-Δ match computed by the lazy light path
                         (index probe or scan of the opposite side) *)
  | Retract_apply    (** one {!Db.retract} operation applied (journaled,
                         every affected view maintained under weight −1) *)
  | Weight_cancel    (** one output tuple whose before/after occurrences
                         cancelled while diffing a non-linear operator's
                         at-sn slice under retraction *)
  | Aggregate_reprobe
                     (** one view group whose MIN/MAX state could not be
                         inverted and was recomputed from retained
                         history (the bounded re-probe fallback) *)

val incr : counter -> unit
val add : counter -> int -> unit
val get : counter -> int
(** Counters are atomic ([Atomic.t] cells): the parallel maintenance
    path bumps them from several domains at once and no update is ever
    lost, so totals over a quiescent region are exact regardless of the
    domain count.  With [jobs = 1] the behaviour (and every observable
    value) is identical to plain mutable integers. *)

val record_max : counter -> int -> unit
(** [record_max c n] raises counter [c] to [n] if [n] is larger (atomic
    CAS loop, never shrinks).  For high-water counters such as
    {!Group_size_max}; differencing such a counter across a region
    yields a bound, not a sum. *)

val all : counter list
(** Every counter, in slot order (for exhaustive iteration in tests and
    benchmark reports). *)

(** A snapshot of all counters, for before/after differencing. *)
type snapshot

val snapshot : unit -> snapshot
(** Torn-read-safe at any parallelism degree: each counter is read with
    exactly one atomic load into the result (never re-read, never
    assembled from parts), so every reported value is one the counter
    actually held, and — counters being monotone between {!reset}s —
    successive snapshots taken by one domain are pointwise
    non-decreasing even under concurrent bumps from pool domains.
    Under concurrent bumps the vector is not a single global cut, but
    any bump is counted in exactly one of two bracketing snapshots, so
    [diff before after] over a region that starts and ends quiescent is
    exact. *)

val reset : unit -> unit

(** [diff before after] = counts accumulated between the two snapshots. *)
val diff : snapshot -> snapshot -> (counter * int) list

val diff_get : snapshot -> snapshot -> counter -> int
val pp_diff : Format.formatter -> (counter * int) list -> unit
val counter_name : counter -> string
