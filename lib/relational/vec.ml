type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () =
  ignore capacity;
  { data = [||]; len = 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit t.data 0 data' 0 t.len;
  t.data <- data'

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (fun x -> ignore (push t x)) l;
  t

let clear t =
  t.data <- [||];
  t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate: out of bounds";
  (* drop references so the GC can reclaim the tail *)
  if n < t.len && n > 0 then Array.fill t.data n (t.len - n) t.data.(0);
  if n = 0 then t.data <- [||];
  t.len <- n

let iter_range f t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Vec.iter_range: out of bounds";
  for i = pos to pos + len - 1 do
    f t.data.(i)
  done
