module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

type table = {
  input_schema : Schema.t;
  group_by : string list;
  aggs : Aggregate.call list;
  key_of : Tuple.t -> Tuple.t;
  arg_pos : int option array; (* argument position per agg call *)
  groups : Aggregate.state array Key_tbl.t;
  mutable order : Value.t list list; (* first-appearance order, reversed *)
  out_schema : Schema.t;
}

let create input_schema ~group_by ~aggs =
  let key_of = Tuple.projector input_schema group_by in
  let arg_pos =
    Array.of_list
      (List.map
         (fun (c : Aggregate.call) ->
           Option.map (Schema.pos input_schema) c.arg)
         aggs)
  in
  {
    input_schema;
    group_by;
    aggs;
    key_of;
    arg_pos;
    groups = Key_tbl.create 64;
    order = [];
    out_schema = Aggregate.result_schema input_schema group_by aggs;
  }

let fresh_states aggs =
  Array.of_list (List.map (fun (c : Aggregate.call) -> Aggregate.init c.func) aggs)

let step t tuple =
  let key = Array.to_list (t.key_of tuple) in
  Stats.incr Stats.Group_lookup;
  let states =
    match Key_tbl.find_opt t.groups key with
    | Some states -> states
    | None ->
        let states = fresh_states t.aggs in
        Key_tbl.add t.groups key states;
        t.order <- key :: t.order;
        states
  in
  List.iteri
    (fun i (c : Aggregate.call) ->
      let arg =
        match t.arg_pos.(i) with
        | None -> Value.Int 1 (* COUNT([*]): any non-null value *)
        | Some p -> tuple.(p)
      in
      states.(i) <- Aggregate.step c.func states.(i) arg)
    t.aggs

(* Inverse-aware merge of one retraction into the group table: undo one
   [step t tuple].  All calls of the group must invert for the undo to
   be applied — a single MIN/MAX losing its extremum answers [`Reprobe]
   and leaves the table untouched, so the caller can recompute the
   group from retained history instead.  A group whose COUNT-like
   multiplicity reaches zero is the caller's to drop; this table keeps
   empty groups (mirroring [step]'s first-appearance order contract). *)
let unstep t tuple =
  let key = Array.to_list (t.key_of tuple) in
  Stats.incr Stats.Group_lookup;
  match Key_tbl.find_opt t.groups key with
  | None -> `Reprobe
  | Some states ->
      let inverted =
        List.mapi
          (fun i (c : Aggregate.call) ->
            let arg =
              match t.arg_pos.(i) with
              | None -> Value.Int 1
              | Some p -> tuple.(p)
            in
            Aggregate.unstep c.func states.(i) arg)
          t.aggs
      in
      if List.exists (function Aggregate.Reprobe -> true | _ -> false) inverted
      then `Reprobe
      else begin
        List.iteri
          (fun i inv ->
            match inv with
            | Aggregate.Inverted st -> states.(i) <- st
            | Aggregate.Reprobe -> assert false)
          inverted;
        `Inverted
      end

let result_schema t = t.out_schema

let row_of t key states =
  Tuple.make
    (key
    @ List.mapi
        (fun i (c : Aggregate.call) -> Aggregate.final c.func states.(i))
        t.aggs)

let result t =
  (* [t.order] is reversed first-appearance order; rev_map restores it *)
  List.rev_map (fun key -> row_of t key (Key_tbl.find t.groups key)) t.order

let group_count t = Key_tbl.length t.groups

let current t key =
  Option.map (row_of t key) (Key_tbl.find_opt t.groups key)

let run schema tuples ~group_by ~aggs =
  let t = create schema ~group_by ~aggs in
  List.iter (step t) tuples;
  (t.out_schema, result t)

(* Compile-once variant: the projector and argument positions are
   resolved a single time; each [run_compiled] call folds its input into
   a fresh group table with zero per-call name resolution. *)
type compiled = {
  c_aggs : Aggregate.call list;
  c_key_of : Tuple.t -> Tuple.t;
  c_arg_pos : int option array;
  c_out_schema : Schema.t;
}

let compiled input_schema ~group_by ~aggs =
  {
    c_aggs = aggs;
    c_key_of = Tuple.projector input_schema group_by;
    c_arg_pos =
      Array.of_list
        (List.map
           (fun (c : Aggregate.call) -> Option.map (Schema.pos input_schema) c.arg)
           aggs);
    c_out_schema = Aggregate.result_schema input_schema group_by aggs;
  }

let compiled_schema c = c.c_out_schema

(* A partial aggregation over one slice of the input: the group table
   plus first-appearance order (reversed).  Partials over contiguous
   input ranges merge (in range order) to exactly the table a single
   sequential fold would build — including its output order — because
   the global first appearance of a key is its first appearance in the
   earliest range containing it. *)
type partial = {
  p_groups : Aggregate.state array Key_tbl.t;
  p_order : Value.t list list; (* reversed first-appearance order *)
}

let run_compiled_partial c tuples =
  let groups = Key_tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tuple ->
      let key = Array.to_list (c.c_key_of tuple) in
      Stats.incr Stats.Group_lookup;
      let states =
        match Key_tbl.find_opt groups key with
        | Some states -> states
        | None ->
            let states = fresh_states c.c_aggs in
            Key_tbl.add groups key states;
            order := key :: !order;
            states
      in
      List.iteri
        (fun i (call : Aggregate.call) ->
          let arg =
            match c.c_arg_pos.(i) with
            | None -> Value.Int 1 (* COUNT([*]): any non-null value *)
            | Some p -> tuple.(p)
          in
          states.(i) <- Aggregate.step call.func states.(i) arg)
        c.c_aggs)
    tuples;
  { p_groups = groups; p_order = !order }

let compiled_row_of c key states =
  Tuple.make
    (key
    @ List.mapi
        (fun i (call : Aggregate.call) -> Aggregate.final call.func states.(i))
        c.c_aggs)

let result_of_partial c { p_groups; p_order } =
  List.rev_map (fun key -> compiled_row_of c key (Key_tbl.find p_groups key)) p_order

let merge_partials c = function
  | [] -> []
  | [ single ] -> result_of_partial c single
  | first :: rest ->
      (* merge into the first partial, visiting later partials in range
         order and their keys in first-appearance order; a key unseen so
         far is appended (adopting its states), a seen key merges
         state-wise via [Aggregate.merge] *)
      let merged = first.p_groups in
      let order = ref first.p_order in
      List.iter
        (fun p ->
          List.iter
            (fun key ->
              let states = Key_tbl.find p.p_groups key in
              match Key_tbl.find_opt merged key with
              | None ->
                  Key_tbl.add merged key states;
                  order := key :: !order
              | Some acc ->
                  List.iteri
                    (fun i (call : Aggregate.call) ->
                      acc.(i) <- Aggregate.merge call.func acc.(i) states.(i))
                    c.c_aggs)
            (List.rev p.p_order))
        rest;
      result_of_partial c { p_groups = merged; p_order = !order }

let run_compiled c tuples = result_of_partial c (run_compiled_partial c tuples)

let run_rel rel ~group_by ~aggs =
  run (Relation.schema rel) (Relation.to_list rel) ~group_by ~aggs
