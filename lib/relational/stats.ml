type counter =
  | Index_probe
  | Index_node_visit
  | Tuple_read
  | Tuple_write
  | Agg_step
  | Group_lookup
  | Chronicle_scan
  | Plan_compile
  | Plan_cache_hit
  | Plan_cache_miss
  | Index_scan
  | Build_reuse
  | Predicate_compile
  | Projector_compile
  | Journal_append
  | Journal_bytes
  | Journal_replay
  | Checkpoint
  | Rollback
  | Staged_appends
  | Group_commit
  | Group_size_max
  | Sync_retry
  | Scrub_record
  | Checkpoint_fallback
  | Salvage_quarantined
  | Heavy_promote
  | Heavy_demote
  | Heavy_probe
  | Light_fold
  | Retract_apply
  | Weight_cancel
  | Aggregate_reprobe

let all =
  [ Index_probe; Index_node_visit; Tuple_read; Tuple_write; Agg_step;
    Group_lookup; Chronicle_scan; Plan_compile; Plan_cache_hit;
    Plan_cache_miss; Index_scan; Build_reuse; Predicate_compile;
    Projector_compile; Journal_append; Journal_bytes; Journal_replay;
    Checkpoint; Rollback; Staged_appends; Group_commit; Group_size_max;
    Sync_retry; Scrub_record; Checkpoint_fallback; Salvage_quarantined;
    Heavy_promote; Heavy_demote; Heavy_probe; Light_fold; Retract_apply;
    Weight_cancel; Aggregate_reprobe ]

let slot = function
  | Index_probe -> 0
  | Index_node_visit -> 1
  | Tuple_read -> 2
  | Tuple_write -> 3
  | Agg_step -> 4
  | Group_lookup -> 5
  | Chronicle_scan -> 6
  | Plan_compile -> 7
  | Plan_cache_hit -> 8
  | Plan_cache_miss -> 9
  | Index_scan -> 10
  | Build_reuse -> 11
  | Predicate_compile -> 12
  | Projector_compile -> 13
  | Journal_append -> 14
  | Journal_bytes -> 15
  | Journal_replay -> 16
  | Checkpoint -> 17
  | Rollback -> 18
  | Staged_appends -> 19
  | Group_commit -> 20
  | Group_size_max -> 21
  | Sync_retry -> 22
  | Scrub_record -> 23
  | Checkpoint_fallback -> 24
  | Salvage_quarantined -> 25
  | Heavy_promote -> 26
  | Heavy_demote -> 27
  | Heavy_probe -> 28
  | Light_fold -> 29
  | Retract_apply -> 30
  | Weight_cancel -> 31
  | Aggregate_reprobe -> 32

let counter_name = function
  | Index_probe -> "index_probe"
  | Index_node_visit -> "index_node_visit"
  | Tuple_read -> "tuple_read"
  | Tuple_write -> "tuple_write"
  | Agg_step -> "agg_step"
  | Group_lookup -> "group_lookup"
  | Chronicle_scan -> "chronicle_scan"
  | Plan_compile -> "plan_compile"
  | Plan_cache_hit -> "plan_cache_hit"
  | Plan_cache_miss -> "plan_cache_miss"
  | Index_scan -> "index_scan"
  | Build_reuse -> "build_reuse"
  | Predicate_compile -> "predicate_compile"
  | Projector_compile -> "projector_compile"
  | Journal_append -> "journal_append"
  | Journal_bytes -> "journal_bytes"
  | Journal_replay -> "journal_replay"
  | Checkpoint -> "checkpoint"
  | Rollback -> "rollback"
  | Staged_appends -> "staged_appends"
  | Group_commit -> "group_commit"
  | Group_size_max -> "group_size_max"
  | Sync_retry -> "sync_retry"
  | Scrub_record -> "scrub_record"
  | Checkpoint_fallback -> "checkpoint_fallback"
  | Salvage_quarantined -> "salvage_quarantined"
  | Heavy_promote -> "heavy_promote"
  | Heavy_demote -> "heavy_demote"
  | Heavy_probe -> "heavy_probe"
  | Light_fold -> "light_fold"
  | Retract_apply -> "retract_apply"
  | Weight_cancel -> "weight_cancel"
  | Aggregate_reprobe -> "aggregate_reprobe"

(* One atomic cell per counter: the transaction path folds the deltas
   of independent views on several domains at once, and every fold
   bumps these counters.  [fetch_and_add] keeps accounting exact under
   that parallelism (no lost updates); on the jobs = 1 path the cost is
   one uncontended atomic RMW, and the observable values are identical
   to the old plain-int implementation. *)
let counts = Array.init 33 (fun _ -> Atomic.make 0)

let incr c = Atomic.incr counts.(slot c)
let add c n = ignore (Atomic.fetch_and_add counts.(slot c) n)
let get c = Atomic.get counts.(slot c)

(* High-water counters (Group_size_max): a CAS loop so concurrent
   recorders can never shrink the maximum; monotone between [reset]s
   like every other cell, so snapshot monotonicity still holds. *)
let record_max c n =
  let cell = counts.(slot c) in
  let rec loop () =
    let cur = Atomic.get cell in
    if n > cur && not (Atomic.compare_and_set cell cur n) then loop ()
  in
  loop ()

type snapshot = int array

(* Torn-read safety: each cell is read with exactly one atomic load and
   the loaded value is stored straight into the fresh result array —
   never re-read, never assembled from partial words.  Consequences,
   valid at any parallelism degree:

   - every per-counter value in a snapshot is a value the counter
     actually held at the instant of its load (no phantom values);
   - counters only grow between [reset]s, so snapshots taken in
     sequence by one domain are {e pointwise monotone} even while other
     domains bump concurrently (asserted by the jobs = 4 stress test in
     test_parallel.ml);
   - every bump lands in exactly one of any two bracketing snapshots,
     so before/after differencing over a region that starts and ends
     quiescent is exact — and with jobs = 1 exact, full stop.

   The vector as a whole is still not a single global cut (loads of
   different cells happen at slightly different instants); no consumer
   in this codebase needs one. *)
let snapshot () = Array.init (Array.length counts) (fun i -> Atomic.get counts.(i))
let reset () = Array.iter (fun a -> Atomic.set a 0) counts

let diff before after =
  List.filter_map
    (fun c ->
      let d = after.(slot c) - before.(slot c) in
      if d = 0 then None else Some (c, d))
    all

let diff_get before after c = after.(slot c) - before.(slot c)

let pp_diff ppf d =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    (fun ppf (c, n) -> Format.fprintf ppf "%s=%d" (counter_name c) n)
    ppf d
