type counter =
  | Index_probe
  | Index_node_visit
  | Tuple_read
  | Tuple_write
  | Agg_step
  | Group_lookup
  | Chronicle_scan
  | Plan_compile
  | Plan_cache_hit
  | Plan_cache_miss
  | Index_scan
  | Build_reuse
  | Predicate_compile
  | Projector_compile
  | Journal_append
  | Journal_bytes
  | Journal_replay
  | Checkpoint
  | Rollback

let all =
  [ Index_probe; Index_node_visit; Tuple_read; Tuple_write; Agg_step;
    Group_lookup; Chronicle_scan; Plan_compile; Plan_cache_hit;
    Plan_cache_miss; Index_scan; Build_reuse; Predicate_compile;
    Projector_compile; Journal_append; Journal_bytes; Journal_replay;
    Checkpoint; Rollback ]

let slot = function
  | Index_probe -> 0
  | Index_node_visit -> 1
  | Tuple_read -> 2
  | Tuple_write -> 3
  | Agg_step -> 4
  | Group_lookup -> 5
  | Chronicle_scan -> 6
  | Plan_compile -> 7
  | Plan_cache_hit -> 8
  | Plan_cache_miss -> 9
  | Index_scan -> 10
  | Build_reuse -> 11
  | Predicate_compile -> 12
  | Projector_compile -> 13
  | Journal_append -> 14
  | Journal_bytes -> 15
  | Journal_replay -> 16
  | Checkpoint -> 17
  | Rollback -> 18

let counter_name = function
  | Index_probe -> "index_probe"
  | Index_node_visit -> "index_node_visit"
  | Tuple_read -> "tuple_read"
  | Tuple_write -> "tuple_write"
  | Agg_step -> "agg_step"
  | Group_lookup -> "group_lookup"
  | Chronicle_scan -> "chronicle_scan"
  | Plan_compile -> "plan_compile"
  | Plan_cache_hit -> "plan_cache_hit"
  | Plan_cache_miss -> "plan_cache_miss"
  | Index_scan -> "index_scan"
  | Build_reuse -> "build_reuse"
  | Predicate_compile -> "predicate_compile"
  | Projector_compile -> "projector_compile"
  | Journal_append -> "journal_append"
  | Journal_bytes -> "journal_bytes"
  | Journal_replay -> "journal_replay"
  | Checkpoint -> "checkpoint"
  | Rollback -> "rollback"

let counts = Array.make 19 0

let incr c =
  let i = slot c in
  counts.(i) <- counts.(i) + 1

let add c n =
  let i = slot c in
  counts.(i) <- counts.(i) + n

let get c = counts.(slot c)

type snapshot = int array

let snapshot () = Array.copy counts
let reset () = Array.fill counts 0 (Array.length counts) 0

let diff before after =
  List.filter_map
    (fun c ->
      let d = after.(slot c) - before.(slot c) in
      if d = 0 then None else Some (c, d))
    all

let diff_get before after c = after.(slot c) - before.(slot c)

let pp_diff ppf d =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    (fun ppf (c, n) -> Format.fprintf ppf "%s=%d" (counter_name c) n)
    ppf d
