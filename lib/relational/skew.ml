(* Heavy-light partition state for one compiled key-join site.

   Invariants that carry the byte-identity proof obligation:

   - a cached run for [key] is exactly
       [List.map project (Relation.lookup rel ~attrs key)]
     evaluated at relation version [rel_version] (the build walks the
     row-id space in contiguous chunks with [lookup_bounded], whose
     contract says the concatenation equals [lookup]'s answer);
   - a cached run is only ever served while
     [Relation.version rel = rel_version]: the first probe after any
     relation mutation demotes everything before answering;
   - promotion installs the run with a single [Hashtbl.replace] after
     the build completes, and the fault probe fires before it — so a
     crash inside a promote leaves no partial state, and a crash inside
     a demote leaves [rel_version] stale, which makes the next probe
     re-run the (idempotent) demotion.

   The frequency table is approximate by design: a direct-mapped
   sketch (one slot per hash bucket, colliding keys conflate) with
   lazy epoch decay — every [decay_interval] touches the epoch
   advances, and a slot's count is right-shifted by its age on the
   next read.  Tracking is therefore O(1) and allocation-free per
   probe, with no periodic sweep to spike the append tail; a stale
   cold slot simply reads as (near) zero.  Approximation only affects
   *which* keys are heavy (collisions can only over-promote) — never
   the tuples a probe returns. *)

let adaptive_base = 16
let max_heavy = 64
let sketch_bits = 12
let sketch_size = 1 lsl sketch_bits
let decay_interval = 8192
let build_chunk = 4096

(* Each sketch slot packs (epoch lsl count_bits) lor count into one
   int, so a touch reads and writes a single cache line — the sketch
   must not add cache pressure of its own on top of the relation
   index it is trying to shield.  Counts cap near 2 * decay_interval,
   comfortably under 2^count_bits. *)
let count_bits = 20
let count_mask = (1 lsl count_bits) - 1

(* Counts are halved every [decay_interval] touches, so they top out
   near 2 * [decay_interval]: a configured bar at or above this cutoff
   can never be reached.  Treat it as an explicit off-switch and skip
   tracking entirely — the lazy fold is then exactly the
   pre-partition maintenance path (the baseline E19 measures
   against). *)
let off_threshold = 65_536

type t = {
  configured : int;  (* <= 0 = adaptive *)
  off : bool;  (* unreachable bar: pure lazy folds, no tracking *)
  mutable threshold : int;
  counts : int array;  (* direct-mapped packed (epoch, count) slots *)
  mutable epoch : int;  (* advances every [decay_interval] touches *)
  heavy : (Value.t list, Tuple.t list) Hashtbl.t;
  mutable rel_version : int;  (* version the heavy runs were built at *)
  mutable touches : int;  (* probes since the last epoch advance *)
}

let create ?(threshold = 0) () =
  {
    configured = threshold;
    off = threshold >= off_threshold;
    threshold = (if threshold <= 0 then adaptive_base else threshold);
    counts = Array.make sketch_size 0;
    epoch = 0;
    heavy = Hashtbl.create 16;
    rel_version = -1;
    touches = 0;
  }

let threshold t = t.threshold
let heavy_count t = Hashtbl.length t.heavy
let is_heavy t key = Hashtbl.mem t.heavy key
let p_promote = "heavy-promote"
let p_demote = "heavy-demote"

(* The transition probe is process-global (like [Db.set_fold_probe]'s
   role, but partition sites are created inside compiled plans where no
   database handle is in scope).  Written only by the durability
   layer's attach/detach; read on the fold path — a plain word-sized
   load, safe under the OCaml memory model. *)
let probe : (string -> unit) option ref = ref None
let set_probe f = probe := f
let hit_probe point = match !probe with None -> () | Some f -> f point

let demote t key =
  hit_probe p_demote;
  Stats.incr Stats.Heavy_demote;
  Hashtbl.remove t.heavy key

(* Demote every heavy key.  [rel_version] is updated only after the
   last removal so that a probe-injected crash mid-teardown re-enters
   this sweep on the next fold instead of serving a stale run. *)
let demote_all t version =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.heavy [] in
  List.iter (demote t) keys;
  t.rel_version <- version

(* Single-int keys (by far the common join-key shape: one keyed
   attribute) take a multiplicative hash instead of the structural
   [Hashtbl.hash] walk — the sketch touch sits on every appended
   tuple's fold path, so tens of nanoseconds matter here.  Conflating
   differently-shaped keys is harmless: the sketch is approximate and
   collisions can only over-promote. *)
let slot key =
  match key with
  | [ Value.Int n ] -> (n * 0x9E3779B1) lsr 11 land (sketch_size - 1)
  | k -> Hashtbl.hash k land (sketch_size - 1)

(* A slot's effective count: halved once per epoch it has sat
   unwritten — the lazy form of the periodic decay sweep. *)
let count_of t s =
  let v = t.counts.(s) in
  let age = t.epoch - (v lsr count_bits) in
  if age > count_bits then 0 else (v land count_mask) lsr age

(* Count one arrival of [key]; returns its (approximate) count.  One
   array read, one write, no allocation. *)
let touch t key =
  t.touches <- t.touches + 1;
  if t.touches >= decay_interval then begin
    t.touches <- 0;
    t.epoch <- t.epoch + 1
  end;
  let s = slot key in
  let c = count_of t s + 1 in
  t.counts.(s) <- (t.epoch lsl count_bits) lor c;
  c

(* Materialize [key]'s projected run by walking the row-id space in
   contiguous chunks — [lookup_bounded]'s concatenation contract makes
   the result byte-identical to one [lookup].  The chunk scales with
   the row bound (never more than four probes per build): a promote
   must stay cheap even when the stream churns keys across the bar,
   or rebuild cost lands in the very tail the partition is flattening. *)
let build_run rel ~attrs ~project key =
  let bound = Relation.row_bound rel in
  let chunk = max build_chunk ((bound + 3) / 4) in
  let rec go lo acc =
    if lo >= bound then List.concat (List.rev acc)
    else
      let hi = min bound (lo + chunk) in
      go hi (Relation.lookup_bounded rel ~attrs key ~lo ~hi :: acc)
  in
  List.map project (go 0 [])

(* Adaptive rebalance: if the heavy set outgrew its budget, double the
   bar and demote the keys now under it. *)
let rebalance t =
  if t.configured <= 0 then
    while Hashtbl.length t.heavy > max_heavy do
      t.threshold <- t.threshold * 2;
      let cold =
        Hashtbl.fold
          (fun k _ acc ->
            if count_of t (slot k) < t.threshold then k :: acc else acc)
          t.heavy []
      in
      List.iter (demote t) cold
    done

let matches_tracked t rel ~attrs ~project key =
  let v = Relation.version rel in
  if v <> t.rel_version then demote_all t v;
  let count = touch t key in
  (* fast path: a key under the bar is served lazily without consulting
     the heavy table at all — promotion requires crossing the bar, and
     heavy keys keep arriving so their counts stay above it.  The rare
     exception (a heavy key whose sketch slot decayed under the bar)
     just takes the lazy fold, which is byte-identical to its cached
     run by the build invariant — it merely forgoes the cache hit. *)
  if count < t.threshold then begin
    Stats.incr Stats.Light_fold;
    List.map project (Relation.lookup rel ~attrs key)
  end
  else
    match Hashtbl.find_opt t.heavy key with
    | Some run ->
        Stats.incr Stats.Heavy_probe;
        run
    | None ->
        if count >= t.threshold then begin
          let run = build_run rel ~attrs ~project key in
          hit_probe p_promote;
          Stats.incr Stats.Heavy_promote;
          Hashtbl.replace t.heavy key run;
          rebalance t;
          run
        end
        else begin
          Stats.incr Stats.Light_fold;
          List.map project (Relation.lookup rel ~attrs key)
        end

let matches t rel ~attrs ~project key =
  if t.off then begin
    Stats.incr Stats.Light_fold;
    List.map project (Relation.lookup rel ~attrs key)
  end
  else matches_tracked t rel ~attrs ~project key
