(** Incrementally computable aggregation functions.

    The paper admits aggregation functions that are "incrementally
    computable, or decomposable into incremental computation functions":
    computable in O(n) over a group of size n and in O(1) per single-
    tuple increment.  COUNT, SUM, MIN and MAX are directly incremental;
    AVG decomposes into (SUM, COUNT).  Every state also supports
    [merge], which the periodic-view window optimizer (§5.1) uses to
    recombine per-bucket partial states. *)

type func = Count | Sum | Min | Max | Avg | Var | Stddev

(** One aggregation column of a [GROUPBY(R, GL, AL)]: the function, its
    argument attribute ([None] only for [Count], meaning COUNT( * )),
    and the output attribute name. *)
type call = { func : func; arg : string option; alias : string }

val count_star : string -> call
val count : string -> string -> call
val sum : string -> string -> call
val min_ : string -> string -> call
val max_ : string -> string -> call
val avg : string -> string -> call
val var_ : string -> string -> call
val stddev : string -> string -> call

type state

val init : func -> state
val step : func -> state -> Value.t -> state
(** O(1).  Null arguments are skipped for all functions except
    COUNT( * ), mirroring SQL.  Bumps the [Agg_step] counter. *)

type inverse =
  | Inverted of state  (** the state with one [step v] undone *)
  | Reprobe
      (** the function has no inverse for this transition (MIN/MAX losing
          their extremum, or a state inconsistent with the retraction) —
          recompute the group from retained history *)

val unstep : func -> state -> Value.t -> inverse
(** O(1) inverse of {!step} — the weight −1 transition of ℤ-weighted
    deltas.  COUNT, SUM, AVG, VAR and STDDEV invert exactly (null
    arguments are skipped, mirroring {!step}); MIN/MAX answer
    [Reprobe] when the retracted value reaches the current extremum.
    Bumps [Agg_step] like the forward transition. *)

val merge : func -> state -> state -> state
(** Combine two partial states over disjoint tuple sets.  O(1). *)

val final : func -> state -> Value.t
(** Value of the aggregate; [Null] for empty MIN/MAX/AVG/SUM groups
    except COUNT, which is [Int 0]. *)

val batch : func -> Value.t list -> Value.t
(** O(n) from-scratch evaluation (the non-incremental reference). *)

val func_name : func -> string
val func_of_name : string -> func option
val output_ty : func -> Value.ty option -> Value.ty
(** Result type given the argument type ([None] for COUNT( * )). *)

val result_schema : Schema.t -> string list -> call list -> Schema.t
(** Schema of [GROUPBY(R, GL, AL)]: grouping attributes then one
    attribute per call, named by its alias. *)

val pp_call : Format.formatter -> call -> unit

val sexp_of_state : state -> Sexp.t
(** Lossless encoding of an aggregate state (for snapshots). *)

val state_of_sexp : Sexp.t -> state
(** Raises [Failure] on malformed input. *)
