exception Csv_error of { message : string; line : int; column : int }

(* [column] is the 1-based field index within the offending record;
   0 when the error is not attributable to a single field. *)
let csv_error ?(column = 0) line fmt =
  Format.kasprintf (fun message -> raise (Csv_error { message; line; column })) fmt

(* ---- low-level record reader ---- *)

(* Split CSV text into records of fields, honouring quotes.  Newlines
   inside quoted fields are preserved; CRLF is accepted. *)
let records_of_string text =
  let n = String.length text in
  let records = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := (List.rev !fields, !line) :: !records;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  let any = ref false in
  while !i < n do
    let c = text.[!i] in
    any := true;
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        if c = '\n' then incr line;
        Buffer.add_char buf c;
        incr i
      end
    end
    else
      match c with
      | '"' ->
          in_quotes := true;
          incr i
      | ',' ->
          flush_field ();
          incr i
      | '\r' -> incr i
      | '\n' ->
          flush_record ();
          incr line;
          incr i
      | _ ->
          Buffer.add_char buf c;
          incr i
  done;
  if !in_quotes then csv_error !line "unterminated quoted field";
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  ignore !any;
  List.rev !records

(* ---- typed conversion ---- *)

(* [line]/[column] locate the field for typed error reporting; they are
   0/0 when parsing outside a record context (see {!parse_value}). *)
let parse_value_at ~line ~column ty s =
  if String.length s = 0 then Value.Null
  else
    match ty with
    | Value.TInt -> (
        match int_of_string_opt (String.trim s) with
        | Some i -> Value.Int i
        | None -> csv_error ~column line "%S is not an integer" s)
    | Value.TFloat -> (
        match float_of_string_opt (String.trim s) with
        | Some f -> Value.Float f
        | None -> csv_error ~column line "%S is not a float" s)
    | Value.TStr -> Value.Str s
    | Value.TBool -> (
        match String.lowercase_ascii (String.trim s) with
        | "true" | "t" | "1" | "yes" -> Value.Bool true
        | "false" | "f" | "0" | "no" -> Value.Bool false
        | _ -> csv_error ~column line "%S is not a boolean" s)

let parse_value ty s = parse_value_at ~line:0 ~column:0 ty s

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let format_value = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.12g" f
  | Value.Str s -> if needs_quoting s || s = "" then quote s else s

let tuples_of_string ?(header = true) schema text =
  let records = records_of_string text in
  let records =
    match header, records with
    | false, _ -> records
    | true, [] -> csv_error 1 "missing header row"
    | true, (names, line) :: rest ->
        let expected = Schema.names schema in
        if not (List.equal String.equal (List.map String.trim names) expected)
        then
          csv_error line "header %s does not match schema (%s)"
            (String.concat "," names)
            (String.concat "," expected);
        rest
  in
  let attrs = Schema.attrs schema in
  List.map
    (fun (fields, line) ->
      if List.length fields <> Array.length attrs then
        csv_error line "expected %d fields, found %d" (Array.length attrs)
          (List.length fields);
      Tuple.make
        (List.mapi
           (fun i field ->
             let a = attrs.(i) in
             try parse_value_at ~line ~column:(i + 1) a.Schema.ty field with
             | Csv_error { message; line; column } ->
                 csv_error ~column line "field %s: %s" a.Schema.name message
             | Failure msg | Invalid_argument msg ->
                 csv_error ~column:(i + 1) line "field %s: %s" a.Schema.name msg)
           fields))
    records

let string_of_tuples ?(header = true) schema tuples =
  let buf = Buffer.create 1024 in
  if header then begin
    Buffer.add_string buf (String.concat "," (Schema.names schema));
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun tu ->
      Buffer.add_string buf
        (String.concat ","
           (List.map format_value (Array.to_list (tu : Tuple.t))));
      Buffer.add_char buf '\n')
    tuples;
  Buffer.contents buf

let load_relation rel ?header text =
  let tuples = tuples_of_string ?header (Relation.schema rel) text in
  Relation.insert_all rel tuples;
  List.length tuples

let dump_relation ?header rel =
  string_of_tuples ?header (Relation.schema rel) (Relation.to_list rel)

let load_file ?header schema path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  tuples_of_string ?header schema text

let save_file ?header schema path tuples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (string_of_tuples ?header schema tuples))
