(** Schema-driven CSV import/export for relations and tuple streams.

    The dialect is RFC-4180-ish: comma-separated, double-quote quoting
    with [""] as the embedded-quote escape, and an optional header row.
    Values parse according to the target schema ([Null] for empty,
    unquoted fields). *)

exception Csv_error of { message : string; line : int; column : int }
(** [line] is 1-based; [column] is the 1-based field index within the
    record, or [0] when the error is not attributable to one field
    (unterminated quote, arity mismatch, bad header). *)

val parse_value : Value.ty -> string -> Value.t
(** Raises {!Csv_error} (with position [0:0]) on unparsable input; use
    {!tuples_of_string} for row/column-located errors.  Empty strings
    parse as [Null]. *)

val format_value : Value.t -> string

val tuples_of_string : ?header:bool -> Schema.t -> string -> Tuple.t list
(** Parse CSV text into tuples of the schema.  With [header] (default
    true) the first row is checked against the schema's attribute
    names.  Raises {!Csv_error} on malformed input, arity mismatches,
    or unparsable fields. *)

val string_of_tuples : ?header:bool -> Schema.t -> Tuple.t list -> string

val load_relation : Relation.t -> ?header:bool -> string -> int
(** Insert all rows of the CSV text; returns the count. *)

val dump_relation : ?header:bool -> Relation.t -> string

val load_file : ?header:bool -> Schema.t -> string -> Tuple.t list
val save_file : ?header:bool -> Schema.t -> string -> Tuple.t list -> unit
