exception Crash of string
exception Sync_failed of string

(* [hit] is called from the transaction path, which at [jobs > 1] folds
   affected views on several domains concurrently — the [view-fold]
   crash point in particular fires from pool workers.  A mutex
   serializes all mutation of the tables and the countdowns; at most
   one concurrent prober wins the race to crash (the others see
   [dead = true] and pass through), mirroring a real machine where one
   fault takes the process down once. *)
type t = {
  lock : Mutex.t;
  armed : (string, int ref) Hashtbl.t; (* remaining hits before firing *)
  counts : (string, int) Hashtbl.t;
  mutable torn : (int ref * int) option; (* appends before firing, bytes kept *)
  mutable sync_fail : (int ref * int ref) option;
      (* (healthy syncs left, failures left): transient — the storage
         raises [Sync_failed] instead of crashing, modelling an I/O
         error the durability layer may retry through *)
  mutable dead : bool;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create () =
  { lock = Mutex.create (); armed = Hashtbl.create 8;
    counts = Hashtbl.create 8; torn = None; sync_fail = None; dead = false }

let arm t ?(after = 0) name =
  if after < 0 then invalid_arg "Fault.arm: negative countdown";
  locked t (fun () -> Hashtbl.replace t.armed name (ref after))

let disarm t name = locked t (fun () -> Hashtbl.remove t.armed name)

let disarm_all t =
  locked t (fun () ->
      Hashtbl.reset t.armed;
      t.torn <- None;
      t.sync_fail <- None)

let hit_count t name =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.counts name))

let hit t name =
  let fire =
    locked t (fun () ->
        Hashtbl.replace t.counts name
          (Option.value ~default:0 (Hashtbl.find_opt t.counts name) + 1);
        if t.dead then false
        else
          match Hashtbl.find_opt t.armed name with
          | Some remaining when !remaining = 0 ->
              Hashtbl.remove t.armed name;
              t.dead <- true;
              true
          | Some remaining ->
              decr remaining;
              false
          | None -> false)
  in
  if fire then raise (Crash name)

let is_dead t = t.dead

let revive t =
  locked t (fun () -> t.dead <- false);
  disarm_all t

let arm_torn_write ?(after = 0) t ~keep =
  if after < 0 || keep < 0 then invalid_arg "Fault.arm_torn_write";
  locked t (fun () -> t.torn <- Some (ref after, keep))

let arm_sync_failures ?(after = 0) t ~fails =
  if after < 0 || fails <= 0 then invalid_arg "Fault.arm_sync_failures";
  locked t (fun () -> t.sync_fail <- Some (ref after, ref fails))

let wrap_storage t (s : Storage.t) =
  {
    s with
    Storage.append =
      (fun name data ->
        (* decide under the lock, perform storage I/O outside it *)
        let tear =
          locked t (fun () ->
              match t.torn with
              | Some (remaining, keep) when (not t.dead) && !remaining = 0 ->
                  t.torn <- None;
                  t.dead <- true;
                  Some keep
              | Some (remaining, _) when not t.dead ->
                  decr remaining;
                  None
              | _ -> None)
        in
        match tear with
        | Some keep ->
            s.Storage.append name
              (String.sub data 0 (min keep (String.length data)));
            raise (Crash "torn-write")
        | None -> s.Storage.append name data);
    Storage.sync =
      (fun name ->
        let fail =
          locked t (fun () ->
              match t.sync_fail with
              | Some (healthy, remaining) when not t.dead ->
                  if !healthy > 0 then begin
                    decr healthy;
                    false
                  end
                  else begin
                    decr remaining;
                    if !remaining <= 0 then t.sync_fail <- None;
                    true
                  end
              | _ -> false)
        in
        if fail then raise (Sync_failed name) else s.Storage.sync name);
  }

let flip_bit (s : Storage.t) ~name ~byte ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Fault.flip_bit: bit out of range";
  match s.Storage.read name with
  | None -> invalid_arg (Printf.sprintf "Fault.flip_bit: %S is absent" name)
  | Some data ->
      if byte < 0 || byte >= String.length data then
        invalid_arg "Fault.flip_bit: byte offset out of range";
      let b = Bytes.of_string data in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      s.Storage.write name (Bytes.unsafe_to_string b)
