exception Crash of string

type t = {
  armed : (string, int ref) Hashtbl.t; (* remaining hits before firing *)
  counts : (string, int) Hashtbl.t;
  mutable torn : (int ref * int) option; (* appends before firing, bytes kept *)
  mutable dead : bool;
}

let create () =
  { armed = Hashtbl.create 8; counts = Hashtbl.create 8; torn = None;
    dead = false }

let arm t ?(after = 0) name =
  if after < 0 then invalid_arg "Fault.arm: negative countdown";
  Hashtbl.replace t.armed name (ref after)

let disarm t name = Hashtbl.remove t.armed name

let disarm_all t =
  Hashtbl.reset t.armed;
  t.torn <- None

let hit_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.counts name)

let hit t name =
  Hashtbl.replace t.counts name (hit_count t name + 1);
  if not t.dead then
    match Hashtbl.find_opt t.armed name with
    | Some remaining when !remaining = 0 ->
        Hashtbl.remove t.armed name;
        t.dead <- true;
        raise (Crash name)
    | Some remaining -> decr remaining
    | None -> ()

let is_dead t = t.dead

let revive t =
  t.dead <- false;
  disarm_all t

let arm_torn_write ?(after = 0) t ~keep =
  if after < 0 || keep < 0 then invalid_arg "Fault.arm_torn_write";
  t.torn <- Some (ref after, keep)

let wrap_storage t (s : Storage.t) =
  {
    s with
    Storage.append =
      (fun name data ->
        match t.torn with
        | Some (remaining, keep) when (not t.dead) && !remaining = 0 ->
            t.torn <- None;
            t.dead <- true;
            s.Storage.append name
              (String.sub data 0 (min keep (String.length data)));
            raise (Crash "torn-write")
        | Some (remaining, _) when not t.dead ->
            decr remaining;
            s.Storage.append name data
        | _ -> s.Storage.append name data);
  }

let flip_bit (s : Storage.t) ~name ~byte ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Fault.flip_bit: bit out of range";
  match s.Storage.read name with
  | None -> invalid_arg (Printf.sprintf "Fault.flip_bit: %S is absent" name)
  | Some data ->
      if byte < 0 || byte >= String.length data then
        invalid_arg "Fault.flip_bit: byte offset out of range";
      let b = Bytes.of_string data in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      s.Storage.write name (Bytes.unsafe_to_string b)
