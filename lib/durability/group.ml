open Relational
open Chronicle_core

(* This module is the *commit* group (a batch of staged appends drained
   under one journal record); [Cg] is the chronicle group (the
   clock/watermark scope of Chronicle_core). *)
module Cg = Chronicle_core.Group

type outcome = Pending | Acked of Seqnum.t | Rejected of exn

type ticket = { mutable outcome : outcome }

type staged = {
  id : int; (* staging order, for queue restoration after a failed flush *)
  ticket : ticket;
  sgroup : string;
  sbatch : (string * Tuple.t list) list;
}

type t = {
  db : Db.t;
  mutable limit : int;
  mutable queue : staged list; (* newest first *)
  mutable queued : int;
  mutable next_id : int;
  mutable flushing : bool;
}

let create ?(batch = 1) db =
  if batch < 1 then invalid_arg "Group.create: batch threshold must be >= 1";
  { db; limit = batch; queue = []; queued = 0; next_id = 0; flushing = false }

let db t = t.db
let batch t = t.limit
let pending t = t.queued

(* ---- the committer ---- *)

let ack s sn = s.ticket.outcome <- Acked sn
let reject e s = s.ticket.outcome <- Rejected e

let commit_single t gname s =
  match Db.append_multi t.db ~group:gname s.sbatch with
  | sn -> ack s sn
  | exception e ->
      reject e s;
      raise e

(* Commit one chronicle group's partition of the drained queue.  A
   group of one — and any group over a database with batch hooks, whose
   per-batch timing group commit would defer — takes the plain
   per-append path, keeping those commits byte-identical to unstaged
   appends; everything else commits as one atomic [Db.append_group]
   under a single write-ahead record.  On failure, every ticket whose
   append was attempted (the whole group on a group abort) is rejected,
   the untouched remainder of the partition goes back on the queue
   still pending, and the failure re-raises. *)
let commit_part t gname staged =
  match staged with
  | [ s ] -> commit_single t gname s
  | staged when Db.has_batch_hooks t.db ->
      let rec per_append = function
        | [] -> ()
        | s :: rest -> (
            match commit_single t gname s with
            | () -> per_append rest
            | exception e ->
                (* [s] is rejected; [rest] was never attempted *)
                t.queue <- t.queue @ List.rev rest;
                t.queued <- t.queued + List.length rest;
                raise e)
      in
      per_append staged
  | staged -> (
      match Db.append_group t.db ~group:gname (List.map (fun s -> s.sbatch) staged) with
      | sns -> List.iter2 ack staged sns
      | exception e ->
          (* all-or-nothing: the whole group aborted together *)
          List.iter (reject e) staged;
          raise e)

let flush t =
  if not t.flushing && t.queue <> [] then begin
    t.flushing <- true;
    Fun.protect ~finally:(fun () -> t.flushing <- false) @@ fun () ->
    let items = List.rev t.queue in
    t.queue <- [];
    t.queued <- 0;
    (* partition by chronicle group, preserving staging order within
       each partition and ordering partitions by first appearance (in
       practice a flush holds a single group) *)
    let order = ref [] and parts = Hashtbl.create 4 in
    List.iter
      (fun s ->
        match Hashtbl.find_opt parts s.sgroup with
        | Some cell -> cell := s :: !cell
        | None ->
            let cell = ref [ s ] in
            Hashtbl.add parts s.sgroup cell;
            order := s.sgroup :: !order)
      items;
    let rec commit = function
      | [] -> ()
      | gname :: rest -> (
          let staged = List.rev !(Hashtbl.find parts gname) in
          match commit_part t gname staged with
          | () -> commit rest
          | exception e ->
              (* untouched partitions go back on the queue in staging
                 order, still pending; the failure propagates to the
                 flusher *)
              let unprocessed =
                List.sort
                  (fun a b -> compare a.id b.id)
                  (List.concat_map (fun g -> !(Hashtbl.find parts g)) rest)
              in
              t.queue <- t.queue @ List.rev unprocessed;
              t.queued <- t.queued + List.length unprocessed;
              raise e)
    in
    commit (List.rev !order)
  end

let set_batch t n =
  if n < 1 then invalid_arg "Group.set_batch: batch threshold must be >= 1";
  t.limit <- n;
  if t.queued >= n then flush t

(* ---- staging ---- *)

let stage t ?group:gname batch =
  let g =
    match gname with
    | Some n -> Db.group t.db n
    | None -> Db.default_group t.db
  in
  (* eager validation: an append that could never commit fails here,
     synchronously, and is never enqueued — so a staged append can only
     fail later through its whole group aborting *)
  if batch = [] then invalid_arg "Group.stage: empty batch";
  List.iter
    (fun (cname, tuples) ->
      let c = Db.chronicle t.db cname in
      if not (Cg.same (Chron.group c) g) then
        invalid_arg
          (Printf.sprintf "Group.stage: chronicle %s is not in group %s" cname
             (Cg.name g));
      Chron.check_batch c tuples)
    batch;
  let ticket = { outcome = Pending } in
  let s = { id = t.next_id; ticket; sgroup = Cg.name g; sbatch = batch } in
  t.next_id <- t.next_id + 1;
  t.queue <- s :: t.queue;
  t.queued <- t.queued + 1;
  Stats.incr Stats.Staged_appends;
  if t.queued >= t.limit then flush t;
  ticket

let await t ticket =
  (match ticket.outcome with Pending -> flush t | _ -> ());
  match ticket.outcome with
  | Acked sn -> Ok sn
  | Rejected e -> Error e
  | Pending -> invalid_arg "Group.await: ticket is not in this stager's queue"
