(** Read-only storage verification.

    [run] CRC-verifies every checkpoint generation and every journal
    record — sealed segments and the active one — and returns a typed
    damage inventory: per-segment record counts and the first bad
    offset where verification stopped believing the bytes.  Nothing is
    modified, ever: scrub is safe against live storage and is the
    "should I salvage?" probe the CLI exposes as [chronicle-cli
    scrub].

    Each verified journal record bumps [Stats.Scrub_record]. *)

type checkpoint_status = {
  ck_name : string;
  generation : int option;  (** [None] — the bare legacy file *)
  ck_bytes : int;
  ck_damage : string option;
      (** [None] = verified.  Generations verify header + payload CRC;
          the legacy file (no CRC in its format) verifies structural
          parse only. *)
}

type segment_status = {
  seg_name : string;
  sealed : bool;
  seg_bytes : int;
  records : int;  (** complete, checksum-valid records *)
  torn_tail : bool;
      (** active segment died mid-append — expected, tolerated, not
          counted as damage *)
  seg_damage : Journal.damage option;
      (** first bad record: checksum mismatch, unparseable payload,
          foreign magic, or a torn {e sealed} segment *)
}

type t = {
  checkpoints : checkpoint_status list;
  segments : segment_status list;
}

val run : Storage.t -> t
(** Inventory every checkpoint (legacy first, then generations
    ascending) and every journal segment (sealed ascending, active
    last).  Read-only. *)

val clean : t -> bool
(** No damage anywhere.  A torn active tail is clean (recovery repairs
    it); a torn sealed segment is not. *)

val pp : Format.formatter -> t -> unit
(** One line per checkpoint and segment, deterministic — the
    [chronicle-cli scrub] output. *)
