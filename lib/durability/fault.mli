(** Deterministic fault injection for crash-safety tests.

    A {!t} is a script of faults: named {e crash points} armed with a
    countdown, and an optional {e torn write} that truncates one
    storage append mid-record.  Instrumented code (the journal, the
    checkpointer, {!Db.set_fold_probe}) calls {!hit} at each point;
    when an armed countdown reaches zero the point raises {!Crash} and
    the plan becomes {e dead} — simulating the process dying at that
    instant.

    Once dead, the durability layer freezes its stable storage (it
    ignores every further event, including the abort notification of
    the batch the crash interrupted — a dead process cannot erase its
    own write-ahead record).  The test harness then discards the
    in-memory database and runs recovery against the surviving
    storage, exactly as a restarted process would.

    Standard crash-point names used by the library:
    - ["post-journal-write"] — after a transaction record is on
      storage, before any database state mutates;
    - ["pre-checkpoint-rename"] — checkpoint temp file written, not
      yet renamed over the live checkpoint;
    - ["post-checkpoint-rename"] — checkpoint renamed, journal not
      yet reset;
    - ["view-fold"] — immediately before an affected view's fold
      (installed through {!Db.set_fold_probe} by [Durable.attach]). *)

exception Crash of string
(** The simulated process death, carrying the crash-point name (or
    ["torn-write"]). *)

exception Sync_failed of string
(** A transient storage-sync failure injected by {!arm_sync_failures},
    carrying the storage name being synced.  Unlike {!Crash} this does
    not kill the plan — it models an [EIO]-style error the durability
    layer is expected to retry through (or degrade on). *)

type t

val create : unit -> t
(** A plan with nothing armed: all hits are counted but none fire. *)

val arm : t -> ?after:int -> string -> unit
(** Arm a crash point: the [(after+1)]-th subsequent {!hit} of that
    name raises {!Crash} (default [after = 0]: the next hit). *)

val disarm : t -> string -> unit
val disarm_all : t -> unit

val hit : t -> string -> unit
(** Called by instrumented code.  Counts the hit; if the point is
    armed and its countdown is exhausted, marks the plan dead and
    raises {!Crash}.  A dead plan never fires again (the process died
    once).

    Thread-safe: at maintenance parallelism > 1 the ["view-fold"]
    point is probed concurrently from pool domains; countdown and
    counts are serialized by an internal mutex, and exactly one racing
    prober fires the crash (the rest observe the dead plan and pass
    through). *)

val hit_count : t -> string -> int
(** Observed hits of a point (armed or not) — lets tests discover how
    many opportunities a workload offers before scripting crashes. *)

val is_dead : t -> bool
(** True once a crash has fired (including a torn write). *)

val revive : t -> unit
(** Clear the dead flag and all armed faults (counts survive) — for
    reusing one plan across crash/recover iterations. *)

val arm_torn_write : ?after:int -> t -> keep:int -> unit
(** Arm a torn write against {!wrap_storage}-intercepted appends: the
    [(after+1)]-th append writes only the first [keep] bytes of its
    payload (clamped to the payload length), marks the plan dead and
    raises {!Crash "torn-write"}. *)

val arm_sync_failures : ?after:int -> t -> fails:int -> unit
(** Arm transient sync failures against {!wrap_storage}-intercepted
    [sync]s: after [after] more healthy syncs, the next [fails] syncs
    each raise {!Sync_failed} (then the fault disarms itself).  The
    plan stays alive throughout — retrying code observes [fails]
    consecutive failures followed by success.  [fails] must be
    positive. *)

val wrap_storage : t -> Storage.t -> Storage.t
(** Interpose on [append] to realize armed torn writes and on [sync]
    to realize armed sync failures.  All other operations pass
    through. *)

val flip_bit : Storage.t -> name:string -> byte:int -> bit:int -> unit
(** Corrupt one bit of a stored name in place (read–flip–write) — for
    checksum-detection tests.  Raises [Invalid_argument] if the name
    is absent or the offset out of range. *)
