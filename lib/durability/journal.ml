open Relational

exception Journal_corrupt of { record : int; reason : string }

type sync_policy = Sync_never | Sync_every of int | Sync_always

let sync_policy_of_string = function
  | "never" -> Ok Sync_never
  | "always" -> Ok Sync_always
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "every" ->
          (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Ok (Sync_every n)
          | _ -> Error (Printf.sprintf "bad sync policy %S" s))
      | _ ->
          Error
            (Printf.sprintf
               "bad sync policy %S (expected never, always or every:N)" s))

let sync_policy_to_string = function
  | Sync_never -> "never"
  | Sync_always -> "always"
  | Sync_every n -> Printf.sprintf "every:%d" n

let magic = "CHRONJNL1\n"

let corrupt record fmt =
  Printf.ksprintf (fun reason -> raise (Journal_corrupt { record; reason })) fmt

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let get_be32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

let frame payload =
  String.concat ""
    [ be32 (String.length payload); be32 (Crc32.string payload); payload ]

type damage = { index : int; offset : int; reason : string }
type ended = Complete | Torn of int | Damaged of damage

(* Decode [contents] into the maximal well-formed prefix — (sexp,
   start-offset) pairs in journal order — plus how the scan ended.
   Total: damage is reported in the [ended] value, never raised, so
   scrub and salvage can inventory a broken segment without
   exceptions. *)
let scan contents =
  let len = String.length contents in
  let mlen = String.length magic in
  if len < mlen then
    if String.sub contents 0 len = String.sub magic 0 len then
      (* magic itself torn: an empty journal that died during creation *)
      ([], Torn 0)
    else ([], Damaged { index = 0; offset = 0; reason = "bad magic" })
  else if String.sub contents 0 mlen <> magic then
    ([], Damaged { index = 0; offset = 0; reason = "bad magic" })
  else begin
    let records = ref [] in
    let idx = ref 0 in
    let pos = ref mlen in
    let ended = ref Complete in
    let stop e = ended := e; raise Exit in
    (try
       while !pos < len do
         let o = !pos in
         if len - o < 8 then stop (Torn o);
         let plen = get_be32 contents o in
         let crc = get_be32 contents (o + 4) in
         if o + 8 + plen > len then stop (Torn o);
         let payload = String.sub contents (o + 8) plen in
         if Crc32.string payload <> crc then
           stop (Damaged { index = !idx; offset = o; reason = "checksum mismatch" });
         (match Sexp.of_string payload with
         | sexp ->
             records := (sexp, o) :: !records;
             incr idx;
             pos := o + 8 + plen
         | exception Sexp.Parse_error { message; _ } ->
             stop
               (Damaged
                  {
                    index = !idx;
                    offset = o;
                    reason = "checksummed payload does not parse: " ^ message;
                  }))
       done
     with Exit -> ());
    (List.rev !records, !ended)
  end

let read (storage : Storage.t) name =
  match storage.Storage.read name with
  | None -> ([], `Clean)
  | Some contents -> (
      match scan contents with
      | records, Complete -> (List.map fst records, `Clean)
      | records, Torn _ -> (List.map fst records, `Torn)
      | _, Damaged { index; reason; _ } -> corrupt index "%s" reason)

(* ---- segment naming ---- *)

let segment_name name seq = Printf.sprintf "%s.%d" name seq

(* Sealed segments of [name], (seq, storage-name) sorted by seq.
   Discovery is purely by naming convention over [Storage.list] — no
   manifest, so a crash can never leave the manifest and the files
   disagreeing.  Non-numeric suffixes ([checkpoint.tmp],
   [journal.quarantine]) never match. *)
let segments (storage : Storage.t) name =
  let prefix = name ^ "." in
  let plen = String.length prefix in
  storage.Storage.list ()
  |> List.filter_map (fun n ->
         if String.length n > plen && String.sub n 0 plen = prefix then
           match int_of_string_opt (String.sub n plen (String.length n - plen)) with
           | Some seq when seq >= 0 -> Some (seq, n)
           | _ -> None
         else None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

type t = {
  storage : Storage.t;
  name : string;
  sync : sync_policy;
  segment_bytes : int option; (* rotate before an append would pass this *)
  mutable seq : int; (* storage name the active segment seals to *)
  mutable count : int;
  mutable size : int; (* bytes of magic + complete records *)
  mutable offsets : int list; (* record start offsets, most recent first *)
  mutable unsynced : int;
}

let maybe_sync t =
  match t.sync with
  | Sync_never -> ()
  | Sync_always -> t.storage.Storage.sync t.name
  | Sync_every n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= n then begin
        t.storage.Storage.sync t.name;
        t.unsynced <- 0
      end

let open_ ?(sync = Sync_always) ?segment_bytes ?(seq = 0) (storage : Storage.t)
    name =
  (match segment_bytes with
  | Some n when n <= String.length magic ->
      invalid_arg "Journal.open_: segment_bytes smaller than the magic header"
  | _ -> ());
  match storage.Storage.read name with
  | None ->
      storage.Storage.append name magic;
      (match sync with Sync_never -> () | _ -> storage.Storage.sync name);
      {
        storage;
        name;
        sync;
        segment_bytes;
        seq;
        count = 0;
        size = String.length magic;
        offsets = [];
        unsynced = 0;
      }
  | Some contents ->
      let records, end_, torn =
        match scan contents with
        | records, Complete -> (records, String.length contents, false)
        | records, Torn e -> (records, e, true)
        | _, Damaged { index; reason; _ } -> corrupt index "%s" reason
      in
      if torn then storage.Storage.truncate name end_;
      if end_ = 0 then begin
        (* torn magic: start over *)
        storage.Storage.append name magic;
        (match sync with Sync_never -> () | _ -> storage.Storage.sync name)
      end;
      {
        storage;
        name;
        sync;
        segment_bytes;
        seq;
        count = List.length records;
        size = (if end_ = 0 then String.length magic else end_);
        offsets = List.rev_map snd records;
        unsynced = 0;
      }

(* Seal the active segment: flush it, rename it to [name.seq], and
   start a fresh active segment under the bare [name].  The rename is
   the commit point — a crash before it leaves one (longer) active
   segment, a crash after it leaves a sealed segment plus a missing or
   fresh active one; recovery reads both layouts identically because
   record order is (segments by seq) ++ active.  No-op on an empty
   journal, so sealing never manufactures record-free segments. *)
let seal t =
  if t.count > 0 then begin
    (match t.sync with Sync_never -> () | _ -> t.storage.Storage.sync t.name);
    t.storage.Storage.rename t.name (segment_name t.name t.seq);
    t.seq <- t.seq + 1;
    t.storage.Storage.write t.name magic;
    (match t.sync with Sync_never -> () | _ -> t.storage.Storage.sync t.name);
    t.count <- 0;
    t.size <- String.length magic;
    t.offsets <- [];
    t.unsynced <- 0
  end

let active_seq t = t.seq

let append t record =
  let framed = frame (Sexp.to_string record) in
  (match t.segment_bytes with
  | Some limit when t.count > 0 && t.size + String.length framed > limit ->
      seal t
  | _ -> ());
  t.storage.Storage.append t.name framed;
  t.offsets <- t.size :: t.offsets;
  t.size <- t.size + String.length framed;
  t.count <- t.count + 1;
  Stats.incr Stats.Journal_append;
  Stats.add Stats.Journal_bytes (String.length framed);
  maybe_sync t

let truncate_last t =
  match t.offsets with
  | [] -> invalid_arg "Journal.truncate_last: journal is empty"
  | off :: rest ->
      t.storage.Storage.truncate t.name off;
      t.offsets <- rest;
      t.size <- off;
      t.count <- t.count - 1

let reset t =
  t.storage.Storage.write t.name magic;
  (match t.sync with Sync_never -> () | _ -> t.storage.Storage.sync t.name);
  t.count <- 0;
  t.size <- String.length magic;
  t.offsets <- [];
  t.unsynced <- 0

let records t = t.count
let byte_size t = t.size
