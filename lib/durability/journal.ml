open Relational

exception Journal_corrupt of { record : int; reason : string }

type sync_policy = Sync_never | Sync_every of int | Sync_always

let sync_policy_of_string = function
  | "never" -> Ok Sync_never
  | "always" -> Ok Sync_always
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "every" ->
          (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Ok (Sync_every n)
          | _ -> Error (Printf.sprintf "bad sync policy %S" s))
      | _ ->
          Error
            (Printf.sprintf
               "bad sync policy %S (expected never, always or every:N)" s))

let sync_policy_to_string = function
  | Sync_never -> "never"
  | Sync_always -> "always"
  | Sync_every n -> Printf.sprintf "every:%d" n

let magic = "CHRONJNL1\n"

let corrupt record fmt =
  Printf.ksprintf (fun reason -> raise (Journal_corrupt { record; reason })) fmt

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let get_be32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

let frame payload =
  String.concat ""
    [ be32 (String.length payload); be32 (Crc32.string payload); payload ]

(* Decode [contents] into (records, offsets-most-recent-first, end-of-
   complete-prefix, torn?).  Shared by [read] and [open_]. *)
let decode contents =
  let len = String.length contents in
  if len < String.length magic then
    if String.sub contents 0 len = String.sub magic 0 len then
      (* magic itself torn: an empty journal that died during creation *)
      ([], [], 0, true)
    else corrupt 0 "bad magic"
  else if String.sub contents 0 (String.length magic) <> magic then
    corrupt 0 "bad magic"
  else begin
    let records = ref [] in
    let offsets = ref [] in
    let idx = ref 0 in
    let pos = ref (String.length magic) in
    let torn = ref false in
    (try
       while !pos < len do
         let o = !pos in
         if len - o < 8 then begin
           torn := true;
           raise Exit
         end;
         let plen = get_be32 contents o in
         let crc = get_be32 contents (o + 4) in
         if o + 8 + plen > len then begin
           torn := true;
           raise Exit
         end;
         let payload = String.sub contents (o + 8) plen in
         if Crc32.string payload <> crc then
           corrupt !idx "checksum mismatch";
         let sexp =
           try Sexp.of_string payload
           with Sexp.Parse_error { message; _ } ->
             corrupt !idx "checksummed payload does not parse: %s" message
         in
         records := sexp :: !records;
         offsets := o :: !offsets;
         incr idx;
         pos := o + 8 + plen
       done
     with Exit -> ());
    (List.rev !records, !offsets, !pos, !torn)
  end

let read (storage : Storage.t) name =
  match storage.Storage.read name with
  | None -> ([], `Clean)
  | Some contents ->
      let records, _, _, torn = decode contents in
      (records, if torn then `Torn else `Clean)

type t = {
  storage : Storage.t;
  name : string;
  sync : sync_policy;
  mutable count : int;
  mutable size : int; (* bytes of magic + complete records *)
  mutable offsets : int list; (* record start offsets, most recent first *)
  mutable unsynced : int;
}

let maybe_sync t =
  match t.sync with
  | Sync_never -> ()
  | Sync_always -> t.storage.Storage.sync t.name
  | Sync_every n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= n then begin
        t.storage.Storage.sync t.name;
        t.unsynced <- 0
      end

let open_ ?(sync = Sync_always) (storage : Storage.t) name =
  match storage.Storage.read name with
  | None ->
      storage.Storage.append name magic;
      (match sync with Sync_never -> () | _ -> storage.Storage.sync name);
      {
        storage;
        name;
        sync;
        count = 0;
        size = String.length magic;
        offsets = [];
        unsynced = 0;
      }
  | Some contents ->
      let records, offsets, end_, torn = decode contents in
      if torn then storage.Storage.truncate name end_;
      if end_ = 0 then begin
        (* torn magic: start over *)
        storage.Storage.append name magic;
        (match sync with Sync_never -> () | _ -> storage.Storage.sync name)
      end;
      {
        storage;
        name;
        sync;
        count = List.length records;
        size = (if end_ = 0 then String.length magic else end_);
        offsets;
        unsynced = 0;
      }

let append t record =
  let framed = frame (Sexp.to_string record) in
  t.storage.Storage.append t.name framed;
  t.offsets <- t.size :: t.offsets;
  t.size <- t.size + String.length framed;
  t.count <- t.count + 1;
  Stats.incr Stats.Journal_append;
  Stats.add Stats.Journal_bytes (String.length framed);
  maybe_sync t

let truncate_last t =
  match t.offsets with
  | [] -> invalid_arg "Journal.truncate_last: journal is empty"
  | off :: rest ->
      t.storage.Storage.truncate t.name off;
      t.offsets <- rest;
      t.size <- off;
      t.count <- t.count - 1

let reset t =
  t.storage.Storage.write t.name magic;
  (match t.sync with Sync_never -> () | _ -> t.storage.Storage.sync t.name);
  t.count <- 0;
  t.size <- String.length magic;
  t.offsets <- [];
  t.unsynced <- 0

let records t = t.count
let byte_size t = t.size
