open Relational
open Chronicle_core

exception Recovery_error of { record : int; reason : string }

let journal_file = "journal"
let checkpoint_file = "checkpoint"
let checkpoint_tmp_file = "checkpoint.tmp"

(* crash-point names (see Fault) *)
let p_post_journal_write = "post-journal-write"
let p_pre_checkpoint_rename = "pre-checkpoint-rename"
let p_post_checkpoint_rename = "post-checkpoint-rename"
let p_view_fold = "view-fold"

(* ---- transaction-event (de)serialization ---- *)

let sexp_of_event (ev : Db.txn_event) =
  let tagged tag fields = Sexp.List [ Sexp.Atom tag; Sexp.record fields ] in
  match ev with
  | Db.Ev_append { group; sn; batch } ->
      tagged "append"
        [
          ("group", Sexp.atom group);
          ("sn", Sexp.int sn);
          ( "batch",
            Sexp.List
              (List.map
                 (fun (cname, tuples) ->
                   Sexp.List
                     [
                       Sexp.atom cname;
                       Sexp.List (List.map Snapshot.sexp_of_tuple tuples);
                     ])
                 batch) );
        ]
  | Db.Ev_clock { group; chronon } ->
      tagged "clock" [ ("group", Sexp.atom group); ("chronon", Sexp.int chronon) ]
  | Db.Ev_add_group { name; clock_start } ->
      tagged "add-group"
        (("name", Sexp.atom name)
        ::
        (match clock_start with
        | None -> []
        | Some c -> [ ("clock-start", Sexp.int c) ]))
  | Db.Ev_add_chronicle { name; group; retention; schema } ->
      tagged "add-chronicle"
        [
          ("name", Sexp.atom name);
          ("group", Sexp.atom group);
          ("retention", Snapshot.sexp_of_retention retention);
          ("schema", Snapshot.sexp_of_schema schema);
        ]
  | Db.Ev_add_relation { name; group; schema; key } ->
      tagged "add-relation"
        ([
           ("name", Sexp.atom name);
           ("group", Sexp.atom group);
           ("schema", Snapshot.sexp_of_schema schema);
         ]
        @
        match key with
        | None -> []
        | Some key -> [ ("key", Sexp.List (List.map Sexp.atom key)) ])
  | Db.Ev_define_view { def; index } ->
      tagged "define-view"
        [
          ( "index",
            Sexp.Atom
              (match index with Index.Hash -> "hash" | Index.Ordered -> "ordered")
          );
          ("def", Snapshot.sexp_of_sca def);
        ]
  | Db.Ev_drop_view { name } -> tagged "drop-view" [ ("name", Sexp.atom name) ]
  | Db.Ev_abort _ ->
      (* aborts erase the previous record; they are never journaled *)
      assert false

(* Replay one journal record into [db].  Idempotent: a record whose
   effect is already present (because the checkpoint was taken after it,
   or because a crash hit between checkpoint-rename and journal-reset)
   is skipped.  Returns [true] if the record was applied. *)
let replay_record db sexp =
  let tag, fields =
    match sexp with
    | Sexp.List [ Sexp.Atom tag; fields ] -> (tag, fields)
    | _ -> failwith "malformed journal record"
  in
  let name_field () = Sexp.to_atom (Sexp.field fields "name") in
  let group_field () = Sexp.to_atom (Sexp.field fields "group") in
  match tag with
  | "append" ->
      let gname = group_field () in
      let sn = Sexp.to_int (Sexp.field fields "sn") in
      if sn <= Group.watermark (Db.group db gname) then false
      else begin
        let batch =
          List.map
            (fun entry ->
              match entry with
              | Sexp.List [ cname; tuples ] ->
                  ( Sexp.to_atom cname,
                    List.map Snapshot.tuple_of_sexp (Sexp.to_list tuples) )
              | _ -> failwith "malformed append batch")
            (Sexp.to_list (Sexp.field fields "batch"))
        in
        Db.append_at db ~group:gname ~sn batch;
        true
      end
  | "clock" ->
      let gname = group_field () in
      let chronon = Sexp.to_int (Sexp.field fields "chronon") in
      if chronon <= Group.now (Db.group db gname) then false
      else begin
        Db.advance_clock db ~group:gname chronon;
        true
      end
  | "add-group" ->
      let name = name_field () in
      if List.mem name (Db.group_names db) then false
      else begin
        let clock_start =
          Option.map Sexp.to_int (Sexp.field_opt fields "clock-start")
        in
        ignore (Db.add_group db ?clock_start name);
        true
      end
  | "add-chronicle" ->
      let name = name_field () in
      if List.mem name (Db.chronicle_names db) then false
      else begin
        let group = group_field () in
        let retention =
          Snapshot.retention_of_sexp (Sexp.field fields "retention")
        in
        let schema = Snapshot.schema_of_sexp (Sexp.field fields "schema") in
        ignore (Db.add_chronicle db ~group ~retention ~name schema);
        true
      end
  | "add-relation" ->
      let name = name_field () in
      if List.mem name (Db.relation_names db) then false
      else begin
        let group = group_field () in
        let schema = Snapshot.schema_of_sexp (Sexp.field fields "schema") in
        let key =
          Option.map
            (fun s -> List.map Sexp.to_atom (Sexp.to_list s))
            (Sexp.field_opt fields "key")
        in
        ignore (Db.add_relation db ~group ~name ~schema ?key ());
        true
      end
  | "define-view" ->
      let def =
        Snapshot.sca_of_sexp
          ~chronicle:(fun n -> Db.chronicle db n)
          ~relation:(fun n -> Versioned.relation (Db.relation db n))
          (Sexp.field fields "def")
      in
      if Option.is_some (Registry.find (Db.registry db) (Sca.name def)) then
        false
      else begin
        let index =
          match Sexp.to_atom (Sexp.field fields "index") with
          | "hash" -> Index.Hash
          | "ordered" -> Index.Ordered
          | other -> failwith (Printf.sprintf "bad index kind %S" other)
        in
        (* the live system already admitted this definition; replay with
           the most permissive tier so recovery cannot re-reject it *)
        ignore (Db.define_view db ~index ~tier_limit:Classify.IM_poly_c def);
        true
      end
  | "drop-view" ->
      let name = name_field () in
      if Option.is_none (Registry.find (Db.registry db) name) then false
      else begin
        Db.drop_view db name;
        true
      end
  | other -> failwith (Printf.sprintf "unknown journal record tag %S" other)

(* ---- the durable handle ---- *)

type t = {
  database : Db.t;
  storage : Storage.t; (* fault-wrapped *)
  fault : Fault.t;
  journal : Journal.t;
  sync : Journal.sync_policy;
}

let db t = t.database
let fault t = t.fault
let sync_policy t = t.sync
let journal_records t = Journal.records t.journal
let journal_bytes t = Journal.byte_size t.journal

let alive t name =
  if Fault.is_dead t.fault then
    invalid_arg (Printf.sprintf "Durable.%s: instance crashed" name)

let sink t ev =
  (* a dead process writes nothing — in particular it cannot erase the
     write-ahead record of the batch the crash interrupted *)
  if not (Fault.is_dead t.fault) then
    match ev with
    | Db.Ev_abort _ -> Journal.truncate_last t.journal
    | ev ->
        Journal.append t.journal (sexp_of_event ev);
        (match ev with
        | Db.Ev_append _ -> Fault.hit t.fault p_post_journal_write
        | _ -> ())

let do_checkpoint t =
  let doc = Snapshot.save t.database in
  t.storage.Storage.write checkpoint_tmp_file doc;
  t.storage.Storage.sync checkpoint_tmp_file;
  Fault.hit t.fault p_pre_checkpoint_rename;
  t.storage.Storage.rename checkpoint_tmp_file checkpoint_file;
  t.storage.Storage.sync checkpoint_file;
  Fault.hit t.fault p_post_checkpoint_rename;
  Journal.reset t.journal;
  Stats.incr Stats.Checkpoint

let checkpoint t =
  alive t "checkpoint";
  do_checkpoint t

let install t =
  Db.set_txn_sink t.database (Some (sink t));
  Db.set_fold_probe t.database
    (Some (fun ~view:_ ~sn:_ -> Fault.hit t.fault p_view_fold))

let detach t =
  Db.set_txn_sink t.database None;
  Db.set_fold_probe t.database None

let attach ?fault ?(sync = Journal.Sync_always) ~storage db =
  let fault = Option.value fault ~default:(Fault.create ()) in
  let storage = Fault.wrap_storage fault storage in
  let journal = Journal.open_ ~sync storage journal_file in
  let t = { database = db; storage; fault; journal; sync } in
  (* without a checkpoint, recovery could not reconstruct catalog state
     that predates journaling (including the default group's name) *)
  if not (storage.Storage.exists checkpoint_file) then do_checkpoint t;
  install t;
  t

type report = {
  checkpoint_loaded : bool;
  replayed : int;
  skipped : int;
  dropped_torn : bool;
  dropped_failed : bool;
}

let recover ?fault ?(sync = Journal.Sync_always) ?jobs ~storage () =
  let fault = Option.value fault ~default:(Fault.create ()) in
  let checkpoint_loaded, database =
    match storage.Storage.read checkpoint_file with
    | Some doc -> (true, Snapshot.load ?jobs doc)
    | None -> (false, Db.create ?jobs ())
  in
  let records, tail = Journal.read storage journal_file in
  let n = List.length records in
  let replayed = ref 0 and skipped = ref 0 and dropped_failed = ref false in
  List.iteri
    (fun i sexp ->
      match replay_record database sexp with
      | true ->
          incr replayed;
          Stats.incr Stats.Journal_replay
      | false -> incr skipped
      | exception e ->
          if i = n - 1 then
            (* the dying process's final batch: Db's transactional path
               already rolled its effects back; drop its record below *)
            dropped_failed := true
          else
            raise
              (Recovery_error { record = i; reason = Printexc.to_string e }))
    records;
  let wrapped = Fault.wrap_storage fault storage in
  let journal = Journal.open_ ~sync wrapped journal_file in
  if !dropped_failed && Journal.records journal > 0 then
    Journal.truncate_last journal;
  let t = { database; storage = wrapped; fault; journal; sync } in
  if not (wrapped.Storage.exists checkpoint_file) then do_checkpoint t;
  install t;
  ( t,
    {
      checkpoint_loaded;
      replayed = !replayed;
      skipped = !skipped;
      dropped_torn = (tail = `Torn);
      dropped_failed = !dropped_failed;
    } )

let has_state (storage : Storage.t) =
  storage.Storage.exists checkpoint_file
  || storage.Storage.exists journal_file
