open Relational
open Chronicle_core

exception Recovery_error of { record : int; reason : string }
exception Checkpoint_corrupt of { generation : int option; reason : string }

let journal_file = "journal"
let checkpoint_file = Ckpt.file
let checkpoint_tmp_file = Ckpt.tmp_file
let quarantine_name name = name ^ ".quarantine"

(* crash-point names (see Fault) *)
let p_post_journal_write = "post-journal-write"
let p_post_group_write = "post-group-write"
let p_post_insert_write = "post-insert-write"
let p_post_retract_write = "post-retract-write"
let p_pre_checkpoint_rename = "pre-checkpoint-rename"
let p_post_checkpoint_rename = "post-checkpoint-rename"
let p_view_fold = "view-fold"
let p_replay_dispatch = "replay-dispatch"

(* ---- transaction-event (de)serialization ---- *)

let sexp_of_batch batch =
  Sexp.List
    (List.map
       (fun (cname, tuples) ->
         Sexp.List
           [
             Sexp.atom cname;
             Sexp.List (List.map Snapshot.sexp_of_tuple tuples);
           ])
       batch)

let sexp_of_event (ev : Db.txn_event) =
  let tagged tag fields = Sexp.List [ Sexp.Atom tag; Sexp.record fields ] in
  match ev with
  | Db.Ev_append { group; sn; batch } ->
      tagged "append"
        [
          ("group", Sexp.atom group);
          ("sn", Sexp.int sn);
          ("batch", sexp_of_batch batch);
        ]
  | Db.Ev_group { group; entries } ->
      (* a whole group commit framed as ONE journal record: one storage
         append, one sync, however many batches the group carries *)
      tagged "group"
        [
          ("group", Sexp.atom group);
          ( "entries",
            Sexp.List
              (List.map
                 (fun (sn, batch) ->
                   Sexp.record
                     [ ("sn", Sexp.int sn); ("batch", sexp_of_batch batch) ])
                 entries) );
        ]
  | Db.Ev_insert { relation; rows; at } ->
      tagged "insert"
        [
          ("relation", Sexp.atom relation);
          ("at", Sexp.int at);
          ("rows", Sexp.List (List.map Snapshot.sexp_of_tuple rows));
        ]
  | Db.Ev_retract { chronicle; entries } ->
      tagged "retract"
        [
          ("chronicle", Sexp.atom chronicle);
          ( "entries",
            Sexp.List
              (List.map
                 (fun (sn, rows) ->
                   Sexp.record
                     [
                       ("sn", Sexp.int sn);
                       ("rows", Sexp.List (List.map Snapshot.sexp_of_tuple rows));
                     ])
                 entries) );
        ]
  | Db.Ev_clock { group; chronon } ->
      tagged "clock" [ ("group", Sexp.atom group); ("chronon", Sexp.int chronon) ]
  | Db.Ev_add_group { name; clock_start } ->
      tagged "add-group"
        (("name", Sexp.atom name)
        ::
        (match clock_start with
        | None -> []
        | Some c -> [ ("clock-start", Sexp.int c) ]))
  | Db.Ev_add_chronicle { name; group; retention; schema } ->
      tagged "add-chronicle"
        [
          ("name", Sexp.atom name);
          ("group", Sexp.atom group);
          ("retention", Snapshot.sexp_of_retention retention);
          ("schema", Snapshot.sexp_of_schema schema);
        ]
  | Db.Ev_add_relation { name; group; schema; key } ->
      tagged "add-relation"
        ([
           ("name", Sexp.atom name);
           ("group", Sexp.atom group);
           ("schema", Snapshot.sexp_of_schema schema);
         ]
        @
        match key with
        | None -> []
        | Some key -> [ ("key", Sexp.List (List.map Sexp.atom key)) ])
  | Db.Ev_define_view { def; index } ->
      tagged "define-view"
        [
          ( "index",
            Sexp.Atom
              (match index with Index.Hash -> "hash" | Index.Ordered -> "ordered")
          );
          ("def", Snapshot.sexp_of_sca def);
        ]
  | Db.Ev_drop_view { name } -> tagged "drop-view" [ ("name", Sexp.atom name) ]
  | Db.Ev_abort _ ->
      (* Aborts erase the previous record ([sink] maps them to
         [Journal.truncate_last]); they are never serialized.  This
         function's only caller is [sink], which dispatches [Ev_abort]
         before reaching the serializer, so this branch is unreachable
         from within the module — kept as a typed rejection (not an
         assert) so a future caller that bypasses [sink] fails with a
         diagnosis instead of a blind assertion. *)
      invalid_arg "Durable: Ev_abort is erased, never journaled"

(* ---- journal-record parsing and application ----

   Split in two stages so failures are typed precisely:

   - [parse_record] performs every structural destructuring of the
     S-expression.  A CRC-valid but malformed record is *corruption*
     (the checksum said the bytes are what was written, the content is
     still gibberish) and raises [Journal.Journal_corrupt] with the
     record index — never a bare [Failure].
   - [apply_parsed] re-applies a parsed record to the database.  Its
     failures are *application* failures (the record is well-formed but
     the database cannot accept it), reported by [recover] as
     [Recovery_error] — or, for the journal's final record, tolerated
     as the batch that died with the crashed process.

   Application is idempotent: a record whose effect is already present
   (checkpoint taken after it, or a crash between checkpoint-rename and
   journal-reset) is skipped; [apply_parsed] returns [true] iff the
   record was applied. *)

type parsed =
  | P_append of Db.replay_entry
  | P_group of Db.replay_entry list
      (* one group-commit record: applied atomically when it is the
         journal's final record, flattened into the replay window
         otherwise (a non-final group is fully committed by
         construction — its record survived the next write) *)
  | P_insert of { relation : string; rows : Tuple.t list; at : int }
      (* one Db.insert_rows batch; [at] is the relation's pre-insert
         cardinality, the idempotence marker (see Db.Ev_insert) *)
  | P_retract of {
      chronicle : string;
      entries : (Seqnum.t * Tuple.t list) list;
    }
      (* one Db.retract operation, already resolved to stored
         occurrences; occurrence-presence is the idempotence marker
         (see Db.Ev_retract) *)
  | P_clock of { group : string; chronon : Seqnum.chronon }
  | P_add_group of { name : string; clock_start : Seqnum.chronon option }
  | P_add_chronicle of {
      name : string;
      group : string;
      retention : Chron.retention;
      schema : Schema.t;
    }
  | P_add_relation of {
      name : string;
      group : string;
      schema : Schema.t;
      key : string list option;
    }
  | P_define_view of { index : Index.kind; def : Sexp.t }
      (* [def] stays unparsed: resolving it needs catalog state, so its
         failures are application failures, not corruption *)
  | P_drop_view of { name : string }

let corrupt record reason = raise (Journal.Journal_corrupt { record; reason })

let parse_record ~record sexp =
  let fail fmt = Format.kasprintf (corrupt record) fmt in
  match sexp with
  | Sexp.List [ Sexp.Atom tag; fields ] -> (
      let name_field () = Sexp.to_atom (Sexp.field fields "name") in
      let group_field () = Sexp.to_atom (Sexp.field fields "group") in
      let batch_of_sexp sexp =
        List.map
          (fun entry ->
            match entry with
            | Sexp.List [ cname; tuples ] ->
                ( Sexp.to_atom cname,
                  List.map Snapshot.tuple_of_sexp (Sexp.to_list tuples) )
            | _ -> fail "malformed append batch")
          (Sexp.to_list sexp)
      in
      try
        match tag with
        | "append" ->
            let rgroup = group_field () in
            let rsn = Sexp.to_int (Sexp.field fields "sn") in
            let rbatch = batch_of_sexp (Sexp.field fields "batch") in
            P_append { Db.rgroup; rsn; rbatch }
        | "group" ->
            let rgroup = group_field () in
            let entries =
              List.map
                (fun entry ->
                  {
                    Db.rgroup;
                    rsn = Sexp.to_int (Sexp.field entry "sn");
                    rbatch = batch_of_sexp (Sexp.field entry "batch");
                  })
                (Sexp.to_list (Sexp.field fields "entries"))
            in
            if entries = [] then fail "empty group record";
            P_group entries
        | "insert" ->
            P_insert
              {
                relation = Sexp.to_atom (Sexp.field fields "relation");
                at = Sexp.to_int (Sexp.field fields "at");
                rows =
                  List.map Snapshot.tuple_of_sexp
                    (Sexp.to_list (Sexp.field fields "rows"));
              }
        | "retract" ->
            P_retract
              {
                chronicle = Sexp.to_atom (Sexp.field fields "chronicle");
                entries =
                  List.map
                    (fun entry ->
                      ( Sexp.to_int (Sexp.field entry "sn"),
                        List.map Snapshot.tuple_of_sexp
                          (Sexp.to_list (Sexp.field entry "rows")) ))
                    (Sexp.to_list (Sexp.field fields "entries"));
              }
        | "clock" ->
            P_clock
              {
                group = group_field ();
                chronon = Sexp.to_int (Sexp.field fields "chronon");
              }
        | "add-group" ->
            P_add_group
              {
                name = name_field ();
                clock_start =
                  Option.map Sexp.to_int (Sexp.field_opt fields "clock-start");
              }
        | "add-chronicle" ->
            P_add_chronicle
              {
                name = name_field ();
                group = group_field ();
                retention =
                  Snapshot.retention_of_sexp (Sexp.field fields "retention");
                schema = Snapshot.schema_of_sexp (Sexp.field fields "schema");
              }
        | "add-relation" ->
            P_add_relation
              {
                name = name_field ();
                group = group_field ();
                schema = Snapshot.schema_of_sexp (Sexp.field fields "schema");
                key =
                  Option.map
                    (fun s -> List.map Sexp.to_atom (Sexp.to_list s))
                    (Sexp.field_opt fields "key");
              }
        | "define-view" ->
            let index =
              match Sexp.to_atom (Sexp.field fields "index") with
              | "hash" -> Index.Hash
              | "ordered" -> Index.Ordered
              | other -> fail "bad index kind %S" other
            in
            P_define_view { index; def = Sexp.field fields "def" }
        | "drop-view" -> P_drop_view { name = name_field () }
        | other -> fail "unknown journal record tag %S" other
      with
      | Journal.Journal_corrupt _ as e -> raise e
      | e ->
          (* missing field, wrong atom shape, … — structural damage *)
          fail "malformed %S record: %s" tag (Printexc.to_string e))
  | _ -> corrupt record "malformed journal record"

let apply_parsed db = function
  | P_append { Db.rgroup; rsn; rbatch } ->
      if rsn <= Group.watermark (Db.group db rgroup) then false
      else begin
        Db.append_at db ~group:rgroup ~sn:rsn rbatch;
        true
      end
  | P_group entries ->
      (* atomic: the whole group applies or none of it does — this is
         the path the journal's *final* record takes, so a process that
         died mid-group recovers to pre-group or post-group state *)
      Array.exists Fun.id (Db.replay_group db entries)
  | P_insert { relation; rows; at } ->
      (* skip iff the rows are already present: the language surface is
         insert-only for relations, so live cardinality is monotone and
         a cardinality above the record's pre-insert count means a later
         checkpoint (or the rename half of a checkpoint the crash
         interrupted) already holds these rows *)
      let rel = Versioned.relation (Db.relation db relation) in
      if Relation.cardinality rel > at then false
      else begin
        Db.insert_rows db relation rows;
        true
      end
  | P_retract { chronicle; entries } ->
      (* idempotent by occurrence-presence: entries whose stored
         occurrences a later checkpoint already removed are skipped
         inside [replay_retract]; [false] means the whole record was a
         no-op *)
      Db.replay_retract db chronicle entries
  | P_clock { group; chronon } ->
      if chronon <= Group.now (Db.group db group) then false
      else begin
        Db.advance_clock db ~group chronon;
        true
      end
  | P_add_group { name; clock_start } ->
      if List.mem name (Db.group_names db) then false
      else begin
        ignore (Db.add_group db ?clock_start name);
        true
      end
  | P_add_chronicle { name; group; retention; schema } ->
      if List.mem name (Db.chronicle_names db) then false
      else begin
        ignore (Db.add_chronicle db ~group ~retention ~name schema);
        true
      end
  | P_add_relation { name; group; schema; key } ->
      if List.mem name (Db.relation_names db) then false
      else begin
        ignore (Db.add_relation db ~group ~name ~schema ?key ());
        true
      end
  | P_define_view { index; def } ->
      let def =
        Snapshot.sca_of_sexp
          ~chronicle:(fun n -> Db.chronicle db n)
          ~relation:(fun n -> Versioned.relation (Db.relation db n))
          def
      in
      if Option.is_some (Registry.find (Db.registry db) (Sca.name def)) then
        false
      else begin
        (* the live system already admitted this definition; replay with
           the most permissive tier so recovery cannot re-reject it *)
        ignore (Db.define_view db ~index ~tier_limit:Classify.IM_poly_c def);
        true
      end
  | P_drop_view { name } ->
      if Option.is_none (Registry.find (Db.registry db) name) then false
      else begin
        Db.drop_view db name;
        true
      end

(* ---- the durable handle ---- *)

type health = Healthy | Degraded of string

type t = {
  database : Db.t;
  storage : Storage.t; (* retry- and fault-wrapped *)
  fault : Fault.t;
  journal : Journal.t;
  sync : Journal.sync_policy;
  keep : int; (* checkpoint generations retained *)
  segment_bytes : int option;
  mutable health : health;
}

let db t = t.database
let fault t = t.fault
let sync_policy t = t.sync
let journal_records t = Journal.records t.journal
let journal_bytes t = Journal.byte_size t.journal
let health t = t.health
let keep_checkpoints t = t.keep

let degrade t reason =
  match t.health with
  | Degraded _ -> ()
  | Healthy ->
      t.health <- Degraded reason;
      Db.set_read_only t.database (Some reason)

(* ---- bounded sync retry ----

   A transient sync failure (EIO-style, or [Fault.Sync_failed] injected
   by the harness) is retried with exponential backoff; if the budget
   is exhausted the instance degrades to read-only instead of raising
   mid-append — the write-ahead record is on storage (perhaps
   unflushed), in-memory state is consistent, and every further
   mutation is rejected with [Db.Read_only] until an operator
   intervenes.  The wrapper sits {e outside} the fault wrapper, so
   injected failures are retried exactly as real ones would be. *)

let sync_attempts = 5

let with_sync_retry ~on_exhausted (s : Storage.t) =
  {
    s with
    Storage.sync =
      (fun name ->
        let transient = function
          | Fault.Sync_failed _ | Unix.Unix_error _ -> true
          | _ -> false
        in
        let rec go attempt =
          try s.Storage.sync name
          with e when transient e ->
            if attempt >= sync_attempts then on_exhausted name
            else begin
              Stats.incr Stats.Sync_retry;
              Unix.sleepf
                (Float.min 0.05 (0.001 *. float_of_int (1 lsl (attempt - 1))));
              go (attempt + 1)
            end
        in
        go 1);
  }

let exhausted_reason name =
  Printf.sprintf "sync of %S failed %d times; writes no longer reach stable storage"
    name sync_attempts

(* [attach]/[recover] build the storage stack before the handle exists;
   the cell forward-references the handle so exhaustion can degrade
   it. *)
let wrap_with_retry fault storage =
  let cell = ref (fun (_ : string) -> ()) in
  let wrapped =
    with_sync_retry
      ~on_exhausted:(fun name -> !cell name)
      (Fault.wrap_storage fault storage)
  in
  (wrapped, cell)

let arm_degrade cell t =
  cell := fun name -> degrade t (exhausted_reason name)

let alive t name =
  if Fault.is_dead t.fault then
    invalid_arg (Printf.sprintf "Durable.%s: instance crashed" name)

let sink t ev =
  (* a dead process writes nothing — in particular it cannot erase the
     write-ahead record of the batch the crash interrupted *)
  if not (Fault.is_dead t.fault) then
    match ev with
    | Db.Ev_abort _ -> Journal.truncate_last t.journal
    | ev ->
        Journal.append t.journal (sexp_of_event ev);
        (match ev with
        | Db.Ev_append _ -> Fault.hit t.fault p_post_journal_write
        | Db.Ev_group _ ->
            (* groups are write-ahead records too, so the generic point
               fires; the dedicated point lets fault sweeps target the
               half-committed-group window specifically *)
            Fault.hit t.fault p_post_journal_write;
            Fault.hit t.fault p_post_group_write
        | Db.Ev_insert _ ->
            (* relation-row inserts are write-ahead records too: the
               generic point fires, and a dedicated point lets fault
               sweeps target the journaled-but-not-applied window of an
               insert specifically *)
            Fault.hit t.fault p_post_journal_write;
            Fault.hit t.fault p_post_insert_write
        | Db.Ev_retract _ ->
            (* retractions are write-ahead records too: the generic
               point fires, and a dedicated point lets fault sweeps
               target the journaled-but-not-applied window of a
               retraction specifically *)
            Fault.hit t.fault p_post_journal_write;
            Fault.hit t.fault p_post_retract_write
        | _ -> ())

(* Retire old checkpoint generations and the journal segments no
   retained generation needs.  [min_first] is the smallest
   [first_segment] over the retained generations — a generation whose
   header no longer reads is treated as needing everything
   (conservative: never delete bytes a fallback might replay). *)
let prune_generations t ~newest_gen ~newest_first_segment =
  let retained, dropped =
    let rec split n = function
      | [] -> ([], [])
      | x :: rest when n > 0 ->
          let r, d = split (n - 1) rest in
          (x :: r, d)
      | rest -> ([], rest)
    in
    split t.keep (List.rev (Ckpt.generations t.storage))
  in
  List.iter (fun (_, name) -> t.storage.Storage.remove name) dropped;
  (* a bare legacy checkpoint is superseded by any generation *)
  t.storage.Storage.remove checkpoint_file;
  let min_first =
    List.fold_left
      (fun acc (g, name) ->
        if g = newest_gen then min acc newest_first_segment
        else
          match t.storage.Storage.read name with
          | None -> 0
          | Some contents -> (
              match Ckpt.decode contents with
              | Ok (h, _) -> min acc h.Ckpt.first_segment
              | Error _ -> 0))
      newest_first_segment retained
  in
  List.iter
    (fun (seq, name) -> if seq < min_first then t.storage.Storage.remove name)
    (Journal.segments t.storage journal_file)

let do_checkpoint t =
  let doc = Snapshot.save t.database in
  if t.keep <= 1 then begin
    (* legacy layout: the raw snapshot under the bare name,
       byte-identical to the single-generation format *)
    t.storage.Storage.write checkpoint_tmp_file doc;
    t.storage.Storage.sync checkpoint_tmp_file;
    Fault.hit t.fault p_pre_checkpoint_rename;
    t.storage.Storage.rename checkpoint_tmp_file checkpoint_file;
    t.storage.Storage.sync checkpoint_file;
    Fault.hit t.fault p_post_checkpoint_rename;
    Journal.reset t.journal;
    (* leftovers from an earlier multi-generation configuration are all
       redundant now: the bare checkpoint covers everything *)
    List.iter
      (fun (_, name) -> t.storage.Storage.remove name)
      (Ckpt.generations t.storage);
    List.iter
      (fun (_, name) -> t.storage.Storage.remove name)
      (Journal.segments t.storage journal_file)
  end
  else begin
    (* seal first so the fresh active segment is exactly the journal
       this generation does not cover *)
    Journal.seal t.journal;
    let first_segment = Journal.active_seq t.journal in
    let generation =
      match List.rev (Ckpt.generations t.storage) with
      | (g, _) :: _ -> g + 1
      | [] -> 0
    in
    t.storage.Storage.write checkpoint_tmp_file
      (Ckpt.encode ~generation ~first_segment doc);
    t.storage.Storage.sync checkpoint_tmp_file;
    Fault.hit t.fault p_pre_checkpoint_rename;
    let name = Ckpt.gen_name generation in
    t.storage.Storage.rename checkpoint_tmp_file name;
    t.storage.Storage.sync name;
    Fault.hit t.fault p_post_checkpoint_rename;
    prune_generations t ~newest_gen:generation ~newest_first_segment:first_segment
  end;
  Stats.incr Stats.Checkpoint

let checkpoint t =
  alive t "checkpoint";
  do_checkpoint t

let install t =
  Db.set_txn_sink t.database (Some (sink t));
  Db.set_fold_probe t.database
    (Some (fun ~view:_ ~sn:_ -> Fault.hit t.fault p_view_fold));
  (* heavy-light partition transitions (promote/demote inside a
     key-join fold) are crash points too: route them to the same fault
     plan so the sweep can abort a batch mid-build/mid-teardown *)
  Skew.set_probe (Some (fun point -> Fault.hit t.fault point))

let detach t =
  Db.set_txn_sink t.database None;
  Db.set_fold_probe t.database None;
  Skew.set_probe None

let next_seal_seq storage =
  match List.rev (Journal.segments storage journal_file) with
  | (seq, _) :: _ -> seq + 1
  | [] -> 0

let attach ?fault ?(sync = Journal.Sync_always) ?(keep_checkpoints = 1)
    ?segment_bytes ~storage db =
  if keep_checkpoints < 1 then
    invalid_arg "Durable.attach: keep_checkpoints must be at least 1";
  let fault = Option.value fault ~default:(Fault.create ()) in
  let storage, cell = wrap_with_retry fault storage in
  (* a crash between checkpoint write and rename leaves a stale temp;
     deleted here so it can never shadow a future checkpoint *)
  storage.Storage.remove checkpoint_tmp_file;
  let journal =
    Journal.open_ ~sync ?segment_bytes ~seq:(next_seal_seq storage) storage
      journal_file
  in
  let t =
    {
      database = db;
      storage;
      fault;
      journal;
      sync;
      keep = keep_checkpoints;
      segment_bytes;
      health = Healthy;
    }
  in
  arm_degrade cell t;
  (* without a checkpoint, recovery could not reconstruct catalog state
     that predates journaling (including the default group's name) *)
  if
    (not (storage.Storage.exists checkpoint_file))
    && Ckpt.generations storage = []
  then do_checkpoint t;
  install t;
  t

type mode = Strict | Salvage

type report = {
  checkpoint_loaded : bool;
  generation : int option;
  fallbacks : int;
  replayed : int;
  skipped : int;
  dropped_torn : bool;
  dropped_failed : bool;
  quarantined : int;
  degraded : bool;
}

let recover ?fault ?(sync = Journal.Sync_always) ?jobs ?heavy_threshold
    ?(mode = Strict)
    ?(keep_checkpoints = 1) ?segment_bytes ~storage () =
  if keep_checkpoints < 1 then
    invalid_arg "Durable.recover: keep_checkpoints must be at least 1";
  let fault = Option.value fault ~default:(Fault.create ()) in
  (* a crash between checkpoint write and rename leaves a stale temp *)
  storage.Storage.remove checkpoint_tmp_file;
  let quarantined = ref 0 in
  let quarantine name bytes =
    (* never silently drop damaged bytes: park them in a sidecar the
       operator (or a future repair tool) can inspect *)
    storage.Storage.write (quarantine_name name) bytes;
    storage.Storage.sync (quarantine_name name);
    incr quarantined;
    Stats.incr Stats.Salvage_quarantined
  in
  (* ---- checkpoint: newest verifiable generation, falling back
     generation by generation, then the bare legacy name ---- *)
  let candidates =
    List.rev_map (fun (g, name) -> (Some g, name)) (Ckpt.generations storage)
    @ (if storage.Storage.exists checkpoint_file then
         [ (None, checkpoint_file) ]
       else [])
  in
  let fallbacks = ref 0 in
  let rec load_checkpoint first_failure = function
    | [] -> (
        match first_failure with
        | None -> `Fresh
        | Some (generation, reason) -> `All_failed (generation, reason))
    | (generation, name) :: rest -> (
        let verdict =
          match storage.Storage.read name with
          | None -> Error "vanished during recovery"
          | Some contents -> (
              match generation with
              | None -> (
                  match Snapshot.load ?jobs ?heavy_threshold contents with
                  | db -> Ok (0, db)
                  | exception e ->
                      Error ("snapshot does not load: " ^ Printexc.to_string e))
              | Some _ -> (
                  match Ckpt.decode contents with
                  | Error reason -> Error reason
                  | Ok (h, payload) -> (
                      match Snapshot.load ?jobs ?heavy_threshold payload with
                      | db -> Ok (h.Ckpt.first_segment, db)
                      | exception e ->
                          Error
                            ("snapshot does not load: " ^ Printexc.to_string e))))
        in
        match verdict with
        | Ok (first_segment, db) -> `Loaded (generation, first_segment, db)
        | Error reason ->
            Stats.incr Stats.Checkpoint_fallback;
            incr fallbacks;
            if mode = Salvage then begin
              (* self-heal: keep the damaged generation's bytes, but out
                 of the fallback path *)
              (match storage.Storage.read name with
              | Some contents -> quarantine name contents
              | None -> ());
              storage.Storage.remove name
            end;
            load_checkpoint
              (match first_failure with
              | None -> Some (generation, reason)
              | s -> s)
              rest)
  in
  let checkpoint_loaded, generation, first_segment, database, ck_failed =
    match load_checkpoint None candidates with
    | `Loaded (generation, first_segment, db) ->
        (true, generation, first_segment, db, false)
    | `Fresh -> (false, None, 0, Db.create ?jobs ?heavy_threshold (), false)
    | `All_failed (generation, reason) ->
        if mode = Strict then raise (Checkpoint_corrupt { generation; reason })
        else (false, None, 0, Db.create ?jobs ?heavy_threshold (), true)
  in
  (* ---- journal: sealed segments the checkpoint does not cover, in
     sequence order, then the active segment ---- *)
  let scans =
    List.map
      (fun (kind, name) ->
        let recs, ended =
          match storage.Storage.read name with
          | None -> ([], Journal.Complete)
          | Some contents -> Journal.scan contents
        in
        (kind, name, recs, ended))
      (List.filter_map
         (fun (seq, name) ->
           if seq >= first_segment then Some (`Sealed seq, name) else None)
         (Journal.segments storage journal_file)
      @ [ (`Active, journal_file) ])
  in
  let replayed = ref 0 and skipped = ref 0 in
  let dropped_failed = ref false and dropped_torn = ref false in
  let count applied =
    if applied then begin
      incr replayed;
      Stats.incr Stats.Journal_replay
    end
    else incr skipped
  in
  let salvage_stopped = ref false in
  (match mode with
  | Strict -> begin
      (* stage 1: flatten the segments into the global record sequence,
         verifying as we go — damage anywhere (a checksum mismatch, or
         a torn {e sealed} segment, which a clean rotation can never
         produce) is corruption, reported before any replay begins.  A
         torn tail on the active segment stays the tolerated
         died-mid-append case. *)
      let rev_records = ref [] (* (sexp, segment-name, offset, active?) *) in
      let base = ref 0 in
      List.iter
        (fun (kind, name, recs, ended) ->
          List.iter
            (fun (sexp, off) ->
              rev_records := (sexp, name, off, kind = `Active) :: !rev_records)
            recs;
          let here = List.length recs in
          (match (ended, kind) with
          | Journal.Complete, _ -> ()
          | Journal.Torn _, `Active -> dropped_torn := true
          | Journal.Torn _, `Sealed _ ->
              raise
                (Journal.Journal_corrupt
                   { record = !base + here; reason = "sealed segment torn" })
          | Journal.Damaged { index; reason; _ }, _ ->
              raise
                (Journal.Journal_corrupt { record = !base + index; reason }));
          base := !base + here)
        scans;
      let located = Array.of_list (List.rev !rev_records) in
      (* stage 2: parse every record up front — a CRC-valid but
         malformed record is corruption too, reported with its global
         index *)
      let parsed =
        Array.mapi
          (fun i (sexp, _, _, _) -> parse_record ~record:i sexp)
          located
      in
      let n = Array.length parsed in
      (* stage 3: replay.  Runs of consecutive append records (the
         common journal shape) are dispatched as one window through
         [Db.replay_appends], which schedules independent views' fold
         chains across the database's pool; catalog/clock records are
         scheduling barriers replayed one at a time; and the journal's
         final record always replays alone through the transactional
         path, keeping the classic semantics of a batch that died with
         the crashed process (applied-or-dropped, never half-applied).
         Every degree — including [jobs = 1], where the pool runs
         inline — takes this same path, so recovered state is identical
         across degrees. *)
      let apply_classic i p =
    match apply_parsed database p with
    | applied -> count applied
    | exception e ->
        if i = n - 1 then
          (* the dying process's final batch: Db's transactional path
             already rolled its effects back; drop its record below *)
          dropped_failed := true
        else raise (Recovery_error { record = i; reason = Printexc.to_string e })
  in
  let is_append k =
    match parsed.(k) with P_append _ | P_group _ -> true | _ -> false
  in
  let i = ref 0 in
  while !i < n do
    if is_append !i && !i < n - 1 then begin
      (* maximal window of consecutive append/group records, final
         record excluded.  Group records flatten into the entry run —
         a non-final group is fully committed (its record survived the
         next write), so entry-at-a-time replay is exact — while
         [spans] remembers which entries came from which source record,
         keeping the report's replayed/skipped counts and any failure
         index record-granular. *)
      let entries = ref [] and spans = ref [] in
      let j = ref !i and flat = ref 0 in
      let scan = ref true in
      while !scan do
        if !j < n - 1 then
          match parsed.(!j) with
          | P_append e ->
              entries := [ e ] :: !entries;
              spans := (!j, !flat, 1) :: !spans;
              incr flat;
              incr j
          | P_group es ->
              let len = List.length es in
              entries := es :: !entries;
              spans := (!j, !flat, len) :: !spans;
              flat := !flat + len;
              incr j
          | _ -> scan := false
        else scan := false
      done;
      Fault.hit fault p_replay_dispatch;
      (match Db.replay_appends database (List.concat (List.rev !entries)) with
      | outcomes ->
          List.iter
            (fun (_, start, len) ->
              let applied = ref false in
              for k = start to start + len - 1 do
                if outcomes.(k) then applied := true
              done;
              count !applied)
            !spans
      | exception Db.Replay_error { index; error } ->
          let record =
            match
              List.find_opt
                (fun (_, start, len) -> index >= start && index < start + len)
                !spans
            with
            | Some (r, _, _) -> r
            | None -> !i + index
          in
          raise (Recovery_error { record; reason = Printexc.to_string error }));
      i := !j
    end
    else begin
      apply_classic !i parsed.(!i);
      incr i
    end
  done;
      if !dropped_failed then
        (* erase the dropped record wherever it lives; when it sits in
           the active segment the reopened journal erases it below *)
        match located.(n - 1) with
        | _, name, off, false -> storage.Storage.truncate name off
        | _ -> ()
    end
  | Salvage ->
      (* Sequential, transactional, stop-at-first-damage: each record
         re-applies through the per-record transactional path, so when
         replay stops the database is {e exactly} the journal prefix
         before the damage.  The damaged suffix — and every later
         segment wholesale — is quarantined to sidecars, never silently
         dropped; the instance then opens read-only (Degraded). *)
      let n_total =
        List.fold_left
          (fun acc (_, _, recs, _) -> acc + List.length recs)
          0 scans
      in
      let gi = ref 0 in
      let stop_at name off rest =
        salvage_stopped := true;
        (match storage.Storage.read name with
        | Some contents when String.length contents > off ->
            quarantine name
              (String.sub contents off (String.length contents - off))
        | _ -> ());
        if off = 0 then storage.Storage.remove name
        else storage.Storage.truncate name off;
        List.iter
          (fun (_, n2, recs2, ended2) ->
            (if recs2 <> [] || ended2 <> Journal.Complete then
               match storage.Storage.read n2 with
               | Some contents -> quarantine n2 contents
               | None -> ());
            storage.Storage.remove n2)
          rest
      in
      let rec go = function
        | [] -> ()
        | (kind, name, recs, ended) :: rest ->
            let failed = ref None in
            List.iter
              (fun (sexp, off) ->
                if !failed = None then
                  match
                    apply_parsed database (parse_record ~record:!gi sexp)
                  with
                  | applied ->
                      count applied;
                      incr gi
                  | exception (Journal.Journal_corrupt _ as _e) ->
                      (* CRC-valid gibberish: damage, not a died batch *)
                      failed := Some off
                  | exception _ when !gi = n_total - 1 ->
                      (* the dying process's final batch: dropped, as in
                         strict recovery *)
                      dropped_failed := true;
                      if kind <> `Active then storage.Storage.truncate name off;
                      incr gi
                  | exception _ -> failed := Some off)
              recs;
            (match !failed with
            | Some off -> stop_at name off rest
            | None -> (
                match (ended, kind) with
                | Journal.Complete, _ -> go rest
                | Journal.Torn _, `Active -> dropped_torn := true
                | Journal.Torn off, `Sealed _ -> stop_at name off rest
                | Journal.Damaged { offset; _ }, _ -> stop_at name offset rest))
      in
      go scans);
  let wrapped, cell = wrap_with_retry fault storage in
  let journal =
    Journal.open_ ~sync ?segment_bytes ~seq:(next_seal_seq storage) wrapped
      journal_file
  in
  if !dropped_failed && Journal.records journal > 0 then
    Journal.truncate_last journal;
  let degraded_reason =
    if !salvage_stopped then
      Some "salvage recovery quarantined damaged journal records"
    else if ck_failed then
      Some "salvage recovery could not verify any checkpoint generation"
    else None
  in
  let t =
    {
      database;
      storage = wrapped;
      fault;
      journal;
      sync;
      keep = keep_checkpoints;
      segment_bytes;
      health = Healthy;
    }
  in
  arm_degrade cell t;
  (match degraded_reason with Some r -> degrade t r | None -> ());
  if candidates = [] && degraded_reason = None then do_checkpoint t;
  install t;
  ( t,
    {
      checkpoint_loaded;
      generation;
      fallbacks = !fallbacks;
      replayed = !replayed;
      skipped = !skipped;
      dropped_torn = !dropped_torn;
      dropped_failed = !dropped_failed;
      quarantined = !quarantined;
      degraded = degraded_reason <> None;
    } )

let has_state (storage : Storage.t) =
  storage.Storage.exists checkpoint_file
  || storage.Storage.exists journal_file
  || Ckpt.generations storage <> []
  || Journal.segments storage journal_file <> []
