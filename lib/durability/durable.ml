open Relational
open Chronicle_core

exception Recovery_error of { record : int; reason : string }

let journal_file = "journal"
let checkpoint_file = "checkpoint"
let checkpoint_tmp_file = "checkpoint.tmp"

(* crash-point names (see Fault) *)
let p_post_journal_write = "post-journal-write"
let p_post_group_write = "post-group-write"
let p_pre_checkpoint_rename = "pre-checkpoint-rename"
let p_post_checkpoint_rename = "post-checkpoint-rename"
let p_view_fold = "view-fold"
let p_replay_dispatch = "replay-dispatch"

(* ---- transaction-event (de)serialization ---- *)

let sexp_of_batch batch =
  Sexp.List
    (List.map
       (fun (cname, tuples) ->
         Sexp.List
           [
             Sexp.atom cname;
             Sexp.List (List.map Snapshot.sexp_of_tuple tuples);
           ])
       batch)

let sexp_of_event (ev : Db.txn_event) =
  let tagged tag fields = Sexp.List [ Sexp.Atom tag; Sexp.record fields ] in
  match ev with
  | Db.Ev_append { group; sn; batch } ->
      tagged "append"
        [
          ("group", Sexp.atom group);
          ("sn", Sexp.int sn);
          ("batch", sexp_of_batch batch);
        ]
  | Db.Ev_group { group; entries } ->
      (* a whole group commit framed as ONE journal record: one storage
         append, one sync, however many batches the group carries *)
      tagged "group"
        [
          ("group", Sexp.atom group);
          ( "entries",
            Sexp.List
              (List.map
                 (fun (sn, batch) ->
                   Sexp.record
                     [ ("sn", Sexp.int sn); ("batch", sexp_of_batch batch) ])
                 entries) );
        ]
  | Db.Ev_clock { group; chronon } ->
      tagged "clock" [ ("group", Sexp.atom group); ("chronon", Sexp.int chronon) ]
  | Db.Ev_add_group { name; clock_start } ->
      tagged "add-group"
        (("name", Sexp.atom name)
        ::
        (match clock_start with
        | None -> []
        | Some c -> [ ("clock-start", Sexp.int c) ]))
  | Db.Ev_add_chronicle { name; group; retention; schema } ->
      tagged "add-chronicle"
        [
          ("name", Sexp.atom name);
          ("group", Sexp.atom group);
          ("retention", Snapshot.sexp_of_retention retention);
          ("schema", Snapshot.sexp_of_schema schema);
        ]
  | Db.Ev_add_relation { name; group; schema; key } ->
      tagged "add-relation"
        ([
           ("name", Sexp.atom name);
           ("group", Sexp.atom group);
           ("schema", Snapshot.sexp_of_schema schema);
         ]
        @
        match key with
        | None -> []
        | Some key -> [ ("key", Sexp.List (List.map Sexp.atom key)) ])
  | Db.Ev_define_view { def; index } ->
      tagged "define-view"
        [
          ( "index",
            Sexp.Atom
              (match index with Index.Hash -> "hash" | Index.Ordered -> "ordered")
          );
          ("def", Snapshot.sexp_of_sca def);
        ]
  | Db.Ev_drop_view { name } -> tagged "drop-view" [ ("name", Sexp.atom name) ]
  | Db.Ev_abort _ ->
      (* Aborts erase the previous record ([sink] maps them to
         [Journal.truncate_last]); they are never serialized.  This
         function's only caller is [sink], which dispatches [Ev_abort]
         before reaching the serializer, so this branch is unreachable
         from within the module — kept as a typed rejection (not an
         assert) so a future caller that bypasses [sink] fails with a
         diagnosis instead of a blind assertion. *)
      invalid_arg "Durable: Ev_abort is erased, never journaled"

(* ---- journal-record parsing and application ----

   Split in two stages so failures are typed precisely:

   - [parse_record] performs every structural destructuring of the
     S-expression.  A CRC-valid but malformed record is *corruption*
     (the checksum said the bytes are what was written, the content is
     still gibberish) and raises [Journal.Journal_corrupt] with the
     record index — never a bare [Failure].
   - [apply_parsed] re-applies a parsed record to the database.  Its
     failures are *application* failures (the record is well-formed but
     the database cannot accept it), reported by [recover] as
     [Recovery_error] — or, for the journal's final record, tolerated
     as the batch that died with the crashed process.

   Application is idempotent: a record whose effect is already present
   (checkpoint taken after it, or a crash between checkpoint-rename and
   journal-reset) is skipped; [apply_parsed] returns [true] iff the
   record was applied. *)

type parsed =
  | P_append of Db.replay_entry
  | P_group of Db.replay_entry list
      (* one group-commit record: applied atomically when it is the
         journal's final record, flattened into the replay window
         otherwise (a non-final group is fully committed by
         construction — its record survived the next write) *)
  | P_clock of { group : string; chronon : Seqnum.chronon }
  | P_add_group of { name : string; clock_start : Seqnum.chronon option }
  | P_add_chronicle of {
      name : string;
      group : string;
      retention : Chron.retention;
      schema : Schema.t;
    }
  | P_add_relation of {
      name : string;
      group : string;
      schema : Schema.t;
      key : string list option;
    }
  | P_define_view of { index : Index.kind; def : Sexp.t }
      (* [def] stays unparsed: resolving it needs catalog state, so its
         failures are application failures, not corruption *)
  | P_drop_view of { name : string }

let corrupt record reason = raise (Journal.Journal_corrupt { record; reason })

let parse_record ~record sexp =
  let fail fmt = Format.kasprintf (corrupt record) fmt in
  match sexp with
  | Sexp.List [ Sexp.Atom tag; fields ] -> (
      let name_field () = Sexp.to_atom (Sexp.field fields "name") in
      let group_field () = Sexp.to_atom (Sexp.field fields "group") in
      let batch_of_sexp sexp =
        List.map
          (fun entry ->
            match entry with
            | Sexp.List [ cname; tuples ] ->
                ( Sexp.to_atom cname,
                  List.map Snapshot.tuple_of_sexp (Sexp.to_list tuples) )
            | _ -> fail "malformed append batch")
          (Sexp.to_list sexp)
      in
      try
        match tag with
        | "append" ->
            let rgroup = group_field () in
            let rsn = Sexp.to_int (Sexp.field fields "sn") in
            let rbatch = batch_of_sexp (Sexp.field fields "batch") in
            P_append { Db.rgroup; rsn; rbatch }
        | "group" ->
            let rgroup = group_field () in
            let entries =
              List.map
                (fun entry ->
                  {
                    Db.rgroup;
                    rsn = Sexp.to_int (Sexp.field entry "sn");
                    rbatch = batch_of_sexp (Sexp.field entry "batch");
                  })
                (Sexp.to_list (Sexp.field fields "entries"))
            in
            if entries = [] then fail "empty group record";
            P_group entries
        | "clock" ->
            P_clock
              {
                group = group_field ();
                chronon = Sexp.to_int (Sexp.field fields "chronon");
              }
        | "add-group" ->
            P_add_group
              {
                name = name_field ();
                clock_start =
                  Option.map Sexp.to_int (Sexp.field_opt fields "clock-start");
              }
        | "add-chronicle" ->
            P_add_chronicle
              {
                name = name_field ();
                group = group_field ();
                retention =
                  Snapshot.retention_of_sexp (Sexp.field fields "retention");
                schema = Snapshot.schema_of_sexp (Sexp.field fields "schema");
              }
        | "add-relation" ->
            P_add_relation
              {
                name = name_field ();
                group = group_field ();
                schema = Snapshot.schema_of_sexp (Sexp.field fields "schema");
                key =
                  Option.map
                    (fun s -> List.map Sexp.to_atom (Sexp.to_list s))
                    (Sexp.field_opt fields "key");
              }
        | "define-view" ->
            let index =
              match Sexp.to_atom (Sexp.field fields "index") with
              | "hash" -> Index.Hash
              | "ordered" -> Index.Ordered
              | other -> fail "bad index kind %S" other
            in
            P_define_view { index; def = Sexp.field fields "def" }
        | "drop-view" -> P_drop_view { name = name_field () }
        | other -> fail "unknown journal record tag %S" other
      with
      | Journal.Journal_corrupt _ as e -> raise e
      | e ->
          (* missing field, wrong atom shape, … — structural damage *)
          fail "malformed %S record: %s" tag (Printexc.to_string e))
  | _ -> corrupt record "malformed journal record"

let apply_parsed db = function
  | P_append { Db.rgroup; rsn; rbatch } ->
      if rsn <= Group.watermark (Db.group db rgroup) then false
      else begin
        Db.append_at db ~group:rgroup ~sn:rsn rbatch;
        true
      end
  | P_group entries ->
      (* atomic: the whole group applies or none of it does — this is
         the path the journal's *final* record takes, so a process that
         died mid-group recovers to pre-group or post-group state *)
      Array.exists Fun.id (Db.replay_group db entries)
  | P_clock { group; chronon } ->
      if chronon <= Group.now (Db.group db group) then false
      else begin
        Db.advance_clock db ~group chronon;
        true
      end
  | P_add_group { name; clock_start } ->
      if List.mem name (Db.group_names db) then false
      else begin
        ignore (Db.add_group db ?clock_start name);
        true
      end
  | P_add_chronicle { name; group; retention; schema } ->
      if List.mem name (Db.chronicle_names db) then false
      else begin
        ignore (Db.add_chronicle db ~group ~retention ~name schema);
        true
      end
  | P_add_relation { name; group; schema; key } ->
      if List.mem name (Db.relation_names db) then false
      else begin
        ignore (Db.add_relation db ~group ~name ~schema ?key ());
        true
      end
  | P_define_view { index; def } ->
      let def =
        Snapshot.sca_of_sexp
          ~chronicle:(fun n -> Db.chronicle db n)
          ~relation:(fun n -> Versioned.relation (Db.relation db n))
          def
      in
      if Option.is_some (Registry.find (Db.registry db) (Sca.name def)) then
        false
      else begin
        (* the live system already admitted this definition; replay with
           the most permissive tier so recovery cannot re-reject it *)
        ignore (Db.define_view db ~index ~tier_limit:Classify.IM_poly_c def);
        true
      end
  | P_drop_view { name } ->
      if Option.is_none (Registry.find (Db.registry db) name) then false
      else begin
        Db.drop_view db name;
        true
      end

(* ---- the durable handle ---- *)

type t = {
  database : Db.t;
  storage : Storage.t; (* fault-wrapped *)
  fault : Fault.t;
  journal : Journal.t;
  sync : Journal.sync_policy;
}

let db t = t.database
let fault t = t.fault
let sync_policy t = t.sync
let journal_records t = Journal.records t.journal
let journal_bytes t = Journal.byte_size t.journal

let alive t name =
  if Fault.is_dead t.fault then
    invalid_arg (Printf.sprintf "Durable.%s: instance crashed" name)

let sink t ev =
  (* a dead process writes nothing — in particular it cannot erase the
     write-ahead record of the batch the crash interrupted *)
  if not (Fault.is_dead t.fault) then
    match ev with
    | Db.Ev_abort _ -> Journal.truncate_last t.journal
    | ev ->
        Journal.append t.journal (sexp_of_event ev);
        (match ev with
        | Db.Ev_append _ -> Fault.hit t.fault p_post_journal_write
        | Db.Ev_group _ ->
            (* groups are write-ahead records too, so the generic point
               fires; the dedicated point lets fault sweeps target the
               half-committed-group window specifically *)
            Fault.hit t.fault p_post_journal_write;
            Fault.hit t.fault p_post_group_write
        | _ -> ())

let do_checkpoint t =
  let doc = Snapshot.save t.database in
  t.storage.Storage.write checkpoint_tmp_file doc;
  t.storage.Storage.sync checkpoint_tmp_file;
  Fault.hit t.fault p_pre_checkpoint_rename;
  t.storage.Storage.rename checkpoint_tmp_file checkpoint_file;
  t.storage.Storage.sync checkpoint_file;
  Fault.hit t.fault p_post_checkpoint_rename;
  Journal.reset t.journal;
  Stats.incr Stats.Checkpoint

let checkpoint t =
  alive t "checkpoint";
  do_checkpoint t

let install t =
  Db.set_txn_sink t.database (Some (sink t));
  Db.set_fold_probe t.database
    (Some (fun ~view:_ ~sn:_ -> Fault.hit t.fault p_view_fold))

let detach t =
  Db.set_txn_sink t.database None;
  Db.set_fold_probe t.database None

let attach ?fault ?(sync = Journal.Sync_always) ~storage db =
  let fault = Option.value fault ~default:(Fault.create ()) in
  let storage = Fault.wrap_storage fault storage in
  let journal = Journal.open_ ~sync storage journal_file in
  let t = { database = db; storage; fault; journal; sync } in
  (* without a checkpoint, recovery could not reconstruct catalog state
     that predates journaling (including the default group's name) *)
  if not (storage.Storage.exists checkpoint_file) then do_checkpoint t;
  install t;
  t

type report = {
  checkpoint_loaded : bool;
  replayed : int;
  skipped : int;
  dropped_torn : bool;
  dropped_failed : bool;
}

let recover ?fault ?(sync = Journal.Sync_always) ?jobs ~storage () =
  let fault = Option.value fault ~default:(Fault.create ()) in
  let checkpoint_loaded, database =
    match storage.Storage.read checkpoint_file with
    | Some doc -> (true, Snapshot.load ?jobs doc)
    | None -> (false, Db.create ?jobs ())
  in
  let records, tail = Journal.read storage journal_file in
  (* stage 1: parse every record up front — malformation anywhere in
     the journal is corruption, reported before any replay begins *)
  let parsed =
    Array.of_list (List.mapi (fun i s -> parse_record ~record:i s) records)
  in
  let n = Array.length parsed in
  let replayed = ref 0 and skipped = ref 0 and dropped_failed = ref false in
  let count applied =
    if applied then begin
      incr replayed;
      Stats.incr Stats.Journal_replay
    end
    else incr skipped
  in
  (* stage 2: replay.  Runs of consecutive append records (the common
     journal shape) are dispatched as one window through
     [Db.replay_appends], which schedules independent views' fold
     chains across the database's pool; catalog/clock records are
     scheduling barriers replayed one at a time; and the journal's
     final record always replays alone through the transactional path,
     keeping the classic semantics of a batch that died with the
     crashed process (applied-or-dropped, never half-applied).  Every
     degree — including [jobs = 1], where the pool runs inline — takes
     this same path, so recovered state is identical across degrees. *)
  let apply_classic i p =
    match apply_parsed database p with
    | applied -> count applied
    | exception e ->
        if i = n - 1 then
          (* the dying process's final batch: Db's transactional path
             already rolled its effects back; drop its record below *)
          dropped_failed := true
        else raise (Recovery_error { record = i; reason = Printexc.to_string e })
  in
  let is_append k =
    match parsed.(k) with P_append _ | P_group _ -> true | _ -> false
  in
  let i = ref 0 in
  while !i < n do
    if is_append !i && !i < n - 1 then begin
      (* maximal window of consecutive append/group records, final
         record excluded.  Group records flatten into the entry run —
         a non-final group is fully committed (its record survived the
         next write), so entry-at-a-time replay is exact — while
         [spans] remembers which entries came from which source record,
         keeping the report's replayed/skipped counts and any failure
         index record-granular. *)
      let entries = ref [] and spans = ref [] in
      let j = ref !i and flat = ref 0 in
      let scan = ref true in
      while !scan do
        if !j < n - 1 then
          match parsed.(!j) with
          | P_append e ->
              entries := [ e ] :: !entries;
              spans := (!j, !flat, 1) :: !spans;
              incr flat;
              incr j
          | P_group es ->
              let len = List.length es in
              entries := es :: !entries;
              spans := (!j, !flat, len) :: !spans;
              flat := !flat + len;
              incr j
          | _ -> scan := false
        else scan := false
      done;
      Fault.hit fault p_replay_dispatch;
      (match Db.replay_appends database (List.concat (List.rev !entries)) with
      | outcomes ->
          List.iter
            (fun (_, start, len) ->
              let applied = ref false in
              for k = start to start + len - 1 do
                if outcomes.(k) then applied := true
              done;
              count !applied)
            !spans
      | exception Db.Replay_error { index; error } ->
          let record =
            match
              List.find_opt
                (fun (_, start, len) -> index >= start && index < start + len)
                !spans
            with
            | Some (r, _, _) -> r
            | None -> !i + index
          in
          raise (Recovery_error { record; reason = Printexc.to_string error }));
      i := !j
    end
    else begin
      apply_classic !i parsed.(!i);
      incr i
    end
  done;
  let wrapped = Fault.wrap_storage fault storage in
  let journal = Journal.open_ ~sync wrapped journal_file in
  if !dropped_failed && Journal.records journal > 0 then
    Journal.truncate_last journal;
  let t = { database; storage = wrapped; fault; journal; sync } in
  if not (wrapped.Storage.exists checkpoint_file) then do_checkpoint t;
  install t;
  ( t,
    {
      checkpoint_loaded;
      replayed = !replayed;
      skipped = !skipped;
      dropped_torn = (tail = `Torn);
      dropped_failed = !dropped_failed;
    } )

let has_state (storage : Storage.t) =
  storage.Storage.exists checkpoint_file
  || storage.Storage.exists journal_file
