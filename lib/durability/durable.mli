open Chronicle_core

(** Crash-safe operation of a chronicle database: write-ahead
    journaling, atomic checkpoints, and recovery.

    A chronicle is an unbounded stream the system deliberately does not
    store, so the materialized views {e are} the database — losing them
    to a crash is losing data that cannot be recomputed.  This module
    makes the transaction path durable:

    {ol
    {- {b Journal.}  {!attach} installs a {!Db.set_txn_sink}; every
       append (and catalog change) is framed, checksummed and written
       to the journal {e before} any in-memory state mutates.  If the
       batch is rolled back ({!Db}'s atomic path), the write-ahead
       record is erased again.}
    {- {b Checkpoint.}  {!checkpoint} serializes the full database
       ({!Snapshot.save}) to a temp name, atomically renames it over
       the live checkpoint, and only then resets the journal — at
       every instant, checkpoint + journal describe the database.}
    {- {b Recovery.}  {!recover} loads the last checkpoint and replays
       the journal suffix through the normal delta-maintenance path
       ({!Db.append_at}): views are rebuilt by the same folds that
       built them live, never by scanning chronicle history.  A torn
       final record is dropped; a checksum mismatch raises
       {!Journal.Journal_corrupt}.  Replay is idempotent (records
       whose effects are already in the checkpoint are skipped), so a
       crash between checkpoint-rename and journal-reset is
       harmless.}}

    Group commit: a {!Db.append_group} reaches the sink as one
    [Ev_group] and is framed as {e one} journal record — one storage
    append, one sync for the whole group, which is the entire
    throughput story of batched appends under [Sync_always].  On
    recovery a non-final group record is flattened into the replay
    window (it is fully committed — its record survived the next
    write); the journal's {e final} record, if a group, is re-applied
    atomically through {!Db.replay_group}, so a process that died
    mid-group recovers to pre-group or post-group state, never a
    partial group.  Report counts stay record-granular: a group record
    counts once, replayed if any of its batches applied.

    Faults: give {!attach}/{!recover} a {!Fault.t} to script crashes
    at the named points (["post-journal-write"] — hit after every
    write-ahead record, single appends and groups alike;
    ["post-group-write"] — hit after group records only, targeting the
    half-committed-group window; ["pre-checkpoint-rename"],
    ["post-checkpoint-rename"],
    ["view-fold"], ["heavy-promote"] / ["heavy-demote"] — hit inside a
    key-join fold right before a heavy key's partial-join state is
    built / torn down ({!Relational.Skew}); ["replay-dispatch"] — the
    last hit by {!recover} once per replay window, before its batches
    are dispatched) or torn writes.  After a simulated crash the
    instance's storage is frozen (a dead process writes nothing more);
    discard the database and {!recover} from the same storage.

    Not journaled (documented limits, mirrors {!Snapshot}): direct
    {!Versioned} relation updates are durable only from the next
    {!checkpoint}; chronicle subscribers and session-level objects
    must be re-attached after recovery. *)

exception Recovery_error of { record : int; reason : string }
(** A non-final journal record failed to replay — the journal is
    logically damaged beyond the tolerated torn tail. *)

exception Checkpoint_corrupt of { generation : int option; reason : string }
(** Strict recovery found checkpoints but could verify none of them —
    every generation (and the bare legacy file, if present) failed its
    CRC or would not load.  Carries the newest candidate's generation
    ([None] for the bare legacy file) and failure reason.  Salvage
    recovery never raises this: it degrades instead. *)

val journal_file : string  (** ["journal"] *)

val checkpoint_file : string  (** ["checkpoint"] *)

val checkpoint_tmp_file : string  (** ["checkpoint.tmp"] *)

val quarantine_name : string -> string
(** [quarantine_name n] = ["<n>.quarantine"] — the sidecar salvage
    recovery parks damaged bytes under. *)

type t

(** Self-reported condition of a durable instance.  [Degraded] — set
    when salvage recovery quarantined damage, or when storage syncs
    exhausted their retry budget — makes the database read-only
    (mutations raise {!Db.Read_only}; queries keep serving). *)
type health = Healthy | Degraded of string

val attach :
  ?fault:Fault.t ->
  ?sync:Journal.sync_policy ->
  ?keep_checkpoints:int ->
  ?segment_bytes:int ->
  storage:Storage.t ->
  Db.t ->
  t
(** Start journaling the database's transaction path into [storage].
    If no checkpoint exists yet, an initial checkpoint is written
    first (capturing any catalog state that predates attachment).  A
    stale ["checkpoint.tmp"] (crash between write and rename) is
    deleted.  Default [sync] is {!Journal.Sync_always}.

    [keep_checkpoints] (default [1]) is the number of checkpoint
    generations retained: [1] keeps the legacy layout — one bare
    ["checkpoint"] file holding the raw snapshot, byte-identical to
    the pre-generation format; [>= 2] writes CRC-headed generations
    ["checkpoint.<g>"] and prunes to the newest [K] at each
    checkpoint.  [segment_bytes] bounds journal segments (default:
    unbounded, single ["journal"] file as before); see {!Journal}.
    Raises [Invalid_argument] if [keep_checkpoints < 1]. *)

val db : t -> Db.t
val fault : t -> Fault.t
val sync_policy : t -> Journal.sync_policy

val journal_records : t -> int
val journal_bytes : t -> int

val health : t -> health
(** Transient sync failures are retried with bounded backoff (each
    retry bumps [Stats.Sync_retry]); when the budget is exhausted the
    instance flips to [Degraded] — and the database to read-only —
    instead of raising mid-append. *)

val keep_checkpoints : t -> int

val checkpoint : t -> unit
(** Snapshot → temp write → atomic rename → journal reset; bumps
    [Stats.Checkpoint].  Raises {!Snapshot.Snapshot_error} if the
    database cannot be snapshotted (e.g. pending future-effective
    relation updates); the journal is left untouched in that case. *)

val detach : t -> unit
(** Uninstall the sink and the fold probe; the database keeps running
    without durability. *)

(** How recovery treats damage beyond the tolerated torn tail.
    [Strict] (the default) raises — {!Journal.Journal_corrupt},
    {!Recovery_error} or {!Checkpoint_corrupt} — leaving storage
    untouched for forensics.  [Salvage] recovers the maximal
    consistent prefix: replay is sequential and per-record
    transactional, stops at the first damaged or unreplayable record,
    quarantines the damaged suffix (and every later segment) to
    [".quarantine"] sidecars — never silently dropping bytes — and
    opens the database read-only ([Degraded]); queries serve, appends
    raise {!Db.Read_only}. *)
type mode = Strict | Salvage

type report = {
  checkpoint_loaded : bool;
  generation : int option;
      (** the generation that served ([None]: bare legacy file, or no
          checkpoint at all) *)
  fallbacks : int;
      (** damaged checkpoint candidates skipped before one verified
          (each bumps [Stats.Checkpoint_fallback]) *)
  replayed : int;  (** records re-applied through the delta path *)
  skipped : int;  (** records already covered by the checkpoint *)
  dropped_torn : bool;  (** a torn final record was cut off *)
  dropped_failed : bool;
      (** a complete final record failed to replay and was dropped
          (its batch died with the crashed process) *)
  quarantined : int;
      (** quarantine sidecars written by salvage (each bumps
          [Stats.Salvage_quarantined]) *)
  degraded : bool;  (** the instance opened read-only *)
}

val recover :
  ?fault:Fault.t ->
  ?sync:Journal.sync_policy ->
  ?jobs:int ->
  ?heavy_threshold:int ->
  ?mode:mode ->
  ?keep_checkpoints:int ->
  ?segment_bytes:int ->
  storage:Storage.t ->
  unit ->
  t * report
(** Rebuild the database from checkpoint + journal and re-attach.
    Each replayed record bumps [Stats.Journal_replay].

    Checkpoint selection is {e layout-driven}, independent of the
    parameters: the newest generation that verifies (header CRC,
    payload CRC, snapshot loads) wins; each failure falls back one
    generation — replaying the correspondingly longer journal suffix,
    from the older generation's [first_segment] — then to the bare
    legacy file.  If every candidate fails, [Strict] raises
    {!Checkpoint_corrupt}; [Salvage] starts from an empty database,
    replays what it can and degrades.  [keep_checkpoints] and
    [segment_bytes] only shape {e future} checkpoints and rotation of
    the re-attached instance.  A stale ["checkpoint.tmp"] is deleted
    before anything else.

    Failures are typed, never a bare [Failure]:
    {!Journal.Journal_corrupt} for physical corruption (checksum
    mismatch) {e and} for a CRC-valid but structurally malformed
    record — unknown tag, missing or ill-shaped field, bad index kind
    — at any position, final included (the checksum proved the bytes
    are what was written; gibberish content is corruption, not a died
    batch); {!Recovery_error} if a well-formed non-final record fails
    to {e apply}.  A well-formed final record that fails to apply is
    the batch that died with the crashed process: it is dropped
    ([dropped_failed]) and its journal record erased.

    Replay is parallel: runs of consecutive append records are
    dispatched as windows through {!Db.replay_appends}, which records
    batches in journal order and schedules each view's ordered fold
    chain across the database's pool ([jobs], as {!Db.create}).
    Catalog and clock records, history-reading views
    ({!Ca.reads_history}) and the journal's final record are
    sequential barriers.  The recovered state is byte-identical at
    every degree — each view folds its batches wholly and in journal
    order; only the interleaving across views changes.

    [heavy_threshold] re-applies the heavy-light promotion bar (see
    {!Db.create}) to the rebuilt database.  Partition state is
    ephemeral — never checkpointed — so replay rebuilds it
    deterministically; the recovered {e contents} are identical at any
    threshold. *)

val has_state : Storage.t -> bool
(** True if the storage holds a checkpoint (bare or generation) or a
    journal (active or sealed segment) — i.e. {!recover} has something
    to work from. *)
