open Relational

type checkpoint_status = {
  ck_name : string;
  generation : int option;
  ck_bytes : int;
  ck_damage : string option;
}

type segment_status = {
  seg_name : string;
  sealed : bool;
  seg_bytes : int;
  records : int;
  torn_tail : bool;
  seg_damage : Journal.damage option;
}

type t = {
  checkpoints : checkpoint_status list;
  segments : segment_status list;
}

let verify_checkpoint storage (generation, ck_name) =
  match storage.Storage.read ck_name with
  | None ->
      { ck_name; generation; ck_bytes = 0; ck_damage = Some "vanished mid-scrub" }
  | Some contents ->
      let ck_bytes = String.length contents in
      let ck_damage =
        match generation with
        | Some _ -> (
            match Ckpt.decode contents with
            | Ok _ -> None
            | Error reason -> Some reason)
        | None -> (
            (* the bare legacy file carries no CRC; structural parse is
               the strongest read-only check available *)
            match Sexp.of_string contents with
            | _ -> None
            | exception Sexp.Parse_error { message; _ } ->
                Some ("snapshot does not parse: " ^ message))
      in
      { ck_name; generation; ck_bytes; ck_damage }

let verify_segment storage ~sealed seg_name =
  match storage.Storage.read seg_name with
  | None ->
      {
        seg_name;
        sealed;
        seg_bytes = 0;
        records = 0;
        torn_tail = false;
        seg_damage = None;
      }
  | Some contents ->
      let recs, ended = Journal.scan contents in
      let records = List.length recs in
      Stats.add Stats.Scrub_record records;
      let torn_tail, seg_damage =
        match ended with
        | Journal.Complete -> (false, None)
        | Journal.Torn _ when not sealed ->
            (* a died-mid-append tail on the active segment: expected,
               recovery cuts it off *)
            (true, None)
        | Journal.Torn off ->
            (* a clean rotation always seals complete segments *)
            ( false,
              Some
                {
                  Journal.index = records;
                  offset = off;
                  reason = "sealed segment torn";
                } )
        | Journal.Damaged d -> (false, Some d)
      in
      { seg_name; sealed; seg_bytes = String.length contents; records;
        torn_tail; seg_damage }

let run (storage : Storage.t) =
  let checkpoints =
    List.map
      (verify_checkpoint storage)
      ((if storage.Storage.exists Ckpt.file then [ (None, Ckpt.file) ] else [])
      @ List.map (fun (g, name) -> (Some g, name)) (Ckpt.generations storage))
  in
  let segments =
    List.map
      (fun (_, name) -> verify_segment storage ~sealed:true name)
      (Journal.segments storage "journal")
    @
    if storage.Storage.exists "journal" then
      [ verify_segment storage ~sealed:false "journal" ]
    else []
  in
  { checkpoints; segments }

let clean t =
  List.for_all (fun c -> c.ck_damage = None) t.checkpoints
  && List.for_all (fun s -> s.seg_damage = None) t.segments

let pp ppf t =
  List.iter
    (fun c ->
      match c.ck_damage with
      | None ->
          Format.fprintf ppf "%s: ok%s@." c.ck_name
            (match c.generation with
            | Some g -> Printf.sprintf " (generation %d)" g
            | None -> " (legacy)")
      | Some reason -> Format.fprintf ppf "%s: DAMAGED: %s@." c.ck_name reason)
    t.checkpoints;
  List.iter
    (fun s ->
      match s.seg_damage with
      | None ->
          Format.fprintf ppf "%s: %d record(s), ok%s@." s.seg_name s.records
            (if s.torn_tail then ", torn tail" else "")
      | Some { Journal.index; offset; reason } ->
          Format.fprintf ppf "%s: %d record(s), DAMAGED at record %d (offset %d): %s@."
            s.seg_name s.records index offset reason)
    t.segments;
  if t.checkpoints = [] && t.segments = [] then
    Format.fprintf ppf "no durable state@."
