type t = {
  read : string -> string option;
  write : string -> string -> unit;
  append : string -> string -> unit;
  truncate : string -> int -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  exists : string -> bool;
  size : string -> int option;
  sync : string -> unit;
  list : unit -> string list;
}

(* ---- in-memory backend ---- *)

let mem () =
  let files : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let get name = Hashtbl.find_opt files name in
  let force name =
    match get name with
    | Some b -> b
    | None ->
        let b = Buffer.create 256 in
        Hashtbl.replace files name b;
        b
  in
  {
    read = (fun name -> Option.map Buffer.contents (get name));
    write =
      (fun name s ->
        let b = force name in
        Buffer.clear b;
        Buffer.add_string b s);
    append = (fun name s -> Buffer.add_string (force name) s);
    truncate =
      (fun name n ->
        match get name with
        | None -> ()
        | Some b when Buffer.length b <= n -> ()
        | Some b ->
            let keep = Buffer.sub b 0 n in
            Buffer.clear b;
            Buffer.add_string b keep);
    rename =
      (fun src dst ->
        match get src with
        | None -> raise (Sys_error (src ^ ": no such storage name"))
        | Some b ->
            Hashtbl.remove files src;
            Hashtbl.replace files dst b);
    remove = (fun name -> Hashtbl.remove files name);
    exists = (fun name -> Hashtbl.mem files name);
    size = (fun name -> Option.map Buffer.length (get name));
    sync = (fun _ -> ());
    list =
      (fun () ->
        List.sort String.compare
          (Hashtbl.fold (fun name _ acc -> name :: acc) files []));
  }

(* ---- directory-of-files backend ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let disk ~dir =
  mkdir_p dir;
  let path name =
    if String.contains name '/' then
      invalid_arg (Printf.sprintf "Storage.disk: %S: names must be flat" name);
    Filename.concat dir name
  in
  let with_fd name flags perm f =
    let fd = Unix.openfile (path name) flags perm in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)
  in
  let write_all fd s =
    let n = String.length s in
    let b = Bytes.unsafe_of_string s in
    let rec go off =
      if off < n then go (off + Unix.write fd b off (n - off))
    in
    go 0
  in
  {
    read =
      (fun name ->
        let p = path name in
        if not (Sys.file_exists p) then None
        else begin
          let ic = open_in_bin p in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Some (really_input_string ic (in_channel_length ic)))
        end);
    write =
      (fun name s ->
        with_fd name Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 (fun fd ->
            write_all fd s));
    append =
      (fun name s ->
        with_fd name Unix.[ O_WRONLY; O_CREAT; O_APPEND ] 0o644 (fun fd ->
            write_all fd s));
    truncate =
      (fun name n ->
        let p = path name in
        if Sys.file_exists p && (Unix.stat p).Unix.st_size > n then
          Unix.truncate p n);
    rename = (fun src dst -> Unix.rename (path src) (path dst));
    remove =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    exists = (fun name -> Sys.file_exists (path name));
    size =
      (fun name ->
        let p = path name in
        if Sys.file_exists p then Some (Unix.stat p).Unix.st_size else None);
    sync =
      (fun name ->
        let p = path name in
        if Sys.file_exists p then
          with_fd name Unix.[ O_RDWR ] 0o644 Unix.fsync);
    list =
      (fun () ->
        let entries = Array.to_list (Sys.readdir dir) in
        List.sort String.compare
          (List.filter
             (fun name -> not (Sys.is_directory (Filename.concat dir name)))
             entries));
  }
