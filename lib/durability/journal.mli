open Relational

(** The write-ahead journal: a single append-only storage name holding
    a magic header followed by length-prefixed, CRC-32-checksummed
    records, one per transaction event, written {e before} the
    corresponding state mutation.

    On-disk format (all integers big-endian):
    {v
    "CHRONJNL1\n"                                   10-byte magic
    [u32 payload length][u32 CRC-32 of payload][payload]   repeated
    v}
    where each payload is the textual S-expression of one
    {!Db.txn_event}.

    A {e torn} final record (the process died mid-append) is expected
    and tolerated: readers report it and writers cut it off.  A record
    whose checksum does not match its bytes is {e corruption}, reported
    as {!Journal_corrupt} — recovery must not silently skip it, because
    every later record depends on the state it describes. *)

exception Journal_corrupt of { record : int; reason : string }
(** [record] is the zero-based index of the offending record. *)

type sync_policy =
  | Sync_never  (** leave flushing to the OS (fastest, weakest) *)
  | Sync_every of int  (** [fsync] once per [n] appended records *)
  | Sync_always  (** [fsync] after every record (group-commit of 1) *)

val sync_policy_of_string : string -> (sync_policy, string) result
val sync_policy_to_string : sync_policy -> string

(** {2 Reading} *)

val read : Storage.t -> string -> Sexp.t list * [ `Clean | `Torn ]
(** Decode every complete record.  An absent name reads as
    [([], `Clean)]; a torn tail (truncated header, truncated payload,
    or truncated magic) yields the complete prefix and [`Torn].
    Raises {!Journal_corrupt} on a checksum mismatch, unparseable
    payload, or foreign magic. *)

(** {2 Writing} *)

type t

val open_ : ?sync:sync_policy -> Storage.t -> string -> t
(** Open for appending, creating the name (with its magic header) if
    absent.  An existing journal is scanned to rebuild record
    boundaries; a torn tail is cut off.  Raises {!Journal_corrupt} as
    {!read} does.  Default policy: {!Sync_always}. *)

val append : t -> Sexp.t -> unit
(** Frame, checksum and append one record in a single storage append
    (so a torn write tears within this record), then sync per policy.
    Bumps [Stats.Journal_append] and adds the framed size to
    [Stats.Journal_bytes]. *)

val truncate_last : t -> unit
(** Erase the most recently appended record — the abort path: the
    write-ahead record of a batch whose maintenance failed must not be
    replayed.  Raises [Invalid_argument] if the journal is empty. *)

val reset : t -> unit
(** Truncate to the bare magic header — after a checkpoint has made
    every journaled record redundant. *)

val records : t -> int
(** Complete records currently in the journal. *)

val byte_size : t -> int
