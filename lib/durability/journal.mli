open Relational

(** The write-ahead journal: an append-only storage name holding a
    magic header followed by length-prefixed, CRC-32-checksummed
    records, one per transaction event, written {e before} the
    corresponding state mutation.

    On-disk format (all integers big-endian):
    {v
    "CHRONJNL1\n"                                   10-byte magic
    [u32 payload length][u32 CRC-32 of payload][payload]   repeated
    v}
    where each payload is the textual S-expression of one
    {!Db.txn_event}.

    A {e torn} final record (the process died mid-append) is expected
    and tolerated: readers report it and writers cut it off.  A record
    whose checksum does not match its bytes is {e corruption}, reported
    as {!Journal_corrupt} — recovery must not silently skip it, because
    every later record depends on the state it describes.

    {b Segments.}  A journal may be bounded ([segment_bytes]): when an
    append would push the active segment past the bound, the active
    name is {e sealed} — synced, renamed to [name.seq] — and a fresh
    active segment starts under the bare [name].  The logical record
    sequence is the concatenation of sealed segments in [seq] order
    followed by the active segment; corruption inside one segment is
    thereby isolated — every earlier segment still verifies on its own
    checksums.  An unbounded journal (the default) never rotates and
    its storage layout is byte-identical to the pre-segment format. *)

exception Journal_corrupt of { record : int; reason : string }
(** [record] is the zero-based index of the offending record. *)

type sync_policy =
  | Sync_never  (** leave flushing to the OS (fastest, weakest) *)
  | Sync_every of int  (** [fsync] once per [n] appended records *)
  | Sync_always  (** [fsync] after every record (group-commit of 1) *)

val sync_policy_of_string : string -> (sync_policy, string) result
val sync_policy_to_string : sync_policy -> string

(** {2 Reading} *)

type damage = { index : int; offset : int; reason : string }
(** Where a scan stopped believing the bytes: the zero-based index of
    the first bad record, its byte offset within the segment, and a
    human-readable reason. *)

type ended =
  | Complete  (** every byte accounted for *)
  | Torn of int
      (** truncated mid-record (or mid-magic); the offset is the end
          of the complete prefix *)
  | Damaged of damage
      (** checksum mismatch, unparseable checksummed payload, or
          foreign magic *)

val scan : string -> (Sexp.t * int) list * ended
(** Decode raw segment contents into the maximal well-formed prefix —
    each record paired with its byte offset — plus how the scan ended.
    Total: never raises, whatever the bytes.  This is the primitive
    under {!read}, {!open_}, scrub and salvage. *)

val read : Storage.t -> string -> Sexp.t list * [ `Clean | `Torn ]
(** Decode every complete record.  An absent name reads as
    [([], `Clean)]; a torn tail (truncated header, truncated payload,
    or truncated magic) yields the complete prefix and [`Torn].
    Raises {!Journal_corrupt} on a checksum mismatch, unparseable
    payload, or foreign magic. *)

(** {2 Segments} *)

val segment_name : string -> int -> string
(** [segment_name name seq] = ["<name>.<seq>"] — the storage name a
    sealed segment of journal [name] lives under. *)

val segments : Storage.t -> string -> (int * string) list
(** Sealed segments of a journal, [(seq, storage-name)] sorted by
    [seq], discovered purely by naming convention over
    [Storage.list] (no manifest to disagree with the files).  Names
    with non-numeric suffixes — [checkpoint.tmp], quarantine sidecars
    — never match. *)

(** {2 Writing} *)

type t

val open_ :
  ?sync:sync_policy -> ?segment_bytes:int -> ?seq:int -> Storage.t -> string -> t
(** Open for appending, creating the name (with its magic header) if
    absent.  An existing journal is scanned to rebuild record
    boundaries; a torn tail is cut off.  Raises {!Journal_corrupt} as
    {!read} does.  Default policy: {!Sync_always}.

    [segment_bytes] bounds the active segment: an append that would
    push past the bound first {!seal}s (default: unbounded — never
    rotates).  [seq] is the sequence number the active segment will
    seal to (default [0]); recovery passes one past the highest
    existing sealed segment. *)

val seal : t -> unit
(** Sync, rename the active segment to {!segment_name}[ name seq],
    and start a fresh active segment ([seq] increments).  No-op on an
    empty journal.  The rename is the commit point: recovery reads
    pre- and post-rename layouts identically. *)

val active_seq : t -> int
(** The sequence number the active segment will seal to. *)

val append : t -> Sexp.t -> unit
(** Frame, checksum and append one record in a single storage append
    (so a torn write tears within this record), then sync per policy;
    rotates first if the append would pass [segment_bytes].  Bumps
    [Stats.Journal_append] and adds the framed size to
    [Stats.Journal_bytes]. *)

val truncate_last : t -> unit
(** Erase the most recently appended record — the abort path: the
    write-ahead record of a batch whose maintenance failed must not be
    replayed.  Raises [Invalid_argument] if the journal is empty. *)

val reset : t -> unit
(** Truncate to the bare magic header — after a checkpoint has made
    every journaled record redundant. *)

val records : t -> int
(** Complete records currently in the journal. *)

val byte_size : t -> int
