open Relational
open Chronicle_core

(** Group commit: a staging queue in front of {!Db}'s transaction path.

    Many logical sessions hand their appends to {!stage}; a single
    committer ({!flush}) drains the queue into one {!Db.append_group} —
    under a durability layer, one journal record and one sync for the
    whole group — and resolves each staged append's {!ticket} in
    staging order, which {e is} watermark order (the group's sequence
    numbers are claimed consecutively in queue order).

    Flush triggers: the queue reaching the batch threshold
    ({!set_batch}), an explicit {!flush}, or {!await} on a still-pending
    ticket (the caller needs its answer — the queue has gone idle from
    its point of view).  Single-statement drivers flush before every
    read so staged appends are never observable out of order.

    Transparency: with a batch threshold of 1, or a group of one, a
    flush commits through the plain per-append path
    ({!Db.append_multi}) — journal layout, counters and observable
    behaviour are byte-identical to unstaged appends.  A database with
    batch hooks ({!Db.has_batch_hooks} — periodic/windowed families,
    detectors registered through {!Db.on_batch}) also falls back to
    per-append commits, because group commit defers hooks to the end of
    the group, and a hook that reads database state mid-group could
    observe the difference.  Group records are only ever written when
    they are provably transparent.

    Failure: {!stage} validates eagerly and raises on an append that
    could never commit ([Db.Unknown], [Invalid_argument], type errors)
    without enqueuing it.  If a flushed group aborts, {e every} ticket
    of that group resolves to [Error] (all-or-nothing, matching the
    journal's group atomicity) and the exception re-raises to the
    flusher. *)

type t

type ticket
(** The deferred-ack handle of one staged append. *)

val create : ?batch:int -> Db.t -> t
(** A stager over [db] with batch threshold [batch] (default 1 —
    every staged append commits immediately).  Raises
    [Invalid_argument] if [batch < 1]. *)

val db : t -> Db.t

val batch : t -> int
val set_batch : t -> int -> unit
(** Change the flush threshold; flushes immediately if the queue has
    already reached the new threshold.  Raises [Invalid_argument] if
    the threshold is below 1. *)

val pending : t -> int
(** Staged appends not yet committed. *)

val stage : t -> ?group:string -> (string * Tuple.t list) list -> ticket
(** Stage one append batch (the multi-chronicle shape of
    {!Db.append_multi}).  Validates immediately — an append that could
    never commit raises here and is never enqueued — then enqueues,
    bumps [Stats.Staged_appends], and flushes if the queue has reached
    the threshold. *)

val flush : t -> unit
(** Commit everything staged, in order, as one group per chronicle
    group (in practice: one group).  No-op on an empty queue. *)

val await : t -> ticket -> (Seqnum.t, exn) result
(** The ticket's outcome, flushing first if it is still queued:
    [Ok sn] — committed at sequence number [sn]; [Error e] — its group
    aborted with [e].  Tickets resolve in staging order, so awaiting
    the most recent ticket resolves all earlier ones. *)
