(** Pluggable byte storage for the durability layer.

    The journal and the checkpointer speak to stable storage only
    through this record of operations, so tests can substitute a
    deterministic in-memory backend (and the fault harness can wrap
    either backend to inject torn writes or crashes) while production
    uses a directory of real files with [fsync].

    Names are flat (no directory components); the disk backend maps
    them to files under its root. *)

type t = {
  read : string -> string option;
      (** Whole contents, [None] if the name does not exist. *)
  write : string -> string -> unit;
      (** Create or replace the whole contents. *)
  append : string -> string -> unit;
      (** Append bytes (creating the name if absent) — one call per
          journal record, so a torn write tears {e within} one record. *)
  truncate : string -> int -> unit;
      (** Cut the contents down to the first [n] bytes.  No-op if the
          contents are already at most [n] bytes. *)
  rename : string -> string -> unit;
      (** Atomic replace — the checkpoint commit point. *)
  remove : string -> unit;  (** Missing names are ignored. *)
  exists : string -> bool;
  size : string -> int option;
  sync : string -> unit;
      (** Flush the name to stable storage ([fsync]); no-op for
          memory. *)
  list : unit -> string list;
      (** Every existing name, sorted — how recovery and scrub discover
          checkpoint generations ([checkpoint.N]) and sealed journal
          segments ([journal.N]) without a separate manifest. *)
}

val mem : unit -> t
(** Fresh in-memory backend (a private namespace per call).  Survives
    for the lifetime of the value — the unit of "stable storage" in
    crash-simulation tests, where the database instance dies but the
    [mem] value lives on. *)

val disk : dir:string -> t
(** Files under [dir] (created, along with missing parents, on first
    use).  [sync] performs a real [Unix.fsync]; [rename] is atomic on
    POSIX filesystems. *)
