(* Checkpoint generation container: a CRC'd header in front of the
   snapshot payload, so recovery can verify a generation before
   trusting it and fall back to an older one.

   On-disk format (all integers big-endian):

     "CHRONCKP1\n"          10-byte magic
     u32 generation         monotone per checkpoint
     u32 first_segment      first journal segment NOT covered by this
                            generation (replay starts there)
     u32 payload length
     u32 CRC-32 of payload
     u32 CRC-32 of the 26 header bytes above
     payload                Snapshot.save document

   The bare legacy name ["checkpoint"] (keep_checkpoints = 1) carries
   no header — its bytes are exactly the snapshot document, identical
   to the pre-generation layout. *)

let file = "checkpoint"
let tmp_file = "checkpoint.tmp"
let magic = "CHRONCKP1\n"
let gen_name g = Printf.sprintf "%s.%d" file g

type header = { generation : int; first_segment : int }

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let get_be32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

(* magic + generation + first_segment + payload length + payload CRC *)
let crced_len = String.length magic + 16
let header_len = crced_len + 4

let encode ~generation ~first_segment payload =
  let crced =
    String.concat ""
      [
        magic;
        be32 generation;
        be32 first_segment;
        be32 (String.length payload);
        be32 (Crc32.string payload);
      ]
  in
  String.concat "" [ crced; be32 (Crc32.string crced); payload ]

let decode contents =
  let len = String.length contents in
  if len < header_len then Error "truncated header"
  else if String.sub contents 0 (String.length magic) <> magic then
    Error "bad magic"
  else if
    get_be32 contents crced_len <> Crc32.string (String.sub contents 0 crced_len)
  then Error "header checksum mismatch"
  else begin
    let generation = get_be32 contents (String.length magic) in
    let first_segment = get_be32 contents (String.length magic + 4) in
    let plen = get_be32 contents (String.length magic + 8) in
    let pcrc = get_be32 contents (String.length magic + 12) in
    if len - header_len <> plen then
      Error
        (Printf.sprintf "payload length mismatch (header says %d, found %d)"
           plen (len - header_len))
    else
      let payload = String.sub contents header_len plen in
      if Crc32.string payload <> pcrc then Error "payload checksum mismatch"
      else Ok ({ generation; first_segment }, payload)
  end

(* Existing generations, (generation, storage-name) ascending —
   discovered by naming convention, like journal segments. *)
let generations storage = Journal.segments storage file
