(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) — the
    per-record checksum of the write-ahead journal.  Pure OCaml,
    table-driven; values fit in 32 bits (OCaml's 63-bit [int] holds
    them exactly). *)

val string : string -> int
(** Checksum of a whole string. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring. *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental form: [update (string a) b ~pos:0 ~len:(length b)]
    equals [string (a ^ b)]. *)
