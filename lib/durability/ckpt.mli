(** Checkpoint generation container format.

    With [keep_checkpoints >= 2] the durability layer writes each
    checkpoint under ["checkpoint.<generation>"], prefixed by a CRC'd
    header that lets recovery {e verify} a generation before trusting
    it — and fall back, generation by generation, when verification
    fails.  The header also records [first_segment], the first journal
    segment the generation does {e not} cover, so an older generation
    knows to replay a correspondingly longer journal suffix.

    On-disk format (integers big-endian):
    {v
    "CHRONCKP1\n"                        10-byte magic
    [u32 generation][u32 first_segment]
    [u32 payload length][u32 payload CRC-32]
    [u32 CRC-32 of the 26 bytes above]
    payload                              the Snapshot.save document
    v}

    The bare legacy name ["checkpoint"] ([keep_checkpoints = 1])
    carries no header: its bytes are exactly the snapshot document,
    byte-identical to the pre-generation layout. *)

val file : string  (** ["checkpoint"] — the legacy bare name *)

val tmp_file : string  (** ["checkpoint.tmp"] *)

val gen_name : int -> string
(** [gen_name g] = ["checkpoint.<g>"]. *)

type header = { generation : int; first_segment : int }

val encode : generation:int -> first_segment:int -> string -> string
(** Wrap a snapshot document in a generation header. *)

val decode : string -> (header * string, string) result
(** Verify and strip the header; [Error reason] on a truncated or
    foreign header, a header-CRC mismatch, a payload-length mismatch,
    or a payload-CRC mismatch.  Never raises. *)

val generations : Storage.t -> (int * string) list
(** Existing generations, [(generation, storage-name)] ascending —
    discovered by naming convention over [Storage.list], exactly like
    journal segments (so ["checkpoint.tmp"] never matches). *)
