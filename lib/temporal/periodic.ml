open Relational
open Chronicle_core

type slot = { interval : Interval.t; view : View.t }

type t = {
  def : Sca.t;
  body_plan : Delta.plan; (* compiled once; shared by every interval view *)
  calendar : Calendar.t;
  group : Group.t;
  index : Index.kind option;
  expire_after : int option;
  active : (int, slot) Hashtbl.t;
  finalized : (int, slot) Hashtbl.t;
  mutable opened : int;
  mutable expired : int;
}

let create ?index ?expire_after ~def ~calendar () =
  let group = Ca.group_of (Sca.body def) in
  {
    def;
    body_plan = Delta.compile (Sca.body def);
    calendar;
    group;
    index;
    expire_after;
    active = Hashtbl.create 8;
    finalized = Hashtbl.create 32;
    opened = 0;
    expired = 0;
  }

let def t = t.def
let calendar t = t.calendar

let open_views t chronon =
  List.iter
    (fun i ->
      if not (Hashtbl.mem t.active i || Hashtbl.mem t.finalized i) then begin
        match Calendar.interval t.calendar i with
        | None -> ()
        | Some interval ->
            let view = View.create ?index:t.index t.def in
            Hashtbl.add t.active i { interval; view };
            t.opened <- t.opened + 1
      end)
    (Calendar.covering t.calendar chronon)

let close_views t chronon =
  let closing = ref [] in
  Hashtbl.iter
    (fun i slot -> if Interval.before slot.interval chronon then closing := (i, slot) :: !closing)
    t.active;
  List.iter
    (fun (i, slot) ->
      Hashtbl.remove t.active i;
      Hashtbl.add t.finalized i slot)
    !closing

let expire_views t chronon =
  match t.expire_after with
  | None -> ()
  | Some keep ->
      let victims = ref [] in
      Hashtbl.iter
        (fun i slot ->
          if slot.interval.Interval.stop + keep <= chronon then
            victims := i :: !victims)
        t.finalized;
      List.iter
        (fun i ->
          Hashtbl.remove t.finalized i;
          t.expired <- t.expired + 1)
        !victims

let note_append t ~sn ~batch =
  let chronon = Group.now t.group in
  close_views t chronon;
  expire_views t chronon;
  open_views t chronon;
  if Hashtbl.length t.active > 0 then begin
    let delta = Delta.run t.body_plan ~sn ~batch in
    if delta <> [] then
      Hashtbl.iter (fun _ slot -> View.apply_delta slot.view delta) t.active
  end

let attach db t = Db.on_batch db (fun ~sn ~batch -> note_append t ~sn ~batch)

let get t i =
  match Hashtbl.find_opt t.active i with
  | Some slot -> Some slot.view
  | None -> Option.map (fun s -> s.view) (Hashtbl.find_opt t.finalized i)

let sorted_bindings tbl =
  Hashtbl.fold (fun i slot acc -> (i, slot.view) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let active t = sorted_bindings t.active
let finalized t = sorted_bindings t.finalized

let current t =
  let chronon = Group.now t.group in
  match Calendar.first_covering t.calendar chronon with
  | None -> None
  | Some i -> (
      match Hashtbl.find_opt t.active i with
      | Some slot -> Some (i, slot.view)
      | None -> None)

let live_views t = Hashtbl.length t.active + Hashtbl.length t.finalized
let opened_total t = t.opened
let expired_total t = t.expired

let expire_after t = t.expire_after
let index_kind t = t.index

type slot_dump = {
  sd_index : int;
  sd_interval : Interval.t;
  sd_active : bool;
  sd_contents : View.dump;
}

type dump = {
  d_slots : slot_dump list;
  d_opened : int;
  d_expired : int;
}

let dump t =
  let slots_of active tbl =
    Hashtbl.fold
      (fun i slot acc ->
        {
          sd_index = i;
          sd_interval = slot.interval;
          sd_active = active;
          sd_contents = View.dump slot.view;
        }
        :: acc)
      tbl []
  in
  {
    d_slots =
      List.sort
        (fun a b -> Int.compare a.sd_index b.sd_index)
        (slots_of true t.active @ slots_of false t.finalized);
    d_opened = t.opened;
    d_expired = t.expired;
  }

let load t { d_slots; d_opened; d_expired } =
  if live_views t > 0 || t.opened > 0 then
    invalid_arg "Periodic.load: family already has state";
  List.iter
    (fun sd ->
      let view = View.create ?index:t.index t.def in
      View.load view sd.sd_contents;
      let slot = { interval = sd.sd_interval; view } in
      if sd.sd_active then Hashtbl.add t.active sd.sd_index slot
      else Hashtbl.add t.finalized sd.sd_index slot)
    d_slots;
  t.opened <- d_opened;
  t.expired <- d_expired
