open Relational
open Chronicle_core

exception Not_derivable of string

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

type t = {
  def : Sca.t;
  body_plan : Delta.plan; (* compiled once at derivation *)
  group : Group.t;
  buckets : int;
  bucket_width : int;
  start : Seqnum.chronon;
  key_of : Tuple.t -> Tuple.t;
  aggs : Aggregate.call list;
  arg_pos : int option array;
  windows : Window.t array Key_tbl.t;
}

let derive ?(bucket_width = 1) ~buckets def =
  let aggs =
    match Sca.summarize def with
    | Sca.Group_agg (_, al) -> al
    | Sca.Project_out _ ->
        raise
          (Not_derivable
             (Printf.sprintf
                "view %s: projection views carry no aggregate state to \
                 bucket; only grouped aggregation views derive a moving \
                 window"
                (Sca.name def)))
  in
  if buckets <= 0 || bucket_width <= 0 then
    invalid_arg "Windowed_view.derive: buckets and bucket_width must be positive";
  let body_schema = Ca.schema_of (Sca.body def) in
  let group = Ca.group_of (Sca.body def) in
  {
    def;
    body_plan = Delta.compile (Sca.body def);
    group;
    buckets;
    bucket_width;
    start = Group.now group;
    key_of = Tuple.projector body_schema (Sca.group_attrs def);
    aggs;
    arg_pos =
      Array.of_list
        (List.map
           (fun (c : Aggregate.call) -> Option.map (Schema.pos body_schema) c.arg)
           aggs);
    windows = Key_tbl.create 256;
  }

let def t = t.def
let buckets t = t.buckets
let bucket_width t = t.bucket_width

let fresh_windows t =
  Array.of_list
    (List.map
       (fun (c : Aggregate.call) ->
         Window.create ~func:c.func ~buckets:t.buckets
           ~bucket_width:t.bucket_width ~start:t.start)
       t.aggs)

let note_append t ~sn ~batch =
  let chronon = Group.now t.group in
  let delta = Delta.run t.body_plan ~sn ~batch in
  List.iter
    (fun tu ->
      let key = Array.to_list (t.key_of tu) in
      Stats.incr Stats.Group_lookup;
      let windows =
        match Key_tbl.find_opt t.windows key with
        | Some ws -> ws
        | None ->
            let ws = fresh_windows t in
            Key_tbl.add t.windows key ws;
            ws
      in
      List.iteri
        (fun i (c : Aggregate.call) ->
          let arg =
            match t.arg_pos.(i) with
            | None -> Value.Int 1
            | Some p -> Tuple.get tu p
          in
          ignore c;
          Window.add windows.(i) chronon arg)
        t.aggs)
    delta

let attach db t = Db.on_batch db (fun ~sn ~batch -> note_append t ~sn ~batch)

let row_of t key windows =
  let chronon = Group.now t.group in
  Tuple.make
    (key
    @ Array.to_list
        (Array.map
           (fun w ->
             (* idle groups must not report stale buckets *)
             Window.advance w chronon;
             Window.total w)
           windows))

let lookup t key =
  Option.map (row_of t key) (Key_tbl.find_opt t.windows key)

let to_list t =
  Key_tbl.fold (fun key ws acc -> row_of t key ws :: acc) t.windows []
  |> List.sort Tuple.compare

let group_count t = Key_tbl.length t.windows

let dump t =
  Key_tbl.fold
    (fun key windows acc ->
      (key, List.map Window.dump (Array.to_list windows)) :: acc)
    t.windows []
  |> List.sort (fun (a, _) (b, _) -> Value.compare_list a b)

let load t groups =
  if Key_tbl.length t.windows > 0 then
    invalid_arg "Windowed_view.load: view already has groups";
  List.iter
    (fun (key, dumps) ->
      if List.length dumps <> List.length t.aggs then
        invalid_arg "Windowed_view.load: window count mismatch";
      let windows = fresh_windows t in
      List.iteri (fun i d -> Window.load windows.(i) d) dumps;
      Key_tbl.add t.windows key windows)
    groups
