(* A fixed-size domain pool: long-lived workers, one work queue,
   chunked task submission, sequential fallback at jobs = 1.

   Memory-model notes.  Mutable batch bookkeeping ([next], [remaining],
   [slots]) is atomic; the queue head ([batch], [generation], [quit])
   is only read or written under [mutex].  Per-task result/exception
   slots are plain array cells, but each cell is written by exactly one
   domain (the one that claimed the task) and read by the submitter
   only after it has observed [remaining = 0] — an atomic read that
   happens-after every worker's decrement, which in turn happens-after
   that worker's slot write.  So the plain accesses are data-race-free
   and the submitter sees completed slots. *)

type t = { degree : int }

(* The maximum total domains we will ever hold live: the runtime caps
   domains (currently 128 recommended maximum); stay well below it and
   leave room for the main domain and for user code. *)
let max_workers = 64

let create ?(jobs = 1) () =
  if jobs < 0 then invalid_arg "Pool.create: negative jobs";
  let degree = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  if degree - 1 > max_workers then
    invalid_arg
      (Printf.sprintf "Pool.create: jobs %d exceeds the domain budget (%d)"
         degree (max_workers + 1));
  { degree }

let sequential = { degree = 1 }
let jobs t = t.degree

(* ---- the shared worker machinery ---- *)

type batch = {
  n : int;
  task : int -> unit; (* exception-safe wrapper around the user task *)
  next : int Atomic.t; (* work-queue cursor: next unclaimed index *)
  remaining : int Atomic.t; (* tasks not yet finished *)
  slots : int Atomic.t; (* worker participation budget (jobs - 1) *)
}

type shared = {
  mutex : Mutex.t;
  work : Condition.t; (* a new batch was posted (or quit) *)
  done_ : Condition.t; (* some batch ran out of tasks *)
  mutable batch : batch option; (* the batch currently open for claims *)
  mutable generation : int; (* bumped once per posted batch *)
  mutable quit : bool;
  mutable workers : unit Domain.t list;
}

let shared =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    batch = None;
    generation = 0;
    quit = false;
    workers = [];
  }

let drain s b =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then continue_ := false
    else begin
      b.task i;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        (* last task of the batch: wake the submitter *)
        Mutex.lock s.mutex;
        Condition.broadcast s.done_;
        Mutex.unlock s.mutex
      end
    end
  done

let rec worker_loop s last_gen =
  Mutex.lock s.mutex;
  while (not s.quit) && s.generation = last_gen do
    Condition.wait s.work s.mutex
  done;
  if s.quit then Mutex.unlock s.mutex
  else begin
    let gen = s.generation and b = s.batch in
    Mutex.unlock s.mutex;
    (match b with
    | Some b when Atomic.fetch_and_add b.slots (-1) > 0 -> drain s b
    | Some _ | None -> ());
    worker_loop s gen
  end

let worker_count () =
  Mutex.lock shared.mutex;
  let n = List.length shared.workers in
  Mutex.unlock shared.mutex;
  n

let shutdown () =
  Mutex.lock shared.mutex;
  let workers = shared.workers in
  shared.workers <- [];
  shared.quit <- true;
  Condition.broadcast shared.work;
  Mutex.unlock shared.mutex;
  List.iter Domain.join workers;
  Mutex.lock shared.mutex;
  shared.quit <- false; (* allow lazy respawn after an explicit shutdown *)
  Mutex.unlock shared.mutex

let exit_hook_installed = Atomic.make false

let ensure_workers wanted =
  let wanted = min wanted max_workers in
  if
    Atomic.compare_and_set exit_hook_installed false true
    (* join workers before the runtime tears down, so no domain is left
       blocked in [Condition.wait] at exit *)
  then at_exit shutdown;
  Mutex.lock shared.mutex;
  let missing = wanted - List.length shared.workers in
  if missing > 0 then begin
    let gen = shared.generation in
    for _ = 1 to missing do
      shared.workers <-
        Domain.spawn (fun () -> worker_loop shared gen) :: shared.workers
    done
  end;
  Mutex.unlock shared.mutex

(* ---- submission ---- *)

let run_inline fns exns =
  Array.iteri
    (fun i f -> match f () with () -> () | exception e -> exns.(i) <- Some e)
    fns

let run t fns =
  let n = Array.length fns in
  let exns = Array.make n None in
  if t.degree <= 1 || n <= 1 then run_inline fns exns
  else begin
    let helpers = min (t.degree - 1) (n - 1) in
    ensure_workers helpers;
    let b =
      {
        n;
        task =
          (fun i ->
            match fns.(i) () with () -> () | exception e -> exns.(i) <- Some e);
        next = Atomic.make 0;
        remaining = Atomic.make n;
        slots = Atomic.make helpers;
      }
    in
    Mutex.lock shared.mutex;
    shared.batch <- Some b;
    shared.generation <- shared.generation + 1;
    Condition.broadcast shared.work;
    Mutex.unlock shared.mutex;
    (* the submitter is a full participant *)
    drain shared b;
    Mutex.lock shared.mutex;
    while Atomic.get b.remaining > 0 do
      Condition.wait shared.done_ shared.mutex
    done;
    shared.batch <- None;
    Mutex.unlock shared.mutex
  end;
  exns

let first_exn exns =
  let n = Array.length exns in
  let rec go i =
    if i >= n then None
    else match exns.(i) with Some e -> Some e | None -> go (i + 1)
  in
  go 0

let run_exn t fns =
  match first_exn (run t fns) with Some e -> raise e | None -> ()

let map t fns =
  let n = Array.length fns in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_exn t
      (Array.mapi (fun i f () -> results.(i) <- Some (f ())) fns);
    Array.map
      (function
        | Some v -> v
        | None ->
            (* Unreachable, by two invariants of [run]: (1) the batch
               cursor hands every index in [0, n) to exactly one domain,
               and the submitter only proceeds once [remaining = 0], i.e.
               after every task body has returned or raised; (2) a task
               body here either stores [Some] or raises, and any raise is
               captured in [exns] — in which case [run_exn] re-raises
               before this [Array.map] runs.  So when control reaches
               this point every slot was written.  (Audited: there is no
               third path; [run_inline] executes all indices too.) *)
            assert false)
      results
  end

(* ---- dependency-aware submission: independent sequential chains ----

   The replay scheduler (and any caller with per-key ordering
   constraints) has tasks that form disjoint linear dependency chains:
   within a chain the order is mandatory (e.g. one view folding its
   batches in journal order), across chains there are no edges.  A
   chain is therefore scheduled as a single claimable unit — the
   general DAG case degenerates to the work queue we already have, with
   the same skew-tolerant cursor claiming across chains. *)

let run_chains t chains =
  run t
    (Array.map
       (fun chain () ->
         (* run the chain's links in order; the first raise aborts the
            rest of this chain (its successors depend on it) and is
            reported as the chain's outcome *)
         Array.iter (fun f -> f ()) chain)
       chains)

let chunk_ranges ~jobs n =
  if n <= 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    let base = n / jobs and extra = n mod jobs in
    Array.init jobs (fun i ->
        let len = base + if i < extra then 1 else 0 in
        let start = (i * base) + min i extra in
        (start, len))
  end
