(** A fixed-size domain pool for data-parallel sections of the engine.

    The maintenance theorem behind the transaction path makes every
    persistent view's Δ-fold independent of every other view's: the
    folds share only read-only inputs (the recorded batch, chronicle
    history, relation states) and the global {!Stats} counters (which
    are atomic).  This module supplies the execution substrate that
    exploits the independence: a set of long-lived worker domains fed
    through a single work queue, with chunked task submission and a
    graceful single-domain fallback.

    {2 Design}

    - A handle ({!t}) carries only the requested parallelism degree
      [jobs].  The worker domains themselves are process-global and
      shared by every handle: domains are a scarce resource (the OCaml
      runtime caps their number), so creating many databases must not
      create many domain sets.  Workers are spawned lazily on the first
      parallel submission and joined at process exit.
    - [jobs = 1] (the default everywhere) never touches a domain: tasks
      run inline on the caller, in submission order, so the sequential
      path is byte-identical to a build without this module.
    - A submission with [jobs = n] is served by the caller plus at most
      [n - 1] workers, even when more workers exist (other handles may
      have asked for more) — the degree is a property of the
      submission, not of the pool, so benchmarks sweeping domain counts
      measure what they claim to.
    - Tasks are claimed from a shared atomic cursor (work queue
      semantics): a cheap task finishing early frees its domain for the
      next chunk, so skew across chunks does not serialize the batch.

    {2 Discipline}

    [run]/[map] must be called from the domain that owns the handle
    (in this engine: the domain running the transaction path), and
    parallel sections must not nest.  Tasks must not raise across the
    pool — exceptions are caught per task and reported to the
    submitter, who decides (the transaction path rolls every view back
    and re-raises the first failure, preserving the txn protocol). *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] — a handle requesting [jobs]-way parallelism.
    [jobs = 1] (default) is the sequential fallback; [jobs = 0] means
    {!Domain.recommended_domain_count}[ ()].  Raises
    [Invalid_argument] on negative [jobs] or a request beyond the
    runtime's domain budget. *)

val sequential : t
(** [create ~jobs:1 ()]. *)

val jobs : t -> int
(** The effective parallelism degree (≥ 1). *)

val run : t -> (unit -> unit) array -> exn option array
(** Execute every task, the caller working alongside at most
    [jobs t - 1] worker domains; return per-task outcomes.  All tasks
    are executed even if some raise (a failed task cannot cancel its
    siblings mid-flight; the caller owns recovery).  With [jobs t = 1]
    or fewer than two tasks, runs inline sequentially in array order —
    no domain is ever involved. *)

val run_exn : t -> (unit -> unit) array -> unit
(** Like {!run}, but re-raises the lowest-indexed failure (a
    deterministic choice) after all tasks have finished. *)

val map : t -> (unit -> 'a) array -> 'a array
(** Parallel evaluation of thunks; re-raises the lowest-indexed
    failure if any thunk raises. *)

val run_chains : t -> (unit -> unit) array array -> exn option array
(** Dependency-aware submission for workloads whose tasks form
    {e disjoint linear chains}: element [i] is a sequence of links that
    must run in order (each link depends on its predecessor), while
    distinct chains are independent and are scheduled across domains
    exactly like {!run} tasks.  Returns one outcome per chain: the
    first link that raises aborts the remainder of {e that chain only}
    (its successors depend on it) and becomes the chain's exception;
    other chains still run to completion.  With [jobs t = 1] the chains
    run inline in array order — byte-identical to a sequential nested
    loop. *)

val chunk_ranges : jobs:int -> int -> (int * int) array
(** [chunk_ranges ~jobs n] partitions [0 .. n-1] into at most [jobs]
    contiguous [(start, length)] ranges of near-equal size (sizes
    differ by at most one, empty ranges omitted).  Contiguity is what
    makes parallel folds order-stable: each range preserves the
    sequential visit order within itself. *)

val worker_count : unit -> int
(** Live worker domains (excluding the caller); observability only. *)

val shutdown : unit -> unit
(** Join all worker domains.  Subsequent submissions respawn lazily.
    Called automatically at process exit. *)
