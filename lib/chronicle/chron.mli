open Relational

(** Chronicles: append-only sequences of transaction records.

    A chronicle is represented as a relation with the extra sequencing
    attribute {!Seqnum.attr} (always the first column).  The only
    permissible update is appending tuples whose sequence number exceeds
    every sequence number in the chronicle's {e group} (§2.1, §4).

    Chronicles can be very large and "the entire chronicle may not be
    stored in the system": each chronicle has a {e retention policy},
    and incremental view maintenance never reads retained history —
    every read of a stored chronicle tuple bumps
    [Stats.Chronicle_scan], so tests and benchmarks can assert the
    zero-access property. *)

type retention =
  | Discard  (** store nothing beyond the live append (the default) *)
  | Window of int  (** keep the last [n] tuples, for detail queries *)
  | Full  (** keep everything (recomputation baselines only) *)

type t

exception Not_retained of string
(** Raised when an operation needs history the retention policy threw
    away. *)

exception Restore_conflict of { chronicle : string; appended : int }
(** Raised by {!restore} when the chronicle already has appends — a
    snapshot can only be loaded into a fresh chronicle. *)

val create :
  group:Group.t -> ?retention:retention -> name:string -> Schema.t -> t
(** [create ~group ~name user_schema].  The user schema must not
    contain {!Seqnum.attr}; the chronicle's full schema is
    [sn :: user_schema]. *)

val name : t -> string
val group : t -> Group.t
val user_schema : t -> Schema.t
val schema : t -> Schema.t
(** Full schema including the sequencing attribute. *)

val retention : t -> retention

val append : t -> Tuple.t list -> Seqnum.t
(** Append a batch of user tuples (without [sn]); a fresh sequence
    number is drawn from the group and assigned to the whole batch.
    Raises [Invalid_argument] if a tuple does not match the user
    schema.  Subscribers run after the batch is recorded. *)

val append_sparse : t -> Seqnum.t -> Tuple.t list -> unit
(** Like {!append} with a caller-chosen sequence number (sequence
    numbers need not be dense); raises [Group.Stale_sequence_number]
    if it does not exceed the group watermark. *)

val append_multi : Group.t -> (t * Tuple.t list) list -> Seqnum.t
(** Simultaneous insertion into several chronicles of one group under a
    single fresh sequence number (§4 allows distinct tuples with the
    same sequence number).  All subscribers of all involved chronicles
    run after the whole batch is recorded. *)

val on_append : t -> (Seqnum.t -> Tuple.t list -> unit) -> unit
(** Register a maintenance hook; it receives the batch's sequence number
    and the {e tagged} tuples (with [sn] first). *)

val total_appended : t -> int
(** Number of tuples ever appended (the "size of the chronicle"). *)

val last_sn : t -> Seqnum.t option
(** Sequence number of the most recent batch appended here. *)

(** {2 Retained history}

    For detail queries over the latest window, and for recomputation
    baselines.  Every tuple delivered bumps [Stats.Chronicle_scan]. *)

val stored_count : t -> int
val scan : (Tuple.t -> unit) -> t -> unit
(** Oldest-to-newest over retained tuples. *)

val stored : t -> Tuple.t list

val restore : t -> total:int -> last_sn:Seqnum.t option -> retained:Tuple.t list -> unit
(** Snapshot support: reinstate the append counters and the retained
    window (tagged tuples, oldest first) of a freshly created
    chronicle.  Does not touch the group watermark and notifies no
    subscribers.  Raises {!Restore_conflict} if the chronicle already
    has appends. *)

(** {2 Retraction (ℤ-weighted deltas)}

    Retraction removes stored {e occurrences} from retained history —
    it is a later event, not an un-happening of the append, so
    {!total_appended} and {!last_sn} never move.  All three operations
    require [Full] retention and raise {!Not_retained} otherwise: a
    ring may already have evicted the occurrence and [Discard] never
    had it. *)

val at_sn : t -> Seqnum.t -> Tuple.t list
(** Stored tagged tuples carrying the given sequence number, oldest
    first — the at-[sn] slice that weighted delta propagation diffs
    against.  Does not bump [Stats.Chronicle_scan]: this is the
    retraction write path, not a history read by maintenance. *)

val remove_stored : t -> Seqnum.t -> Tuple.t list -> unit
(** Remove one stored occurrence of each given {e user} tuple (without
    [sn]) recorded under the sequence number.  Raises
    [Invalid_argument] if any tuple has no matching stored occurrence
    left, leaving the store untouched in that case. *)

val reset_store : t -> Tuple.t list -> unit
(** Replace the retained store with the given tagged tuples (oldest
    first) — [Db.retract]'s all-or-nothing undo, paired with a
    pre-mutation {!stored} snapshot.  Counters are not touched. *)

(** {2 Transactional recording}

    {!Db}'s atomic append path records batches without notifying, folds
    the affected views, and only then notifies subscribers; if anything
    raises mid-batch it rolls every chronicle of the batch back to its
    mark.  [record]/[notify] are the two halves of {!append}; the
    caller owns sequence-number discipline (the [sn] must have been
    claimed from the chronicle's group). *)

val check_batch : t -> Tuple.t list -> unit
(** Type-check a batch of user tuples against the user schema, raising
    [Invalid_argument] on the first mismatch — without recording
    anything.  The write-ahead path validates {e before} journaling so a
    batch that can never be recorded is never journaled. *)

val record : t -> Seqnum.t -> Tuple.t list -> Tuple.t list
(** Type-check, tag, store and count a batch under a claimed sequence
    number; returns the tagged tuples.  Notifies no subscribers. *)

val notify : t -> Seqnum.t -> Tuple.t list -> unit
(** Deliver a recorded batch (tagged tuples) to the subscribers. *)

type mark
(** Pre-batch position of the append counters and the retained store. *)

val mark : t -> mark
(** Take a mark and start collecting ring-overwrite undo state.  Every
    [mark] must be paired with exactly one {!commit} or {!rollback}. *)

val commit : t -> unit
(** Drop the undo state collected since {!mark} (the batch stays). *)

val rollback : t -> mark -> unit
(** Restore counters, [last_sn] and the retained window to the mark —
    erasing every tuple recorded since, including ring overwrites. *)

val tag : Seqnum.t -> Tuple.t -> Tuple.t
(** [tag sn user_tuple] prepends the sequence number. *)

val sn_of : Tuple.t -> Seqnum.t
(** Sequence number of a tagged tuple. *)

val pp : Format.formatter -> t -> unit
