open Relational

type tier =
  | Tier_ca1
  | Tier_ca_key
  | Tier_ca
  | Tier_not_ca of string

type im_class = IM_constant | IM_log_r | IM_poly_r | IM_poly_c

type report = {
  tier : tier;
  body_im : im_class;
  view_im : im_class;
  unions : int;
  joins : int;
  time_formula : string;
  space_formula : string;
  notes : string list;
}

let tier_name = function
  | Tier_ca1 -> "CA_1"
  | Tier_ca_key -> "CA_join"
  | Tier_ca -> "CA"
  | Tier_not_ca _ -> "not CA"

let im_class_name = function
  | IM_constant -> "IM-Constant"
  | IM_log_r -> "IM-log(R)"
  | IM_poly_r -> "IM-R^k"
  | IM_poly_c -> "IM-C^k"

let im_rank = function
  | IM_constant -> 0
  | IM_log_r -> 1
  | IM_poly_r -> 2
  | IM_poly_c -> 3

let im_subseteq a b = im_rank a <= im_rank b

let im_max a b = if im_rank a >= im_rank b then a else b

let covers_key rel pairs =
  match Relation.key rel with
  | None -> false
  | Some key -> List.for_all (fun k -> List.mem k (List.map snd pairs)) key

(* Walk the body, accumulating the tier and notes. *)
let body_tier expr =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  let join_tier a b =
    match a, b with
    | Tier_not_ca r, _ | _, Tier_not_ca r -> Tier_not_ca r
    | Tier_ca, _ | _, Tier_ca -> Tier_ca
    | Tier_ca_key, _ | _, Tier_ca_key -> Tier_ca_key
    | Tier_ca1, Tier_ca1 -> Tier_ca1
  in
  let rec go = function
    | Ca.Chronicle _ -> Tier_ca1
    | Ca.Select (p, e) ->
        if not (Predicate.is_ca_form p) then
          note
            "selection %a is not a disjunction of comparisons; Definition \
             4.1 would reject it (cost is unaffected)"
            Predicate.pp p;
        go e
    | Ca.Project (attrs, e) ->
        if not (List.mem Seqnum.attr attrs) then
          Tier_not_ca
            "projection drops the sequencing attribute (Theorem 4.3: not a \
             chronicle)"
        else go e
    | Ca.GroupBySeq (gl, _, e) ->
        if not (List.mem Seqnum.attr gl) then
          Tier_not_ca
            "grouping list omits the sequencing attribute (Theorem 4.3: \
             not a chronicle)"
        else go e
    | Ca.SeqJoin (l, r) | Ca.Union (l, r) | Ca.Diff (l, r) ->
        join_tier (go l) (go r)
    | Ca.ProductRel (e, rel) ->
        note "product with relation %s: fanout |R| per delta tuple"
          (Relation.name rel);
        join_tier Tier_ca (go e)
    | Ca.KeyJoinRel (e, rel, pairs) ->
        if covers_key rel pairs then join_tier Tier_ca_key (go e)
        else begin
          note
            "join with %s does not cover its key: constant-fanout \
             guarantee of Definition 4.2 fails, demoted to full CA"
            (Relation.name rel);
          join_tier Tier_ca (go e)
        end
    | Ca.CrossChron (_, _) ->
        Tier_not_ca
          "cross product between chronicles (Theorem 4.3: maintenance \
           depends on |C|)"
    | Ca.ThetaJoinChron (_, _, _) ->
        Tier_not_ca
          "non-equijoin between chronicles (Theorem 4.3: maintenance \
           depends on |C|)"
  in
  let tier = go expr in
  (tier, List.rev !notes)

let body_im_of_tier = function
  | Tier_ca1 -> IM_constant
  | Tier_ca_key -> IM_log_r
  | Tier_ca -> IM_poly_r
  | Tier_not_ca _ -> IM_poly_c

(* Theorem 4.2's formulas, instantiated with the expression's u and j. *)
let formulas tier u j =
  match tier with
  | Tier_ca1 -> (Printf.sprintf "O(%d^%d)" (max u 1) j, Printf.sprintf "O(%d^%d)" (max u 1) j)
  | Tier_ca_key ->
      ( Printf.sprintf "O(%d^%d log|R|)" (max u 1) j,
        Printf.sprintf "O(%d^%d)" (max u 1) j )
  | Tier_ca ->
      ( Printf.sprintf "O((%d|R|)^%d log|R|)" (max u 1) j,
        Printf.sprintf "O((%d|R|)^%d)" (max u 1) j )
  | Tier_not_ca _ -> ("O(poly |C|)", "O(poly |C|)")

let ca expr =
  let tier, notes = body_tier expr in
  let u = Ca.unions expr and j = Ca.joins expr in
  let body_im = body_im_of_tier tier in
  let time_formula, space_formula = formulas tier u j in
  {
    tier;
    body_im;
    view_im = body_im;
    unions = u;
    joins = j;
    time_formula;
    space_formula;
    notes;
  }

let sca def =
  let r = ca (Sca.body def) in
  (* Theorem 4.4: the summarization step adds O(t log |V|) group
     localization, which the incremental classes count as index lookups;
     Theorem 4.5 assigns SCA_1 -> IM-Constant (hash localization),
     SCA_join -> IM-log(R), SCA -> IM-R^k. *)
  let view_im =
    match r.tier with
    | Tier_ca1 -> IM_constant
    | Tier_ca_key -> IM_log_r
    | Tier_ca -> IM_poly_r
    | Tier_not_ca _ -> IM_poly_c
  in
  let notes =
    match Sca.summarize def with
    | Sca.Project_out _ -> r.notes
    | Sca.Group_agg (_, al) ->
        let non_incremental =
          List.filter_map
            (fun (c : Aggregate.call) ->
              match c.func with
              | Aggregate.Count | Aggregate.Sum | Aggregate.Min | Aggregate.Max
                ->
                  None
              | Aggregate.Avg ->
                  Some
                    (Printf.sprintf
                       "%s decomposes into (SUM, COUNT); maintained via its \
                        decomposition"
                       c.alias)
              | Aggregate.Var | Aggregate.Stddev ->
                  Some
                    (Printf.sprintf
                       "%s decomposes into (COUNT, SUM, SUM-of-squares); \
                        maintained via its decomposition"
                       c.alias))
            al
        in
        r.notes @ non_incremental
  in
  { r with view_im = im_max r.body_im view_im; notes }

(* ---- maintenance class under retraction (ℤ-weighted deltas) ----

   Retraction keeps the append-path class for purely linear bodies
   (σ/Π/×R/⋈_key thread weight −1 through the same compiled
   artifacts), but three shapes cost more:

   - MIN/MAX aggregates lose O(1) invertibility: a group that loses
     its extremum re-probes retained history, so the view is at best
     IM-R^k under retraction.
   - Non-linear operators (∪, −, ⋈_SN, GROUPBY with SN) diff their
     at-sn slices — still bounded by the slice, but it requires Full
     retention to reconstruct the before-image.
   - History-reading bodies (CrossChron/ThetaJoinChron) are
     rematerialized outright: IM-C^k regardless of append class. *)

let rec body_reads_history = function
  | Ca.CrossChron _ | Ca.ThetaJoinChron _ -> true
  | Ca.Chronicle _ -> false
  | Ca.Select (_, e)
  | Ca.Project (_, e)
  | Ca.GroupBySeq (_, _, e)
  | Ca.ProductRel (e, _)
  | Ca.KeyJoinRel (e, _, _) -> body_reads_history e
  | Ca.SeqJoin (l, r) | Ca.Union (l, r) | Ca.Diff (l, r) ->
      body_reads_history l || body_reads_history r

let rec body_nonlinear = function
  | Ca.SeqJoin _ | Ca.Union _ | Ca.Diff _ | Ca.GroupBySeq _ -> true
  | Ca.Chronicle _ | Ca.CrossChron _ | Ca.ThetaJoinChron _ -> false
  | Ca.Select (_, e)
  | Ca.Project (_, e)
  | Ca.ProductRel (e, _)
  | Ca.KeyJoinRel (e, _, _) -> body_nonlinear e

let retract_class def =
  let r = sca def in
  let body = Sca.body def in
  if body_reads_history body then
    ( IM_poly_c,
      [
        "body reads retained history (cross/theta chronicle join): \
         retraction rematerializes the view from the surviving history";
      ] )
  else begin
    let notes = ref [] in
    let cls = ref r.view_im in
    if body_nonlinear body then begin
      notes :=
        "non-linear body operator (∪, −, ⋈_SN or GROUPBY): retraction \
         diffs the at-sn slices of the base chronicles, which requires \
         Full retention" :: !notes;
      cls := im_max !cls IM_poly_r
    end;
    (match Sca.summarize def with
    | Sca.Project_out _ -> ()
    | Sca.Group_agg (_, al) ->
        let extremal =
          List.filter
            (fun (c : Aggregate.call) ->
              match c.func with
              | Aggregate.Min | Aggregate.Max -> true
              | Aggregate.Count | Aggregate.Sum | Aggregate.Avg
              | Aggregate.Var | Aggregate.Stddev -> false)
            al
        in
        if extremal <> [] then begin
          cls := im_max !cls IM_poly_r;
          notes :=
            Printf.sprintf
              "%s: a group losing its extremum re-probes retained history \
               (not O(1)-invertible); COUNT/SUM-class aggregates invert \
               exactly"
              (String.concat ", "
                 (List.map (fun (c : Aggregate.call) -> c.alias) extremal))
            :: !notes
        end);
    if !notes = [] then
      notes :=
        [ "linear body with invertible aggregates: retraction preserves \
           the append-path maintenance class" ];
    (!cls, List.rev !notes)
  end

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>tier: %s@,body Δ class: %s@,view class: %s@,u=%d j=%d@,time: \
     %s@,space: %s"
    (tier_name r.tier) (im_class_name r.body_im) (im_class_name r.view_im)
    r.unions r.joins r.time_formula r.space_formula;
  (match r.tier with
  | Tier_not_ca reason -> Format.fprintf ppf "@,reason: %s" reason
  | Tier_ca1 | Tier_ca_key | Tier_ca -> ());
  List.iter (fun n -> Format.fprintf ppf "@,note: %s" n) r.notes;
  Format.fprintf ppf "@]"
