open Relational

exception Snapshot_error of string

let error fmt = Format.kasprintf (fun s -> raise (Snapshot_error s)) fmt

(* ---- schemas ---- *)

let sexp_of_ty ty = Sexp.Atom (Value.ty_name ty)

let ty_of_sexp s =
  match Sexp.to_atom s with
  | "bool" -> Value.TBool
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "string" -> Value.TStr
  | other -> error "unknown type %s" other

let sexp_of_schema schema =
  Sexp.List
    (List.map
       (fun (a : Schema.attr) -> Sexp.List [ Sexp.Atom a.name; sexp_of_ty a.ty ])
       (Array.to_list (Schema.attrs schema)))

let schema_of_sexp s =
  Schema.make
    (List.map
       (function
         | Sexp.List [ Sexp.Atom name; ty ] -> (name, ty_of_sexp ty)
         | s -> error "bad schema entry %s" (Sexp.to_string s))
       (Sexp.to_list s))

let sexp_of_tuple tu = Sexp.List (List.map Value.to_sexp (Array.to_list tu))
let tuple_of_sexp s = Tuple.make (List.map Value.of_sexp (Sexp.to_list s))

(* ---- predicates ---- *)

let sexp_of_operand = function
  | Predicate.Attr a -> Sexp.List [ Sexp.Atom "attr"; Sexp.Atom a ]
  | Predicate.Const v -> Value.to_sexp v

let operand_of_sexp = function
  | Sexp.List [ Sexp.Atom "attr"; Sexp.Atom a ] -> Predicate.Attr a
  | s -> Predicate.Const (Value.of_sexp s)

let rec sexp_of_predicate = function
  | Predicate.True -> Sexp.Atom "true"
  | Predicate.False -> Sexp.Atom "false"
  | Predicate.Cmp (a, op, b) ->
      Sexp.List
        [ Sexp.Atom (Predicate.op_name op); sexp_of_operand a; sexp_of_operand b ]
  | Predicate.And (p, q) ->
      Sexp.List [ Sexp.Atom "and"; sexp_of_predicate p; sexp_of_predicate q ]
  | Predicate.Or (p, q) ->
      Sexp.List [ Sexp.Atom "or"; sexp_of_predicate p; sexp_of_predicate q ]
  | Predicate.Not p -> Sexp.List [ Sexp.Atom "not"; sexp_of_predicate p ]

let op_of_name = function
  | "=" -> Predicate.Eq
  | "<>" -> Predicate.Ne
  | "<=" -> Predicate.Le
  | "<" -> Predicate.Lt
  | ">" -> Predicate.Gt
  | ">=" -> Predicate.Ge
  | other -> error "unknown comparison %s" other

let rec predicate_of_sexp = function
  | Sexp.Atom "true" -> Predicate.True
  | Sexp.Atom "false" -> Predicate.False
  | Sexp.List [ Sexp.Atom "and"; p; q ] ->
      Predicate.And (predicate_of_sexp p, predicate_of_sexp q)
  | Sexp.List [ Sexp.Atom "or"; p; q ] ->
      Predicate.Or (predicate_of_sexp p, predicate_of_sexp q)
  | Sexp.List [ Sexp.Atom "not"; p ] -> Predicate.Not (predicate_of_sexp p)
  | Sexp.List [ Sexp.Atom op; a; b ] ->
      Predicate.Cmp (operand_of_sexp a, op_of_name op, operand_of_sexp b)
  | s -> error "bad predicate %s" (Sexp.to_string s)

(* ---- aggregation calls ---- *)

let sexp_of_call (c : Aggregate.call) =
  Sexp.List
    [
      Sexp.Atom (Aggregate.func_name c.func);
      (match c.arg with None -> Sexp.Atom "*" | Some a -> Sexp.Atom a);
      Sexp.Atom c.alias;
    ]

let call_of_sexp = function
  | Sexp.List [ Sexp.Atom fname; arg; Sexp.Atom alias ] ->
      let func =
        match Aggregate.func_of_name fname with
        | Some f -> f
        | None -> error "unknown aggregate %s" fname
      in
      let arg = match Sexp.to_atom arg with "*" -> None | a -> Some a in
      { Aggregate.func; arg; alias }
  | s -> error "bad aggregate call %s" (Sexp.to_string s)

let sexp_of_attrs attrs = Sexp.List (List.map (fun a -> Sexp.Atom a) attrs)
let attrs_of_sexp s = List.map Sexp.to_atom (Sexp.to_list s)

(* ---- chronicle algebra ---- *)

let rec sexp_of_ca = function
  | Ca.Chronicle c -> Sexp.List [ Sexp.Atom "chronicle"; Sexp.Atom (Chron.name c) ]
  | Ca.Select (p, e) ->
      Sexp.List [ Sexp.Atom "select"; sexp_of_predicate p; sexp_of_ca e ]
  | Ca.Project (attrs, e) ->
      Sexp.List [ Sexp.Atom "project"; sexp_of_attrs attrs; sexp_of_ca e ]
  | Ca.SeqJoin (l, r) ->
      Sexp.List [ Sexp.Atom "seqjoin"; sexp_of_ca l; sexp_of_ca r ]
  | Ca.Union (l, r) -> Sexp.List [ Sexp.Atom "union"; sexp_of_ca l; sexp_of_ca r ]
  | Ca.Diff (l, r) -> Sexp.List [ Sexp.Atom "diff"; sexp_of_ca l; sexp_of_ca r ]
  | Ca.GroupBySeq (gl, al, e) ->
      Sexp.List
        [
          Sexp.Atom "groupby";
          sexp_of_attrs gl;
          Sexp.List (List.map sexp_of_call al);
          sexp_of_ca e;
        ]
  | Ca.ProductRel (e, r) ->
      Sexp.List [ Sexp.Atom "product"; sexp_of_ca e; Sexp.Atom (Relation.name r) ]
  | Ca.KeyJoinRel (e, r, pairs) ->
      Sexp.List
        [
          Sexp.Atom "keyjoin";
          sexp_of_ca e;
          Sexp.Atom (Relation.name r);
          Sexp.List
            (List.map (fun (a, b) -> Sexp.List [ Sexp.Atom a; Sexp.Atom b ]) pairs);
        ]
  | Ca.CrossChron (l, r) ->
      Sexp.List [ Sexp.Atom "crosschron"; sexp_of_ca l; sexp_of_ca r ]
  | Ca.ThetaJoinChron (p, l, r) ->
      Sexp.List
        [ Sexp.Atom "thetajoin"; sexp_of_predicate p; sexp_of_ca l; sexp_of_ca r ]

let rec ca_of_sexp ~chronicle ~relation sexp =
  let recurse = ca_of_sexp ~chronicle ~relation in
  match sexp with
  | Sexp.List [ Sexp.Atom "chronicle"; Sexp.Atom name ] ->
      Ca.Chronicle (chronicle name)
  | Sexp.List [ Sexp.Atom "select"; p; e ] ->
      Ca.Select (predicate_of_sexp p, recurse e)
  | Sexp.List [ Sexp.Atom "project"; attrs; e ] ->
      Ca.Project (attrs_of_sexp attrs, recurse e)
  | Sexp.List [ Sexp.Atom "seqjoin"; l; r ] -> Ca.SeqJoin (recurse l, recurse r)
  | Sexp.List [ Sexp.Atom "union"; l; r ] -> Ca.Union (recurse l, recurse r)
  | Sexp.List [ Sexp.Atom "diff"; l; r ] -> Ca.Diff (recurse l, recurse r)
  | Sexp.List [ Sexp.Atom "groupby"; gl; Sexp.List al; e ] ->
      Ca.GroupBySeq (attrs_of_sexp gl, List.map call_of_sexp al, recurse e)
  | Sexp.List [ Sexp.Atom "product"; e; Sexp.Atom r ] ->
      Ca.ProductRel (recurse e, relation r)
  | Sexp.List [ Sexp.Atom "keyjoin"; e; Sexp.Atom r; Sexp.List pairs ] ->
      let pairs =
        List.map
          (function
            | Sexp.List [ Sexp.Atom a; Sexp.Atom b ] -> (a, b)
            | s -> error "bad join pair %s" (Sexp.to_string s))
          pairs
      in
      Ca.KeyJoinRel (recurse e, relation r, pairs)
  | Sexp.List [ Sexp.Atom "crosschron"; l; r ] ->
      Ca.CrossChron (recurse l, recurse r)
  | Sexp.List [ Sexp.Atom "thetajoin"; p; l; r ] ->
      Ca.ThetaJoinChron (predicate_of_sexp p, recurse l, recurse r)
  | s -> error "bad chronicle-algebra expression %s" (Sexp.to_string s)

(* ---- views ---- *)

let sexp_of_summarize = function
  | Sca.Project_out attrs -> Sexp.List [ Sexp.Atom "project_out"; sexp_of_attrs attrs ]
  | Sca.Group_agg (gl, al) ->
      Sexp.List
        [ Sexp.Atom "group_agg"; sexp_of_attrs gl; Sexp.List (List.map sexp_of_call al) ]

let summarize_of_sexp = function
  | Sexp.List [ Sexp.Atom "project_out"; attrs ] -> Sca.Project_out (attrs_of_sexp attrs)
  | Sexp.List [ Sexp.Atom "group_agg"; gl; Sexp.List al ] ->
      Sca.Group_agg (attrs_of_sexp gl, List.map call_of_sexp al)
  | s -> error "bad summarization %s" (Sexp.to_string s)

let sexp_of_key key = Sexp.List (List.map Value.to_sexp key)
let key_of_sexp s = List.map Value.of_sexp (Sexp.to_list s)

(* View contents are written with their hidden ℤ-multiplicities
   ("rows-w"/"groups-w" tags): a view restored from a checkpoint must
   keep maintaining correctly under retraction, so crash-equivalence
   holds for weighted workloads too.  Pre-weighted snapshots ("rows"/
   "groups") still parse, defaulting every multiplicity to 1. *)
let sexp_of_view_contents view =
  match View.dump_w view with
  | View.Rows_dump_w keys ->
      Sexp.List
        [
          Sexp.Atom "rows-w";
          Sexp.List
            (List.map
               (fun (key, mult) -> Sexp.List [ sexp_of_key key; Sexp.int mult ])
               keys);
        ]
  | View.Groups_dump_w groups ->
      Sexp.List
        [
          Sexp.Atom "groups-w";
          Sexp.List
            (List.map
               (fun (key, mult, states) ->
                 Sexp.List
                   [
                     sexp_of_key key;
                     Sexp.int mult;
                     Sexp.List (List.map Aggregate.sexp_of_state states);
                   ])
               groups);
        ]

let view_contents_of_sexp = function
  | Sexp.List [ Sexp.Atom "rows"; Sexp.List keys ] ->
      View.Rows_dump_w (List.map (fun key -> (key_of_sexp key, 1)) keys)
  | Sexp.List [ Sexp.Atom "rows-w"; Sexp.List keys ] ->
      View.Rows_dump_w
        (List.map
           (function
             | Sexp.List [ key; mult ] -> (key_of_sexp key, Sexp.to_int mult)
             | s -> error "bad view row %s" (Sexp.to_string s))
           keys)
  | Sexp.List [ Sexp.Atom "groups"; Sexp.List groups ] ->
      View.Groups_dump_w
        (List.map
           (function
             | Sexp.List [ key; Sexp.List states ] ->
                 (key_of_sexp key, 1, List.map Aggregate.state_of_sexp states)
             | s -> error "bad view group %s" (Sexp.to_string s))
           groups)
  | Sexp.List [ Sexp.Atom "groups-w"; Sexp.List groups ] ->
      View.Groups_dump_w
        (List.map
           (function
             | Sexp.List [ key; mult; Sexp.List states ] ->
                 ( key_of_sexp key,
                   Sexp.to_int mult,
                   List.map Aggregate.state_of_sexp states )
             | s -> error "bad view group %s" (Sexp.to_string s))
           groups)
  | s -> error "bad view contents %s" (Sexp.to_string s)

(* ---- whole database ---- *)

let sexp_of_retention = function
  | Chron.Discard -> Sexp.Atom "discard"
  | Chron.Full -> Sexp.Atom "full"
  | Chron.Window n -> Sexp.List [ Sexp.Atom "window"; Sexp.int n ]

let retention_of_sexp = function
  | Sexp.Atom "discard" -> Chron.Discard
  | Sexp.Atom "full" -> Chron.Full
  | Sexp.List [ Sexp.Atom "window"; n ] -> Chron.Window (Sexp.to_int n)
  | s -> error "bad retention %s" (Sexp.to_string s)

let sexp_of_sca def =
  Sexp.record
    [
      ("name", Sexp.Atom (Sca.name def));
      ("body", sexp_of_ca (Sca.body def));
      ("summarize", sexp_of_summarize (Sca.summarize def));
    ]

let sca_of_sexp ~chronicle ~relation entry =
  Sca.define ~allow_non_ca:true
    ~name:(Sexp.to_atom (Sexp.field entry "name"))
    ~body:(ca_of_sexp ~chronicle ~relation (Sexp.field entry "body"))
    (summarize_of_sexp (Sexp.field entry "summarize"))

let sexp_of_index_kind = function
  | Index.Hash -> Sexp.Atom "hash"
  | Index.Ordered -> Sexp.Atom "ordered"

let index_kind_of_sexp s =
  match Sexp.to_atom s with
  | "hash" -> Index.Hash
  | "ordered" -> Index.Ordered
  | other -> error "bad index kind %s" other

let sexp_of_db db =
  let groups =
    List.map
      (fun name ->
        let g = Db.group db name in
        Sexp.record
          [
            ("name", Sexp.Atom name);
            ("watermark", Sexp.int (Group.watermark g));
            ("clock", Sexp.int (Group.now g));
          ])
      (Db.group_names db)
  in
  let chronicles =
    List.map
      (fun name ->
        let c = Db.chronicle db name in
        Sexp.record
          [
            ("name", Sexp.Atom name);
            ("group", Sexp.Atom (Group.name (Chron.group c)));
            ("retention", sexp_of_retention (Chron.retention c));
            ("schema", sexp_of_schema (Chron.user_schema c));
            ("total", Sexp.int (Chron.total_appended c));
            ( "last_sn",
              match Chron.last_sn c with
              | None -> Sexp.Atom "none"
              | Some sn -> Sexp.int sn );
            ("retained", Sexp.List (List.map sexp_of_tuple (Chron.stored c)));
          ])
      (Db.chronicle_names db)
  in
  let relations =
    List.map
      (fun name ->
        let v = Db.relation db name in
        if Versioned.pending_count v > 0 then
          error
            "relation %s has %d pending future-effective updates; apply or \
             drop them before snapshotting (update functions are code and \
             cannot be serialized)"
            name (Versioned.pending_count v);
        let rel = Versioned.relation v in
        Sexp.record
          [
            ("name", Sexp.Atom name);
            ("group", Sexp.Atom (Group.name (Versioned.group v)));
            ("schema", sexp_of_schema (Relation.schema rel));
            ( "key",
              match Relation.key rel with
              | None -> Sexp.Atom "none"
              | Some key -> sexp_of_attrs key );
            ("rows", Sexp.List (List.map sexp_of_tuple (Relation.to_list rel)));
          ])
      (Db.relation_names db)
  in
  let views =
    List.map
      (fun view ->
        let def = View.def view in
        Sexp.record
          [
            ("name", Sexp.Atom (View.name view));
            ("index", sexp_of_index_kind (View.index_kind view));
            ("body", sexp_of_ca (Sca.body def));
            ("summarize", sexp_of_summarize (Sca.summarize def));
            ("contents", sexp_of_view_contents view);
          ])
      (Db.views db)
  in
  Sexp.record
    [
      ("chronicle-snapshot", Sexp.int 1);
      ("groups", Sexp.List groups);
      ("chronicles", Sexp.List chronicles);
      ("relations", Sexp.List relations);
      ("views", Sexp.List views);
    ]

let save db = Sexp.to_string_pretty (sexp_of_db db)

let db_of_sexp ?jobs ?heavy_threshold doc =
  (match Sexp.field_opt doc "chronicle-snapshot" with
  | Some v when Sexp.to_int v = 1 -> ()
  | Some v -> error "unsupported snapshot version %s" (Sexp.to_string v)
  | None -> error "not a chronicle snapshot");
  let group_entries = Sexp.to_list (Sexp.field doc "groups") in
  (* groups: the default "main" group always exists; extra ones are added *)
  let db =
    Db.create
      ~default_group:
        (match group_entries with
        | first :: _ -> Sexp.to_atom (Sexp.field first "name")
        | [] -> "main")
      ?jobs ?heavy_threshold ()
  in
  List.iteri
    (fun i entry ->
      let name = Sexp.to_atom (Sexp.field entry "name") in
      let g = if i = 0 then Db.group db name else Db.add_group db name in
      let watermark = Sexp.to_int (Sexp.field entry "watermark") in
      if watermark > Group.watermark g then Group.claim_sn g watermark;
      Group.advance_clock g (Sexp.to_int (Sexp.field entry "clock")))
    group_entries;
  List.iter
    (fun entry ->
      let name = Sexp.to_atom (Sexp.field entry "name") in
      let group = Sexp.to_atom (Sexp.field entry "group") in
      let retention = retention_of_sexp (Sexp.field entry "retention") in
      let schema = schema_of_sexp (Sexp.field entry "schema") in
      let c = Db.add_chronicle db ~group ~retention ~name schema in
      let last_sn =
        match Sexp.field entry "last_sn" with
        | Sexp.Atom "none" -> None
        | s -> Some (Sexp.to_int s)
      in
      Chron.restore c
        ~total:(Sexp.to_int (Sexp.field entry "total"))
        ~last_sn
        ~retained:(List.map tuple_of_sexp (Sexp.to_list (Sexp.field entry "retained"))))
    (Sexp.to_list (Sexp.field doc "chronicles"));
  List.iter
    (fun entry ->
      let name = Sexp.to_atom (Sexp.field entry "name") in
      let group = Sexp.to_atom (Sexp.field entry "group") in
      let schema = schema_of_sexp (Sexp.field entry "schema") in
      let key =
        match Sexp.field entry "key" with
        | Sexp.Atom "none" -> None
        | s -> Some (attrs_of_sexp s)
      in
      let v = Db.add_relation db ~group ~name ~schema ?key () in
      List.iter
        (fun row -> Versioned.insert v (tuple_of_sexp row))
        (Sexp.to_list (Sexp.field entry "rows")))
    (Sexp.to_list (Sexp.field doc "relations"));
  List.iter
    (fun entry ->
      let name = Sexp.to_atom (Sexp.field entry "name") in
      let index = index_kind_of_sexp (Sexp.field entry "index") in
      let body =
        ca_of_sexp
          ~chronicle:(Db.chronicle db)
          ~relation:(fun r -> Versioned.relation (Db.relation db r))
          (Sexp.field entry "body")
      in
      let summarize = summarize_of_sexp (Sexp.field entry "summarize") in
      let def = Sca.define ~allow_non_ca:true ~name ~body summarize in
      let view =
        View.create ~index ~heavy_threshold:(Db.heavy_threshold db) def
      in
      View.load_w view (view_contents_of_sexp (Sexp.field entry "contents"));
      Registry.register (Db.registry db) view)
    (Sexp.to_list (Sexp.field doc "views"));
  db

let load ?jobs ?heavy_threshold text =
  db_of_sexp ?jobs ?heavy_threshold (Sexp.of_string text)

let save_file db path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save db))

let load_file ?jobs ?heavy_threshold path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load ?jobs ?heavy_threshold text
