open Relational

exception Retroactive_update of { effective : Seqnum.t; watermark : Seqnum.t }

type op =
  | Insert of Tuple.t
  | Delete_where of Predicate.t
  | Update_where of Predicate.t * (Tuple.t -> Tuple.t)

type t = {
  rel : Relation.t;
  group : Group.t;
  track_history : bool;
  log : (Seqnum.t * op) Vec.t; (* effective-from watermark, forward op *)
  mutable pending : (Seqnum.t * op) list; (* future-effective, sorted *)
  mutable undo : (unit -> unit) list option;
      (* inverse row operations, most recent first; collected only while
         a transactional mark is active (see [mark]/[rollback]) *)
}

let create ~group ~name ~schema ?key ?(track_history = true) () =
  {
    rel = Relation.create ~name ~schema ?key ();
    group;
    track_history;
    log = Vec.create ();
    pending = [];
    undo = None;
  }

let relation t = t.rel
let group t = t.group
let name t = Relation.name t.rel

let push_undo t f =
  match t.undo with Some fs -> t.undo <- Some (f :: fs) | None -> ()

let apply_op t op =
  match op with
  | Insert tuple ->
      let row = Relation.insert t.rel tuple in
      push_undo t (fun () -> ignore (Relation.delete t.rel row))
  | Delete_where pred ->
      (match t.undo with
      | None -> ignore (Relation.delete_where t.rel pred)
      | Some _ ->
          (* delete row by row so each deletion is invertible *)
          let matches = Predicate.compile (Relation.schema t.rel) pred in
          let victims = ref [] in
          Relation.iter
            (fun row tuple -> if matches tuple then victims := (row, tuple) :: !victims)
            t.rel;
          List.iter
            (fun (row, tuple) ->
              ignore (Relation.delete t.rel row);
              push_undo t (fun () -> ignore (Relation.insert t.rel tuple)))
            !victims)
  | Update_where (pred, f) ->
      let matches = Predicate.compile (Relation.schema t.rel) pred in
      let victims = ref [] in
      Relation.iter
        (fun row tuple -> if matches tuple then victims := (row, tuple) :: !victims)
        t.rel;
      List.iter
        (fun (row, tuple) ->
          Relation.update t.rel row (f tuple);
          push_undo t (fun () -> Relation.update t.rel row tuple))
        !victims

let record t effective op =
  if t.track_history then ignore (Vec.push t.log (effective, op))

let submit ?effective t op =
  let watermark = Group.watermark t.group in
  let effective = Option.value ~default:watermark effective in
  if effective < watermark then
    raise (Retroactive_update { effective; watermark })
  else if effective = watermark then begin
    (* effective now: visible to every sequence number > watermark *)
    apply_op t op;
    record t effective op
  end
  else
    (* proactive, future-effective: queue in effective order *)
    t.pending <-
      List.merge
        (fun (a, _) (b, _) -> Seqnum.compare a b)
        t.pending
        [ (effective, op) ]

let insert ?effective t tuple = submit ?effective t (Insert tuple)
let delete_where ?effective t pred = submit ?effective t (Delete_where pred)

let update_where ?effective t pred f =
  submit ?effective t (Update_where (pred, f))

let pending_count t = List.length t.pending

let flush_pending t ~upto =
  let rec go = function
    | (effective, op) :: rest when effective <= upto ->
        apply_op t op;
        record t effective op;
        go rest
    | rest -> t.pending <- rest
  in
  go t.pending

(* ---- transactional marks (Db's atomic-append rollback path) ---- *)

type mark = {
  m_pending : (Seqnum.t * op) list;
  m_log_len : int;
}

let mark t =
  t.undo <- Some [];
  { m_pending = t.pending; m_log_len = Vec.length t.log }

let commit t = t.undo <- None

let rollback t m =
  (match t.undo with
  | Some fs -> List.iter (fun f -> f ()) fs
  | None -> invalid_arg "Versioned.rollback: no active mark");
  t.undo <- None;
  t.pending <- m.m_pending;
  Vec.truncate t.log m.m_log_len

let as_of t sn =
  if not t.track_history then
    invalid_arg "Versioned.as_of: history tracking is disabled";
  (* replay ops effective strictly before [sn] into a scratch relation *)
  let scratch =
    Relation.create ~name:(name t ^ "@asof") ~schema:(Relation.schema t.rel) ()
  in
  let scratch_t =
    { t with rel = scratch; log = Vec.create (); pending = []; track_history = false;
      undo = None }
  in
  Vec.iter
    (fun (effective, op) -> if effective < sn then apply_op scratch_t op)
    t.log;
  Relation.to_list scratch

let log_length t = Vec.length t.log
