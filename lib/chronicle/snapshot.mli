open Relational

(** Database snapshots.

    A chronicle is an unbounded stream that the system deliberately
    does {e not} store — so after a restart the persistent views cannot
    be recomputed by replay.  Their materialized state (plus the
    catalog, group watermarks/clocks, relation contents, and whatever
    chronicle window the retention policies kept) therefore {e is} the
    database, and this module serializes exactly that to a textual
    S-expression document and back.

    Not captured (documented limits):
    - the [Versioned] forward log and pending future-effective updates
      ([save] refuses while updates are pending, since their update
      functions are code);
    - periodic-view families, windowed views and event-detector state
      (session-level objects; re-attach them after load and they take
      over from the restored clock);
    - chronicle subscribers (re-register after load). *)

exception Snapshot_error of string

val save : Db.t -> string
(** Serialize the database.  Raises {!Snapshot_error} if a relation has
    pending future-effective updates, or a registered view definition
    is not expressible in the snapshot grammar. *)

val load : ?jobs:int -> ?heavy_threshold:int -> string -> Db.t
(** Rebuild a database from {!save} output.  Raises {!Snapshot_error}
    (or [Sexp.Parse_error]) on malformed documents.  [jobs] is the
    maintenance parallelism degree of the rebuilt database (see
    {!Db.create}; a snapshot does not record the degree it was saved
    under — parallelism is an execution property, not state).
    [heavy_threshold] likewise re-applies the heavy-light promotion bar
    to the rebuilt views: partition state is ephemeral probe-routing
    state, deliberately not captured by {!save}. *)

val save_file : Db.t -> string -> unit
val load_file : ?jobs:int -> ?heavy_threshold:int -> string -> Db.t

val sexp_of_db : Db.t -> Sexp.t
val db_of_sexp : ?jobs:int -> ?heavy_threshold:int -> Sexp.t -> Db.t
(** The underlying document (used by the session-level snapshot, which
    embeds the database document alongside temporal and event state). *)

(** {2 Building blocks} (exposed for tests and tooling) *)

val sexp_of_schema : Schema.t -> Sexp.t
val schema_of_sexp : Sexp.t -> Schema.t
val sexp_of_tuple : Tuple.t -> Sexp.t
val tuple_of_sexp : Sexp.t -> Tuple.t
val sexp_of_retention : Chron.retention -> Sexp.t
val retention_of_sexp : Sexp.t -> Chron.retention
val sexp_of_predicate : Predicate.t -> Sexp.t
val predicate_of_sexp : Sexp.t -> Predicate.t

val sexp_of_ca : Ca.t -> Sexp.t
(** Chronicles and relations are referenced by name. *)

val ca_of_sexp :
  chronicle:(string -> Chron.t) ->
  relation:(string -> Relation.t) ->
  Sexp.t ->
  Ca.t

val sexp_of_sca : Sca.t -> Sexp.t
val sca_of_sexp :
  chronicle:(string -> Chron.t) ->
  relation:(string -> Relation.t) ->
  Sexp.t ->
  Sca.t

val sexp_of_view_contents : View.t -> Sexp.t
val view_contents_of_sexp : Sexp.t -> View.dump_w
(** Contents round-trip through the multiplicity-preserving
    {!View.dump_w} ("rows-w"/"groups-w" tags), so restored views keep
    maintaining correctly under retraction; pre-weighted "rows"/"groups"
    documents still parse with every multiplicity defaulting to 1. *)
