open Relational

(* A guard for (view, chronicle): either a compiled necessary condition
   on appended tuples, or [None] meaning "always maintain". *)
type entry = {
  view : View.t;
  guards : (Chron.t * (Tuple.t -> bool) option) list;
}

(* Entries live in a vector in registration order — the one iteration
   order every registry traversal uses.  [affected] in particular must
   be deterministic and stable (parallel maintenance partitions its
   output across domains by contiguous ranges; a hash-table iteration
   order here would make task ownership, and hence any failure report,
   depend on hashing accidents).  The side table maps view name to its
   vector slot for O(1) [find]/duplicate checks under many views;
   [unregister] compacts the vector, preserving relative order. *)
type t = {
  entries : entry Vec.t;
  by_name : (string, int) Hashtbl.t; (* view name -> vector slot *)
  mutable checked : int;
  mutable skipped : int;
}

let create () =
  { entries = Vec.create (); by_name = Hashtbl.create 64; checked = 0;
    skipped = 0 }

(* Extract a conjunction of selection predicates that is a necessary
   condition, on a tuple appended to the base chronicle [c], for the
   expression's delta to be non-empty.  The walk may descend through
   any operator whose delta is empty whenever the chronicle-side delta
   is empty: projections (no renaming), relation joins/products,
   sn-grouping, sequence joins (both sides must be non-empty, so either
   side's guard is necessary) and the left side of a difference.
   Predicates that mention attributes not present in the chronicle
   schema (e.g. relation attributes above a join) make the final
   compilation fail, and the caller falls back to "always maintain" —
   sound, merely less economical. *)
let rec extract_guard c expr acc =
  match expr with
  | Ca.Chronicle c' -> if c' == c then Some acc else None
  | Ca.Select (p, e) -> extract_guard c e (p :: acc)
  | Ca.Project (_, e)
  | Ca.KeyJoinRel (e, _, _)
  | Ca.ProductRel (e, _)
  | Ca.GroupBySeq (_, _, e) ->
      extract_guard c e acc
  | Ca.SeqJoin (l, r) -> (
      match extract_guard c l acc with
      | Some g -> Some g
      | None -> extract_guard c r acc)
  | Ca.Diff (l, _) ->
      (* Δ(E₁ − E₂) = ΔE₁ − ΔE₂ is empty whenever ΔE₁ is *)
      extract_guard c l acc
  | Ca.Union _ | Ca.CrossChron _ | Ca.ThetaJoinChron _ -> None

let guard_for view c =
  let body = Sca.body (View.def view) in
  (* Union of select-chains: a tuple is relevant if any branch's chain
     accepts it.  For a single chain the guard is the conjunction.  For
     other shapes (joins, differences, grouping above the chronicle) we
     keep the trivial guard. *)
  let rec branch_guards expr =
    match expr with
    | Ca.Union (l, r) -> (
        match branch_guards l, branch_guards r with
        | Some gl, Some gr -> Some (gl @ gr)
        | (Some _ | None), _ -> None)
    | _ when not (Ca.depends_on expr c) ->
        (* this branch cannot produce a delta for appends to [c] *)
        Some []
    | _ -> (
        match extract_guard c expr [] with
        | Some preds -> Some [ Predicate.conj preds ]
        | None -> None)
  in
  match branch_guards body with
  | None -> None
  | Some branches ->
      let pred = Predicate.disj branches in
      (try Some (Predicate.compile (Chron.schema c) pred)
       with Schema.Unknown_attribute _ -> None)

let register t view =
  let vname = View.name view in
  if Hashtbl.mem t.by_name vname then
    invalid_arg (Printf.sprintf "Registry.register: view %s already exists" vname);
  let chronicles = Ca.chronicles (Sca.body (View.def view)) in
  let guards = List.map (fun c -> (c, guard_for view c)) chronicles in
  (* warm the per-view Δ-plan cache: the one compilation happens at
     registration ([Stats.Plan_cache_miss] + [Stats.Plan_compile]), so
     every subsequent append is a pure cache hit.  Redefinition is
     unregister + register of a fresh view, which recompiles. *)
  ignore (View.plan view);
  Hashtbl.replace t.by_name vname (Vec.push t.entries { view; guards })

let unregister t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.by_name name;
      (* compact: shift the suffix down one slot, preserving the
         relative registration order of the survivors *)
      let n = Vec.length t.entries in
      for i = slot + 1 to n - 1 do
        let e = Vec.get t.entries i in
        Vec.set t.entries (i - 1) e;
        Hashtbl.replace t.by_name (View.name e.view) (i - 1)
      done;
      Vec.truncate t.entries (n - 1)

let find t name =
  Option.map
    (fun slot -> (Vec.get t.entries slot).view)
    (Hashtbl.find_opt t.by_name name)

(* Every enumeration below walks [t.entries] front to back, i.e. in
   registration order — a documented guarantee, not an accident. *)

let views t = List.map (fun e -> e.view) (Vec.to_list t.entries)

let dependents t c =
  Vec.fold
    (fun acc e ->
      if List.exists (fun (c', _) -> c' == c) e.guards then e.view :: acc
      else acc)
    [] t.entries
  |> List.rev

let affected t c tuples =
  Vec.fold
    (fun acc e ->
      match List.find_opt (fun (c', _) -> c' == c) e.guards with
      | None -> acc (* view does not depend on this chronicle *)
      | Some (_, None) -> e.view :: acc (* no guard: always maintain *)
      | Some (_, Some guard) ->
          t.checked <- t.checked + 1;
          if List.exists guard tuples then e.view :: acc
          else begin
            t.skipped <- t.skipped + 1;
            acc
          end)
    [] t.entries
  |> List.rev

let checked t = t.checked
let skipped t = t.skipped

let index_advice t =
  List.map
    (fun e -> (View.name e.view, Sca.group_attrs (View.def e.view)))
    (Vec.to_list t.entries)
