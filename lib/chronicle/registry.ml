open Relational

(* A guard for (view, chronicle): either a compiled necessary condition
   on appended tuples, or [None] meaning "always maintain". *)
type entry = {
  view : View.t;
  guards : (Chron.t * (Tuple.t -> bool) option) list;
}

type t = {
  mutable entries : entry list;
  mutable checked : int;
  mutable skipped : int;
}

let create () = { entries = []; checked = 0; skipped = 0 }

(* Extract a conjunction of selection predicates that is a necessary
   condition, on a tuple appended to the base chronicle [c], for the
   expression's delta to be non-empty.  The walk may descend through
   any operator whose delta is empty whenever the chronicle-side delta
   is empty: projections (no renaming), relation joins/products,
   sn-grouping, sequence joins (both sides must be non-empty, so either
   side's guard is necessary) and the left side of a difference.
   Predicates that mention attributes not present in the chronicle
   schema (e.g. relation attributes above a join) make the final
   compilation fail, and the caller falls back to "always maintain" —
   sound, merely less economical. *)
let rec extract_guard c expr acc =
  match expr with
  | Ca.Chronicle c' -> if c' == c then Some acc else None
  | Ca.Select (p, e) -> extract_guard c e (p :: acc)
  | Ca.Project (_, e)
  | Ca.KeyJoinRel (e, _, _)
  | Ca.ProductRel (e, _)
  | Ca.GroupBySeq (_, _, e) ->
      extract_guard c e acc
  | Ca.SeqJoin (l, r) -> (
      match extract_guard c l acc with
      | Some g -> Some g
      | None -> extract_guard c r acc)
  | Ca.Diff (l, _) ->
      (* Δ(E₁ − E₂) = ΔE₁ − ΔE₂ is empty whenever ΔE₁ is *)
      extract_guard c l acc
  | Ca.Union _ | Ca.CrossChron _ | Ca.ThetaJoinChron _ -> None

let guard_for view c =
  let body = Sca.body (View.def view) in
  (* Union of select-chains: a tuple is relevant if any branch's chain
     accepts it.  For a single chain the guard is the conjunction.  For
     other shapes (joins, differences, grouping above the chronicle) we
     keep the trivial guard. *)
  let rec branch_guards expr =
    match expr with
    | Ca.Union (l, r) -> (
        match branch_guards l, branch_guards r with
        | Some gl, Some gr -> Some (gl @ gr)
        | (Some _ | None), _ -> None)
    | _ when not (Ca.depends_on expr c) ->
        (* this branch cannot produce a delta for appends to [c] *)
        Some []
    | _ -> (
        match extract_guard c expr [] with
        | Some preds -> Some [ Predicate.conj preds ]
        | None -> None)
  in
  match branch_guards body with
  | None -> None
  | Some branches ->
      let pred = Predicate.disj branches in
      (try Some (Predicate.compile (Chron.schema c) pred)
       with Schema.Unknown_attribute _ -> None)

let register t view =
  let vname = View.name view in
  if List.exists (fun e -> String.equal (View.name e.view) vname) t.entries then
    invalid_arg (Printf.sprintf "Registry.register: view %s already exists" vname);
  let chronicles = Ca.chronicles (Sca.body (View.def view)) in
  let guards = List.map (fun c -> (c, guard_for view c)) chronicles in
  (* warm the per-view Δ-plan cache: the one compilation happens at
     registration ([Stats.Plan_cache_miss] + [Stats.Plan_compile]), so
     every subsequent append is a pure cache hit.  Redefinition is
     unregister + register of a fresh view, which recompiles. *)
  ignore (View.plan view);
  t.entries <- t.entries @ [ { view; guards } ]

let unregister t name =
  t.entries <-
    List.filter (fun e -> not (String.equal (View.name e.view) name)) t.entries

let find t name =
  Option.map
    (fun e -> e.view)
    (List.find_opt (fun e -> String.equal (View.name e.view) name) t.entries)

let views t = List.map (fun e -> e.view) t.entries

let dependents t c =
  List.filter_map
    (fun e -> if List.exists (fun (c', _) -> c' == c) e.guards then Some e.view else None)
    t.entries

let affected t c tuples =
  List.filter_map
    (fun e ->
      match List.find_opt (fun (c', _) -> c' == c) e.guards with
      | None -> None (* view does not depend on this chronicle *)
      | Some (_, None) -> Some e.view (* no guard: always maintain *)
      | Some (_, Some guard) ->
          t.checked <- t.checked + 1;
          if List.exists guard tuples then Some e.view
          else begin
            t.skipped <- t.skipped + 1;
            None
          end)
    t.entries

let checked t = t.checked
let skipped t = t.skipped

let index_advice t =
  List.map
    (fun e -> (View.name e.view, Sca.group_attrs (View.def e.view)))
    t.entries
