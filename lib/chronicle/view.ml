open Relational

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

module Key_tree = Btree.Make (struct
  type t = Value.t list

  let compare = Value.compare_list
end)

(* The group table: either hash-backed (expected O(1) localization, with
   a side vector remembering insertion order) or B+-tree-backed
   (O(log |V|) worst case, ordered iteration). *)
type 'v backing =
  | Hash of 'v Key_tbl.t * Value.t list Vec.t
  | Tree of 'v Key_tree.t

type contents =
  | Groups of Aggregate.state array backing (* Group_agg *)
  | Rows of unit backing (* Project_out: a set of result tuples *)

(* Undo state for one transactional batch: keys added (most recent
   first — their [order] pushes are exactly the vector's tail) and
   pre-batch copies of every aggregate-state array touched. *)
type txn = {
  tx_batches : int;
  mutable tx_added : Value.t list list;
  mutable tx_touched : (Value.t list * Aggregate.state array) list;
  tx_seen : unit Key_tbl.t; (* keys already saved or added this txn *)
}

type t = {
  def : Sca.t;
  body_schema : Schema.t;
  key_of : Tuple.t -> Tuple.t;
  aggs : Aggregate.call list;
  arg_pos : int option array;
  contents : contents;
  mutable batches : int;
  mutable txn : txn option;
      (* active transactional batch; [Db.append] brackets maintenance
         with [begin_txn] … [commit_txn]/[rollback_txn] so a mid-batch
         failure leaves no partially-maintained view observable *)
  heavy_threshold : int;
      (* promotion bar for the plan's key-join partitions; 0 = adaptive
         (see [Skew]) *)
  mutable plan : Delta.plan option;
      (* compiled body Δ-plan, built on first use and kept for the
         view's lifetime.  Redefining a view creates a fresh [t], so the
         cache is invalidated exactly when the definition changes. *)
}

let make_backing : type v. Index.kind -> v backing = function
  | Index.Hash -> Hash (Key_tbl.create 256, Vec.create ())
  | Index.Ordered -> Tree (Key_tree.create ())

let backing_find : type v. v backing -> Value.t list -> v option =
 fun b key ->
  Stats.incr Stats.Group_lookup;
  match b with
  | Hash (tbl, _) ->
      Stats.incr Stats.Index_probe;
      Key_tbl.find_opt tbl key
  | Tree tree -> Key_tree.find tree key

let backing_add : type v. v backing -> Value.t list -> v -> unit =
 fun b key v ->
  match b with
  | Hash (tbl, order) ->
      Key_tbl.add tbl key v;
      ignore (Vec.push order key)
  | Tree tree -> ignore (Key_tree.insert tree key v)

let backing_size : type v. v backing -> int = function
  | Hash (tbl, _) -> Key_tbl.length tbl
  | Tree tree -> Key_tree.length tree

let backing_iter : type v. (Value.t list -> v -> unit) -> v backing -> unit =
 fun f -> function
  | Hash (tbl, order) -> Vec.iter (fun key -> f key (Key_tbl.find tbl key)) order
  | Tree tree -> Key_tree.iter f tree

let create ?(index = Index.Hash) ?(heavy_threshold = 0) def =
  let body_schema = Ca.schema_of (Sca.body def) in
  let key_of, aggs =
    match Sca.summarize def with
    | Sca.Project_out attrs -> (Tuple.projector body_schema attrs, [])
    | Sca.Group_agg (gl, al) -> (Tuple.projector body_schema gl, al)
  in
  let arg_pos =
    Array.of_list
      (List.map
         (fun (c : Aggregate.call) -> Option.map (Schema.pos body_schema) c.arg)
         aggs)
  in
  let contents =
    match Sca.summarize def with
    | Sca.Project_out _ -> Rows (make_backing index)
    | Sca.Group_agg _ -> Groups (make_backing index)
  in
  { def; body_schema; key_of; aggs; arg_pos; contents; batches = 0; txn = None;
    heavy_threshold; plan = None }

let def t = t.def
let name t = Sca.name t.def
let schema t = Sca.schema t.def

let plan t =
  match t.plan with
  | Some p ->
      Stats.incr Stats.Plan_cache_hit;
      p
  | None ->
      Stats.incr Stats.Plan_cache_miss;
      let p =
        Delta.compile ~heavy_threshold:t.heavy_threshold (Sca.body t.def)
      in
      t.plan <- Some p;
      p

let index_kind t =
  let kind : type v. v backing -> Index.kind = function
    | Hash _ -> Index.Hash
    | Tree _ -> Index.Ordered
  in
  match t.contents with
  | Rows backing -> kind backing
  | Groups backing -> kind backing

(* Undo bookkeeping: with a transaction active, remember every key this
   batch creates and a pre-touch copy of every state array it steps. *)
let txn_note_added t key =
  match t.txn with
  | None -> ()
  | Some tx ->
      tx.tx_added <- key :: tx.tx_added;
      Key_tbl.replace tx.tx_seen key ()

let txn_note_touched t key states =
  match t.txn with
  | None -> ()
  | Some tx ->
      if not (Key_tbl.mem tx.tx_seen key) then begin
        Key_tbl.replace tx.tx_seen key ();
        tx.tx_touched <- (key, Array.copy states) :: tx.tx_touched
      end

let apply_delta t delta =
  t.batches <- t.batches + 1;
  match t.contents with
  | Rows backing ->
      List.iter
        (fun tu ->
          let key = Array.to_list (t.key_of tu) in
          match backing_find backing key with
          | Some () -> () (* set semantics: already present *)
          | None ->
              Stats.incr Stats.Tuple_write;
              backing_add backing key ();
              txn_note_added t key)
        delta
  | Groups backing ->
      List.iter
        (fun tu ->
          let key = Array.to_list (t.key_of tu) in
          let states =
            match backing_find backing key with
            | Some states ->
                txn_note_touched t key states;
                states
            | None ->
                let states =
                  Array.of_list
                    (List.map
                       (fun (c : Aggregate.call) -> Aggregate.init c.func)
                       t.aggs)
                in
                Stats.incr Stats.Tuple_write;
                backing_add backing key states;
                txn_note_added t key;
                states
          in
          List.iteri
            (fun i (c : Aggregate.call) ->
              let arg =
                match t.arg_pos.(i) with
                | None -> Value.Int 1 (* COUNT over the whole tuple *)
                | Some p -> Tuple.get tu p
              in
              states.(i) <- Aggregate.step c.func states.(i) arg)
            t.aggs)
        delta

let maintain t ~sn ~batch = apply_delta t (Delta.run (plan t) ~sn ~batch)

(* ---- transactional batches ---- *)

let begin_txn t =
  match t.txn with
  | Some _ -> invalid_arg "View.begin_txn: transaction already active"
  | None ->
      t.txn <-
        Some
          {
            tx_batches = t.batches;
            tx_added = [];
            tx_touched = [];
            tx_seen = Key_tbl.create 8;
          }

let commit_txn t = t.txn <- None

let backing_remove_added : type v. v backing -> Value.t list list -> unit =
 fun b keys ->
  match b with
  | Hash (tbl, order) ->
      (* the added keys are exactly the most recent [order] pushes *)
      List.iter (Key_tbl.remove tbl) keys;
      Vec.truncate order (Vec.length order - List.length keys)
  | Tree tree -> List.iter (fun key -> ignore (Key_tree.remove tree key)) keys

let rollback_txn t =
  match t.txn with
  | None -> invalid_arg "View.rollback_txn: no active transaction"
  | Some tx ->
      (match t.contents with
      | Rows backing -> backing_remove_added backing tx.tx_added
      | Groups backing ->
          backing_remove_added backing tx.tx_added;
          List.iter
            (fun (key, saved) ->
              match backing_find backing key with
              | Some states -> Array.blit saved 0 states 0 (Array.length saved)
              | None -> assert false (* touched keys were pre-existing *))
            tx.tx_touched);
      t.batches <- tx.tx_batches;
      t.txn <- None

let of_initial ?index ?heavy_threshold def initial =
  let t = create ?index ?heavy_threshold def in
  apply_delta t initial;
  t.batches <- 0;
  t

let row_of t key states =
  Tuple.make
    (key
    @ List.mapi
        (fun i (c : Aggregate.call) -> Aggregate.final c.func states.(i))
        t.aggs)

let lookup t key =
  match t.contents with
  | Rows backing ->
      Option.map (fun () -> Tuple.make key) (backing_find backing key)
  | Groups backing ->
      Option.map (row_of t key) (backing_find backing key)

let size t =
  match t.contents with
  | Rows backing -> backing_size backing
  | Groups backing -> backing_size backing

let iter f t =
  match t.contents with
  | Rows backing -> backing_iter (fun key () -> f (Tuple.make key)) backing
  | Groups backing ->
      backing_iter (fun key states -> f (row_of t key states)) backing

let to_list t =
  let acc = ref [] in
  iter (fun tu -> acc := tu :: !acc) t;
  List.rev !acc

let materialize t =
  let rel = Relation.create ~name:(name t) ~schema:(schema t) () in
  iter (fun tu -> ignore (Relation.insert rel tu)) t;
  rel

let maintained_batches t = t.batches

type dump =
  | Groups_dump of (Value.t list * Aggregate.state list) list
  | Rows_dump of Value.t list list

let dump t =
  match t.contents with
  | Rows backing ->
      let acc = ref [] in
      backing_iter (fun key () -> acc := key :: !acc) backing;
      Rows_dump (List.rev !acc)
  | Groups backing ->
      let acc = ref [] in
      backing_iter
        (fun key states -> acc := (key, Array.to_list states) :: !acc)
        backing;
      Groups_dump (List.rev !acc)

let load t dump =
  if size t <> 0 then invalid_arg "View.load: view is not empty";
  match t.contents, dump with
  | Rows backing, Rows_dump keys ->
      List.iter (fun key -> backing_add backing key ()) keys
  | Groups backing, Groups_dump groups ->
      List.iter
        (fun (key, states) ->
          if List.length states <> List.length t.aggs then
            invalid_arg "View.load: aggregate-state arity mismatch";
          backing_add backing key (Array.of_list states))
        groups
  | Rows _, Groups_dump _ | Groups _, Rows_dump _ ->
      invalid_arg "View.load: dump shape does not match the view kind"

let pp ppf t =
  Format.fprintf ppf "@[<v2>view %a [%d rows, %d batches]" Sca.pp t.def (size t)
    t.batches;
  iter (fun tu -> Format.fprintf ppf "@,%a" (Tuple.pp_with (schema t)) tu) t;
  Format.fprintf ppf "@]"
