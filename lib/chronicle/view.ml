open Relational

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

module Key_tree = Btree.Make (struct
  type t = Value.t list

  let compare = Value.compare_list
end)

(* The group table: either hash-backed (expected O(1) localization, with
   a side vector remembering insertion order) or B+-tree-backed
   (O(log |V|) worst case, ordered iteration). *)
type 'v backing =
  | Hash of 'v Key_tbl.t * Value.t list Vec.t
  | Tree of 'v Key_tree.t

(* Every entry carries a hidden ℤ-multiplicity: how many body-output
   occurrences support it.  The weight=+1 append path only ever
   increments it (invisible to the outside: set semantics and
   aggregate states are unchanged); the weighted retraction path
   decrements it and drops the entry exactly when it reaches zero. *)
type group = { mutable g_mult : int; g_states : Aggregate.state array }

type contents =
  | Groups of group backing (* Group_agg *)
  | Rows of int ref backing (* Project_out: a set of result tuples *)

(* Undo state for one transactional batch: keys added (most recent
   first — their [order] pushes are exactly the vector's tail) and a
   pre-touch snapshot (multiplicity + aggregate-state copy) of every
   entry the batch stepped.  For [Rows] views the state array is
   empty and only the multiplicity matters. *)
type txn = {
  tx_batches : int;
  mutable tx_added : Value.t list list;
  mutable tx_touched : (Value.t list * int * Aggregate.state array) list;
  tx_seen : unit Key_tbl.t; (* keys already saved or added this txn *)
}

type t = {
  def : Sca.t;
  body_schema : Schema.t;
  key_of : Tuple.t -> Tuple.t;
  aggs : Aggregate.call list;
  arg_pos : int option array;
  contents : contents;
  mutable batches : int;
  mutable txn : txn option;
      (* active transactional batch; [Db.append] brackets maintenance
         with [begin_txn] … [commit_txn]/[rollback_txn] so a mid-batch
         failure leaves no partially-maintained view observable *)
  heavy_threshold : int;
      (* promotion bar for the plan's key-join partitions; 0 = adaptive
         (see [Skew]) *)
  mutable plan : Delta.plan option;
      (* compiled body Δ-plan, built on first use and kept for the
         view's lifetime.  Redefining a view creates a fresh [t], so the
         cache is invalidated exactly when the definition changes. *)
}

let make_backing : type v. Index.kind -> v backing = function
  | Index.Hash -> Hash (Key_tbl.create 256, Vec.create ())
  | Index.Ordered -> Tree (Key_tree.create ())

let backing_find : type v. v backing -> Value.t list -> v option =
 fun b key ->
  Stats.incr Stats.Group_lookup;
  match b with
  | Hash (tbl, _) ->
      Stats.incr Stats.Index_probe;
      Key_tbl.find_opt tbl key
  | Tree tree -> Key_tree.find tree key

let backing_add : type v. v backing -> Value.t list -> v -> unit =
 fun b key v ->
  match b with
  | Hash (tbl, order) ->
      Key_tbl.add tbl key v;
      ignore (Vec.push order key)
  | Tree tree -> ignore (Key_tree.insert tree key v)

let backing_size : type v. v backing -> int = function
  | Hash (tbl, _) -> Key_tbl.length tbl
  | Tree tree -> Key_tree.length tree

let backing_iter : type v. (Value.t list -> v -> unit) -> v backing -> unit =
 fun f -> function
  | Hash (tbl, order) -> Vec.iter (fun key -> f key (Key_tbl.find tbl key)) order
  | Tree tree -> Key_tree.iter f tree

(* Removal support for the weighted (retraction) path.  A hash backing
   keeps insertion order in a side vector; removing from the table
   alone would leave a ghost key there and break [backing_iter], so
   callers that removed anything must run [backing_compact] before the
   view is next observed.  Compaction preserves the relative order of
   the surviving keys. *)
let backing_remove : type v. v backing -> Value.t list -> unit =
 fun b key ->
  match b with
  | Hash (tbl, _) -> Key_tbl.remove tbl key
  | Tree tree -> ignore (Key_tree.remove tree key)

let backing_compact : type v. v backing -> unit = function
  | Hash (tbl, order) ->
      let live =
        Vec.fold
          (fun acc key -> if Key_tbl.mem tbl key then key :: acc else acc)
          [] order
      in
      Vec.clear order;
      List.iter (fun key -> ignore (Vec.push order key)) (List.rev live)
  | Tree _ -> ()

let create ?(index = Index.Hash) ?(heavy_threshold = 0) def =
  let body_schema = Ca.schema_of (Sca.body def) in
  let key_of, aggs =
    match Sca.summarize def with
    | Sca.Project_out attrs -> (Tuple.projector body_schema attrs, [])
    | Sca.Group_agg (gl, al) -> (Tuple.projector body_schema gl, al)
  in
  let arg_pos =
    Array.of_list
      (List.map
         (fun (c : Aggregate.call) -> Option.map (Schema.pos body_schema) c.arg)
         aggs)
  in
  let contents =
    match Sca.summarize def with
    | Sca.Project_out _ -> Rows (make_backing index)
    | Sca.Group_agg _ -> Groups (make_backing index)
  in
  { def; body_schema; key_of; aggs; arg_pos; contents; batches = 0; txn = None;
    heavy_threshold; plan = None }

let def t = t.def
let name t = Sca.name t.def
let schema t = Sca.schema t.def

let plan t =
  match t.plan with
  | Some p ->
      Stats.incr Stats.Plan_cache_hit;
      p
  | None ->
      Stats.incr Stats.Plan_cache_miss;
      let p =
        Delta.compile ~heavy_threshold:t.heavy_threshold (Sca.body t.def)
      in
      t.plan <- Some p;
      p

let index_kind t =
  let kind : type v. v backing -> Index.kind = function
    | Hash _ -> Index.Hash
    | Tree _ -> Index.Ordered
  in
  match t.contents with
  | Rows backing -> kind backing
  | Groups backing -> kind backing

(* Undo bookkeeping: with a transaction active, remember every key this
   batch creates and a pre-touch copy of every state array it steps. *)
let txn_note_added t key =
  match t.txn with
  | None -> ()
  | Some tx ->
      tx.tx_added <- key :: tx.tx_added;
      Key_tbl.replace tx.tx_seen key ()

let txn_note_touched t key mult states =
  match t.txn with
  | None -> ()
  | Some tx ->
      if not (Key_tbl.mem tx.tx_seen key) then begin
        Key_tbl.replace tx.tx_seen key ();
        tx.tx_touched <- (key, mult, Array.copy states) :: tx.tx_touched
      end

let fresh_states t =
  Array.of_list
    (List.map (fun (c : Aggregate.call) -> Aggregate.init c.func) t.aggs)

let step_states t states tu =
  List.iteri
    (fun i (c : Aggregate.call) ->
      let arg =
        match t.arg_pos.(i) with
        | None -> Value.Int 1 (* COUNT over the whole tuple *)
        | Some p -> Tuple.get tu p
      in
      states.(i) <- Aggregate.step c.func states.(i) arg)
    t.aggs

let apply_delta t delta =
  t.batches <- t.batches + 1;
  match t.contents with
  | Rows backing ->
      List.iter
        (fun tu ->
          let key = Array.to_list (t.key_of tu) in
          match backing_find backing key with
          | Some r ->
              (* set semantics: already present; only the hidden
                 multiplicity moves *)
              txn_note_touched t key !r [||];
              incr r
          | None ->
              Stats.incr Stats.Tuple_write;
              backing_add backing key (ref 1);
              txn_note_added t key)
        delta
  | Groups backing ->
      List.iter
        (fun tu ->
          let key = Array.to_list (t.key_of tu) in
          let states =
            match backing_find backing key with
            | Some g ->
                txn_note_touched t key g.g_mult g.g_states;
                g.g_mult <- g.g_mult + 1;
                g.g_states
            | None ->
                let g = { g_mult = 1; g_states = fresh_states t } in
                Stats.incr Stats.Tuple_write;
                backing_add backing key g;
                txn_note_added t key;
                g.g_states
          in
          step_states t states tu)
        delta

let maintain t ~sn ~batch = apply_delta t (Delta.run (plan t) ~sn ~batch)

(* ---- weighted (ℤ-delta) maintenance: the retraction path ---- *)

(* Undo one [step_states] in place.  [`Reprobe] means some call could
   not invert (MIN/MAX losing its extremum); states may then be left
   partially inverted — the caller resets and refolds the whole group,
   so partial damage is unobservable. *)
let unstep_states t states tu =
  let inverted =
    List.mapi
      (fun i (c : Aggregate.call) ->
        let arg =
          match t.arg_pos.(i) with
          | None -> Value.Int 1
          | Some p -> Tuple.get tu p
        in
        Aggregate.unstep c.func states.(i) arg)
      t.aggs
  in
  if List.exists (function Aggregate.Reprobe -> true | _ -> false) inverted
  then `Reprobe
  else begin
    List.iteri
      (fun i inv ->
        match inv with
        | Aggregate.Inverted st -> states.(i) <- st
        | Aggregate.Reprobe -> assert false)
      inverted;
    `Inverted
  end

(* Apply a ℤ-weighted view-output delta: weight [w > 0] folds the tuple
   in [w] times, [w < 0] retracts [-w] occurrences.  An entry whose
   multiplicity reaches zero is removed.  Groups whose aggregates
   cannot invert are marked, then recomputed from a single evaluation
   of [body ()] — the view body's full output over the {e already
   mutated} base — bumping [Stats.Aggregate_reprobe] once per marked
   group.  Never called on the append fast path, and never inside a
   transactional batch (retraction undo is [dump_w]/[restore_w]). *)
let apply_weighted t ~body wdelta =
  if t.txn <> None then invalid_arg "View.apply_weighted: transaction active";
  let removed = ref false in
  let drop : type v. v backing -> Value.t list -> unit =
   fun backing key ->
    Stats.incr Stats.Tuple_write;
    backing_remove backing key;
    removed := true
  in
  (match t.contents with
  | Rows backing ->
      List.iter
        (fun (tu, w) ->
          if w <> 0 then
            let key = Array.to_list (t.key_of tu) in
            match backing_find backing key with
            | Some r ->
                let m = !r + w in
                if m < 0 then
                  invalid_arg "View.apply_weighted: negative multiplicity"
                else if m = 0 then drop backing key
                else r := m
            | None ->
                if w < 0 then
                  invalid_arg "View.apply_weighted: retracting an absent row";
                Stats.incr Stats.Tuple_write;
                backing_add backing key (ref w))
        wdelta
  | Groups backing ->
      let reprobe = Key_tbl.create 8 in
      let add t_ g tu w =
        for _ = 1 to w do step_states t_ g.g_states tu done;
        g.g_mult <- g.g_mult + w
      in
      let retract g key tu w =
        (try
           for _ = 1 to -w do
             match unstep_states t g.g_states tu with
             | `Inverted -> g.g_mult <- g.g_mult - 1
             | `Reprobe ->
                 Key_tbl.replace reprobe key ();
                 raise Exit
           done
         with Exit -> ());
        if not (Key_tbl.mem reprobe key) then
          if g.g_mult < 0 then
            invalid_arg "View.apply_weighted: negative multiplicity"
          else if g.g_mult = 0 then drop backing key
      in
      List.iter
        (fun (tu, w) ->
          if w <> 0 then begin
            let key = Array.to_list (t.key_of tu) in
            if not (Key_tbl.mem reprobe key) then
              if w > 0 then begin
                let g =
                  match backing_find backing key with
                  | Some g -> g
                  | None ->
                      let g = { g_mult = 0; g_states = fresh_states t } in
                      Stats.incr Stats.Tuple_write;
                      backing_add backing key g;
                      g
                in
                add t g tu w
              end
              else
                match backing_find backing key with
                | None ->
                    invalid_arg
                      "View.apply_weighted: retracting an absent group"
                | Some g -> retract g key tu w
          end)
        wdelta;
      if Key_tbl.length reprobe > 0 then begin
        (* some MIN/MAX group lost its extremum: reset every marked
           group and refold it from one post-mutation body scan *)
        Key_tbl.iter
          (fun key () ->
            match backing_find backing key with
            | Some g ->
                g.g_mult <- 0;
                let fresh = fresh_states t in
                Array.blit fresh 0 g.g_states 0 (Array.length fresh)
            | None -> assert false)
          reprobe;
        List.iter
          (fun tu ->
            let key = Array.to_list (t.key_of tu) in
            if Key_tbl.mem reprobe key then
              match backing_find backing key with
              | Some g ->
                  step_states t g.g_states tu;
                  g.g_mult <- g.g_mult + 1
              | None -> assert false)
          (body ());
        Key_tbl.iter
          (fun key () ->
            Stats.incr Stats.Aggregate_reprobe;
            match backing_find backing key with
            | Some g when g.g_mult = 0 -> drop backing key
            | _ -> ())
          reprobe
      end);
  if !removed then
    match t.contents with
    | Rows backing -> backing_compact backing
    | Groups backing -> backing_compact backing

(* ---- transactional batches ---- *)

let begin_txn t =
  match t.txn with
  | Some _ -> invalid_arg "View.begin_txn: transaction already active"
  | None ->
      t.txn <-
        Some
          {
            tx_batches = t.batches;
            tx_added = [];
            tx_touched = [];
            tx_seen = Key_tbl.create 8;
          }

let commit_txn t = t.txn <- None

let backing_remove_added : type v. v backing -> Value.t list list -> unit =
 fun b keys ->
  match b with
  | Hash (tbl, order) ->
      (* the added keys are exactly the most recent [order] pushes *)
      List.iter (Key_tbl.remove tbl) keys;
      Vec.truncate order (Vec.length order - List.length keys)
  | Tree tree -> List.iter (fun key -> ignore (Key_tree.remove tree key)) keys

let rollback_txn t =
  match t.txn with
  | None -> invalid_arg "View.rollback_txn: no active transaction"
  | Some tx ->
      (match t.contents with
      | Rows backing ->
          backing_remove_added backing tx.tx_added;
          List.iter
            (fun (key, mult, _) ->
              match backing_find backing key with
              | Some r -> r := mult
              | None -> assert false (* touched keys were pre-existing *))
            tx.tx_touched
      | Groups backing ->
          backing_remove_added backing tx.tx_added;
          List.iter
            (fun (key, mult, saved) ->
              match backing_find backing key with
              | Some g ->
                  g.g_mult <- mult;
                  Array.blit saved 0 g.g_states 0 (Array.length saved)
              | None -> assert false (* touched keys were pre-existing *))
            tx.tx_touched);
      t.batches <- tx.tx_batches;
      t.txn <- None

let of_initial ?index ?heavy_threshold def initial =
  let t = create ?index ?heavy_threshold def in
  apply_delta t initial;
  t.batches <- 0;
  t

let row_of t key states =
  Tuple.make
    (key
    @ List.mapi
        (fun i (c : Aggregate.call) -> Aggregate.final c.func states.(i))
        t.aggs)

let lookup t key =
  match t.contents with
  | Rows backing ->
      Option.map (fun (_ : int ref) -> Tuple.make key) (backing_find backing key)
  | Groups backing ->
      Option.map (fun g -> row_of t key g.g_states) (backing_find backing key)

let multiplicity t key =
  match t.contents with
  | Rows backing -> (
      match backing_find backing key with Some r -> !r | None -> 0)
  | Groups backing -> (
      match backing_find backing key with Some g -> g.g_mult | None -> 0)

let size t =
  match t.contents with
  | Rows backing -> backing_size backing
  | Groups backing -> backing_size backing

let iter f t =
  match t.contents with
  | Rows backing ->
      backing_iter (fun key (_ : int ref) -> f (Tuple.make key)) backing
  | Groups backing ->
      backing_iter (fun key g -> f (row_of t key g.g_states)) backing

let to_list t =
  let acc = ref [] in
  iter (fun tu -> acc := tu :: !acc) t;
  List.rev !acc

let materialize t =
  let rel = Relation.create ~name:(name t) ~schema:(schema t) () in
  iter (fun tu -> ignore (Relation.insert rel tu)) t;
  rel

let maintained_batches t = t.batches

type dump =
  | Groups_dump of (Value.t list * Aggregate.state list) list
  | Rows_dump of Value.t list list

let dump t =
  match t.contents with
  | Rows backing ->
      let acc = ref [] in
      backing_iter (fun key (_ : int ref) -> acc := key :: !acc) backing;
      Rows_dump (List.rev !acc)
  | Groups backing ->
      let acc = ref [] in
      backing_iter
        (fun key g -> acc := (key, Array.to_list g.g_states) :: !acc)
        backing;
      Groups_dump (List.rev !acc)

let load t dump =
  if size t <> 0 then invalid_arg "View.load: view is not empty";
  match t.contents, dump with
  | Rows backing, Rows_dump keys ->
      List.iter (fun key -> backing_add backing key (ref 1)) keys
  | Groups backing, Groups_dump groups ->
      List.iter
        (fun (key, states) ->
          if List.length states <> List.length t.aggs then
            invalid_arg "View.load: aggregate-state arity mismatch";
          backing_add backing key
            { g_mult = 1; g_states = Array.of_list states })
        groups
  | Rows _, Groups_dump _ | Groups _, Rows_dump _ ->
      invalid_arg "View.load: dump shape does not match the view kind"

(* ---- multiplicity-preserving dumps (retraction undo / snapshots) ----

   {!dump}/{!load} predate ℤ-weighted deltas and project the hidden
   multiplicities out (load defaults them to 1); these variants carry
   them, so a view restored through [restore_w] maintains correctly
   under later retractions. *)

type dump_w =
  | Groups_dump_w of (Value.t list * int * Aggregate.state list) list
  | Rows_dump_w of (Value.t list * int) list

let dump_w t =
  match t.contents with
  | Rows backing ->
      let acc = ref [] in
      backing_iter (fun key r -> acc := (key, !r) :: !acc) backing;
      Rows_dump_w (List.rev !acc)
  | Groups backing ->
      let acc = ref [] in
      backing_iter
        (fun key g -> acc := (key, g.g_mult, Array.to_list g.g_states) :: !acc)
        backing;
      Groups_dump_w (List.rev !acc)

let load_w t dump =
  if size t <> 0 then invalid_arg "View.load_w: view is not empty";
  match t.contents, dump with
  | Rows backing, Rows_dump_w keys ->
      List.iter (fun (key, mult) -> backing_add backing key (ref mult)) keys
  | Groups backing, Groups_dump_w groups ->
      List.iter
        (fun (key, mult, states) ->
          if List.length states <> List.length t.aggs then
            invalid_arg "View.load_w: aggregate-state arity mismatch";
          backing_add backing key
            { g_mult = mult; g_states = Array.of_list states })
        groups
  | Rows _, Groups_dump_w _ | Groups _, Rows_dump_w _ ->
      invalid_arg "View.load_w: dump shape does not match the view kind"

let backing_clear : type v. v backing -> unit = function
  | Hash (tbl, order) ->
      Key_tbl.reset tbl;
      Vec.clear order
  | Tree tree ->
      (* Btree has no [clear]; drain it key by key *)
      List.iter
        (fun (key, _) -> ignore (Key_tree.remove tree key))
        (Key_tree.to_list tree)

let restore_w t dump =
  (match t.contents with
  | Rows backing -> backing_clear backing
  | Groups backing -> backing_clear backing);
  load_w t dump

let pp ppf t =
  Format.fprintf ppf "@[<v2>view %a [%d rows, %d batches]" Sca.pp t.def (size t)
    t.batches;
  iter (fun tu -> Format.fprintf ppf "@,%a" (Tuple.pp_with (schema t)) tu) t;
  Format.fprintf ppf "@]"
