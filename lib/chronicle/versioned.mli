open Relational

(** Versioned relations with the proactive-update discipline of §2.3.

    Conceptually each relation has one temporal version per update; a
    join between a chronicle and a relation is an implicit temporal
    join — each chronicle tuple sees the relation version current at
    its sequence number.  Because the chronicle model admits only
    {e proactive} updates, maintenance always reads the {e current}
    version and no version history is ever needed by the engine.

    This module enforces the discipline: an update is stamped with the
    group watermark at which it takes effect.  Updates effective at a
    {e future} sequence number are queued and applied when the
    watermark reaches them; a request to change the past raises
    {!Retroactive_update} (the paper excludes such updates from the
    model).  A replayable forward log supports [as_of] reconstruction
    for tests and audits — the engine itself never uses it. *)

type t

exception Retroactive_update of { effective : Seqnum.t; watermark : Seqnum.t }

val create :
  group:Group.t ->
  name:string ->
  schema:Schema.t ->
  ?key:string list ->
  ?track_history:bool ->
  unit ->
  t
(** [track_history] (default true) keeps the forward log for {!as_of}. *)

val relation : t -> Relation.t
(** The current version, read by the maintenance engine. *)

val group : t -> Group.t
val name : t -> string

(** {2 Updates}

    Each takes [?effective] (default: now, i.e. visible to the next
    sequence number).  An [effective] that is ≤ the group watermark
    raises {!Retroactive_update}; one in the future is queued until
    {!flush_pending} (the database calls it on every append). *)

val insert : ?effective:Seqnum.t -> t -> Tuple.t -> unit
val delete_where : ?effective:Seqnum.t -> t -> Predicate.t -> unit
val update_where : ?effective:Seqnum.t -> t -> Predicate.t -> (Tuple.t -> Tuple.t) -> unit

val pending_count : t -> int
val flush_pending : t -> upto:Seqnum.t -> unit
(** Apply all queued updates with [effective <= upto]. *)

(** {2 Transactional marks}

    {!Db}'s atomic append path marks every relation before flushing
    future-effective updates; a mid-batch failure rolls the applied
    operations back (inverse row ops, collected while the mark is
    active) and requeues the pending list.  Every {!mark} must be
    paired with exactly one {!commit} or {!rollback}. *)

type mark

val mark : t -> mark
val commit : t -> unit
val rollback : t -> mark -> unit

val as_of : t -> Seqnum.t -> Tuple.t list
(** The version visible to tuples with the given sequence number
    (replayed from the log).  Raises [Invalid_argument] if history
    tracking is off. *)

val log_length : t -> int
