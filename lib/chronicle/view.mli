open Relational

(** Materialized persistent views with Theorem 4.4 maintenance:
    O(t · log|V|) time per batch of t body-delta tuples, O(|V|) space,
    and no access to the chronicle or the (virtual) chronicle-algebra
    body.

    The group table is backed either by a hash map (expected O(1)
    per group localization — the IM-Constant story of SCA₁) or by a
    B+-tree (worst-case O(log |V|), Theorem 4.4's bound, plus ordered
    iteration); choose with [~index]. *)

type t

val create : ?index:Index.kind -> ?heavy_threshold:int -> Sca.t -> t
(** Materialize an (initially empty) persistent view.  Default backing
    index is [Hash].  [heavy_threshold] is passed to {!Delta.compile}
    when the body Δ-plan is built: the promotion bar of the heavy-light
    key partition its key-join sites carry ([0] = adaptive default). *)

val of_initial : ?index:Index.kind -> ?heavy_threshold:int -> Sca.t -> Tuple.t list -> t
(** Materialize over an existing body value (used when a view is
    defined after chronicles already carry retained history): folds the
    given body tuples as one initial delta. *)

val def : t -> Sca.t
val name : t -> string
val schema : t -> Schema.t
val index_kind : t -> Index.kind

val apply_delta : t -> Tuple.t list -> unit
(** Fold a batch of body-delta tuples (from [Delta.run]) into the
    materialization. *)

val apply_weighted : t -> body:(unit -> Tuple.t list) -> (Tuple.t * int) list -> unit
(** Fold a ℤ-weighted body delta: weight [w > 0] adds [w] occurrences
    of the tuple, [w < 0] retracts [-w]; entries whose hidden
    multiplicity reaches zero disappear from the view.  COUNT/SUM-class
    aggregates invert in O(1) per call ({!Aggregate.unstep}); a MIN/MAX
    group losing its extremum is recomputed from a single evaluation of
    [body ()] — the full body output over the already-mutated base —
    bumping [Stats.Aggregate_reprobe] once per such group.  Raises
    [Invalid_argument] on a retraction the materialization cannot
    account for (absent row/group or negative multiplicity) and when a
    transactional batch is active: [Db.retract]'s undo is the coarse
    {!dump_w}/{!restore_w} pair, never the append txn log. *)

val multiplicity : t -> Value.t list -> int
(** Hidden ℤ-multiplicity of the entry with the given logical key
    (0 if absent).  The weight=+1 append path only ever increments it;
    observable set semantics and aggregate results are unchanged. *)

(** {2 Plan cache}

    Each view carries at most one compiled Δ-plan for its body
    ({!Delta.compile}); the transaction path replays it per batch, so
    steady-state maintenance performs zero schema derivations,
    predicate compilations or projector constructions.  The cache is
    keyed by the view object itself: redefining a view builds a new
    view, hence a fresh compile ([Stats.Plan_cache_miss] +
    [Stats.Plan_compile]). *)

val plan : t -> Delta.plan
(** The cached body plan; compiles on first use
    ([Stats.Plan_cache_miss]), afterwards bumps
    [Stats.Plan_cache_hit]. *)

val maintain : t -> sn:Seqnum.t -> batch:Delta.batch -> unit
(** [apply_delta t (Delta.run (plan t) ~sn ~batch)]: the whole
    per-batch maintenance step through the plan cache. *)

(** {2 Transactional batches}

    {!Db.append} brackets the maintenance of every affected view with
    [begin_txn] … [commit_txn], and calls [rollback_txn] on all of them
    if {e any} fold raises mid-batch — so no partially-maintained view
    (nor a fully-maintained sibling of a failed one) is ever
    observable.  While a transaction is active the view records an undo
    log: keys its folds create and pre-touch copies of the aggregate
    states they step.  Cost is O(batch delta), zero when the batch does
    not reach the view. *)

val begin_txn : t -> unit
(** Raises [Invalid_argument] if a transaction is already active. *)

val commit_txn : t -> unit
(** Keep the folds since {!begin_txn}; drop the undo log.  No-op
    without an active transaction. *)

val rollback_txn : t -> unit
(** Undo every fold since {!begin_txn}: remove created groups, restore
    touched aggregate states, reset the batch counter.  Raises
    [Invalid_argument] without an active transaction. *)

val lookup : t -> Value.t list -> Tuple.t option
(** Summary-query point lookup by the view's logical key
    ([Sca.group_attrs]): the paper's "sub-second summary query".  For
    projection views the key is the full tuple. *)

val size : t -> int
(** |V|: number of materialized rows (groups). *)

val to_list : t -> Tuple.t list
(** Current contents.  Hash-backed views list in insertion order,
    tree-backed views in key order. *)

val iter : (Tuple.t -> unit) -> t -> unit

val materialize : t -> Relation.t
(** Copy the current contents into a fresh relation (for ad-hoc [Ra]
    queries over the view). *)

val maintained_batches : t -> int
(** Number of delta batches folded in so far. *)

(** {2 Snapshots}

    Persistent views must survive restarts without replaying the
    chronicle (which was never stored); dump/load expose the exact
    materialization state. *)

type dump =
  | Groups_dump of (Value.t list * Aggregate.state list) list
  | Rows_dump of Value.t list list

val dump : t -> dump
val load : t -> dump -> unit
(** Restore into a freshly created view of the same definition; raises
    [Invalid_argument] if the view is non-empty or the dump shape does
    not match the summarization kind.  Multiplicities are projected out
    by [dump] and default to 1 on [load]; a view that must keep
    maintaining under retraction goes through {!dump_w}/{!load_w}. *)

(** Multiplicity-preserving variants: the state captured here restores
    to a view that stays correct under later ℤ-weighted deltas. *)
type dump_w =
  | Groups_dump_w of (Value.t list * int * Aggregate.state list) list
  | Rows_dump_w of (Value.t list * int) list

val dump_w : t -> dump_w

val load_w : t -> dump_w -> unit
(** Same contract as {!load} (empty view, matching shape/arity). *)

val restore_w : t -> dump_w -> unit
(** Clear the view and {!load_w} the dump — the all-or-nothing undo
    primitive of [Db.retract]. *)

val pp : Format.formatter -> t -> unit
