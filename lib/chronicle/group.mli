(** Chronicle groups.

    A chronicle group is a collection of chronicles whose sequence
    numbers are drawn from one domain, with the invariant that an insert
    into {e any} member must carry a sequence number greater than the
    sequence number of {e every} tuple already in the group (§4).  The
    group owns the watermark; union, difference and sequence joins are
    only permitted among members of one group.

    The group also carries the current {e chronon} (§2.1): the temporal
    instant associated with the sequence numbers being issued, which the
    periodic-view machinery (§5.1) maps to calendar intervals. *)

type t

val create : ?clock_start:Seqnum.chronon -> string -> t
val name : t -> string

val watermark : t -> Seqnum.t
(** Greatest sequence number issued so far ([Seqnum.zero] initially). *)

val now : t -> Seqnum.chronon
(** Current chronon. *)

val advance_clock : t -> Seqnum.chronon -> unit
(** Move the clock forward; raises [Invalid_argument] if moving back. *)

exception Stale_sequence_number of { given : Seqnum.t; watermark : Seqnum.t }

val next_sn : t -> Seqnum.t
(** Issue a fresh sequence number ([watermark + 1]) and advance the
    watermark.  All tuples of one append batch — possibly spanning
    several chronicles of the group — share the issued number. *)

val claim_sn : t -> Seqnum.t -> unit
(** Use a caller-chosen (possibly sparse) sequence number; it must
    exceed the watermark, else {!Stale_sequence_number} is raised. *)

val rollback_watermark : t -> Seqnum.t -> unit
(** Restore the watermark to an earlier value — the transactional-append
    rollback path ({!Db.append} undoing a failed batch).  Raises
    [Invalid_argument] if the given value exceeds the current
    watermark. *)

val same : t -> t -> bool
