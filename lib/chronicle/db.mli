open Relational

(** The chronicle database system (Definition 2.1): a quadruple
    (𝒞, ℛ, ℒ, 𝒱) of chronicles, relations, the view-definition
    language (here: {!Sca}, statically classified by {!Classify}), and
    persistent views.

    [append] is the transaction path: record the batch, flush
    future-effective relation updates that have come due, identify the
    affected persistent views through the registry (§5.2), and fold the
    Δ of each one — reading neither stored chronicle history nor any
    intermediate view.

    The path is {e atomic}: if anything raises while the batch is being
    recorded or folded, the group watermark, the batch chronicles, every
    relation and every touched view are rolled back to their pre-batch
    state before the exception propagates — no partially-maintained view
    is ever observable ([Stats.Rollback] counts such aborts).
    Subscribers ({!Chron.on_append}) and batch hooks ({!on_batch}) run
    strictly after commit.  A durability layer can watch the path
    through {!set_txn_sink} (write-ahead journaling) and inject faults
    through {!set_fold_probe}. *)

type t

exception Unknown of string

exception Read_only of string
(** A mutation was attempted on a database in degraded (read-only)
    mode — carries the operation name and the reason the mode was
    entered.  See {!set_read_only}. *)

val create : ?default_group:string -> ?jobs:int -> ?heavy_threshold:int -> unit -> t
(** A database starts with one chronicle group (named "main" unless
    overridden).

    [jobs] (default [1]) is the maintenance parallelism degree: the
    number of domains across which the Δ-folds of affected views are
    partitioned on each append, and across which initial view
    materialization splits its scan.  [0] means
    [Domain.recommended_domain_count ()].  At [jobs = 1] the
    transaction path is the historical sequential one — no pool, no
    task handoff — and the system's observable behaviour (including
    the per-view insertion order of every store) is byte-identical to
    a build without the parallel layer.  At [jobs > 1] each affected
    view is still folded {e wholly} by exactly one task, so per-view
    results are identical to the sequential run; only the interleaving
    {e across} views changes.

    [heavy_threshold] (default [0]) is the promotion bar of the
    heavy-light key partition every view's key-join Δ-sites carry
    ({!Relational.Skew}, passed through {!Delta.compile}): [0] =
    adaptive, positive = fixed bar, a very large value disables
    partitioning in practice.  The threshold never changes view
    contents or order — only where the per-append probe work lands. *)

val jobs : t -> int
(** The effective parallelism degree ([>= 1]; [?jobs:0] has already
    been resolved to the recommended domain count). *)

val heavy_threshold : t -> int
(** The configured heavy-light promotion bar ([0] = adaptive). *)

val pool : t -> Exec.Pool.t
(** The database's domain pool.  Exposed so evaluation layers above the
    database (ad-hoc queries in the language front end) can run
    {!Plan.compile_parallel} plans on the same pool the maintenance
    path uses, instead of spinning up their own domains. *)

(** {2 Catalog} *)

val add_group : t -> ?clock_start:Seqnum.chronon -> string -> Group.t
val group : t -> string -> Group.t
val default_group : t -> Group.t

val add_chronicle :
  t ->
  ?group:string ->
  ?retention:Chron.retention ->
  name:string ->
  Schema.t ->
  Chron.t

val chronicle : t -> string -> Chron.t

val add_relation :
  t ->
  ?group:string ->
  name:string ->
  schema:Schema.t ->
  ?key:string list ->
  unit ->
  Versioned.t

val relation : t -> string -> Versioned.t

val group_names : t -> string list
val chronicle_names : t -> string list
val relation_names : t -> string list
(** Catalog enumeration (sorted), for snapshots and tooling. *)

val define_view :
  t -> ?index:Index.kind -> ?tier_limit:Classify.im_class -> Sca.t -> View.t
(** Register and materialize a persistent view.  The definition is
    classified; if its view class is not contained in [tier_limit]
    (default [IM_poly_r], the largest |C|-independent class) the
    definition is rejected with [Ca.Ill_formed] — this is how the
    system guarantees its own transaction-rate envelope (§3).  If the
    view's chronicles already carry retained history the initial state
    is computed from it (requires complete retention). *)

val view : t -> string -> View.t

val drop_view : t -> string -> unit
(** Stop maintaining and forget a persistent view.  Raises {!Unknown}
    if absent. *)

val views : t -> View.t list
val classify_view : t -> string -> Classify.report
val registry : t -> Registry.t

(** {2 Transactions} *)

val append : t -> string -> Tuple.t list -> Seqnum.t
(** Append one batch of user tuples (without [sn]) to the named
    chronicle and maintain all affected persistent views. *)

val append_multi : t -> ?group:string -> (string * Tuple.t list) list -> Seqnum.t
(** One batch spanning several chronicles of one group under a single
    sequence number. *)

val append_at : t -> ?group:string -> sn:Seqnum.t -> (string * Tuple.t list) list -> unit
(** Like {!append_multi} with a caller-chosen sequence number (the
    journal-replay path of recovery: batches are re-applied under their
    original numbers).  Raises [Group.Stale_sequence_number] if [sn]
    does not exceed the group watermark. *)

val append_group : t -> ?group:string -> (string * Tuple.t list) list list -> Seqnum.t list
(** Group commit: apply several append batches as {e one atomic unit}
    under a single write-ahead record ([Ev_group] — one journal append,
    one sync for the whole group).  Each batch receives its own fresh
    consecutive sequence number (returned in order), is recorded into
    its chronicles and folded into the affected views exactly as if
    appended alone; the per-view fold chains of the combined Δ are
    fanned out across the maintenance pool.  Commit is all-or-nothing:
    a failure anywhere rolls the entire group back (chronicles,
    relations, views, watermark), emits [Ev_abort], and re-raises —
    never a partial group.  Chronicle subscribers and batch hooks run
    strictly post-commit, walking the group in record order; callers
    for whom {e per-batch} hook timing is observable should check
    {!has_batch_hooks} and fall back to per-append commits.
    Raises [Invalid_argument] on an empty group, an empty batch, or a
    chronicle outside [group] — before anything is journaled. *)

val has_batch_hooks : t -> bool
(** Whether any {!on_batch} hook is registered (see {!append_group}). *)

val insert_rows : t -> string -> Tuple.t list -> unit
(** Insert a batch of rows into the named relation, effective
    immediately, under the write-ahead discipline: every row is
    type-checked against the relation schema first (raising
    [Invalid_argument] before anything is journaled), then [Ev_insert]
    is emitted, then the rows land under an undo mark — a failure
    mid-batch (e.g. [Relation.Key_violation] on a keyed relation) rolls
    every row of the batch back, emits [Ev_abort] (so the journal
    erases the write-ahead record) and re-raises.  This is the {e only}
    relation-row write path that survives crash recovery; mutating a
    relation through {!Versioned.insert} directly bypasses the journal
    (the pre-PR 9 [INSERT INTO] durability hole).  Raises {!Unknown} if
    the relation is not in the catalog, {!Read_only} in degraded
    mode. *)

val retract : t -> string -> Tuple.t list -> int
(** [retract t chronicle rows] removes one stored occurrence of each
    given user row from the chronicle's retained history and propagates
    the change to every affected persistent view as a ℤ-weighted
    (weight −1) delta; returns the number of rows retracted.  Each
    requested row resolves to its {e newest} unclaimed stored
    occurrence (deterministic); the claims are applied grouped by
    sequence number, ascending.

    Maintenance cost: COUNT/SUM-class aggregates invert in O(1) per
    group ({!Relational.Aggregate.unstep}); a MIN/MAX group that loses
    its extremum is recomputed from retained history (one body
    evaluation per batch, [Stats.Aggregate_reprobe] per group); views
    over non-linear operators (∪, −, ⋈_SN, GROUPBY) diff their at-sn
    slices ([Stats.Weight_cancel]); history-reading views are
    rematerialized outright.  One successful call bumps
    [Stats.Retract_apply] once.  The append path is untouched: pure
    append workloads never move any of these counters.

    Write-ahead discipline: [Ev_retract] is emitted before any state
    mutates; on any failure the chronicle store and every affected view
    are restored wholesale from pre-mutation snapshots, [Ev_abort] is
    emitted (the journal erases the write-ahead record) and the
    exception re-raises — all-or-nothing, like appends.  Windowed and
    periodic views and event detectors are {e not} maintained under
    retraction (no subscriber notification fires: the retraction is a
    correction to history, not a new observation).

    Raises [Invalid_argument] if the chronicle's retention is not
    [Full], a row fails the schema, or a row has no retained occurrence
    left; {!Unknown} if the chronicle is not in the catalog;
    {!Read_only} in degraded mode.  Validation failures precede the
    journal record. *)

val replay_retract : t -> string -> (Seqnum.t * Tuple.t list) list -> bool
(** Recovery replay of a journaled [Ev_retract]: re-apply the resolved
    entries ([(sn, user rows)]).  Idempotence marker: occurrences
    already absent from the store (the checkpoint was taken after the
    retraction applied) are skipped; returns [false] — record was a
    complete no-op — or [true] if any surviving subset applied. *)

val advance_clock : t -> ?group:string -> Seqnum.chronon -> unit

(** {2 Replay}

    Recovery re-applies journaled append batches.  {!append_at} does it
    one transactional batch at a time; {!replay_appends} applies a run
    of batches with the per-view Δ-folds scheduled across the
    maintenance pool. *)

exception Replay_error of { index : int; error : exn }
(** A record of a {!replay_appends} run failed.  [index] is the
    position of the {e lowest} failing entry in the submitted list — a
    deterministic choice at every parallelism degree, because distinct
    views' fold chains do not interact, so which folds fail is
    independent of scheduling. *)

type replay_entry = {
  rgroup : string;  (** chronicle group name *)
  rsn : Seqnum.t;  (** the batch's original sequence number *)
  rbatch : (string * Tuple.t list) list;  (** user tuples, untagged *)
}

val replay_appends : t -> replay_entry list -> bool array
(** Re-apply the entries in order; return per-entry [true] = applied,
    [false] = skipped (its sequence number is already at or below the
    group watermark — the idempotent-recovery case).

    Recording is strictly sequential and in submission order; the
    Δ-folds are grouped into per-view chains (each view folds its
    batches in record order) and run on the database's pool — at
    [jobs = 1] inline, so the folds a view performs and the state it
    reaches are identical at every degree.  A view whose Δ reads
    retained history beyond its batch ({!Ca.reads_history}) forces a
    fold barrier before the next entry is recorded, preserving
    sequential ring-retention semantics.  If batch hooks are registered
    or a relation holds pending future-effective updates, the whole run
    degrades to {!append_at}-equivalent sequential transactions
    (order-sensitive observers); otherwise chronicle subscribers fire
    in record order after each fold barrier rather than interleaved
    with recording.

    {b Not} transactional across entries: a failure raises
    {!Replay_error} carrying the lowest failing index and leaves the
    database partially replayed — the intended caller (recovery)
    discards the in-memory database on failure. *)

val replay_group : t -> replay_entry list -> bool array
(** Recovery twin of {!append_group}: re-apply a journaled group record
    atomically under its original sequence numbers.  Entries at or
    below the group watermark are skipped ([false] — the idempotent
    recovery case); the remainder applies as one unit.  All entries
    must name the same chronicle group.  On failure the whole group is
    rolled back and the exception re-raised, so recovery can treat a
    dying process's final group as applied-or-dropped, never torn. *)

(** {2 Transaction events}

    The durability layer observes the database through a single sink.
    [Ev_append] is emitted {e before} any state mutation (the
    write-ahead discipline); [Ev_abort] follows a rolled-back batch so
    the journal can erase its write-ahead record; catalog and clock
    events are emitted after the operation succeeds.  At most one sink
    is installed at a time. *)

type txn_event =
  | Ev_append of {
      group : string;
      sn : Seqnum.t;
      batch : (string * Tuple.t list) list;  (** user tuples, untagged *)
    }
  | Ev_group of {
      group : string;
      entries : (Seqnum.t * (string * Tuple.t list) list) list;
          (** one group commit: per-batch (sequence number, user tuples);
              emitted write-ahead like [Ev_append], erased by the
              [Ev_abort] that follows a group rollback *)
    }
  | Ev_insert of { relation : string; rows : Tuple.t list; at : int }
      (** one {!insert_rows} batch: emitted write-ahead like [Ev_append];
          [at] is the relation's live cardinality {e before} the insert —
          replay applies the record only while the current cardinality is
          at or below [at] (a checkpoint taken after the insert already
          holds the rows), the insert-path idempotence discipline.
          Erased by the [Ev_abort] that follows a rolled-back batch. *)
  | Ev_retract of {
      chronicle : string;
      entries : (Seqnum.t * Tuple.t list) list;
          (** one {!retract} operation, already resolved to stored
              occurrences: per sequence number, the user tuples whose
              occurrences were claimed.  Emitted write-ahead; replayed
              via {!replay_retract} (occurrence-presence is the
              idempotence marker); erased by the [Ev_abort] that
              follows a rolled-back retraction. *)
    }
  | Ev_clock of { group : string; chronon : Seqnum.chronon }
  | Ev_add_group of { name : string; clock_start : Seqnum.chronon option }
  | Ev_add_chronicle of {
      name : string;
      group : string;
      retention : Chron.retention;
      schema : Schema.t;
    }
  | Ev_add_relation of {
      name : string;
      group : string;
      schema : Schema.t;
      key : string list option;
    }
  | Ev_define_view of { def : Sca.t; index : Index.kind }
  | Ev_drop_view of { name : string }
  | Ev_abort of { group : string; sn : Seqnum.t }

val set_txn_sink : t -> (txn_event -> unit) option -> unit
(** Install (or, with [None], remove) the event sink. *)

val set_fold_probe : t -> (view:string -> sn:Seqnum.t -> unit) option -> unit
(** Install a probe called immediately before each affected view's fold
    — the fault-injection hook: a probe that raises aborts the batch
    mid-maintenance, exercising the rollback path. *)

val set_read_only : t -> string option -> unit
(** [set_read_only t (Some reason)] puts the database in degraded
    mode: every mutating entry point — appends, group commits, replay,
    clock advances, catalog changes — raises {!Read_only} before
    touching any state, while queries keep serving.  [None] restores
    normal operation.  Set by salvage recovery (damaged storage was
    quarantined, so accepting new writes could silently diverge from
    what a later repair restores) and by the durability layer when
    storage sync failures exhaust their retry budget. *)

val read_only : t -> string option
(** The degraded-mode reason, if the database is read-only. *)

val on_batch : t -> (sn:Seqnum.t -> batch:Delta.batch -> unit) -> unit
(** Register a hook that sees every append batch after the registered
    persistent views are maintained; this is how periodic-view families
    and other extensions subscribe to the transaction path. *)

(** {2 Summary queries} *)

val summary : t -> view:string -> Value.t list -> Tuple.t option
(** Point lookup by the view's logical key — the paper's motivating
    "sub-second summary query", answered entirely from the persistent
    view. *)

val view_contents : t -> string -> Tuple.t list
