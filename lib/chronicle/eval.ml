open Relational

let chronicle_tuples c =
  let complete =
    match Chron.retention c with
    | Chron.Full -> true
    | Chron.Window n -> Chron.total_appended c <= n
    | Chron.Discard -> Chron.total_appended c = 0
  in
  if not complete then
    raise
      (Chron.Not_retained
         (Printf.sprintf
            "%s: %d tuples appended but only %d retained; full evaluation \
             needs complete history"
            (Chron.name c)
            (Chron.total_appended c)
            (Chron.stored_count c)));
  Chron.stored c

(* Evaluation shares the generic operator semantics with the relational
   substrate by translating to an [Ra] expression over inline constants. *)
let rec to_ra expr =
  match expr with
  | Ca.Chronicle c -> Ra.Const (Chron.schema c, chronicle_tuples c)
  | Ca.Select (p, e) -> Ra.Select (p, to_ra e)
  | Ca.Project (attrs, e) -> Ra.Project (attrs, to_ra e)
  | Ca.SeqJoin (l, r) ->
      Ra.EquiJoin ([ (Seqnum.attr, Seqnum.attr) ], to_ra l, to_ra r)
  | Ca.Union (l, r) -> Ra.Union (to_ra l, to_ra r)
  | Ca.Diff (l, r) -> Ra.Diff (to_ra l, to_ra r)
  | Ca.GroupBySeq (gl, al, e) -> Ra.GroupBy (gl, al, to_ra e)
  | Ca.ProductRel (e, r) -> Ra.Product (to_ra e, Ra.Rel r)
  | Ca.KeyJoinRel (e, r, pairs) -> Ra.EquiJoin (pairs, to_ra e, Ra.Rel r)
  | Ca.CrossChron (l, r) -> Ra.Product (to_ra l, Ra.Prefix ("r", to_ra r))
  | Ca.ThetaJoinChron (p, l, r) ->
      Ra.ThetaJoin (p, to_ra l, Ra.Prefix ("r", to_ra r))

(* Full evaluation inlines the chronicles' retained history as [Const]
   collections, so a translation (and its physical plan) is valid only
   for the chronicle contents at translation time: compile once per
   call, never cache across appends. *)
let eval expr = Plan.run (Plan.compile (to_ra expr))

(* Bulk evaluation on a domain pool: a top-level GROUPBY (the common
   shape of a view body over retained history) splits its scan into
   contiguous ranges folded in parallel and merged order-preservingly
   ({!Plan.compile_parallel}).  Degree 1 is exactly {!eval}. *)
let eval_parallel pool expr = Plan.run (Plan.compile_parallel pool (to_ra expr))

let eval_before expr sn =
  let restrict e =
    match e with
    | Ca.Chronicle c ->
        let pos = Schema.pos (Chron.schema c) Seqnum.attr in
        Ra.Const
          ( Chron.schema c,
            List.filter
              (fun tu -> Seqnum.of_value (Tuple.get tu pos) < sn)
              (chronicle_tuples c) )
    | _ -> assert false
  in
  let rec go expr =
    match expr with
    | Ca.Chronicle _ -> restrict expr
    | Ca.Select (p, e) -> Ra.Select (p, go e)
    | Ca.Project (attrs, e) -> Ra.Project (attrs, go e)
    | Ca.SeqJoin (l, r) ->
        Ra.EquiJoin ([ (Seqnum.attr, Seqnum.attr) ], go l, go r)
    | Ca.Union (l, r) -> Ra.Union (go l, go r)
    | Ca.Diff (l, r) -> Ra.Diff (go l, go r)
    | Ca.GroupBySeq (gl, al, e) -> Ra.GroupBy (gl, al, go e)
    | Ca.ProductRel (e, r) -> Ra.Product (go e, Ra.Rel r)
    | Ca.KeyJoinRel (e, r, pairs) -> Ra.EquiJoin (pairs, go e, Ra.Rel r)
    | Ca.CrossChron (l, r) -> Ra.Product (go l, Ra.Prefix ("r", go r))
    | Ca.ThetaJoinChron (p, l, r) ->
        Ra.ThetaJoin (p, go l, Ra.Prefix ("r", go r))
  in
  Plan.run (Plan.compile (go expr))
