open Relational

(** The chronicle algebra (CA) of Definition 4.1, with its variants
    CA₁ and CA_⋈ (Definition 4.2).

    Every CA expression maps chronicles (and relations) to a chronicle
    in the same chronicle group (Lemma 4.1).  The constructors mirror
    the paper's operators:

    - selection with a predicate that is a disjunction of comparisons;
    - projection retaining the sequencing attribute;
    - natural equijoin of two chronicles on the sequencing attribute;
    - union and difference within one chronicle group;
    - grouping/aggregation with the sequencing attribute grouped on;
    - cartesian product with a relation (implicitly a temporal join —
      each chronicle tuple sees the relation version current at its
      sequence number, §2.3); and, for CA_⋈, the key-join restriction
      guaranteeing at most a constant number of matches.

    Two additional constructors, {!CrossChron} and {!ThetaJoinChron},
    are deliberately {e outside} CA: Theorem 4.3 shows that adding
    either the cross product or a non-equijoin between chronicles breaks
    the chronicle-size independence.  They are representable so that the
    classifier can reject them and the benchmarks can measure exactly
    how they break (Experiment E1); {!check} refuses them unless
    [allow_non_ca] is set. *)

type t =
  | Chronicle of Chron.t  (** a base chronicle *)
  | Select of Predicate.t * t
  | Project of string list * t
      (** attribute list must include [Seqnum.attr] *)
  | SeqJoin of t * t
      (** natural equijoin on the sequencing attribute; the right-hand
          [sn] is projected out; remaining attribute names must be
          disjoint *)
  | Union of t * t
  | Diff of t * t
  | GroupBySeq of string list * Aggregate.call list * t
      (** grouping list must include [Seqnum.attr] *)
  | ProductRel of t * Relation.t
      (** [C × R]: full CA; result size grows by a factor |R| *)
  | KeyJoinRel of t * Relation.t * (string * string) list
      (** CA_⋈: equijoin [(chronicle attr, relation attr)] whose right
          side covers a key of [R], so at most one tuple matches; the
          relation's join attributes are dropped from the result *)
  | CrossChron of t * t  (** NOT in CA (Theorem 4.3) *)
  | ThetaJoinChron of Predicate.t * t * t  (** NOT in CA (Theorem 4.3) *)

exception Ill_formed of string

val schema_of : t -> Schema.t
(** Schema of the expression's result (for chronicle-valued expressions,
    includes [Seqnum.attr]; the non-CA constructors yield two sequencing
    columns, the right one renamed ["r.sn"]).  Raises {!Ill_formed} on
    type errors. *)

val check : ?allow_non_ca:bool -> t -> unit
(** Validate well-formedness: schemas line up, projections and grouping
    lists retain the sequencing attribute, all chronicles share one
    group, selections use the Definition 4.1 predicate form, key joins
    actually cover a key.  Raises {!Ill_formed} otherwise.  With
    [allow_non_ca:true], {!CrossChron}/{!ThetaJoinChron} pass structural
    checks (used only by baselines and benchmarks). *)

val group_of : t -> Group.t
(** The chronicle group of the expression (Lemma 4.1). Raises
    {!Ill_formed} if members disagree. *)

val chronicles : t -> Chron.t list
(** Base chronicles mentioned, without duplicates. *)

val relations : t -> Relation.t list

val depends_on : t -> Chron.t -> bool

val reads_history : t -> bool
(** [true] iff the expression's Δ-maintenance reads retained chronicle
    history beyond the batch being folded — i.e. it contains one of the
    non-CA joins ({!CrossChron}/{!ThetaJoinChron}), whose Δ pairs the
    batch against every earlier retained tuple.  Views over CA proper
    fold each batch from the batch alone (Theorem 4.2), which is what
    lets the replay scheduler pre-record later batches before folding
    earlier ones; a history-reading view forces a sequential barrier
    (recording batch [i+1] could evict ring-retained tuples that batch
    [i]'s fold still needs). *)

val unions : t -> int
(** Number of union operators (the [u] of Theorem 4.2). *)

val joins : t -> int
(** Number of equijoins and (relation or chronicle) products (the [j] of
    Theorem 4.2). *)

val pp : Format.formatter -> t -> unit
