type t = {
  name : string;
  mutable watermark : Seqnum.t;
  mutable clock : Seqnum.chronon;
}

exception Stale_sequence_number of { given : Seqnum.t; watermark : Seqnum.t }

let create ?(clock_start = 0) name =
  { name; watermark = Seqnum.zero; clock = clock_start }

let name t = t.name
let watermark t = t.watermark
let now t = t.clock

let advance_clock t chronon =
  if chronon < t.clock then
    invalid_arg
      (Printf.sprintf "Group.advance_clock %s: %d is before current chronon %d"
         t.name chronon t.clock);
  t.clock <- chronon

let next_sn t =
  t.watermark <- t.watermark + 1;
  t.watermark

let claim_sn t sn =
  if sn <= t.watermark then
    raise (Stale_sequence_number { given = sn; watermark = t.watermark });
  t.watermark <- sn

let rollback_watermark t sn =
  if sn > t.watermark then
    invalid_arg "Group.rollback_watermark: cannot roll the watermark forward";
  t.watermark <- sn

let same a b = a == b
