(** Static incremental-maintenance complexity classification (§3,
    Proposition 3.1, Theorems 4.2/4.3/4.5).

    Given a chronicle-algebra body or a summarized view definition, the
    classifier determines the smallest language tier containing it
    (CA₁ ⊂ CA_⋈ ⊂ CA, or outside CA), the corresponding IM complexity
    class, and the concrete Theorem 4.2 cost parameters u (unions) and
    j (joins/products) with the predicted time/space formulas. *)

type tier =
  | Tier_ca1  (** CA₁: no relation operators *)
  | Tier_ca_key  (** CA_⋈: relation joins are key joins *)
  | Tier_ca  (** full CA: has a chronicle × relation product *)
  | Tier_not_ca of string  (** outside CA; the reason (Theorem 4.3) *)

type im_class =
  | IM_constant  (** O(1) per append *)
  | IM_log_r  (** O(log |R|) per append *)
  | IM_poly_r  (** polynomial in |R|, independent of |C| *)
  | IM_poly_c  (** polynomial in |C|: impractical (Prop. 3.1) *)

type report = {
  tier : tier;
  body_im : im_class;
      (** class of Δ-computation for the body (Theorem 4.2) *)
  view_im : im_class;
      (** class of full view maintenance (Theorem 4.5); for summarized
          views this folds in the O(log |V|) group localization of
          Theorem 4.4, which the paper counts as "modulo index
          lookups" *)
  unions : int;  (** u of Theorem 4.2 *)
  joins : int;  (** j of Theorem 4.2 *)
  time_formula : string;  (** predicted Δ-computation time *)
  space_formula : string;  (** predicted Δ-computation space *)
  notes : string list;
}

val ca : Ca.t -> report
(** Classify a chronicle-algebra body. *)

val sca : Sca.t -> report
(** Classify a persistent-view definition (body + summarization). *)

val tier_name : tier -> string
val im_class_name : im_class -> string

val im_subseteq : im_class -> im_class -> bool
(** The containment order IM-Constant ⊂ IM-log(R) ⊂ IM-Rᵏ ⊂ IM-Cᵏ. *)

val retract_class : Sca.t -> im_class * string list
(** Maintenance class of the view under {e retraction} (ℤ-weighted
    deltas, weight [-1]), with explanatory notes.  Linear bodies with
    COUNT/SUM-class aggregates keep their append-path class (weights
    thread through the same compiled artifacts and the aggregates
    invert exactly); MIN/MAX aggregates and non-linear body operators
    demote to at least IM-Rᵏ (extremum re-probe / at-sn slice diffing
    over retained history); history-reading bodies are IM-Cᵏ — they
    are rematerialized outright. *)

val pp_report : Format.formatter -> report -> unit
