open Relational

(** Reference (non-incremental) evaluation of chronicle-algebra
    expressions over {e retained} chronicle history.

    This is the semantics the incremental engine ({!Delta}) is checked
    against, and the engine inside the recomputation baselines.  It
    requires complete history: evaluating over a chronicle whose
    retention policy has discarded tuples raises [Chron.Not_retained].
    Every base tuple read bumps [Stats.Chronicle_scan] (via
    [Chron.scan]), which is exactly the cost the paper's languages are
    designed to avoid. *)

val chronicle_tuples : Chron.t -> Tuple.t list
(** Retained tuples of a base chronicle; raises [Chron.Not_retained] if
    the retention policy lost any part of the history. *)

val eval : Ca.t -> Tuple.t list
(** Full evaluation (including the non-CA constructors, which here pose
    no difficulty — it is only their {e incremental} maintenance that is
    expensive). *)

val eval_parallel : Exec.Pool.t -> Ca.t -> Tuple.t list
(** Bulk evaluation on a domain pool: a top-level GROUPBY (the common
    shape of a view body over retained history) splits its scan into
    contiguous ranges folded in parallel and merged order-preservingly
    ({!Plan.compile_parallel}).  Degree 1 is exactly {!eval}. *)

val eval_before : Ca.t -> Seqnum.t -> Tuple.t list
(** [eval_before e sn] = the value of [e] restricted to tuples with
    sequence number < [sn] — the "old" state used by the Δ-rules of the
    non-CA operators. *)
