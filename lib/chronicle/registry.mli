open Relational

(** Identifying affected persistent views (§5.2).

    When many views are maintained over one chronicle, each append
    should touch only the views it can actually change.  The registry
    keeps, per view and per base chronicle it depends on, a sound
    {e guard predicate}: a necessary condition on an appended tuple for
    the view's delta to be non-empty.  Guards are extracted statically
    from selection chains over the base chronicle (the analogue of
    "queries independent of updates" [LS93]); views whose body shape
    defeats extraction get the trivial guard and are always maintained
    (sound, merely less economical). *)

type t

val create : unit -> t

val register : t -> View.t -> unit
(** Raises [Invalid_argument] if a view with the same name is already
    registered.  Warms the view's Δ-plan cache ({!View.plan}) so the
    transaction path never compiles: registration pays the one
    [Stats.Plan_compile]; redefinition (unregister + register of a new
    view) pays it again. *)

val unregister : t -> string -> unit
val find : t -> string -> View.t option
(** O(1) expected (name-indexed); many-view catalogs stay cheap. *)

val views : t -> View.t list
(** In registration order. *)

val dependents : t -> Chron.t -> View.t list
(** All registered views whose body mentions the chronicle, in
    registration order. *)

val affected : t -> Chron.t -> Tuple.t list -> View.t list
(** Views that may change given the tagged tuples appended to the
    chronicle: dependents whose guard passes at least one tuple.

    The output order is {e deterministic and stable}: registration
    order, independent of any hash-table iteration order.  The parallel
    maintenance path partitions this list into contiguous per-domain
    ranges, so determinism here is what makes task ownership (and the
    lowest-index failure chosen on rollback) reproducible run to
    run. *)

(** {2 Economics counters} *)

val checked : t -> int
(** Guard evaluations performed. *)

val skipped : t -> int
(** View maintenances avoided by a failing guard. *)

val index_advice : t -> (string * string list) list
(** Per registered view, the attribute list its persistent store should
    be indexed on (the view's logical key) — the "what indices should be
    constructed" question of §5.2. *)
