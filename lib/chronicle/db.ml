exception Unknown of string

type t = {
  groups : (string, Group.t) Hashtbl.t;
  chronicles : (string, Chron.t) Hashtbl.t;
  relations : (string, Versioned.t) Hashtbl.t;
  registry : Registry.t;
  default_group : string;
  mutable batch_hooks : (sn:Seqnum.t -> batch:Delta.batch -> unit) list;
}

let unknown kind name =
  raise (Unknown (Printf.sprintf "%s %S is not in the catalog" kind name))

let create ?(default_group = "main") () =
  let t =
    {
      groups = Hashtbl.create 4;
      chronicles = Hashtbl.create 16;
      relations = Hashtbl.create 16;
      registry = Registry.create ();
      default_group;
      batch_hooks = [];
    }
  in
  Hashtbl.add t.groups default_group (Group.create default_group);
  t

let add_group t ?clock_start name =
  if Hashtbl.mem t.groups name then
    invalid_arg (Printf.sprintf "Db.add_group: group %S already exists" name);
  let g = Group.create ?clock_start name in
  Hashtbl.add t.groups name g;
  g

let group t name =
  match Hashtbl.find_opt t.groups name with
  | Some g -> g
  | None -> unknown "group" name

let default_group t = group t t.default_group

let add_chronicle t ?group:gname ?retention ~name schema =
  if Hashtbl.mem t.chronicles name then
    invalid_arg (Printf.sprintf "Db.add_chronicle: %S already exists" name);
  let g = group t (Option.value ~default:t.default_group gname) in
  let c = Chron.create ~group:g ?retention ~name schema in
  Hashtbl.add t.chronicles name c;
  c

let chronicle t name =
  match Hashtbl.find_opt t.chronicles name with
  | Some c -> c
  | None -> unknown "chronicle" name

let add_relation t ?group:gname ~name ~schema ?key () =
  if Hashtbl.mem t.relations name then
    invalid_arg (Printf.sprintf "Db.add_relation: %S already exists" name);
  let g = group t (Option.value ~default:t.default_group gname) in
  let r = Versioned.create ~group:g ~name ~schema ?key () in
  Hashtbl.add t.relations name r;
  r

let relation t name =
  match Hashtbl.find_opt t.relations name with
  | Some r -> r
  | None -> unknown "relation" name

let names_of tbl =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) tbl [])

let group_names t = names_of t.groups
let chronicle_names t = names_of t.chronicles
let relation_names t = names_of t.relations

let define_view t ?index ?(tier_limit = Classify.IM_poly_r) def =
  let report = Classify.sca def in
  if not (Classify.im_subseteq report.Classify.view_im tier_limit) then
    raise
      (Ca.Ill_formed
         (Format.asprintf
            "view %s is in %s, outside this database's limit %s:@ %a"
            (Sca.name def)
            (Classify.im_class_name report.Classify.view_im)
            (Classify.im_class_name tier_limit)
            Classify.pp_report report));
  let body = Sca.body def in
  let has_history =
    List.exists (fun c -> Chron.total_appended c > 0) (Ca.chronicles body)
  in
  let view =
    if has_history then
      match Eval.eval body with
      | initial -> View.of_initial ?index def initial
      | exception Chron.Not_retained msg ->
          raise
            (Ca.Ill_formed
               (Printf.sprintf
                  "view %s cannot be initialized: %s.  Define views before \
                   appending, or give the chronicle a retention policy that \
                   still covers its history"
                  (Sca.name def) msg))
    else View.create ?index def
  in
  Registry.register t.registry view;
  view

let view t name =
  match Registry.find t.registry name with
  | Some v -> v
  | None -> unknown "view" name

let drop_view t name =
  match Registry.find t.registry name with
  | Some _ -> Registry.unregister t.registry name
  | None -> unknown "view" name

let views t = Registry.views t.registry
let classify_view t name = Classify.sca (View.def (view t name))
let registry t = t.registry

let maintain t batch sn =
  (* future-effective relation updates that have come due take effect
     before the views see this batch (they are proactive for [sn]) *)
  Hashtbl.iter (fun _ r -> Versioned.flush_pending r ~upto:(sn - 1)) t.relations;
  let affected =
    List.concat_map
      (fun (c, tagged) -> Registry.affected t.registry c tagged)
      batch
  in
  (* a view affected through several chronicles of the batch is
     maintained once, with the whole batch *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let name = View.name v in
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        (* per-append work is probe-and-fold only: the body Δ-plan was
           compiled once at registration and is replayed here *)
        View.maintain v ~sn ~batch
      end)
    affected;
  List.iter (fun hook -> hook ~sn ~batch) (List.rev t.batch_hooks)

let on_batch t hook = t.batch_hooks <- hook :: t.batch_hooks

let append t cname tuples =
  let c = chronicle t cname in
  let sn = Chron.append c tuples in
  let tagged = List.map (Chron.tag sn) tuples in
  maintain t [ (c, tagged) ] sn;
  sn

let append_multi t ?group:gname batch =
  let g = group t (Option.value ~default:t.default_group gname) in
  let batch = List.map (fun (cname, tuples) -> (chronicle t cname, tuples)) batch in
  let sn = Chron.append_multi g batch in
  let tagged_batch =
    List.map (fun (c, tuples) -> (c, List.map (Chron.tag sn) tuples)) batch
  in
  maintain t tagged_batch sn;
  sn

let advance_clock t ?group:gname chronon =
  Group.advance_clock (group t (Option.value ~default:t.default_group gname)) chronon

let summary t ~view:vname key = View.lookup (view t vname) key
let view_contents t vname = View.to_list (view t vname)
