open Relational

exception Unknown of string
exception Read_only of string

(* Catalog changes and transactions, as seen by a durability layer.  The
   sink (when installed — see {!set_txn_sink}) receives [Ev_append]
   *before* any state mutates (write-ahead), [Ev_abort] when a batch is
   rolled back, and the DDL/clock events after the catalog operation
   succeeds. *)
type txn_event =
  | Ev_append of {
      group : string;
      sn : Seqnum.t;
      batch : (string * Tuple.t list) list;
    }
  | Ev_group of {
      group : string;
      entries : (Seqnum.t * (string * Tuple.t list) list) list;
    }
  | Ev_insert of { relation : string; rows : Tuple.t list; at : int }
  | Ev_retract of {
      chronicle : string;
      entries : (Seqnum.t * Tuple.t list) list;
    }
  | Ev_clock of { group : string; chronon : Seqnum.chronon }
  | Ev_add_group of { name : string; clock_start : Seqnum.chronon option }
  | Ev_add_chronicle of {
      name : string;
      group : string;
      retention : Chron.retention;
      schema : Schema.t;
    }
  | Ev_add_relation of {
      name : string;
      group : string;
      schema : Schema.t;
      key : string list option;
    }
  | Ev_define_view of { def : Sca.t; index : Index.kind }
  | Ev_drop_view of { name : string }
  | Ev_abort of { group : string; sn : Seqnum.t }

type t = {
  groups : (string, Group.t) Hashtbl.t;
  chronicles : (string, Chron.t) Hashtbl.t;
  relations : (string, Versioned.t) Hashtbl.t;
  registry : Registry.t;
  default_group : string;
  pool : Exec.Pool.t;
      (* the Δ-maintenance executor: [jobs = 1] (default) keeps the
         historical strictly-sequential transaction path; [jobs > 1]
         partitions the affected views of each batch across domains *)
  heavy_threshold : int;
      (* promotion bar for the heavy-light key partition of every
         view's key-join Δ-sites; 0 = adaptive (see [Skew]) *)
  mutable batch_hooks : (sn:Seqnum.t -> batch:Delta.batch -> unit) list;
  mutable txn_sink : (txn_event -> unit) option;
  mutable fold_probe : (view:string -> sn:Seqnum.t -> unit) option;
  mutable read_only : string option;
      (* degraded mode: [Some reason] rejects every mutation with
         [Read_only] while queries keep serving — set by salvage
         recovery and by the durability layer when it can no longer
         guarantee that writes reach stable storage *)
}

let unknown kind name =
  raise (Unknown (Printf.sprintf "%s %S is not in the catalog" kind name))

let create ?(default_group = "main") ?(jobs = 1) ?(heavy_threshold = 0) () =
  let t =
    {
      groups = Hashtbl.create 4;
      chronicles = Hashtbl.create 16;
      relations = Hashtbl.create 16;
      registry = Registry.create ();
      default_group;
      pool = Exec.Pool.create ~jobs ();
      heavy_threshold;
      batch_hooks = [];
      txn_sink = None;
      fold_probe = None;
      read_only = None;
    }
  in
  Hashtbl.add t.groups default_group (Group.create default_group);
  t

let jobs t = Exec.Pool.jobs t.pool
let pool t = t.pool
let heavy_threshold t = t.heavy_threshold

let set_txn_sink t sink = t.txn_sink <- sink
let set_fold_probe t probe = t.fold_probe <- probe
let emit t ev = match t.txn_sink with Some f -> f ev | None -> ()

let set_read_only t reason = t.read_only <- reason
let read_only t = t.read_only

let check_writable t op =
  match t.read_only with
  | Some reason ->
      raise
        (Read_only (Printf.sprintf "Db.%s: database is read-only (%s)" op reason))
  | None -> ()

let add_group t ?clock_start name =
  check_writable t "add_group";
  if Hashtbl.mem t.groups name then
    invalid_arg (Printf.sprintf "Db.add_group: group %S already exists" name);
  let g = Group.create ?clock_start name in
  Hashtbl.add t.groups name g;
  emit t (Ev_add_group { name; clock_start });
  g

let group t name =
  match Hashtbl.find_opt t.groups name with
  | Some g -> g
  | None -> unknown "group" name

let default_group t = group t t.default_group

let add_chronicle t ?group:gname ?retention ~name schema =
  check_writable t "add_chronicle";
  if Hashtbl.mem t.chronicles name then
    invalid_arg (Printf.sprintf "Db.add_chronicle: %S already exists" name);
  let gname = Option.value ~default:t.default_group gname in
  let g = group t gname in
  let c = Chron.create ~group:g ?retention ~name schema in
  Hashtbl.add t.chronicles name c;
  emit t
    (Ev_add_chronicle
       { name; group = gname; retention = Chron.retention c; schema });
  c

let chronicle t name =
  match Hashtbl.find_opt t.chronicles name with
  | Some c -> c
  | None -> unknown "chronicle" name

let add_relation t ?group:gname ~name ~schema ?key () =
  check_writable t "add_relation";
  if Hashtbl.mem t.relations name then
    invalid_arg (Printf.sprintf "Db.add_relation: %S already exists" name);
  let gname = Option.value ~default:t.default_group gname in
  let g = group t gname in
  let r = Versioned.create ~group:g ~name ~schema ?key () in
  Hashtbl.add t.relations name r;
  emit t (Ev_add_relation { name; group = gname; schema; key });
  r

let relation t name =
  match Hashtbl.find_opt t.relations name with
  | Some r -> r
  | None -> unknown "relation" name

let names_of tbl =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) tbl [])

let group_names t = names_of t.groups
let chronicle_names t = names_of t.chronicles
let relation_names t = names_of t.relations

let define_view t ?index ?(tier_limit = Classify.IM_poly_r) def =
  check_writable t "define_view";
  let report = Classify.sca def in
  if not (Classify.im_subseteq report.Classify.view_im tier_limit) then
    raise
      (Ca.Ill_formed
         (Format.asprintf
            "view %s is in %s, outside this database's limit %s:@ %a"
            (Sca.name def)
            (Classify.im_class_name report.Classify.view_im)
            (Classify.im_class_name tier_limit)
            Classify.pp_report report));
  let body = Sca.body def in
  let has_history =
    List.exists (fun c -> Chron.total_appended c > 0) (Ca.chronicles body)
  in
  let view =
    if has_history then
      (* bulk (re)materialization over retained history: with jobs > 1
         this is the parallel scan/aggregate kernel (Plan.compile_parallel);
         at jobs = 1 it is exactly the sequential evaluator *)
      match Eval.eval_parallel t.pool body with
      | initial ->
          View.of_initial ?index ~heavy_threshold:t.heavy_threshold def initial
      | exception Chron.Not_retained msg ->
          raise
            (Ca.Ill_formed
               (Printf.sprintf
                  "view %s cannot be initialized: %s.  Define views before \
                   appending, or give the chronicle a retention policy that \
                   still covers its history"
                  (Sca.name def) msg))
    else View.create ?index ~heavy_threshold:t.heavy_threshold def
  in
  Registry.register t.registry view;
  emit t (Ev_define_view { def; index = View.index_kind view });
  view

let view t name =
  match Registry.find t.registry name with
  | Some v -> v
  | None -> unknown "view" name

let drop_view t name =
  check_writable t "drop_view";
  match Registry.find t.registry name with
  | Some _ ->
      Registry.unregister t.registry name;
      emit t (Ev_drop_view { name })
  | None -> unknown "view" name

let views t = Registry.views t.registry
let classify_view t name = Classify.sca (View.def (view t name))
let registry t = t.registry

let on_batch t hook = t.batch_hooks <- hook :: t.batch_hooks
let has_batch_hooks t = t.batch_hooks <> []

(* ---- the transaction path ----

   Validate → journal (write-ahead) → mark → mutate → commit → notify;
   any exception between mark and commit rolls the group watermark, the
   batch chronicles, every relation and every begun view back to their
   pre-batch state, emits [Ev_abort] (so a journal can erase the
   write-ahead record) and re-raises.  Subscribers and batch hooks run
   strictly after commit: an exception there no longer aborts the
   batch. *)

let dedup_affected views =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      let name = View.name v in
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    views

let transactional_append t g batch ~claim =
  check_writable t "append";
  (* 1. validate: batch shape, group membership, tuple types, sequence
        number — all before the write-ahead record is emitted, so a batch
        that can never commit is never journaled. *)
  if batch = [] then invalid_arg "Db.append: empty batch";
  List.iter
    (fun (c, tuples) ->
      if not (Group.same (Chron.group c) g) then
        invalid_arg
          (Printf.sprintf "Db.append: chronicle %s is not in group %s"
             (Chron.name c) (Group.name g));
      Chron.check_batch c tuples)
    batch;
  let wm = Group.watermark g in
  let sn =
    match claim with
    | None -> wm + 1
    | Some sn ->
        if sn <= wm then
          raise (Group.Stale_sequence_number { given = sn; watermark = wm });
        sn
  in
  (* 2. write-ahead: the journal record precedes every state mutation *)
  emit t
    (Ev_append
       {
         group = Group.name g;
         sn;
         batch = List.map (fun (c, tuples) -> (Chron.name c, tuples)) batch;
       });
  (* 3. mark everything the batch may touch *)
  let chron_marks = List.map (fun (c, _) -> (c, Chron.mark c)) batch in
  let rel_marks =
    Hashtbl.fold (fun _ r acc -> (r, Versioned.mark r) :: acc) t.relations []
  in
  (match claim with
  | None -> ignore (Group.next_sn g)
  | Some sn -> Group.claim_sn g sn);
  match
    (* 4. mutate: record the batch, flush due relation updates, fold the
          affected views (each inside its own undo scope) *)
    let tagged_batch =
      List.map (fun (c, tuples) -> (c, Chron.record c sn tuples)) batch
    in
    (* future-effective relation updates that have come due take effect
       before the views see this batch (they are proactive for [sn]) *)
    Hashtbl.iter
      (fun _ r -> Versioned.flush_pending r ~upto:(sn - 1))
      t.relations;
    let affected =
      dedup_affected
        (List.concat_map
           (fun (c, tagged) -> Registry.affected t.registry c tagged)
           tagged_batch)
    in
    let fold_one v =
      (* per-append work is probe-and-fold only: the body Δ-plan was
         compiled once at registration and is replayed here *)
      (match t.fold_probe with
      | Some probe -> probe ~view:(View.name v) ~sn
      | None -> ());
      View.maintain v ~sn ~batch:tagged_batch
    in
    let njobs = Exec.Pool.jobs t.pool in
    if njobs <= 1 || List.length affected <= 1 then begin
      (* the historical sequential path, byte-identical at jobs = 1 *)
      let begun = ref [] in
      (try
         List.iter
           (fun v ->
             View.begin_txn v;
             begun := v :: !begun;
             fold_one v)
           affected
       with e ->
         List.iter View.rollback_txn !begun;
         raise e)
    end
    else begin
      (* Parallel Δ-maintenance.  [affected] is deterministic
         (registration order, deduplicated), partitioned into
         contiguous ranges — one range per task, each view owned by
         exactly one task, so the view's whole txn bracket
         (begin/fold/commit-or-rollback bookkeeping) is single-domain
         and needs no locking.  Shared inputs (the recorded batch,
         chronicle history, relation states) are read-only for the
         duration; the global [Stats] counters are atomic.  A failure
         anywhere joins the pool first (all tasks finish or fail —
         nothing is cancelled mid-fold), then rolls back every begun
         view on this domain and re-raises the lowest-indexed failure,
         which the enclosing handler turns into a full batch abort. *)
      let views = Array.of_list affected in
      let begun = Array.make (Array.length views) false in
      let tasks =
        Array.map
          (fun (start, len) () ->
            for i = start to start + len - 1 do
              let v = views.(i) in
              View.begin_txn v;
              begun.(i) <- true;
              fold_one v
            done)
          (Exec.Pool.chunk_ranges ~jobs:njobs (Array.length views))
      in
      match Exec.Pool.run t.pool tasks with
      | exns when Array.for_all Option.is_none exns -> ()
      | exns ->
          Array.iteri
            (fun i begun_i -> if begun_i then View.rollback_txn views.(i))
            begun;
          Array.iter (function Some e -> raise e | None -> ()) exns
    end;
    List.iter View.commit_txn affected;
    tagged_batch
  with
  | tagged_batch ->
      (* 5. commit the marks, then notify (post-commit observers) *)
      List.iter (fun (r, _) -> Versioned.commit r) rel_marks;
      List.iter (fun (c, _) -> Chron.commit c) chron_marks;
      List.iter (fun (c, tagged) -> Chron.notify c sn tagged) tagged_batch;
      List.iter
        (fun hook -> hook ~sn ~batch:tagged_batch)
        (List.rev t.batch_hooks);
      sn
  | exception e ->
      List.iter (fun (r, m) -> Versioned.rollback r m) rel_marks;
      List.iter (fun (c, m) -> Chron.rollback c m) chron_marks;
      Group.rollback_watermark g wm;
      Stats.incr Stats.Rollback;
      emit t (Ev_abort { group = Group.name g; sn });
      raise e

let append t cname tuples =
  let c = chronicle t cname in
  transactional_append t (Chron.group c) [ (c, tuples) ] ~claim:None

let resolve_batch t batch =
  List.map (fun (cname, tuples) -> (chronicle t cname, tuples)) batch

let append_multi t ?group:gname batch =
  let g = group t (Option.value ~default:t.default_group gname) in
  transactional_append t g (resolve_batch t batch) ~claim:None

let append_at t ?group:gname ~sn batch =
  let g = group t (Option.value ~default:t.default_group gname) in
  ignore (transactional_append t g (resolve_batch t batch) ~claim:(Some sn))

(* Relation-row inserts follow the same write-ahead discipline as
   appends: validate every row, emit [Ev_insert] carrying the relation's
   pre-insert cardinality (the replay-idempotence marker: a checkpoint
   taken after the insert already holds the rows, and its cardinality
   exceeds [at], so recovery skips the record), then mutate under an
   undo mark.  A failure mid-batch (e.g. a key violation on a later row)
   rolls the relation back and emits [Ev_abort] so the journal erases
   the write-ahead record — rows land all-or-nothing. *)
let insert_rows t rname rows =
  check_writable t "insert_rows";
  let r = relation t rname in
  let rel = Versioned.relation r in
  let schema = Relation.schema rel in
  List.iter
    (fun row ->
      if not (Tuple.type_check schema row) then
        invalid_arg
          (Printf.sprintf "Db.insert_rows: row does not match the schema of %s"
             rname))
    rows;
  if rows <> [] then begin
    emit t (Ev_insert { relation = rname; rows; at = Relation.cardinality rel });
    let m = Versioned.mark r in
    match List.iter (fun row -> Versioned.insert r row) rows with
    | () -> Versioned.commit r
    | exception e ->
        Versioned.rollback r m;
        Stats.incr Stats.Rollback;
        let g = Versioned.group r in
        emit t (Ev_abort { group = Group.name g; sn = Group.watermark g });
        raise e
  end

(* ---- the replay path ----

   Recovery re-applies journaled append batches.  [append_at] (above)
   does that one batch at a time through the fully transactional path;
   [replay_appends] applies a *run* of batches with the Δ-folds of
   independent views scheduled across the pool:

     phase 1 (sequential, submitter only): for each record in order —
       skip-check against the group watermark, validate, claim the
       sequence number, record the batch into its chronicles, flush
       due relation updates, and compute the affected-view set
       (Registry.affected, registration-order deterministic);
     phase 2 (parallel): group the recorded folds into per-view chains
       (each view folds its batches in record order — the mandatory
       per-view ordering) and submit the chains to the pool
       (Exec.Pool.run_chains); distinct views' chains are independent
       by the maintenance theorem, exactly as in the live path.

   Pre-recording batch [i+1] before folding batch [i] is safe precisely
   when no affected view's Δ reads retained history beyond its own
   batch (Ca.reads_history): a history-reading fold forces a flush
   barrier — fold everything recorded so far before recording further.
   Order-sensitive observers (batch hooks, pending future-effective
   relation updates) force the fully transactional per-record path;
   chronicle subscribers and batch hooks otherwise fire in record order
   after each flush, not interleaved with recording (unobservable in
   recovery, which installs its sink and probes only after replay).

   Unlike the live path this entry point is *not* transactional across
   records: a failure raises [Replay_error] with the lowest failing
   record index (deterministic at every degree — chains do not
   interact, so the failure set is degree-independent) and leaves the
   database partially replayed.  The intended caller (recovery) then
   discards the in-memory database; nothing has touched storage. *)

exception Replay_error of { index : int; error : exn }

type replay_entry = {
  rgroup : string;
  rsn : Seqnum.t;
  rbatch : (string * Tuple.t list) list;
}

let reads_history_view v = Ca.reads_history (Sca.body (View.def v))

let replay_appends t entries =
  check_writable t "replay_appends";
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let outcomes = Array.make n false in
  let wrap i f =
    try f () with
    | Replay_error _ as e -> raise e
    | e -> raise (Replay_error { index = i; error = e })
  in
  let order_sensitive =
    t.batch_hooks <> []
    || Hashtbl.fold
         (fun _ r acc -> acc || Versioned.pending_count r > 0)
         t.relations false
  in
  if order_sensitive then
    (* hooks interleave with recording, pending relation updates come
       due between folds: replay strictly one transactional batch at a
       time, identical to [append_at] in a loop *)
    Array.iteri
      (fun i { rgroup; rsn; rbatch } ->
        wrap i (fun () ->
            let g = group t rgroup in
            if rsn > Group.watermark g then begin
              ignore
                (transactional_append t g (resolve_batch t rbatch)
                   ~claim:(Some rsn));
              outcomes.(i) <- true
            end))
      entries
  else begin
    (* (index, sn, tagged batch, affected views), newest first *)
    let recorded = ref [] in
    let flush () =
      match List.rev !recorded with
      | [] -> ()
      | recs ->
          recorded := [];
          (* per-view fold chains in order of first appearance (itself
             deterministic: phase 1 runs in record order and
             [Registry.affected] lists views in registration order) *)
          let order = ref [] and links = Hashtbl.create 8 in
          List.iter
            (fun (i, sn, tagged, affected) ->
              List.iter
                (fun v ->
                  let name = View.name v in
                  let cell =
                    match Hashtbl.find_opt links name with
                    | Some cell -> cell
                    | None ->
                        let cell = ref [] in
                        Hashtbl.add links name cell;
                        order := (name, v) :: !order;
                        cell
                  in
                  cell := (i, sn, tagged) :: !cell)
                affected)
            recs;
          let chains =
            Array.of_list
              (List.rev_map
                 (fun (name, v) ->
                   Array.of_list
                     (List.rev_map
                        (fun (i, sn, tagged) () ->
                          wrap i (fun () ->
                              (match t.fold_probe with
                              | Some probe -> probe ~view:name ~sn
                              | None -> ());
                              View.maintain v ~sn ~batch:tagged))
                        !(Hashtbl.find links name)))
                 !order)
          in
          let failures = Exec.Pool.run_chains t.pool chains in
          let worst = ref None in
          Array.iter
            (function
              | None -> ()
              | Some (Replay_error { index; _ } as e) -> (
                  match !worst with
                  | Some (Replay_error { index = j; _ }) when j <= index -> ()
                  | _ -> worst := Some e)
              | Some e -> (
                  (* chain links always wrap; defensive *)
                  match !worst with None -> worst := Some e | Some _ -> ()))
            failures;
          (match !worst with Some e -> raise e | None -> ());
          (* post-fold notifications, in record order *)
          List.iter
            (fun (_, sn, tagged, _) ->
              List.iter (fun (c, tg) -> Chron.notify c sn tg) tagged)
            recs
    in
    Array.iteri
      (fun i { rgroup; rsn; rbatch } ->
        wrap i (fun () ->
            let g = group t rgroup in
            if rsn > Group.watermark g then begin
              let batch = resolve_batch t rbatch in
              if batch = [] then invalid_arg "Db.replay_appends: empty batch";
              List.iter
                (fun (c, tuples) ->
                  if not (Group.same (Chron.group c) g) then
                    invalid_arg
                      (Printf.sprintf
                         "Db.replay_appends: chronicle %s is not in group %s"
                         (Chron.name c) (Group.name g));
                  Chron.check_batch c tuples)
                batch;
              emit t (Ev_append { group = rgroup; sn = rsn; batch = rbatch });
              Group.claim_sn g rsn;
              let tagged =
                List.map (fun (c, tuples) -> (c, Chron.record c rsn tuples)) batch
              in
              Hashtbl.iter
                (fun _ r -> Versioned.flush_pending r ~upto:(rsn - 1))
                t.relations;
              let affected =
                dedup_affected
                  (List.concat_map
                     (fun (c, tg) -> Registry.affected t.registry c tg)
                     tagged)
              in
              recorded := (i, rsn, tagged, affected) :: !recorded;
              outcomes.(i) <- true;
              if List.exists reads_history_view affected then
                (* a history-reading fold must run before any later
                   batch is recorded (recording could evict the
                   ring-retained tuples it still needs) *)
                flush ()
            end))
      entries;
    flush ()
  end;
  outcomes

(* ---- the group-commit path ----

   [append_group] / [replay_group] apply a *group* of append batches as
   one atomic unit under one write-ahead record ([Ev_group]): the
   durability layer turns the whole group into a single journal append
   and a single sync, amortizing the fsync that dominates per-append
   cost under [Sync_always].  The protocol is the transactional path
   stretched over n batches:

     validate every batch up front (nothing unjournalable is ever
     journaled) → emit [Ev_group] (write-ahead) → mark every chronicle
     the group touches, every relation, and the group watermark once →
     record + fold → commit all marks together → notify subscribers and
     batch hooks per batch, in record order, strictly post-commit.

   Any failure between mark and commit rolls the *whole* group back —
   every begun view, every chronicle and relation mark, the watermark —
   emits [Ev_abort] (the journal erases the group record) and re-raises:
   a group is never partially visible, in memory or on disk.

   Fold scheduling mirrors [replay_appends]: normally all batches are
   recorded first and the folds grouped into per-view chains on the
   pool (the combined-Δ fan-out; a view folds its batches in record
   order, distinct views in parallel), with a flush barrier whenever an
   affected view's Δ reads retained history.  Pending future-effective
   relation updates force the interleaved record-then-fold order (a
   later batch's [flush_pending] must not be visible to an earlier
   batch's fold).  Batch hooks do not force a mode: they are deferred
   to post-commit by the group protocol itself — callers for whom
   per-batch hook timing is observable (e.g. the staging queue fronting
   periodic/windowed views) should fall back to per-append commits via
   {!has_batch_hooks}. *)

exception Group_fold of { gindex : int; error : exn }

let group_apply t g entries =
  (* [entries : (sn * (Chron.t * tuples) list) list] — non-empty,
     batches validated, sequence numbers strictly increasing and all
     above the watermark (checked by both callers). *)
  let wm = Group.watermark g in
  let first_sn = match entries with (sn, _) :: _ -> sn | [] -> assert false in
  emit t
    (Ev_group
       {
         group = Group.name g;
         entries =
           List.map
             (fun (sn, batch) ->
               (sn, List.map (fun (c, tuples) -> (Chron.name c, tuples)) batch))
             entries;
       });
  let chron_marks =
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun (_, batch) ->
        List.filter_map
          (fun (c, _) ->
            let name = Chron.name c in
            if Hashtbl.mem seen name then None
            else begin
              Hashtbl.add seen name ();
              Some (c, Chron.mark c)
            end)
          batch)
      entries
  in
  let rel_marks =
    Hashtbl.fold (fun _ r acc -> (r, Versioned.mark r) :: acc) t.relations []
  in
  let begun = ref [] and begun_names = Hashtbl.create 8 in
  let begin_view v =
    let name = View.name v in
    if not (Hashtbl.mem begun_names name) then begin
      Hashtbl.add begun_names name ();
      View.begin_txn v;
      begun := v :: !begun
    end
  in
  let probe name sn =
    match t.fold_probe with Some p -> p ~view:name ~sn | None -> ()
  in
  let record_one sn batch =
    Group.claim_sn g sn;
    let tagged =
      List.map (fun (c, tuples) -> (c, Chron.record c sn tuples)) batch
    in
    Hashtbl.iter (fun _ r -> Versioned.flush_pending r ~upto:(sn - 1)) t.relations;
    let affected =
      dedup_affected
        (List.concat_map
           (fun (c, tg) -> Registry.affected t.registry c tg)
           tagged)
    in
    (tagged, affected)
  in
  match
    let order_sensitive =
      Hashtbl.fold
        (fun _ r acc -> acc || Versioned.pending_count r > 0)
        t.relations false
    in
    if order_sensitive then
      (* record + fold batch by batch, inside the group-wide bracket *)
      List.map
        (fun (sn, batch) ->
          let tagged, affected = record_one sn batch in
          List.iter begin_view affected;
          List.iter
            (fun v ->
              probe (View.name v) sn;
              View.maintain v ~sn ~batch:tagged)
            affected;
          (sn, tagged))
        entries
    else begin
      (* windowed: record everything, then hand per-view fold chains to
         the pool — the combined-Δ fan-out *)
      let recorded = ref [] in
      let flush () =
        match List.rev !recorded with
        | [] -> ()
        | recs ->
            recorded := [];
            (* chains in order of first appearance: deterministic, since
               recording runs in group order and [Registry.affected]
               lists views in registration order *)
            let order = ref [] and links = Hashtbl.create 8 in
            List.iter
              (fun (i, sn, tagged, affected) ->
                List.iter
                  (fun v ->
                    let name = View.name v in
                    let cell =
                      match Hashtbl.find_opt links name with
                      | Some cell -> cell
                      | None ->
                          let cell = ref [] in
                          Hashtbl.add links name cell;
                          order := (name, v) :: !order;
                          cell
                    in
                    cell := (i, sn, tagged) :: !cell)
                  affected)
              recs;
            let order = List.rev !order in
            (* txn brackets are per-view bookkeeping: open them on the
               submitting domain before the pool touches anything *)
            List.iter (fun (_, v) -> begin_view v) order;
            let chains =
              Array.of_list
                (List.map
                   (fun (name, v) ->
                     Array.of_list
                       (List.rev_map
                          (fun (i, sn, tagged) () ->
                            try
                              probe name sn;
                              View.maintain v ~sn ~batch:tagged
                            with e -> raise (Group_fold { gindex = i; error = e }))
                          !(Hashtbl.find links name)))
                   order)
            in
            let failures = Exec.Pool.run_chains t.pool chains in
            (* deterministic at every degree: re-raise the failure of
               the lowest-indexed batch (chains are independent, so the
               failure set does not depend on the parallelism) *)
            let worst = ref None in
            Array.iter
              (function
                | None -> ()
                | Some (Group_fold { gindex; _ } as e) -> (
                    match !worst with
                    | Some (Group_fold { gindex = j; _ }) when j <= gindex -> ()
                    | _ -> worst := Some e)
                | Some e -> (
                    (* chain links always wrap; defensive *)
                    match !worst with None -> worst := Some e | Some _ -> ()))
              failures;
            (match !worst with
            | Some (Group_fold { error; _ }) -> raise error
            | Some e -> raise e
            | None -> ())
      in
      let tagged_entries =
        List.mapi
          (fun i (sn, batch) ->
            let tagged, affected = record_one sn batch in
            recorded := (i, sn, tagged, affected) :: !recorded;
            if List.exists reads_history_view affected then
              (* a history-reading fold must run before any later batch
                 is recorded (recording could evict the ring-retained
                 tuples it still needs) *)
              flush ();
            (sn, tagged))
          entries
      in
      flush ();
      tagged_entries
    end
  with
  | tagged_entries ->
      List.iter View.commit_txn !begun;
      List.iter (fun (r, _) -> Versioned.commit r) rel_marks;
      List.iter (fun (c, _) -> Chron.commit c) chron_marks;
      Stats.incr Stats.Group_commit;
      Stats.record_max Stats.Group_size_max (List.length entries);
      (* post-commit observers, in record order — first all subscriber
         notifications, then the batch hooks, each walking the group in
         order *)
      List.iter
        (fun (sn, tagged) ->
          List.iter (fun (c, tg) -> Chron.notify c sn tg) tagged)
        tagged_entries;
      List.iter
        (fun (sn, tagged) ->
          List.iter
            (fun hook -> hook ~sn ~batch:tagged)
            (List.rev t.batch_hooks))
        tagged_entries
  | exception e ->
      List.iter View.rollback_txn !begun;
      List.iter (fun (r, m) -> Versioned.rollback r m) rel_marks;
      List.iter (fun (c, m) -> Chron.rollback c m) chron_marks;
      Group.rollback_watermark g wm;
      Stats.incr Stats.Rollback;
      emit t (Ev_abort { group = Group.name g; sn = first_sn });
      raise e

let validate_group_batch ~ctx g batch =
  if batch = [] then invalid_arg (Printf.sprintf "Db.%s: empty batch" ctx);
  List.iter
    (fun (c, tuples) ->
      if not (Group.same (Chron.group c) g) then
        invalid_arg
          (Printf.sprintf "Db.%s: chronicle %s is not in group %s" ctx
             (Chron.name c) (Group.name g));
      Chron.check_batch c tuples)
    batch

let append_group t ?group:gname batches =
  check_writable t "append_group";
  let g = group t (Option.value ~default:t.default_group gname) in
  if batches = [] then invalid_arg "Db.append_group: empty group";
  let batches = List.map (resolve_batch t) batches in
  List.iter (validate_group_batch ~ctx:"append_group" g) batches;
  let wm = Group.watermark g in
  let entries = List.mapi (fun i batch -> (wm + 1 + i, batch)) batches in
  group_apply t g entries;
  List.map fst entries

let replay_group t entries =
  check_writable t "replay_group";
  let n = List.length entries in
  if n = 0 then invalid_arg "Db.replay_group: empty group";
  let gname = (List.hd entries).rgroup in
  let g = group t gname in
  List.iter
    (fun { rgroup; _ } ->
      if rgroup <> gname then
        invalid_arg
          (Printf.sprintf
             "Db.replay_group: mixed groups in one record (%s vs %s)" gname
             rgroup))
    entries;
  let outcomes = Array.make n false in
  let wm = Group.watermark g in
  (* entries at or below the watermark are already covered by the
     checkpoint (recovery idempotence); the rest must apply in order *)
  let live =
    List.filteri (fun i { rsn; _ } -> rsn > wm && (outcomes.(i) <- true; true))
      entries
  in
  (match live with
  | [] -> ()
  | live ->
      ignore
        (List.fold_left
           (fun prev { rsn; _ } ->
             if rsn <= prev then
               raise (Group.Stale_sequence_number { given = rsn; watermark = prev });
             rsn)
           wm live);
      let resolved =
        List.map
          (fun { rsn; rbatch; _ } ->
            let batch = resolve_batch t rbatch in
            validate_group_batch ~ctx:"replay_group" g batch;
            (rsn, batch))
          live
      in
      group_apply t g resolved);
  outcomes

(* ---- the retraction path (ℤ-weighted deltas) ----

   Retraction removes stored occurrences from a Full-retention
   chronicle and propagates the change to the persistent views as a
   weighted (weight −1) delta: COUNT/SUM-class aggregates invert in
   O(1) per group, MIN/MAX groups that lose their extremum re-probe
   retained history, and views whose bodies read history outright
   ([Ca.CrossChron]/[Ca.ThetaJoinChron]) are rematerialized.  The
   protocol mirrors the append path — validate → journal (write-ahead
   [Ev_retract]) → snapshot → mutate → apply — but the undo is coarse:
   a pre-mutation [View.dump_w] per affected view plus the chronicle's
   stored window, restored wholesale on any failure (retraction is
   rare; paying O(|V|) for an airtight rollback beats threading a
   weighted undo log through every operator). *)

let untag tu = Array.sub tu 1 (Array.length tu - 1)

(* Whether the body contains an operator whose weighted delta is
   computed by diffing its own plain evaluation over the at-sn slices
   (see [Delta.run_weighted]) — only then are the slices needed. *)
let rec nonlinear_body = function
  | Ca.Chronicle _ -> false
  | Ca.Select (_, e) | Ca.Project (_, e) -> nonlinear_body e
  | Ca.ProductRel (e, _) | Ca.KeyJoinRel (e, _, _) -> nonlinear_body e
  | Ca.SeqJoin _ | Ca.Union _ | Ca.Diff _ | Ca.GroupBySeq _ -> true
  | Ca.CrossChron _ | Ca.ThetaJoinChron _ -> true

(* Rebuild a history-reading view from retained history in place
   (weighted deltas cannot unwind it: its old output depended on
   history that has just changed). *)
let rematerialize t v =
  let initial = Eval.eval_parallel t.pool (Sca.body (View.def v)) in
  let empty =
    match View.dump_w v with
    | View.Rows_dump_w _ -> View.Rows_dump_w []
    | View.Groups_dump_w _ -> View.Groups_dump_w []
  in
  View.restore_w v empty;
  View.apply_delta v initial

(* Retract the given user rows at one sequence number and propagate the
   weighted delta to every non-history-reading affected view (the
   caller rematerializes the history readers once at the end). *)
let retract_at t c ~sn ~rows =
  let tagged = List.map (Chron.tag sn) rows in
  let wbatch = [ (c, List.map (fun tu -> (tu, -1)) tagged) ] in
  let live =
    List.filter
      (fun v -> not (reads_history_view v))
      (dedup_affected (Registry.affected t.registry c tagged))
  in
  (* at-sn before-slices, taken pre-mutation, only where the compiled
     plan will actually diff them *)
  let prepared =
    List.map
      (fun v ->
        let body = Sca.body (View.def v) in
        let slice_chrons =
          if nonlinear_body body then Ca.chronicles body else []
        in
        let before =
          List.map (fun ch -> (ch, Chron.at_sn ch sn)) slice_chrons
        in
        (v, body, slice_chrons, before))
      live
  in
  Chron.remove_stored c sn rows;
  let apply_one (v, body, slice_chrons, before) =
    let after = List.map (fun ch -> (ch, Chron.at_sn ch sn)) slice_chrons in
    let wdelta =
      Delta.run_weighted (View.plan v) ~sn ~wbatch ~before ~after
    in
    View.apply_weighted v ~body:(fun () -> Eval.eval body) wdelta
  in
  let njobs = Exec.Pool.jobs t.pool in
  if njobs <= 1 || List.length prepared <= 1 then
    List.iter apply_one prepared
  else begin
    (* same contiguous-range partitioning as the append path: each view
       is owned by exactly one task; failures join the pool first, then
       the lowest-indexed exception re-raises into the coarse undo *)
    let work = Array.of_list prepared in
    let tasks =
      Array.map
        (fun (start, len) () ->
          for i = start to start + len - 1 do
            apply_one work.(i)
          done)
        (Exec.Pool.chunk_ranges ~jobs:njobs (Array.length work))
    in
    match Exec.Pool.run t.pool tasks with
    | exns when Array.for_all Option.is_none exns -> ()
    | exns -> Array.iter (function Some e -> raise e | None -> ()) exns
  end

(* Apply fully resolved retraction entries ([(sn, user rows)] with sn
   ascending) under the write-ahead + coarse-undo bracket. *)
let retract_resolved t c entries =
  let cname = Chron.name c in
  emit t (Ev_retract { chronicle = cname; entries });
  let affected =
    dedup_affected
      (List.concat_map
         (fun (sn, rows) ->
           Registry.affected t.registry c (List.map (Chron.tag sn) rows))
         entries)
  in
  let saved_views = List.map (fun v -> (v, View.dump_w v)) affected in
  let saved_store = Chron.stored c in
  let g = Chron.group c in
  match
    List.iter (fun (sn, rows) -> retract_at t c ~sn ~rows) entries;
    List.iter
      (fun v -> if reads_history_view v then rematerialize t v)
      affected
  with
  | () -> Stats.incr Stats.Retract_apply
  | exception e ->
      Chron.reset_store c saved_store;
      List.iter (fun (v, d) -> View.restore_w v d) saved_views;
      Stats.incr Stats.Rollback;
      emit t (Ev_abort { group = Group.name g; sn = Group.watermark g });
      raise e

(* Resolve requested user rows to stored occurrences, newest occurrence
   first per row (deterministic), and group the claims by sequence
   number ascending. *)
let resolve_retraction c rows =
  let stored = Array.of_list (Chron.stored c) in
  let n = Array.length stored in
  let claimed = Array.make n false in
  List.iter
    (fun row ->
      let rec claim i =
        if i < 0 then
          invalid_arg
            (Format.asprintf
               "Db.retract %s: tuple %a has no retained occurrence left"
               (Chron.name c) Tuple.pp row)
        else if (not claimed.(i)) && Tuple.equal (untag stored.(i)) row then
          claimed.(i) <- true
        else claim (i - 1)
      in
      claim (n - 1))
    rows;
  (* stored order is oldest-to-newest, so one left-to-right sweep groups
     the claims by ascending sn with in-store order within each sn *)
  let by_sn = ref [] in
  Array.iteri
    (fun i tu ->
      if claimed.(i) then begin
        let sn = Chron.sn_of tu in
        let row = untag tu in
        match !by_sn with
        | (sn', rows') :: rest when sn' = sn ->
            by_sn := (sn, row :: rows') :: rest
        | _ -> by_sn := (sn, [ row ]) :: !by_sn
      end)
    stored;
  List.rev_map (fun (sn, rows) -> (sn, List.rev rows)) !by_sn

let retract t cname rows =
  check_writable t "retract";
  let c = chronicle t cname in
  (match Chron.retention c with
  | Chron.Full -> ()
  | Chron.Discard | Chron.Window _ ->
      invalid_arg
        (Printf.sprintf
           "Db.retract %s: retraction requires Full retention (stored \
            occurrences must be addressable)"
           cname));
  Chron.check_batch c rows;
  if rows = [] then 0
  else begin
    retract_resolved t c (resolve_retraction c rows);
    List.length rows
  end

(* Recovery replay of a journaled [Ev_retract].  Idempotence marker:
   occurrences already absent from the store (the checkpoint was taken
   after the retraction applied) are skipped; if nothing survives the
   record is a no-op and [false] is returned. *)
let replay_retract t cname entries =
  check_writable t "replay_retract";
  let c = chronicle t cname in
  let surviving =
    List.filter_map
      (fun (sn, rows) ->
        let avail = ref (List.map untag (Chron.at_sn c sn)) in
        let take row =
          let rec go seen = function
            | [] -> false
            | p :: rest when Tuple.equal p row ->
                avail := List.rev_append seen rest;
                true
            | p :: rest -> go (p :: seen) rest
          in
          go [] !avail
        in
        match List.filter take rows with
        | [] -> None
        | present -> Some (sn, present))
      entries
  in
  match surviving with
  | [] -> false
  | surviving ->
      retract_resolved t c surviving;
      true

let advance_clock t ?group:gname chronon =
  check_writable t "advance_clock";
  let gname = Option.value ~default:t.default_group gname in
  Group.advance_clock (group t gname) chronon;
  emit t (Ev_clock { group = gname; chronon })

let summary t ~view:vname key = View.lookup (view t vname) key
let view_contents t vname = View.to_list (view t vname)
