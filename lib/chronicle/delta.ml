open Relational

type batch = (Chron.t * Tuple.t list) list

let delta_of_base batch c =
  match List.find_opt (fun (c', _) -> c' == c) batch with
  | Some (_, tuples) -> tuples
  | None -> []

(* A compiled Δ-evaluator.  All expression-dependent work — schema
   derivation, predicate compilation, projector construction, key-join
   position resolution — happens once in [compile]; [run] then does only
   probe-and-fold work per appended batch.  The chronicle layer caches
   one plan per persistent view ([View.plan]), so steady-state
   maintenance recompiles nothing. *)
type plan = { expr : Ca.t; exec : sn:Seqnum.t -> batch:batch -> Tuple.t list }

let rec comp ~heavy_threshold expr : sn:Seqnum.t -> batch:batch -> Tuple.t list
    =
  let comp = comp ~heavy_threshold in
  match expr with
  | Ca.Chronicle c -> fun ~sn:_ ~batch -> delta_of_base batch c
  | Ca.Select (p, e) ->
      let keep = Predicate.compile (Ca.schema_of e) p in
      let child = comp e in
      fun ~sn ~batch -> List.filter keep (child ~sn ~batch)
  | Ca.Project (attrs, e) ->
      let proj = Tuple.projector (Ca.schema_of e) attrs in
      let child = comp e in
      fun ~sn ~batch -> List.map proj (child ~sn ~batch)
  | Ca.SeqJoin (l, r) ->
      (* both deltas carry only the batch's sequence number, so the join
         degenerates to a product of the two deltas (appendix, Thm 4.1) *)
      let rs = Ca.schema_of r in
      let drop_sn =
        Tuple.projector rs
          (List.filter
             (fun n -> not (String.equal n Seqnum.attr))
             (Schema.names rs))
      in
      let cl = comp l and cr = comp r in
      fun ~sn ~batch ->
        let dl = cl ~sn ~batch and dr = cr ~sn ~batch in
        if dl = [] || dr = [] then []
        else
          List.concat_map
            (fun ltu -> List.map (fun rtu -> Tuple.concat ltu (drop_sn rtu)) dr)
            dl
  | Ca.Union (l, r) ->
      let cl = comp l and cr = comp r in
      fun ~sn ~batch -> Tuple.dedup (cl ~sn ~batch @ cr ~sn ~batch)
  | Ca.Diff (l, r) ->
      let cl = comp l and cr = comp r in
      fun ~sn ~batch -> Tuple.diff (cl ~sn ~batch) (cr ~sn ~batch)
  | Ca.GroupBySeq (gl, al, e) ->
      let grouper = Groupby.compiled (Ca.schema_of e) ~group_by:gl ~aggs:al in
      let child = comp e in
      fun ~sn ~batch -> Groupby.run_compiled grouper (child ~sn ~batch)
  | Ca.ProductRel (e, rel) ->
      let child = comp e in
      fun ~sn ~batch ->
        let delta = child ~sn ~batch in
        if delta = [] then []
        else
          Relation.fold
            (fun acc rtu ->
              List.fold_left (fun acc tu -> Tuple.concat tu rtu :: acc) acc delta)
            [] rel
          |> List.rev
  | Ca.KeyJoinRel (e, rel, pairs) ->
      (* join each Δ tuple with the matching relation tuples via an
         index probe on the join attributes (at most a constant number
         of matches in CA_⋈, by the key guarantee).  The probe is
         heavy-light partitioned per compiled site: keys whose
         frequency crosses the threshold get their projected match run
         materialized once and served from cache; light keys keep the
         lazy probe.  [Skew.matches] guarantees the result is
         byte-identical to the lazy expression at the relation's
         current version, so the fold stays order-identical to the
         sequential oracle at every parallelism degree. *)
      let schema = Ca.schema_of e in
      let left_key = Tuple.projector schema (List.map fst pairs) in
      let right_attrs = List.map snd pairs in
      let rschema = Relation.schema rel in
      let keep =
        List.filter (fun n -> not (List.mem n right_attrs)) (Schema.names rschema)
      in
      let rproj = Tuple.projector rschema keep in
      let part = Skew.create ~threshold:heavy_threshold () in
      let child = comp e in
      fun ~sn ~batch ->
        List.concat_map
          (fun tu ->
            let key = Array.to_list (left_key tu) in
            List.map
              (fun rtu -> Tuple.concat tu rtu)
              (Skew.matches part rel ~attrs:right_attrs ~project:rproj key))
          (child ~sn ~batch)
  | Ca.CrossChron (l, r) ->
      (* Theorem 4.3: requires the old value of the opposite operand,
         i.e. access to retained history — necessarily evaluated at run
         time, no compile-once shortcut exists. *)
      let cl = comp l and cr = comp r in
      fun ~sn ~batch ->
        let dl = cl ~sn ~batch and dr = cr ~sn ~batch in
        let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
        let cross left right =
          List.concat_map
            (fun ltu -> List.map (fun rtu -> Tuple.concat ltu rtu) right)
            left
        in
        cross dl old_r @ cross old_l dr @ cross dl dr
  | Ca.ThetaJoinChron (p, l, r) ->
      let keep = Predicate.compile (Ca.schema_of expr) p in
      let cl = comp l and cr = comp r in
      fun ~sn ~batch ->
        let dl = cl ~sn ~batch and dr = cr ~sn ~batch in
        let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
        let cross left right =
          List.concat_map
            (fun ltu ->
              List.filter_map
                (fun rtu ->
                  let tu = Tuple.concat ltu rtu in
                  if keep tu then Some tu else None)
                right)
            left
        in
        cross dl old_r @ cross old_l dr @ cross dl dr

let compile ?(heavy_threshold = 0) expr =
  Stats.incr Stats.Plan_compile;
  { expr; exec = comp ~heavy_threshold expr }

let run plan ~sn ~batch = plan.exec ~sn ~batch
let expr plan = plan.expr

let eval ?heavy_threshold expr ~sn ~batch =
  run (compile ?heavy_threshold expr) ~sn ~batch

let all_fresh schema sn tuples =
  match Schema.pos_opt schema Seqnum.attr with
  | None -> true
  | Some pos ->
      List.for_all
        (fun tu -> Seqnum.of_value (Tuple.get tu pos) = sn)
        tuples
