open Relational

type batch = (Chron.t * Tuple.t list) list
type weighted = (Tuple.t * int) list
type wbatch = (Chron.t * weighted) list

let delta_of_base batch c =
  match List.find_opt (fun (c', _) -> c' == c) batch with
  | Some (_, tuples) -> tuples
  | None -> []

module Tup_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal = Value.equal_list
  let hash = Value.hash_list
end)

(* Multiset difference [after − before] as a ℤ-weighted delta, in
   first-appearance order.  Occurrences present on both sides cancel
   (bumping [Stats.Weight_cancel] per cancelled pair); a tuple whose
   counts balance exactly disappears from the delta entirely. *)
let mdiff after before : weighted =
  let tbl = Tup_tbl.create 32 in
  let order = ref [] in
  let cell key =
    match Tup_tbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = (ref 0, ref 0) in
        Tup_tbl.add tbl key c;
        order := key :: !order;
        c
  in
  List.iter (fun tu -> incr (fst (cell (Array.to_list tu)))) after;
  List.iter (fun tu -> incr (snd (cell (Array.to_list tu)))) before;
  List.filter_map
    (fun key ->
      let a, b = Tup_tbl.find tbl key in
      let cancelled = min !a !b in
      if cancelled > 0 then Stats.add Stats.Weight_cancel cancelled;
      let w = !a - !b in
      if w = 0 then None else Some (Tuple.make key, w))
    (List.rev !order)

(* A compiled Δ-evaluator.  All expression-dependent work — schema
   derivation, predicate compilation, projector construction, key-join
   position resolution — happens once in [compile]; [run] then does only
   probe-and-fold work per appended batch.  The chronicle layer caches
   one plan per persistent view ([View.plan]), so steady-state
   maintenance recompiles nothing.

   Each node compiles into two evaluators sharing one set of compiled
   artifacts (predicates, projectors, and crucially the key-join
   heavy-light partition state):

   - [exec], the weight=+1 append fast path — byte-for-byte the
     pre-weighted evaluator; and
   - [wexec], the ℤ-weighted path used by retraction.  Linear operators
     (σ, Π, ×R, ⋈_key R, and the base chronicle) thread weights through
     unchanged.  Non-linear operators (∪ and − under set semantics,
     ⋈_SN, GROUPBY) cannot flip a weight through their own delta rule;
     but a CA delta at sequence number [sn] depends only on the at-[sn]
     slice of its base chronicles, so their weighted delta is the
     multiset difference of the node's own plain evaluation over the
     after-slices versus the before-slices ([mdiff]).  History-reading
     operators have no weighted form at all — [Db.retract]
     rematerializes such views from retained history instead. *)
type node = {
  x : sn:Seqnum.t -> batch:batch -> Tuple.t list;
  w : sn:Seqnum.t -> wbatch:wbatch -> before:batch -> after:batch -> weighted;
}

type plan = { expr : Ca.t; node : node }

let nonlinear x =
 fun ~sn ~wbatch:_ ~before ~after ->
  mdiff (x ~sn ~batch:after) (x ~sn ~batch:before)

let no_weighted what =
 fun ~sn:_ ~wbatch:_ ~before:_ ~after:_ ->
  invalid_arg
    (Printf.sprintf
       "Delta: %s reads retained history and has no weighted delta form \
        (rematerialize the view instead)"
       what)

let rec comp ~heavy_threshold expr : node =
  let comp = comp ~heavy_threshold in
  match expr with
  | Ca.Chronicle c ->
      {
        x = (fun ~sn:_ ~batch -> delta_of_base batch c);
        w = (fun ~sn:_ ~wbatch ~before:_ ~after:_ -> delta_of_base wbatch c);
      }
  | Ca.Select (p, e) ->
      let keep = Predicate.compile (Ca.schema_of e) p in
      let child = comp e in
      {
        x = (fun ~sn ~batch -> List.filter keep (child.x ~sn ~batch));
        w =
          (fun ~sn ~wbatch ~before ~after ->
            List.filter
              (fun (tu, _) -> keep tu)
              (child.w ~sn ~wbatch ~before ~after));
      }
  | Ca.Project (attrs, e) ->
      let proj = Tuple.projector (Ca.schema_of e) attrs in
      let child = comp e in
      {
        x = (fun ~sn ~batch -> List.map proj (child.x ~sn ~batch));
        w =
          (fun ~sn ~wbatch ~before ~after ->
            List.map
              (fun (tu, w) -> (proj tu, w))
              (child.w ~sn ~wbatch ~before ~after));
      }
  | Ca.SeqJoin (l, r) ->
      (* both deltas carry only the batch's sequence number, so the join
         degenerates to a product of the two deltas (appendix, Thm 4.1) *)
      let rs = Ca.schema_of r in
      let drop_sn =
        Tuple.projector rs
          (List.filter
             (fun n -> not (String.equal n Seqnum.attr))
             (Schema.names rs))
      in
      let cl = comp l and cr = comp r in
      let x ~sn ~batch =
        let dl = cl.x ~sn ~batch and dr = cr.x ~sn ~batch in
        if dl = [] || dr = [] then []
        else
          List.concat_map
            (fun ltu -> List.map (fun rtu -> Tuple.concat ltu (drop_sn rtu)) dr)
            dl
      in
      { x; w = nonlinear x }
  | Ca.Union (l, r) ->
      let cl = comp l and cr = comp r in
      let x ~sn ~batch = Tuple.dedup (cl.x ~sn ~batch @ cr.x ~sn ~batch) in
      { x; w = nonlinear x }
  | Ca.Diff (l, r) ->
      let cl = comp l and cr = comp r in
      let x ~sn ~batch = Tuple.diff (cl.x ~sn ~batch) (cr.x ~sn ~batch) in
      { x; w = nonlinear x }
  | Ca.GroupBySeq (gl, al, e) ->
      let grouper = Groupby.compiled (Ca.schema_of e) ~group_by:gl ~aggs:al in
      let child = comp e in
      let x ~sn ~batch = Groupby.run_compiled grouper (child.x ~sn ~batch) in
      { x; w = nonlinear x }
  | Ca.ProductRel (e, rel) ->
      let child = comp e in
      {
        x =
          (fun ~sn ~batch ->
            let delta = child.x ~sn ~batch in
            if delta = [] then []
            else
              Relation.fold
                (fun acc rtu ->
                  List.fold_left
                    (fun acc tu -> Tuple.concat tu rtu :: acc)
                    acc delta)
                [] rel
              |> List.rev);
        w =
          (fun ~sn ~wbatch ~before ~after ->
            let delta = child.w ~sn ~wbatch ~before ~after in
            if delta = [] then []
            else
              Relation.fold
                (fun acc rtu ->
                  List.fold_left
                    (fun acc (tu, w) -> (Tuple.concat tu rtu, w) :: acc)
                    acc delta)
                [] rel
              |> List.rev);
      }
  | Ca.KeyJoinRel (e, rel, pairs) ->
      (* join each Δ tuple with the matching relation tuples via an
         index probe on the join attributes (at most a constant number
         of matches in CA_⋈, by the key guarantee).  The probe is
         heavy-light partitioned per compiled site: keys whose
         frequency crosses the threshold get their projected match run
         materialized once and served from cache; light keys keep the
         lazy probe.  [Skew.matches] guarantees the result is
         byte-identical to the lazy expression at the relation's
         current version, so the fold stays order-identical to the
         sequential oracle at every parallelism degree.  Both the
         append and the weighted path probe through the same partition
         state. *)
      let schema = Ca.schema_of e in
      let left_key = Tuple.projector schema (List.map fst pairs) in
      let right_attrs = List.map snd pairs in
      let rschema = Relation.schema rel in
      let keep =
        List.filter (fun n -> not (List.mem n right_attrs)) (Schema.names rschema)
      in
      let rproj = Tuple.projector rschema keep in
      let part = Skew.create ~threshold:heavy_threshold () in
      let probe tu =
        let key = Array.to_list (left_key tu) in
        Skew.matches part rel ~attrs:right_attrs ~project:rproj key
      in
      let child = comp e in
      {
        x =
          (fun ~sn ~batch ->
            List.concat_map
              (fun tu -> List.map (fun rtu -> Tuple.concat tu rtu) (probe tu))
              (child.x ~sn ~batch));
        w =
          (fun ~sn ~wbatch ~before ~after ->
            List.concat_map
              (fun (tu, w) ->
                List.map (fun rtu -> (Tuple.concat tu rtu, w)) (probe tu))
              (child.w ~sn ~wbatch ~before ~after));
      }
  | Ca.CrossChron (l, r) ->
      (* Theorem 4.3: requires the old value of the opposite operand,
         i.e. access to retained history — necessarily evaluated at run
         time, no compile-once shortcut exists. *)
      let cl = comp l and cr = comp r in
      let x ~sn ~batch =
        let dl = cl.x ~sn ~batch and dr = cr.x ~sn ~batch in
        let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
        let cross left right =
          List.concat_map
            (fun ltu -> List.map (fun rtu -> Tuple.concat ltu rtu) right)
            left
        in
        cross dl old_r @ cross old_l dr @ cross dl dr
      in
      { x; w = no_weighted "CrossChron" }
  | Ca.ThetaJoinChron (p, l, r) ->
      let keep = Predicate.compile (Ca.schema_of expr) p in
      let cl = comp l and cr = comp r in
      let x ~sn ~batch =
        let dl = cl.x ~sn ~batch and dr = cr.x ~sn ~batch in
        let old_l = Eval.eval_before l sn and old_r = Eval.eval_before r sn in
        let cross left right =
          List.concat_map
            (fun ltu ->
              List.filter_map
                (fun rtu ->
                  let tu = Tuple.concat ltu rtu in
                  if keep tu then Some tu else None)
                right)
            left
        in
        cross dl old_r @ cross old_l dr @ cross dl dr
      in
      { x; w = no_weighted "ThetaJoinChron" }

let compile ?(heavy_threshold = 0) expr =
  Stats.incr Stats.Plan_compile;
  { expr; node = comp ~heavy_threshold expr }

let run plan ~sn ~batch = plan.node.x ~sn ~batch

let run_weighted plan ~sn ~wbatch ~before ~after =
  plan.node.w ~sn ~wbatch ~before ~after

let expr plan = plan.expr

let eval ?heavy_threshold expr ~sn ~batch =
  run (compile ?heavy_threshold expr) ~sn ~batch

let all_fresh schema sn tuples =
  match Schema.pos_opt schema Seqnum.attr with
  | None -> true
  | Some pos ->
      List.for_all
        (fun tu -> Seqnum.of_value (Tuple.get tu pos) = sn)
        tuples
