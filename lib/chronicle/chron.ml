open Relational

type retention = Discard | Window of int | Full

exception Not_retained of string
exception Restore_conflict of { chronicle : string; appended : int }

(* Retained storage: nothing, a ring of the last [n] tuples, or the full
   history in a growable array. *)
type store =
  | No_store
  | Ring of { buf : Tuple.t option array; mutable next : int; mutable count : int }
  | All of Tuple.t Vec.t

type t = {
  name : string;
  group : Group.t;
  user_schema : Schema.t;
  schema : Schema.t;
  retention : retention;
  store : store;
  mutable total : int;
  mutable last_sn : Seqnum.t option;
  mutable subscribers : (Seqnum.t -> Tuple.t list -> unit) list;
  mutable ring_undo : (int * Tuple.t option) list option;
      (* overwritten ring slots, most recent first; [Some] only while a
         transactional mark is active (see [mark]/[rollback]) *)
}

let create ~group ?(retention = Discard) ~name user_schema =
  if Schema.mem user_schema Seqnum.attr then
    invalid_arg
      (Printf.sprintf
         "Chron.create %s: user schema must not contain the reserved \
          sequencing attribute %S"
         name Seqnum.attr);
  let schema =
    Schema.concat (Schema.make [ (Seqnum.attr, Value.TInt) ]) user_schema
  in
  let store =
    match retention with
    | Discard -> No_store
    | Window n ->
        if n <= 0 then invalid_arg "Chron.create: window must be positive";
        Ring { buf = Array.make n None; next = 0; count = 0 }
    | Full -> All (Vec.create ())
  in
  {
    name;
    group;
    user_schema;
    schema;
    retention;
    store;
    total = 0;
    last_sn = None;
    subscribers = [];
    ring_undo = None;
  }

let name t = t.name
let group t = t.group
let user_schema t = t.user_schema
let schema t = t.schema
let retention t = t.retention
let total_appended t = t.total
let last_sn t = t.last_sn

let tag sn tuple = Tuple.concat [| Seqnum.value sn |] tuple
let sn_of tuple = Seqnum.of_value (Tuple.get tuple 0)

let store_tuple t tuple =
  match t.store with
  | No_store -> ()
  | Ring r ->
      (match t.ring_undo with
      | Some undo -> t.ring_undo <- Some ((r.next, r.buf.(r.next)) :: undo)
      | None -> ());
      r.buf.(r.next) <- Some tuple;
      r.next <- (r.next + 1) mod Array.length r.buf;
      r.count <- min (r.count + 1) (Array.length r.buf)
  | All v -> ignore (Vec.push v tuple)

let check_batch t tuples =
  List.iter
    (fun tu ->
      if not (Tuple.type_check t.user_schema tu) then
        invalid_arg
          (Format.asprintf "Chron.append %s: tuple %a does not match schema %a"
             t.name Tuple.pp tu Schema.pp t.user_schema))
    tuples

(* Record a batch already holding a claimed sequence number; returns the
   tagged tuples but does not notify subscribers (multi-chronicle batches
   notify only once everything is recorded). *)
let record t sn tuples =
  check_batch t tuples;
  let tagged = List.map (tag sn) tuples in
  List.iter (store_tuple t) tagged;
  t.total <- t.total + List.length tuples;
  t.last_sn <- Some sn;
  tagged

let notify t sn tagged =
  List.iter (fun f -> f sn tagged) (List.rev t.subscribers)

let append t tuples =
  let sn = Group.next_sn t.group in
  let tagged = record t sn tuples in
  notify t sn tagged;
  sn

let append_sparse t sn tuples =
  Group.claim_sn t.group sn;
  let tagged = record t sn tuples in
  notify t sn tagged

let append_multi group batch =
  List.iter
    (fun (c, _) ->
      if not (Group.same c.group group) then
        invalid_arg
          (Printf.sprintf "Chron.append_multi: %s is not in group %s" c.name
             (Group.name group)))
    batch;
  let sn = Group.next_sn group in
  let recorded = List.map (fun (c, tuples) -> (c, record c sn tuples)) batch in
  List.iter (fun (c, tagged) -> notify c sn tagged) recorded;
  sn

let on_append t f = t.subscribers <- f :: t.subscribers

let restore t ~total ~last_sn ~retained =
  if t.total <> 0 then
    raise (Restore_conflict { chronicle = t.name; appended = t.total });
  List.iter (store_tuple t) retained;
  t.total <- total;
  t.last_sn <- last_sn

(* ---- transactional marks (Db's atomic-append rollback path) ---- *)

type store_mark =
  | M_none
  | M_all of int
  | M_ring of { next : int; count : int }

type mark = { m_total : int; m_last_sn : Seqnum.t option; m_store : store_mark }

let mark t =
  (match t.store with Ring _ -> t.ring_undo <- Some [] | No_store | All _ -> ());
  {
    m_total = t.total;
    m_last_sn = t.last_sn;
    m_store =
      (match t.store with
      | No_store -> M_none
      | All v -> M_all (Vec.length v)
      | Ring r -> M_ring { next = r.next; count = r.count });
  }

let commit t = t.ring_undo <- None

let rollback t m =
  (match t.store, m.m_store with
  | No_store, M_none -> ()
  | All v, M_all n -> Vec.truncate v n
  | Ring r, M_ring { next; count } ->
      (* undo entries are most-recent-first: replaying them in order
         ends with each slot holding its pre-mark value, even if a big
         batch lapped the ring and overwrote a slot repeatedly *)
      (match t.ring_undo with
      | Some undo -> List.iter (fun (i, old) -> r.buf.(i) <- old) undo
      | None -> invalid_arg "Chron.rollback: no active mark");
      r.next <- next;
      r.count <- count
  | (No_store | All _ | Ring _), _ ->
      invalid_arg "Chron.rollback: mark is from a different chronicle");
  t.ring_undo <- None;
  t.total <- m.m_total;
  t.last_sn <- m.m_last_sn

let stored_count t =
  match t.store with
  | No_store -> 0
  | Ring r -> r.count
  | All v -> Vec.length v

let scan f t =
  let deliver tuple =
    Stats.incr Stats.Chronicle_scan;
    f tuple
  in
  match t.store with
  | No_store -> ()
  | Ring r ->
      let n = Array.length r.buf in
      let start = if r.count < n then 0 else r.next in
      for i = 0 to r.count - 1 do
        match r.buf.((start + i) mod n) with
        | Some tuple -> deliver tuple
        | None -> assert false
      done
  | All v -> Vec.iter deliver v

let stored t =
  let acc = ref [] in
  scan (fun tu -> acc := tu :: !acc) t;
  List.rev !acc

(* ---- retraction support (ℤ-weighted deltas) ----

   Retraction edits retained history in place, so it demands [Full]
   retention: a ring may already have evicted the occurrence being
   removed, and [Discard] never had it.  [total]/[last_sn] deliberately
   do not move — they count the append history of the chronicle, and a
   retraction is a later event, not an un-happening of the append. *)

let all_store what t =
  match t.store with
  | All v -> v
  | No_store | Ring _ ->
      raise
        (Not_retained
           (Printf.sprintf
              "%s %s: retraction requires Full retention (stored occurrences \
               must be addressable)"
              what t.name))

let at_sn t sn =
  let v = all_store "Chron.at_sn" t in
  let acc = ref [] in
  Vec.iter (fun tu -> if sn_of tu = sn then acc := tu :: !acc) v;
  List.rev !acc

let remove_stored t sn rows =
  let v = all_store "Chron.remove_stored" t in
  check_batch t rows;
  let pending = ref (List.map (tag sn) rows) in
  let kept =
    Vec.fold
      (fun acc tu ->
        let rec take seen = function
          | [] -> None
          | p :: rest when Tuple.equal p tu -> Some (List.rev_append seen rest)
          | p :: rest -> take (p :: seen) rest
        in
        match take [] !pending with
        | Some rest ->
            pending := rest;
            acc
        | None -> tu :: acc)
      [] v
  in
  (match !pending with
  | [] -> ()
  | missing ->
      invalid_arg
        (Format.asprintf
           "Chron.remove_stored %s: tuple %a has no stored occurrence at sn %d"
           t.name Tuple.pp (List.hd missing) sn));
  Vec.clear v;
  List.iter (fun tu -> ignore (Vec.push v tu)) (List.rev kept)

let reset_store t tagged =
  let v = all_store "Chron.reset_store" t in
  Vec.clear v;
  List.iter (fun tu -> ignore (Vec.push v tu)) tagged

let pp ppf t =
  Format.fprintf ppf "chronicle %s %a [appended %d, retained %d]" t.name
    Schema.pp t.user_schema t.total (stored_count t)
