open Relational

type t =
  | Chronicle of Chron.t
  | Select of Predicate.t * t
  | Project of string list * t
  | SeqJoin of t * t
  | Union of t * t
  | Diff of t * t
  | GroupBySeq of string list * Aggregate.call list * t
  | ProductRel of t * Relation.t
  | KeyJoinRel of t * Relation.t * (string * string) list
  | CrossChron of t * t
  | ThetaJoinChron of Predicate.t * t * t

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let rec schema_of = function
  | Chronicle c -> Chron.schema c
  | Select (p, e) ->
      let s = schema_of e in
      List.iter
        (fun a ->
          if not (Schema.mem s a) then
            ill_formed "selection mentions unknown attribute %s" a)
        (Predicate.attrs p);
      s
  | Project (attrs, e) -> (
      let s = schema_of e in
      try Schema.project s attrs
      with Schema.Unknown_attribute a ->
        ill_formed "projection on unknown attribute %s" a)
  | SeqJoin (l, r) -> (
      let ls = schema_of l and rs = schema_of r in
      let rs' = Schema.remove rs Seqnum.attr in
      try Schema.concat ls rs'
      with Schema.Duplicate_attribute a ->
        ill_formed "sequence join operands share attribute %s" a)
  | Union (l, r) | Diff (l, r) ->
      let ls = schema_of l and rs = schema_of r in
      if not (Schema.union_compatible ls rs) then
        ill_formed "union/difference operands not compatible: %a vs %a"
          Schema.pp ls Schema.pp rs;
      ls
  | GroupBySeq (gl, al, e) -> (
      let s = schema_of e in
      try Aggregate.result_schema s gl al
      with Schema.Unknown_attribute a ->
        ill_formed "grouping on unknown attribute %s" a)
  | ProductRel (e, r) -> (
      try Schema.concat (schema_of e) (Relation.schema r)
      with Schema.Duplicate_attribute a ->
        ill_formed "product with %s shares attribute %s" (Relation.name r) a)
  | KeyJoinRel (e, r, pairs) -> (
      let ls = schema_of e and rs = Relation.schema r in
      List.iter
        (fun (a, b) ->
          if not (Schema.mem ls a) then
            ill_formed "key join: chronicle side lacks attribute %s" a;
          if not (Schema.mem rs b) then
            ill_formed "key join: relation %s lacks attribute %s"
              (Relation.name r) b)
        pairs;
      let dropped = List.map snd pairs in
      let keep =
        List.filter (fun n -> not (List.mem n dropped)) (Schema.names rs)
      in
      try Schema.concat ls (Schema.project rs keep)
      with Schema.Duplicate_attribute a ->
        ill_formed "key join with %s shares attribute %s" (Relation.name r) a)
  | CrossChron (l, r) -> (
      try Schema.concat (schema_of l) (Schema.prefix "r" (schema_of r))
      with Schema.Duplicate_attribute a ->
        ill_formed "chronicle cross product shares attribute %s" a)
  | ThetaJoinChron (p, l, r) ->
      let s =
        try Schema.concat (schema_of l) (Schema.prefix "r" (schema_of r))
        with Schema.Duplicate_attribute a ->
          ill_formed "chronicle theta join shares attribute %s" a
      in
      List.iter
        (fun a ->
          if not (Schema.mem s a) then
            ill_formed "theta join predicate mentions unknown attribute %s" a)
        (Predicate.attrs p);
      s

let chronicles expr =
  let rec go acc = function
    | Chronicle c -> if List.memq c acc then acc else c :: acc
    | Select (_, e) | Project (_, e) | GroupBySeq (_, _, e)
    | ProductRel (e, _) | KeyJoinRel (e, _, _) ->
        go acc e
    | SeqJoin (l, r) | Union (l, r) | Diff (l, r) | CrossChron (l, r)
    | ThetaJoinChron (_, l, r) ->
        go (go acc l) r
  in
  List.rev (go [] expr)

let relations expr =
  let rec go acc = function
    | Chronicle _ -> acc
    | Select (_, e) | Project (_, e) | GroupBySeq (_, _, e) -> go acc e
    | ProductRel (e, r) | KeyJoinRel (e, r, _) ->
        go (if List.memq r acc then acc else r :: acc) e
    | SeqJoin (l, r) | Union (l, r) | Diff (l, r) | CrossChron (l, r)
    | ThetaJoinChron (_, l, r) ->
        go (go acc l) r
  in
  List.rev (go [] expr)

let depends_on expr c = List.memq c (chronicles expr)

let group_of expr =
  match chronicles expr with
  | [] -> ill_formed "expression mentions no chronicle"
  | c :: rest ->
      let g = Chron.group c in
      List.iter
        (fun c' ->
          if not (Group.same (Chron.group c') g) then
            ill_formed "chronicles %s and %s are in different groups"
              (Chron.name c) (Chron.name c'))
        rest;
      g

let rec unions = function
  | Chronicle _ -> 0
  | Select (_, e) | Project (_, e) | GroupBySeq (_, _, e)
  | ProductRel (e, _) | KeyJoinRel (e, _, _) ->
      unions e
  | Union (l, r) -> 1 + unions l + unions r
  | Diff (l, r) | SeqJoin (l, r) | CrossChron (l, r) | ThetaJoinChron (_, l, r)
    ->
      unions l + unions r

let rec joins = function
  | Chronicle _ -> 0
  | Select (_, e) | Project (_, e) | GroupBySeq (_, _, e) -> joins e
  | ProductRel (e, _) | KeyJoinRel (e, _, _) -> 1 + joins e
  | SeqJoin (l, r) | CrossChron (l, r) | ThetaJoinChron (_, l, r) ->
      1 + joins l + joins r
  | Union (l, r) | Diff (l, r) -> joins l + joins r

let rec reads_history = function
  | Chronicle _ -> false
  | Select (_, e) | Project (_, e) | GroupBySeq (_, _, e)
  | ProductRel (e, _) | KeyJoinRel (e, _, _) ->
      reads_history e
  | SeqJoin (l, r) | Union (l, r) | Diff (l, r) ->
      reads_history l || reads_history r
  | CrossChron _ | ThetaJoinChron _ ->
      (* the non-CA joins pair the Δ-batch against the *whole retained
         history* of the other operand (Eval.eval_before): their Δ-fold
         reads chronicle state beyond the batch itself *)
      true

let covers_key rel pairs =
  match Relation.key rel with
  | None -> false
  | Some key ->
      let joined = List.map snd pairs in
      List.for_all (fun k -> List.mem k joined) key

let check ?(allow_non_ca = false) expr =
  let rec go = function
    | Chronicle _ -> ()
    | Select (p, e) ->
        if not (Predicate.is_ca_form p) then
          ill_formed
            "selection predicate %a is not a disjunction of comparisons \
             (Definition 4.1)"
            Predicate.pp p;
        go e
    | Project (attrs, e) ->
        if not (List.mem Seqnum.attr attrs) then
          ill_formed
            "projection %s drops the sequencing attribute: the result is \
             not a chronicle (Theorem 4.3); use the summarization step of \
             SCA instead"
            (String.concat "," attrs);
        go e
    | SeqJoin (l, r) | Union (l, r) | Diff (l, r) ->
        go l;
        go r
    | GroupBySeq (gl, _, e) ->
        if not (List.mem Seqnum.attr gl) then
          ill_formed
            "grouping list %s omits the sequencing attribute: the result \
             is not a chronicle (Theorem 4.3); use the summarization step \
             of SCA instead"
            (String.concat "," gl);
        go e
    | ProductRel (e, _) -> go e
    | KeyJoinRel (e, r, pairs) ->
        if not (covers_key r pairs) then
          ill_formed
            "key join with %s does not cover a key of the relation: the \
             constant-fanout guarantee of CA_M (Definition 4.2) fails"
            (Relation.name r);
        go e
    | CrossChron (l, r) ->
        if not allow_non_ca then
          ill_formed
            "cross product between chronicles is outside CA: incremental \
             maintenance would depend on the chronicle size (Theorem 4.3)";
        go l;
        go r
    | ThetaJoinChron (p, l, r) ->
        if not allow_non_ca then
          ill_formed
            "non-equijoin (%a) between chronicles is outside CA: \
             incremental maintenance would depend on the chronicle size \
             (Theorem 4.3)"
            Predicate.pp p;
        go l;
        go r
  in
  go expr;
  ignore (schema_of expr);
  (* also validates group coherence *)
  ignore (group_of expr)

let rec pp ppf = function
  | Chronicle c -> Format.pp_print_string ppf (Chron.name c)
  | Select (p, e) -> Format.fprintf ppf "@[σ[%a](%a)@]" Predicate.pp p pp e
  | Project (attrs, e) ->
      Format.fprintf ppf "@[π[%s](%a)@]" (String.concat "," attrs) pp e
  | SeqJoin (l, r) -> Format.fprintf ppf "@[(%a ⋈sn %a)@]" pp l pp r
  | Union (l, r) -> Format.fprintf ppf "@[(%a ∪ %a)@]" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "@[(%a − %a)@]" pp l pp r
  | GroupBySeq (gl, al, e) ->
      Format.fprintf ppf "@[γ[%s; %a](%a)@]" (String.concat "," gl)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Aggregate.pp_call)
        al pp e
  | ProductRel (e, r) ->
      Format.fprintf ppf "@[(%a × %s)@]" pp e (Relation.name r)
  | KeyJoinRel (e, r, pairs) ->
      let pp_pair ppf (a, b) = Format.fprintf ppf "%s=%s" a b in
      Format.fprintf ppf "@[(%a ⋈key[%a] %s)@]" pp e
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_pair)
        pairs (Relation.name r)
  | CrossChron (l, r) -> Format.fprintf ppf "@[(%a ×! %a)@]" pp l pp r
  | ThetaJoinChron (p, l, r) ->
      Format.fprintf ppf "@[(%a ⋈θ![%a] %a)@]" pp l Predicate.pp p pp r
