open Relational

(** Incremental change propagation through chronicle-algebra
    expressions — the computational content of Theorems 4.1 and 4.2.

    Given one append batch (a set of tuples inserted under a single
    fresh sequence number, possibly into several chronicles of one
    group), [eval] computes the set of tuples the batch adds to the
    expression — {e without} accessing the stored chronicles, the
    materialized view, or any intermediate view, for every operator of
    CA.  Only the deliberately non-CA operators ([Ca.CrossChron],
    [Ca.ThetaJoinChron]) fall back to re-reading retained history
    (bumping [Stats.Chronicle_scan]); their cost is what Theorem 4.3
    says cannot be avoided.

    The Δ-rules, from the paper's appendix:
    {ul
    {- Δ(σₚE) = σₚ(ΔE)}
    {- Δ(ΠE) = Π(ΔE)}
    {- Δ(E₁ ∪ E₂) = ΔE₁ ∪ ΔE₂ (set union)}
    {- Δ(E₁ − E₂) = ΔE₁ − ΔE₂ (sound because fresh sequence numbers
       cannot collide with any pre-existing tuple of the group)}
    {- Δ(C₁ ⋈_SN C₂) = ΔC₁ ⋈_SN ΔC₂ (the cross terms are empty for the
       same reason)}
    {- Δ(GROUPBY(E, GL ∋ SN, AL)) = GROUPBY(ΔE, GL, AL) (fresh sequence
       numbers open brand-new groups)}
    {- Δ(C × R) = ΔC × R, with R's {e current} version (the implicit
       temporal join of §2.3)}
    {- Δ(C ⋈_key R) = one index probe into R per ΔC tuple.}} *)

type batch = (Chron.t * Tuple.t list) list
(** The tagged tuples appended to each chronicle, all under one
    sequence number. *)

type weighted = (Tuple.t * int) list
(** A ℤ-weighted delta (a Z-set): each tuple with the signed number of
    occurrences it gains ([> 0]) or loses ([< 0]).  The append path is
    the degenerate all-weights-[+1] case and never materializes this
    form. *)

type wbatch = (Chron.t * weighted) list
(** The weighted change to each chronicle, all under one sequence
    number — for retraction, the removed tagged tuples with weight
    [-1]. *)

type plan
(** A compiled Δ-evaluator: schemas resolved, predicates/projectors
    compiled, key-join positions bound — all once.  Running a plan does
    only probe-and-fold work, which is what makes per-append maintenance
    cost a small constant on top of the paper's complexity class. *)

val compile : ?heavy_threshold:int -> Ca.t -> plan
(** One-time analysis (bumps [Stats.Plan_compile]).  Raises the same
    schema errors [Ca.schema_of] would.

    [heavy_threshold] configures the heavy-light key partition each
    [Ca.KeyJoinRel] site of the plan carries ({!Relational.Skew}):
    [0] (default) = adaptive promotion threshold, positive = fixed
    bar, very large = partitioning effectively off.  Partition state
    lives inside the compiled plan, so it is built once per view and
    discarded with the plan on redefinition; it never changes the
    tuples or order a run produces. *)

val run : plan -> sn:Seqnum.t -> batch:batch -> Tuple.t list
(** Tuples the batch adds to the expression; zero recompilation. *)

val run_weighted :
  plan ->
  sn:Seqnum.t ->
  wbatch:wbatch ->
  before:batch ->
  after:batch ->
  weighted
(** ℤ-weighted change of the expression's output caused by [wbatch] at
    sequence number [sn].  Linear operators thread weights through the
    same compiled artifacts (including each key-join site's heavy-light
    partition) as {!run}; non-linear operators (∪, −, ⋈_SN, GROUPBY)
    evaluate their own plain delta over [after] versus [before] — the
    full at-[sn] slices of every base chronicle, after and before the
    mutation — and return the multiset difference (cancelled
    occurrences bump [Stats.Weight_cancel]).  Raises
    [Invalid_argument] on history-reading operators ([Ca.CrossChron],
    [Ca.ThetaJoinChron]): such views must be rematerialized, not
    incrementally unwound. *)

val expr : plan -> Ca.t
(** The expression the plan was compiled from. *)

val eval : ?heavy_threshold:int -> Ca.t -> sn:Seqnum.t -> batch:batch -> Tuple.t list
(** Tuples added to the expression by the batch; [run ∘ compile].
    One-shot convenience — repeated callers should hold a {!plan}
    (or use the per-view cache, {!View.plan}). *)

val all_fresh : Schema.t -> Seqnum.t -> Tuple.t list -> bool
(** Theorem 4.1 check: every tuple's sequencing attribute equals the
    batch's sequence number (the delta contains only "new sequence
    number tuples").  Vacuously true for schemas without the sequencing
    attribute. *)
