(** Tokens of the view-definition language ℒ. *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  (* keywords *)
  | Kw_create
  | Kw_define
  | Kw_chronicle
  | Kw_relation
  | Kw_view
  | Kw_as
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_group
  | Kw_by
  | Kw_join
  | Kw_on
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_key
  | Kw_append
  | Kw_retract
  | Kw_insert
  | Kw_into
  | Kw_values
  | Kw_show
  | Kw_classify
  | Kw_true
  | Kw_false
  | Kw_retain
  | Kw_window
  | Kw_full
  | Kw_periodic
  | Kw_calendar
  | Kw_tiling
  | Kw_sliding
  | Kw_stride
  | Kw_width
  | Kw_start
  | Kw_expire
  | Kw_windowed
  | Kw_buckets
  | Kw_advance
  | Kw_clock
  | Kw_to
  | Kw_at
  | Kw_rule
  | Kw_when
  | Kw_then
  | Kw_repeat
  | Kw_event
  | Kw_alerts
  | Kw_within
  | Kw_load
  | Kw_cooldown
  | Kw_reset
  | Kw_audit
  | Kw_stats
  | Kw_counters
  | Kw_drop
  | Kw_plan
  | Kw_set
  | Kw_batch
  | Kw_flush
  (* punctuation *)
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  (* operators *)
  | Op_eq
  | Op_ne
  | Op_le
  | Op_lt
  | Op_ge
  | Op_gt
  | Eof

val keyword_of_string : string -> t option
(** Case-insensitive keyword recognition. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
