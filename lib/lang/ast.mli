open Relational

(** Surface syntax of the view-definition language ℒ.

    The language covers exactly the fragment that the summarized
    chronicle algebra can classify: single-chronicle bodies with an
    optional key join against one relation, a WHERE clause (top-level
    conjunctions become nested selections; each conjunct must be a
    Definition 4.1 disjunction of comparisons), and a SELECT list that
    is either a pure projection or grouping with incrementally
    computable aggregates. *)

type operand = Attr of string | Lit of Value.t

type comparison = { left : operand; op : Predicate.op; right : operand }

type cond =
  | Cmp of comparison
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type select_item =
  | Col of string  (** plain attribute *)
  | Agg of { func : Aggregate.func; arg : string option; alias : string option }

type join_clause = { rel : string; on : (string * string) list }
      (** [on]: (chronicle attribute, relation attribute) pairs *)

type select = {
  items : select_item list;
  chronicle : string;
  join : join_clause option;
  where : cond option;
  group_by : string list;
}

type retention_spec = Retain_window of int | Retain_full

type column = string * Value.ty

(** Calendar of a periodic view (§5.1): tiling billing periods, sliding
    windows, or a general stride. *)
type calendar_spec = {
  shape : [ `Tiling | `Sliding | `Stride of int ];
  cal_start : int;
  cal_width : int;
}

(** Surface event patterns (§6's event algebra): THEN binds tightest,
    then AND, then OR; REPEAT is sugar for a THEN-chain. *)
type event_pattern =
  | Ev_atom of string option * cond
  | Ev_seq of event_pattern * event_pattern
  | Ev_and of event_pattern * event_pattern
  | Ev_or of event_pattern * event_pattern
  | Ev_repeat of int * event_pattern

(** Ad-hoc query over views and relations (§2.2: "queries that access
    the relations and persistent views can be written in any language"
    — here, unrestricted relational algebra with grouping). *)
type query = {
  q_items : select_item list;
  q_from : string;
  q_join : (string * (string * string) list) option;
  q_where : cond option;
  q_group : string list;
}

type stmt =
  | Create_chronicle of { name : string; columns : column list; retain : retention_spec option }
  | Create_relation of { name : string; columns : column list; key : string list }
  | Define_view of { name : string; select : select }
  | Define_periodic of {
      name : string;
      select : select;
      calendar : calendar_spec;
      expire : int option;
    }
  | Define_windowed of {
      name : string;
      select : select;
      buckets : int;
      bucket_width : int;
    }
  | Append_into of { chronicle : string; rows : Value.t list list }
  | Retract_from of { chronicle : string; rows : Value.t list list }
      (** [RETRACT FROM c VALUES (...), ...]: remove one stored
          occurrence of each row (ℤ-weighted delta, weight [-1]) and
          unwind every persistent view.  Requires [RETAIN FULL]. *)
  | Insert_into of { relation : string; rows : Value.t list list }
  | Load_csv of { target : string; path : string }
  | Define_rule of {
      name : string;
      chronicle : string;
      key : string list;
      within : int option;
      cooldown : int option;
      reset_on_match : bool;
      pattern : event_pattern;
    }
  | Advance_clock of int
  | Query of query
  | Show_view of string
  | Show_classify of string
  | Show_periodic of { name : string; index : int option }
  | Show_windowed of string
  | Show_alerts
  | Show_audit
  | Show_plan of string
  | Show_stats
  | Show_counters
      (** [SHOW COUNTERS]: the engine-wide {!Stats} work counters
          (index probes, tuple reads, …) as rows — the observable the
          differential plan tests and the CLI's [--jobs] runs assert
          on. *)
  | Drop_view of string
  | Set_batch of int
      (** [SET BATCH n]: group-commit threshold of the session's
          staging queue — up to [n] appends commit as one journal
          record ([n = 1]: every append commits immediately). *)
  | Flush  (** [FLUSH]: commit everything staged now. *)

val cond_to_predicate : cond -> Predicate.t
val conjuncts : cond -> cond list
(** Split top-level ANDs: [a AND (b OR c) AND d] → [a; b OR c; d]. *)

val pp_stmt : Format.formatter -> stmt -> unit
