(** Whole-session snapshots.

    {!Chronicle_core.Snapshot} captures the database (catalog, group
    watermarks/clocks, relations, retained windows, persistent-view
    materializations).  A language session additionally owns periodic
    view families, derived windowed views and event detectors; this
    module serializes all of it, so `chronicle-cli run --save/--load`
    restores a session exactly — partial event-pattern instances, open
    billing periods, cyclic window buffers and all.

    Still not captured: pending future-effective relation updates
    (their update functions are code; saving refuses while any are
    queued) and [on_match]/[on_batch] callbacks (re-register after
    load). *)

exception Session_snapshot_error of string

val save : Session.t -> string
val load : ?jobs:int -> ?heavy_threshold:int -> string -> Session.t
(** Raises {!Session_snapshot_error},
    [Chronicle_core.Snapshot.Snapshot_error] or [Relational.Sexp.Parse_error]
    on malformed input.  [jobs] is the maintenance parallelism degree
    of the restored database (see {!Chronicle_core.Db.create}). *)

val save_file : Session.t -> string -> unit
val load_file : ?jobs:int -> ?heavy_threshold:int -> string -> Session.t
