open Chronicle_core
open Chronicle_temporal
open Chronicle_events

(** A language session: a chronicle database plus the periodic-view
    families and derived windowed views defined through the surface
    language (the database itself only knows plain persistent views;
    the temporal extensions live one layer up). *)

type t

val create : ?jobs:int -> ?heavy_threshold:int -> unit -> t
(** [jobs] is the maintenance parallelism degree of the underlying
    database (see {!Db.create}; default 1 = sequential, 0 = the
    recommended domain count).  [heavy_threshold] is the heavy-light
    promotion bar for key-join view maintenance (0 = adaptive). *)

val of_db : Db.t -> t
(** Wrap an existing database (e.g. one restored from a snapshot). *)

val db : t -> Db.t

(** {2 Group commit}

    Every session owns a staging queue ({!Chronicle_durability.Group})
    in front of the database's transaction path.  [APPEND INTO] goes
    through it; with the default batch threshold of 1 every append
    commits immediately (byte-identical to an unstaged {!Db.append}),
    while [SET BATCH n] lets up to [n] staged appends commit as one
    group — one journal record and one sync under a durability layer.
    {!Analyze.exec} flushes the queue before any statement that could
    observe database state, so staged appends are never visible out of
    order. *)

val stager : t -> Chronicle_durability.Group.t

val batch : t -> int
val set_batch : t -> int -> unit
(** Raises [Invalid_argument] if the threshold is below 1. *)

val flush : t -> unit
(** Commit everything staged (no-op when nothing is). *)

val add_periodic : t -> string -> Periodic.t -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val periodic : t -> string -> Periodic.t option

val add_windowed : t -> string -> Windowed_view.t -> unit
val windowed : t -> string -> Windowed_view.t option

val detector : t -> Chron.t -> Detector.t
(** The (unique, lazily created and database-attached) event detector
    of a chronicle. *)

val detectors : t -> Detector.t list

(** {2 Enumeration} (sorted by name; session snapshots and tooling) *)

val periodics : t -> (string * Periodic.t) list
val windowed_views : t -> (string * Windowed_view.t) list
val named_detectors : t -> (string * Detector.t) list
(** Keyed by chronicle name. *)
