open Chronicle_core
open Chronicle_temporal
open Chronicle_events
module Staging = Chronicle_durability.Group

type t = {
  db : Db.t;
  stager : Staging.t;
  periodics : (string, Periodic.t) Hashtbl.t;
  windows : (string, Windowed_view.t) Hashtbl.t;
  detectors : (string, Detector.t) Hashtbl.t; (* by chronicle name *)
}

let of_db db =
  {
    db;
    stager = Staging.create db;
    periodics = Hashtbl.create 8;
    windows = Hashtbl.create 8;
    detectors = Hashtbl.create 8;
  }

let create ?jobs ?heavy_threshold () = of_db (Db.create ?jobs ?heavy_threshold ())

let db t = t.db
let stager t = t.stager
let batch t = Staging.batch t.stager
let set_batch t n = Staging.set_batch t.stager n
let flush t = Staging.flush t.stager

let add_periodic t name family =
  if Hashtbl.mem t.periodics name then
    invalid_arg (Printf.sprintf "Session: periodic view %s already exists" name);
  Hashtbl.add t.periodics name family

let periodic t name = Hashtbl.find_opt t.periodics name

let add_windowed t name wv =
  if Hashtbl.mem t.windows name then
    invalid_arg (Printf.sprintf "Session: windowed view %s already exists" name);
  Hashtbl.add t.windows name wv

let windowed t name = Hashtbl.find_opt t.windows name

let detector t chron =
  let cname = Chron.name chron in
  match Hashtbl.find_opt t.detectors cname with
  | Some det -> det
  | None ->
      let det = Detector.create chron in
      Detector.attach t.db det;
      Hashtbl.add t.detectors cname det;
      det

let detectors t = Hashtbl.fold (fun _ d acc -> d :: acc) t.detectors []

let sorted_bindings tbl =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let periodics t = sorted_bindings t.periodics
let windowed_views t = sorted_bindings t.windows
let named_detectors t = sorted_bindings t.detectors
