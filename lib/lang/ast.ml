open Relational

type operand = Attr of string | Lit of Value.t

type comparison = { left : operand; op : Predicate.op; right : operand }

type cond =
  | Cmp of comparison
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type select_item =
  | Col of string
  | Agg of { func : Aggregate.func; arg : string option; alias : string option }

type join_clause = { rel : string; on : (string * string) list }

type select = {
  items : select_item list;
  chronicle : string;
  join : join_clause option;
  where : cond option;
  group_by : string list;
}

type retention_spec = Retain_window of int | Retain_full

type column = string * Value.ty

type calendar_spec = {
  shape : [ `Tiling | `Sliding | `Stride of int ];
  cal_start : int;
  cal_width : int;
}

(** Surface event patterns (§6's event algebra): THEN binds tightest,
    then AND, then OR; REPEAT is sugar for a THEN-chain. *)
type event_pattern =
  | Ev_atom of string option * cond
  | Ev_seq of event_pattern * event_pattern
  | Ev_and of event_pattern * event_pattern
  | Ev_or of event_pattern * event_pattern
  | Ev_repeat of int * event_pattern

type query = {
  q_items : select_item list;
  q_from : string;
  q_join : (string * (string * string) list) option;
  q_where : cond option;
  q_group : string list;
}

type stmt =
  | Create_chronicle of { name : string; columns : column list; retain : retention_spec option }
  | Create_relation of { name : string; columns : column list; key : string list }
  | Define_view of { name : string; select : select }
  | Define_periodic of {
      name : string;
      select : select;
      calendar : calendar_spec;
      expire : int option;
    }
  | Define_windowed of {
      name : string;
      select : select;
      buckets : int;
      bucket_width : int;
    }
  | Append_into of { chronicle : string; rows : Value.t list list }
  | Retract_from of { chronicle : string; rows : Value.t list list }
  | Insert_into of { relation : string; rows : Value.t list list }
  | Load_csv of { target : string; path : string }
  | Define_rule of {
      name : string;
      chronicle : string;
      key : string list;
      within : int option;
      cooldown : int option;
      reset_on_match : bool;
      pattern : event_pattern;
    }
  | Advance_clock of int
  | Query of query
  | Show_view of string
  | Show_classify of string
  | Show_periodic of { name : string; index : int option }
  | Show_windowed of string
  | Show_alerts
  | Show_audit
  | Show_plan of string
  | Show_stats
  | Show_counters
  | Drop_view of string
  | Set_batch of int
  | Flush

let operand_to_pred = function
  | Attr a -> Predicate.Attr a
  | Lit v -> Predicate.Const v

let rec cond_to_predicate = function
  | Cmp { left; op; right } ->
      Predicate.Cmp (operand_to_pred left, op, operand_to_pred right)
  | And (a, b) -> Predicate.And (cond_to_predicate a, cond_to_predicate b)
  | Or (a, b) -> Predicate.Or (cond_to_predicate a, cond_to_predicate b)
  | Not c -> Predicate.Not (cond_to_predicate c)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | c -> [ c ]

let pp_stmt ppf = function
  | Create_chronicle { name; columns; _ } ->
      Format.fprintf ppf "CREATE CHRONICLE %s (%d columns)" name
        (List.length columns)
  | Create_relation { name; columns; key } ->
      Format.fprintf ppf "CREATE RELATION %s (%d columns) KEY (%s)" name
        (List.length columns) (String.concat ", " key)
  | Define_view { name; _ } -> Format.fprintf ppf "DEFINE VIEW %s" name
  | Define_periodic { name; _ } ->
      Format.fprintf ppf "DEFINE PERIODIC VIEW %s" name
  | Define_windowed { name; buckets; _ } ->
      Format.fprintf ppf "DEFINE WINDOWED VIEW %s (%d buckets)" name buckets
  | Define_rule { name; chronicle; _ } ->
      Format.fprintf ppf "DEFINE RULE %s ON %s" name chronicle
  | Show_alerts -> Format.fprintf ppf "SHOW ALERTS"
  | Show_audit -> Format.fprintf ppf "SHOW AUDIT"
  | Show_plan name -> Format.fprintf ppf "SHOW PLAN %s" name
  | Show_stats -> Format.fprintf ppf "SHOW STATS"
  | Show_counters -> Format.fprintf ppf "SHOW COUNTERS"
  | Drop_view name -> Format.fprintf ppf "DROP VIEW %s" name
  | Advance_clock c -> Format.fprintf ppf "ADVANCE CLOCK TO %d" c
  | Query { q_from; _ } -> Format.fprintf ppf "SELECT ... FROM %s" q_from
  | Show_periodic { name; index } ->
      Format.fprintf ppf "SHOW PERIODIC %s%s" name
        (match index with None -> "" | Some i -> Printf.sprintf " AT %d" i)
  | Show_windowed name -> Format.fprintf ppf "SHOW WINDOWED %s" name
  | Append_into { chronicle; rows } ->
      Format.fprintf ppf "APPEND INTO %s (%d rows)" chronicle (List.length rows)
  | Retract_from { chronicle; rows } ->
      Format.fprintf ppf "RETRACT FROM %s (%d rows)" chronicle
        (List.length rows)
  | Load_csv { target; path } ->
      Format.fprintf ppf "LOAD INTO %s FROM %S" target path
  | Insert_into { relation; rows } ->
      Format.fprintf ppf "INSERT INTO %s (%d rows)" relation (List.length rows)
  | Show_view name -> Format.fprintf ppf "SHOW VIEW %s" name
  | Show_classify name -> Format.fprintf ppf "SHOW CLASSIFY %s" name
  | Set_batch n -> Format.fprintf ppf "SET BATCH %d" n
  | Flush -> Format.fprintf ppf "FLUSH"
