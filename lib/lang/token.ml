type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Kw_create
  | Kw_define
  | Kw_chronicle
  | Kw_relation
  | Kw_view
  | Kw_as
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_group
  | Kw_by
  | Kw_join
  | Kw_on
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_key
  | Kw_append
  | Kw_retract
  | Kw_insert
  | Kw_into
  | Kw_values
  | Kw_show
  | Kw_classify
  | Kw_true
  | Kw_false
  | Kw_retain
  | Kw_window
  | Kw_full
  | Kw_periodic
  | Kw_calendar
  | Kw_tiling
  | Kw_sliding
  | Kw_stride
  | Kw_width
  | Kw_start
  | Kw_expire
  | Kw_windowed
  | Kw_buckets
  | Kw_advance
  | Kw_clock
  | Kw_to
  | Kw_at
  | Kw_rule
  | Kw_when
  | Kw_then
  | Kw_repeat
  | Kw_event
  | Kw_alerts
  | Kw_within
  | Kw_load
  | Kw_cooldown
  | Kw_reset
  | Kw_audit
  | Kw_stats
  | Kw_counters
  | Kw_drop
  | Kw_plan
  | Kw_set
  | Kw_batch
  | Kw_flush
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  | Op_eq
  | Op_ne
  | Op_le
  | Op_lt
  | Op_ge
  | Op_gt
  | Eof

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "CREATE" -> Some Kw_create
  | "DEFINE" -> Some Kw_define
  | "CHRONICLE" -> Some Kw_chronicle
  | "RELATION" -> Some Kw_relation
  | "VIEW" -> Some Kw_view
  | "AS" -> Some Kw_as
  | "SELECT" -> Some Kw_select
  | "FROM" -> Some Kw_from
  | "WHERE" -> Some Kw_where
  | "GROUP" -> Some Kw_group
  | "BY" -> Some Kw_by
  | "JOIN" -> Some Kw_join
  | "ON" -> Some Kw_on
  | "AND" -> Some Kw_and
  | "OR" -> Some Kw_or
  | "NOT" -> Some Kw_not
  | "KEY" -> Some Kw_key
  | "APPEND" -> Some Kw_append
  | "RETRACT" -> Some Kw_retract
  | "INSERT" -> Some Kw_insert
  | "INTO" -> Some Kw_into
  | "VALUES" -> Some Kw_values
  | "SHOW" -> Some Kw_show
  | "CLASSIFY" -> Some Kw_classify
  | "TRUE" -> Some Kw_true
  | "FALSE" -> Some Kw_false
  | "RETAIN" -> Some Kw_retain
  | "WINDOW" -> Some Kw_window
  | "FULL" -> Some Kw_full
  | "PERIODIC" -> Some Kw_periodic
  | "CALENDAR" -> Some Kw_calendar
  | "TILING" -> Some Kw_tiling
  | "SLIDING" -> Some Kw_sliding
  | "STRIDE" -> Some Kw_stride
  | "WIDTH" -> Some Kw_width
  | "START" -> Some Kw_start
  | "EXPIRE" -> Some Kw_expire
  | "WINDOWED" -> Some Kw_windowed
  | "BUCKETS" -> Some Kw_buckets
  | "ADVANCE" -> Some Kw_advance
  | "CLOCK" -> Some Kw_clock
  | "TO" -> Some Kw_to
  | "AT" -> Some Kw_at
  | "RULE" -> Some Kw_rule
  | "WHEN" -> Some Kw_when
  | "THEN" -> Some Kw_then
  | "REPEAT" -> Some Kw_repeat
  | "EVENT" -> Some Kw_event
  | "ALERTS" -> Some Kw_alerts
  | "WITHIN" -> Some Kw_within
  | "LOAD" -> Some Kw_load
  | "COOLDOWN" -> Some Kw_cooldown
  | "RESET" -> Some Kw_reset
  | "AUDIT" -> Some Kw_audit
  | "STATS" -> Some Kw_stats
  | "COUNTERS" -> Some Kw_counters
  | "DROP" -> Some Kw_drop
  | "PLAN" -> Some Kw_plan
  | "SET" -> Some Kw_set
  | "BATCH" -> Some Kw_batch
  | "FLUSH" -> Some Kw_flush
  | _ -> None

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Float_lit f -> Printf.sprintf "float %g" f
  | Str_lit s -> Printf.sprintf "string %S" s
  | Kw_create -> "CREATE"
  | Kw_define -> "DEFINE"
  | Kw_chronicle -> "CHRONICLE"
  | Kw_relation -> "RELATION"
  | Kw_view -> "VIEW"
  | Kw_as -> "AS"
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_group -> "GROUP"
  | Kw_by -> "BY"
  | Kw_join -> "JOIN"
  | Kw_on -> "ON"
  | Kw_and -> "AND"
  | Kw_or -> "OR"
  | Kw_not -> "NOT"
  | Kw_key -> "KEY"
  | Kw_append -> "APPEND"
  | Kw_retract -> "RETRACT"
  | Kw_insert -> "INSERT"
  | Kw_into -> "INTO"
  | Kw_values -> "VALUES"
  | Kw_show -> "SHOW"
  | Kw_classify -> "CLASSIFY"
  | Kw_true -> "TRUE"
  | Kw_false -> "FALSE"
  | Kw_retain -> "RETAIN"
  | Kw_window -> "WINDOW"
  | Kw_full -> "FULL"
  | Kw_periodic -> "PERIODIC"
  | Kw_calendar -> "CALENDAR"
  | Kw_tiling -> "TILING"
  | Kw_sliding -> "SLIDING"
  | Kw_stride -> "STRIDE"
  | Kw_width -> "WIDTH"
  | Kw_start -> "START"
  | Kw_expire -> "EXPIRE"
  | Kw_windowed -> "WINDOWED"
  | Kw_buckets -> "BUCKETS"
  | Kw_advance -> "ADVANCE"
  | Kw_clock -> "CLOCK"
  | Kw_to -> "TO"
  | Kw_at -> "AT"
  | Kw_rule -> "RULE"
  | Kw_when -> "WHEN"
  | Kw_then -> "THEN"
  | Kw_repeat -> "REPEAT"
  | Kw_event -> "EVENT"
  | Kw_alerts -> "ALERTS"
  | Kw_within -> "WITHIN"
  | Kw_load -> "LOAD"
  | Kw_cooldown -> "COOLDOWN"
  | Kw_reset -> "RESET"
  | Kw_audit -> "AUDIT"
  | Kw_stats -> "STATS"
  | Kw_counters -> "COUNTERS"
  | Kw_drop -> "DROP"
  | Kw_plan -> "PLAN"
  | Kw_set -> "SET"
  | Kw_batch -> "BATCH"
  | Kw_flush -> "FLUSH"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semicolon -> ";"
  | Star -> "*"
  | Dot -> "."
  | Op_eq -> "="
  | Op_ne -> "<>"
  | Op_le -> "<="
  | Op_lt -> "<"
  | Op_ge -> ">="
  | Op_gt -> ">"
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
