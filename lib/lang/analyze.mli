open Relational
open Chronicle_core

(** Semantic analysis: name resolution against a database catalog,
    translation of the surface syntax into summarized-chronicle-algebra
    view definitions, and statement execution against a {!Session}.

    View-definition WHERE clauses are normalized: top-level conjunctions
    become nested selections (σ_{a∧b} = σ_a ∘ σ_b), each conjunct must
    be a Definition 4.1 disjunction of comparisons, and conjuncts that
    mention only chronicle attributes are pushed below the join — which
    both follows the algebra's spirit and lets the affected-view
    registry extract selective guards.  Ad-hoc queries ([SELECT ... FROM
    view-or-relation]) are unrestricted (§2.2: queries over relations
    and persistent views "can be written in any language"); they
    evaluate through the relational-algebra substrate. *)

exception Semantic_error of string

type exec_result =
  | Created of string
  | Defined of { view : string; report : Classify.report }
  | Defined_periodic of { view : string; live : int }
  | Defined_windowed of { view : string; buckets : int }
  | Appended of { chronicle : string; sn : Seqnum.t; count : int }
  | Staged of {
      chronicle : string;
      count : int;
      ticket : Chronicle_durability.Group.ticket;
    }
      (** An [APPEND INTO] held in the session's group-commit staging
          queue ([SET BATCH n], [n > 1]); resolve it to {!Appended}
          with {!resolve_staged} once its group commits. *)
  | Retracted of { chronicle : string; count : int }
      (** A [RETRACT FROM]: one stored occurrence of each row removed
          and every persistent view unwound (weight [-1] delta). *)
  | Inserted of { relation : string; count : int }
  | Defined_rule of { rule : string; chronicle : string }
  | Info of string
  | Advanced of Seqnum.chronon
  | Rows of Schema.t * Tuple.t list
  | Report of Classify.report

val compile_select : Db.t -> name:string -> Ast.select -> Sca.t
(** Raises {!Semantic_error} (or [Ca.Ill_formed] from the algebra
    checks) on invalid definitions. *)

val compile_query : Session.t -> Ast.query -> Ra.t
(** Resolve an ad-hoc query against views, windowed/periodic views and
    relations. *)

val exec : Session.t -> Ast.stmt -> exec_result
(** Every statement except [APPEND INTO] first flushes the session's
    group-commit staging queue, so staged appends are never observable
    out of statement order.  [APPEND INTO] itself commits synchronously
    under batch threshold 1 (returning {!Appended}, byte-identical to
    the unstaged path) and stages under a larger threshold (returning
    {!Staged}). *)

val resolve_staged : Session.t -> exec_result -> exec_result
(** {!Staged} → {!Appended} (flushing the queue if the ticket is still
    pending; re-raises the group's failure if it aborted); every other
    result passes through. *)

val run_script : Session.t -> string -> exec_result list
(** Parse and execute a whole script; staged appends are resolved, so
    the results are always {!Staged}-free. *)

val pp_result : Format.formatter -> exec_result -> unit
