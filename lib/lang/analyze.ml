open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_events
module Staging = Chronicle_durability.Group

exception Semantic_error of string

let sem_error fmt = Format.kasprintf (fun s -> raise (Semantic_error s)) fmt

type exec_result =
  | Created of string
  | Defined of { view : string; report : Classify.report }
  | Defined_periodic of { view : string; live : int }
  | Defined_windowed of { view : string; buckets : int }
  | Appended of { chronicle : string; sn : Seqnum.t; count : int }
  | Staged of { chronicle : string; count : int; ticket : Staging.ticket }
  | Retracted of { chronicle : string; count : int }
  | Inserted of { relation : string; count : int }
  | Defined_rule of { rule : string; chronicle : string }
  | Info of string
  | Advanced of Seqnum.chronon
  | Rows of Schema.t * Tuple.t list
  | Report of Classify.report

let pred_attrs_subset pred schema =
  List.for_all (Schema.mem schema) (Predicate.attrs pred)

(* ---- view definitions (the restricted language ℒ) ---- *)

let split_items items =
  List.partition_map
    (function
      | Ast.Col c -> Either.Left c
      | Ast.Agg { func; arg; alias } ->
          let alias =
            match alias with
            | Some a -> a
            | None -> (
                match arg with
                | Some a ->
                    String.lowercase_ascii (Aggregate.func_name func) ^ "_" ^ a
                | None -> String.lowercase_ascii (Aggregate.func_name func))
          in
          Either.Right { Aggregate.func; arg; alias })
    items

let summarize_of_items items group_by =
  let cols, aggs = split_items items in
  match aggs, group_by with
  | [], [] ->
      if cols = [] then sem_error "empty SELECT list";
      Sca.Project_out cols
  | [], _ :: _ ->
      sem_error "GROUP BY without aggregates: use a plain projection instead"
  | _ :: _, group_by ->
      List.iter
        (fun c ->
          if not (List.mem c group_by) then
            sem_error "column %s appears in SELECT but not in GROUP BY" c)
        cols;
      Sca.Group_agg (group_by, aggs)

let compile_select db ~name (s : Ast.select) =
  let chron =
    try Db.chronicle db s.Ast.chronicle
    with Db.Unknown msg -> sem_error "%s" msg
  in
  let chron_schema = Chron.schema chron in
  (* WHERE: split conjunctions, validate the Definition 4.1 form *)
  let conjunct_preds =
    match s.Ast.where with
    | None -> []
    | Some cond ->
        List.map
          (fun c ->
            let p = Ast.cond_to_predicate c in
            if not (Predicate.is_ca_form p) then
              sem_error
                "WHERE conjunct (%a) is not a disjunction of comparisons; \
                 the chronicle algebra (Definition 4.1) admits only such \
                 selections"
                Predicate.pp p;
            p)
          (Ast.conjuncts cond)
  in
  let pushable, lifted =
    List.partition (fun p -> pred_attrs_subset p chron_schema) conjunct_preds
  in
  let base =
    List.fold_left (fun e p -> Ca.Select (p, e)) (Ca.Chronicle chron) pushable
  in
  let body =
    match s.Ast.join with
    | None ->
        if lifted <> [] then
          sem_error "WHERE mentions attributes not in chronicle %s"
            s.Ast.chronicle;
        base
    | Some { Ast.rel; on } ->
        let versioned =
          try Db.relation db rel with Db.Unknown msg -> sem_error "%s" msg
        in
        let joined = Ca.KeyJoinRel (base, Versioned.relation versioned, on) in
        List.fold_left (fun e p -> Ca.Select (p, e)) joined lifted
  in
  Sca.define ~name ~body (summarize_of_items s.Ast.items s.Ast.group_by)

(* ---- ad-hoc queries over views and relations ---- *)

let resolve_source session name =
  let db = Session.db session in
  match Db.view db name with
  | v -> Ra.Const (View.schema v, View.to_list v)
  | exception Db.Unknown _ -> (
      match Session.windowed session name with
      | Some wv -> Ra.Const (Sca.schema (Windowed_view.def wv), Windowed_view.to_list wv)
      | None -> (
          match Session.periodic session name with
          | Some family -> (
              let schema = Sca.schema (Periodic.def family) in
              match Periodic.current family with
              | Some (_, v) -> Ra.Const (schema, View.to_list v)
              | None -> Ra.Const (schema, []))
          | None -> (
              match Db.relation db name with
              | r -> Ra.Rel (Versioned.relation r)
              | exception Db.Unknown _ ->
                  sem_error
                    "%s is neither a view, a windowed/periodic view, nor a \
                     relation"
                    name)))

let compile_query session (q : Ast.query) =
  let source = resolve_source session q.Ast.q_from in
  let joined =
    match q.Ast.q_join with
    | None -> source
    | Some (rel, on) -> Ra.EquiJoin (on, source, resolve_source session rel)
  in
  let filtered =
    match q.Ast.q_where with
    | None -> joined
    | Some cond -> Ra.Select (Ast.cond_to_predicate cond, joined)
  in
  let cols, aggs = split_items q.Ast.q_items in
  match aggs, q.Ast.q_group with
  | [], [] ->
      if cols = [] then sem_error "empty SELECT list";
      Ra.Project (cols, filtered)
  | [], _ :: _ -> sem_error "GROUP BY without aggregates"
  | _ :: _, group ->
      List.iter
        (fun c ->
          if not (List.mem c group) then
            sem_error "column %s appears in SELECT but not in GROUP BY" c)
        cols;
      Ra.GroupBy (group, aggs, filtered)

(* ---- statements ---- *)

let schema_of_columns columns = Schema.make columns

let rows_to_tuples name schema rows =
  List.map
    (fun row ->
      let tu = Tuple.make row in
      if not (Tuple.type_check schema tu) then
        sem_error "row %a does not match the schema of %s" Tuple.pp tu name;
      tu)
    rows

let rec compile_pattern = function
  | Ast.Ev_atom (name, c) ->
      Pattern.atom (Option.value ~default:"e" name) (Ast.cond_to_predicate c)
  | Ast.Ev_seq (a, b) -> Pattern.Seq (compile_pattern a, compile_pattern b)
  | Ast.Ev_and (a, b) -> Pattern.And (compile_pattern a, compile_pattern b)
  | Ast.Ev_or (a, b) -> Pattern.Or (compile_pattern a, compile_pattern b)
  | Ast.Ev_repeat (n, p) ->
      if n < 1 then sem_error "REPEAT count must be at least 1";
      Pattern.repeat n (compile_pattern p)

let alert_schema =
  Schema.make
    [
      ("rule", Value.TStr); ("key", Value.TStr); ("started", Value.TInt);
      ("fired", Value.TInt); ("sn", Value.TInt);
    ]

let audit_schema =
  Schema.make [ ("view", Value.TStr); ("verdict", Value.TStr) ]

let stats_schema =
  Schema.make
    [ ("kind", Value.TStr); ("name", Value.TStr); ("metric", Value.TStr);
      ("value", Value.TInt) ]

let counters_schema =
  Schema.make [ ("counter", Value.TStr); ("value", Value.TInt) ]

let calendar_of_spec (spec : Ast.calendar_spec) =
  match spec.Ast.shape with
  | `Tiling -> Calendar.tiling ~start:spec.Ast.cal_start ~width:spec.Ast.cal_width
  | `Sliding -> Calendar.sliding ~start:spec.Ast.cal_start ~width:spec.Ast.cal_width
  | `Stride stride ->
      Calendar.periodic ~start:spec.Ast.cal_start ~width:spec.Ast.cal_width ~stride

let exec session stmt =
  let db = Session.db session in
  (* Group-commit barrier: every statement except a staged append
     flushes the session's staging queue first, so nothing — reads,
     relation updates, clock advances, definitions — can observe the
     database with a staged append missing.  Under the default batch
     threshold of 1 the queue is always empty and this is free. *)
  (match stmt with Ast.Append_into _ -> () | _ -> Session.flush session);
  match stmt with
  | Ast.Create_chronicle { name; columns; retain } ->
      let retention =
        match retain with
        | None -> None
        | Some Ast.Retain_full -> Some Chron.Full
        | Some (Ast.Retain_window n) -> Some (Chron.Window n)
      in
      ignore (Db.add_chronicle db ?retention ~name (schema_of_columns columns));
      Created name
  | Ast.Create_relation { name; columns; key } ->
      ignore
        (Db.add_relation db ~name ~schema:(schema_of_columns columns) ~key ());
      Created name
  | Ast.Define_view { name; select } ->
      let def = compile_select db ~name select in
      ignore (Db.define_view db def);
      Defined { view = name; report = Classify.sca def }
  | Ast.Define_periodic { name; select; calendar; expire } ->
      let def = compile_select db ~name select in
      let family =
        Periodic.create ?expire_after:expire ~def
          ~calendar:(calendar_of_spec calendar) ()
      in
      Periodic.attach db family;
      (try Session.add_periodic session name family
       with Invalid_argument msg -> sem_error "%s" msg);
      Defined_periodic { view = name; live = Periodic.live_views family }
  | Ast.Define_windowed { name; select; buckets; bucket_width } ->
      let def = compile_select db ~name select in
      let wv =
        try Windowed_view.derive ~bucket_width ~buckets def
        with Windowed_view.Not_derivable msg -> sem_error "%s" msg
      in
      Windowed_view.attach db wv;
      (try Session.add_windowed session name wv
       with Invalid_argument msg -> sem_error "%s" msg);
      Defined_windowed { view = name; buckets }
  | Ast.Append_into { chronicle; rows } ->
      let c =
        try Db.chronicle db chronicle with Db.Unknown msg -> sem_error "%s" msg
      in
      let tuples = rows_to_tuples chronicle (Chron.user_schema c) rows in
      let stager = Session.stager session in
      let ticket =
        try
          Staging.stage stager
            ~group:(Group.name (Chron.group c))
            [ (chronicle, tuples) ]
        with Invalid_argument msg -> sem_error "%s" msg
      in
      let count = List.length tuples in
      if Staging.batch stager <= 1 then
        (* committed by the stage call itself (threshold 1): resolve
           synchronously — indistinguishable from an unstaged append *)
        match Staging.await stager ticket with
        | Ok sn -> Appended { chronicle; sn; count }
        | Error e -> raise e
      else Staged { chronicle; count; ticket }
  | Ast.Retract_from { chronicle; rows } ->
      let c =
        try Db.chronicle db chronicle with Db.Unknown msg -> sem_error "%s" msg
      in
      let tuples = rows_to_tuples chronicle (Chron.user_schema c) rows in
      (* the statement barrier above already flushed staged appends, so
         the retraction sees every prior append committed *)
      let count =
        try Db.retract db chronicle tuples
        with
        | Invalid_argument msg | Chron.Not_retained msg -> sem_error "%s" msg
      in
      Retracted { chronicle; count }
  | Ast.Insert_into { relation; rows } ->
      let r =
        try Db.relation db relation with Db.Unknown msg -> sem_error "%s" msg
      in
      let schema = Relation.schema (Versioned.relation r) in
      let tuples = rows_to_tuples relation schema rows in
      (* through Db so the rows are journaled (Ev_insert) and survive
         crash recovery — never Versioned.insert directly *)
      (try Db.insert_rows db relation tuples
       with Invalid_argument msg -> sem_error "%s" msg);
      Inserted { relation; count = List.length tuples }
  | Ast.Load_csv { target; path } -> (
      (* each CSV record of a chronicle load is one transaction (its own
         sequence number); relation loads are plain inserts *)
      match Db.chronicle db target with
      | c ->
          let tuples =
            try Csv_io.load_file (Chron.user_schema c) path
            with
            | Csv_io.Csv_error { message; line; column } ->
                sem_error "%s:%d%s: %s" path line
                  (if column = 0 then "" else Printf.sprintf ":%d" column)
                  message
            | Sys_error msg -> sem_error "%s" msg
          in
          let stager = Session.stager session in
          let gname = Group.name (Chron.group c) in
          let last =
            List.fold_left
              (fun _ tu ->
                Some (Staging.stage stager ~group:gname [ (target, [ tu ]) ]))
              None tuples
          in
          let sn =
            match last with
            | None -> Seqnum.zero
            | Some ticket -> (
                (* awaiting the last ticket flushes and resolves the
                   whole load *)
                match Staging.await stager ticket with
                | Ok sn -> sn
                | Error e -> raise e)
          in
          Appended { chronicle = target; sn; count = List.length tuples }
      | exception Db.Unknown _ -> (
          match Db.relation db target with
          | r ->
              let schema = Relation.schema (Versioned.relation r) in
              let tuples =
                try Csv_io.load_file schema path
                with
                | Csv_io.Csv_error { message; line; column } ->
                    sem_error "%s:%d%s: %s" path line
                      (if column = 0 then "" else Printf.sprintf ":%d" column)
                      message
                | Sys_error msg -> sem_error "%s" msg
              in
              (try Db.insert_rows db target tuples
               with Invalid_argument msg -> sem_error "%s" msg);
              Inserted { relation = target; count = List.length tuples }
          | exception Db.Unknown _ ->
              sem_error "%s is neither a chronicle nor a relation" target))
  | Ast.Define_rule { name; chronicle; key; within; cooldown; reset_on_match; pattern } ->
      let c =
        try Db.chronicle db chronicle with Db.Unknown msg -> sem_error "%s" msg
      in
      let det = Session.detector session c in
      (try
         Detector.add_rule det
           (Detector.rule ~name
              ~pattern:(compile_pattern pattern)
              ~key ?within ?cooldown ~reset_on_match ())
       with Invalid_argument msg | Schema.Unknown_attribute msg ->
         sem_error "%s" msg);
      Defined_rule { rule = name; chronicle }
  | Ast.Show_alerts ->
      let rows =
        List.concat_map
          (fun det ->
            List.map
              (fun (o : Detector.occurrence) ->
                Tuple.make
                  [
                    Value.Str o.Detector.rule;
                    Value.Str
                      (Format.asprintf "%a" Value.pp_list o.Detector.key_values);
                    Value.Int o.Detector.started_at;
                    Value.Int o.Detector.fired_at;
                    Value.Int o.Detector.fired_sn;
                  ])
              (Detector.occurrences det))
          (Session.detectors session)
        |> List.sort (fun a b ->
               Value.compare (Tuple.get a 4) (Tuple.get b 4))
      in
      Rows (alert_schema, rows)
  | Ast.Advance_clock chronon ->
      (try Db.advance_clock db chronon
       with Invalid_argument msg -> sem_error "%s" msg);
      Advanced chronon
  | Ast.Query q ->
      let expr = compile_query session q in
      (* compile on the database's pool: at [--jobs 1] this is exactly
         the sequential plan; above it the scan (and, over an indexed
         relation, the bounded index probes) range-split across the
         pool's domains with byte-identical output *)
      let plan =
        try Plan.compile_parallel (Db.pool db) expr
        with Ra.Type_error msg -> sem_error "%s" msg
      in
      Rows (Plan.schema plan, Plan.run plan)
  | Ast.Show_view name ->
      let v = try Db.view db name with Db.Unknown msg -> sem_error "%s" msg in
      Rows (View.schema v, View.to_list v)
  | Ast.Show_classify name ->
      let v = try Db.view db name with Db.Unknown msg -> sem_error "%s" msg in
      Report (Classify.sca (View.def v))
  | Ast.Show_periodic { name; index } -> (
      match Session.periodic session name with
      | None -> sem_error "unknown periodic view %s" name
      | Some family -> (
          let schema = Sca.schema (Periodic.def family) in
          match index with
          | Some i -> (
              match Periodic.get family i with
              | Some v -> Rows (schema, View.to_list v)
              | None ->
                  sem_error "periodic view %s has no interval %d (never \
                             opened or already expired)" name i)
          | None -> (
              match Periodic.current family with
              | Some (_, v) -> Rows (schema, View.to_list v)
              | None -> Rows (schema, []))))
  | Ast.Drop_view name ->
      (try Db.drop_view db name with Db.Unknown msg -> sem_error "%s" msg);
      Created (name ^ " dropped")
  | Ast.Show_plan name ->
      let v = try Db.view db name with Db.Unknown msg -> sem_error "%s" msg in
      let def = View.def v in
      let body = Sca.body def in
      let optimized = Rewrite.optimize body in
      let report = Classify.sca def in
      Info
        (Format.asprintf
           "@[<v>view %s@,body:      %a@,optimized: %a%s@,summarize: %s@,%a@]"
           name Ca.pp body Ca.pp optimized
           (if Rewrite.size optimized = Rewrite.size body then ""
            else "  (rewritten)")
           (match Sca.summarize def with
           | Sca.Project_out attrs ->
               Printf.sprintf "project out -> (%s)" (String.concat ", " attrs)
           | Sca.Group_agg (gl, al) ->
               Format.asprintf "group by (%s) computing %a"
                 (String.concat ", " gl)
                 (Format.pp_print_list
                    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                    Aggregate.pp_call)
                 al)
           Classify.pp_report report)
  | Ast.Show_audit ->
      let rows =
        List.map
          (fun (name, verdict) ->
            Tuple.make
              [
                Value.Str name;
                Value.Str (Format.asprintf "%a" Audit.pp_verdict verdict);
              ])
          (Audit.check_db db)
      in
      Rows (audit_schema, rows)
  | Ast.Show_stats ->
      let row kind name metric value =
        Tuple.make [ Value.Str kind; Value.Str name; Value.Str metric; Value.Int value ]
      in
      let chron_rows =
        List.concat_map
          (fun name ->
            let c = Db.chronicle db name in
            [
              row "chronicle" name "appended" (Chron.total_appended c);
              row "chronicle" name "retained" (Chron.stored_count c);
            ])
          (Db.chronicle_names db)
      in
      let rel_rows =
        List.map
          (fun name ->
            row "relation" name "rows"
              (Relation.cardinality (Versioned.relation (Db.relation db name))))
          (Db.relation_names db)
      in
      let view_rows =
        List.concat_map
          (fun v ->
            let name = View.name v in
            [
              row "view" name "rows" (View.size v);
              row "view" name "batches" (View.maintained_batches v);
            ])
          (Registry.views (Db.registry db))
      in
      let registry_rows =
        [
          row "registry" "guards" "checked" (Registry.checked (Db.registry db));
          row "registry" "guards" "skipped" (Registry.skipped (Db.registry db));
        ]
      in
      Rows (stats_schema, chron_rows @ rel_rows @ view_rows @ registry_rows)
  | Ast.Show_counters ->
      let rows =
        List.map
          (fun c ->
            Tuple.make
              [ Value.Str (Stats.counter_name c); Value.Int (Stats.get c) ])
          Stats.all
      in
      Rows (counters_schema, rows)
  | Ast.Show_windowed name -> (
      match Session.windowed session name with
      | None -> sem_error "unknown windowed view %s" name
      | Some wv ->
          Rows (Sca.schema (Windowed_view.def wv), Windowed_view.to_list wv))
  | Ast.Set_batch n ->
      (try Session.set_batch session n
       with Invalid_argument msg -> sem_error "%s" msg);
      Info (Printf.sprintf "batch size set to %d" n)
  | Ast.Flush ->
      (* the barrier above already drained the queue *)
      Info "flushed"

let resolve_staged session = function
  | Staged { chronicle; count; ticket } -> (
      match Staging.await (Session.stager session) ticket with
      | Ok sn -> Appended { chronicle; sn; count }
      | Error e -> raise e)
  | r -> r

let run_script session src =
  List.map (resolve_staged session) (List.map (exec session) (Parser.parse src))

let pp_result ppf = function
  | Created name -> Format.fprintf ppf "created %s" name
  | Defined { view; report } ->
      Format.fprintf ppf "defined view %s: %s (%s)" view
        (Classify.tier_name report.Classify.tier)
        (Classify.im_class_name report.Classify.view_im)
  | Defined_periodic { view; live } ->
      Format.fprintf ppf "defined periodic view %s (%d interval views live)"
        view live
  | Defined_windowed { view; buckets } ->
      Format.fprintf ppf "defined windowed view %s (%d buckets)" view buckets
  | Appended { chronicle; sn; count } ->
      Format.fprintf ppf "appended %d row(s) to %s at sn %a" count chronicle
        Seqnum.pp sn
  | Staged { chronicle; count; _ } ->
      Format.fprintf ppf "staged %d row(s) for %s" count chronicle
  | Retracted { chronicle; count } ->
      Format.fprintf ppf "retracted %d row(s) from %s" count chronicle
  | Inserted { relation; count } ->
      Format.fprintf ppf "inserted %d row(s) into %s" count relation
  | Defined_rule { rule; chronicle } ->
      Format.fprintf ppf "defined rule %s on %s" rule chronicle
  | Advanced chronon -> Format.fprintf ppf "clock advanced to %d" chronon
  | Info text -> Format.pp_print_string ppf text
  | Rows (schema, tuples) ->
      Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp schema
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut
           (Tuple.pp_with schema))
        tuples
  | Report r -> Classify.pp_report ppf r
