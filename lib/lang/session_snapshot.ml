open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_events

exception Session_snapshot_error of string

let error fmt = Format.kasprintf (fun s -> raise (Session_snapshot_error s)) fmt

let sexp_of_key key = Sexp.List (List.map Value.to_sexp key)
let key_of_sexp s = List.map Value.of_sexp (Sexp.to_list s)

let sexp_of_opt_int = function
  | None -> Sexp.Atom "none"
  | Some i -> Sexp.int i

let opt_int_of_sexp = function
  | Sexp.Atom "none" -> None
  | s -> Some (Sexp.to_int s)

(* ---- patterns (the event algebra) ---- *)

let rec sexp_of_pattern = function
  | Pattern.Atom (name, p) ->
      Sexp.List [ Sexp.Atom "atom"; Sexp.Atom name; Snapshot.sexp_of_predicate p ]
  | Pattern.Seq (a, b) ->
      Sexp.List [ Sexp.Atom "seq"; sexp_of_pattern a; sexp_of_pattern b ]
  | Pattern.Or (a, b) ->
      Sexp.List [ Sexp.Atom "or"; sexp_of_pattern a; sexp_of_pattern b ]
  | Pattern.And (a, b) ->
      Sexp.List [ Sexp.Atom "and"; sexp_of_pattern a; sexp_of_pattern b ]

let rec pattern_of_sexp = function
  | Sexp.List [ Sexp.Atom "atom"; Sexp.Atom name; p ] ->
      Pattern.Atom (name, Snapshot.predicate_of_sexp p)
  | Sexp.List [ Sexp.Atom "seq"; a; b ] ->
      Pattern.Seq (pattern_of_sexp a, pattern_of_sexp b)
  | Sexp.List [ Sexp.Atom "or"; a; b ] ->
      Pattern.Or (pattern_of_sexp a, pattern_of_sexp b)
  | Sexp.List [ Sexp.Atom "and"; a; b ] ->
      Pattern.And (pattern_of_sexp a, pattern_of_sexp b)
  | s -> error "bad pattern %s" (Sexp.to_string s)

(* ---- calendars and windows ---- *)

let sexp_of_interval (iv : Interval.t) =
  Sexp.List [ Sexp.int iv.Interval.start; Sexp.int iv.Interval.stop ]

let interval_of_sexp = function
  | Sexp.List [ start; stop ] ->
      Interval.make ~start:(Sexp.to_int start) ~stop:(Sexp.to_int stop)
  | s -> error "bad interval %s" (Sexp.to_string s)

let sexp_of_calendar cal =
  match Calendar.spec cal with
  | Calendar.Finite_spec intervals ->
      Sexp.List (Sexp.Atom "finite" :: List.map sexp_of_interval intervals)
  | Calendar.Periodic_spec { start; width; stride } ->
      Sexp.List
        [ Sexp.Atom "periodic"; Sexp.int start; Sexp.int width; Sexp.int stride ]

let calendar_of_sexp = function
  | Sexp.List (Sexp.Atom "finite" :: intervals) ->
      Calendar.of_spec (Calendar.Finite_spec (List.map interval_of_sexp intervals))
  | Sexp.List [ Sexp.Atom "periodic"; start; width; stride ] ->
      Calendar.of_spec
        (Calendar.Periodic_spec
           {
             start = Sexp.to_int start;
             width = Sexp.to_int width;
             stride = Sexp.to_int stride;
           })
  | s -> error "bad calendar %s" (Sexp.to_string s)

let sexp_of_window_dump (d : Window.dump) =
  Sexp.record
    [
      ("start", Sexp.int d.Window.d_start);
      ("head", Sexp.int d.Window.d_head);
      ("clock", Sexp.int d.Window.d_clock);
      ("states", Sexp.List (List.map Aggregate.sexp_of_state d.Window.d_states));
    ]

let window_dump_of_sexp s =
  {
    Window.d_start = Sexp.to_int (Sexp.field s "start");
    d_head = Sexp.to_int (Sexp.field s "head");
    d_clock = Sexp.to_int (Sexp.field s "clock");
    d_states =
      List.map Aggregate.state_of_sexp (Sexp.to_list (Sexp.field s "states"));
  }

(* ---- the four session components ---- *)

let sexp_of_index_kind = function
  | Index.Hash -> Sexp.Atom "hash"
  | Index.Ordered -> Sexp.Atom "ordered"

let index_kind_of_sexp s =
  match Sexp.to_atom s with
  | "hash" -> Index.Hash
  | "ordered" -> Index.Ordered
  | other -> error "bad index kind %s" other

let sexp_of_view_dump = function
  | View.Rows_dump keys ->
      Sexp.List (Sexp.Atom "rows" :: List.map sexp_of_key keys)
  | View.Groups_dump groups ->
      Sexp.List
        (Sexp.Atom "groups"
        :: List.map
             (fun (key, states) ->
               Sexp.List
                 [ sexp_of_key key; Sexp.List (List.map Aggregate.sexp_of_state states) ])
             groups)

let view_dump_of_sexp = function
  | Sexp.List (Sexp.Atom "rows" :: keys) -> View.Rows_dump (List.map key_of_sexp keys)
  | Sexp.List (Sexp.Atom "groups" :: groups) ->
      View.Groups_dump
        (List.map
           (function
             | Sexp.List [ key; Sexp.List states ] ->
                 (key_of_sexp key, List.map Aggregate.state_of_sexp states)
             | s -> error "bad view group %s" (Sexp.to_string s))
           groups)
  | s -> error "bad view dump %s" (Sexp.to_string s)

let sexp_of_periodic (name, family) =
  let d = Periodic.dump family in
  Sexp.record
    [
      ("name", Sexp.Atom name);
      ("def", Snapshot.sexp_of_sca (Periodic.def family));
      ("calendar", sexp_of_calendar (Periodic.calendar family));
      ("expire", sexp_of_opt_int (Periodic.expire_after family));
      ( "index",
        match Periodic.index_kind family with
        | None -> Sexp.Atom "none"
        | Some k -> sexp_of_index_kind k );
      ("opened", Sexp.int d.Periodic.d_opened);
      ("expired", Sexp.int d.Periodic.d_expired);
      ( "slots",
        Sexp.List
          (List.map
             (fun (sd : Periodic.slot_dump) ->
               Sexp.record
                 [
                   ("i", Sexp.int sd.Periodic.sd_index);
                   ("interval", sexp_of_interval sd.Periodic.sd_interval);
                   ("active", Sexp.bool sd.Periodic.sd_active);
                   ("contents", sexp_of_view_dump sd.Periodic.sd_contents);
                 ])
             d.Periodic.d_slots) );
    ]

let load_periodic session entry ~chronicle ~relation =
  let name = Sexp.to_atom (Sexp.field entry "name") in
  let def = Snapshot.sca_of_sexp ~chronicle ~relation (Sexp.field entry "def") in
  let calendar = calendar_of_sexp (Sexp.field entry "calendar") in
  let expire_after = opt_int_of_sexp (Sexp.field entry "expire") in
  let index =
    match Sexp.field entry "index" with
    | Sexp.Atom "none" -> None
    | s -> Some (index_kind_of_sexp s)
  in
  let family = Periodic.create ?index ?expire_after ~def ~calendar () in
  Periodic.load family
    {
      Periodic.d_opened = Sexp.to_int (Sexp.field entry "opened");
      d_expired = Sexp.to_int (Sexp.field entry "expired");
      d_slots =
        List.map
          (fun s ->
            {
              Periodic.sd_index = Sexp.to_int (Sexp.field s "i");
              sd_interval = interval_of_sexp (Sexp.field s "interval");
              sd_active = Sexp.to_bool (Sexp.field s "active");
              sd_contents = view_dump_of_sexp (Sexp.field s "contents");
            })
          (Sexp.to_list (Sexp.field entry "slots"));
    };
  Periodic.attach (Session.db session) family;
  Session.add_periodic session name family

let sexp_of_windowed (name, wv) =
  Sexp.record
    [
      ("name", Sexp.Atom name);
      ("def", Snapshot.sexp_of_sca (Windowed_view.def wv));
      ("buckets", Sexp.int (Windowed_view.buckets wv));
      ("width", Sexp.int (Windowed_view.bucket_width wv));
      ( "groups",
        Sexp.List
          (List.map
             (fun (key, dumps) ->
               Sexp.List
                 [ sexp_of_key key; Sexp.List (List.map sexp_of_window_dump dumps) ])
             (Windowed_view.dump wv)) );
    ]

let load_windowed session entry ~chronicle ~relation =
  let name = Sexp.to_atom (Sexp.field entry "name") in
  let def = Snapshot.sca_of_sexp ~chronicle ~relation (Sexp.field entry "def") in
  let wv =
    Windowed_view.derive
      ~bucket_width:(Sexp.to_int (Sexp.field entry "width"))
      ~buckets:(Sexp.to_int (Sexp.field entry "buckets"))
      def
  in
  Windowed_view.load wv
    (List.map
       (function
         | Sexp.List [ key; Sexp.List dumps ] ->
             (key_of_sexp key, List.map window_dump_of_sexp dumps)
         | s -> error "bad windowed group %s" (Sexp.to_string s))
       (Sexp.to_list (Sexp.field entry "groups")));
  Windowed_view.attach (Session.db session) wv;
  Session.add_windowed session name wv

let sexp_of_rule (r : Detector.rule) =
  Sexp.record
    [
      ("name", Sexp.Atom r.Detector.rule_name);
      ("pattern", sexp_of_pattern r.Detector.pattern);
      ("key", Sexp.List (List.map (fun a -> Sexp.Atom a) r.Detector.key));
      ("within", sexp_of_opt_int r.Detector.within);
      ("cooldown", sexp_of_opt_int r.Detector.cooldown);
      ("reset", Sexp.bool r.Detector.reset_on_match);
    ]

let rule_of_sexp s =
  Detector.rule
    ~name:(Sexp.to_atom (Sexp.field s "name"))
    ~pattern:(pattern_of_sexp (Sexp.field s "pattern"))
    ~key:(List.map Sexp.to_atom (Sexp.to_list (Sexp.field s "key")))
    ?within:(opt_int_of_sexp (Sexp.field s "within"))
    ?cooldown:(opt_int_of_sexp (Sexp.field s "cooldown"))
    ~reset_on_match:(Sexp.to_bool (Sexp.field s "reset"))
    ()

let sexp_of_occurrence (o : Detector.occurrence) =
  Sexp.List
    [
      Sexp.Atom o.Detector.rule; sexp_of_key o.Detector.key_values;
      Sexp.int o.Detector.started_at; Sexp.int o.Detector.fired_at;
      Sexp.int o.Detector.fired_sn;
    ]

let occurrence_of_sexp = function
  | Sexp.List [ Sexp.Atom rule; key; started; fired; sn ] ->
      {
        Detector.rule;
        key_values = key_of_sexp key;
        started_at = Sexp.to_int started;
        fired_at = Sexp.to_int fired;
        fired_sn = Sexp.to_int sn;
      }
  | s -> error "bad occurrence %s" (Sexp.to_string s)

let sexp_of_detector (cname, det) =
  let d = Detector.dump det in
  Sexp.record
    [
      ("chronicle", Sexp.Atom cname);
      ("max_instances", Sexp.int (Detector.max_instances_per_key det));
      ("dropped", Sexp.int d.Detector.d_dropped);
      ("suppressed", Sexp.int d.Detector.d_suppressed);
      ( "occurrences",
        Sexp.List (List.map sexp_of_occurrence d.Detector.d_occurrences) );
      ( "rules",
        Sexp.List
          (List.map
             (fun (rd : Detector.rule_dump) ->
               Sexp.record
                 [
                   ("rule", sexp_of_rule rd.Detector.rd_rule);
                   ( "instances",
                     Sexp.List
                       (List.map
                          (fun (key, partials) ->
                            Sexp.List
                              [
                                sexp_of_key key;
                                Sexp.List
                                  (List.map
                                     (fun (started, residual) ->
                                       Sexp.List
                                         [ Sexp.int started; sexp_of_pattern residual ])
                                     partials);
                              ])
                          rd.Detector.rd_instances) );
                   ( "last_fired",
                     Sexp.List
                       (List.map
                          (fun (key, c) -> Sexp.List [ sexp_of_key key; Sexp.int c ])
                          rd.Detector.rd_last_fired) );
                 ])
             d.Detector.d_rules) );
    ]

let load_detector session entry =
  let db = Session.db session in
  let cname = Sexp.to_atom (Sexp.field entry "chronicle") in
  let chron =
    try Db.chronicle db cname
    with Db.Unknown msg -> error "detector chronicle: %s" msg
  in
  (* Session.detector would attach a default detector; create explicitly
     to honour the saved instance cap, then register through the session
     by loading state into the session's (fresh) detector. *)
  let det = Session.detector session chron in
  if Detector.max_instances_per_key det <> Sexp.to_int (Sexp.field entry "max_instances")
  then
    error
      "detector on %s: instance cap %d differs from the snapshot's %d (the \
       session default changed?)"
      cname
      (Detector.max_instances_per_key det)
      (Sexp.to_int (Sexp.field entry "max_instances"));
  Detector.load det
    {
      Detector.d_dropped = Sexp.to_int (Sexp.field entry "dropped");
      d_suppressed = Sexp.to_int (Sexp.field entry "suppressed");
      d_occurrences =
        List.map occurrence_of_sexp
          (Sexp.to_list (Sexp.field entry "occurrences"));
      d_rules =
        List.map
          (fun s ->
            {
              Detector.rd_rule = rule_of_sexp (Sexp.field s "rule");
              rd_instances =
                List.map
                  (function
                    | Sexp.List [ key; Sexp.List partials ] ->
                        ( key_of_sexp key,
                          List.map
                            (function
                              | Sexp.List [ started; residual ] ->
                                  (Sexp.to_int started, pattern_of_sexp residual)
                              | s -> error "bad partial %s" (Sexp.to_string s))
                            partials )
                    | s -> error "bad instance entry %s" (Sexp.to_string s))
                  (Sexp.to_list (Sexp.field s "instances"));
              rd_last_fired =
                List.map
                  (function
                    | Sexp.List [ key; c ] -> (key_of_sexp key, Sexp.to_int c)
                    | s -> error "bad last_fired %s" (Sexp.to_string s))
                  (Sexp.to_list (Sexp.field s "last_fired"));
            })
          (Sexp.to_list (Sexp.field entry "rules"));
    }

(* ---- whole sessions ---- *)

let save session =
  let db = Session.db session in
  Sexp.to_string_pretty
    (Sexp.record
       [
         ("session-snapshot", Sexp.int 1);
         ("db", Snapshot.sexp_of_db db);
         ("periodics", Sexp.List (List.map sexp_of_periodic (Session.periodics session)));
         ( "windowed",
           Sexp.List (List.map sexp_of_windowed (Session.windowed_views session)) );
         ( "detectors",
           Sexp.List (List.map sexp_of_detector (Session.named_detectors session)) );
       ])

let load ?jobs ?heavy_threshold text =
  let doc = Sexp.of_string text in
  (match Sexp.field_opt doc "session-snapshot" with
  | Some v when Sexp.to_int v = 1 -> ()
  | Some v -> error "unsupported session-snapshot version %s" (Sexp.to_string v)
  | None -> error "not a session snapshot");
  let db = Snapshot.db_of_sexp ?jobs ?heavy_threshold (Sexp.field doc "db") in
  let session = Session.of_db db in
  let chronicle = Db.chronicle db in
  let relation name = Versioned.relation (Db.relation db name) in
  List.iter
    (fun entry -> load_periodic session entry ~chronicle ~relation)
    (Sexp.to_list (Sexp.field doc "periodics"));
  List.iter
    (fun entry -> load_windowed session entry ~chronicle ~relation)
    (Sexp.to_list (Sexp.field doc "windowed"));
  List.iter (load_detector session) (Sexp.to_list (Sexp.field doc "detectors"));
  session

let save_file session path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save session))

let load_file ?jobs ?heavy_threshold path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load ?jobs ?heavy_threshold text
