open Relational

exception Parse_error of { message : string; line : int }

type state = { tokens : (Token.t * int) array; mutable pos : int }

let peek st = fst st.tokens.(st.pos)
let line st = snd st.tokens.(st.pos)

let error st fmt =
  Format.kasprintf (fun message -> raise (Parse_error { message; line = line st })) fmt

let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else error st "expected %s, found %s" (Token.to_string tok) (Token.to_string (peek st))

(* Non-structural keywords double as identifiers wherever an identifier
   is expected, so adding statement vocabulary (PLAN, STATS, WIDTH, ...)
   never breaks schemas that already use those words as attribute or
   table names. *)
let soft_keyword = function
  | Token.Kw_plan -> Some "plan"
  | Token.Kw_stats -> Some "stats"
  | Token.Kw_alerts -> Some "alerts"
  | Token.Kw_audit -> Some "audit"
  | Token.Kw_clock -> Some "clock"
  | Token.Kw_buckets -> Some "buckets"
  | Token.Kw_width -> Some "width"
  | Token.Kw_start -> Some "start"
  | Token.Kw_stride -> Some "stride"
  | Token.Kw_expire -> Some "expire"
  | Token.Kw_reset -> Some "reset"
  | Token.Kw_cooldown -> Some "cooldown"
  | Token.Kw_event -> Some "event"
  | Token.Kw_tiling -> Some "tiling"
  | Token.Kw_sliding -> Some "sliding"
  | Token.Kw_calendar -> Some "calendar"
  | Token.Kw_windowed -> Some "windowed"
  | Token.Kw_rule -> Some "rule"
  | Token.Kw_window -> Some "window"
  | Token.Kw_full -> Some "full"
  | Token.Kw_classify -> Some "classify"
  | Token.Kw_to -> Some "to"
  | Token.Kw_at -> Some "at"
  | Token.Kw_within -> Some "within"
  | Token.Kw_retain -> Some "retain"
  | Token.Kw_periodic -> Some "periodic"
  | Token.Kw_repeat -> Some "repeat"
  | Token.Kw_set -> Some "set"
  | Token.Kw_batch -> Some "batch"
  | Token.Kw_flush -> Some "flush"
  | Token.Kw_retract -> Some "retract"
  | _ -> None

let ident st =
  match peek st with
  | Token.Ident name ->
      advance st;
      name
  | t -> (
      match soft_keyword t with
      | Some name ->
          advance st;
          name
      | None -> error st "expected an identifier, found %s" (Token.to_string t))

let comma_separated st parse_one =
  let rec more acc =
    if peek st = Token.Comma then begin
      advance st;
      more (parse_one st :: acc)
    end
    else List.rev acc
  in
  more [ parse_one st ]

(* ---- conditions ---- *)

let operand st =
  match peek st with
  | Token.Ident a ->
      advance st;
      Ast.Attr a
  | t when soft_keyword t <> None ->
      advance st;
      Ast.Attr (Option.get (soft_keyword t))
  | Token.Int_lit i ->
      advance st;
      Ast.Lit (Value.Int i)
  | Token.Float_lit f ->
      advance st;
      Ast.Lit (Value.Float f)
  | Token.Str_lit s ->
      advance st;
      Ast.Lit (Value.Str s)
  | Token.Kw_true ->
      advance st;
      Ast.Lit (Value.Bool true)
  | Token.Kw_false ->
      advance st;
      Ast.Lit (Value.Bool false)
  | t -> error st "expected an attribute or literal, found %s" (Token.to_string t)

let comparison_op st =
  match peek st with
  | Token.Op_eq ->
      advance st;
      Predicate.Eq
  | Token.Op_ne ->
      advance st;
      Predicate.Ne
  | Token.Op_le ->
      advance st;
      Predicate.Le
  | Token.Op_lt ->
      advance st;
      Predicate.Lt
  | Token.Op_ge ->
      advance st;
      Predicate.Ge
  | Token.Op_gt ->
      advance st;
      Predicate.Gt
  | t -> error st "expected a comparison operator, found %s" (Token.to_string t)

let rec cond st = or_cond st

and or_cond st =
  let left = and_cond st in
  if peek st = Token.Kw_or then begin
    advance st;
    Ast.Or (left, or_cond st)
  end
  else left

and and_cond st =
  let left = atom_cond st in
  if peek st = Token.Kw_and then begin
    advance st;
    Ast.And (left, and_cond st)
  end
  else left

and atom_cond st =
  match peek st with
  | Token.Kw_not ->
      advance st;
      Ast.Not (atom_cond st)
  | Token.Lparen ->
      advance st;
      let c = cond st in
      expect st Token.Rparen;
      c
  | _ ->
      let left = operand st in
      let op = comparison_op st in
      let right = operand st in
      Ast.Cmp { left; op; right }

(* ---- select ---- *)

let select_item st =
  match peek st with
  | t when (match t with Token.Ident _ -> false | _ -> soft_keyword t <> None) ->
      advance st;
      Ast.Col (Option.get (soft_keyword t))
  | Token.Ident name -> (
      (* aggregate call or plain column *)
      match Aggregate.func_of_name name with
      | Some func when fst st.tokens.(st.pos + 1) = Token.Lparen ->
          advance st;
          advance st;
          let arg =
            match peek st with
            | Token.Star ->
                advance st;
                None
            | _ -> Some (ident st)
          in
          expect st Token.Rparen;
          let alias =
            if peek st = Token.Kw_as then begin
              advance st;
              Some (ident st)
            end
            else None
          in
          Ast.Agg { func; arg; alias }
      | _ ->
          advance st;
          Ast.Col name)
  | t -> error st "expected a select item, found %s" (Token.to_string t)

let join_on_pair st =
  let a = ident st in
  expect st Token.Op_eq;
  let b = ident st in
  (a, b)

let join_tail st =
  if peek st = Token.Kw_join then begin
    advance st;
    let rel = ident st in
    expect st Token.Kw_on;
    let first = join_on_pair st in
    let rec more acc =
      if peek st = Token.Kw_and then begin
        advance st;
        more (join_on_pair st :: acc)
      end
      else List.rev acc
    in
    Some (rel, more [ first ])
  end
  else None

let where_tail st =
  if peek st = Token.Kw_where then begin
    advance st;
    Some (cond st)
  end
  else None

let group_by_tail st =
  if peek st = Token.Kw_group then begin
    advance st;
    expect st Token.Kw_by;
    comma_separated st ident
  end
  else []

let select st =
  expect st Token.Kw_select;
  let items = comma_separated st select_item in
  expect st Token.Kw_from;
  expect st Token.Kw_chronicle;
  let chronicle = ident st in
  let join =
    Option.map (fun (rel, on) -> { Ast.rel; on }) (join_tail st)
  in
  let where = where_tail st in
  let group_by = group_by_tail st in
  { Ast.items; chronicle; join; where; group_by }

(* ad-hoc query: like [select] but FROM names a view or relation *)
let query st =
  expect st Token.Kw_select;
  let q_items = comma_separated st select_item in
  expect st Token.Kw_from;
  let q_from = ident st in
  let q_join = join_tail st in
  let q_where = where_tail st in
  let q_group = group_by_tail st in
  { Ast.q_items; q_from; q_join; q_where; q_group }

(* ---- statements ---- *)

let value_ty st =
  let name = ident st in
  match String.uppercase_ascii name with
  | "INT" | "INTEGER" -> Value.TInt
  | "FLOAT" | "REAL" | "DOUBLE" -> Value.TFloat
  | "STRING" | "TEXT" | "VARCHAR" -> Value.TStr
  | "BOOL" | "BOOLEAN" -> Value.TBool
  | other -> error st "unknown type %s" other

let column st =
  let name = ident st in
  let ty = value_ty st in
  (name, ty)

let literal st =
  match operand st with
  | Ast.Lit v -> v
  | Ast.Attr a -> error st "expected a literal, found attribute %s" a

let value_row st =
  expect st Token.Lparen;
  let vs = comma_separated st literal in
  expect st Token.Rparen;
  vs

let int_lit st =
  match peek st with
  | Token.Int_lit n ->
      advance st;
      n
  | t -> error st "expected an integer, found %s" (Token.to_string t)

let calendar_spec st =
  let shape =
    match peek st with
    | Token.Kw_tiling ->
        advance st;
        `Tiling
    | Token.Kw_sliding ->
        advance st;
        `Sliding
    | Token.Kw_periodic ->
        advance st;
        `Periodic
    | t ->
        error st "expected TILING, SLIDING or PERIODIC, found %s"
          (Token.to_string t)
  in
  expect st Token.Kw_start;
  let cal_start = int_lit st in
  expect st Token.Kw_width;
  let cal_width = int_lit st in
  let shape =
    match shape with
    | `Tiling -> `Tiling
    | `Sliding -> `Sliding
    | `Periodic ->
        expect st Token.Kw_stride;
        `Stride (int_lit st)
  in
  { Ast.shape; cal_start; cal_width }

(* event patterns: THEN binds tightest, then AND, then OR *)
let rec event_pattern st = ev_or st

and ev_or st =
  let left = ev_and st in
  if peek st = Token.Kw_or then begin
    advance st;
    Ast.Ev_or (left, ev_or st)
  end
  else left

and ev_and st =
  let left = ev_seq st in
  if peek st = Token.Kw_and then begin
    advance st;
    Ast.Ev_and (left, ev_and st)
  end
  else left

and ev_seq st =
  let left = ev_atom st in
  if peek st = Token.Kw_then then begin
    advance st;
    Ast.Ev_seq (left, ev_seq st)
  end
  else left

and ev_atom st =
  match peek st with
  | Token.Kw_event ->
      advance st;
      let name =
        match peek st with
        | Token.Ident n ->
            advance st;
            Some n
        | _ -> None
      in
      expect st Token.Lparen;
      let c = cond st in
      expect st Token.Rparen;
      Ast.Ev_atom (name, c)
  | Token.Kw_repeat -> (
      advance st;
      match peek st with
      | Token.Int_lit n ->
          advance st;
          Ast.Ev_repeat (n, ev_atom st)
      | t -> error st "expected a repeat count, found %s" (Token.to_string t))
  | Token.Lparen ->
      advance st;
      let p = event_pattern st in
      expect st Token.Rparen;
      p
  | t ->
      error st "expected EVENT, REPEAT or a parenthesized pattern, found %s"
        (Token.to_string t)

let stmt st =
  match peek st with
  | Token.Kw_create -> (
      advance st;
      match peek st with
      | Token.Kw_chronicle ->
          advance st;
          let name = ident st in
          expect st Token.Lparen;
          let columns = comma_separated st column in
          expect st Token.Rparen;
          let retain =
            if peek st = Token.Kw_retain then begin
              advance st;
              match peek st with
              | Token.Kw_full ->
                  advance st;
                  Some Ast.Retain_full
              | Token.Kw_window -> (
                  advance st;
                  match peek st with
                  | Token.Int_lit n ->
                      advance st;
                      Some (Ast.Retain_window n)
                  | t -> error st "expected a window size, found %s" (Token.to_string t))
              | t -> error st "expected FULL or WINDOW, found %s" (Token.to_string t)
            end
            else None
          in
          Ast.Create_chronicle { name; columns; retain }
      | Token.Kw_relation ->
          advance st;
          let name = ident st in
          expect st Token.Lparen;
          let columns = comma_separated st column in
          expect st Token.Rparen;
          expect st Token.Kw_key;
          expect st Token.Lparen;
          let key = comma_separated st ident in
          expect st Token.Rparen;
          Ast.Create_relation { name; columns; key }
      | t -> error st "expected CHRONICLE or RELATION, found %s" (Token.to_string t))
  | Token.Kw_define -> (
      advance st;
      match peek st with
      | Token.Kw_view ->
          advance st;
          let name = ident st in
          expect st Token.Kw_as;
          let s = select st in
          Ast.Define_view { name; select = s }
      | Token.Kw_periodic ->
          advance st;
          expect st Token.Kw_view;
          let name = ident st in
          expect st Token.Kw_as;
          let s = select st in
          expect st Token.Kw_calendar;
          let calendar = calendar_spec st in
          let expire =
            if peek st = Token.Kw_expire then begin
              advance st;
              Some (int_lit st)
            end
            else None
          in
          Ast.Define_periodic { name; select = s; calendar; expire }
      | Token.Kw_windowed ->
          advance st;
          expect st Token.Kw_view;
          let name = ident st in
          expect st Token.Kw_buckets;
          let buckets = int_lit st in
          let bucket_width =
            if peek st = Token.Kw_width then begin
              advance st;
              int_lit st
            end
            else 1
          in
          expect st Token.Kw_as;
          let s = select st in
          Ast.Define_windowed { name; select = s; buckets; bucket_width }
      | Token.Kw_rule ->
          advance st;
          let name = ident st in
          expect st Token.Kw_on;
          let chronicle = ident st in
          expect st Token.Kw_key;
          expect st Token.Lparen;
          let key = comma_separated st ident in
          expect st Token.Rparen;
          let within =
            if peek st = Token.Kw_within then begin
              advance st;
              Some (int_lit st)
            end
            else None
          in
          let cooldown =
            if peek st = Token.Kw_cooldown then begin
              advance st;
              Some (int_lit st)
            end
            else None
          in
          let reset_on_match =
            if peek st = Token.Kw_reset then begin
              advance st;
              true
            end
            else false
          in
          expect st Token.Kw_when;
          let pattern = event_pattern st in
          Ast.Define_rule
            { name; chronicle; key; within; cooldown; reset_on_match; pattern }
      | t ->
          error st
            "expected VIEW, PERIODIC VIEW, WINDOWED VIEW or RULE, found %s"
            (Token.to_string t))
  | Token.Kw_drop ->
      advance st;
      expect st Token.Kw_view;
      Ast.Drop_view (ident st)
  | Token.Kw_load ->
      advance st;
      expect st Token.Kw_into;
      let target = ident st in
      expect st Token.Kw_from;
      let path =
        match peek st with
        | Token.Str_lit p ->
            advance st;
            p
        | t -> error st "expected a quoted file path, found %s" (Token.to_string t)
      in
      Ast.Load_csv { target; path }
  | Token.Kw_advance ->
      advance st;
      expect st Token.Kw_clock;
      expect st Token.Kw_to;
      Ast.Advance_clock (int_lit st)
  | Token.Kw_set ->
      advance st;
      expect st Token.Kw_batch;
      Ast.Set_batch (int_lit st)
  | Token.Kw_flush ->
      advance st;
      Ast.Flush
  | Token.Kw_select -> Ast.Query (query st)
  | Token.Kw_append ->
      advance st;
      expect st Token.Kw_into;
      let chronicle = ident st in
      expect st Token.Kw_values;
      let rows = comma_separated st value_row in
      Ast.Append_into { chronicle; rows }
  | Token.Kw_retract ->
      advance st;
      expect st Token.Kw_from;
      let chronicle = ident st in
      expect st Token.Kw_values;
      let rows = comma_separated st value_row in
      Ast.Retract_from { chronicle; rows }
  | Token.Kw_insert ->
      advance st;
      expect st Token.Kw_into;
      let relation = ident st in
      expect st Token.Kw_values;
      let rows = comma_separated st value_row in
      Ast.Insert_into { relation; rows }
  | Token.Kw_show -> (
      advance st;
      match peek st with
      | Token.Kw_view ->
          advance st;
          Ast.Show_view (ident st)
      | Token.Kw_classify ->
          advance st;
          Ast.Show_classify (ident st)
      | Token.Kw_periodic ->
          advance st;
          let name = ident st in
          let index =
            if peek st = Token.Kw_at then begin
              advance st;
              Some (int_lit st)
            end
            else None
          in
          Ast.Show_periodic { name; index }
      | Token.Kw_windowed ->
          advance st;
          Ast.Show_windowed (ident st)
      | Token.Kw_alerts ->
          advance st;
          Ast.Show_alerts
      | Token.Kw_audit ->
          advance st;
          Ast.Show_audit
      | Token.Kw_plan ->
          advance st;
          Ast.Show_plan (ident st)
      | Token.Kw_stats ->
          advance st;
          Ast.Show_stats
      | Token.Kw_counters ->
          advance st;
          Ast.Show_counters
      | t ->
          error st
            "expected VIEW, CLASSIFY, PLAN, PERIODIC, WINDOWED, ALERTS, AUDIT, \
             STATS or COUNTERS, found %s"
            (Token.to_string t))
  | t -> error st "expected a statement, found %s" (Token.to_string t)

let parse src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let rec loop acc =
    if peek st = Token.Eof then List.rev acc
    else begin
      let s = stmt st in
      expect st Token.Semicolon;
      loop (s :: acc)
    end
  in
  loop []

let parse_select src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let s = select st in
  (match peek st with
  | Token.Eof | Token.Semicolon -> ()
  | t -> error st "trailing input: %s" (Token.to_string t));
  s
