type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t; (* received, not yet framed *)
  mutable closed : bool;
}

let connect_unix ?(retries = 50) path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  { fd = go 0; rbuf = Buffer.create 4096; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring fd s !sent (len - !sent)
  done

let send t req = write_all t.fd (Protocol.encode_request req)

let recv t =
  let chunk = Bytes.create 65536 in
  let rec frame () =
    match Wire.split (Buffer.contents t.rbuf) ~pos:0 with
    | `Frame (payload, next) ->
        let data = Buffer.contents t.rbuf in
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf data next (String.length data - next);
        Protocol.decode_response payload
    | `Need_more -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise End_of_file
        | n ->
            Buffer.add_subbytes t.rbuf chunk 0 n;
            frame ())
  in
  frame ()

(* ---- statement splitting ----

   The lexer's tokens carry line numbers but no byte offsets, so the
   statement sources are recovered with a tiny scanner over the same
   lexical surface: [';'] terminates a statement except inside a
   single-quoted string (['']' escapes a quote) or a [--] comment. *)

let split_statements src =
  let n = String.length src in
  let chunks = ref [] and start = ref 0 and i = ref 0 in
  let in_string = ref false and in_comment = ref false in
  while !i < n do
    let c = src.[!i] in
    (if !in_comment then begin
       if c = '\n' then in_comment := false;
       incr i
     end
     else if !in_string then begin
       if c = '\'' then
         if !i + 1 < n && src.[!i + 1] = '\'' then i := !i + 2
         else begin
           in_string := false;
           incr i
         end
       else incr i
     end
     else
       match c with
       | '\'' ->
           in_string := true;
           incr i
       | '-' when !i + 1 < n && src.[!i + 1] = '-' ->
           in_comment := true;
           i := !i + 2
       | ';' ->
           chunks := String.sub src !start (!i + 1 - !start) :: !chunks;
           incr i;
           start := !i
       | _ -> incr i)
  done;
  (* keep a terminator-less tail only if it is more than whitespace and
     comments — [Parser.parse] will reject it with the same error a
     local run reports *)
  let tail = String.sub src !start (n - !start) in
  let tail_blank =
    let j = ref 0 and blank = ref true and comment = ref false in
    let m = String.length tail in
    while !j < m do
      (if !comment then begin
         if tail.[!j] = '\n' then comment := false
       end
       else
         match tail.[!j] with
         | ' ' | '\t' | '\n' | '\r' -> ()
         | '-' when !j + 1 < m && tail.[!j + 1] = '-' ->
             comment := true;
             incr j
         | _ -> blank := false);
      incr j
    done;
    !blank
  in
  List.rev (if tail_blank then !chunks else tail :: !chunks)
