open Chronicle_core

(** The chronicle server: a single-process event loop multiplexing many
    concurrent client connections over one shared {!Db}, each
    connection owning its own {!Chronicle_lang.Session} (its own
    group-commit staging queue, periodic families and detectors) while
    every committed append lands in the one shared database — and, when
    a durability layer is attached to that database, in its one
    journal, which remains the single commit point.

    The per-connection protocol machine ({!accept}/{!feed}) is pure
    byte-in/byte-out, independent of any socket — the event loop
    ({!serve}) is a thin [Unix.select] front end over it, and tests
    drive the machine directly with crafted frames.

    Semantics worth knowing:
    {ul
    {- Acks resolve in watermark order, exactly as the staging queue
       guarantees: under [SET BATCH n] ([n > 1]) an APPEND's ack is
       deferred until its group commits and is delivered before any
       later non-append response on that connection — the same order a
       CLI run of the same script prints.}
    {- Staging is per-session: one connection's staged-but-unflushed
       appends are not visible to another connection's reads until they
       commit (threshold reached, FLUSH, or any non-append statement on
       the staging connection).}
    {- A malformed frame (truncated, oversized, unknown opcode, bad
       field) gets a typed [E_protocol] error response and the
       connection closes after the error is sent; the database is never
       touched by a frame that does not decode.}} *)

type t

val create : ?batch:int -> ?max_frame:int -> Db.t -> t
(** [batch] is the initial staging threshold of every new connection's
    session (clients change theirs with [SET BATCH n]); [max_frame]
    caps accepted frame sizes (default {!Wire.max_frame}). *)

val db : t -> Db.t

val shutdown_requested : t -> bool
(** Set once any connection sends SHUTDOWN; {!serve} stops accepting,
    drains every connection and returns. *)

(** {2 The per-connection protocol machine} *)

type conn

val accept : t -> conn
(** A new logical connection: a fresh session over the shared
    database. *)

val feed : conn -> string -> string
(** Feed raw bytes from the peer; returns the response bytes this input
    produced (possibly [""]).  Complete frames are decoded and
    dispatched in order; a trailing partial frame is buffered for the
    next call. *)

val closing : conn -> bool
(** The connection must be closed once already-returned response bytes
    are flushed (after a protocol error or BYE).  Further {!feed}s
    return [""]. *)

val disconnect : conn -> unit
(** Tear the connection down: staged-but-unacked appends are flushed to
    the shared database (commit, not lose — their write-ahead records
    are the journal's), errors ignored. *)

(** {2 The socket front end} *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (unlinking any stale
    socket file first). *)

val serve : ?on_ready:(unit -> unit) -> t -> Unix.file_descr -> unit
(** Run the event loop on a listening socket until a client sends
    SHUTDOWN: accept, read, {!feed}, write back, multiplexing every
    connection through one [Unix.select].  [on_ready] runs once the
    loop is about to start accepting.  Closes the listening socket
    before returning. *)
