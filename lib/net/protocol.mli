open Relational

(** Request/response vocabulary of the chronicle wire protocol.

    Requests (client → server), one opcode byte then typed fields:
    {ul
    {- [0x01] STMT — one or more ℒ statements as text; the server
       parses and executes them in order, answering one response per
       statement.}
    {- [0x02] APPEND — the fast path: chronicle name + pre-parsed typed
       rows.  The server skips the lexer/parser entirely and stages the
       batch straight into the session's group-commit queue.}
    {- [0x03] FLUSH — commit everything staged on this session and
       resolve the deferred acks; answered by FLUSHED after the acks.}
    {- [0x04] PING — liveness; answered by PONG.}
    {- [0x05] SHUTDOWN — stop the server once every connection drains;
       answered by BYE.}
    {- [0x06] RETRACT — chronicle name + pre-parsed typed rows, removed
       as a ℤ-weighted (weight [-1]) delta; executed exactly like an ℒ
       [RETRACT FROM] (the session's staging queue flushes first) and
       answered by RESULT.}}

    Responses (server → client):
    {ul
    {- [0x81] RESULT — one statement's rendered result text.}
    {- [0x82] ACK — one append's commit: chronicle, sequence number,
       row count.  Acks always arrive in watermark order; under
       [SET BATCH n] ([n > 1]) they are deferred until the group
       commits and delivered before any later non-append response.}
    {- [0x83] ERR — a typed failure: protocol (malformed frame — the
       server closes the connection after sending it), parse, semantic,
       or exec.}
    {- [0x84] FLUSHED, [0x85] PONG, [0x86] BYE.}} *)

type request =
  | Stmt of string
  | Append of { chronicle : string; rows : Value.t list list }
  | Flush
  | Ping
  | Shutdown
  | Retract of { chronicle : string; rows : Value.t list list }

type err_kind = E_protocol | E_parse | E_semantic | E_exec

type response =
  | Result of string
  | Ack of { chronicle : string; sn : int; count : int }
  | Err of { kind : err_kind; message : string }
  | Flushed
  | Pong
  | Bye

val err_kind_name : err_kind -> string

val encode_request : request -> string
(** The complete frame (length prefix included), ready to write. *)

val encode_response : response -> string

val decode_request : string -> request
(** Decode one frame {e payload} (as returned by {!Wire.split}).
    Raises {!Wire.Decode_error} on an unknown opcode or any malformed
    field — including trailing garbage after a well-formed body. *)

val decode_response : string -> response
