open Relational

exception Decode_error of string

let max_frame = 16 * 1024 * 1024

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* ---- encoding ---- *)

(* LEB128 over the int's 63-bit two's-complement pattern: [lsr] is a
   logical shift, so a negative int drains to 0 after at most 9 rounds
   and round-trips bit-exactly *)
let put_uvarint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* zigzag fold: 0, -1, 1, -2, … ↦ 0, 1, 2, 3, … so small magnitudes of
   either sign encode short *)
let put_int buf n = put_uvarint buf ((n lsl 1) lxor (n asr 62))

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

let put_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf '\x00'
  | Value.Bool b ->
      Buffer.add_char buf '\x01';
      Buffer.add_char buf (if b then '\x01' else '\x00')
  | Value.Int n ->
      Buffer.add_char buf '\x02';
      put_int buf n
  | Value.Float f ->
      Buffer.add_char buf '\x03';
      let bits = Int64.bits_of_float f in
      let b = Bytes.create 8 in
      Bytes.set_int64_be b 0 bits;
      Buffer.add_bytes buf b
  | Value.Str s ->
      Buffer.add_char buf '\x04';
      put_string buf s

let frame payload =
  let buf = Buffer.create (String.length payload + 4) in
  put_uvarint buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---- decoding ---- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let remaining r = String.length r.data - r.pos

let byte r =
  if r.pos >= String.length r.data then fail "truncated field";
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let uvarint r =
  let acc = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 56 then fail "varint longer than 9 bytes";
    let b = byte r in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  !acc

let int_ r =
  let u = uvarint r in
  (u lsr 1) lxor (-(u land 1))

let length r ~max what =
  let n = uvarint r in
  if n < 0 || n > max then fail "%s %d out of range (max %d)" what n max;
  n

let string_ r =
  (* the bound must be what remains AFTER the length varint itself is
     consumed, or a length that counts its own prefix bytes slips
     through to [String.sub] *)
  let n = uvarint r in
  if n < 0 || n > remaining r then
    fail "string length %d out of range (max %d)" n (remaining r);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let value r =
  match byte r with
  | 0 -> Value.Null
  | 1 -> (
      match byte r with
      | 0 -> Value.Bool false
      | 1 -> Value.Bool true
      | b -> fail "bad bool byte %#x" b)
  | 2 -> Value.Int (int_ r)
  | 3 ->
      if remaining r < 8 then fail "truncated float";
      let bits = ref 0L in
      for _ = 1 to 8 do
        bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (byte r))
      done;
      Value.Float (Int64.float_of_bits !bits)
  | 4 -> Value.Str (string_ r)
  | t -> fail "unknown value tag %#x" t

let expect_end r =
  if remaining r <> 0 then fail "%d byte(s) of trailing garbage" (remaining r)

let split ?(max_frame = max_frame) data ~pos =
  let len = String.length data in
  (* decode the length prefix by hand: a truncated varint here means
     the bytes have not arrived yet, not malformed input *)
  let acc = ref 0 and shift = ref 0 and p = ref pos in
  let header = ref None in
  while !header = None && !p < len do
    if !shift > 56 then fail "frame length varint longer than 9 bytes";
    let b = Char.code data.[!p] in
    incr p;
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then header := Some !acc
  done;
  match !header with
  | None -> `Need_more
  | Some n ->
      if n < 0 || n > max_frame then
        fail "frame length %d out of range (max %d)" n max_frame;
      if len - !p < n then `Need_more
      else `Frame (String.sub data !p n, !p + n)
