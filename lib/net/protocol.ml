open Relational

type request =
  | Stmt of string
  | Append of { chronicle : string; rows : Value.t list list }
  | Flush
  | Ping
  | Shutdown
  | Retract of { chronicle : string; rows : Value.t list list }

type err_kind = E_protocol | E_parse | E_semantic | E_exec

type response =
  | Result of string
  | Ack of { chronicle : string; sn : int; count : int }
  | Err of { kind : err_kind; message : string }
  | Flushed
  | Pong
  | Bye

let err_kind_name = function
  | E_protocol -> "protocol"
  | E_parse -> "parse"
  | E_semantic -> "semantic"
  | E_exec -> "exec"

let err_kind_byte = function
  | E_protocol -> 0
  | E_parse -> 1
  | E_semantic -> 2
  | E_exec -> 3

let err_kind_of_byte = function
  | 0 -> E_protocol
  | 1 -> E_parse
  | 2 -> E_semantic
  | 3 -> E_exec
  | b -> Wire.(raise (Decode_error (Printf.sprintf "unknown error kind %#x" b)))

let with_payload op fill =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr op);
  fill buf;
  Wire.frame (Buffer.contents buf)

let encode_request = function
  | Stmt text -> with_payload 0x01 (fun buf -> Wire.put_string buf text)
  | Append { chronicle; rows } ->
      with_payload 0x02 (fun buf ->
          Wire.put_string buf chronicle;
          Wire.put_uvarint buf (List.length rows);
          List.iter
            (fun row ->
              Wire.put_uvarint buf (List.length row);
              List.iter (Wire.put_value buf) row)
            rows)
  | Flush -> with_payload 0x03 (fun _ -> ())
  | Ping -> with_payload 0x04 (fun _ -> ())
  | Shutdown -> with_payload 0x05 (fun _ -> ())
  | Retract { chronicle; rows } ->
      with_payload 0x06 (fun buf ->
          Wire.put_string buf chronicle;
          Wire.put_uvarint buf (List.length rows);
          List.iter
            (fun row ->
              Wire.put_uvarint buf (List.length row);
              List.iter (Wire.put_value buf) row)
            rows)

let encode_response = function
  | Result text -> with_payload 0x81 (fun buf -> Wire.put_string buf text)
  | Ack { chronicle; sn; count } ->
      with_payload 0x82 (fun buf ->
          Wire.put_string buf chronicle;
          Wire.put_uvarint buf sn;
          Wire.put_uvarint buf count)
  | Err { kind; message } ->
      with_payload 0x83 (fun buf ->
          Buffer.add_char buf (Char.chr (err_kind_byte kind));
          Wire.put_string buf message)
  | Flushed -> with_payload 0x84 (fun _ -> ())
  | Pong -> with_payload 0x85 (fun _ -> ())
  | Bye -> with_payload 0x86 (fun _ -> ())

let finish r v =
  Wire.expect_end r;
  v

(* List.init applies its function in unspecified order — fatal with a
   stateful reader; read strictly left to right instead *)
let read_n n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

let decode_request payload =
  let r = Wire.reader payload in
  match Wire.byte r with
  | 0x01 -> finish r (Stmt (Wire.string_ r))
  | 0x02 ->
      let chronicle = Wire.string_ r in
      (* every row costs at least one byte, so [remaining] bounds both
         counts — a lying count is rejected before any allocation *)
      let nrows = Wire.length r ~max:(Wire.remaining r) "row count" in
      let rows =
        read_n nrows (fun () ->
            let ncols = Wire.length r ~max:(Wire.remaining r) "column count" in
            read_n ncols (fun () -> Wire.value r))
      in
      finish r (Append { chronicle; rows })
  | 0x03 -> finish r Flush
  | 0x04 -> finish r Ping
  | 0x05 -> finish r Shutdown
  | 0x06 ->
      let chronicle = Wire.string_ r in
      let nrows = Wire.length r ~max:(Wire.remaining r) "row count" in
      let rows =
        read_n nrows (fun () ->
            let ncols = Wire.length r ~max:(Wire.remaining r) "column count" in
            read_n ncols (fun () -> Wire.value r))
      in
      finish r (Retract { chronicle; rows })
  | op -> Wire.(raise (Decode_error (Printf.sprintf "unknown request opcode %#x" op)))

let decode_response payload =
  let r = Wire.reader payload in
  match Wire.byte r with
  | 0x81 -> finish r (Result (Wire.string_ r))
  | 0x82 ->
      let chronicle = Wire.string_ r in
      let sn = Wire.uvarint r in
      let count = Wire.uvarint r in
      finish r (Ack { chronicle; sn; count })
  | 0x83 ->
      let kind = err_kind_of_byte (Wire.byte r) in
      finish r (Err { kind; message = Wire.string_ r })
  | 0x84 -> finish r Flushed
  | 0x85 -> finish r Pong
  | 0x86 -> finish r Bye
  | op ->
      Wire.(raise (Decode_error (Printf.sprintf "unknown response opcode %#x" op)))
