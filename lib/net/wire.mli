open Relational

(** The wire codec: varint-encoded, length-prefixed binary frames with
    typed field parsers.

    Every frame on a chronicle connection is [uvarint length ++ payload]
    — the length counts payload bytes only.  Inside a payload, fields
    are primitive values in a fixed order per opcode (see {!Protocol}):
    unsigned varints (LEB128, at most 9 bytes — exactly the 63 bits of
    an OCaml [int]), zigzag-folded signed varints, length-prefixed byte
    strings, IEEE-754 doubles as 8 raw big-endian bytes, and tagged
    {!Value.t} atoms.

    Decoding is total: every malformed input — truncated field, length
    running past the payload, unknown tag, over-long varint, trailing
    garbage — raises {!Decode_error} with a diagnosis, never a bare
    [Failure] or an out-of-bounds crash.  Truncation at the {e frame}
    level is not an error but a [`Need_more] (the bytes simply have not
    arrived yet); truncation {e inside} a complete frame is. *)

exception Decode_error of string

val max_frame : int
(** Default frame-size cap (16 MiB): {!split} rejects any frame whose
    declared length exceeds it, so a corrupt or hostile length prefix
    cannot make the server buffer unboundedly. *)

(** {2 Encoding} *)

val put_uvarint : Buffer.t -> int -> unit
(** LEB128.  The int's 63 bits are treated as unsigned, so every OCaml
    [int] (including negatives, as their two's-complement bit pattern)
    round-trips in at most 9 bytes. *)

val put_int : Buffer.t -> int -> unit
(** Zigzag-folded signed varint: small magnitudes of either sign stay
    short. *)

val put_string : Buffer.t -> string -> unit
(** [uvarint length ++ bytes]. *)

val put_value : Buffer.t -> Value.t -> unit
(** One tag byte, then the tag-specific payload: 0 = Null, 1 = Bool
    (one byte), 2 = Int (zigzag varint), 3 = Float (8 bytes, IEEE-754
    big-endian), 4 = Str (length-prefixed). *)

val frame : string -> string
(** Wrap a payload as one frame: [uvarint length ++ payload]. *)

(** {2 Decoding} *)

type reader
(** A cursor over one frame payload. *)

val reader : string -> reader
val remaining : reader -> int

val byte : reader -> int
val uvarint : reader -> int
val int_ : reader -> int
val string_ : reader -> string
val value : reader -> Value.t

val length : reader -> max:int -> string -> int
(** A uvarint used as a count or size: raises {!Decode_error} naming
    the field if it is negative (64th-bit games) or exceeds [max]. *)

val expect_end : reader -> unit
(** Raises {!Decode_error} unless the payload was consumed exactly —
    trailing garbage in a frame is malformed, not ignorable. *)

val split :
  ?max_frame:int -> string -> pos:int -> [ `Frame of string * int | `Need_more ]
(** Extract one frame from a byte stream starting at [pos]:
    [`Frame (payload, next_pos)] when a whole frame is available,
    [`Need_more] when the length prefix or the payload is still
    incomplete.  Raises {!Decode_error} on an over-long length varint
    or a declared length that is negative or exceeds [max_frame]. *)
