open Relational
open Chronicle_core
open Chronicle_lang
module Staging = Chronicle_durability.Group

type t = {
  database : Db.t;
  batch : int;
  max_frame : int;
  mutable shutdown : bool;
}

let create ?(batch = 1) ?(max_frame = Wire.max_frame) database =
  if batch < 1 then invalid_arg "Server.create: batch must be at least 1";
  { database; batch; max_frame; shutdown = false }

let db t = t.database
let shutdown_requested t = t.shutdown

(* ---- the per-connection protocol machine ---- *)

type pending = { p_chronicle : string; p_count : int; p_ticket : Staging.ticket }

type conn = {
  server : t;
  session : Session.t;
  inbuf : Buffer.t; (* the trailing partial frame, if any *)
  out : Buffer.t; (* responses produced by the current [feed] *)
  pending : pending Queue.t; (* deferred acks, staging = watermark order *)
  mutable is_closing : bool;
}

let accept server =
  let session = Session.of_db server.database in
  Session.set_batch session server.batch;
  {
    server;
    session;
    inbuf = Buffer.create 256;
    out = Buffer.create 256;
    pending = Queue.create ();
    is_closing = false;
  }

let closing conn = conn.is_closing

let send conn resp = Buffer.add_string conn.out (Protocol.encode_response resp)

(* Failures rendered exactly as the CLI's [report_error], so a client
   printing [Err] messages is byte-compatible with a local run *)
let err_of_exn = function
  | Lexer.Lex_error { message; line; column } ->
      Protocol.Err
        {
          kind = Protocol.E_parse;
          message = Printf.sprintf "lex error at %d:%d: %s" line column message;
        }
  | Parser.Parse_error { message; line } ->
      Protocol.Err
        {
          kind = Protocol.E_parse;
          message = Printf.sprintf "parse error at line %d: %s" line message;
        }
  | Analyze.Semantic_error message ->
      Protocol.Err
        { kind = Protocol.E_semantic; message = "semantic error: " ^ message }
  | Ca.Ill_formed message ->
      Protocol.Err
        { kind = Protocol.E_semantic; message = "algebra error: " ^ message }
  | Db.Unknown message ->
      Protocol.Err
        { kind = Protocol.E_semantic; message = "catalog error: " ^ message }
  | Db.Read_only message ->
      Protocol.Err { kind = Protocol.E_exec; message }
  | e -> Protocol.Err { kind = Protocol.E_exec; message = Printexc.to_string e }

(* Resolve every queued ack.  Callers guarantee the tickets are already
   resolved (the stager just flushed, or its queue is empty), so
   [Staging.await] returns without forcing a partial group out. *)
let drain conn =
  while not (Queue.is_empty conn.pending) do
    let p = Queue.pop conn.pending in
    match Staging.await (Session.stager conn.session) p.p_ticket with
    | Ok sn ->
        send conn
          (Protocol.Ack { chronicle = p.p_chronicle; sn; count = p.p_count })
    | Error e -> send conn (err_of_exn e)
  done

let drain_if_resolved conn =
  if
    (not (Queue.is_empty conn.pending))
    && Staging.pending (Session.stager conn.session) = 0
  then drain conn

let render result = Format.asprintf "%a" Analyze.pp_result result

let exec_stmt conn stmt =
  match Analyze.exec conn.session stmt with
  | Analyze.Staged { chronicle; count; ticket } ->
      Queue.add
        { p_chronicle = chronicle; p_count = count; p_ticket = ticket }
        conn.pending;
      (* a threshold-triggered flush may have committed the group
         already — deliver the acks now rather than on the next
         statement *)
      drain_if_resolved conn
  | result ->
      (* [exec] flushed the session's stager before running, so every
         deferred ack is resolved and must precede this result — the
         CLI's pending-queue print order *)
      drain conn;
      send conn (Protocol.Result (render result))
  | exception e ->
      drain_if_resolved conn;
      send conn (err_of_exn e)

(* The fast path: no lexer, no parser — the payload's typed values feed
   the staging queue (and through it Db.append_group) directly.
   Validation mirrors [Analyze]'s APPEND INTO: unknown chronicle and
   ill-typed rows surface as the same semantic errors. *)
let exec_append conn chronicle rows =
  let database = Session.db conn.session in
  match Db.chronicle database chronicle with
  | exception Db.Unknown msg ->
      send conn
        (Protocol.Err
           { kind = Protocol.E_semantic; message = "semantic error: " ^ msg })
  | c -> (
      let stager = Session.stager conn.session in
      let tuples = List.map Tuple.make rows in
      match
        Staging.stage stager
          ~group:(Group.name (Chron.group c))
          [ (chronicle, tuples) ]
      with
      | exception Invalid_argument msg ->
          send conn
            (Protocol.Err
               { kind = Protocol.E_semantic; message = "semantic error: " ^ msg })
      | exception e -> send conn (err_of_exn e)
      | ticket ->
          let count = List.length tuples in
          if Staging.batch stager <= 1 then
            match Staging.await stager ticket with
            | Ok sn -> send conn (Protocol.Ack { chronicle; sn; count })
            | Error e -> send conn (err_of_exn e)
          else begin
            Queue.add
              { p_chronicle = chronicle; p_count = count; p_ticket = ticket }
              conn.pending;
            drain_if_resolved conn
          end)

let protocol_error conn message =
  send conn (Protocol.Err { kind = Protocol.E_protocol; message });
  conn.is_closing <- true

let handle_payload conn payload =
  match Protocol.decode_request payload with
  | exception Wire.Decode_error msg -> protocol_error conn msg
  | Protocol.Stmt text -> (
      match Parser.parse text with
      | exception e -> send conn (err_of_exn e)
      | stmts -> List.iter (exec_stmt conn) stmts)
  | Protocol.Append { chronicle; rows } -> exec_append conn chronicle rows
  | Protocol.Retract { chronicle; rows } ->
      (* no fast path: retraction is rare and transactional — route it
         through the statement machinery so the staging queue flushes
         first and the rendered result matches a local RETRACT FROM *)
      exec_stmt conn (Ast.Retract_from { chronicle; rows })
  | Protocol.Flush ->
      (match Session.flush conn.session with
      | () -> drain conn
      | exception _ -> drain conn);
      send conn Protocol.Flushed
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.Shutdown ->
      (match Session.flush conn.session with () -> drain conn | exception _ -> drain conn);
      conn.server.shutdown <- true;
      send conn Protocol.Bye;
      conn.is_closing <- true

let feed conn bytes =
  Buffer.clear conn.out;
  if not conn.is_closing then begin
    Buffer.add_string conn.inbuf bytes;
    let data = Buffer.contents conn.inbuf in
    let pos = ref 0 and continue = ref true in
    while !continue do
      match Wire.split ~max_frame:conn.server.max_frame data ~pos:!pos with
      | exception Wire.Decode_error msg ->
          protocol_error conn msg;
          continue := false
      | `Need_more -> continue := false
      | `Frame (payload, next) ->
          pos := next;
          handle_payload conn payload;
          if conn.is_closing then continue := false
    done;
    Buffer.clear conn.inbuf;
    if not conn.is_closing then
      Buffer.add_substring conn.inbuf data !pos (String.length data - !pos)
  end;
  Buffer.contents conn.out

let disconnect conn =
  conn.is_closing <- true;
  (* commit, don't lose: staged appends were validated and (if a
     durability layer is attached) will be journaled by the flush — the
     peer just never hears the acks *)
  match Session.flush conn.session with () -> () | exception _ -> ()

(* ---- the socket front end ---- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

type sock = {
  sfd : Unix.file_descr;
  sconn : conn;
  mutable unsent : string;
}

let serve ?(on_ready = fun () -> ()) t lfd =
  (* a peer that disappears mid-write must surface as EPIPE on the
     write, not kill the whole server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let socks = ref [] in
  let listener_open = ref true in
  let close_listener () =
    if !listener_open then begin
      listener_open := false;
      try Unix.close lfd with Unix.Unix_error _ -> ()
    end
  in
  let remove s =
    disconnect s.sconn;
    (try Unix.close s.sfd with Unix.Unix_error _ -> ());
    socks := List.filter (fun x -> x != s) !socks
  in
  let alive s = List.memq s !socks in
  on_ready ();
  while not (t.shutdown && !socks = []) do
    if t.shutdown then begin
      close_listener ();
      (* stop reading from every peer; what remains is draining the
         responses already produced *)
      List.iter (fun s -> s.sconn.is_closing <- true) !socks
    end;
    (* closing connections with nothing left to send are done *)
    List.iter (fun s -> if closing s.sconn && s.unsent = "" then remove s)
      !socks;
    if not (t.shutdown && !socks = []) then begin
      let rds =
        (if !listener_open && not t.shutdown then [ lfd ] else [])
        @ List.filter_map
            (fun s -> if closing s.sconn then None else Some s.sfd)
            !socks
      in
      let wrs =
        List.filter_map
          (fun s -> if s.unsent <> "" then Some s.sfd else None)
          !socks
      in
      match Unix.select rds wrs [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rready, wready, _ ->
          if !listener_open && List.memq lfd rready then begin
            match Unix.accept lfd with
            | fd, _ ->
                socks := { sfd = fd; sconn = accept t; unsent = "" } :: !socks
            | exception Unix.Unix_error _ -> ()
          end;
          List.iter
            (fun s ->
              if alive s && List.memq s.sfd rready then begin
                let buf = Bytes.create 65536 in
                match Unix.read s.sfd buf 0 (Bytes.length buf) with
                | 0 -> remove s
                | n ->
                    s.unsent <-
                      s.unsent ^ feed s.sconn (Bytes.sub_string buf 0 n)
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                    remove s
              end)
            !socks;
          List.iter
            (fun s ->
              if alive s && List.memq s.sfd wready && s.unsent <> "" then
                match
                  Unix.write_substring s.sfd s.unsent 0
                    (String.length s.unsent)
                with
                | n ->
                    s.unsent <-
                      String.sub s.unsent n (String.length s.unsent - n);
                    if s.unsent = "" && closing s.sconn then remove s
                | exception
                    Unix.Unix_error
                      ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                    remove s)
            !socks
    end
  done;
  close_listener ()
