(** A blocking wire-protocol client: framing and transport only — the
    driving logic (scripts, printing, exit codes) lives in the CLI. *)

type t

val connect_unix : ?retries:int -> string -> t
(** Connect to a Unix-domain socket, retrying [retries] times (default
    50) at 100 ms intervals while the server is still coming up.
    Raises [Unix.Unix_error] once the budget is exhausted. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** Write one framed request (complete, blocking). *)

val recv : t -> Protocol.response
(** Read the next response frame (blocking).  Raises [End_of_file] if
    the server closed the connection, {!Wire.Decode_error} on a
    malformed frame. *)

val split_statements : string -> string list
(** Split ℒ source into one source chunk per statement — on the [';']
    terminators, respecting single-quoted strings (with [''] escapes)
    and [--] comments.  A trailing chunk with no [';'] is kept only if
    it contains more than whitespace and comments.  On any source that
    {!Parser.parse} accepts, the chunks parse to exactly the same
    statements, one each — the invariant the CLI's fast-append mode
    relies on to pair each [APPEND INTO]'s pre-parsed rows with its
    source text. *)
