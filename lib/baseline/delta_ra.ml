open Chronicle_core

type t = { view : View.t }

let create ?index def = { view = View.create ?index def }

let on_batch t ~sn ~batch = View.maintain t.view ~sn ~batch

let view t = t.view
let lookup t key = View.lookup t.view key
