#!/bin/sh
# Gate for the opt-in bisect_ppx coverage variant.
#
# Every library carries an `(instrumentation (backend bisect_ppx))`
# stanza, which dune keeps inert unless a build explicitly opts in with
# `--instrument-with bisect_ppx`.  This script is the single entry
# point (`dune build @coverage` runs it):
#
#   - when bisect_ppx is installed it prints the two commands of the
#     instrumented run (dune forbids recursive invocations from inside
#     a rule, so the run itself stays a top-level command);
#   - when it is not installed — the supported baseline environment —
#     it says so and exits 0, keeping `@coverage` (and the `@ci` gate
#     that builds it) green without the dependency.
#
# See docs/COVERAGE.md for the recorded baseline summary.
set -eu

if ocamlfind query bisect_ppx >/dev/null 2>&1; then
  echo "coverage: bisect_ppx found — run the instrumented suite with:"
  echo "  dune runtest --instrument-with bisect_ppx --force"
  echo "  bisect-ppx-report summary --coverage-path=_build/default"
else
  echo "coverage: bisect_ppx not installed; instrumentation stanzas stay inert (skipped, ok)"
fi
