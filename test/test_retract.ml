(* ℤ-weighted deltas: retraction through the whole stack.

   The metamorphic layer pins the algebra of weights: appending a
   stream and then retracting every row (in any order) returns every
   persistent view to its pre-stream state; retracting a subset leaves
   the views exactly as a clean replay of the survivors builds them;
   and the whole script is parallelism-transparent (jobs ∈ {1,2,4}
   produce byte-identical databases).  The differential layer pins the
   weight = +1 fast path: a pure-append workload never moves any of the
   retraction counters. *)

open Relational
open Chronicle_core
open Util
module Durable = Chronicle_durability.Durable
module Storage = Chronicle_durability.Storage

let cname = function 0 -> "mileage" | _ -> "bonus"
let row (acct, miles) = Fixtures.mile acct miles 1.

(* One database exercising every retraction regime at once: an
   invertible linear aggregate, a MIN/MAX extremum (bounded re-probe),
   a key join with a relation, a non-linear ∪ body (at-sn slice
   diffing) and a Rows-backed projection. *)
let view_names = [ "balance"; "extremes"; "by_state"; "merged"; "postings" ]

let mk_db ?(jobs = 1) () =
  let db = Db.create ~jobs () in
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage"
       Fixtures.mileage_schema);
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"bonus"
       Fixtures.mileage_schema);
  let cust =
    Db.add_relation db ~name:"customers" ~schema:Fixtures.customer_schema
      ~key:[ "cust" ] ()
  in
  List.iter
    (Versioned.insert cust)
    [
      tup [ vi 1; vs "NJ" ];
      tup [ vi 2; vs "NY" ];
      tup [ vi 3; vs "NJ" ];
      tup [ vi 4; vs "CA" ];
    ];
  let mileage = Ca.Chronicle (Db.chronicle db "mileage") in
  let bonus = Ca.Chronicle (Db.chronicle db "bonus") in
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance" ~body:mileage
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"extremes" ~body:mileage
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.max_ "miles" "hi"; Aggregate.min_ "miles" "lo" ] ))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"by_state"
          ~body:
            (Ca.KeyJoinRel
               (mileage, Versioned.relation cust, [ ("acct", "cust") ]))
          (Sca.Group_agg ([ "state" ], [ Aggregate.sum "miles" "m" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"merged"
          ~body:(Ca.Union (mileage, bonus))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "total"; Aggregate.count_star "k" ] ))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"postings"
          ~body:(Ca.Select (Predicate.("miles" >% vi 0), mileage))
          (Sca.Project_out [ "acct"; "miles" ])));
  db

(* ---- scenario: pure data, so one script runs at several degrees ----

   Each batch lands under one sequence number; every row carries a
   retraction priority (the random order) and a survival flag (the
   partial-retraction subset). *)

type srow = { acct : int; miles : int; prio : int; keep : bool }
type batch = { chron : int; rows : srow list }
type scenario = batch list

let append_all db (s : scenario) =
  List.iter
    (fun b ->
      ignore
        (Db.append db (cname b.chron)
           (List.map (fun r -> row (r.acct, r.miles)) b.rows)))
    s

(* All rows matching [sel], in ascending priority order (stable, so
   duplicates are deterministic). *)
let to_retract sel (s : scenario) =
  List.concat_map
    (fun b -> List.filter_map (fun r -> if sel r then Some (b.chron, r) else None) b.rows)
    s
  |> List.stable_sort (fun (_, a) (_, b) -> compare a.prio b.prio)

let retract_all db sel s =
  List.iter
    (fun (chron, r) ->
      check_int "one occurrence claimed" 1
        (Db.retract db (cname chron) [ row (r.acct, r.miles) ]))
    (to_retract sel s)

let gen_scenario =
  QCheck.Gen.(
    let gen_row =
      map
        (fun ((acct, miles), (prio, keep)) -> { acct; miles; prio; keep })
        (pair (pair (1 -- 4) (1 -- 50)) (pair (0 -- 1000) bool))
    in
    list_size (1 -- 8)
      (map
         (fun (chron, rows) -> { chron; rows })
         (pair (0 -- 1) (list_size (1 -- 3) gen_row))))

let print_scenario (s : scenario) =
  String.concat "; "
    (List.map
       (fun b ->
         Printf.sprintf "%s:[%s]" (cname b.chron)
           (String.concat ","
              (List.map
                 (fun r ->
                   Printf.sprintf "(%d,%d,p%d,%s)" r.acct r.miles r.prio
                     (if r.keep then "keep" else "drop"))
                 b.rows)))
       s)

let scenario_arb = QCheck.make ~print:print_scenario gen_scenario

(* ---- metamorphic: append then retract everything ≡ never happened ---- *)

let prop_full_retraction s =
  let db = mk_db () in
  append_all db s;
  retract_all db (fun _ -> true) s;
  List.iter
    (fun v -> check_tuples (v ^ " back to pre-stream") [] (Db.view_contents db v))
    view_names;
  check_int "mileage store empty" 0 (Chron.stored_count (Db.chronicle db "mileage"));
  check_int "bonus store empty" 0 (Chron.stored_count (Db.chronicle db "bonus"));
  true

(* ---- metamorphic: partial retraction ≡ clean replay of survivors ---- *)

let prop_partial_retraction s =
  let db = mk_db () in
  append_all db s;
  retract_all db (fun r -> not r.keep) s;
  let survivors =
    List.filter_map
      (fun b ->
        match List.filter (fun r -> r.keep) b.rows with
        | [] -> None
        | rows -> Some { b with rows })
      s
  in
  let oracle = mk_db () in
  append_all oracle survivors;
  (* sequence numbers differ between the two histories, but no view
     exposes them: group aggregates are sn-insensitive and the
     projection drops the sequencing attribute *)
  List.iter
    (fun v ->
      check_tuples
        (v ^ " ≡ replay of survivors")
        (Db.view_contents oracle v) (Db.view_contents db v))
    view_names;
  true

(* ---- parallelism transparency: jobs ∈ {1,2,4} byte-identical ---- *)

let prop_retract_parallel_transparent s =
  let run jobs =
    let db = mk_db ~jobs () in
    append_all db s;
    retract_all db (fun r -> not r.keep) s;
    Snapshot.save db
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      if not (String.equal (run jobs) reference) then
        QCheck.Test.fail_reportf
          "retraction at jobs=%d diverged from the sequential run" jobs)
    [ 2; 4 ];
  true

(* ---- differential: the weight = +1 fast path never pays ---- *)

let retract_counters =
  Stats.[ Retract_apply; Weight_cancel; Aggregate_reprobe ]

let prop_pure_append_zero_counters s =
  let db = mk_db () in
  let before = Stats.snapshot () in
  append_all db s;
  let after = Stats.snapshot () in
  List.iter
    (fun c ->
      check_int
        (Stats.counter_name c ^ " untouched by pure appends")
        0
        (Stats.diff_get before after c))
    retract_counters;
  true

(* ---- deterministic units ---- *)

let test_retract_basic () =
  let db = mk_db () in
  ignore (Db.append db "mileage" [ row (1, 100); row (2, 200) ]);
  ignore (Db.append db "mileage" [ row (1, 50) ]);
  let before = Stats.snapshot () in
  check_int "two rows in one call" 2
    (Db.retract db "mileage" [ row (1, 100); row (2, 200) ]);
  let after = Stats.snapshot () in
  check_int "one Retract_apply per call" 1
    (Stats.diff_get before after Stats.Retract_apply);
  check_bool "acct 1 keeps the survivor" true
    (Db.summary db ~view:"balance" [ vi 1 ] = Some (tup [ vi 1; vi 50; vi 1 ]));
  check_bool "acct 2 group is gone" true
    (Db.summary db ~view:"balance" [ vi 2 ] = None)

let test_retract_requires_full_retention () =
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 4) ~name:"mileage"
       Fixtures.mileage_schema);
  ignore (Db.append db "mileage" [ row (1, 10) ]);
  check_raises_any "windowed retention refuses retraction" (fun () ->
      ignore (Db.retract db "mileage" [ row (1, 10) ]))

let test_retract_absent_row_is_atomic () =
  let db = mk_db () in
  ignore (Db.append db "mileage" [ row (1, 10) ]);
  let saved = Snapshot.save db in
  check_raises_any "no stored occurrence" (fun () ->
      ignore (Db.retract db "mileage" [ row (2, 99) ]));
  (* the failing row is detected during resolution, before the journal
     record or any mutation: the database is bit-for-bit unchanged *)
  check_raises_any "partial batches fail whole" (fun () ->
      ignore (Db.retract db "mileage" [ row (1, 10); row (2, 99) ]));
  check_string "state unchanged" saved (Snapshot.save db)

let test_retract_claims_newest_occurrence () =
  let db = mk_db () in
  ignore (Db.append db "mileage" [ row (1, 10) ]);
  ignore (Db.append db "mileage" [ row (1, 10) ]);
  check_int "claims one" 1 (Db.retract db "mileage" [ row (1, 10) ]);
  (match Chron.stored (Db.chronicle db "mileage") with
  | [ survivor ] ->
      check_int "the newest occurrence was claimed" 1 (Chron.sn_of survivor)
  | l -> Alcotest.failf "expected one survivor, got %d" (List.length l));
  check_bool "count reflects the claim" true
    (Db.summary db ~view:"balance" [ vi 1 ] = Some (tup [ vi 1; vi 10; vi 1 ]))

let test_retract_minmax_reprobe () =
  let db = mk_db () in
  ignore (Db.append db "mileage" [ row (1, 10) ]);
  ignore (Db.append db "mileage" [ row (1, 50) ]);
  ignore (Db.append db "mileage" [ row (1, 30) ]);
  let before = Stats.snapshot () in
  check_int "extremum retracted" 1 (Db.retract db "mileage" [ row (1, 50) ]);
  let after = Stats.snapshot () in
  check_bool "MIN/MAX re-probed from retained history" true
    (Stats.diff_get before after Stats.Aggregate_reprobe >= 1);
  check_bool "new extrema" true
    (Db.summary db ~view:"extremes" [ vi 1 ] = Some (tup [ vi 1; vi 30; vi 10 ]));
  check_int "then the floor" 1 (Db.retract db "mileage" [ row (1, 10) ]);
  check_bool "degenerate group" true
    (Db.summary db ~view:"extremes" [ vi 1 ] = Some (tup [ vi 1; vi 30; vi 30 ]))

let test_retract_union_slice_diff () =
  let db = mk_db () in
  (* two rows under one sequence number: retracting one makes the ∪
     view diff the at-sn slice, and the surviving row cancels *)
  ignore (Db.append db "mileage" [ row (1, 10); row (2, 20) ]);
  ignore (Db.append db "bonus" [ row (1, 5) ]);
  let before = Stats.snapshot () in
  check_int "retracted" 1 (Db.retract db "mileage" [ row (2, 20) ]);
  let after = Stats.snapshot () in
  check_bool "the surviving slice row cancelled" true
    (Stats.diff_get before after Stats.Weight_cancel >= 1);
  check_bool "union keeps both sources for acct 1" true
    (Db.summary db ~view:"merged" [ vi 1 ] = Some (tup [ vi 1; vi 15; vi 2 ]));
  check_bool "acct 2 is gone from the union" true
    (Db.summary db ~view:"merged" [ vi 2 ] = None)

let test_retract_classification () =
  let fx = Fixtures.make () in
  let linear = Fixtures.balance_def fx in
  let lc, lnotes = Classify.retract_class linear in
  check_string "linear+SUM keeps its class" "IM-Constant"
    (Classify.im_class_name lc);
  check_bool "says why" true
    (List.exists
       (fun n ->
         (* mentions preservation of the append-path class *)
         String.length n > 0
         && Option.is_some (String.index_opt n 'p'))
       lnotes);
  let extremal =
    Sca.define ~name:"hi" ~body:(Ca.Chronicle fx.mileage)
      (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))
  in
  check_string "MAX demotes to IM-R^k" "IM-R^k"
    (Classify.im_class_name (fst (Classify.retract_class extremal)));
  let union =
    Sca.define ~name:"u"
      ~body:(Ca.Union (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))
  in
  check_string "∪ demotes to IM-R^k" "IM-R^k"
    (Classify.im_class_name (fst (Classify.retract_class union)));
  let cross =
    Sca.define ~allow_non_ca:true ~name:"x"
      ~body:(Ca.CrossChron (Ca.Chronicle fx.mileage, Ca.Chronicle fx.bonus))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]))
  in
  check_string "history reader is IM-C^k" "IM-C^k"
    (Classify.im_class_name (fst (Classify.retract_class cross)))

let test_retract_durable_roundtrip () =
  let st = Storage.mem () in
  let db = mk_db () in
  ignore (Durable.attach ~storage:st db);
  ignore (Db.append db "mileage" [ row (1, 100) ]);
  ignore (Db.append db "mileage" [ row (1, 50); row (2, 20) ]);
  check_int "retracted" 2 (Db.retract db "mileage" [ row (1, 100); row (2, 20) ]);
  let d', report = Durable.recover ~storage:st () in
  check_bool "the retract record replayed" true (report.Durable.replayed >= 3);
  check_string "recovered ≡ live, retraction included" (Snapshot.save db)
    (Snapshot.save (Durable.db d'));
  (* idempotence: recovering again (checkpoint now holds the applied
     retraction) reaches the same state *)
  Durable.checkpoint d';
  let d'', _ = Durable.recover ~storage:st () in
  check_string "re-recovery is a fixpoint" (Snapshot.save db)
    (Snapshot.save (Durable.db d''))

let suite =
  [
    test "retract: invertible aggregates and counters" test_retract_basic;
    test "retract: requires Full retention" test_retract_requires_full_retention;
    test "retract: absent row aborts atomically" test_retract_absent_row_is_atomic;
    test "retract: claims the newest occurrence" test_retract_claims_newest_occurrence;
    test "retract: MIN/MAX bounded re-probe" test_retract_minmax_reprobe;
    test "retract: union diffs the at-sn slice" test_retract_union_slice_diff;
    test "retract: static classification" test_retract_classification;
    test "retract: durable journal round-trip" test_retract_durable_roundtrip;
    qtest ~count:60 "append ∘ retract-all ≡ identity (random order)"
      scenario_arb prop_full_retraction;
    qtest ~count:60 "partial retraction ≡ clean replay of survivors"
      scenario_arb prop_partial_retraction;
    qtest ~count:20 "retraction is parallelism-transparent (jobs 1/2/4)"
      scenario_arb prop_retract_parallel_transparent;
    qtest ~count:60 "pure appends never move retraction counters"
      scenario_arb prop_pure_append_zero_counters;
  ]
