open Relational
open Chronicle_core
open Util

let user_schema = Schema.make [ ("acct", Value.TInt); ("amt", Value.TInt) ]

let test_group_watermark () =
  let g = Group.create "g" in
  check_int "initial" Seqnum.zero (Group.watermark g);
  check_int "first sn" 1 (Group.next_sn g);
  check_int "second sn" 2 (Group.next_sn g);
  Group.claim_sn g 10;
  check_int "sparse claim" 10 (Group.watermark g);
  Alcotest.check_raises "stale"
    (Group.Stale_sequence_number { given = 5; watermark = 10 })
    (fun () -> Group.claim_sn g 5);
  Alcotest.check_raises "equal is stale too"
    (Group.Stale_sequence_number { given = 10; watermark = 10 })
    (fun () -> Group.claim_sn g 10)

let test_group_clock () =
  let g = Group.create ~clock_start:100 "g" in
  check_int "start" 100 (Group.now g);
  Group.advance_clock g 105;
  check_int "advanced" 105 (Group.now g);
  check_raises_any "no going back" (fun () -> Group.advance_clock g 99)

let test_chronicle_schema () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~name:"txns" user_schema in
  check_int "sn first" 0 (Schema.pos (Chron.schema c) Seqnum.attr);
  check_int "full arity" 3 (Schema.arity (Chron.schema c));
  check_raises_any "reserved attribute" (fun () ->
      ignore
        (Chron.create ~group:g ~name:"bad"
           (Schema.make [ (Seqnum.attr, Value.TInt) ])))

let test_append_tags () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:Chron.Full ~name:"txns" user_schema in
  let sn = Chron.append c [ tup [ vi 1; vi 50 ]; tup [ vi 2; vi 70 ] ] in
  check_int "batch sn" 1 sn;
  check_int "total" 2 (Chron.total_appended c);
  check_bool "last_sn" true (Chron.last_sn c = Some 1);
  check_tuples "stored tagged"
    [ tup [ vi 1; vi 1; vi 50 ]; tup [ vi 1; vi 2; vi 70 ] ]
    (Chron.stored c);
  check_int "sn_of" 1 (Chron.sn_of (List.hd (Chron.stored c)))

let test_append_type_checked () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~name:"txns" user_schema in
  check_raises_any "wrong tuple" (fun () ->
      ignore (Chron.append c [ tup [ vs "oops" ] ]))

let test_retention_discard () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~name:"txns" user_schema in
  ignore (Chron.append c [ tup [ vi 1; vi 50 ] ]);
  check_int "nothing stored" 0 (Chron.stored_count c);
  check_int "but counted" 1 (Chron.total_appended c)

let test_retention_window () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:(Chron.Window 3) ~name:"txns" user_schema in
  for i = 1 to 5 do
    ignore (Chron.append c [ tup [ vi i; vi (i * 10) ] ])
  done;
  check_int "window size" 3 (Chron.stored_count c);
  check_tuples "latest three, oldest first"
    [ tup [ vi 3; vi 3; vi 30 ]; tup [ vi 4; vi 4; vi 40 ]; tup [ vi 5; vi 5; vi 50 ] ]
    (Chron.stored c)

let test_scan_counts () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:Chron.Full ~name:"txns" user_schema in
  for i = 1 to 4 do
    ignore (Chron.append c [ tup [ vi i; vi 1 ] ])
  done;
  let before = Stats.snapshot () in
  Chron.scan ignore c;
  let after = Stats.snapshot () in
  check_int "chronicle_scan counted" 4
    (Stats.diff_get before after Stats.Chronicle_scan)

let test_append_sparse () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:Chron.Full ~name:"txns" user_schema in
  Chron.append_sparse c 100 [ tup [ vi 1; vi 1 ] ];
  check_int "watermark" 100 (Group.watermark g);
  check_raises_any "stale sparse" (fun () ->
      Chron.append_sparse c 50 [ tup [ vi 1; vi 1 ] ])

let test_append_multi () =
  let g = Group.create "g" in
  let c1 = Chron.create ~group:g ~retention:Chron.Full ~name:"a" user_schema in
  let c2 = Chron.create ~group:g ~retention:Chron.Full ~name:"b" user_schema in
  let sn = Chron.append_multi g [ (c1, [ tup [ vi 1; vi 1 ] ]); (c2, [ tup [ vi 2; vi 2 ] ]) ] in
  check_int "same sn both" sn (Chron.sn_of (List.hd (Chron.stored c1)));
  check_int "same sn both 2" sn (Chron.sn_of (List.hd (Chron.stored c2)));
  let other = Group.create "other" in
  let c3 = Chron.create ~group:other ~name:"c" user_schema in
  check_raises_any "cross-group batch rejected" (fun () ->
      ignore (Chron.append_multi g [ (c3, [ tup [ vi 1; vi 1 ] ]) ]))

let test_subscribers () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~name:"txns" user_schema in
  let seen = ref [] in
  Chron.on_append c (fun sn tagged -> seen := (sn, List.length tagged) :: !seen);
  ignore (Chron.append c [ tup [ vi 1; vi 1 ]; tup [ vi 2; vi 2 ] ]);
  ignore (Chron.append c [ tup [ vi 3; vi 3 ] ]);
  check_bool "notified in order" true (List.rev !seen = [ (1, 2); (2, 1) ])

let test_restore_conflict () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:Chron.Full ~name:"t" user_schema in
  ignore (Chron.append c [ tup [ vi 1; vi 1 ] ]);
  match Chron.restore c ~total:3 ~last_sn:(Some 3) ~retained:[] with
  | () -> Alcotest.fail "restore into a non-fresh chronicle must fail"
  | exception Chron.Restore_conflict { chronicle; appended } ->
      check_string "conflicting chronicle" "t" chronicle;
      check_int "appends already recorded" 1 appended

let test_txn_marks () =
  let g = Group.create "g" in
  let c = Chron.create ~group:g ~retention:(Chron.Window 3) ~name:"t" user_schema in
  ignore (Chron.append c [ tup [ vi 1; vi 1 ]; tup [ vi 2; vi 2 ] ]);
  let before = Chron.stored c in
  let m = Chron.mark c in
  (* a big batch that laps the 3-slot ring *)
  ignore
    (Chron.record c 2 [ tup [ vi 3; vi 3 ]; tup [ vi 4; vi 4 ];
                        tup [ vi 5; vi 5 ]; tup [ vi 6; vi 6 ] ]);
  check_int "recorded over the mark" 6 (Chron.total_appended c);
  Chron.rollback c m;
  check_int "total restored" 2 (Chron.total_appended c);
  check_tuples "ring window restored (even after lapping)" before (Chron.stored c);
  check_bool "last_sn restored" true (Chron.last_sn c = Some 1);
  (* commit path: marks are cheap bookkeeping, commit keeps the batch *)
  let m2 = Chron.mark c in
  ignore (Chron.record c 2 [ tup [ vi 7; vi 7 ] ]);
  Chron.commit c;
  ignore m2;
  check_int "committed batch stays" 3 (Chron.total_appended c)

let qcheck_monotone_sns =
  let gen = QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 3)) in
  qtest "appended sequence numbers are strictly increasing per batch" gen
    (fun sizes ->
      let g = Group.create "g" in
      let c = Chron.create ~group:g ~retention:Chron.Full ~name:"t" user_schema in
      List.iter
        (fun k -> ignore (Chron.append c (List.init (k + 1) (fun i -> tup [ vi i; vi i ]))))
        sizes;
      let sns = List.map Chron.sn_of (Chron.stored c) in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      non_decreasing sns
      && Group.watermark g = List.length sizes)

let suite =
  [
    test "group watermark and sparse claims" test_group_watermark;
    test "group clock" test_group_clock;
    test "chronicle schema gains sn" test_chronicle_schema;
    test "append tags tuples with the batch sn" test_append_tags;
    test "append type-checks tuples" test_append_type_checked;
    test "retention: discard" test_retention_discard;
    test "retention: ring window" test_retention_window;
    test "scans bump the chronicle_scan counter" test_scan_counts;
    test "sparse sequence numbers" test_append_sparse;
    test "simultaneous multi-chronicle batch" test_append_multi;
    test "append subscribers" test_subscribers;
    test "restore conflicts are typed errors" test_restore_conflict;
    test "transactional marks roll the store back" test_txn_marks;
    qcheck_monotone_sns;
  ]
