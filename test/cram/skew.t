Skew-aware key-join maintenance.  --heavy-threshold N sets the
promotion bar of the heavy-light key partition on run and recover:
keys of the join input whose append-path frequency reaches the bar are
promoted to a materialized partial-join run; the rest keep the lazy
fold.  0 is the adaptive default and a very large bar effectively
disables partitioning.  The partition is pure mechanism — SHOW VIEW
output is byte-identical with partitioning on and off, at every --jobs
degree.

  $ cat > skew.cdl <<CDL
  > CREATE CHRONICLE txn (acct INT, amount FLOAT);
  > CREATE RELATION accounts (acct INT, branch STRING) KEY (acct);
  > INSERT INTO accounts VALUES (1, 'downtown'), (2, 'uptown'), (3, 'downtown'), (4, 'airport');
  > DEFINE VIEW by_branch AS
  >   SELECT branch, SUM(amount) AS total
  >   FROM CHRONICLE txn JOIN accounts ON acct = acct
  >   GROUP BY branch;
  > APPEND INTO txn VALUES (1, 10.0), (2, 5.0);
  > APPEND INTO txn VALUES (1, 1.0);
  > APPEND INTO txn VALUES (1, 2.0);
  > APPEND INTO txn VALUES (1, 4.0), (3, 7.5);
  > APPEND INTO txn VALUES (1, 8.0);
  > SHOW VIEW by_branch;
  > CDL
  $ chronicle-cli run --heavy-threshold 2 skew.cdl
  created txn
  created accounts
  inserted 4 row(s) into accounts
  defined view by_branch: CA_join (IM-log(R))
  appended 2 row(s) to txn at sn 1
  appended 1 row(s) to txn at sn 2
  appended 1 row(s) to txn at sn 3
  appended 2 row(s) to txn at sn 4
  appended 1 row(s) to txn at sn 5
  (branch:string,
  total:float)
  (branch="downtown", total=32.5)
  (branch="uptown", total=5)

Byte-identical with the bar out of reach, and across --jobs degrees:

  $ chronicle-cli run --heavy-threshold 2 skew.cdl > on.out
  $ chronicle-cli run --heavy-threshold 1000000 skew.cdl > off.out
  $ cmp on.out off.out && echo identical
  identical
  $ chronicle-cli run --jobs 4 --heavy-threshold 2 skew.cdl > on4.out
  $ cmp on.out on4.out && echo identical
  identical

SHOW COUNTERS exposes the partition's work counters.  The hot key
(acct 1, five touches) crosses a bar of 2 — promotion happens and
later touches are served from the heavy run; with the bar out of reach
every touch stays a lazy fold and the heavy counters are all zero.
The same stream is also below the adaptive default bar (16), so the
default run keeps them zero too.

  $ cat skew.cdl > counters.cdl && echo 'SHOW COUNTERS;' >> counters.cdl
  $ heavy () { sed -n 's/.*counter="\(heavy_promote\|heavy_demote\|heavy_probe\|light_fold\)", value=\([0-9]*\).*/\1 \2/p' \
  >   | awk '{ print $1, ($2 > 0) ? "nonzero" : "zero" }'; }
  $ chronicle-cli run --heavy-threshold 2 counters.cdl | heavy
  heavy_promote nonzero
  heavy_demote zero
  heavy_probe nonzero
  light_fold nonzero
  $ chronicle-cli run --heavy-threshold 1000000 counters.cdl | heavy
  heavy_promote zero
  heavy_demote zero
  heavy_probe zero
  light_fold nonzero
  $ chronicle-cli run counters.cdl | heavy
  heavy_promote zero
  heavy_demote zero
  heavy_probe zero
  light_fold nonzero

recover accepts the same flag: replay runs through the identical
partitioned delta path and reaches the same state.

  $ chronicle-cli run --durable skewdb --heavy-threshold 2 skew.cdl > /dev/null
  $ chronicle-cli recover --heavy-threshold 2 skewdb
  recovered skewdb: checkpoint loaded; journal: 0 replayed, 0 skipped
  view by_branch: 2 row(s)
  $ chronicle-cli recover --heavy-threshold 1000000 skewdb
  recovered skewdb: checkpoint loaded; journal: 0 replayed, 0 skipped
  view by_branch: 2 row(s)
