The chronicle server: one shared database, many wire-protocol clients
over a Unix-domain socket.  Each connection owns its own session
(its own group-commit staging queue); every commit lands in the one
shared database and, under --durable, its one journal.

  $ cat > script.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > CREATE RELATION customers (cust INT, state STRING) KEY (cust);
  > INSERT INTO customers VALUES (1, 'NJ'), (2, 'NY');
  > DEFINE VIEW by_state AS SELECT state, SUM(miles) AS total FROM CHRONICLE mileage JOIN customers ON acct = cust GROUP BY state;
  > APPEND INTO mileage VALUES (1, 100);
  > APPEND INTO mileage VALUES (2, 40), (1, 0);
  > SHOW VIEW by_state;
  > CDL

  $ chronicle-cli serve --socket s.sock --durable srv > server.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done

A client run prints byte-for-byte what a local `run` of the same
script prints:

  $ chronicle-cli client --socket s.sock script.cdl | tee client.out
  created mileage
  created customers
  inserted 2 row(s) into customers
  defined view by_state: CA_join (IM-log(R))
  appended 1 row(s) to mileage at sn 1
  appended 2 row(s) to mileage at sn 2
  (state:string,
  total:int)
  (state="NJ", total=100)
  (state="NY", total=40)

  $ chronicle-cli run script.cdl > local.out
  $ diff client.out local.out

The binary fast path: --fast-append sends each APPEND INTO as a
pre-parsed typed frame, skipping the server's lexer/parser; SET BATCH
stages appends into this connection's group-commit queue, and the
deferred acks resolve — in watermark order — before any later
non-append response.  The server state carries over from the first
client (sequence numbers continue):

  $ cat > more.cdl <<CDL
  > SET BATCH 2;
  > APPEND INTO mileage VALUES (1, 25);
  > APPEND INTO mileage VALUES (2, 10);
  > SHOW VIEW by_state;
  > CDL

  $ chronicle-cli client --socket s.sock --fast-append more.cdl
  batch size set to 2
  appended 1 row(s) to mileage at sn 3
  appended 1 row(s) to mileage at sn 4
  (state:string,
  total:int)
  (state="NJ", total=125)
  (state="NY", total=50)

Failures come back as typed errors on stderr and exit status 1 — the
session survives them:

  $ cat > bad2.cdl <<CDL
  > APPEND INTO nosuch VALUES (1);
  > SHOW VIEW by_state;
  > CDL

  $ chronicle-cli client --socket s.sock bad2.cdl
  semantic error: chronicle "nosuch" is not in the catalog
  (state:string,
  total:int)
  (state="NJ", total=125)
  (state="NY", total=50)
  [1]

SHUTDOWN stops the server once every connection drains; a clean
durable shutdown checkpoints:

  $ chronicle-cli client --socket s.sock --shutdown
  server shutting down
  $ wait
  $ cat server.log
  listening on s.sock
  checkpointed srv
  server stopped

Everything the clients wrote — including the relation rows, whose
inserts are journaled — survives:

  $ chronicle-cli recover srv
  recovered srv: checkpoint loaded; journal: 0 replayed, 0 skipped
  view by_state: 2 row(s)
