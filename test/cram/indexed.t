Ad-hoc queries run as parallel plans on the session's domain pool, and
an equality WHERE over a keyed (hash-indexed) relation takes the ranged
index-probe pushdown: each range answers with one bounded probe instead
of scanning its slice.  The output is byte-identical at every --jobs
degree.

  $ cat > q.cdl <<CDL
  > CREATE RELATION pts (k INT, x INT) KEY (k);
  > INSERT INTO pts VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60), (7, 70), (8, 80);
  > SELECT k, x FROM pts WHERE k = 3;
  > CDL
  $ chronicle-cli run --jobs 1 q.cdl
  created pts
  inserted 8 row(s) into pts
  (k:int,
  x:int)
  (k=3, x=30)
  $ chronicle-cli run --jobs 1 q.cdl > q1.out
  $ chronicle-cli run --jobs 4 q.cdl > q4.out
  $ cmp q1.out q4.out && echo identical
  identical

SHOW COUNTERS exposes the engine's work counters.  The ranged path
really is probing: index_scan is nonzero at both degrees (once
sequentially, once per range at --jobs 4 — counts scale with the
degree, so we normalize them), and tuple_read stays at the single
matching row — the probe never scans the other seven.

  $ cat > counters.cdl <<CDL
  > CREATE RELATION pts (k INT, x INT) KEY (k);
  > INSERT INTO pts VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60), (7, 70), (8, 80);
  > SELECT k, x FROM pts WHERE k = 3;
  > SHOW COUNTERS;
  > CDL
  $ probes () { sed -n 's/.*counter="\(index_scan\|tuple_read\)", value=\([0-9]*\).*/\1 \2/p' \
  >   | awk '$1 == "index_scan" { print $1, ($2 > 0) ? "nonzero" : "zero" } $1 == "tuple_read" { print }'; }
  $ chronicle-cli run --jobs 1 counters.cdl | probes
  tuple_read 1
  index_scan nonzero
  $ chronicle-cli run --jobs 4 counters.cdl | probes
  tuple_read 1
  index_scan nonzero
