Self-healing storage: `scrub` CRC-verifies every checkpoint generation
and journal record read-only; `recover` falls back across checkpoint
generations; `--salvage` quarantines damaged bytes and opens the
database read-only.

  $ cat > setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > APPEND INTO mileage VALUES (1, 100), (2, 40);
  > CDL

With --keep-checkpoints 2 the run writes CRC-headed generations and
seals the journal at each checkpoint:

  $ chronicle-cli run --durable gen --keep-checkpoints 2 setup.cdl
  created mileage
  defined view balance: CA_1 (IM-Constant)
  appended 2 row(s) to mileage at sn 1
  checkpointed gen

  $ chronicle-cli scrub gen
  checkpoint.0: ok (generation 0)
  checkpoint.1: ok (generation 1)
  journal.0: 3 record(s), ok
  journal: 0 record(s), ok
  scrub gen: clean

Corrupt the newest generation's payload: scrub pinpoints it, and strict
recovery falls back to the older generation, replaying the longer
journal suffix instead of failing:

  $ printf 'Z' | dd of=gen/checkpoint.1 bs=1 seek=40 conv=notrunc status=none
  $ chronicle-cli scrub gen
  checkpoint.0: ok (generation 0)
  checkpoint.1: DAMAGED: payload checksum mismatch
  journal.0: 3 record(s), ok
  journal: 0 record(s), ok
  scrub gen: DAMAGED
  [1]
  $ chronicle-cli recover gen
  recovered gen: checkpoint generation 0 loaded; journal: 3 replayed, 0 skipped, 1 checkpoint fallback(s)
  view balance: 2 row(s)

A damaged journal record is fatal to strict recovery, but --salvage
recovers the maximal consistent prefix, quarantines the damaged suffix
and opens the database read-only — queries serve, appends are rejected:

  $ cat > more.cdl <<CDL
  > APPEND INTO mileage VALUES (1, 60);
  > APPEND INTO mileage VALUES (3, 75);
  > APPEND INTO mileage VALUES (2, 5);
  > CDL
  $ chronicle-cli run --durable sick setup.cdl > /dev/null
  $ chronicle-cli run --durable sick --crash-after 2 more.cdl > /dev/null
  [2]
  $ printf 'Z' | dd of=sick/journal bs=1 seek=18 conv=notrunc status=none
  $ chronicle-cli recover sick
  journal corrupt at record 0: checksum mismatch
  [1]
  $ cat > probe.cdl <<CDL
  > SHOW VIEW balance;
  > APPEND INTO mileage VALUES (9, 9);
  > CDL
  $ chronicle-cli run --salvage --durable sick probe.cdl
  recovered sick: checkpoint loaded; journal: 0 replayed, 0 skipped, 1 quarantined; DEGRADED (read-only)
  (acct:int,
  total:int)
  (acct=1, total=100)
  (acct=2, total=40)
  Db.append: database is read-only (salvage recovery quarantined damaged journal records)
  [1]

The damaged bytes were parked in a sidecar, never silently dropped, and
the surviving storage is healed — scrub is clean and recovery is normal
again:

  $ ls sick
  checkpoint
  journal
  journal.quarantine
  $ chronicle-cli scrub sick
  checkpoint: ok (legacy)
  journal: 0 record(s), ok
  scrub sick: clean
  $ chronicle-cli recover sick
  recovered sick: checkpoint loaded; journal: 0 replayed, 0 skipped
  view balance: 2 row(s)

--keep-checkpoints 1 (the default) restores the legacy single-file
layout on the next checkpoint, pruning generations and sealed segments:

  $ cat > noop.cdl <<CDL
  > SHOW VIEW balance;
  > CDL
  $ chronicle-cli run --durable gen --keep-checkpoints 1 noop.cdl
  recovered gen: checkpoint generation 0 loaded; journal: 3 replayed, 0 skipped, 1 checkpoint fallback(s)
  (acct:int,
  total:int)
  (acct=1, total=100)
  (acct=2, total=40)
  checkpointed gen
  $ ls gen
  checkpoint
  journal

  $ chronicle-cli scrub nosuch
  no durable state in nosuch
  [1]
