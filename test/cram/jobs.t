Parallel maintenance is an execution property, not a semantics: the
same script produces byte-identical output at every --jobs degree
(each affected view is folded wholly by one task, so per-view state
and printing order never depend on the parallelism).

  $ chronicle-cli run --jobs 1 billing.cdl > jobs1.out
  $ chronicle-cli run --jobs 4 billing.cdl > jobs4.out
  $ cmp jobs1.out jobs4.out && echo identical
  identical

--jobs 0 asks for the recommended domain count, and is equally
invisible in the output:

  $ chronicle-cli run --jobs 0 billing.cdl > jobs0.out
  $ cmp jobs1.out jobs0.out && echo identical
  identical

The degree also rides through durable recovery: journal replay folds
the affected views under the requested parallelism and recovers the
same state at every degree.

  $ cat > setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > DEFINE VIEW frequent AS SELECT acct, COUNT(*) AS flights FROM CHRONICLE mileage GROUP BY acct;
  > APPEND INTO mileage VALUES (1, 100), (2, 40);
  > CDL
  $ cat > more.cdl <<CDL
  > APPEND INTO mileage VALUES (1, 60);
  > APPEND INTO mileage VALUES (3, 75);
  > SHOW VIEW balance;
  > CDL
  $ chronicle-cli run --durable d --jobs 4 setup.cdl > /dev/null
  $ chronicle-cli run --durable d --jobs 4 --crash-after 1 more.cdl > /dev/null
  [2]
  $ chronicle-cli recover --jobs 4 d
  recovered d: checkpoint loaded; journal: 2 replayed, 0 skipped
  view balance: 3 row(s)
  view frequent: 3 row(s)
  $ chronicle-cli recover --jobs 1 d > seq.out
  $ chronicle-cli recover --jobs 4 d > par.out
  $ cmp seq.out par.out && echo identical
  identical

A journal that is one long run of append records exercises the
windowed replay scheduler: the run is recorded sequentially, then the
per-view fold chains are handed to the domain pool.  The recovered
state — and the CLI's byte-for-byte output — is identical at every
degree, including degrees far above the record count's parallelism.

  $ cat > wide-setup.cdl <<CDL
  > CREATE CHRONICLE a (acct INT, miles INT);
  > CREATE CHRONICLE b (acct INT, miles INT);
  > DEFINE VIEW va AS SELECT acct, SUM(miles) AS total FROM CHRONICLE a GROUP BY acct;
  > DEFINE VIEW vb AS SELECT acct, COUNT(*) AS n FROM CHRONICLE b GROUP BY acct;
  > CDL
  $ cat > wide-appends.cdl <<CDL
  > APPEND INTO a VALUES (1, 10), (2, 20);
  > APPEND INTO b VALUES (1, 1);
  > APPEND INTO a VALUES (3, 30);
  > APPEND INTO b VALUES (2, 2), (3, 3);
  > APPEND INTO a VALUES (1, 40);
  > APPEND INTO b VALUES (1, 5);
  > APPEND INTO a VALUES (2, 7);
  > APPEND INTO b VALUES (2, 9);
  > CDL
  $ chronicle-cli run --durable w wide-setup.cdl > /dev/null
  $ chronicle-cli run --durable w --crash-after 7 wide-appends.cdl > /dev/null
  [2]
  $ chronicle-cli recover --jobs 2 w
  recovered w: checkpoint loaded; journal: 8 replayed, 0 skipped
  view va: 3 row(s)
  view vb: 3 row(s)
  $ chronicle-cli recover --jobs 1 w > w1.out
  $ chronicle-cli recover --jobs 2 w > w2.out
  $ chronicle-cli recover --jobs 4 w > w4.out
  $ chronicle-cli recover --jobs 8 w > w8.out
  $ cmp w1.out w2.out && cmp w1.out w4.out && cmp w1.out w8.out && echo identical
  identical
