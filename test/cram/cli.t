The demo subcommand runs a canned frequent-flyer script:

  $ chronicle-cli demo | tail -n 14
  balance:int,
  flights:int)
  (acct=1, balance=5130, flights=2)
  (acct=2, balance=2475, flights=1)
  (state:string,
  total:int)
  (state="NJ", total=5130)
  (state="NY", total=2475)
  tier: CA_join
  body Δ class: IM-log(R)
  view class: IM-log(R)
  u=0 j=1
  time: O(1^1 log|R|)
  space: O(1^1)

A billing scenario with periodic, windowed and ad-hoc queries:

  $ chronicle-cli run billing.cdl
  created calls
  created plans
  inserted 2 row(s) into plans
  defined view spend: CA_1 (IM-Constant)
  defined view by_plan: CA_join (IM-log(R))
  defined periodic view monthly (0 interval views live)
  defined windowed view recent (7 buckets)
  appended 2 row(s) to calls at sn 1
  clock advanced to 5
  appended 1 row(s) to calls at sn 2
  clock advanced to 31
  appended 1 row(s) to calls at sn 3
  (number:int,
  total:float,
  calls:int)
  (number=1, total=4.4, calls=2)
  (number=2, total=2.75, calls=2)
  (plan:string,
  total:float)
  (plan="basic", total=4.4)
  (plan="business", total=2.75)
  (number:int,
  total:float)
  (number=1, total=4.4)
  (number=2, total=2.2)
  (number:int,
  total:float)
  (number=2, total=0.55)
  (number:int,
  minutes_7d:int)
  (number=1, minutes_7d=NULL)
  (number=2, minutes_7d=5)
  (number:int,
  total:float)
  (number=1, total=4.4)
  (number=2, total=2.75)
  tier: CA_join
  body Δ class: IM-log(R)
  view class: IM-log(R)
  u=0 j=1
  time: O(1^1 log|R|)
  space: O(1^1)

Event rules fire through the language:

  $ chronicle-cli run fraud.cdl
  created txns
  defined rule drain on txns
  appended 1 row(s) to txns at sn 1
  clock advanced to 2
  appended 1 row(s) to txns at sn 2
  clock advanced to 4
  appended 1 row(s) to txns at sn 3
  (rule:string,
  key:string,
  started:int,
  fired:int,
  sn:int)
  (rule="drain", key="(7)", started=0, fired=4, sn=3)

Definition errors are reported, not crashed on:

  $ chronicle-cli run bad.cdl
  created t
  semantic error: WHERE conjunct (NOT (a = 1)) is not a disjunction of comparisons; the chronicle algebra (Definition 4.1) admits only such selections
  [1]
