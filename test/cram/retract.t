RETRACT FROM removes stored rows as ℤ-weighted (weight −1) deltas:
each row's newest retained occurrence is claimed, and every persistent
view absorbs the change incrementally.  Retraction requires RETAIN
FULL — history must stay addressable.

  $ cat > setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT) RETAIN FULL;
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > APPEND INTO mileage VALUES (1, 100), (2, 40);
  > APPEND INTO mileage VALUES (1, 60);
  > CDL
  $ cat > retract.cdl <<CDL
  > SHOW VIEW balance;
  > RETRACT FROM mileage VALUES (1, 100);
  > SHOW VIEW balance;
  > CDL

The view before and after: acct 1 loses exactly the retracted posting,
acct 2 is untouched:

  $ cat setup.cdl retract.cdl > local.cdl
  $ chronicle-cli run local.cdl
  created mileage
  defined view balance: CA_1 (IM-Constant)
  appended 2 row(s) to mileage at sn 1
  appended 1 row(s) to mileage at sn 2
  (acct:int,
  total:int)
  (acct=1, total=160)
  (acct=2, total=40)
  retracted 1 row(s) from mileage
  (acct:int,
  total:int)
  (acct=1, total=60)
  (acct=2, total=40)

SHOW COUNTERS pins the differential property from the outside: a pure
append run never moves the retraction counters, a retracting run bumps
retract_apply:

  $ rcount () { sed -n 's/.*counter="\(retract_apply\|weight_cancel\|aggregate_reprobe\)", value=\([0-9]*\).*/\1 \2/p' \
  >   | awk '{ print $1, ($2 > 0) ? "nonzero" : "zero" }'; }
  $ cat setup.cdl > appendonly.cdl && echo 'SHOW COUNTERS;' >> appendonly.cdl
  $ chronicle-cli run appendonly.cdl | rcount
  retract_apply zero
  weight_cancel zero
  aggregate_reprobe zero
  $ cat local.cdl > counting.cdl && echo 'SHOW COUNTERS;' >> counting.cdl
  $ chronicle-cli run counting.cdl | rcount
  retract_apply nonzero
  weight_cancel zero
  aggregate_reprobe zero

Retraction outside RETAIN FULL is refused, and a row with no retained
occurrence aborts the whole statement:

  $ cat > bad.cdl <<CDL
  > CREATE CHRONICLE w (acct INT, miles INT) RETAIN WINDOW 4;
  > APPEND INTO w VALUES (1, 5);
  > RETRACT FROM w VALUES (1, 5);
  > CDL
  $ chronicle-cli run bad.cdl
  created w
  appended 1 row(s) to w at sn 1
  semantic error: Db.retract w: retraction requires Full retention (stored occurrences must be addressable)
  [1]
  $ cat > absent.cdl <<CDL
  > CREATE CHRONICLE f (acct INT, miles INT) RETAIN FULL;
  > APPEND INTO f VALUES (1, 5);
  > RETRACT FROM f VALUES (9, 9);
  > CDL
  $ chronicle-cli run absent.cdl
  created f
  appended 1 row(s) to f at sn 1
  semantic error: Db.retract f: tuple (9,
  9) has no retained occurrence left
  [1]

Durability: Ev_retract is written ahead of any mutation.  A crash at
post-retract-write dies after the journal record and before the store
or any view changes; recovery completes the retraction:

  $ chronicle-cli run --durable d setup.cdl > /dev/null
  $ cat > just-retract.cdl <<CDL
  > RETRACT FROM mileage VALUES (1, 100);
  > SHOW VIEW balance;
  > CDL
  $ chronicle-cli run --durable d --crash-after 0 --crash-point post-retract-write just-retract.cdl
  recovered d: checkpoint loaded; journal: 0 replayed, 0 skipped
  simulated crash at post-retract-write
  [2]
  $ chronicle-cli recover d
  recovered d: checkpoint loaded; journal: 1 replayed, 0 skipped
  view balance: 2 row(s)

Recovery is a fixpoint, and a follow-up run shows exactly the
post-retraction view — byte-identical to the non-durable run above:

  $ cat > show.cdl <<CDL
  > SHOW VIEW balance;
  > CDL
  $ chronicle-cli run --durable d show.cdl
  recovered d: checkpoint loaded; journal: 1 replayed, 0 skipped
  (acct:int,
  total:int)
  (acct=1, total=60)
  (acct=2, total=40)
  checkpointed d
  $ chronicle-cli recover d
  recovered d: checkpoint loaded; journal: 0 replayed, 0 skipped
  view balance: 2 row(s)

The wire protocol carries retraction too (opcode RETRACT routes
through the same statement machinery): a client run prints
byte-for-byte what a local run prints:

  $ chronicle-cli serve --socket s.sock > server.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ chronicle-cli client --socket s.sock local.cdl > client.out
  $ chronicle-cli run local.cdl > local.out
  $ diff client.out local.out
  $ chronicle-cli client --socket s.sock --shutdown
  server shutting down
  $ wait
