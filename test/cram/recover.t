Durable runs journal every append before executing it; `recover`
rebuilds a database from checkpoint + journal.

  $ cat > setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > APPEND INTO mileage VALUES (1, 100), (2, 40);
  > CDL
  $ cat > more.cdl <<CDL
  > APPEND INTO mileage VALUES (1, 60);
  > APPEND INTO mileage VALUES (3, 75);
  > SHOW VIEW balance;
  > CDL

A clean durable run ends with a checkpoint, so recovery has nothing to
replay:

  $ chronicle-cli run --durable clean setup.cdl
  created mileage
  defined view balance: CA_1 (IM-Constant)
  appended 2 row(s) to mileage at sn 1
  checkpointed clean
  $ chronicle-cli recover clean
  recovered clean: checkpoint loaded; journal: 0 replayed, 0 skipped
  view balance: 2 row(s)

A crashed run leaves its write-ahead records behind.  With
--crash-after 1 the first append commits and the second dies right
after its journal write — before any view was touched:

  $ chronicle-cli run --durable crash setup.cdl > /dev/null
  $ chronicle-cli run --durable crash --crash-after 1 more.cdl
  recovered crash: checkpoint loaded; journal: 0 replayed, 0 skipped
  appended 1 row(s) to mileage at sn 2
  simulated crash at post-journal-write
  [2]

Recovery replays both journaled batches through the normal delta path;
the batch the crash interrupted is completed, not lost:

  $ chronicle-cli recover crash
  recovered crash: checkpoint loaded; journal: 2 replayed, 0 skipped
  view balance: 3 row(s)

A torn tail (the process died mid-append) is expected: the incomplete
record is dropped and the journal is repaired on the way:

  $ chronicle-cli run --durable torn setup.cdl > /dev/null
  $ chronicle-cli run --durable torn --crash-after 1 more.cdl > /dev/null
  [2]
  $ head -c $(($(wc -c < torn/journal) - 3)) torn/journal > j && mv j torn/journal
  $ chronicle-cli recover torn
  recovered torn: checkpoint loaded; journal: 1 replayed, 0 skipped, torn tail dropped
  view balance: 2 row(s)
  $ chronicle-cli recover torn
  recovered torn: checkpoint loaded; journal: 1 replayed, 0 skipped
  view balance: 2 row(s)

Checksum corruption in the journal body is not a torn tail and is never
skipped silently (byte 18 is inside the first record's payload):

  $ printf 'Z' | dd of=torn/journal bs=1 seek=18 conv=notrunc status=none
  $ chronicle-cli recover torn
  journal corrupt at record 0: checksum mismatch
  [1]

  $ chronicle-cli recover nosuch
  no durable state in nosuch
  [1]

Relation-row inserts are journaled too (Ev_insert): rows inserted
after the last checkpoint survive a crash, and join views over the
relation replay correctly.  Here the insert is journaled, then the
very next append dies right after its own journal write — no
checkpoint anywhere between the insert and the crash:

  $ cat > rel-setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > CREATE RELATION customers (cust INT, state STRING) KEY (cust);
  > DEFINE VIEW by_state AS
  >   SELECT state, SUM(miles) AS total
  >   FROM CHRONICLE mileage JOIN customers ON acct = cust
  >   GROUP BY state;
  > CDL
  $ cat > rel-more.cdl <<CDL
  > INSERT INTO customers VALUES (1, 'NJ'), (2, 'NY');
  > APPEND INTO mileage VALUES (1, 100), (2, 40);
  > CDL
  $ chronicle-cli run --durable reldir rel-setup.cdl > /dev/null
  $ chronicle-cli run --durable reldir --crash-after 1 rel-more.cdl
  recovered reldir: checkpoint loaded; journal: 0 replayed, 0 skipped
  inserted 2 row(s) into customers
  simulated crash at post-journal-write
  [2]

Recovery replays the insert record and then the interrupted append;
the join view folds the appended rows against the recovered relation:

  $ chronicle-cli recover reldir
  recovered reldir: checkpoint loaded; journal: 2 replayed, 0 skipped
  view by_state: 2 row(s)

A follow-up durable run recovers the same state, serves the join view,
and its final checkpoint absorbs the insert (the journal record is
then skipped as already-covered on the next recovery):

  $ cat > rel-show.cdl <<CDL
  > SHOW VIEW by_state;
  > CDL
  $ chronicle-cli run --durable reldir rel-show.cdl
  recovered reldir: checkpoint loaded; journal: 2 replayed, 0 skipped
  (state:string,
  total:int)
  (state="NJ", total=100)
  (state="NY", total=40)
  checkpointed reldir
  $ chronicle-cli recover reldir
  recovered reldir: checkpoint loaded; journal: 0 replayed, 0 skipped
  view by_state: 2 row(s)
