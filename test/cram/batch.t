Group commit at the CLI: `run --batch N` stages appends and commits up
to N of them as one journal record (one sync).  Acks are deferred but
resolve in watermark order, so the output is byte-identical to
--batch 1 for every N.

  $ cat > script.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > APPEND INTO mileage VALUES (1, 100);
  > APPEND INTO mileage VALUES (2, 40);
  > APPEND INTO mileage VALUES (1, 60);
  > SHOW VIEW balance;
  > APPEND INTO mileage VALUES (3, 75);
  > APPEND INTO mileage VALUES (2, 5);
  > SET BATCH 2;
  > APPEND INTO mileage VALUES (1, 1);
  > APPEND INTO mileage VALUES (4, 9);
  > FLUSH;
  > SHOW VIEW balance;
  > CDL

  $ chronicle-cli run --durable b8 --batch 8 script.cdl
  created mileage
  defined view balance: CA_1 (IM-Constant)
  appended 1 row(s) to mileage at sn 1
  appended 1 row(s) to mileage at sn 2
  appended 1 row(s) to mileage at sn 3
  (acct:int,
  total:int)
  (acct=1, total=160)
  (acct=2, total=40)
  appended 1 row(s) to mileage at sn 4
  appended 1 row(s) to mileage at sn 5
  batch size set to 2
  appended 1 row(s) to mileage at sn 6
  appended 1 row(s) to mileage at sn 7
  flushed
  (acct:int,
  total:int)
  (acct=1, total=161)
  (acct=2, total=45)
  (acct=3, total=75)
  (acct=4, total=9)
  checkpointed b8

The per-append run prints exactly the same (only the state directory
name differs):

  $ chronicle-cli run --durable b1 --batch 1 script.cdl > out1
  $ chronicle-cli run --durable b8x --batch 8 script.cdl > out8
  $ sed 's/checkpointed .*/checkpointed DIR/' out1 > n1
  $ sed 's/checkpointed .*/checkpointed DIR/' out8 > n8
  $ cmp n1 n8

The journals differ in grouping, not content: the batched run framed
its appends as group records.

  $ cat > counters.cdl <<CDL
  > CREATE CHRONICLE t (a INT);
  > APPEND INTO t VALUES (1);
  > APPEND INTO t VALUES (2);
  > APPEND INTO t VALUES (3);
  > APPEND INTO t VALUES (4);
  > APPEND INTO t VALUES (5);
  > SHOW COUNTERS;
  > CDL
  $ chronicle-cli run --batch 4 counters.cdl | grep -E "staged_appends|group_commit|group_size_max"
  (counter="staged_appends", value=5)
  (counter="group_commit", value=1)
  (counter="group_size_max", value=4)

A crash inside the half-committed-group window: the group's journal
record is written, the process dies before any ack.  Recovery replays
the whole group atomically.

  $ cat > setup.cdl <<CDL
  > CREATE CHRONICLE mileage (acct INT, miles INT);
  > DEFINE VIEW balance AS SELECT acct, SUM(miles) AS total FROM CHRONICLE mileage GROUP BY acct;
  > CDL
  $ cat > grp.cdl <<CDL
  > APPEND INTO mileage VALUES (1, 100);
  > APPEND INTO mileage VALUES (2, 40);
  > APPEND INTO mileage VALUES (3, 75);
  > APPEND INTO mileage VALUES (4, 60);
  > CDL
  $ chronicle-cli run --durable gd setup.cdl > /dev/null
  $ chronicle-cli run --durable gd --batch 4 --crash-after 0 grp.cdl
  recovered gd: checkpoint loaded; journal: 0 replayed, 0 skipped
  simulated crash at post-journal-write
  [2]
  $ chronicle-cli recover gd
  recovered gd: checkpoint loaded; journal: 1 replayed, 0 skipped
  view balance: 4 row(s)

A torn group tail (the process died mid-write) drops the whole group:
recovery reaches the pre-group state, never a partial group.

  $ head -c $(($(wc -c < gd/journal) - 3)) gd/journal > j && mv j gd/journal
  $ chronicle-cli recover gd
  recovered gd: checkpoint loaded; journal: 0 replayed, 0 skipped, torn tail dropped
  view balance: 0 row(s)
