open Relational
open Chronicle_core
open Util

let build_db () =
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 3) ~name:"mileage"
       Fixtures.mileage_schema);
  let cust =
    Db.add_relation db ~name:"customers" ~schema:Fixtures.customer_schema
      ~key:[ "cust" ] ()
  in
  Versioned.insert cust (tup [ vi 1; vs "NJ" ]);
  Versioned.insert cust (tup [ vi 2; vs "NY" ]);
  let chron = Ca.Chronicle (Db.chronicle db "mileage") in
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance" ~body:chron
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "m"; Aggregate.avg "fare" "f";
                 Aggregate.min_ "miles" "lo" ] ))));
  ignore
    (Db.define_view db ~index:Index.Ordered
       (Sca.define ~name:"by_state"
          ~body:(Ca.KeyJoinRel (chron, Versioned.relation cust, [ ("acct", "cust") ]))
          (Sca.Group_agg ([ "state" ], [ Aggregate.count_star "n" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"accts" ~body:chron (Sca.Project_out [ "acct" ])));
  Db.advance_clock db 17;
  for i = 1 to 10 do
    ignore (Db.append db "mileage" [ Fixtures.mile (i mod 3 + 1) (i * 10) 1.5 ])
  done;
  db

let test_roundtrip_state () =
  let db = build_db () in
  let text = Snapshot.save db in
  let db' = Snapshot.load text in
  (* catalog *)
  Alcotest.check (Alcotest.list Alcotest.string) "chronicles"
    (Db.chronicle_names db) (Db.chronicle_names db');
  Alcotest.check (Alcotest.list Alcotest.string) "relations"
    (Db.relation_names db) (Db.relation_names db');
  (* group state *)
  check_int "watermark" (Group.watermark (Db.default_group db))
    (Group.watermark (Db.default_group db'));
  check_int "clock" (Group.now (Db.default_group db)) (Group.now (Db.default_group db'));
  (* chronicle counters and retained window *)
  let c = Db.chronicle db "mileage" and c' = Db.chronicle db' "mileage" in
  check_int "total" (Chron.total_appended c) (Chron.total_appended c');
  check_bool "last_sn" true (Chron.last_sn c = Chron.last_sn c');
  check_tuples "retained window" (Chron.stored c) (Chron.stored c');
  (* relation contents *)
  check_tuples "relation rows"
    (Relation.to_list (Versioned.relation (Db.relation db "customers")))
    (Relation.to_list (Versioned.relation (Db.relation db' "customers")));
  (* view contents, including aggregate internals via continued use *)
  List.iter
    (fun name ->
      check_tuples
        (Printf.sprintf "view %s" name)
        (View.to_list (Db.view db name))
        (View.to_list (Db.view db' name)))
    [ "balance"; "by_state"; "accts" ];
  check_bool "index kind preserved" true
    (View.index_kind (Db.view db' "by_state") = Index.Ordered)

let test_maintenance_continues_after_load () =
  let db = build_db () in
  let db' = Snapshot.load (Snapshot.save db) in
  (* the same append on both sides must keep them identical: proves the
     restored aggregate states (incl. AVG's decomposition) are exact *)
  ignore (Db.append db "mileage" [ Fixtures.mile 2 5 9.5 ]);
  ignore (Db.append db' "mileage" [ Fixtures.mile 2 5 9.5 ]);
  check_tuples "balance after resumed maintenance"
    (View.to_list (Db.view db "balance"))
    (View.to_list (Db.view db' "balance"));
  check_tuples "join view after resumed maintenance"
    (View.to_list (Db.view db "by_state"))
    (View.to_list (Db.view db' "by_state"));
  (* sequence numbers continue from the restored watermark *)
  check_int "watermarks equal" (Group.watermark (Db.default_group db))
    (Group.watermark (Db.default_group db'))

let test_pending_updates_refused () =
  let db = build_db () in
  let cust = Db.relation db "customers" in
  Versioned.update_where cust ~effective:1000
    Predicate.("cust" =% vi 1)
    (fun t -> t);
  check_raises_any "pending updates block snapshot" (fun () ->
      ignore (Snapshot.save db))

let test_file_roundtrip () =
  let db = build_db () in
  let path = Filename.temp_file "chronicle_snap" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save_file db path;
      let db' = Snapshot.load_file path in
      check_tuples "via file"
        (View.to_list (Db.view db "balance"))
        (View.to_list (Db.view db' "balance")))

let test_malformed_rejected () =
  check_raises_any "not a snapshot" (fun () -> ignore (Snapshot.load "(foo 1)"));
  check_raises_any "bad version" (fun () ->
      ignore (Snapshot.load "((chronicle-snapshot 99))"));
  check_raises_any "garbage" (fun () -> ignore (Snapshot.load "((("))

let test_ca_serialization_roundtrip () =
  let fx = Fixtures.make () in
  let exprs =
    [
      Fixtures.select_body fx;
      Fixtures.keyjoin_body fx;
      Fixtures.product_body fx;
      Ca.Project
        ( [ Seqnum.attr; "acct" ],
          Ca.Union (Ca.Chronicle fx.Fixtures.mileage, Ca.Chronicle fx.Fixtures.bonus) );
      Ca.GroupBySeq
        ( [ Seqnum.attr; "acct" ],
          [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ],
          Ca.Diff (Ca.Chronicle fx.Fixtures.mileage, Ca.Chronicle fx.Fixtures.bonus) );
    ]
  in
  let resolve_c name =
    if name = "mileage" then fx.Fixtures.mileage else fx.Fixtures.bonus
  in
  let resolve_r _ = fx.Fixtures.customers in
  List.iter
    (fun e ->
      let e' =
        Snapshot.ca_of_sexp ~chronicle:resolve_c ~relation:resolve_r
          (Sexp.of_string (Sexp.to_string (Snapshot.sexp_of_ca e)))
      in
      check_bool "same schema" true (Schema.equal (Ca.schema_of e) (Ca.schema_of e'));
      check_string "same rendering"
        (Format.asprintf "%a" Ca.pp e)
        (Format.asprintf "%a" Ca.pp e'))
    exprs

let test_predicate_roundtrip () =
  let preds =
    Predicate.
      [
        True; False;
        "a" =% vi 1;
        Or (And ("a" >% vi 0, Not ("b" =% vs "x y")), Cmp (Attr "a", Le, Attr "b"));
      ]
  in
  List.iter
    (fun p ->
      let p' =
        Snapshot.predicate_of_sexp
          (Sexp.of_string (Sexp.to_string (Snapshot.sexp_of_predicate p)))
      in
      check_string "predicate roundtrip"
        (Format.asprintf "%a" Predicate.pp p)
        (Format.asprintf "%a" Predicate.pp p'))
    preds

let qcheck_random_roundtrip =
  let gen =
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30)
           (triple (int_range 1 6) (int_bound 200) (int_bound 3)))
        (* appends: (acct, miles, clock advance) *)
        bool (* ordered index? *))
  in
  qtest ~count:100 "random databases roundtrip through snapshots" gen
    (fun (stream, ordered) ->
      let db = Db.create () in
      ignore
        (Db.add_chronicle db ~retention:(Chron.Window 5) ~name:"mileage"
           Fixtures.mileage_schema);
      let index = if ordered then Index.Ordered else Index.Hash in
      ignore
        (Db.define_view db ~index
           (Sca.define ~name:"v"
              ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
              (Sca.Group_agg
                 ( [ "acct" ],
                   [ Aggregate.sum "miles" "m"; Aggregate.avg "miles" "a";
                     Aggregate.stddev "miles" "sd"; Aggregate.max_ "miles" "hi" ] ))));
      let clock = ref 0 in
      List.iter
        (fun (acct, miles, advance) ->
          clock := !clock + advance;
          Db.advance_clock db !clock;
          ignore (Db.append db "mileage" [ Fixtures.mile acct miles 1. ]))
        stream;
      let db' = Snapshot.load (Snapshot.save db) in
      (* identical contents now, and after one more identical append *)
      let agree () =
        List.equal Tuple.equal
          (sorted_tuples (View.to_list (Db.view db "v")))
          (sorted_tuples (View.to_list (Db.view db' "v")))
      in
      let ok_now = agree () in
      ignore (Db.append db "mileage" [ Fixtures.mile 1 42 1. ]);
      ignore (Db.append db' "mileage" [ Fixtures.mile 1 42 1. ]);
      ok_now && agree ()
      (* canonical form: maintenance after load keeps both databases
         byte-identical under [save] (save ∘ load is the identity on
         saved documents, even under further maintenance) *)
      && Snapshot.save db = Snapshot.save db'
      && Group.watermark (Db.default_group db)
         = Group.watermark (Db.default_group db')
      && Chron.stored (Db.chronicle db "mileage")
         = Chron.stored (Db.chronicle db' "mileage"))

let suite =
  [
    test "full database roundtrip" test_roundtrip_state;
    qcheck_random_roundtrip;
    test "maintenance continues after load" test_maintenance_continues_after_load;
    test "pending updates refuse to snapshot" test_pending_updates_refused;
    test "file save/load" test_file_roundtrip;
    test "malformed snapshots rejected" test_malformed_rejected;
    test "chronicle algebra serialization" test_ca_serialization_roundtrip;
    test "predicate serialization" test_predicate_roundtrip;
  ]
