(* Heavy-light partitioned key-join maintenance (Skew + Delta.compile
   ~heavy_threshold): directed counter semantics, promote/demote churn,
   and the differential property — partitioned maintenance is
   byte-identical (contents, order, watermarks) to the sequential lazy
   fold at every parallelism degree, under uniform and Zipf(1.1) key
   streams. *)

open Relational
open Chronicle_core
open Chronicle_workload
open Util

(* ---- Skew module, directly ---- *)

let mk_customers () =
  let rel =
    Relation.create ~name:"customers" ~schema:Fixtures.customer_schema
      ~key:[ "cust" ] ()
  in
  Relation.insert_all rel
    [
      tup [ vi 1; vs "NJ" ];
      tup [ vi 2; vs "NY" ];
      tup [ vi 3; vs "NJ" ];
    ];
  rel

let lazy_matches rel key = Relation.lookup rel ~attrs:[ "cust" ] key

let test_promote_then_probe () =
  let rel = mk_customers () in
  let part = Skew.create ~threshold:3 () in
  let probe key =
    Skew.matches part rel ~attrs:[ "cust" ] ~project:Fun.id key
  in
  let check_same msg key =
    check_bool msg true
      (List.equal Tuple.equal (probe key) (lazy_matches rel key))
  in
  let before = Stats.snapshot () in
  check_same "touch 1 (light)" [ vi 1 ];
  check_same "touch 2 (light)" [ vi 1 ];
  check_bool "not yet heavy" false (Skew.is_heavy part [ vi 1 ]);
  check_same "touch 3 (promotes)" [ vi 1 ];
  check_bool "now heavy" true (Skew.is_heavy part [ vi 1 ]);
  check_int "one heavy key" 1 (Skew.heavy_count part);
  check_same "touch 4 (served from cache)" [ vi 1 ];
  check_same "touch 5 (served from cache)" [ vi 1 ];
  let after = Stats.snapshot () in
  check_int "light folds" 2 (Stats.diff_get before after Stats.Light_fold);
  check_int "one promotion" 1 (Stats.diff_get before after Stats.Heavy_promote);
  check_int "heavy probes" 2 (Stats.diff_get before after Stats.Heavy_probe);
  check_int "no demotion" 0 (Stats.diff_get before after Stats.Heavy_demote)

let test_demote_on_relation_change () =
  let rel = mk_customers () in
  let part = Skew.create ~threshold:2 () in
  let probe key =
    Skew.matches part rel ~attrs:[ "cust" ] ~project:Fun.id key
  in
  ignore (probe [ vi 1 ]);
  ignore (probe [ vi 1 ]);
  check_bool "heavy after threshold" true (Skew.is_heavy part [ vi 1 ]);
  (* mutate the opposite side: the cached run is now stale *)
  ignore (Relation.insert rel (tup [ vi 9; vs "CA" ]));
  let before = Stats.snapshot () in
  let got = probe [ vi 1 ] in
  let after = Stats.snapshot () in
  check_bool "serves the fresh relation" true
    (List.equal Tuple.equal got (lazy_matches rel [ vi 1 ]));
  check_int "demoted on version change" 1
    (Stats.diff_get before after Stats.Heavy_demote);
  (* its count is still over the bar, so the same probe re-promoted it *)
  check_int "re-promoted" 1 (Stats.diff_get before after Stats.Heavy_promote);
  check_bool "heavy again" true (Skew.is_heavy part [ vi 1 ])

let test_below_threshold_stays_light () =
  let rel = mk_customers () in
  let part = Skew.create ~threshold:1_000_000 () in
  let before = Stats.snapshot () in
  for _ = 1 to 20 do
    ignore (Skew.matches part rel ~attrs:[ "cust" ] ~project:Fun.id [ vi 2 ])
  done;
  let after = Stats.snapshot () in
  check_int "never promotes" 0 (Stats.diff_get before after Stats.Heavy_promote);
  check_int "all light" 20 (Stats.diff_get before after Stats.Light_fold);
  check_int "no heavy keys" 0 (Skew.heavy_count part)

let test_adaptive_rebalance () =
  (* adaptive policy: drive more keys over the base bar than the heavy
     budget admits; the threshold must rise and the heavy set shrink
     back under the budget *)
  let schema = Schema.make [ ("k", Value.TInt); ("v", Value.TInt) ] in
  let rel = Relation.create ~name:"wide" ~schema ~key:[ "k" ] () in
  for k = 1 to 80 do
    ignore (Relation.insert rel (tup [ vi k; vi (k * 10) ]))
  done;
  let part = Skew.create () in
  let base = Skew.threshold part in
  (* round-robin so all 80 counts rise together: once they cross the
     bar, promotions outnumber the heavy budget and the threshold must
     double (the count decay sweep only delays the crossing) *)
  let rounds = ref 0 in
  while Skew.threshold part = base && !rounds < 60 do
    incr rounds;
    for k = 1 to 80 do
      ignore (Skew.matches part rel ~attrs:[ "k" ] ~project:Fun.id [ vi k ])
    done
  done;
  check_bool "threshold rose" true (Skew.threshold part > base);
  check_bool "heavy set within budget" true (Skew.heavy_count part <= 64)

(* ---- database-level fixtures: a banking key-join view ---- *)

let mk_bank_db ?(jobs = 1) ?heavy_threshold ~accounts () =
  let db = Db.create ~jobs ?heavy_threshold () in
  let _c = Db.add_chronicle db ~name:"txn" Banking.txn_schema in
  let acc =
    Db.add_relation db ~name:"accounts" ~schema:Banking.account_schema
      ~key:[ "acct" ] ()
  in
  let rng = Rng.create 7 in
  List.iter (Versioned.insert acc) (Banking.accounts rng ~n:accounts);
  let body =
    Ca.KeyJoinRel
      (Ca.Chronicle (Db.chronicle db "txn"), Versioned.relation acc,
       [ ("acct", "acct") ])
  in
  let by_branch =
    Sca.define ~name:"by_branch" ~body
      (Sca.Group_agg ([ "branch" ], [ Aggregate.sum "amount" "total" ]))
  in
  let detail =
    Sca.define ~name:"detail" ~body
      (Sca.Project_out [ "acct"; "kind"; "amount"; "branch" ])
  in
  ignore (Db.define_view db by_branch);
  ignore (Db.define_view db detail);
  db

let feed db stream ~churn_every =
  List.iteri
    (fun i tu ->
      ignore (Db.append db "txn" [ tu ]);
      (* deterministic churn: grow the opposite side mid-stream, which
         invalidates (demotes) every materialized run *)
      if churn_every > 0 && (i + 1) mod churn_every = 0 then
        Versioned.insert
          (Db.relation db "accounts")
          (tup
             [
               vi (100_000 + i);
               vs (Printf.sprintf "late-%d" i);
               vs "annex";
             ]))
    stream

let check_equivalent msg a b =
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "%s: view %s byte-identical" msg v)
        true
        (List.equal Tuple.equal (Db.view_contents a v) (Db.view_contents b v)))
    [ "by_branch"; "detail" ];
  check_bool
    (Printf.sprintf "%s: watermarks equal" msg)
    true
    (Group.watermark (Db.default_group a)
    = Group.watermark (Db.default_group b))

let test_db_counters_fire_under_skew () =
  let db = mk_bank_db ~heavy_threshold:2 ~accounts:8 () in
  let hot = tup [ vi 1; vs "deposit"; vf 10. ] in
  let before = Stats.snapshot () in
  for _ = 1 to 6 do
    ignore (Db.append db "txn" [ hot ])
  done;
  let after = Stats.snapshot () in
  check_bool "promoted" true (Stats.diff_get before after Stats.Heavy_promote >= 1);
  check_bool "cache-served probes" true
    (Stats.diff_get before after Stats.Heavy_probe >= 3);
  (* partitioning off: same stream, huge bar, heavy counters stay 0 *)
  let off = mk_bank_db ~heavy_threshold:max_int ~accounts:8 () in
  let before = Stats.snapshot () in
  for _ = 1 to 6 do
    ignore (Db.append off "txn" [ hot ])
  done;
  let after = Stats.snapshot () in
  check_int "no promotes when off" 0
    (Stats.diff_get before after Stats.Heavy_promote);
  check_int "no heavy probes when off" 0
    (Stats.diff_get before after Stats.Heavy_probe);
  check_bool "light folds when off" true
    (Stats.diff_get before after Stats.Light_fold >= 6);
  check_equivalent "on vs off" db off

let test_churn_promote_demote_promote () =
  let db = mk_bank_db ~heavy_threshold:2 ~accounts:8 () in
  let oracle = mk_bank_db ~heavy_threshold:max_int ~accounts:8 () in
  let hot = tup [ vi 3; vs "deposit"; vf 5. ] in
  let stream = List.init 24 (fun _ -> hot) in
  let before = Stats.snapshot () in
  feed db stream ~churn_every:8;
  let after = Stats.snapshot () in
  feed oracle stream ~churn_every:8;
  check_bool "multiple promotions across churn" true
    (Stats.diff_get before after Stats.Heavy_promote >= 2);
  check_bool "demotions across churn" true
    (Stats.diff_get before after Stats.Heavy_demote >= 1);
  check_equivalent "churned" db oracle

let test_identity_at_jobs_8 () =
  let rng = Rng.create 11 in
  let zipf = Zipf.create ~n:64 ~s:1.1 in
  let stream = Banking.txn_stream rng zipf ~n:200 in
  let par = mk_bank_db ~jobs:8 ~heavy_threshold:2 ~accounts:64 () in
  let seq = mk_bank_db ~jobs:1 ~heavy_threshold:max_int ~accounts:64 () in
  feed par stream ~churn_every:50;
  feed seq stream ~churn_every:50;
  check_equivalent "jobs=8 partitioned vs sequential oracle" par seq

(* ---- the differential property ---- *)

let qcheck_partitioned_equals_oracle =
  let gen =
    QCheck.make
      ~print:(fun (seed, zipfy, jobs, threshold, churn) ->
        Printf.sprintf "seed=%d %s jobs=%d threshold=%d churn=%d" seed
          (if zipfy then "zipf(1.1)" else "uniform")
          jobs threshold churn)
      QCheck.Gen.(
        tup5 (int_bound 1_000_000) bool (oneofl [ 1; 2; 4 ])
          (oneofl [ 1; 2; 3; 16 ])
          (oneofl [ 0; 7; 13 ]))
  in
  qtest ~count:40
    "partitioned key-join maintenance = sequential fold oracle \
     (uniform + Zipf(1.1), jobs in {1,2,4}, churn)"
    gen
    (fun (seed, zipfy, jobs, threshold, churn) ->
      let mk () = Rng.create seed in
      let zipf = Zipf.create ~n:16 ~s:(if zipfy then 1.1 else 0.) in
      let stream = Banking.txn_stream (mk ()) zipf ~n:80 in
      let part = mk_bank_db ~jobs ~heavy_threshold:threshold ~accounts:16 () in
      let oracle = mk_bank_db ~jobs:1 ~heavy_threshold:max_int ~accounts:16 () in
      feed part stream ~churn_every:churn;
      feed oracle stream ~churn_every:churn;
      List.for_all
        (fun v ->
          List.equal Tuple.equal (Db.view_contents part v)
            (Db.view_contents oracle v))
        [ "by_branch"; "detail" ]
      && Group.watermark (Db.default_group part)
         = Group.watermark (Db.default_group oracle))

let suite =
  [
    test "light until threshold, then cached probes" test_promote_then_probe;
    test "relation change demotes and re-promotes" test_demote_on_relation_change;
    test "below-threshold stream never promotes" test_below_threshold_stays_light;
    test "adaptive threshold rebalances the heavy set" test_adaptive_rebalance;
    test "db counters fire under skew, stay zero when off"
      test_db_counters_fire_under_skew;
    test "promote -> demote -> promote churn stays identical"
      test_churn_promote_demote_promote;
    test "jobs=8 partitioned = sequential oracle" test_identity_at_jobs_8;
    qcheck_partitioned_equals_oracle;
  ]
