open Relational
open Util

let exercise kind =
  let ix = Index.create kind ~attrs:[ "k" ] in
  Index.add ix [ vi 1 ] 10;
  Index.add ix [ vi 1 ] 11;
  Index.add ix [ vi 2 ] 20;
  Alcotest.check
    Alcotest.(list int)
    "multi-map find" [ 10; 11 ]
    (List.sort Int.compare (Index.find ix [ vi 1 ]));
  Alcotest.check Alcotest.(list int) "other key" [ 20 ] (Index.find ix [ vi 2 ]);
  Alcotest.check Alcotest.(list int) "absent" [] (Index.find ix [ vi 9 ]);
  check_int "cardinality" 2 (Index.cardinality ix);
  Index.remove ix [ vi 1 ] 10;
  Alcotest.check Alcotest.(list int) "after remove" [ 11 ] (Index.find ix [ vi 1 ]);
  Index.remove ix [ vi 1 ] 11;
  Alcotest.check Alcotest.(list int) "key drained" [] (Index.find ix [ vi 1 ]);
  check_int "cardinality after drain" 1 (Index.cardinality ix);
  Index.remove ix [ vi 9 ] 0 (* no-op *)

let test_hash () = exercise Index.Hash
let test_ordered () = exercise Index.Ordered

let test_range_ordered () =
  let ix = Index.create Index.Ordered ~attrs:[ "k" ] in
  for i = 0 to 9 do
    Index.add ix [ vi i ] i
  done;
  Alcotest.check
    Alcotest.(list int)
    "range" [ 3; 4; 5 ]
    (List.sort Int.compare
       (Index.find_range ix ~lo:(Some [ vi 3 ]) ~hi:(Some [ vi 5 ])));
  check_int "unbounded range" 10 (List.length (Index.find_range ix ~lo:None ~hi:None))

let test_range_hash_rejected () =
  let ix = Index.create Index.Hash ~attrs:[ "k" ] in
  check_raises_any "hash has no order" (fun () ->
      Index.find_range ix ~lo:None ~hi:None)

let test_composite_keys () =
  let ix = Index.create Index.Hash ~attrs:[ "a"; "b" ] in
  Index.add ix [ vi 1; vs "x" ] 1;
  Index.add ix [ vi 1; vs "y" ] 2;
  Alcotest.check Alcotest.(list int) "composite" [ 1 ] (Index.find ix [ vi 1; vs "x" ]);
  check_int "two distinct keys" 2 (Index.cardinality ix)

(* ---- bounded probes (the primitive behind ranged select-pushdown) ---- *)

(* One key bound to a run of row ids; bounded probes must slice exactly
   the sub-run inside [lo, hi), ascending, for both index kinds. *)
let exercise_bounded kind =
  let ix = Index.create kind ~attrs:[ "k" ] in
  (* duplicate key with a spread-out run, interleaved with other keys *)
  List.iter (fun r -> Index.add ix [ vi 1 ] r) [ 2; 5; 9; 14; 20 ];
  List.iter (fun r -> Index.add ix [ vi 7 ] r) [ 0; 10; 30 ];
  let probe ~lo ~hi = Index.find_bounded ix [ vi 1 ] ~lo ~hi in
  Alcotest.check Alcotest.(list int) "full range = find" [ 2; 5; 9; 14; 20 ]
    (probe ~lo:0 ~hi:100);
  Alcotest.check Alcotest.(list int) "empty range" [] (probe ~lo:5 ~hi:5);
  Alcotest.check Alcotest.(list int) "inverted range" [] (probe ~lo:9 ~hi:5);
  Alcotest.check Alcotest.(list int) "range before run" [] (probe ~lo:0 ~hi:2);
  Alcotest.check Alcotest.(list int) "range after run" [] (probe ~lo:21 ~hi:99);
  Alcotest.check Alcotest.(list int) "interior slice" [ 5; 9 ] (probe ~lo:5 ~hi:10);
  Alcotest.check Alcotest.(list int) "hi exclusive" [ 5 ] (probe ~lo:5 ~hi:9);
  Alcotest.check Alcotest.(list int) "absent key" []
    (Index.find_bounded ix [ vi 42 ] ~lo:0 ~hi:100)

let test_bounded_hash () = exercise_bounded Index.Hash
let test_bounded_ordered () = exercise_bounded Index.Ordered

(* For ANY contiguous partition of the row-id space, the per-range
   bounded probes concatenate (in range order) to exactly [find]'s
   answer — the property the parallel plans' correctness rests on. *)
let bounded_partition_qcheck kind =
  let gen = QCheck.(pair (list (int_bound 60)) (list (int_bound 20))) in
  qtest ~count:300
    (Printf.sprintf "bounded probes stitch to find (%s)"
       (match kind with Index.Hash -> "hash" | Index.Ordered -> "ordered"))
    gen
    (fun (rows, widths) ->
      let ix = Index.create kind ~attrs:[ "k" ] in
      (* duplicates in [rows] make duplicate bindings of the same
         (key, row) pair; dedup first so the run is a set like a real
         relation's *)
      let rows = List.sort_uniq Int.compare rows in
      List.iter (fun r -> Index.add ix [ vi 1 ] (r * 2)) rows;
      (* decoy key sharing the space *)
      List.iter (fun r -> Index.add ix [ vi 2 ] ((r * 2) + 1)) rows;
      let bound = 130 in
      (* cut points from the random widths: a contiguous partition of
         [0, bound) with possibly-empty cells *)
      let cuts =
        List.fold_left
          (fun (acc, at) w ->
            let at = min bound (at + w) in
            (at :: acc, at))
          ([ 0 ], 0) widths
        |> fst |> List.rev
      in
      let cuts = cuts @ [ bound ] in
      let rec stitched = function
        | lo :: (hi :: _ as rest) ->
            Index.find_bounded ix [ vi 1 ] ~lo ~hi @ stitched rest
        | _ -> []
      in
      stitched cuts = Index.find ix [ vi 1 ])

let qcheck_bounded_hash = bounded_partition_qcheck Index.Hash
let qcheck_bounded_ordered = bounded_partition_qcheck Index.Ordered

let test_bounded_probe_cost () =
  (* a bounded probe costs one Index_probe regardless of the bounds *)
  let check kind =
    let ix = Index.create kind ~attrs:[ "k" ] in
    List.iter (fun r -> Index.add ix [ vi 1 ] r) [ 1; 2; 3; 4; 5 ];
    let before = Stats.snapshot () in
    ignore (Index.find_bounded ix [ vi 1 ] ~lo:2 ~hi:4);
    ignore (Index.find_bounded ix [ vi 1 ] ~lo:0 ~hi:100);
    let after = Stats.snapshot () in
    check_int "one probe per bounded probe" 2
      (Stats.diff_get before after Stats.Index_probe);
    (* degenerate range answers without probing at all *)
    let before = Stats.snapshot () in
    ignore (Index.find_bounded ix [ vi 1 ] ~lo:4 ~hi:4);
    let after = Stats.snapshot () in
    check_int "empty range is free" 0
      (Stats.diff_get before after Stats.Index_probe)
  in
  check Index.Hash;
  check Index.Ordered

let test_find_order_is_scan_order () =
  (* per-key runs are ascending even when rows arrive out of order
     (deletion + re-probe path of the relation layer) *)
  List.iter
    (fun kind ->
      let ix = Index.create kind ~attrs:[ "k" ] in
      List.iter (fun r -> Index.add ix [ vi 1 ] r) [ 9; 3; 7; 1; 5 ];
      Alcotest.check Alcotest.(list int) "ascending" [ 1; 3; 5; 7; 9 ]
        (Index.find ix [ vi 1 ]))
    [ Index.Hash; Index.Ordered ]

let test_probe_counting () =
  let ix = Index.create Index.Hash ~attrs:[ "k" ] in
  Index.add ix [ vi 1 ] 1;
  let before = Stats.snapshot () in
  ignore (Index.find ix [ vi 1 ]);
  ignore (Index.find ix [ vi 2 ]);
  let after = Stats.snapshot () in
  check_int "two probes counted" 2 (Stats.diff_get before after Stats.Index_probe)

let suite =
  [
    test "hash index" test_hash;
    test "ordered index" test_ordered;
    test "ordered range scan" test_range_ordered;
    test "hash range rejected" test_range_hash_rejected;
    test "composite keys" test_composite_keys;
    test "probe counting" test_probe_counting;
    test "bounded probe (hash)" test_bounded_hash;
    test "bounded probe (ordered)" test_bounded_ordered;
    test "bounded probe cost" test_bounded_probe_cost;
    test "find answers in scan order" test_find_order_is_scan_order;
    qcheck_bounded_hash;
    qcheck_bounded_ordered;
  ]
