(* Group commit: the staging queue (Chronicle_durability.Group), its
   watermark-ordered acks, its transparency guarantees, and the
   directed counter story — one journal record per flushed group.

   The central property is differential: any interleaving of staged
   appends, explicit flushes and threshold changes is equivalent to
   applying the same appends sequentially — same final state (canonical
   snapshot document), same sequence numbers, acks resolving in staging
   order. *)

open Relational
open Chronicle_core
open Chronicle_durability
open Util

(* durability's [Group] is the commit-group stager; the chronicle
   group (watermark scope) of Chronicle_core keeps the short name *)
module Staging = Chronicle_durability.Group
module Group = Chronicle_core.Group

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]
let row (acct, miles) = tup [ vi acct; vi miles ]

let mk_db ?jobs () =
  let db = Db.create ?jobs () in
  ignore (Db.add_chronicle db ~name:"m" schema);
  ignore (Db.add_chronicle db ~name:"b" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:
            (Ca.Union
               ( Ca.Chronicle (Db.chronicle db "m"),
                 Ca.Chronicle (Db.chronicle db "b") ))
          (Sca.Group_agg
             ([ "acct" ], [ Aggregate.sum "miles" "total"; Aggregate.count_star "n" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"big"
          ~body:
            (Ca.Select
               (Predicate.("miles" >% vi 50), Ca.Chronicle (Db.chronicle db "m")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))));
  db

let sn_of = function
  | Ok sn -> sn
  | Error e -> Alcotest.failf "ticket rejected: %s" (Printexc.to_string e)

(* ---- directed behaviour ---- *)

let test_threshold_flush () =
  let db = mk_db () in
  let st = Staging.create ~batch:3 db in
  check_int "threshold" 3 (Staging.batch st);
  let t1 = Staging.stage st [ ("m", [ row (1, 10) ]) ] in
  let t2 = Staging.stage st [ ("b", [ row (2, 20) ]) ] in
  check_int "two staged" 2 (Staging.pending st);
  check_int "nothing committed yet" 0
    (Group.watermark (Db.default_group db));
  let t3 = Staging.stage st [ ("m", [ row (1, 5); row (3, 60) ]) ] in
  (* the third stage reached the threshold: the whole queue committed *)
  check_int "queue drained" 0 (Staging.pending st);
  check_int "sn 1 in staging order" 1 (sn_of (Staging.await st t1));
  check_int "sn 2 in staging order" 2 (sn_of (Staging.await st t2));
  check_int "sn 3 in staging order" 3 (sn_of (Staging.await st t3));
  check_tuples "views folded the combined delta"
    [ tup [ vi 1; vi 15; vi 2 ]; tup [ vi 2; vi 20; vi 1 ]; tup [ vi 3; vi 60; vi 1 ] ]
    (Db.view_contents db "balance");
  check_tuples "guarded view too"
    [ tup [ vi 3; vi 60 ] ]
    (Db.view_contents db "big")

let test_await_flushes () =
  let db = mk_db () in
  let st = Staging.create ~batch:100 db in
  let t1 = Staging.stage st [ ("m", [ row (1, 1) ]) ] in
  let t2 = Staging.stage st [ ("m", [ row (2, 2) ]) ] in
  (* awaiting the *first* ticket flushes the idle queue: both resolve *)
  check_int "await triggers the flush" 1 (sn_of (Staging.await st t1));
  check_int "queue empty" 0 (Staging.pending st);
  check_int "later ticket resolved too" 2 (sn_of (Staging.await st t2))

let test_set_batch_flushes_at_threshold () =
  let db = mk_db () in
  let st = Staging.create ~batch:10 db in
  ignore (Staging.stage st [ ("m", [ row (1, 1) ]) ]);
  ignore (Staging.stage st [ ("m", [ row (2, 2) ]) ]);
  Staging.set_batch st 2;
  (* lowering the threshold to the queue depth flushes immediately *)
  check_int "flushed by set_batch" 0 (Staging.pending st);
  check_int "both committed" 2
    (Group.watermark (Db.default_group db));
  check_raises_any "threshold must be positive" (fun () -> Staging.set_batch st 0)

let test_eager_validation () =
  let db = mk_db () in
  let st = Staging.create ~batch:4 db in
  ignore (Staging.stage st [ ("m", [ row (1, 1) ]) ]);
  (* a stage that could never commit fails synchronously and is never
     enqueued: the queue is exactly as before *)
  check_raises_any "unknown chronicle" (fun () ->
      Staging.stage st [ ("nope", [ row (1, 1) ]) ]);
  check_raises_any "schema mismatch" (fun () ->
      Staging.stage st [ ("m", [ tup [ vi 1 ] ]) ]);
  check_raises_any "empty batch" (fun () -> Staging.stage st []);
  check_int "queue unchanged" 1 (Staging.pending st);
  Staging.flush st;
  check_int "the good append committed" 1
    (Group.watermark (Db.default_group db))

let test_group_abort_all_or_nothing () =
  let db = mk_db () in
  let st = Staging.create ~batch:3 db in
  let t1 = Staging.stage st [ ("m", [ row (1, 10) ]) ] in
  let t2 = Staging.stage st [ ("m", [ row (2, 20) ]) ] in
  (* poison the fold of the group's combined delta: the group aborts as
     a whole, every ticket rejects, and the database rolls back *)
  let boom = Failure "fold poisoned" in
  Db.set_fold_probe db (Some (fun ~view:_ ~sn:_ -> raise boom));
  (match Staging.stage st [ ("m", [ row (3, 30) ]) ] with
  | _ -> Alcotest.fail "flush must re-raise the group's failure"
  | exception Failure _ -> ());
  Db.set_fold_probe db None;
  check_int "rolled back" 0 (Group.watermark (Db.default_group db));
  check_tuples "views untouched" [] (Db.view_contents db "balance");
  check_int "queue drained (all tickets resolved)" 0 (Staging.pending st);
  let rejected t =
    match Staging.await st t with Error _ -> true | Ok _ -> false
  in
  check_bool "first ticket rejected" true (rejected t1);
  check_bool "second ticket rejected" true (rejected t2);
  (* the stager keeps working after an abort *)
  let t4 = Staging.stage st [ ("m", [ row (4, 40) ]) ] in
  Staging.flush st;
  check_int "fresh append commits at sn 1" 1 (sn_of (Staging.await st t4))

let test_batch_hooks_fall_back_to_per_append () =
  let db = mk_db () in
  let batches = ref 0 in
  Db.on_batch db (fun ~sn:_ ~batch:_ -> incr batches);
  check_bool "hooks visible" true (Db.has_batch_hooks db);
  let st = Staging.create ~batch:3 db in
  Stats.reset ();
  let t1 = Staging.stage st [ ("m", [ row (1, 1) ]) ] in
  ignore (Staging.stage st [ ("m", [ row (2, 2) ]) ]);
  ignore (Staging.stage st [ ("m", [ row (3, 3) ]) ]);
  check_int "flushed at threshold" 0 (Staging.pending st);
  check_int "acks still in order" 1 (sn_of (Staging.await st t1));
  (* per-append commits: hooks fired once per batch, and no group
     record was ever written *)
  check_int "hook per append" 3 !batches;
  check_int "no group commit" 0 (Stats.get Stats.Group_commit)

(* ---- the counter story: one journal record per flushed group ---- *)

let test_counters_one_record_per_group () =
  let db = mk_db () in
  let storage = Storage.mem () in
  let d = Durable.attach ~storage db in
  let st = Staging.create ~batch:4 db in
  Stats.reset ();
  for i = 1 to 4 do
    ignore (Staging.stage st [ ("m", [ row (i, i * 10) ]) ])
  done;
  check_int "queue drained" 0 (Staging.pending st);
  check_int "ONE journal record for the whole group" 1
    (Stats.get Stats.Journal_append);
  check_int "one group commit" 1 (Stats.get Stats.Group_commit);
  check_int "group size high-water" 4 (Stats.get Stats.Group_size_max);
  check_int "four staged appends" 4 (Stats.get Stats.Staged_appends);
  (* a second, smaller group: size max is a high-water mark *)
  ignore (Staging.stage st [ ("m", [ row (9, 9) ]) ]);
  ignore (Staging.stage st [ ("b", [ row (9, 9) ]) ]);
  Staging.flush st;
  check_int "second record" 2 (Stats.get Stats.Journal_append);
  check_int "second group" 2 (Stats.get Stats.Group_commit);
  check_int "high-water stays" 4 (Stats.get Stats.Group_size_max);
  (* threshold 1 is the plain path: no group framing at all *)
  Staging.set_batch st 1;
  ignore (Staging.stage st [ ("m", [ row (8, 8) ]) ]);
  check_int "plain append record" 3 (Stats.get Stats.Journal_append);
  check_int "not a group" 2 (Stats.get Stats.Group_commit);
  Durable.detach d

let test_batched_recovery_equals_sequential () =
  (* the journal written under batching recovers to the same state a
     sequential run reaches *)
  let sequential = mk_db () in
  List.iter
    (fun (c, r) -> ignore (Db.append sequential c [ row r ]))
    [ ("m", (1, 10)); ("m", (2, 60)); ("b", (1, 5)); ("m", (3, 70)); ("b", (2, 2)) ];
  let reference = Snapshot.save sequential in
  let db = mk_db () in
  let storage = Storage.mem () in
  let _d = Durable.attach ~storage db in
  let st = Staging.create ~batch:3 db in
  List.iter
    (fun (c, r) -> ignore (Staging.stage st [ (c, [ row r ]) ]))
    [ ("m", (1, 10)); ("m", (2, 60)); ("b", (1, 5)); ("m", (3, 70)); ("b", (2, 2)) ];
  Staging.flush st;
  check_bool "live state matches sequential" true (Snapshot.save db = reference);
  let d2, report = Durable.recover ~storage () in
  check_bool "recovered state matches sequential" true
    (Snapshot.save (Durable.db d2) = reference);
  (* 2 group records (3 + 2 appends), each counted once *)
  check_int "group records count once" 2 report.Durable.replayed

(* ---- the differential property ---- *)

type cmd =
  | Stage of (string * (int * int) list) list
  | Flush
  | Set_batch of int

let show_cmd = function
  | Stage batch ->
      "Stage["
      ^ String.concat ";"
          (List.map
             (fun (c, rows) -> Printf.sprintf "%s:%d" c (List.length rows))
             batch)
      ^ "]"
  | Flush -> "Flush"
  | Set_batch n -> Printf.sprintf "SetBatch%d" n

let cmd_gen =
  QCheck.Gen.(
    let chron = oneofl [ "m"; "b" ] in
    let rows = list_size (int_range 0 3) (pair (int_range 1 5) (int_range 0 120)) in
    let batch = list_size (int_range 1 2) (pair chron rows) in
    frequency
      [
        (6, map (fun b -> Stage b) batch);
        (1, return Flush);
        (1, map (fun n -> Set_batch (n + 1)) (int_bound 5));
      ])

let to_batch b = List.map (fun (c, rows) -> (c, List.map row rows)) b

let run_staged ~jobs ~batch cmds =
  let db = mk_db ~jobs () in
  let st = Staging.create ~batch db in
  let tickets =
    List.filter_map
      (function
        | Stage b -> Some (Staging.stage st (to_batch b))
        | Flush ->
            Staging.flush st;
            None
        | Set_batch n ->
            Staging.set_batch st n;
            None)
      cmds
  in
  Staging.flush st;
  let acks =
    List.map (fun t -> sn_of (Staging.await st t)) tickets
  in
  (Snapshot.save db, acks)

let run_sequential cmds =
  let db = mk_db () in
  let sns =
    List.filter_map
      (function
        | Stage b -> Some (Db.append_multi db (to_batch b))
        | Flush | Set_batch _ -> None)
      cmds
  in
  (Snapshot.save db, sns)

let qcheck_staged_equals_sequential =
  let arb =
    QCheck.make
      ~print:(fun (cmds, batch, jobs) ->
        Printf.sprintf "batch=%d jobs=%d %s" batch jobs
          (String.concat " " (List.map show_cmd cmds)))
      QCheck.Gen.(
        triple
          (list_size (int_range 0 20) cmd_gen)
          (int_range 1 6) (oneofl [ 1; 2 ]))
  in
  qtest ~count:300 "staged ≡ sequential (state, sns, ack order)" arb
    (fun (cmds, batch, jobs) ->
      let staged_state, acks = run_staged ~jobs ~batch cmds in
      let seq_state, sns = run_sequential cmds in
      if staged_state <> seq_state then
        QCheck.Test.fail_report "staged and sequential states differ";
      if acks <> sns then
        QCheck.Test.fail_reportf
          "ack order diverged: staged [%s] vs sequential [%s]"
          (String.concat ";" (List.map string_of_int acks))
          (String.concat ";" (List.map string_of_int sns));
      true)

let suite =
  [
    test "threshold reached flushes the queue" test_threshold_flush;
    test "await flushes an idle queue" test_await_flushes;
    test "set_batch flushes at the new threshold" test_set_batch_flushes_at_threshold;
    test "stage validates eagerly" test_eager_validation;
    test "group abort is all-or-nothing" test_group_abort_all_or_nothing;
    test "batch hooks force per-append commits" test_batch_hooks_fall_back_to_per_append;
    test "one journal record per flushed group" test_counters_one_record_per_group;
    test "batched journal recovers to the sequential state"
      test_batched_recovery_equals_sequential;
    qcheck_staged_equals_sequential;
  ]
