open Relational
open Chronicle_core
open Util
open Fixtures

let acct_view fx name acct =
  Sca.define ~name
    ~body:(Ca.Select (Predicate.("acct" =% vi acct), Ca.Chronicle fx.mileage))
    (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))

let tagged fx sn tuples = ignore fx; List.map (Chron.tag sn) tuples

let test_register_find () =
  let fx = make () in
  let reg = Registry.create () in
  let v = View.create (balance_def fx) in
  Registry.register reg v;
  check_bool "found" true
    (match Registry.find reg "balance" with Some v' -> v' == v | None -> false);
  check_bool "missing" true (Option.is_none (Registry.find reg "nope"));
  check_int "views" 1 (List.length (Registry.views reg));
  check_raises_any "duplicate name" (fun () -> Registry.register reg v);
  Registry.unregister reg "balance";
  check_bool "gone" true (Option.is_none (Registry.find reg "balance"))

let test_dependents () =
  let fx = make () in
  let reg = Registry.create () in
  let v1 = View.create (balance_def fx) in
  let v2 =
    View.create
      (Sca.define ~name:"bonus_total" ~body:(Ca.Chronicle fx.bonus)
         (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ])))
  in
  Registry.register reg v1;
  Registry.register reg v2;
  check_int "mileage dependents" 1 (List.length (Registry.dependents reg fx.mileage));
  check_int "bonus dependents" 1 (List.length (Registry.dependents reg fx.bonus))

let test_guard_filtering () =
  let fx = make () in
  let reg = Registry.create () in
  List.iter
    (fun acct -> Registry.register reg (View.create (acct_view fx (Printf.sprintf "v%d" acct) acct)))
    [ 1; 2; 3; 4; 5 ];
  let batch = tagged fx 1 [ mile 2 100 10. ] in
  let affected = Registry.affected reg fx.mileage batch in
  check_int "only the matching view" 1 (List.length affected);
  check_string "the right one" "v2" (View.name (List.hd affected));
  check_bool "skips counted" true (Registry.skipped reg >= 4);
  check_bool "checks counted" true (Registry.checked reg >= 5)

let test_guard_through_projection () =
  let fx = make () in
  let reg = Registry.create () in
  let def =
    Sca.define ~name:"proj"
      ~body:
        (Ca.Select
           ( Predicate.("acct" =% vi 7),
             Ca.Project ([ Seqnum.attr; "acct"; "miles" ], Ca.Chronicle fx.mileage) ))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))
  in
  Registry.register reg (View.create def);
  check_int "filtered out" 0
    (List.length (Registry.affected reg fx.mileage (tagged fx 1 [ mile 1 5 1. ])));
  check_int "passes" 1
    (List.length (Registry.affected reg fx.mileage (tagged fx 2 [ mile 7 5 1. ])))

let test_union_guard () =
  let fx = make () in
  let reg = Registry.create () in
  let def =
    Sca.define ~name:"u"
      ~body:
        (Ca.Union
           ( Ca.Select (Predicate.("acct" =% vi 1), Ca.Chronicle fx.mileage),
             Ca.Select (Predicate.("acct" =% vi 2), Ca.Chronicle fx.mileage) ))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))
  in
  Registry.register reg (View.create def);
  check_int "acct 1 hits" 1
    (List.length (Registry.affected reg fx.mileage (tagged fx 1 [ mile 1 5 1. ])));
  check_int "acct 2 hits" 1
    (List.length (Registry.affected reg fx.mileage (tagged fx 2 [ mile 2 5 1. ])));
  check_int "acct 3 filtered" 0
    (List.length (Registry.affected reg fx.mileage (tagged fx 3 [ mile 3 5 1. ])))

let test_join_shape_always_maintained () =
  let fx = make () in
  let reg = Registry.create () in
  let def =
    Sca.define ~name:"joined" ~body:(keyjoin_body fx)
      (Sca.Group_agg ([ "state" ], [ Aggregate.count_star "n" ]))
  in
  Registry.register reg (View.create def);
  (* no guard extractable: every append to the chronicle maintains it *)
  check_int "always affected" 1
    (List.length (Registry.affected reg fx.mileage (tagged fx 1 [ mile 1 5 1. ])))

let test_unrelated_chronicle_not_affected () =
  let fx = make () in
  let reg = Registry.create () in
  Registry.register reg (View.create (balance_def fx));
  check_int "bonus append does not touch mileage view" 0
    (List.length (Registry.affected reg fx.bonus (tagged fx 1 [ mile 1 5 1. ])))

let test_affected_order_deterministic () =
  (* [affected] must return views in registration order — the parallel
     maintenance path partitions the list into contiguous per-domain
     ranges, so a hash-order here would make task ownership
     irreproducible.  Register many views with hash-hostile names,
     punch holes with [unregister], and check every enumeration is the
     registration order of the survivors. *)
  let fx = make () in
  let reg = Registry.create () in
  let names =
    List.map (fun i -> Printf.sprintf "view_%03d" i) [ 9; 3; 17; 1; 12; 5; 20; 8; 14; 2 ]
  in
  List.iter
    (fun name ->
      Registry.register reg
        (View.create
           (Sca.define ~name ~body:(Ca.Chronicle fx.mileage)
              (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ])))))
    names;
  List.iter (Registry.unregister reg) [ "view_017"; "view_002"; "view_009" ];
  let survivors =
    List.filter (fun n -> not (List.mem n [ "view_017"; "view_002"; "view_009" ])) names
  in
  let order l = List.map View.name l in
  Alcotest.(check (list string))
    "views in registration order" survivors (order (Registry.views reg));
  Alcotest.(check (list string))
    "dependents in registration order" survivors
    (order (Registry.dependents reg fx.mileage));
  let batch = tagged fx 1 [ mile 1 100 10. ] in
  let first = order (Registry.affected reg fx.mileage batch) in
  Alcotest.(check (list string)) "affected in registration order" survivors first;
  (* stability: repeated calls yield the identical list *)
  for _ = 1 to 5 do
    Alcotest.(check (list string))
      "affected stable across calls" first
      (order (Registry.affected reg fx.mileage batch))
  done;
  (* a late re-registration goes to the back, not a hash-chosen slot *)
  Registry.register reg
    (View.create
       (Sca.define ~name:"view_002" ~body:(Ca.Chronicle fx.mileage)
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))));
  Alcotest.(check (list string))
    "re-registered view appended at the back"
    (survivors @ [ "view_002" ])
    (order (Registry.affected reg fx.mileage batch))

let test_index_advice () =
  let fx = make () in
  let reg = Registry.create () in
  Registry.register reg (View.create (balance_def fx));
  Alcotest.check
    Alcotest.(list (pair string (list string)))
    "advice" [ ("balance", [ "acct" ]) ] (Registry.index_advice reg)

let suite =
  [
    test "register/find/unregister" test_register_find;
    test "dependents by chronicle" test_dependents;
    test "selective guards filter appends (§5.2)" test_guard_filtering;
    test "guards extract through projections" test_guard_through_projection;
    test "union guards take the disjunction" test_union_guard;
    test "join-shaped bodies always maintained" test_join_shape_always_maintained;
    test "independent chronicle appends skipped" test_unrelated_chronicle_not_affected;
    test "affected order is deterministic" test_affected_order_deterministic;
    test "index advice" test_index_advice;
  ]
