(* Physical plans (Plan / Delta.compile / View.plan):

   1. compiled plans are observationally equal to the naive interpreter
      on randomized expression trees over workload data (the oracle is
      [Ra.eval_naive], kept for exactly this purpose);
   2. [Ra.eval] really is the compiled pipeline (guards the forward
      reference installed at library initialization);
   3. select-pushdown answers indexed equality selections with an index
      scan instead of a full scan + filter;
   4. equi-join build tables are reused across executions and
      invalidated by [Relation.version] bumps;
   5. the per-view plan cache: miss + compile at registration, pure
      hits during steady-state maintenance (with zero per-batch
      predicate/projector compilations), miss + recompile after
      redefinition. *)

open Relational
open Chronicle_core
open Chronicle_workload
open Util

(* ---- randomized expression trees over workload data ---- *)

let kinds = [| "deposit"; "withdrawal" |]

let txn_rel rng =
  let rel = Relation.create ~name:"txns" ~schema:Banking.txn_schema () in
  let zipf = Zipf.create ~n:40 ~s:1.0 in
  for _ = 1 to 60 do
    ignore (Relation.insert rel (Banking.txn rng zipf))
  done;
  rel

let account_rel rng =
  let rel =
    Relation.create ~name:"accounts" ~schema:Banking.account_schema
      ~key:[ "acct" ] ()
  in
  Relation.insert_all rel (Banking.accounts rng ~n:40);
  rel

let random_const rng (ty : Value.ty) =
  match ty with
  | Value.TInt -> Value.Int (Rng.int rng 45)
  | Value.TFloat -> Value.Float (Rng.float rng 500.)
  | Value.TStr -> Value.Str (Rng.pick rng kinds)
  | Value.TBool -> Value.Bool (Rng.bool rng)

let random_pred rng schema =
  let attrs = Schema.attrs schema in
  let attr = attrs.(Rng.int rng (Array.length attrs)) in
  let op =
    Rng.pick rng
      [| Predicate.Eq; Predicate.Ne; Predicate.Le; Predicate.Lt;
         Predicate.Gt; Predicate.Ge |]
  in
  Predicate.Cmp
    (Predicate.Attr attr.Schema.name, op, Predicate.Const (random_const rng attr.Schema.ty))

let random_subset rng names =
  match List.filter (fun _ -> Rng.bool rng) names with
  | [] -> [ List.nth names (Rng.int rng (List.length names)) ]
  | some -> some

(* Grow a random tree; every candidate is validated with [Ra.schema_of]
   and discarded (keeping the child) when ill-formed, so the generator
   never commits to an untypeable expression. *)
let gen_expr rng ~accounts ~base ~depth =
  let fresh = ref 0 in
  let try_node child candidate =
    match Ra.schema_of candidate with
    | _ -> candidate
    | exception (Ra.Type_error _ | Schema.Duplicate_attribute _) -> child
  in
  let rec go depth =
    let base_case () =
      if Rng.bool rng then base
      else Ra.Select (random_pred rng (Ra.schema_of base), base)
    in
    if depth = 0 then base_case ()
    else
      let child = go (depth - 1) in
      let s = Ra.schema_of child in
      match Rng.int rng 10 with
      | 0 -> try_node child (Ra.Select (random_pred rng s, child))
      | 1 -> try_node child (Ra.Project (random_subset rng (Schema.names s), child))
      | 2 -> Ra.Distinct child
      | 3 ->
          incr fresh;
          let victim = List.nth (Schema.names s) (Rng.int rng (Schema.arity s)) in
          try_node child
            (Ra.Rename ([ (victim, Printf.sprintf "r%d" !fresh) ], child))
      | 4 ->
          incr fresh;
          Ra.Prefix (Printf.sprintf "p%d" !fresh, child)
      | 5 ->
          let gl = random_subset rng (Schema.names s) in
          let aggs = [ Aggregate.count_star "n" ] in
          try_node child (Ra.GroupBy (gl, aggs, child))
      | 6 ->
          let p1 = random_pred rng s and p2 = random_pred rng s in
          Ra.Union (Ra.Select (p1, child), Ra.Select (p2, child))
      | 7 ->
          let p1 = random_pred rng s and p2 = random_pred rng s in
          Ra.Diff (Ra.Select (p1, child), Ra.Select (p2, child))
      | 8 ->
          incr fresh;
          try_node child
            (Ra.Product (child, Ra.Prefix (Printf.sprintf "q%d" !fresh, Ra.Rel accounts)))
      | _ ->
          try_node child
            (Ra.EquiJoin ([ ("acct", "acct") ], child, Ra.Rel accounts))
  in
  go depth

let prop_compiled_equals_naive () =
  let rng = Rng.create 20260806 in
  for i = 1 to 300 do
    let data_rng = Rng.split rng in
    let accounts = account_rel data_rng in
    let base = Ra.Rel (txn_rel data_rng) in
    let expr = gen_expr rng ~accounts ~base ~depth:(1 + Rng.int rng 5) in
    let plan = Plan.compile expr in
    let expected = Ra.eval_naive expr in
    let got = Plan.run plan in
    if not (List.equal Tuple.equal got expected) then
      Alcotest.failf "tree %d: plan ≠ naive for %a@ (plan: %d rows, naive: %d rows)"
        i Ra.pp expr (List.length got) (List.length expected);
    if not (Schema.equal (Plan.schema plan) (Ra.schema_of expr)) then
      Alcotest.failf "tree %d: plan schema ≠ static schema for %a" i Ra.pp expr;
    (* a second run over unchanged relations must be stable (exercises
       the build-table reuse path inside equi-joins) *)
    if not (List.equal Tuple.equal (Plan.run plan) expected) then
      Alcotest.failf "tree %d: second run diverged for %a" i Ra.pp expr
  done

(* ---- randomized trees over indexed bases: ranged ≡ sequential ≡ naive ----

   The differential layer for the ranged index-probe pushdown.  The
   base relation carries a non-unique hash index on "kind" and an
   ordered (B+-tree) index on "acct", and every tree's base is an
   equality selection on one of the two — the shape the pushdown
   answers with bounded probes.  Each tree is checked, tuples AND
   order, against the naive interpreter and the sequential compiled
   plan at jobs ∈ {1, 2, 4, 8}; across the corpus the ranged runs must
   actually have taken the probe path ([Index_scan] fired — the
   per-shape read-economics assertions live in test_parallel's
   [plan_shapes] property and its directed counter tests). *)

let indexed_txn_rel rng =
  let rel = txn_rel rng in
  Relation.create_index rel Index.Hash [ "kind" ];
  Relation.create_index rel Index.Ordered [ "acct" ];
  rel

let prop_ranged_equals_naive_indexed () =
  let rng = Rng.create 816 in
  let pools = List.map (fun jobs -> Exec.Pool.create ~jobs ()) [ 1; 2; 4; 8 ] in
  let scans = ref 0 in
  for i = 1 to 120 do
    let data_rng = Rng.split rng in
    let accounts = account_rel data_rng in
    let rel = indexed_txn_rel data_rng in
    (* the tree's base: an equality-selective predicate on an indexed
       attribute (hash on "kind", ordered on "acct") *)
    let base =
      if Rng.bool rng then
        Ra.Select (Predicate.("kind" =% vs (Rng.pick rng kinds)), Ra.Rel rel)
      else Ra.Select (Predicate.("acct" =% vi (Rng.int rng 45)), Ra.Rel rel)
    in
    let expr = gen_expr rng ~accounts ~base ~depth:(1 + Rng.int rng 4) in
    let expected = Ra.eval_naive expr in
    if not (List.equal Tuple.equal (Plan.run (Plan.compile expr)) expected)
    then Alcotest.failf "tree %d: sequential plan ≠ naive for %a" i Ra.pp expr;
    List.iter
      (fun pool ->
        let before = Stats.snapshot () in
        let got = Plan.run (Plan.compile_parallel pool expr) in
        let after = Stats.snapshot () in
        if Exec.Pool.jobs pool > 1 then
          scans := !scans + Stats.diff_get before after Stats.Index_scan;
        if not (List.equal Tuple.equal got expected) then
          Alcotest.failf "tree %d: jobs=%d ≠ naive for %a" i
            (Exec.Pool.jobs pool) Ra.pp expr)
      pools
  done;
  check_bool "ranged pushdown fired across the corpus" true (!scans > 0)

(* ---- Ra.eval dispatches to the compiled pipeline ---- *)

let ra_eval_is_compiled () =
  let rng = Rng.create 7 in
  let rel = txn_rel rng in
  let before = Stats.snapshot () in
  ignore (Ra.eval (Ra.Select (Predicate.("amount" >% vf 0.), Ra.Rel rel)));
  let after = Stats.snapshot () in
  check_bool "Ra.eval compiles a plan" true
    (Stats.diff_get before after Stats.Plan_compile >= 1)

(* ---- select pushdown ---- *)

let index_pushdown () =
  let rng = Rng.create 11 in
  let rel = account_rel rng in
  (* key [acct] carries a hash index: the equality conjunct becomes a
     probe, the rest a residual filter *)
  let expr =
    Ra.Select
      ( Predicate.And
          (Predicate.("acct" =% vi 3), Predicate.("branch" <>% vs "nowhere")),
        Ra.Rel rel )
  in
  let plan = Plan.compile expr in
  let before = Stats.snapshot () in
  let got = Plan.run plan in
  let after = Stats.snapshot () in
  check_tuples "index scan ≡ naive" (Ra.eval_naive expr) got;
  check_int "one index scan" 1 (Stats.diff_get before after Stats.Index_scan);
  check_bool "no full scan: tuples read ≪ |R|" true
    (Stats.diff_get before after Stats.Tuple_read < Relation.cardinality rel);
  (* no covering index ⇒ falls back to scan + filter *)
  let fallback = Ra.Select (Predicate.("name" =% vs "acct-3"), Ra.Rel rel) in
  let before = Stats.snapshot () in
  check_tuples "fallback ≡ naive" (Ra.eval_naive fallback)
    (Plan.run (Plan.compile fallback));
  let after = Stats.snapshot () in
  check_int "no index scan without a covering index" 0
    (Stats.diff_get before after Stats.Index_scan)

(* ---- build-table reuse and invalidation ---- *)

let build_table_reuse () =
  let rng = Rng.create 13 in
  let accounts = account_rel rng in
  let txns = txn_rel rng in
  let expr = Ra.EquiJoin ([ ("acct", "acct") ], Ra.Rel txns, Ra.Rel accounts) in
  let plan = Plan.compile expr in
  let r1 = Plan.run plan in
  let before = Stats.snapshot () in
  let r2 = Plan.run plan in
  let after = Stats.snapshot () in
  check_tuples "stable across runs" r1 r2;
  check_int "build table reused" 1 (Stats.diff_get before after Stats.Build_reuse);
  (* mutating the build relation invalidates the table *)
  ignore
    (Relation.insert accounts (tup [ vi 999; vs "acct-999"; vs "branch-0" ]));
  ignore (Relation.insert txns (tup [ vi 999; vs "deposit"; vf 10. ]));
  let before = Stats.snapshot () in
  let r3 = Plan.run plan in
  let after = Stats.snapshot () in
  check_int "version bump forces rebuild" 0
    (Stats.diff_get before after Stats.Build_reuse);
  check_tuples "rebuild sees the new rows" (Ra.eval_naive expr) r3;
  let before = Stats.snapshot () in
  ignore (Plan.run plan);
  let after = Stats.snapshot () in
  check_int "reused again once versions settle" 1
    (Stats.diff_get before after Stats.Build_reuse)

(* ---- the per-view plan cache on the transaction path ---- *)

let sum_def db name =
  let chron = Ca.Chronicle (Db.chronicle db "txns") in
  Sca.define ~name
    ~body:(Ca.Select (Predicate.("amount" >=% vf (-1e9)), chron))
    (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "amount" "balance" ]))

let view_plan_cache () =
  let db = Db.create () in
  (* full retention so the drop+redefine below can re-initialize from
     history *)
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"txns" Banking.txn_schema);
  let before = Stats.snapshot () in
  ignore (Db.define_view db (sum_def db "balance"));
  let after = Stats.snapshot () in
  check_bool "registration compiles the Δ-plan" true
    (Stats.diff_get before after Stats.Plan_compile >= 1);
  check_bool "registration is the cache miss" true
    (Stats.diff_get before after Stats.Plan_cache_miss >= 1);
  (* steady state: every append is a pure cache hit with zero
     recompilation — the acceptance criterion of the plan-cache work *)
  let rng = Rng.create 3 and zipf = Zipf.create ~n:10 ~s:1.0 in
  ignore (Db.append db "txns" [ Banking.txn rng zipf ]);
  let before = Stats.snapshot () in
  for _ = 1 to 10 do
    ignore (Db.append db "txns" [ Banking.txn rng zipf ])
  done;
  let after = Stats.snapshot () in
  check_int "10 appends = 10 plan-cache hits" 10
    (Stats.diff_get before after Stats.Plan_cache_hit);
  check_int "zero plan compiles per batch" 0
    (Stats.diff_get before after Stats.Plan_compile);
  check_int "zero predicate compiles per batch" 0
    (Stats.diff_get before after Stats.Predicate_compile);
  check_int "zero projector compiles per batch" 0
    (Stats.diff_get before after Stats.Projector_compile);
  (* redefinition invalidates: drop + define recompiles *)
  Db.drop_view db "balance";
  let before = Stats.snapshot () in
  ignore (Db.define_view db (sum_def db "balance"));
  let after = Stats.snapshot () in
  check_bool "redefinition recompiles" true
    (Stats.diff_get before after Stats.Plan_compile >= 1);
  check_bool "redefinition is a fresh miss" true
    (Stats.diff_get before after Stats.Plan_cache_miss >= 1);
  (* and the recompiled view still maintains correctly *)
  ignore (Db.append db "txns" [ tup [ vi 1; vs "deposit"; vf 5.0 ] ]);
  match Db.summary db ~view:"balance" [ vi 1 ] with
  | None -> Alcotest.fail "redefined view lost its key"
  | Some _ -> ()

let maintenance_equals_recompute () =
  (* end-to-end: cached-plan maintenance reproduces full recomputation *)
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"txns" Banking.txn_schema);
  let view = Db.define_view db (sum_def db "balance") in
  let rng = Rng.create 5 and zipf = Zipf.create ~n:20 ~s:1.0 in
  for _ = 1 to 50 do
    ignore (Db.append db "txns" [ Banking.txn rng zipf ])
  done;
  let def = View.def view in
  check_tuples "incremental ≡ recompute"
    (Sca.eval_summarize def (Eval.eval (Sca.body def)))
    (View.to_list view)

let suite =
  [
    test "compiled ≡ naive on random trees" prop_compiled_equals_naive;
    test "ranged ≡ sequential ≡ naive on indexed trees"
      prop_ranged_equals_naive_indexed;
    test "Ra.eval is the compiled pipeline" ra_eval_is_compiled;
    test "select pushdown uses the index" index_pushdown;
    test "build table reuse + invalidation" build_table_reuse;
    test "per-view plan cache hit/miss/redefine" view_plan_cache;
    test "cached-plan maintenance ≡ recompute" maintenance_equals_recompute;
  ]
