(* Storage-corruption fuzzing.

   Random workloads are run durably to completion under random
   generation/segment configurations; then random bit-flips and
   truncations are applied to the surviving checkpoint + journal bytes.
   The properties:

   - {b Strict} recovery either succeeds or raises one of the typed
     recovery errors ({!Journal.Journal_corrupt}, {!Durable.Recovery_error},
     {!Durable.Checkpoint_corrupt}, {!Snapshot.Snapshot_error}) — never a
     bare [Failure], assertion, or out-of-bounds exception.
   - {b Salvage} recovery {e never} raises: every corruption collapses
     to a maximal consistent prefix plus quarantine sidecars, and the
     instance's health agrees with the report.
   - When strict recovery succeeds, salvage recovers the identical
     state (fallback alone is not damage worth degrading over).
   - Storage after salvage is self-healed: a subsequent strict recovery
     succeeds. *)

open Chronicle_core
open Chronicle_durability

let vi i = Relational.Value.Int i
let tup = Relational.Tuple.make

let schema =
  Relational.Schema.make
    [ ("acct", Relational.Value.TInt); ("miles", Relational.Value.TInt) ]

let mk_db ?jobs () =
  let db = Db.create ?jobs () in
  (* Full retention so the workload can carry Retract ops (Ev_retract
     records interleave with appends/groups in the fuzzed journal) *)
  ignore (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage" schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [
                 Relational.Aggregate.sum "miles" "balance";
                 Relational.Aggregate.count_star "n";
               ] ))));
  db

type op =
  | Append of (int * int) list
  | Group of (int * int) list list
  | Clock of int
  | Checkpoint
  | Retract of int (* retract the n oldest retained rows, if any *)

let row (a, m) = tup [ vi a; vi m ]

let apply d db = function
  | Append rows -> ignore (Db.append db "mileage" (List.map row rows))
  | Group parts ->
      ignore
        (Db.append_group db
           (List.map (fun rows -> [ ("mileage", List.map row rows) ]) parts))
  | Clock n ->
      Db.advance_clock db (Chronicle_core.Group.now (Db.default_group db) + n)
  | Checkpoint -> Durable.checkpoint d
  | Retract n -> (
      let stored = Chron.stored (Db.chronicle db "mileage") in
      let rec take k = function
        | tagged :: rest when k > 0 ->
            Array.sub tagged 1 (Array.length tagged - 1) :: take (k - 1) rest
        | _ -> []
      in
      match take n stored with
      | [] -> ()
      | victims -> ignore (Db.retract db "mileage" victims))

(* One fuzz case: a workload, a durability configuration, and a list of
   corruptions (name picked by index into the sorted surviving names;
   offsets as raw ints reduced modulo the victim's length). *)
type case = {
  ops : op list;
  keep : int;
  segment_bytes : int option;
  jobs : int;
  corruptions : (int * [ `Flip of int * int | `Trunc of int ]) list;
}

let case_gen =
  QCheck.Gen.(
    let rows =
      list_size (int_range 0 3) (pair (int_range 1 4) (int_range 0 99))
    in
    let op =
      frequency
        [
          (5, map (fun r -> Append r) rows);
          (2, map (fun ps -> Group ps) (list_size (int_range 1 3) rows));
          (2, map (fun n -> Clock (n + 1)) (int_bound 2));
          (2, return Checkpoint);
          (2, map (fun n -> Retract (n + 1)) (int_bound 2));
        ]
    in
    let corruption =
      pair (int_bound 1000)
        (frequency
           [
             ( 3,
               map2 (fun b bit -> `Flip (b, bit)) (int_bound 4000)
                 (int_bound 7) );
             (1, map (fun t -> `Trunc t) (int_bound 4000));
           ])
    in
    map
      (fun ((ops, keep, seg), (jobs, corruptions)) ->
        { ops; keep; segment_bytes = seg; jobs; corruptions })
      (pair
         (triple
            (list_size (int_range 1 10) op)
            (int_range 1 3)
            (oneofl [ None; Some 200; Some 500 ]))
         (pair (oneofl [ 1; 2; 4 ])
            (list_size (int_range 1 4) corruption))))

let show_case c =
  Printf.sprintf "jobs=%d keep=%d seg=%s ops=%d corruptions=[%s]" c.jobs
    c.keep
    (match c.segment_bytes with None -> "-" | Some n -> string_of_int n)
    (List.length c.ops)
    (String.concat ";"
       (List.map
          (fun (p, k) ->
            match k with
            | `Flip (b, bit) -> Printf.sprintf "%d:flip(%d,%d)" p b bit
            | `Trunc t -> Printf.sprintf "%d:trunc(%d)" p t)
          c.corruptions))

let clone_storage (src : Storage.t) =
  let dst = Storage.mem () in
  List.iter
    (fun name ->
      match src.Storage.read name with
      | Some bytes -> dst.Storage.write name bytes
      | None -> ())
    (src.Storage.list ());
  dst

let corrupt (storage : Storage.t) (pick, kind) =
  match storage.Storage.list () with
  | [] -> ()
  | names -> (
      let name = List.nth names (pick mod List.length names) in
      let len = String.length (Option.get (storage.Storage.read name)) in
      match kind with
      | `Flip (b, bit) when len > 0 ->
          Fault.flip_bit storage ~name ~byte:(b mod len) ~bit
      | `Flip _ -> ()
      | `Trunc t -> storage.Storage.truncate name (t mod (len + 1)))

let typed_recovery_error = function
  | Journal.Journal_corrupt _ | Durable.Recovery_error _
  | Durable.Checkpoint_corrupt _ | Snapshot.Snapshot_error _ ->
      true
  | _ -> false

let run_case c =
  (* grow the durable state *)
  let storage = Storage.mem () in
  let db = mk_db ~jobs:c.jobs () in
  let d =
    Durable.attach ~keep_checkpoints:c.keep ?segment_bytes:c.segment_bytes
      ~storage db
  in
  List.iter (apply d db) c.ops;
  Durable.detach d;
  (* damage it *)
  List.iter (corrupt storage) c.corruptions;
  (* strict: success or typed error *)
  let strict_state =
    match Durable.recover ~jobs:c.jobs ~storage:(clone_storage storage) () with
    | d, _ ->
        let s = Snapshot.save (Durable.db d) in
        Durable.detach d;
        Some s
    | exception e ->
        if not (typed_recovery_error e) then
          QCheck.Test.fail_reportf "strict recovery raised untyped %s on %s"
            (Printexc.to_string e) (show_case c);
        None
  in
  (* salvage: never raises; health agrees with the report *)
  let salvaged = clone_storage storage in
  (match
     Durable.recover ~jobs:c.jobs ~mode:Durable.Salvage ~storage:salvaged ()
   with
  | d, report ->
      let state = Snapshot.save (Durable.db d) in
      (match (Durable.health d, report.Durable.degraded) with
      | Durable.Degraded _, true | Durable.Healthy, false -> ()
      | _ ->
          QCheck.Test.fail_reportf "health disagrees with report on %s"
            (show_case c));
      (match strict_state with
      | Some s when s <> state ->
          QCheck.Test.fail_reportf
            "salvage diverged from successful strict recovery on %s"
            (show_case c)
      | _ -> ());
      Durable.detach d
  | exception e ->
      QCheck.Test.fail_reportf "salvage recovery raised %s on %s"
        (Printexc.to_string e) (show_case c));
  (* self-healed: strict recovery of the salvaged storage succeeds *)
  (match Durable.recover ~storage:salvaged () with
  | d, _ -> Durable.detach d
  | exception e ->
      QCheck.Test.fail_reportf "post-salvage strict recovery raised %s on %s"
        (Printexc.to_string e) (show_case c));
  true

let fuzz_corrupted_recovery =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:220 ~name:"corrupted-storage recovery fuzz"
       (QCheck.make ~print:show_case case_gen)
       run_case)

let () =
  Alcotest.run "chronicle-fuzz"
    [ ("fuzz", [ fuzz_corrupted_recovery ]) ]
