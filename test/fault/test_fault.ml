(* The crash-equivalence property suite.

   For a workload W = op₁ … opₙ and a crash injected at any instrumented
   point while opᵢ executes, let Sⱼ be the state a clean (never-crashing)
   run reaches after op₁ … opⱼ.  The property:

       state(recover(storage after crash during opᵢ)) ∈ { Sᵢ₋₁, Sᵢ }

   i.e. every operation is all-or-nothing across a crash: either its
   write-ahead record reached stable storage (recovery finishes it — Sᵢ)
   or it did not (recovery yields exactly the previous state — Sᵢ₋₁).
   Nothing in between is ever observable, and no earlier operation is
   ever lost.  States are compared as canonical snapshot documents
   ({!Snapshot.save}), which cover catalog, watermarks, clocks, retained
   chronicle windows, relations and materialized views.

   Two drivers share one harness: a deterministic exhaustive sweep
   (every crash point × every countdown up to a cap, plus torn writes)
   and a QCheck property over randomized workloads and crash scripts. *)

open Relational
open Chronicle_core
open Chronicle_durability

(* durability's [Group] is the commit-group stager; the chronicle
   group of Chronicle_core is what these tests mean by [Group] *)
module Group = Chronicle_core.Group

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.Str s
let tup = Tuple.make

(* ---- the workload vocabulary ---- *)

type op =
  | Append of (int * int) list (* mileage rows: (acct, miles) *)
  | Bonus of (int * int) list (* bonus rows *)
  | Multi of (int * int) list * (int * int) list (* one sn, both chronicles *)
  | Group of ((int * int) list * (int * int) list) list
    (* group commit: each element is one staged append (its own sn,
       both chronicles); the whole group is one journal record and
       all-or-nothing across a crash *)
  | Clock of int (* advance by n >= 1 *)
  | Checkpoint
  | Rel of int * string
    (* insert a customers row (skew catalog only) through the
       journaled Db.insert_rows path — an Ev_insert write-ahead
       record, no checkpoint needed — while still bumping the
       relation version between appends (which is what demotes every
       heavy key at the next key-join fold) *)
  | Retract of int
    (* retract the n oldest retained mileage rows (retract catalog
       only: requires Full retention) through the journaled
       Db.retract path — an Ev_retract write-ahead record.  The
       victims are read from the store at application time, so the op
       is deterministic given the database state, and the sequential
       oracle and the crashing run resolve it identically *)

let show_op = function
  | Append rows ->
      "Append[" ^ String.concat ";" (List.map (fun (a, m) -> Printf.sprintf "%d:%d" a m) rows) ^ "]"
  | Bonus rows ->
      "Bonus[" ^ String.concat ";" (List.map (fun (a, m) -> Printf.sprintf "%d:%d" a m) rows) ^ "]"
  | Multi (a, b) ->
      Printf.sprintf "Multi[%d+%d rows]" (List.length a) (List.length b)
  | Group parts ->
      Printf.sprintf "Group[%s]"
        (String.concat "|"
           (List.map
              (fun (a, b) ->
                Printf.sprintf "%d+%d" (List.length a) (List.length b))
              parts))
  | Clock n -> Printf.sprintf "Clock+%d" n
  | Checkpoint -> "Checkpoint"
  | Rel (cust, state) -> Printf.sprintf "Rel[%d:%s]" cust state
  | Retract n -> Printf.sprintf "Retract[%d]" n

let show_ops ops = String.concat " " (List.map show_op ops)

let row (acct, miles) = tup [ vi acct; vi miles; vf 1. ]

let mileage_schema =
  Schema.make
    [ ("acct", Value.TInt); ("miles", Value.TInt); ("fare", Value.TFloat) ]

(* Catalog under test: two chronicles in one group (ring and discard
   retention), one relation, and three views — a grouped aggregate over
   a union of both chronicles, a guarded selection view, and a guarded
   per-account view (so batches affect one, two or three views, and a
   parallel run has real partitions to hand out). *)
let mk_db ?jobs () =
  let db = Db.create ?jobs () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 4) ~name:"mileage"
       mileage_schema);
  ignore (Db.add_chronicle db ~name:"bonus" mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:
            (Ca.Union
               ( Ca.Chronicle (Db.chronicle db "mileage"),
                 Ca.Chronicle (Db.chronicle db "bonus") ))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  ignore
    (Db.define_view db ~index:Index.Ordered
       (Sca.define ~name:"big"
          ~body:
            (Ca.Select
               (Predicate.("miles" >% vi 50), Ca.Chronicle (Db.chronicle db "mileage")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"acct2"
          ~body:
            (Ca.Select
               (Predicate.("acct" =% vi 2), Ca.Chronicle (Db.chronicle db "bonus")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "b2" ]))));
  db

let apply ?durable db op =
  match op with
  | Append rows -> ignore (Db.append db "mileage" (List.map row rows))
  | Bonus rows -> ignore (Db.append db "bonus" (List.map row rows))
  | Multi (a, b) ->
      ignore
        (Db.append_multi db
           [ ("mileage", List.map row a); ("bonus", List.map row b) ])
  | Group parts ->
      ignore
        (Db.append_group db
           (List.map
              (fun (a, b) ->
                [ ("mileage", List.map row a); ("bonus", List.map row b) ])
              parts))
  | Clock n -> Db.advance_clock db (Group.now (Db.default_group db) + n)
  | Checkpoint -> (
      match durable with Some d -> Durable.checkpoint d | None -> ())
  | Rel (cust, state) ->
      Db.insert_rows db "customers" [ tup [ vi cust; vs state ] ]
  | Retract n -> (
      let stored = Chron.stored (Db.chronicle db "mileage") in
      let rec take k = function
        | tagged :: rest when k > 0 ->
            Array.sub tagged 1 (Array.length tagged - 1) :: take (k - 1) rest
        | _ -> []
      in
      match take n stored with
      | [] -> ()
      | victims -> ignore (Db.retract db "mileage" victims))

(* Clean-run states S₀ … Sₙ — always computed sequentially (jobs = 1),
   so a crashed-and-recovered parallel run is checked against the
   sequential states: crash equivalence and parallel transparency in
   one comparison.  [mk] swaps the catalog (jobs ↦ database). *)
let clean_states ?(mk = fun jobs -> mk_db ~jobs ()) ops =
  let db = mk 1 in
  (* bind S₀ before mapping: [::] evaluates right-to-left, and the map
     mutates [db] *)
  let s0 = Snapshot.save db in
  Array.of_list
    (s0
    :: List.map
         (fun op ->
           apply db op;
           Snapshot.save db)
         ops)

(* Run the workload durably with [script] armed after attach; returns
   the number of ops that completed before a crash (n = no crash). *)
let durable_run ?(mk = fun jobs -> mk_db ~jobs ()) ops ~jobs ~storage ~fault
    ~script =
  let db = mk jobs in
  let d = Durable.attach ~fault ~storage db in
  script fault;
  let applied = ref 0 in
  (try
     List.iter
       (fun op ->
         apply ~durable:d db op;
         incr applied)
       ops
   with Fault.Crash _ -> ());
  (!applied, Fault.is_dead fault)

(* The property itself.  [jobs] is the maintenance parallelism of the
   crashing run and of recovery; the reference states stay sequential. *)
let check_crash_equivalence ?(what = "") ?(jobs = 1) ?mk ?heavy_threshold
    ?on_crashed ops script =
  let states = clean_states ?mk ops in
  let storage = Storage.mem () in
  let fault = Fault.create () in
  let applied, crashed = durable_run ?mk ops ~jobs ~storage ~fault ~script in
  Option.iter (fun f -> f crashed) on_crashed;
  let d, _report = Durable.recover ~jobs ?heavy_threshold ~storage () in
  let recovered = Snapshot.save (Durable.db d) in
  let ok =
    if not crashed then recovered = states.(Array.length states - 1)
    else
      recovered = states.(applied)
      || (applied + 1 < Array.length states && recovered = states.(applied + 1))
  in
  if not ok then
    Alcotest.failf
      "crash-equivalence violated (%s): crashed=%b after %d/%d ops\n\
       workload: %s"
      what crashed applied (List.length ops) (show_ops ops);
  (* recovery must be stable: recovering again changes nothing *)
  let d2, _ = Durable.recover ?heavy_threshold ~storage () in
  if Snapshot.save (Durable.db d2) <> recovered then
    Alcotest.failf "recovery is not idempotent (%s): %s" what (show_ops ops)

(* ---- deterministic exhaustive sweep ---- *)

let fixed_workload =
  [
    Append [ (1, 100); (2, 40) ];
    Clock 2;
    Bonus [ (1, 10) ];
    Multi ([ (3, 75) ], [ (2, 5) ]);
    Checkpoint;
    Append [ (1, 60); (3, 51); (2, 1) ];
    Append [];
    Clock 1;
    Bonus [ (3, 2); (1, 1) ];
    Checkpoint;
    Append [ (4, 99) ];
    Multi ([ (4, 1) ], [ (4, 2) ]);
    Group [ ([ (1, 30) ], []); ([], [ (2, 8) ]); ([ (5, 120) ], [ (5, 1) ]) ];
    Clock 1;
    Group [ ([ (2, 9) ], [ (3, 4) ]) ];
  ]

let crash_points =
  [
    "post-journal-write";
    "post-group-write";
    "view-fold";
    "pre-checkpoint-rename";
    "post-checkpoint-rename";
  ]

let test_exhaustive_crash_sweep () =
  let max_countdown = 14 in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          for k = 0 to max_countdown do
            check_crash_equivalence
              ~what:(Printf.sprintf "%s after %d hits (jobs=%d)" point k jobs)
              ~jobs fixed_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done)
        crash_points)
    [ 1; 2 ];
  (* the view-fold point is the one probed concurrently from pool
     domains: sweep it at a higher degree too *)
  for k = 0 to max_countdown do
    check_crash_equivalence
      ~what:(Printf.sprintf "view-fold after %d hits (jobs=4)" k)
      ~jobs:4 fixed_workload
      (fun fault -> Fault.arm fault ~after:k "view-fold")
  done

(* Group-commit crash sweep: a group-heavy workload (the final record is
   a group) crashed inside the half-committed-group window — after the
   group record reached the journal but before any ack
   ("post-journal-write" / "post-group-write") and mid-fan-out while
   pool domains fold the combined Δ ("view-fold").  The property is the
   same crash equivalence: the recovered state is pre-group or
   post-group, never a partial group. *)
let group_workload =
  [
    Append [ (1, 100) ];
    Group [ ([ (2, 40) ], []); ([ (3, 75) ], [ (1, 10) ]); ([], [ (2, 5) ]) ];
    Clock 1;
    Group [ ([ (1, 60); (3, 51) ], [ (3, 2) ]) ];
    Checkpoint;
    Group
      [
        ([ (4, 99) ], []);
        ([ (2, 7) ], [ (4, 2) ]);
        ([ (5, 1) ], []);
        ([ (1, 1) ], [ (1, 1) ]);
      ];
  ]

let test_group_crash_sweep () =
  let max_countdown = 8 in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          for k = 0 to max_countdown do
            check_crash_equivalence
              ~what:
                (Printf.sprintf "group: %s after %d hits (jobs=%d)" point k
                   jobs)
              ~jobs group_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done)
        [ "post-journal-write"; "post-group-write"; "view-fold" ])
    [ 1; 2; 4 ]

(* Heavy-light partition crash sweep.  A skewed key-join catalog
   maintained with a low promotion bar (2): a short hot-key stream
   promotes on the append path, and each [Rel] op bumps the relation
   version so the next fold demotes (and immediately re-promotes) every
   heavy key.  The crash points sit inside the partial-state build
   ("heavy-promote", fired before the run is installed) and teardown
   ("heavy-demote", fired before the stale run is dropped); the property
   is unchanged — recovered state ∈ {Sᵢ₋₁, Sᵢ} — because heavy state is
   ephemeral and replay rebuilds it deterministically (recovery runs
   with the same threshold). *)
let customer_schema =
  Schema.make [ ("cust", Value.TInt); ("state", Value.TStr) ]

let mk_skew_db ?jobs () =
  let db = Db.create ?jobs ~heavy_threshold:2 () in
  ignore (Db.add_chronicle db ~name:"mileage" mileage_schema);
  ignore (Db.add_chronicle db ~name:"bonus" mileage_schema);
  let cust =
    Db.add_relation db ~name:"customers" ~schema:customer_schema
      ~key:[ "cust" ] ()
  in
  List.iter
    (fun (c, s) -> Versioned.insert cust (tup [ vi c; vs s ]))
    [ (1, "NJ"); (2, "NY"); (3, "NJ"); (4, "CA"); (5, "NY") ];
  let joined =
    Ca.KeyJoinRel
      ( Ca.Chronicle (Db.chronicle db "mileage"),
        Versioned.relation cust,
        [ ("acct", "cust") ] )
  in
  ignore
    (Db.define_view db
       (Sca.define ~name:"by_state" ~body:joined
          (Sca.Group_agg ([ "state" ], [ Aggregate.sum "miles" "total" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"bonus_bal"
          ~body:(Ca.Chronicle (Db.chronicle db "bonus"))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "b" ]))));
  db

let skew_workload =
  [
    Append [ (1, 10); (2, 40) ];
    Append [ (1, 11) ] (* acct 1 crosses the bar: promote *);
    Append [ (1, 12) ] (* served from the heavy cache *);
    Rel (6, "TX") (* version bump, journaled via Ev_insert *);
    Append [ (1, 13) ] (* demote-all, then re-promote *);
    Multi ([ (1, 14) ], [ (3, 2) ]);
    Group [ ([ (1, 15) ], []); ([ (1, 16); (2, 5) ], [ (2, 1) ]) ];
    Rel (7, "OR");
    Append [ (1, 17); (3, 9) ];
    Checkpoint;
    Append [ (1, 18) ];
  ]

let test_skew_partition_crash_sweep () =
  let mk jobs = mk_skew_db ~jobs () in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          (* guard against a vacuous sweep: every point must take the
             process down at least once over the countdown range *)
          let fired = ref false in
          for k = 0 to 5 do
            check_crash_equivalence
              ~what:
                (Printf.sprintf "skew: %s after %d hits (jobs=%d)" point k
                   jobs)
              ~jobs ~mk ~heavy_threshold:2
              ~on_crashed:(fun c -> fired := !fired || c)
              skew_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done;
          if not !fired then
            Alcotest.failf "crash point %s never fired (jobs=%d)" point jobs)
        [
          Skew.p_promote;
          Skew.p_demote;
          "view-fold";
          "post-journal-write";
          "post-insert-write";
        ])
    [ 1; 2; 4 ]

(* Retraction crash sweep.  A Full-retention twin of the standard
   catalog (Db.retract refuses anything weaker), same three views.
   The crash points bracket the retraction's write-ahead window: after
   the Ev_retract record reaches the journal but before any store or
   view mutates ("post-retract-write" — recovery must finish the
   retraction from the journal, Sᵢ) and mid-fan-out while the views
   absorb the weight −1 delta ("view-fold").  The property is the
   standard crash equivalence plus replay idempotence: a recovery that
   already holds the retraction (checkpointed post-retract state) must
   skip the record, never double-retract. *)
let mk_retract_db ?jobs () =
  let db = Db.create ?jobs () in
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage" mileage_schema);
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"bonus" mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:
            (Ca.Union
               ( Ca.Chronicle (Db.chronicle db "mileage"),
                 Ca.Chronicle (Db.chronicle db "bonus") ))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  ignore
    (Db.define_view db ~index:Index.Ordered
       (Sca.define ~name:"big"
          ~body:
            (Ca.Select
               (Predicate.("miles" >% vi 50), Ca.Chronicle (Db.chronicle db "mileage")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"acct2"
          ~body:
            (Ca.Select
               (Predicate.("acct" =% vi 2), Ca.Chronicle (Db.chronicle db "bonus")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "b2" ]))));
  db

let retract_workload =
  [
    Append [ (1, 100); (2, 40) ];
    Retract 1;
    Bonus [ (1, 10) ];
    Append [ (1, 60); (3, 51); (2, 1) ];
    Retract 2 (* spans two sequence numbers: one Ev_retract record *);
    Clock 1;
    Checkpoint (* the surviving store, checkpointed mid-history *);
    Append [ (4, 99); (1, 80) ];
    Multi ([ (4, 1) ], [ (4, 2) ]);
    Retract 3;
    Group [ ([ (1, 30) ], []); ([ (5, 120) ], [ (5, 1) ]) ];
    Retract 1;
  ]

let test_retract_crash_sweep () =
  let mk jobs = mk_retract_db ~jobs () in
  let max_countdown = 8 in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          (* guard against a vacuous sweep: every point must take the
             process down at least once over the countdown range *)
          let fired = ref false in
          for k = 0 to max_countdown do
            check_crash_equivalence
              ~what:
                (Printf.sprintf "retract: %s after %d hits (jobs=%d)" point k
                   jobs)
              ~jobs ~mk
              ~on_crashed:(fun c -> fired := !fired || c)
              retract_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done;
          if not !fired then
            Alcotest.failf "crash point %s never fired (jobs=%d)" point jobs)
        [ "post-retract-write"; "post-journal-write"; "view-fold" ])
    [ 1; 2; 4 ]

let test_exhaustive_torn_sweep () =
  for k = 0 to 12 do
    for keep = 0 to 40 do
      if keep mod 7 = k mod 7 (* a deterministic diagonal sample *) then
        check_crash_equivalence
          ~what:(Printf.sprintf "torn write #%d keeping %d bytes" k keep)
          fixed_workload
          (fun fault -> Fault.arm_torn_write fault ~after:k ~keep)
    done
  done

(* ---- crashes during recovery itself ---- *)

(* The parallel replay scheduler exposes its own crash point,
   ["replay-dispatch"], hit once per window of consecutive append
   records just before the window's fold chains are dispatched.  The
   property: recovery writes nothing to storage until replay is
   complete, so a crash at any window — at any parallelism degree —
   leaves the journal and checkpoint exactly as the dying process left
   them, and a subsequent plain recovery reaches the clean final state.
   A countdown past the last window must not fire at all. *)
let replay_workload =
  (* journal shape A A | C | A A | C | A A A: three append windows
     separated by clock barriers, final record replayed alone *)
  [
    Append [ (1, 100); (2, 40) ];
    Bonus [ (1, 10) ];
    Clock 1;
    Append [ (3, 75) ];
    Multi ([ (1, 5) ], [ (2, 5) ]);
    Clock 2;
    Bonus [ (3, 2); (1, 1) ];
    Append [ (4, 99) ];
    Append [ (2, 7) ];
  ]

let test_replay_dispatch_crash_sweep () =
  let states = clean_states replay_workload in
  let final = states.(Array.length states - 1) in
  List.iter
    (fun jobs ->
      for k = 0 to 4 do
        let what = Printf.sprintf "replay-dispatch after %d hits (jobs=%d)" k jobs in
        let storage = Storage.mem () in
        let fault = Fault.create () in
        let applied, crashed =
          durable_run replay_workload ~jobs ~storage ~fault ~script:(fun _ -> ())
        in
        assert ((not crashed) && applied = List.length replay_workload);
        let rfault = Fault.create () in
        Fault.arm rfault ~after:k "replay-dispatch";
        (match Durable.recover ~jobs ~storage ~fault:rfault () with
        | d, _ ->
            (* countdown outlived the journal's windows: no crash, and
               recovery reached the clean final state *)
            if Snapshot.save (Durable.db d) <> final then
              Alcotest.failf "uncrashed recovery diverged (%s)" what
        | exception Fault.Crash _ ->
            (* mid-replay crash: storage untouched, so recovering again
               (any degree; use 1 for the sequential reference) is clean *)
            let d, report = Durable.recover ~storage () in
            if report.Durable.dropped_failed then
              Alcotest.failf "re-recovery dropped a batch (%s)" what;
            if Snapshot.save (Durable.db d) <> final then
              Alcotest.failf "re-recovery after replay crash diverged (%s)" what)
      done)
    [ 1; 2; 4 ]

let test_clean_run_recovers_exactly () =
  (* no faults at all: recovery reproduces the final state, whatever the
     interleaving of checkpoints *)
  List.iter
    (fun ops -> check_crash_equivalence ~what:"no faults" ops (fun _ -> ()))
    [
      fixed_workload;
      [ Append [ (1, 1) ] ];
      [ Checkpoint; Checkpoint ];
      [];
    ]

(* ---- self-healing storage: fallback, salvage, sync retry ---- *)

(* Run a workload durably to completion (no crash script) under a
   generation/segment configuration, leaving its layout in [storage]. *)
let durable_clean_run ?(jobs = 1) ?keep_checkpoints ?segment_bytes ops ~storage
    =
  let db = mk_db ~jobs () in
  let d = Durable.attach ?keep_checkpoints ?segment_bytes ~storage db in
  List.iter (fun op -> apply ~durable:d db op) ops;
  Durable.detach d

let clone_storage (src : Storage.t) =
  let dst = Storage.mem () in
  List.iter
    (fun name ->
      match src.Storage.read name with
      | Some bytes -> dst.Storage.write name bytes
      | None -> ())
    (src.Storage.list ());
  dst

(* Checkpoint-corruption fallback: corrupt the newest generation(s) and
   recover (strict) — recovery skips each damaged generation, replays
   the correspondingly longer journal suffix from an older one, and
   still reaches the exact clean final state. *)
let test_checkpoint_fallback_sweep () =
  let states = clean_states fixed_workload in
  let final = states.(Array.length states - 1) in
  List.iter
    (fun jobs ->
      let storage = Storage.mem () in
      durable_clean_run ~keep_checkpoints:3 fixed_workload ~storage;
      let gens = List.rev (Ckpt.generations storage) (* newest first *) in
      if List.length gens < 2 then
        Alcotest.failf "workload left %d generation(s), need >= 2"
          (List.length gens);
      List.iteri
        (fun i (_, name) ->
          (* keep the oldest generation intact as the final fallback *)
          if i < List.length gens - 1 then begin
            Fault.flip_bit storage ~name ~byte:40 ~bit:3;
            let corrupted = i + 1 in
            let before = Stats.snapshot () in
            let d, report = Durable.recover ~jobs ~storage () in
            let after = Stats.snapshot () in
            if Snapshot.save (Durable.db d) <> final then
              Alcotest.failf
                "fallback diverged (jobs=%d, %d generation(s) corrupted)" jobs
                corrupted;
            Alcotest.(check int)
              (Printf.sprintf "fallbacks (jobs=%d, %d corrupted)" jobs
                 corrupted)
              corrupted report.Durable.fallbacks;
            Alcotest.(check int)
              "Checkpoint_fallback counter" corrupted
              (Stats.diff_get before after Stats.Checkpoint_fallback);
            Alcotest.(check bool) "not degraded" false report.Durable.degraded;
            Durable.detach d
          end)
        gens;
      (* every candidate damaged: strict recovery must raise typed *)
      let _, oldest = List.nth gens (List.length gens - 1) in
      Fault.flip_bit storage ~name:oldest ~byte:40 ~bit:3;
      match Durable.recover ~jobs ~storage () with
      | _ -> Alcotest.fail "strict recovery accepted all-damaged checkpoints"
      | exception Durable.Checkpoint_corrupt _ -> ())
    [ 1; 2; 4 ]

(* Segment-corruption salvage: a group-heavy workload rotated into tiny
   segments (consecutive group records land in different segments), one
   segment corrupted mid-record.  Strict recovery raises; salvage
   recovers exactly the strict recovery of a manually-cut clone — the
   maximal consistent prefix — quarantines the damaged suffix, and opens
   the database read-only. *)
let seg_workload =
  [
    Append [ (1, 100); (2, 40) ];
    Group [ ([ (2, 40) ], []); ([ (3, 75) ], [ (1, 10) ]) ];
    Clock 1;
    Bonus [ (1, 10) ];
    Group [ ([ (1, 60); (3, 51) ], [ (3, 2) ]); ([], [ (2, 8) ]) ];
    Multi ([ (3, 75) ], [ (2, 5) ]);
    Group [ ([ (4, 99) ], [ (4, 2) ]); ([ (5, 120) ], [ (5, 1) ]) ];
    Append [ (2, 7) ];
  ]

let test_segment_salvage_sweep () =
  List.iter
    (fun jobs ->
      (* discover the segment layout once (it is deterministic) *)
      let probe = Storage.mem () in
      durable_clean_run ~segment_bytes:256 seg_workload ~storage:probe;
      let sealed = List.map snd (Journal.segments probe "journal") in
      if List.length sealed < 2 then
        Alcotest.failf "workload sealed %d segment(s), need >= 2"
          (List.length sealed);
      let sources = sealed @ [ "journal" ] in
      List.iteri
        (fun si victim ->
          let what = Printf.sprintf "jobs=%d victim=%s" jobs victim in
          let storage = Storage.mem () in
          durable_clean_run ~segment_bytes:256 seg_workload ~storage;
          let contents = Option.get (storage.Storage.read victim) in
          (* flip a bit in the last record's payload: a deterministic
             CRC mismatch, never a torn-tail ambiguity *)
          Fault.flip_bit storage ~name:victim
            ~byte:(String.length contents - 3)
            ~bit:5;
          let corrupted = Option.get (storage.Storage.read victim) in
          let cut_off =
            match Journal.scan corrupted with
            | _, Journal.Damaged d -> d.Journal.offset
            | _ -> Alcotest.failf "flip did not damage a record (%s)" what
          in
          (* strict recovery refuses, typed *)
          (match Durable.recover ~jobs ~storage () with
          | _ -> Alcotest.failf "strict recovery accepted damage (%s)" what
          | exception Journal.Journal_corrupt _ -> ());
          (* the oracle: strict recovery of a clone cut at the damage *)
          let oracle =
            let clone = clone_storage storage in
            clone.Storage.truncate victim cut_off;
            List.iteri
              (fun sj name -> if sj > si then clone.Storage.remove name)
              sources;
            let d, _ = Durable.recover ~storage:clone () in
            Snapshot.save (Durable.db d)
          in
          let before = Stats.snapshot () in
          let d, report =
            Durable.recover ~jobs ~mode:Durable.Salvage ~storage ()
          in
          let after = Stats.snapshot () in
          let db = Durable.db d in
          if Snapshot.save db <> oracle then
            Alcotest.failf "salvage diverged from cut-clone oracle (%s)" what;
          Alcotest.(check bool)
            (Printf.sprintf "degraded (%s)" what)
            true report.Durable.degraded;
          Alcotest.(check bool)
            (Printf.sprintf "quarantined (%s)" what)
            true
            (report.Durable.quarantined >= 1);
          Alcotest.(check int)
            (Printf.sprintf "Salvage_quarantined counter (%s)" what)
            report.Durable.quarantined
            (Stats.diff_get before after Stats.Salvage_quarantined);
          Alcotest.(check bool)
            (Printf.sprintf "sidecar written (%s)" what)
            true
            (storage.Storage.exists (Durable.quarantine_name victim));
          (* degraded: appends rejected with the typed error … *)
          (match Db.append db "mileage" [ row (9, 9) ] with
          | _ -> Alcotest.failf "append accepted while degraded (%s)" what
          | exception Db.Read_only _ -> ());
          (* … while queries keep serving (salvaging the very first
             segment legitimately leaves the view empty) *)
          (match Db.view_contents db "balance" with
          | _ -> ()
          | exception e ->
              Alcotest.failf "degraded database stopped serving queries (%s): %s"
                what (Printexc.to_string e));
          Durable.detach d)
        sources)
    [ 1; 2; 4 ]

(* Transient sync failures are retried with backoff and leave no trace
   in the recovered state; exhaustion degrades instead of raising. *)
let test_sync_retry_absorbs_transients () =
  let states = clean_states fixed_workload in
  let final = states.(Array.length states - 1) in
  let storage = Storage.mem () in
  let fault = Fault.create () in
  let db = mk_db () in
  let d = Durable.attach ~fault ~storage db in
  Fault.arm_sync_failures fault ~after:2 ~fails:3;
  let before = Stats.snapshot () in
  List.iter (fun op -> apply ~durable:d db op) fixed_workload;
  let after = Stats.snapshot () in
  Alcotest.(check int) "retries counted" 3
    (Stats.diff_get before after Stats.Sync_retry);
  (match Durable.health d with
  | Durable.Healthy -> ()
  | Durable.Degraded reason ->
      Alcotest.failf "degraded after transient failures: %s" reason);
  let d2, _ = Durable.recover ~storage () in
  if Snapshot.save (Durable.db d2) <> final then
    Alcotest.fail "state diverged across retried syncs"

let test_sync_exhaustion_degrades () =
  let storage = Storage.mem () in
  let fault = Fault.create () in
  let db = mk_db () in
  let d = Durable.attach ~fault ~storage db in
  ignore (Db.append db "mileage" [ row (1, 100) ]);
  Fault.arm_sync_failures fault ~fails:10;
  (* more consecutive failures than the retry budget: the next
     journaled append exhausts it; the instance degrades mid-append
     instead of raising out of [Db.append] *)
  ignore (Db.append db "mileage" [ row (2, 40) ]);
  (match Durable.health d with
  | Durable.Degraded _ -> ()
  | Durable.Healthy -> Alcotest.fail "expected degraded after exhaustion");
  (match Db.append db "mileage" [ row (3, 1) ] with
  | _ -> Alcotest.fail "append accepted on degraded instance"
  | exception Db.Read_only _ -> ());
  Alcotest.(check bool)
    "queries serve" true
    (Db.view_contents db "balance" <> []);
  (* the write-ahead record of the degrading append reached storage
     before its syncs failed: recovery sees both appends *)
  let d2, _ = Durable.recover ~storage () in
  if Snapshot.save (Durable.db d2) <> Snapshot.save db then
    Alcotest.fail "recovered state diverged from the degraded instance"

(* ---- randomized workloads (QCheck) ---- *)

let op_gen =
  QCheck.Gen.(
    let rows = list_size (int_range 0 3) (pair (int_range 1 5) (int_range 0 120)) in
    frequency
      [
        (5, map (fun r -> Append r) rows);
        (3, map (fun r -> Bonus r) rows);
        (2, map2 (fun a b -> Multi (a, b)) rows rows);
        ( 2,
          map
            (fun parts -> Group parts)
            (list_size (int_range 1 4) (pair rows rows)) );
        (2, map (fun n -> Clock (n + 1)) (int_bound 3));
        (1, return Checkpoint);
      ])

let script_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map2
            (fun p k fault -> Fault.arm fault ~after:k p)
            (oneofl crash_points) (int_bound 18) );
        ( 1,
          map2
            (fun k keep fault -> Fault.arm_torn_write fault ~after:k ~keep)
            (int_bound 10) (int_bound 40) );
        (1, return (fun _ -> ()));
      ])

let case_gen =
  QCheck.Gen.(
    triple (list_size (int_range 1 14) op_gen) script_gen (oneofl [ 1; 2; 4 ]))

let qcheck_crash_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (ops, _, jobs) ->
        Printf.sprintf "jobs=%d %s" jobs (show_ops ops))
      case_gen
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"randomized crash equivalence" arb
       (fun (ops, script, jobs) ->
         check_crash_equivalence ~what:"random" ~jobs ops script;
         true))

(* The same property over retraction-bearing workloads: the op mix
   gains Retract and the crash scripts gain the retraction's own
   write-ahead point, run against the Full-retention catalog. *)
let retract_op_gen =
  QCheck.Gen.(
    frequency [ (4, op_gen); (3, map (fun n -> Retract (n + 1)) (int_bound 2)) ])

let retract_script_gen =
  QCheck.Gen.(
    frequency
      [
        (2, script_gen);
        ( 3,
          map2
            (fun p k fault -> Fault.arm fault ~after:k p)
            (oneofl [ "post-retract-write" ]) (int_bound 6) );
      ])

let qcheck_retract_crash_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (ops, _, jobs) ->
        Printf.sprintf "jobs=%d %s" jobs (show_ops ops))
      QCheck.Gen.(
        triple
          (list_size (int_range 1 14) retract_op_gen)
          retract_script_gen (oneofl [ 1; 2; 4 ]))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"randomized retract crash equivalence"
       arb
       (fun (ops, script, jobs) ->
         check_crash_equivalence ~what:"random retract" ~jobs
           ~mk:(fun jobs -> mk_retract_db ~jobs ())
           ops script;
         true))

let () =
  Alcotest.run "chronicle-fault"
    [
      ( "fault",
        [
          Alcotest.test_case "clean runs recover exactly" `Quick
            test_clean_run_recovers_exactly;
          Alcotest.test_case "exhaustive crash-point sweep" `Quick
            test_exhaustive_crash_sweep;
          Alcotest.test_case "group-commit crash sweep" `Quick
            test_group_crash_sweep;
          Alcotest.test_case "heavy-light partition crash sweep" `Quick
            test_skew_partition_crash_sweep;
          Alcotest.test_case "retraction crash sweep" `Quick
            test_retract_crash_sweep;
          Alcotest.test_case "exhaustive torn-write sweep" `Quick
            test_exhaustive_torn_sweep;
          Alcotest.test_case "replay-dispatch crash sweep" `Quick
            test_replay_dispatch_crash_sweep;
          Alcotest.test_case "checkpoint-corruption fallback sweep" `Quick
            test_checkpoint_fallback_sweep;
          Alcotest.test_case "segment-corruption salvage sweep" `Quick
            test_segment_salvage_sweep;
          Alcotest.test_case "sync retry absorbs transients" `Quick
            test_sync_retry_absorbs_transients;
          Alcotest.test_case "sync exhaustion degrades" `Quick
            test_sync_exhaustion_degrades;
          qcheck_crash_equivalence;
          qcheck_retract_crash_equivalence;
        ] );
    ]
