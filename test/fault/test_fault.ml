(* The crash-equivalence property suite.

   For a workload W = op₁ … opₙ and a crash injected at any instrumented
   point while opᵢ executes, let Sⱼ be the state a clean (never-crashing)
   run reaches after op₁ … opⱼ.  The property:

       state(recover(storage after crash during opᵢ)) ∈ { Sᵢ₋₁, Sᵢ }

   i.e. every operation is all-or-nothing across a crash: either its
   write-ahead record reached stable storage (recovery finishes it — Sᵢ)
   or it did not (recovery yields exactly the previous state — Sᵢ₋₁).
   Nothing in between is ever observable, and no earlier operation is
   ever lost.  States are compared as canonical snapshot documents
   ({!Snapshot.save}), which cover catalog, watermarks, clocks, retained
   chronicle windows, relations and materialized views.

   Two drivers share one harness: a deterministic exhaustive sweep
   (every crash point × every countdown up to a cap, plus torn writes)
   and a QCheck property over randomized workloads and crash scripts. *)

open Relational
open Chronicle_core
open Chronicle_durability

(* durability's [Group] is the commit-group stager; the chronicle
   group of Chronicle_core is what these tests mean by [Group] *)
module Group = Chronicle_core.Group

let vi i = Value.Int i
let vf f = Value.Float f
let tup = Tuple.make

(* ---- the workload vocabulary ---- *)

type op =
  | Append of (int * int) list (* mileage rows: (acct, miles) *)
  | Bonus of (int * int) list (* bonus rows *)
  | Multi of (int * int) list * (int * int) list (* one sn, both chronicles *)
  | Group of ((int * int) list * (int * int) list) list
    (* group commit: each element is one staged append (its own sn,
       both chronicles); the whole group is one journal record and
       all-or-nothing across a crash *)
  | Clock of int (* advance by n >= 1 *)
  | Checkpoint

let show_op = function
  | Append rows ->
      "Append[" ^ String.concat ";" (List.map (fun (a, m) -> Printf.sprintf "%d:%d" a m) rows) ^ "]"
  | Bonus rows ->
      "Bonus[" ^ String.concat ";" (List.map (fun (a, m) -> Printf.sprintf "%d:%d" a m) rows) ^ "]"
  | Multi (a, b) ->
      Printf.sprintf "Multi[%d+%d rows]" (List.length a) (List.length b)
  | Group parts ->
      Printf.sprintf "Group[%s]"
        (String.concat "|"
           (List.map
              (fun (a, b) ->
                Printf.sprintf "%d+%d" (List.length a) (List.length b))
              parts))
  | Clock n -> Printf.sprintf "Clock+%d" n
  | Checkpoint -> "Checkpoint"

let show_ops ops = String.concat " " (List.map show_op ops)

let row (acct, miles) = tup [ vi acct; vi miles; vf 1. ]

let mileage_schema =
  Schema.make
    [ ("acct", Value.TInt); ("miles", Value.TInt); ("fare", Value.TFloat) ]

(* Catalog under test: two chronicles in one group (ring and discard
   retention), one relation, and three views — a grouped aggregate over
   a union of both chronicles, a guarded selection view, and a guarded
   per-account view (so batches affect one, two or three views, and a
   parallel run has real partitions to hand out). *)
let mk_db ?jobs () =
  let db = Db.create ?jobs () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 4) ~name:"mileage"
       mileage_schema);
  ignore (Db.add_chronicle db ~name:"bonus" mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:
            (Ca.Union
               ( Ca.Chronicle (Db.chronicle db "mileage"),
                 Ca.Chronicle (Db.chronicle db "bonus") ))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  ignore
    (Db.define_view db ~index:Index.Ordered
       (Sca.define ~name:"big"
          ~body:
            (Ca.Select
               (Predicate.("miles" >% vi 50), Ca.Chronicle (Db.chronicle db "mileage")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.max_ "miles" "hi" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"acct2"
          ~body:
            (Ca.Select
               (Predicate.("acct" =% vi 2), Ca.Chronicle (Db.chronicle db "bonus")))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "b2" ]))));
  db

let apply ?durable db op =
  match op with
  | Append rows -> ignore (Db.append db "mileage" (List.map row rows))
  | Bonus rows -> ignore (Db.append db "bonus" (List.map row rows))
  | Multi (a, b) ->
      ignore
        (Db.append_multi db
           [ ("mileage", List.map row a); ("bonus", List.map row b) ])
  | Group parts ->
      ignore
        (Db.append_group db
           (List.map
              (fun (a, b) ->
                [ ("mileage", List.map row a); ("bonus", List.map row b) ])
              parts))
  | Clock n -> Db.advance_clock db (Group.now (Db.default_group db) + n)
  | Checkpoint -> (
      match durable with Some d -> Durable.checkpoint d | None -> ())

(* Clean-run states S₀ … Sₙ — always computed sequentially (jobs = 1),
   so a crashed-and-recovered parallel run is checked against the
   sequential states: crash equivalence and parallel transparency in
   one comparison. *)
let clean_states ops =
  let db = mk_db () in
  (* bind S₀ before mapping: [::] evaluates right-to-left, and the map
     mutates [db] *)
  let s0 = Snapshot.save db in
  Array.of_list
    (s0
    :: List.map
         (fun op ->
           apply db op;
           Snapshot.save db)
         ops)

(* Run the workload durably with [script] armed after attach; returns
   the number of ops that completed before a crash (n = no crash). *)
let durable_run ops ~jobs ~storage ~fault ~script =
  let db = mk_db ~jobs () in
  let d = Durable.attach ~fault ~storage db in
  script fault;
  let applied = ref 0 in
  (try
     List.iter
       (fun op ->
         apply ~durable:d db op;
         incr applied)
       ops
   with Fault.Crash _ -> ());
  (!applied, Fault.is_dead fault)

(* The property itself.  [jobs] is the maintenance parallelism of the
   crashing run and of recovery; the reference states stay sequential. *)
let check_crash_equivalence ?(what = "") ?(jobs = 1) ops script =
  let states = clean_states ops in
  let storage = Storage.mem () in
  let fault = Fault.create () in
  let applied, crashed = durable_run ops ~jobs ~storage ~fault ~script in
  let d, _report = Durable.recover ~jobs ~storage () in
  let recovered = Snapshot.save (Durable.db d) in
  let ok =
    if not crashed then recovered = states.(Array.length states - 1)
    else
      recovered = states.(applied)
      || (applied + 1 < Array.length states && recovered = states.(applied + 1))
  in
  if not ok then
    Alcotest.failf
      "crash-equivalence violated (%s): crashed=%b after %d/%d ops\n\
       workload: %s"
      what crashed applied (List.length ops) (show_ops ops);
  (* recovery must be stable: recovering again changes nothing *)
  let d2, _ = Durable.recover ~storage () in
  if Snapshot.save (Durable.db d2) <> recovered then
    Alcotest.failf "recovery is not idempotent (%s): %s" what (show_ops ops)

(* ---- deterministic exhaustive sweep ---- *)

let fixed_workload =
  [
    Append [ (1, 100); (2, 40) ];
    Clock 2;
    Bonus [ (1, 10) ];
    Multi ([ (3, 75) ], [ (2, 5) ]);
    Checkpoint;
    Append [ (1, 60); (3, 51); (2, 1) ];
    Append [];
    Clock 1;
    Bonus [ (3, 2); (1, 1) ];
    Checkpoint;
    Append [ (4, 99) ];
    Multi ([ (4, 1) ], [ (4, 2) ]);
    Group [ ([ (1, 30) ], []); ([], [ (2, 8) ]); ([ (5, 120) ], [ (5, 1) ]) ];
    Clock 1;
    Group [ ([ (2, 9) ], [ (3, 4) ]) ];
  ]

let crash_points =
  [
    "post-journal-write";
    "post-group-write";
    "view-fold";
    "pre-checkpoint-rename";
    "post-checkpoint-rename";
  ]

let test_exhaustive_crash_sweep () =
  let max_countdown = 14 in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          for k = 0 to max_countdown do
            check_crash_equivalence
              ~what:(Printf.sprintf "%s after %d hits (jobs=%d)" point k jobs)
              ~jobs fixed_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done)
        crash_points)
    [ 1; 2 ];
  (* the view-fold point is the one probed concurrently from pool
     domains: sweep it at a higher degree too *)
  for k = 0 to max_countdown do
    check_crash_equivalence
      ~what:(Printf.sprintf "view-fold after %d hits (jobs=4)" k)
      ~jobs:4 fixed_workload
      (fun fault -> Fault.arm fault ~after:k "view-fold")
  done

(* Group-commit crash sweep: a group-heavy workload (the final record is
   a group) crashed inside the half-committed-group window — after the
   group record reached the journal but before any ack
   ("post-journal-write" / "post-group-write") and mid-fan-out while
   pool domains fold the combined Δ ("view-fold").  The property is the
   same crash equivalence: the recovered state is pre-group or
   post-group, never a partial group. *)
let group_workload =
  [
    Append [ (1, 100) ];
    Group [ ([ (2, 40) ], []); ([ (3, 75) ], [ (1, 10) ]); ([], [ (2, 5) ]) ];
    Clock 1;
    Group [ ([ (1, 60); (3, 51) ], [ (3, 2) ]) ];
    Checkpoint;
    Group
      [
        ([ (4, 99) ], []);
        ([ (2, 7) ], [ (4, 2) ]);
        ([ (5, 1) ], []);
        ([ (1, 1) ], [ (1, 1) ]);
      ];
  ]

let test_group_crash_sweep () =
  let max_countdown = 8 in
  List.iter
    (fun jobs ->
      List.iter
        (fun point ->
          for k = 0 to max_countdown do
            check_crash_equivalence
              ~what:
                (Printf.sprintf "group: %s after %d hits (jobs=%d)" point k
                   jobs)
              ~jobs group_workload
              (fun fault -> Fault.arm fault ~after:k point)
          done)
        [ "post-journal-write"; "post-group-write"; "view-fold" ])
    [ 1; 2; 4 ]

let test_exhaustive_torn_sweep () =
  for k = 0 to 12 do
    for keep = 0 to 40 do
      if keep mod 7 = k mod 7 (* a deterministic diagonal sample *) then
        check_crash_equivalence
          ~what:(Printf.sprintf "torn write #%d keeping %d bytes" k keep)
          fixed_workload
          (fun fault -> Fault.arm_torn_write fault ~after:k ~keep)
    done
  done

(* ---- crashes during recovery itself ---- *)

(* The parallel replay scheduler exposes its own crash point,
   ["replay-dispatch"], hit once per window of consecutive append
   records just before the window's fold chains are dispatched.  The
   property: recovery writes nothing to storage until replay is
   complete, so a crash at any window — at any parallelism degree —
   leaves the journal and checkpoint exactly as the dying process left
   them, and a subsequent plain recovery reaches the clean final state.
   A countdown past the last window must not fire at all. *)
let replay_workload =
  (* journal shape A A | C | A A | C | A A A: three append windows
     separated by clock barriers, final record replayed alone *)
  [
    Append [ (1, 100); (2, 40) ];
    Bonus [ (1, 10) ];
    Clock 1;
    Append [ (3, 75) ];
    Multi ([ (1, 5) ], [ (2, 5) ]);
    Clock 2;
    Bonus [ (3, 2); (1, 1) ];
    Append [ (4, 99) ];
    Append [ (2, 7) ];
  ]

let test_replay_dispatch_crash_sweep () =
  let states = clean_states replay_workload in
  let final = states.(Array.length states - 1) in
  List.iter
    (fun jobs ->
      for k = 0 to 4 do
        let what = Printf.sprintf "replay-dispatch after %d hits (jobs=%d)" k jobs in
        let storage = Storage.mem () in
        let fault = Fault.create () in
        let applied, crashed =
          durable_run replay_workload ~jobs ~storage ~fault ~script:(fun _ -> ())
        in
        assert ((not crashed) && applied = List.length replay_workload);
        let rfault = Fault.create () in
        Fault.arm rfault ~after:k "replay-dispatch";
        (match Durable.recover ~jobs ~storage ~fault:rfault () with
        | d, _ ->
            (* countdown outlived the journal's windows: no crash, and
               recovery reached the clean final state *)
            if Snapshot.save (Durable.db d) <> final then
              Alcotest.failf "uncrashed recovery diverged (%s)" what
        | exception Fault.Crash _ ->
            (* mid-replay crash: storage untouched, so recovering again
               (any degree; use 1 for the sequential reference) is clean *)
            let d, report = Durable.recover ~storage () in
            if report.Durable.dropped_failed then
              Alcotest.failf "re-recovery dropped a batch (%s)" what;
            if Snapshot.save (Durable.db d) <> final then
              Alcotest.failf "re-recovery after replay crash diverged (%s)" what)
      done)
    [ 1; 2; 4 ]

let test_clean_run_recovers_exactly () =
  (* no faults at all: recovery reproduces the final state, whatever the
     interleaving of checkpoints *)
  List.iter
    (fun ops -> check_crash_equivalence ~what:"no faults" ops (fun _ -> ()))
    [
      fixed_workload;
      [ Append [ (1, 1) ] ];
      [ Checkpoint; Checkpoint ];
      [];
    ]

(* ---- randomized workloads (QCheck) ---- *)

let op_gen =
  QCheck.Gen.(
    let rows = list_size (int_range 0 3) (pair (int_range 1 5) (int_range 0 120)) in
    frequency
      [
        (5, map (fun r -> Append r) rows);
        (3, map (fun r -> Bonus r) rows);
        (2, map2 (fun a b -> Multi (a, b)) rows rows);
        ( 2,
          map
            (fun parts -> Group parts)
            (list_size (int_range 1 4) (pair rows rows)) );
        (2, map (fun n -> Clock (n + 1)) (int_bound 3));
        (1, return Checkpoint);
      ])

let script_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map2
            (fun p k fault -> Fault.arm fault ~after:k p)
            (oneofl crash_points) (int_bound 18) );
        ( 1,
          map2
            (fun k keep fault -> Fault.arm_torn_write fault ~after:k ~keep)
            (int_bound 10) (int_bound 40) );
        (1, return (fun _ -> ()));
      ])

let case_gen =
  QCheck.Gen.(
    triple (list_size (int_range 1 14) op_gen) script_gen (oneofl [ 1; 2; 4 ]))

let qcheck_crash_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (ops, _, jobs) ->
        Printf.sprintf "jobs=%d %s" jobs (show_ops ops))
      case_gen
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"randomized crash equivalence" arb
       (fun (ops, script, jobs) ->
         check_crash_equivalence ~what:"random" ~jobs ops script;
         true))

let () =
  Alcotest.run "chronicle-fault"
    [
      ( "fault",
        [
          Alcotest.test_case "clean runs recover exactly" `Quick
            test_clean_run_recovers_exactly;
          Alcotest.test_case "exhaustive crash-point sweep" `Quick
            test_exhaustive_crash_sweep;
          Alcotest.test_case "group-commit crash sweep" `Quick
            test_group_crash_sweep;
          Alcotest.test_case "exhaustive torn-write sweep" `Quick
            test_exhaustive_torn_sweep;
          Alcotest.test_case "replay-dispatch crash sweep" `Quick
            test_replay_dispatch_crash_sweep;
          qcheck_crash_equivalence;
        ] );
    ]
