(* The durability layer: CRC-32, journal framing, torn/corrupt tails,
   atomic checkpoints, crash recovery and the transactional append
   rollback path. *)

open Relational
open Chronicle_core
open Chronicle_durability
open Util

(* durability's [Group] is the commit-group stager; the chronicle
   group of Chronicle_core is what these tests mean by [Group] *)
module Group = Chronicle_core.Group

(* ---- crc32 ---- *)

let test_crc32 () =
  (* the standard IEEE 802.3 check value *)
  check_int "check vector" 0xCBF43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  let a = "chronicle " and b = "journal" in
  check_int "incremental"
    (Crc32.string (a ^ b))
    (Crc32.update (Crc32.string a) b ~pos:0 ~len:(String.length b));
  check_int "substring"
    (Crc32.string "ron")
    (Crc32.sub "chronicle" ~pos:2 ~len:3)

(* ---- journal framing ---- *)

let rec_s s = Sexp.List [ Sexp.Atom "r"; Sexp.atom s ]

let test_journal_roundtrip () =
  let st = Storage.mem () in
  let j = Journal.open_ st "journal" in
  check_int "fresh journal is empty" 0 (Journal.records j);
  Journal.append j (rec_s "one");
  Journal.append j (rec_s "two");
  Journal.append j (rec_s "three");
  check_int "three records" 3 (Journal.records j);
  let records, tail = Journal.read st "journal" in
  check_bool "clean tail" true (tail = `Clean);
  check_bool "payloads survive" true
    (List.map Sexp.to_string records
    = List.map Sexp.to_string [ rec_s "one"; rec_s "two"; rec_s "three" ]);
  Journal.truncate_last j;
  check_int "truncate_last drops one" 2 (Journal.records j);
  check_int "readers agree" 2 (List.length (fst (Journal.read st "journal")));
  Journal.reset j;
  check_int "reset empties" 0 (Journal.records j);
  check_bool "still parseable" true (Journal.read st "journal" = ([], `Clean));
  (* reopening an existing journal rebuilds record boundaries *)
  Journal.append j (rec_s "four");
  let j2 = Journal.open_ st "journal" in
  check_int "reopen sees the record" 1 (Journal.records j2);
  Journal.truncate_last j2;
  check_int "reopened boundaries are exact" 0 (Journal.records j2)

let test_journal_torn_tail () =
  let st = Storage.mem () in
  let j = Journal.open_ st "journal" in
  Journal.append j (rec_s "one");
  Journal.append j (rec_s "two");
  let full = Option.get (st.Storage.size "journal") in
  (* tear the final record: cut three bytes off its payload *)
  st.Storage.truncate "journal" (full - 3);
  let records, tail = Journal.read st "journal" in
  check_bool "torn tail reported" true (tail = `Torn);
  check_int "complete prefix survives" 1 (List.length records);
  (* a writer cuts the tear off and continues *)
  let j2 = Journal.open_ st "journal" in
  check_int "tear removed on open" 1 (Journal.records j2);
  Journal.append j2 (rec_s "three");
  let records, tail = Journal.read st "journal" in
  check_bool "clean again" true (tail = `Clean);
  check_int "two records" 2 (List.length records)

let test_journal_corruption_detected () =
  let st = Storage.mem () in
  let j = Journal.open_ st "journal" in
  Journal.append j (rec_s "one");
  Journal.append j (rec_s "two");
  (* flip one bit inside the first record's payload (magic is 10 bytes,
     frame header 8): corruption, not a torn tail *)
  Fault.flip_bit st ~name:"journal" ~byte:(10 + 8 + 2) ~bit:0;
  (match Journal.read st "journal" with
  | _ -> Alcotest.fail "corruption must not read back"
  | exception Journal.Journal_corrupt { record; _ } ->
      check_int "offending record" 0 record);
  (* foreign bytes are rejected as corruption too *)
  st.Storage.write "journal" "NOTAJOURNAL....";
  check_raises_any "bad magic" (fun () -> ignore (Journal.read st "journal"))

let test_sync_policy_parse () =
  check_bool "never" true
    (Journal.sync_policy_of_string "never" = Ok Journal.Sync_never);
  check_bool "always" true
    (Journal.sync_policy_of_string "always" = Ok Journal.Sync_always);
  check_bool "every" true
    (Journal.sync_policy_of_string "every:16" = Ok (Journal.Sync_every 16));
  check_bool "garbage" true
    (match Journal.sync_policy_of_string "sometimes" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "zero interval" true
    (match Journal.sync_policy_of_string "every:0" with
    | Error _ -> true
    | Ok _ -> false)

(* ---- a standard durable database ---- *)

let mk_db () =
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 4) ~name:"mileage"
       Fixtures.mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg
             ( [ "acct" ],
               [ Aggregate.sum "miles" "balance"; Aggregate.count_star "n" ] ))));
  db

let post acct miles = Fixtures.mile acct miles 1.

let same_state msg expected actual =
  check_string msg (Snapshot.save expected) (Snapshot.save actual)

(* ---- journaling and checkpointing ---- *)

let test_attach_journals_appends () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~storage:st db in
  check_int "attach checkpoints, journal empty" 0 (Durable.journal_records d);
  let before = Stats.snapshot () in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  ignore (Db.append db "mileage" [ post 2 50; post 1 25 ]);
  let after = Stats.snapshot () in
  check_int "one journal record per batch" 2 (Durable.journal_records d);
  check_int "journal_append counted" 2
    (Stats.diff_get before after Stats.Journal_append);
  check_bool "journal_bytes counted" true
    (Stats.diff_get before after Stats.Journal_bytes
    >= Durable.journal_bytes d - 10 (* magic written before the snapshot *));
  check_bool "no replay during normal operation" true
    (Stats.diff_get before after Stats.Journal_replay = 0)

let test_checkpoint_resets_journal () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  ignore (Db.append db "mileage" [ post 2 50 ]);
  let before = Stats.snapshot () in
  Durable.checkpoint d;
  let after = Stats.snapshot () in
  check_int "checkpoint counted" 1 (Stats.diff_get before after Stats.Checkpoint);
  check_int "journal reset" 0 (Durable.journal_records d);
  check_bool "checkpoint file exists" true (st.Storage.exists "checkpoint");
  check_bool "temp file renamed away" true
    (not (st.Storage.exists "checkpoint.tmp"))

let test_recover_checkpoint_plus_journal () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  Durable.checkpoint d;
  ignore (Db.append db "mileage" [ post 2 50 ]);
  ignore (Db.append db "mileage" [ post 1 7 ]);
  let before = Stats.snapshot () in
  let d', report = Durable.recover ~storage:st () in
  let after = Stats.snapshot () in
  same_state "checkpoint + journal suffix = the database" db (Durable.db d');
  check_bool "loaded the checkpoint" true report.Durable.checkpoint_loaded;
  check_int "replayed the suffix" 2 report.Durable.replayed;
  check_int "replay counted" 2
    (Stats.diff_get before after Stats.Journal_replay);
  check_bool "no torn tail" true (not report.Durable.dropped_torn);
  (* the recovered instance keeps journaling *)
  ignore (Db.append (Durable.db d') "mileage" [ post 3 1 ]);
  ignore (Db.append db "mileage" [ post 3 1 ]);
  same_state "recovered instance stays live" db (Durable.db d')

let test_recover_without_checkpoint_dir () =
  (* nothing in storage: recovery produces a fresh empty database *)
  let st = Storage.mem () in
  check_bool "no state" true (not (Durable.has_state st));
  let d, report = Durable.recover ~storage:st () in
  check_bool "fresh" true (not report.Durable.checkpoint_loaded);
  check_int "nothing replayed" 0 report.Durable.replayed;
  check_bool "catalog is empty" true (Db.chronicle_names (Durable.db d) = [])

let test_recovery_replays_catalog () =
  (* DDL after attach lives only in the journal until the next
     checkpoint; recovery must replay it *)
  let st = Storage.mem () in
  let db = Db.create () in
  let d = Durable.attach ~storage:st db in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 4) ~name:"mileage"
       Fixtures.mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:(Ca.Chronicle (Db.chronicle db "mileage"))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))));
  ignore (Db.add_group db ~clock_start:7 "side");
  ignore
    (Db.add_relation db ~name:"customers" ~schema:Fixtures.customer_schema
       ~key:[ "cust" ] ());
  ignore (Db.append db "mileage" [ post 1 10 ]);
  Db.advance_clock db 42;
  ignore d;
  let d', report = Durable.recover ~storage:st () in
  let db' = Durable.db d' in
  same_state "catalog replayed" db db';
  check_int "four catalog records + append + clock replayed" 6
    report.Durable.replayed;
  check_int "clock replayed" 42 (Group.now (Db.default_group db'));
  check_int "side group clock" 7 (Group.now (Db.group db' "side"));
  (* drop-view is journaled too *)
  Db.drop_view db "balance";
  let d'', _ = Durable.recover ~storage:st () in
  check_bool "dropped view stays dropped" true
    (Registry.find (Db.registry (Durable.db d'')) "balance" = None)

(* ---- crash simulation and rollback ---- *)

let test_crash_after_journal_write () =
  let st = Storage.mem () in
  let db = mk_db () in
  let fault = Fault.create () in
  let d = Durable.attach ~fault ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  let wm = Group.watermark (Db.default_group db) in
  let view_before = View.to_list (Db.view db "balance") in
  Fault.arm fault "post-journal-write";
  (match Db.append db "mileage" [ post 2 50 ] with
  | _ -> Alcotest.fail "armed crash point must fire"
  | exception Fault.Crash "post-journal-write" -> ()
  | exception e -> raise e);
  (* nothing mutated in memory: the crash hit before the marks *)
  check_int "watermark unchanged" wm (Group.watermark (Db.default_group db));
  check_tuples "view unchanged" view_before (View.to_list (Db.view db "balance"));
  check_int "write-ahead record survives the crash" 2
    (Durable.journal_records d);
  (* recovery applies the journaled batch: it was durably promised *)
  let d', report = Durable.recover ~storage:st () in
  check_int "both batches replayed" 2 report.Durable.replayed;
  check_bool "batch applied after recovery" true
    (Db.summary (Durable.db d') ~view:"balance" [ vi 2 ] <> None)

let test_crash_mid_view_fold () =
  let st = Storage.mem () in
  let db = mk_db () in
  let fault = Fault.create () in
  let d = Durable.attach ~fault ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  let state_before = Snapshot.save db in
  let rollbacks = Stats.get Stats.Rollback in
  Fault.arm fault "view-fold";
  (match Db.append db "mileage" [ post 2 50 ] with
  | _ -> Alcotest.fail "armed crash point must fire"
  | exception Fault.Crash "view-fold" -> ());
  (* the in-memory instance rolled back atomically... *)
  check_string "no partially-maintained state observable" state_before
    (Snapshot.save db);
  check_int "rollback counted" (rollbacks + 1) (Stats.get Stats.Rollback);
  (* ...but the dead process could not erase its write-ahead record, so
     recovery finishes the batch *)
  check_int "record survives" 2 (Durable.journal_records d);
  let d', _ = Durable.recover ~storage:st () in
  check_bool "batch completed by recovery" true
    (Db.summary (Durable.db d') ~view:"balance" [ vi 2 ] <> None)

let test_abort_erases_journal_record () =
  (* a genuine (non-crash) mid-fold failure: the batch rolls back AND
     its write-ahead record is erased — neither survives *)
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  let state_before = Snapshot.save db in
  Db.set_fold_probe db
    (Some (fun ~view:_ ~sn:_ -> failwith "maintenance bug"));
  (match Db.append db "mileage" [ post 2 50 ] with
  | _ -> Alcotest.fail "probe failure must propagate"
  | exception Failure _ -> ());
  check_string "batch rolled back" state_before (Snapshot.save db);
  check_int "write-ahead record erased" 1 (Durable.journal_records d);
  let d', _ = Durable.recover ~storage:st () in
  check_bool "aborted batch is not resurrected" true
    (Db.summary (Durable.db d') ~view:"balance" [ vi 2 ] = None);
  same_state "recovery equals the rolled-back state" db (Durable.db d')

let test_multi_chronicle_rollback () =
  (* a failing multi-chronicle batch must roll back *every* sibling *)
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"mileage"
       Fixtures.mileage_schema);
  ignore
    (Db.add_chronicle db ~retention:Chron.Full ~name:"bonus"
       Fixtures.mileage_schema);
  ignore
    (Db.define_view db
       (Sca.define ~name:"balance"
          ~body:
            (Ca.Union
               ( Ca.Chronicle (Db.chronicle db "mileage"),
                 Ca.Chronicle (Db.chronicle db "bonus") ))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))));
  ignore (Db.append_multi db [ ("mileage", [ post 1 10 ]); ("bonus", [ post 1 5 ]) ]);
  let state_before = Snapshot.save db in
  Db.set_fold_probe db (Some (fun ~view:_ ~sn:_ -> failwith "boom"));
  (match
     Db.append_multi db [ ("mileage", [ post 2 1 ]); ("bonus", [ post 2 2 ]) ]
   with
  | _ -> Alcotest.fail "fold failure must propagate"
  | exception Failure _ -> ());
  Db.set_fold_probe db None;
  check_string "both chronicles and the view rolled back" state_before
    (Snapshot.save db);
  (* and the path works again afterwards *)
  ignore (Db.append_multi db [ ("mileage", [ post 2 1 ]); ("bonus", [ post 2 2 ]) ]);
  check_bool "recovered after rollback" true
    (Db.summary db ~view:"balance" [ vi 2 ] <> None)

let test_crash_mid_checkpoint () =
  let st = Storage.mem () in
  let db = mk_db () in
  let fault = Fault.create () in
  let d = Durable.attach ~fault ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  ignore (Db.append db "mileage" [ post 2 50 ]);
  (* crash with the temp file written but not yet renamed *)
  Fault.arm fault "pre-checkpoint-rename";
  (match Durable.checkpoint d with
  | _ -> Alcotest.fail "armed crash point must fire"
  | exception Fault.Crash "pre-checkpoint-rename" -> ());
  let d1, r1 = Durable.recover ~storage:st () in
  same_state "old checkpoint + journal still describe the db" db
    (Durable.db d1);
  check_int "journal replayed" 2 r1.Durable.replayed;
  (* crash with the checkpoint renamed but the journal not yet reset *)
  let db2 = mk_db () in
  let st2 = Storage.mem () in
  let fault2 = Fault.create () in
  let d2 = Durable.attach ~fault:fault2 ~storage:st2 db2 in
  ignore (Db.append db2 "mileage" [ post 1 100 ]);
  Fault.arm fault2 "post-checkpoint-rename";
  (match Durable.checkpoint d2 with
  | _ -> Alcotest.fail "armed crash point must fire"
  | exception Fault.Crash "post-checkpoint-rename" -> ());
  let d3, r3 = Durable.recover ~storage:st2 () in
  same_state "stale journal records are skipped idempotently" db2
    (Durable.db d3);
  check_int "nothing re-applied" 0 r3.Durable.replayed;
  check_int "stale record skipped" 1 r3.Durable.skipped

let test_torn_write_drops_batch () =
  let st = Storage.mem () in
  let db = mk_db () in
  let fault = Fault.create () in
  let d = Durable.attach ~fault ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  let state_before = Snapshot.save db in
  Fault.arm_torn_write fault ~keep:10;
  (match Db.append db "mileage" [ post 2 50 ] with
  | _ -> Alcotest.fail "torn write must crash"
  | exception Fault.Crash "torn-write" -> ());
  check_string "nothing mutated" state_before (Snapshot.save db);
  ignore d;
  let d', report = Durable.recover ~storage:st () in
  check_bool "tear detected and dropped" true report.Durable.dropped_torn;
  check_int "only the complete record replays" 1 report.Durable.replayed;
  check_bool "torn batch is gone" true
    (Db.summary (Durable.db d') ~view:"balance" [ vi 2 ] = None);
  same_state "recovery equals the pre-tear state" db (Durable.db d')

let test_corrupt_journal_rejected_at_recovery () =
  let st = Storage.mem () in
  let db = mk_db () in
  let _d = Durable.attach ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  ignore (Db.append db "mileage" [ post 2 50 ]);
  (* flip a payload bit of the first journal record *)
  Fault.flip_bit st ~name:"journal" ~byte:(10 + 8 + 4) ~bit:3;
  match Durable.recover ~storage:st () with
  | _ -> Alcotest.fail "corrupt journal must be rejected"
  | exception Journal.Journal_corrupt { record = 0; _ } -> ()

let test_disk_storage () =
  let dir = Filename.temp_file "chronicle_durability" "" in
  Sys.remove dir;
  let st = Storage.disk ~dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.file_exists p then Sys.remove p)
        [ "journal"; "checkpoint"; "checkpoint.tmp" ];
      if Sys.file_exists dir then Unix.rmdir dir)
    (fun () ->
      let db = mk_db () in
      let d = Durable.attach ~sync:(Journal.Sync_every 2) ~storage:st db in
      ignore (Db.append db "mileage" [ post 1 100 ]);
      ignore (Db.append db "mileage" [ post 2 50 ]);
      Durable.checkpoint d;
      ignore (Db.append db "mileage" [ post 3 25 ]);
      let d', report = Durable.recover ~storage:st () in
      check_bool "checkpoint loaded from disk" true
        report.Durable.checkpoint_loaded;
      check_int "suffix replayed from disk" 1 report.Durable.replayed;
      same_state "disk round trip" db (Durable.db d'))

(* ---- typed recovery errors: corruption vs application failure ---- *)

(* Each CRC-valid but structurally malformed record shape must surface
   as [Journal.Journal_corrupt] with the record index — never a bare
   [Failure] — even when the malformed record is the journal's final
   record (structural damage is not "the batch that died with the
   process"). *)
let test_malformed_records_typed_at_recovery () =
  let tagged tag fields = Sexp.List [ Sexp.Atom tag; Sexp.record fields ] in
  let shapes =
    [
      ("bare atom", Sexp.atom "junk");
      ("unknown tag", tagged "frobnicate" []);
      ( "malformed append batch entry",
        tagged "append"
          [
            ("group", Sexp.atom "main");
            ("sn", Sexp.int 1);
            ("batch", Sexp.List [ Sexp.List [ Sexp.atom "c" ] ]);
          ] );
      ("append missing fields", tagged "append" [ ("sn", Sexp.int 1) ]);
      ( "bad index kind",
        tagged "define-view"
          [ ("index", Sexp.atom "btree"); ("def", Sexp.record []) ] );
    ]
  in
  List.iter
    (fun (what, sexp) ->
      let st = Storage.mem () in
      let j = Journal.open_ st Durable.journal_file in
      Journal.append j sexp;
      match Durable.recover ~storage:st () with
      | _ -> Alcotest.failf "%s: recovery must reject the record" what
      | exception Journal.Journal_corrupt { record = 0; _ } -> ()
      | exception e ->
          Alcotest.failf "%s: wanted Journal_corrupt at record 0, got %s" what
            (Printexc.to_string e))
    shapes

(* A *well-formed* record the database cannot apply is an application
   failure, not corruption: tolerated (and erased) when final, raised
   as [Durable.Recovery_error] when records follow it. *)
let test_application_failure_vs_malformation () =
  let tagged tag fields = Sexp.List [ Sexp.Atom tag; Sexp.record fields ] in
  (* structurally valid append naming a chronicle that never existed *)
  let orphan sn =
    tagged "append"
      [
        ("group", Sexp.atom "main");
        ("sn", Sexp.int sn);
        ( "batch",
          Sexp.List
            [
              Sexp.List
                [
                  Sexp.atom "ghost";
                  Sexp.List [ Snapshot.sexp_of_tuple (post 1 100) ];
                ];
            ] );
      ]
  in
  let add_group = tagged "add-group" [ ("name", Sexp.atom "g2") ] in
  (* final record: dropped as the batch that died with the process *)
  let st = Storage.mem () in
  let j = Journal.open_ st Durable.journal_file in
  Journal.append j add_group;
  Journal.append j (orphan 1);
  let d, report = Durable.recover ~storage:st () in
  check_bool "final application failure is dropped" true
    report.Durable.dropped_failed;
  check_bool "preceding record still applied" true
    (List.mem "g2" (Db.group_names (Durable.db d)));
  (* recovery on fresh storage ends with a checkpoint, so the journal —
     failed record included — has been absorbed and reset *)
  check_int "dropped record erased from journal" 0 (Durable.journal_records d);
  (* and the recovered state must itself be recoverable *)
  let d2, report2 = Durable.recover ~storage:st () in
  check_bool "re-recovery is clean" false report2.Durable.dropped_failed;
  same_state "re-recovery round-trips" (Durable.db d) (Durable.db d2);
  (* non-final record: typed Recovery_error carrying the record index *)
  let st = Storage.mem () in
  let j = Journal.open_ st Durable.journal_file in
  Journal.append j (orphan 1);
  Journal.append j add_group;
  match Durable.recover ~storage:st () with
  | _ -> Alcotest.fail "non-final application failure must raise"
  | exception Durable.Recovery_error { record = 0; _ } -> ()
  | exception e ->
      Alcotest.failf "wanted Recovery_error at record 0, got %s"
        (Printexc.to_string e)

(* ---- self-healing storage: generations, segments, scrub ---- *)

let test_stale_checkpoint_tmp_removed () =
  let st = Storage.mem () in
  st.Storage.write Durable.checkpoint_tmp_file "half-written garbage";
  let db = mk_db () in
  let _d = Durable.attach ~storage:st db in
  check_bool "stale tmp deleted on attach" true
    (not (st.Storage.exists Durable.checkpoint_tmp_file));
  st.Storage.write Durable.checkpoint_tmp_file "half-written garbage";
  let _d', _ = Durable.recover ~storage:st () in
  check_bool "stale tmp deleted on recover" true
    (not (st.Storage.exists Durable.checkpoint_tmp_file));
  check_string "quarantine sidecar naming" "journal.3.quarantine"
    (Durable.quarantine_name "journal.3");
  check_raises_any "keep_checkpoints must be positive" (fun () ->
      ignore (Durable.attach ~keep_checkpoints:0 ~storage:(Storage.mem ()) (mk_db ())))

let test_legacy_layout_pinned () =
  (* keep_checkpoints = 1 (the default) is byte-identical to the
     pre-generation layout: exactly one bare [checkpoint] file holding
     the raw snapshot document, one [journal] file, nothing else *)
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~storage:st db in
  ignore (Db.append db "mileage" [ post 1 100 ]);
  Durable.checkpoint d;
  check_bool "exact legacy file set" true
    (st.Storage.list () = [ "checkpoint"; "journal" ]);
  check_string "bare checkpoint is the raw snapshot document"
    (Snapshot.save db)
    (Option.get (st.Storage.read "checkpoint"))

let test_generation_rotation_and_prune () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~keep_checkpoints:3 ~storage:st db in
  check_int "keep_checkpoints" 3 (Durable.keep_checkpoints d);
  check_bool "no bare checkpoint in generation mode" true
    (not (st.Storage.exists "checkpoint"));
  check_int "initial generation written" 1 (List.length (Ckpt.generations st));
  for i = 1 to 4 do
    ignore (Db.append db "mileage" [ post i (10 * i) ]);
    Durable.checkpoint d
  done;
  let gens = Ckpt.generations st in
  check_int "pruned to three generations" 3 (List.length gens);
  check_bool "the newest three retained" true (List.map fst gens = [ 2; 3; 4 ]);
  ignore (Db.append db "mileage" [ post 9 1 ]);
  let d', report = Durable.recover ~storage:st () in
  check_bool "newest generation served" true
    (report.Durable.generation = Some 4);
  check_int "suffix replayed" 1 report.Durable.replayed;
  check_int "no fallbacks on a healthy layout" 0 report.Durable.fallbacks;
  same_state "generation round trip" db (Durable.db d')

let test_segment_rotation_and_recovery () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~segment_bytes:160 ~storage:st db in
  for i = 1 to 8 do
    ignore (Db.append db "mileage" [ post i i ])
  done;
  ignore d;
  check_bool "journal rotated into sealed segments" true
    (List.length (Journal.segments st "journal") >= 2);
  check_bool "the active journal keeps the bare name" true
    (st.Storage.exists "journal");
  let d', report = Durable.recover ~storage:st () in
  check_int "all records replayed across segments" 8 report.Durable.replayed;
  same_state "segment round trip" db (Durable.db d');
  (* both instances append one more batch and stay in lockstep *)
  ignore (Db.append (Durable.db d') "mileage" [ post 9 9 ]);
  ignore (Db.append db "mileage" [ post 9 9 ]);
  same_state "recovered instance stays live across segments" db
    (Durable.db d')

let test_scrub_inventory () =
  let st = Storage.mem () in
  let db = mk_db () in
  let d = Durable.attach ~keep_checkpoints:2 ~segment_bytes:160 ~storage:st db in
  for i = 1 to 4 do
    ignore (Db.append db "mileage" [ post i i ])
  done;
  Durable.checkpoint d;
  for i = 5 to 7 do
    ignore (Db.append db "mileage" [ post i i ])
  done;
  let contents () =
    List.map (fun n -> (n, st.Storage.read n)) (st.Storage.list ())
  in
  let bytes_before = contents () in
  let before = Stats.snapshot () in
  let inv = Scrub.run st in
  let after = Stats.snapshot () in
  check_bool "clean storage scrubs clean" true (Scrub.clean inv);
  check_int "both generations inventoried" 2
    (List.length inv.Scrub.checkpoints);
  let total =
    List.fold_left (fun acc s -> acc + s.Scrub.records) 0 inv.Scrub.segments
  in
  check_bool "records were verified" true (total >= 7);
  check_int "every verified record counted" total
    (Stats.diff_get before after Stats.Scrub_record);
  check_bool "scrub is read-only" true (contents () = bytes_before);
  (* damage one sealed segment: flip a bit in record 0's CRC field *)
  let _, seg = List.hd (Journal.segments st "journal") in
  Fault.flip_bit st ~name:seg ~byte:14 ~bit:1;
  let inv2 = Scrub.run st in
  check_bool "damage detected" true (not (Scrub.clean inv2));
  check_bool "damage located in the right segment" true
    (List.exists
       (fun s ->
         s.Scrub.seg_name = seg
         &&
         match s.Scrub.seg_damage with
         | Some { Journal.index = 0; _ } -> true
         | _ -> false)
       inv2.Scrub.segments);
  (* a damaged generation is inventoried too *)
  let _, gname = List.hd (Ckpt.generations st) in
  Fault.flip_bit st ~name:gname ~byte:12 ~bit:0;
  let inv3 = Scrub.run st in
  check_bool "checkpoint damage detected" true
    (List.exists
       (fun c -> c.Scrub.ck_name = gname && c.Scrub.ck_damage <> None)
       inv3.Scrub.checkpoints)

let suite =
  [
    test "crc32 vectors" test_crc32;
    test "journal framing roundtrip" test_journal_roundtrip;
    test "torn tails are tolerated" test_journal_torn_tail;
    test "checksum corruption is detected" test_journal_corruption_detected;
    test "sync policies parse" test_sync_policy_parse;
    test "attach journals every batch" test_attach_journals_appends;
    test "checkpoint resets the journal" test_checkpoint_resets_journal;
    test "recover = checkpoint + journal suffix" test_recover_checkpoint_plus_journal;
    test "recover from empty storage" test_recover_without_checkpoint_dir;
    test "recovery replays catalog changes" test_recovery_replays_catalog;
    test "crash after journal write" test_crash_after_journal_write;
    test "crash mid view fold" test_crash_mid_view_fold;
    test "genuine aborts erase their record" test_abort_erases_journal_record;
    test "multi-chronicle batches roll back atomically" test_multi_chronicle_rollback;
    test "crash mid checkpoint (both sides of the rename)" test_crash_mid_checkpoint;
    test "torn write drops exactly the torn batch" test_torn_write_drops_batch;
    test "corrupt journals are rejected at recovery" test_corrupt_journal_rejected_at_recovery;
    test "malformed records are typed corruption" test_malformed_records_typed_at_recovery;
    test "application failure vs malformation" test_application_failure_vs_malformation;
    test "disk-backed storage" test_disk_storage;
    test "stale checkpoint.tmp is removed" test_stale_checkpoint_tmp_removed;
    test "keep_checkpoints = 1 pins the legacy layout" test_legacy_layout_pinned;
    test "checkpoint generations rotate and prune" test_generation_rotation_and_prune;
    test "journal segments rotate and recover" test_segment_rotation_and_recovery;
    test "scrub inventories damage read-only" test_scrub_inventory;
  ]
