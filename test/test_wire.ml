(* The wire codec and the server's per-connection protocol machine:
   encode∘decode = id over varints, typed values, requests, responses
   and frame streams (qcheck), plus a frame fuzzer — truncated,
   bit-flipped, oversized and unknown-opcode frames must yield a typed
   protocol error and a clean close, never a crash, a hang, or a
   mutation of the shared database. *)

open Relational
open Chronicle_core
open Chronicle_net
open Util

(* ---- round-trip helpers: compare re-encoded bytes, so Float
   payloads (NaN included) are compared by bit pattern, not by [=] *)

let enc_value v =
  let b = Buffer.create 16 in
  Wire.put_value b v;
  Buffer.contents b

let dec_value s =
  let r = Wire.reader s in
  let v = Wire.value r in
  Wire.expect_end r;
  v

(* ---- directed codec tests ---- *)

let test_varint_boundaries () =
  let round i =
    let b = Buffer.create 10 in
    Wire.put_uvarint b i;
    let s = Buffer.contents b in
    let r = Wire.reader s in
    let i' = Wire.uvarint r in
    Wire.expect_end r;
    check_bool (Printf.sprintf "uvarint %d" i) true (i = i');
    String.length s
  in
  check_int "0 is 1 byte" 1 (round 0);
  check_int "127 is 1 byte" 1 (round 127);
  check_int "128 is 2 bytes" 2 (round 128);
  ignore (round 300);
  ignore (round max_int);
  check_int "negatives are 9 bytes" 9 (round (-1));
  check_int "min_int is 9 bytes" 9 (round min_int);
  let zround i =
    let b = Buffer.create 10 in
    Wire.put_int b i;
    let r = Wire.reader (Buffer.contents b) in
    let i' = Wire.int_ r in
    Wire.expect_end r;
    check_bool (Printf.sprintf "zigzag %d" i) true (i = i');
    Buffer.length b
  in
  check_int "zigzag -1 is 1 byte" 1 (zround (-1));
  check_int "zigzag 1 is 1 byte" 1 (zround 1);
  ignore (zround max_int);
  ignore (zround min_int)

let test_value_nan () =
  let nan_bits = Int64.bits_of_float Float.nan in
  match dec_value (enc_value (Value.Float Float.nan)) with
  | Value.Float f ->
      check_bool "NaN bit pattern survives" true
        (Int64.equal nan_bits (Int64.bits_of_float f))
  | _ -> Alcotest.fail "NaN did not decode as a Float"

let test_malformed_fields () =
  let decode_err what f =
    match f () with
    | exception Wire.Decode_error _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Decode_error")
  in
  (* over-long varint: ten continuation bytes *)
  decode_err "over-long varint" (fun () ->
      Wire.uvarint (Wire.reader (String.make 10 '\x80')));
  (* truncated varint *)
  decode_err "truncated varint" (fun () ->
      Wire.uvarint (Wire.reader "\x80"));
  (* string length past the payload *)
  decode_err "string length past end" (fun () ->
      Wire.string_ (Wire.reader "\x05ab"));
  (* unknown value tag *)
  decode_err "unknown value tag" (fun () -> Wire.value (Wire.reader "\x09"));
  (* trailing garbage after a well-formed body *)
  decode_err "trailing garbage" (fun () ->
      Protocol.decode_request ("\x04" ^ "junk"));
  (* unknown opcode *)
  decode_err "unknown opcode" (fun () -> Protocol.decode_request "\x7f");
  (* empty payload *)
  decode_err "empty payload" (fun () -> Protocol.decode_request "");
  (* declared frame length over the cap *)
  let b = Buffer.create 10 in
  Wire.put_uvarint b (Wire.max_frame + 1);
  decode_err "oversized frame" (fun () ->
      ignore (Wire.split (Buffer.contents b) ~pos:0));
  (* negative declared frame length (64th-bit games) *)
  let b = Buffer.create 10 in
  Wire.put_uvarint b (-1);
  decode_err "negative frame length" (fun () ->
      ignore (Wire.split (Buffer.contents b) ~pos:0))

(* ---- generators ---- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun i -> Value.Int i) (oneofl [ 0; 1; -1; max_int; min_int ]);
        map (fun f -> Value.Float f) float;
        map (fun s -> Value.Str s) (string_size (0 -- 12));
      ])

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Protocol.Stmt s) (string_size (0 -- 40));
        map2
          (fun c rows -> Protocol.Append { chronicle = c; rows })
          (string_size (1 -- 8))
          (list_size (0 -- 4) (list_size (0 -- 4) value_gen));
        map2
          (fun c rows -> Protocol.Retract { chronicle = c; rows })
          (string_size (1 -- 8))
          (list_size (0 -- 4) (list_size (0 -- 4) value_gen));
        return Protocol.Flush;
        return Protocol.Ping;
        return Protocol.Shutdown;
      ])

let response_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Protocol.Result s) (string_size (0 -- 40));
        map3
          (fun c sn count -> Protocol.Ack { chronicle = c; sn; count })
          (string_size (1 -- 8))
          int small_nat;
        map2
          (fun kind message -> Protocol.Err { kind; message })
          (oneofl
             Protocol.[ E_protocol; E_parse; E_semantic; E_exec ])
          (string_size (0 -- 40));
        return Protocol.Flushed;
        return Protocol.Pong;
        return Protocol.Bye;
      ])

let payload_of_frame frame =
  match Wire.split frame ~pos:0 with
  | `Frame (payload, next) when next = String.length frame -> payload
  | _ -> Alcotest.fail "encoder produced a non-frame"

(* ---- qcheck round-trips ---- *)

let qcheck_value_roundtrip =
  qtest ~count:500 "value encode∘decode = id" (QCheck.make value_gen) (fun v ->
      enc_value (dec_value (enc_value v)) = enc_value v)

let qcheck_request_roundtrip =
  qtest ~count:500 "request encode∘decode = id" (QCheck.make request_gen)
    (fun req ->
      let frame = Protocol.encode_request req in
      let req' = Protocol.decode_request (payload_of_frame frame) in
      Protocol.encode_request req' = frame)

let qcheck_response_roundtrip =
  qtest ~count:500 "response encode∘decode = id" (QCheck.make response_gen)
    (fun resp ->
      let frame = Protocol.encode_response resp in
      let resp' = Protocol.decode_response (payload_of_frame frame) in
      Protocol.encode_response resp' = frame)

let qcheck_stream_split =
  qtest ~count:200 "frame streams split back into the same frames"
    (QCheck.make QCheck.Gen.(list_size (0 -- 6) request_gen))
    (fun reqs ->
      let frames = List.map Protocol.encode_request reqs in
      let stream = String.concat "" frames in
      let rec split pos acc =
        match Wire.split stream ~pos with
        | `Need_more -> List.rev acc
        | `Frame (payload, next) -> split next (payload :: acc)
      in
      let payloads = split 0 [] in
      List.length payloads = List.length reqs
      && List.for_all2
           (fun p f -> Wire.frame p = f)
           payloads frames)

let qcheck_prefixes_need_more =
  qtest ~count:200 "every strict frame prefix is Need_more, not an error"
    (QCheck.make request_gen) (fun req ->
      let frame = Protocol.encode_request req in
      let ok = ref true in
      for k = 0 to String.length frame - 1 do
        match Wire.split (String.sub frame 0 k) ~pos:0 with
        | `Need_more -> ()
        | `Frame _ -> ok := false
        | exception _ -> ok := false
      done;
      !ok)

(* ---- the frame fuzzer, codec level: a corrupted frame either still
   decodes (the flip landed somewhere harmless or produced another
   valid encoding) or raises Decode_error — never anything else ---- *)

let flip_bit s bit =
  let b = Bytes.of_string s in
  let i = bit / 8 mod Bytes.length b in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let qcheck_bitflip_codec =
  qtest ~count:1000 "bit-flipped frames: decode or Decode_error, nothing else"
    (QCheck.make QCheck.Gen.(pair request_gen (int_bound 10_000)))
    (fun (req, bit) ->
      let mutated = flip_bit (Protocol.encode_request req) bit in
      match Wire.split mutated ~pos:0 with
      | `Need_more -> true (* the flip hit the length prefix *)
      | `Frame (payload, _) -> (
          match Protocol.decode_request payload with
          | _ -> true
          | exception Wire.Decode_error _ -> true
          | exception _ -> false)
      | exception Wire.Decode_error _ -> true
      | exception _ -> false)

(* ---- the protocol machine: typed error, clean close, no db
   mutation ---- *)

let machine () =
  let db = Db.create () in
  let server = Server.create db in
  (server, Server.accept server)

let responses bytes =
  let rec go pos acc =
    match Wire.split bytes ~pos with
    | `Need_more ->
        if pos = String.length bytes then List.rev acc
        else Alcotest.fail "server produced a partial response frame"
    | `Frame (payload, next) ->
        go next (Protocol.decode_response payload :: acc)
  in
  go 0 []

let feed conn req = responses (Server.feed conn (Protocol.encode_request req))

let test_machine_stmt () =
  let _, conn = machine () in
  (match feed conn (Protocol.Stmt "CREATE CHRONICLE t (a INT);") with
  | [ Protocol.Result "created t" ] -> ()
  | _ -> Alcotest.fail "CREATE did not answer Result");
  match
    feed conn
      (Protocol.Append { chronicle = "t"; rows = [ [ Value.Int 7 ] ] })
  with
  | [ Protocol.Ack { chronicle = "t"; sn = 1; count = 1 } ] -> ()
  | _ -> Alcotest.fail "APPEND did not ack at sn 1"

let test_machine_batched_acks () =
  let _, conn = machine () in
  let results =
    feed conn
      (Protocol.Stmt "CREATE CHRONICLE t (a INT); SET BATCH 2;")
  in
  check_int "two results" 2 (List.length results);
  let ap n = Protocol.Append { chronicle = "t"; rows = [ [ Value.Int n ] ] } in
  (match feed conn (ap 1) with
  | [] -> ()
  | _ -> Alcotest.fail "first staged append must not answer yet");
  (* the second append reaches the threshold: the group commits and
     both deferred acks arrive, in watermark order *)
  (match feed conn (ap 2) with
  | [
      Protocol.Ack { sn = 1; count = 1; _ }; Protocol.Ack { sn = 2; count = 1; _ };
    ] ->
      ()
  | _ -> Alcotest.fail "threshold flush must deliver both acks in order");
  match feed conn Protocol.Flush with
  | [ Protocol.Flushed ] -> ()
  | _ -> Alcotest.fail "FLUSH with nothing staged answers just FLUSHED"

let test_machine_byte_at_a_time () =
  let _, conn = machine () in
  let stream =
    Protocol.encode_request (Protocol.Stmt "CREATE CHRONICLE t (a INT);")
    ^ Protocol.encode_request Protocol.Ping
  in
  let out = Buffer.create 64 in
  String.iter
    (fun c -> Buffer.add_string out (Server.feed conn (String.make 1 c)))
    stream;
  match responses (Buffer.contents out) with
  | [ Protocol.Result "created t"; Protocol.Pong ] -> ()
  | _ -> Alcotest.fail "byte-at-a-time delivery must produce the same answers"

let test_machine_retract () =
  let _, conn = machine () in
  (match
     feed conn (Protocol.Stmt "CREATE CHRONICLE t (a INT) RETAIN FULL;")
   with
  | [ Protocol.Result "created t" ] -> ()
  | _ -> Alcotest.fail "CREATE did not answer Result");
  ignore
    (feed conn
       (Protocol.Append
          { chronicle = "t"; rows = [ [ Value.Int 7 ]; [ Value.Int 8 ] ] }));
  (* the binary opcode renders exactly like a local RETRACT FROM *)
  (match
     feed conn (Protocol.Retract { chronicle = "t"; rows = [ [ Value.Int 7 ] ] })
   with
  | [ Protocol.Result "retracted 1 row(s) from t" ] -> ()
  | _ -> Alcotest.fail "RETRACT did not answer the rendered result");
  (* retracting an occurrence that is no longer stored is a semantic
     error, and the session stays usable *)
  (match
     feed conn (Protocol.Retract { chronicle = "t"; rows = [ [ Value.Int 7 ] ] })
   with
  | [ Protocol.Err { kind = Protocol.E_semantic; _ } ] -> ()
  | _ -> Alcotest.fail "double retract must answer a semantic error");
  match feed conn Protocol.Ping with
  | [ Protocol.Pong ] -> ()
  | _ -> Alcotest.fail "a semantic error must not close the connection"

let test_machine_protocol_error_closes () =
  let server, conn = machine () in
  ignore (feed conn (Protocol.Stmt "CREATE CHRONICLE t (a INT);"));
  let before = Snapshot.sexp_of_db (Server.db server) in
  (* an unknown opcode in a well-formed frame *)
  (match responses (Server.feed conn (Wire.frame "\x7f")) with
  | [ Protocol.Err { kind = Protocol.E_protocol; _ } ] -> ()
  | _ -> Alcotest.fail "unknown opcode must answer a typed protocol error");
  check_bool "connection is closing" true (Server.closing conn);
  check_bool "closed connections ignore further input" true
    (Server.feed conn (Protocol.encode_request Protocol.Ping) = "");
  check_bool "the database was not touched" true
    (before = Snapshot.sexp_of_db (Server.db server))

let test_machine_parse_error_keeps_session () =
  let _, conn = machine () in
  (match feed conn (Protocol.Stmt "NOT A STATEMENT") with
  | [ Protocol.Err { kind = Protocol.E_parse; _ } ] -> ()
  | _ -> Alcotest.fail "garbage text must answer a parse error");
  match feed conn Protocol.Ping with
  | [ Protocol.Pong ] -> ()
  | _ -> Alcotest.fail "a parse error must not close the connection"

let qcheck_bitflip_machine =
  qtest ~count:500
    "bit-flipped frames through the machine: answer or typed close, never \
     an exception"
    (QCheck.make QCheck.Gen.(pair request_gen (int_bound 10_000)))
    (fun (req, bit) ->
      let server, conn = machine () in
      let before = Snapshot.sexp_of_db (Server.db server) in
      let mutated = flip_bit (Protocol.encode_request req) bit in
      match Server.feed conn mutated with
      | exception _ -> false
      | out -> (
          match responses out with
          | exception _ -> false
          | resps ->
              (* a frame that failed to decode must not have touched
                 the database and must close the connection after its
                 typed error *)
              let protocol_err =
                List.exists
                  (function
                    | Protocol.Err { kind = Protocol.E_protocol; _ } -> true
                    | _ -> false)
                  resps
              in
              (not protocol_err)
              || Server.closing conn
                 && before = Snapshot.sexp_of_db (Server.db server)))

let qcheck_junk_machine =
  qtest ~count:500 "random byte junk never crashes the machine"
    (QCheck.make QCheck.Gen.(string_size (0 -- 64)))
    (fun junk ->
      let _, conn = machine () in
      match Server.feed conn junk with
      | exception _ -> false
      | out -> ( match responses out with _ -> true | exception _ -> false))

(* ---- the client-side statement splitter ---- *)

let test_split_statements () =
  let check_chunks msg src expected =
    Alcotest.(check (list string)) msg expected (Client.split_statements src)
  in
  check_chunks "plain" "a; b;" [ "a;"; " b;" ];
  check_chunks "semicolon in string" "x 'a;b';" [ "x 'a;b';" ];
  check_chunks "escaped quote" "x 'it''s; fine';" [ "x 'it''s; fine';" ];
  check_chunks "comment hides ;" "a -- no ; here\n;" [ "a -- no ; here\n;" ];
  check_chunks "blank tail dropped" "a; \n-- tail\n" [ "a;" ];
  check_chunks "non-blank tail kept" "a; b" [ "a;"; " b" ];
  (* the invariant fast-append relies on: chunks parse 1:1 *)
  let src =
    "CREATE CHRONICLE t (a INT, s STRING);\n\
     APPEND INTO t VALUES (1, 'semi;colon'); -- trailing ; comment\n\
     SHOW VIEW v;"
  in
  let chunks = Client.split_statements src in
  check_int "one chunk per statement" 3 (List.length chunks);
  List.iter
    (fun chunk ->
      check_int "chunk parses to exactly one statement" 1
        (List.length (Chronicle_lang.Parser.parse chunk)))
    chunks

let suite =
  [
    test "varint boundaries" test_varint_boundaries;
    test "NaN float round-trip" test_value_nan;
    test "malformed fields are typed errors" test_malformed_fields;
    qcheck_value_roundtrip;
    qcheck_request_roundtrip;
    qcheck_response_roundtrip;
    qcheck_stream_split;
    qcheck_prefixes_need_more;
    qcheck_bitflip_codec;
    test "machine: statements and the append fast path" test_machine_stmt;
    test "machine: batched acks resolve in watermark order"
      test_machine_batched_acks;
    test "machine: byte-at-a-time delivery" test_machine_byte_at_a_time;
    test "machine: the retract opcode" test_machine_retract;
    test "machine: protocol errors close cleanly" test_machine_protocol_error_closes;
    test "machine: parse errors keep the session" test_machine_parse_error_keeps_session;
    qcheck_bitflip_machine;
    qcheck_junk_machine;
    test "client statement splitter" test_split_statements;
  ]
