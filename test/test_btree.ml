open Relational
open Util

module T = Btree.Make (Int)

let test_empty () =
  let t = T.create () in
  check_int "length" 0 (T.length t);
  check_bool "is_empty" true (T.is_empty t);
  check_bool "find" true (T.find t 42 = None);
  check_bool "min" true (T.min_binding t = None);
  check_bool "max" true (T.max_binding t = None);
  T.check_invariants t

let test_insert_find () =
  let t = T.create ~degree:4 () in
  for i = 1 to 100 do
    Alcotest.check Alcotest.(option int) "fresh insert" None (T.insert t (i * 7 mod 101) i)
  done;
  T.check_invariants t;
  check_int "length" 100 (T.length t);
  for i = 1 to 100 do
    Alcotest.check Alcotest.(option int) "find" (Some i) (T.find t (i * 7 mod 101))
  done;
  check_bool "absent" true (T.find t 999 = None)

let test_replace () =
  let t = T.create () in
  ignore (T.insert t 1 "a");
  Alcotest.check Alcotest.(option string) "old value" (Some "a") (T.insert t 1 "b");
  Alcotest.check Alcotest.(option string) "new value" (Some "b") (T.find t 1);
  check_int "length unchanged" 1 (T.length t)

let test_ordered_iteration () =
  let t = T.create ~degree:4 () in
  List.iter (fun k -> ignore (T.insert t k (k * 10))) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  Alcotest.check Alcotest.(list int) "ascending keys"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.map fst (T.to_list t));
  check_bool "min" true (T.min_binding t = Some (0, 0));
  check_bool "max" true (T.max_binding t = Some (9, 90))

let test_range () =
  let t = T.create ~degree:4 () in
  for i = 0 to 99 do
    ignore (T.insert t i (i * 2))
  done;
  let collect ?lo ?hi () =
    let acc = ref [] in
    T.iter_range ?lo ?hi (fun k _ -> acc := k :: !acc) t;
    List.rev !acc
  in
  Alcotest.check Alcotest.(list int) "inclusive bounds"
    [ 10; 11; 12; 13; 14; 15 ]
    (collect ~lo:10 ~hi:15 ());
  check_int "open lo" 16 (List.length (collect ~hi:15 ()));
  check_int "open hi" 10 (List.length (collect ~lo:90 ()));
  check_int "full" 100 (List.length (collect ()));
  check_int "empty range" 0 (List.length (collect ~lo:200 ~hi:300 ()))

let test_remove () =
  let t = T.create ~degree:4 () in
  for i = 0 to 49 do
    ignore (T.insert t i i)
  done;
  Alcotest.check Alcotest.(option int) "remove hit" (Some 25) (T.remove t 25);
  Alcotest.check Alcotest.(option int) "remove miss" None (T.remove t 25);
  check_int "length" 49 (T.length t);
  check_bool "gone" true (T.find t 25 = None);
  T.check_invariants t;
  (* drain everything *)
  for i = 0 to 49 do
    ignore (T.remove t i)
  done;
  check_int "drained" 0 (T.length t);
  T.check_invariants t;
  (* reusable after drain *)
  ignore (T.insert t 5 55);
  Alcotest.check Alcotest.(option int) "reinsert" (Some 55) (T.find t 5)

let test_update () =
  let t = T.create () in
  T.update t 3 (function None -> Some 1 | Some _ -> assert false);
  T.update t 3 (function Some v -> Some (v + 10) | None -> assert false);
  Alcotest.check Alcotest.(option int) "updated" (Some 11) (T.find t 3);
  T.update t 3 (fun _ -> None);
  check_bool "removed via update" true (T.find t 3 = None)

let test_height_logarithmic () =
  let t = T.create ~degree:8 () in
  for i = 0 to 9999 do
    ignore (T.insert t i i)
  done;
  T.check_invariants t;
  check_bool "height is O(log n)" true (T.height t <= 7)

let test_node_visits_logarithmic () =
  let t = T.create ~degree:8 () in
  for i = 0 to 9999 do
    ignore (T.insert t i i)
  done;
  let before = Stats.snapshot () in
  ignore (T.find t 5000);
  let after = Stats.snapshot () in
  let visits = Stats.diff_get before after Stats.Index_node_visit in
  check_bool
    (Printf.sprintf "one probe visits <= height nodes (%d)" visits)
    true
    (visits <= T.height t)

let test_find_map () =
  let t = T.create ~degree:4 () in
  for i = 0 to 99 do
    ignore (T.insert t i (i * 2))
  done;
  Alcotest.check Alcotest.(option int) "hit maps the value" (Some 85)
    (T.find_map t 40 (fun v -> Some (v + 5)));
  Alcotest.check Alcotest.(option int) "hit may decline" None
    (T.find_map t 40 (fun _ -> None));
  let called = ref false in
  Alcotest.check Alcotest.(option int) "absent key: f not called" None
    (T.find_map t 999 (fun v ->
         called := true;
         Some v));
  check_bool "f untouched on miss" false !called

let test_find_map_one_descent () =
  let t = T.create ~degree:8 () in
  for i = 0 to 9999 do
    ignore (T.insert t i i)
  done;
  let before = Stats.snapshot () in
  ignore (T.find_map t 5000 (fun v -> Some v));
  let after = Stats.snapshot () in
  check_int "one probe" 1 (Stats.diff_get before after Stats.Index_probe);
  check_bool "visits bounded by height" true
    (Stats.diff_get before after Stats.Index_node_visit <= T.height t)

module Model = Map.Make (Int)

let qcheck_against_map_model =
  let gen = QCheck.(list (pair (int_bound 200) (oneofl [ `Add; `Del ]))) in
  qtest ~count:300 "agrees with Map (random insert/remove interleavings)" gen
    (fun ops ->
      let t = T.create ~degree:4 () in
      let final =
        List.fold_left
          (fun model (k, op) ->
            match op with
            | `Add ->
                ignore (T.insert t k (k * 3));
                Model.add k (k * 3) model
            | `Del ->
                ignore (T.remove t k);
                Model.remove k model)
          Model.empty ops
      in
      T.check_invariants t;
      T.length t = Model.cardinal final
      && List.equal
           (fun (k1, v1) (k2, v2) -> k1 = k2 && v1 = v2)
           (T.to_list t) (Model.bindings final))

let qcheck_range_matches_map =
  let gen =
    QCheck.(triple (list (int_bound 100)) (int_bound 100) (int_bound 100))
  in
  qtest "iter_range agrees with Map filtering" gen (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = T.create ~degree:4 () in
      let model =
        List.fold_left
          (fun m k ->
            ignore (T.insert t k (k * 2));
            Model.add k (k * 2) m)
          Model.empty keys
      in
      let got = ref [] in
      T.iter_range ~lo ~hi (fun k v -> got := (k, v) :: !got) t;
      let expected =
        List.filter (fun (k, _) -> k >= lo && k <= hi) (Model.bindings model)
      in
      List.rev !got = expected)

let suite =
  [
    test "empty tree" test_empty;
    test "insert and find across splits" test_insert_find;
    test "replace returns previous binding" test_replace;
    test "iteration is in key order" test_ordered_iteration;
    test "range scans" test_range;
    test "remove, drain, reuse" test_remove;
    test "update" test_update;
    test "height stays logarithmic" test_height_logarithmic;
    test "probe visits bounded by height" test_node_visits_logarithmic;
    test "find_map probes and maps at the leaf" test_find_map;
    test "find_map costs one descent" test_find_map_one_descent;
    qcheck_against_map_model;
    qcheck_range_matches_map;
  ]
