(* Parallel maintenance is transparent: for any view set and any batch
   sequence, running the database at jobs ∈ {2,4,8} leaves every
   persistent view in exactly the state the sequential run produces —
   including insertion order (each view is folded wholly by one task)
   — and performs exactly the same maintenance work (the economics
   counters agree).  This is the property that lets every layer above
   [Db] ignore the parallelism entirely. *)

open Relational
open Chronicle_core
open Util

(* ---- scenario description (pure data, so one scenario can be run
   under several degrees) ---- *)

type vspec = {
  vname : string;
  chron : int; (* 0 or 1 *)
  guard : int option; (* Some a: SELECT acct = a above the chronicle *)
  early : bool; (* defined before any appends (Δ-only) or after some
                   history (exercises parallel initial
                   materialization) *)
}

type step =
  | Append of int * (int * int) list (* chron, (acct, miles) rows *)
  | Append_multi of (int * (int * int) list) list

type scenario = { views : vspec list; pre : step list; post : step list }

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]
let row (acct, miles) = tup [ vi acct; vi miles ]

(* Watched economics counters: the work a maintenance pass performs.
   (Plan counters are excluded on purpose: registration warms caches
   identically at every degree, but materialization re-compiles
   per-call.) *)
let watched = Stats.[ Tuple_write; Agg_step; Group_lookup; Index_probe ]

type outcome = {
  contents : (string * Tuple.t list) list; (* per view, in store order *)
  work : int list; (* watched counter deltas *)
}

let run_scenario ~jobs s =
  let db = Db.create ~jobs () in
  (* full retention so late view definitions can materialize from
     history (the parallel initial-materialization path) *)
  let chrons =
    [|
      Db.add_chronicle db ~retention:Chron.Full ~name:"c0" schema;
      Db.add_chronicle db ~retention:Chron.Full ~name:"c1" schema;
    |]
  in
  let define v =
    let base = Ca.Chronicle chrons.(v.chron) in
    let body =
      match v.guard with
      | None -> base
      | Some a -> Ca.Select (Predicate.("acct" =% vi a), base)
    in
    ignore
      (Db.define_view db
         (Sca.define ~name:v.vname ~body
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))))
  in
  let apply = function
    | Append (c, rows) ->
        ignore (Db.append db (Chron.name chrons.(c)) (List.map row rows))
    | Append_multi parts ->
        ignore
          (Db.append_multi db
             (List.map
                (fun (c, rows) -> (Chron.name chrons.(c), List.map row rows))
                parts))
  in
  List.iter define (List.filter (fun v -> v.early) s.views);
  List.iter apply s.pre;
  let before = Stats.snapshot () in
  List.iter define (List.filter (fun v -> not v.early) s.views);
  List.iter apply s.post;
  let after = Stats.snapshot () in
  {
    contents =
      List.map (fun v -> (v.vname, Db.view_contents db v.vname)) s.views;
    work = List.map (Stats.diff_get before after) watched;
  }

(* ---- generators ---- *)

let gen_rows =
  QCheck.Gen.(
    list_size (1 -- 5) (pair (1 -- 6) (0 -- 100)))

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun (c, rows) -> Append (c, rows)) (pair (0 -- 1) gen_rows));
        ( 1,
          map
            (fun (r0, r1) -> Append_multi [ (0, r0); (1, r1) ])
            (pair gen_rows gen_rows) );
      ])

let gen_vspec i =
  QCheck.Gen.(
    map
      (fun (chron, guard, early) ->
        { vname = Printf.sprintf "v%d" i; chron; guard; early })
      (triple (0 -- 1) (opt (1 -- 6)) bool))

let gen_scenario =
  QCheck.Gen.(
    (3 -- 10) >>= fun nviews ->
    let rec specs i =
      if i >= nviews then return []
      else
        gen_vspec i >>= fun v ->
        specs (i + 1) >>= fun rest -> return (v :: rest)
    in
    triple (specs 0) (list_size (1 -- 6) gen_step) (list_size (1 -- 8) gen_step)
    >>= fun (views, pre, post) -> return { views; pre; post })

let print_scenario s =
  let pr_step = function
    | Append (c, rows) ->
        Printf.sprintf "append c%d [%s]" c
          (String.concat "; "
             (List.map (fun (a, m) -> Printf.sprintf "(%d,%d)" a m) rows))
    | Append_multi parts ->
        Printf.sprintf "append_multi [%s]"
          (String.concat " | "
             (List.map
                (fun (c, rows) ->
                  Printf.sprintf "c%d:%d rows" c (List.length rows))
                parts))
  in
  Printf.sprintf "views=[%s]\npre=[%s]\npost=[%s]"
    (String.concat "; "
       (List.map
          (fun v ->
            Printf.sprintf "%s(c%d,%s,%s)" v.vname v.chron
              (match v.guard with None -> "_" | Some a -> string_of_int a)
              (if v.early then "early" else "late"))
          s.views))
    (String.concat "; " (List.map pr_step s.pre))
    (String.concat "; " (List.map pr_step s.post))

let scenario_arb = QCheck.make ~print:print_scenario gen_scenario

(* ---- the property ---- *)

let same_outcome seq par =
  List.for_all2
    (fun (n1, t1) (n2, t2) ->
      String.equal n1 n2 && List.equal Tuple.equal t1 t2)
    seq.contents par.contents
  && List.equal Int.equal seq.work par.work

let prop_parallel_equals_sequential s =
  let seq = run_scenario ~jobs:1 s in
  List.for_all
    (fun jobs ->
      let par = run_scenario ~jobs s in
      if not (same_outcome seq par) then
        QCheck.Test.fail_reportf
          "jobs=%d diverged from sequential:@.seq work=%s par work=%s" jobs
          (String.concat "," (List.map string_of_int seq.work))
          (String.concat "," (List.map string_of_int par.work))
      else true)
    [ 2; 4; 8 ]

(* ---- a few directed cases on top of the property ---- *)

(* Parallel initial materialization: define a view over a long retained
   history with jobs = 4 and check against sequential evaluation. *)
let test_parallel_materialization () =
  let mk jobs =
    let db = Db.create ~jobs () in
    let c = Db.add_chronicle db ~retention:Chron.Full ~name:"c" schema in
    for i = 1 to 500 do
      ignore (Db.append db (Chron.name c) [ row (i mod 17, i) ])
    done;
    ignore
      (Db.define_view db
         (Sca.define ~name:"v" ~body:(Ca.Chronicle c)
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))));
    Db.view_contents db "v"
  in
  let seq = mk 1 and par = mk 4 in
  check_int "same cardinality" (List.length seq) (List.length par);
  check_bool "identical contents and order" true
    (List.equal Tuple.equal seq par)

(* A failing fold at jobs = 4 rolls back every view, exactly as the
   sequential path does. *)
let test_parallel_rollback () =
  let db = Db.create ~jobs:4 () in
  let c = Db.add_chronicle db ~name:"c" schema in
  for i = 0 to 7 do
    ignore
      (Db.define_view db
         (Sca.define ~name:(Printf.sprintf "v%d" i) ~body:(Ca.Chronicle c)
            (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))))
  done;
  ignore (Db.append db "c" [ row (1, 10) ]);
  let before =
    List.map (fun v -> Db.view_contents db (View.name v)) (Db.views db)
  in
  let boom = ref true in
  Db.set_fold_probe db
    (Some
       (fun ~view ~sn:_ ->
         if !boom && String.equal view "v5" then failwith "injected"));
  check_raises_any "fold failure propagates" (fun () ->
      Db.append db "c" [ row (2, 20) ]);
  boom := false;
  Db.set_fold_probe db None;
  let after =
    List.map (fun v -> Db.view_contents db (View.name v)) (Db.views db)
  in
  check_bool "all views rolled back" true
    (List.for_all2 (List.equal Tuple.equal) before after);
  (* and the database still works *)
  ignore (Db.append db "c" [ row (2, 20) ]);
  check_int "post-rollback append maintained" 2
    (List.length (Db.view_contents db "v0"))

(* ---- parallel physical plans: joins, unions, differences ----

   The PR-3 kernel only range-split GROUPBY over Select/Project
   pipelines; these properties cover the widened shapes — probe-side
   split hash joins, theta joins and products against a shared
   materialized right side, and two-phase union/difference/distinct —
   both standalone and below a top-level GROUPBY.  Fixed expression
   shapes, random data (including empty and skewed inputs); the oracle
   is the sequential compiled plan, itself checked against
   [Ra.eval_naive]. *)

let plan_schema = Schema.make [ ("k", Value.TInt); ("x", Value.TInt) ]
let t_schema = Schema.make [ ("k", Value.TInt); ("y", Value.TInt) ]

let plan_shapes r1 r2 rt =
  let open Ra in
  [
    (* r1 carries a non-unique hash index on "k" (many rows per key, so
       a key's run straddles the range splits): the equality shapes
       below exercise the ranged index-probe pushdown, residual filters
       included, standalone and under joins/folds *)
    ("indexed eq select", Select (Predicate.("k" =% vi 3), Rel r1));
    ("indexed eq select + residual",
     Select
       ( Predicate.And (Predicate.("k" =% vi 3), Predicate.("x" >% vi 50)),
         Rel r1 ));
    ("groupby over indexed select",
     GroupBy
       ( [ "k" ],
         [ Aggregate.sum "x" "sx"; Aggregate.count_star "n" ],
         Select (Predicate.("k" =% vi 3), Rel r1) ));
    ("join over indexed select",
     EquiJoin
       ([ ("k", "k") ], Select (Predicate.("k" =% vi 4), Rel r1), Rel rt));
    ("union of selects",
     Union (Select (Predicate.("x" >% vi 50), Rel r1), Rel r2));
    ("difference", Diff (Rel r1, Rel r2));
    ("distinct of union", Distinct (Union (Rel r1, Rel r2)));
    ("equijoin (probe-side split)", EquiJoin ([ ("k", "k") ], Rel r1, Rel rt));
    ("theta join",
     ThetaJoin (Predicate.attr_eq "k" "t.k", Rel r1, Prefix ("t", Rel rt)));
    ("select over product",
     Select
       (Predicate.attr_eq "k" "t.k", Product (Rel r1, Prefix ("t", Rel rt))));
    ("union of joins",
     Union
       ( Project ([ "k"; "x" ], EquiJoin ([ ("k", "k") ], Rel r1, Rel rt)),
         Rel r2 ));
    ("groupby over join",
     GroupBy
       ( [ "k" ],
         [ Aggregate.sum "x" "sx"; Aggregate.count_star "n" ],
         EquiJoin ([ ("k", "k") ], Rel r1, Rel rt) ));
    ("groupby over union",
     GroupBy ([ "k" ], [ Aggregate.sum "x" "sx" ], Union (Rel r1, Rel r2)));
    ("groupby over difference",
     GroupBy ([ "k" ], [ Aggregate.count_star "n" ], Diff (Rel r1, Rel r2)));
  ]

let gen_plan_data =
  QCheck.Gen.(
    let rows = list_size (0 -- 60) (pair (0 -- 8) (0 -- 100)) in
    triple rows rows (list_size (0 -- 20) (pair (0 -- 8) (0 -- 10))))

let plan_data_arb =
  QCheck.make
    ~print:(fun (a, b, c) ->
      Printf.sprintf "r1:%d rows, r2:%d rows, rt:%d rows" (List.length a)
        (List.length b) (List.length c))
    gen_plan_data

let prop_parallel_plans (rows1, rows2, rowst) =
  let fill name schema rows =
    let r = Relation.create ~name ~schema () in
    List.iter (fun (k, x) -> ignore (Relation.insert r (tup [ vi k; vi x ]))) rows;
    r
  in
  let r1 = fill "r1" plan_schema rows1
  and r2 = fill "r2" plan_schema rows2
  and rt = fill "rt" t_schema rowst in
  (* non-unique secondary index: the indexed shapes' pushdown target *)
  Relation.create_index r1 Index.Hash [ "k" ];
  List.for_all
    (fun (label, e) ->
      let seq = Plan.run (Plan.compile e) in
      if not (List.equal Tuple.equal seq (Ra.eval_naive e)) then
        QCheck.Test.fail_reportf "%s: sequential plan diverged from naive"
          label
      else
        let pushdown_shape =
          (* the shapes that bottom out in an equality select over the
             indexed r1 *)
          String.length label >= 7 && String.equal (String.sub label 0 7) "indexed"
        in
        List.for_all
          (fun jobs ->
            let pool = Exec.Pool.create ~jobs () in
            let plan = Plan.compile_parallel pool e in
            let before = Stats.snapshot () in
            let par = Plan.run plan in
            let after = Stats.snapshot () in
            if not (List.equal Tuple.equal seq par) then
              QCheck.Test.fail_reportf
                "%s: jobs=%d diverged (%d tuples vs %d sequential)" label jobs
                (List.length par) (List.length seq)
            else if
              pushdown_shape
              && Relation.row_bound r1 > 0
              && Stats.diff_get before after Stats.Index_scan = 0
            then
              QCheck.Test.fail_reportf
                "%s: jobs=%d answered without the index probe pushdown" label
                jobs
            else if
              pushdown_shape
              && Stats.diff_get before after Stats.Tuple_read
                 > Relation.cardinality r1
            then
              QCheck.Test.fail_reportf
                "%s: jobs=%d read more tuples than a full scan" label jobs
            else true)
          [ 2; 4; 8 ])
    (plan_shapes r1 r2 rt)

(* ---- ranged index-probe pushdown: directed counter contrasts ----

   Machine-independent economics of the tentpole: on an equality
   selection over an indexed base relation the ranged plan answers with
   bounded index probes (Index_scan fires on the ranged path) and reads
   exactly the matching tuples — strictly fewer than the pre-PR ranged
   scan, which the identical-but-unindexed twin relation still
   exhibits. *)

let fill_big name =
  let r = Relation.create ~name ~schema:plan_schema () in
  for i = 0 to 999 do
    ignore (Relation.insert r (tup [ vi (i mod 10); vi i ]))
  done;
  r

let test_ranged_pushdown_counters () =
  let r = fill_big "big" in
  let twin = fill_big "big_noix" in
  Relation.create_index r Index.Hash [ "k" ];
  let sel rel = Ra.Select (Predicate.("k" =% vi 3), Ra.Rel rel) in
  let measure pool e =
    let plan = Plan.compile_parallel pool e in
    let before = Stats.snapshot () in
    let out = Plan.run plan in
    let after = Stats.snapshot () in
    (out, before, after)
  in
  let pool = Exec.Pool.create ~jobs:4 () in
  let probe_out, pb, pa = measure pool (sel r) in
  let scan_out, sb, sa = measure pool (sel twin) in
  check_bool "probe ≡ scan rows" true (List.equal Tuple.equal probe_out scan_out);
  check_bool "ranged path fires Index_scan" true
    (Stats.diff_get pb pa Stats.Index_scan > 0);
  check_int "unindexed twin: no pushdown" 0 (Stats.diff_get sb sa Stats.Index_scan);
  let probe_reads = Stats.diff_get pb pa Stats.Tuple_read in
  let scan_reads = Stats.diff_get sb sa Stats.Tuple_read in
  check_int "probe touches hits only" (List.length probe_out) probe_reads;
  check_bool
    (Printf.sprintf "probe reads (%d) strictly below scan reads (%d)"
       probe_reads scan_reads)
    true
    (probe_reads < scan_reads);
  (* byte-identical to the sequential plan at every degree *)
  let seq = Plan.run (Plan.compile (sel r)) in
  List.iter
    (fun jobs ->
      let out, _, _ = measure (Exec.Pool.create ~jobs ()) (sel r) in
      check_bool
        (Printf.sprintf "jobs=%d ≡ sequential" jobs)
        true
        (List.equal Tuple.equal seq out))
    [ 1; 2; 4; 8 ]

(* Regression for the retired plan.mli caveat: on pushdown shapes the
   sequential and ranged executions report the {e same counter kinds}
   (nonzero deltas over a run), only the probe counts scale with the
   range count. *)
let test_pushdown_counter_kinds () =
  let r = fill_big "big_kinds" in
  Relation.create_index r Index.Hash [ "k" ];
  let shapes =
    [
      ("eq select", Ra.Select (Predicate.("k" =% vi 3), Ra.Rel r));
      ("eq select + residual",
       Ra.Select
         ( Predicate.And (Predicate.("k" =% vi 3), Predicate.("x" >% vi 500)),
           Ra.Rel r ));
      ("groupby over eq select",
       Ra.GroupBy
         ( [ "k" ],
           [ Aggregate.sum "x" "sx" ],
           Ra.Select (Predicate.("k" =% vi 3), Ra.Rel r) ));
    ]
  in
  let kinds plan =
    let before = Stats.snapshot () in
    ignore (Plan.run plan);
    let after = Stats.snapshot () in
    List.filter_map
      (fun (c, n) -> if n > 0 then Some (Stats.counter_name c) else None)
      (Stats.diff before after)
  in
  let pool = Exec.Pool.create ~jobs:4 () in
  List.iter
    (fun (label, e) ->
      let seq_kinds = kinds (Plan.compile e) in
      let par_kinds = kinds (Plan.compile_parallel pool e) in
      check_bool
        (Printf.sprintf "%s: same counter kinds (seq: %s / ranged: %s)" label
           (String.concat "," seq_kinds)
           (String.concat "," par_kinds))
        true
        (List.equal String.equal seq_kinds par_kinds);
      check_bool
        (Printf.sprintf "%s: pushdown fired on both" label)
        true
        (List.mem "index_scan" seq_kinds))
    shapes

(* ---- parallel journal replay ----

   Run a random scenario live under write-ahead journaling, then
   recover the same storage at several degrees: the recovered snapshot
   must be byte-identical across jobs ∈ {1,2,4,8} and identical to the
   live database's snapshot. *)

open Chronicle_durability

let run_scenario_durable s =
  let st = Storage.mem () in
  let db = Db.create () in
  let d = Durable.attach ~sync:Journal.Sync_never ~storage:st db in
  let chrons =
    [|
      Db.add_chronicle db ~retention:Chron.Full ~name:"c0" schema;
      Db.add_chronicle db ~retention:Chron.Full ~name:"c1" schema;
    |]
  in
  let define v =
    let base = Ca.Chronicle chrons.(v.chron) in
    let body =
      match v.guard with
      | None -> base
      | Some a -> Ca.Select (Predicate.("acct" =% vi a), base)
    in
    ignore
      (Db.define_view db
         (Sca.define ~name:v.vname ~body
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))))
  in
  let apply = function
    | Append (c, rows) ->
        ignore (Db.append db (Chron.name chrons.(c)) (List.map row rows))
    | Append_multi parts ->
        ignore
          (Db.append_multi db
             (List.map
                (fun (c, rows) -> (Chron.name chrons.(c), List.map row rows))
                parts))
  in
  List.iter define (List.filter (fun v -> v.early) s.views);
  List.iter apply s.pre;
  List.iter define (List.filter (fun v -> not v.early) s.views);
  List.iter apply s.post;
  Durable.detach d;
  (st, Snapshot.save db)

let prop_replay_parallel_equals_sequential s =
  let st, live = run_scenario_durable s in
  let recovered jobs =
    let t, _report = Durable.recover ~jobs ~storage:st () in
    Snapshot.save (Durable.db t)
  in
  let reference = recovered 1 in
  if not (String.equal reference live) then
    QCheck.Test.fail_reportf "sequential recovery diverged from the live state"
  else
    List.for_all
      (fun jobs ->
        if String.equal (recovered jobs) reference then true
        else
          QCheck.Test.fail_reportf
            "recovery at jobs=%d diverged from sequential replay" jobs)
      [ 2; 4; 8 ]

(* A history-reading view (non-CA cross product) forces the replay
   scheduler's fold barrier: every record flushes before the next one
   is recorded, and the recovered state still matches sequential
   replay at every degree. *)
let test_replay_history_barrier () =
  let st = Storage.mem () in
  let db = Db.create () in
  ignore (Durable.attach ~sync:Journal.Sync_never ~storage:st db);
  let c0 = Db.add_chronicle db ~retention:(Chron.Window 64) ~name:"c0" schema in
  let c1 = Db.add_chronicle db ~retention:(Chron.Window 64) ~name:"c1" schema in
  ignore
    (Db.define_view db ~tier_limit:Classify.IM_poly_c
       (Sca.define ~allow_non_ca:true ~name:"cross"
          ~body:(Ca.CrossChron (Ca.Chronicle c0, Ca.Chronicle c1))
          (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "n" ]))));
  ignore
    (Db.define_view db
       (Sca.define ~name:"plain" ~body:(Ca.Chronicle c0)
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))));
  for i = 1 to 12 do
    ignore (Db.append db (if i mod 3 = 0 then "c1" else "c0") [ row (i mod 4, i) ])
  done;
  let live = Snapshot.save db in
  let recovered jobs =
    let t, report = Durable.recover ~jobs ~storage:st () in
    check_bool "replayed something" true (report.Durable.replayed > 0);
    Snapshot.save (Durable.db t)
  in
  let seq = recovered 1 in
  check_bool "sequential recovery = live" true (String.equal seq live);
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d recovery = sequential" jobs)
        true
        (String.equal (recovered jobs) seq))
    [ 2; 4; 8 ]

(* ---- Stats snapshots are torn-read-safe under parallel bumps ----

   A dedicated domain snapshots in a tight loop while a jobs = 4
   database maintains many views; every counter must be pointwise
   non-decreasing across successive snapshots (each cell is read with
   exactly one atomic load — no torn or phantom values). *)
let test_stats_snapshot_monotone () =
  let db = Db.create ~jobs:4 () in
  let c = Db.add_chronicle db ~name:"c" schema in
  for i = 0 to 11 do
    ignore
      (Db.define_view db
         (Sca.define ~name:(Printf.sprintf "v%d" i) ~body:(Ca.Chronicle c)
            (Sca.Group_agg
               ([ "acct" ], [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ]))))
  done;
  let stop = Atomic.make false in
  let watcher =
    Domain.spawn (fun () ->
        let bad = ref None in
        let snaps = ref 0 in
        let prev = ref (Stats.snapshot ()) in
        while not (Atomic.get stop) do
          let s = Stats.snapshot () in
          incr snaps;
          List.iter
            (fun cnt ->
              let d = Stats.diff_get !prev s cnt in
              if d < 0 && !bad = None then
                bad := Some (Stats.counter_name cnt, d))
            Stats.all;
          prev := s
        done;
        (!snaps, !bad))
  in
  for i = 1 to 400 do
    ignore (Db.append db "c" [ row (i mod 7, i); row ((i + 3) mod 7, i) ])
  done;
  Atomic.set stop true;
  let snaps, bad = Domain.join watcher in
  check_bool "watcher actually raced the appends" true (snaps > 0);
  match bad with
  | None -> ()
  | Some (name, d) ->
      Alcotest.failf "counter %s went backwards across snapshots (%d)" name d

let suite =
  [
    qtest ~count:120 "parallel ≡ sequential (state and work)" scenario_arb
      prop_parallel_equals_sequential;
    test "parallel initial materialization" test_parallel_materialization;
    test "parallel fold failure rolls back all views" test_parallel_rollback;
    qtest ~count:80 "parallel plans ≡ sequential (join/union/diff)"
      plan_data_arb prop_parallel_plans;
    test "ranged pushdown: probes beat scans" test_ranged_pushdown_counters;
    test "ranged pushdown: same counter kinds as sequential"
      test_pushdown_counter_kinds;
    qtest ~count:60 "parallel replay ≡ sequential recovery" scenario_arb
      prop_replay_parallel_equals_sequential;
    test "replay fold barrier for history-reading views"
      test_replay_history_barrier;
    test "stats snapshots are monotone under parallel bumps"
      test_stats_snapshot_monotone;
  ]
