(* Parallel maintenance is transparent: for any view set and any batch
   sequence, running the database at jobs ∈ {2,4,8} leaves every
   persistent view in exactly the state the sequential run produces —
   including insertion order (each view is folded wholly by one task)
   — and performs exactly the same maintenance work (the economics
   counters agree).  This is the property that lets every layer above
   [Db] ignore the parallelism entirely. *)

open Relational
open Chronicle_core
open Util

(* ---- scenario description (pure data, so one scenario can be run
   under several degrees) ---- *)

type vspec = {
  vname : string;
  chron : int; (* 0 or 1 *)
  guard : int option; (* Some a: SELECT acct = a above the chronicle *)
  early : bool; (* defined before any appends (Δ-only) or after some
                   history (exercises parallel initial
                   materialization) *)
}

type step =
  | Append of int * (int * int) list (* chron, (acct, miles) rows *)
  | Append_multi of (int * (int * int) list) list

type scenario = { views : vspec list; pre : step list; post : step list }

let schema = Schema.make [ ("acct", Value.TInt); ("miles", Value.TInt) ]
let row (acct, miles) = tup [ vi acct; vi miles ]

(* Watched economics counters: the work a maintenance pass performs.
   (Plan counters are excluded on purpose: registration warms caches
   identically at every degree, but materialization re-compiles
   per-call.) *)
let watched = Stats.[ Tuple_write; Agg_step; Group_lookup; Index_probe ]

type outcome = {
  contents : (string * Tuple.t list) list; (* per view, in store order *)
  work : int list; (* watched counter deltas *)
}

let run_scenario ~jobs s =
  let db = Db.create ~jobs () in
  (* full retention so late view definitions can materialize from
     history (the parallel initial-materialization path) *)
  let chrons =
    [|
      Db.add_chronicle db ~retention:Chron.Full ~name:"c0" schema;
      Db.add_chronicle db ~retention:Chron.Full ~name:"c1" schema;
    |]
  in
  let define v =
    let base = Ca.Chronicle chrons.(v.chron) in
    let body =
      match v.guard with
      | None -> base
      | Some a -> Ca.Select (Predicate.("acct" =% vi a), base)
    in
    ignore
      (Db.define_view db
         (Sca.define ~name:v.vname ~body
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))))
  in
  let apply = function
    | Append (c, rows) ->
        ignore (Db.append db (Chron.name chrons.(c)) (List.map row rows))
    | Append_multi parts ->
        ignore
          (Db.append_multi db
             (List.map
                (fun (c, rows) -> (Chron.name chrons.(c), List.map row rows))
                parts))
  in
  List.iter define (List.filter (fun v -> v.early) s.views);
  List.iter apply s.pre;
  let before = Stats.snapshot () in
  List.iter define (List.filter (fun v -> not v.early) s.views);
  List.iter apply s.post;
  let after = Stats.snapshot () in
  {
    contents =
      List.map (fun v -> (v.vname, Db.view_contents db v.vname)) s.views;
    work = List.map (Stats.diff_get before after) watched;
  }

(* ---- generators ---- *)

let gen_rows =
  QCheck.Gen.(
    list_size (1 -- 5) (pair (1 -- 6) (0 -- 100)))

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun (c, rows) -> Append (c, rows)) (pair (0 -- 1) gen_rows));
        ( 1,
          map
            (fun (r0, r1) -> Append_multi [ (0, r0); (1, r1) ])
            (pair gen_rows gen_rows) );
      ])

let gen_vspec i =
  QCheck.Gen.(
    map
      (fun (chron, guard, early) ->
        { vname = Printf.sprintf "v%d" i; chron; guard; early })
      (triple (0 -- 1) (opt (1 -- 6)) bool))

let gen_scenario =
  QCheck.Gen.(
    (3 -- 10) >>= fun nviews ->
    let rec specs i =
      if i >= nviews then return []
      else
        gen_vspec i >>= fun v ->
        specs (i + 1) >>= fun rest -> return (v :: rest)
    in
    triple (specs 0) (list_size (1 -- 6) gen_step) (list_size (1 -- 8) gen_step)
    >>= fun (views, pre, post) -> return { views; pre; post })

let print_scenario s =
  let pr_step = function
    | Append (c, rows) ->
        Printf.sprintf "append c%d [%s]" c
          (String.concat "; "
             (List.map (fun (a, m) -> Printf.sprintf "(%d,%d)" a m) rows))
    | Append_multi parts ->
        Printf.sprintf "append_multi [%s]"
          (String.concat " | "
             (List.map
                (fun (c, rows) ->
                  Printf.sprintf "c%d:%d rows" c (List.length rows))
                parts))
  in
  Printf.sprintf "views=[%s]\npre=[%s]\npost=[%s]"
    (String.concat "; "
       (List.map
          (fun v ->
            Printf.sprintf "%s(c%d,%s,%s)" v.vname v.chron
              (match v.guard with None -> "_" | Some a -> string_of_int a)
              (if v.early then "early" else "late"))
          s.views))
    (String.concat "; " (List.map pr_step s.pre))
    (String.concat "; " (List.map pr_step s.post))

let scenario_arb = QCheck.make ~print:print_scenario gen_scenario

(* ---- the property ---- *)

let same_outcome seq par =
  List.for_all2
    (fun (n1, t1) (n2, t2) ->
      String.equal n1 n2 && List.equal Tuple.equal t1 t2)
    seq.contents par.contents
  && List.equal Int.equal seq.work par.work

let prop_parallel_equals_sequential s =
  let seq = run_scenario ~jobs:1 s in
  List.for_all
    (fun jobs ->
      let par = run_scenario ~jobs s in
      if not (same_outcome seq par) then
        QCheck.Test.fail_reportf
          "jobs=%d diverged from sequential:@.seq work=%s par work=%s" jobs
          (String.concat "," (List.map string_of_int seq.work))
          (String.concat "," (List.map string_of_int par.work))
      else true)
    [ 2; 4; 8 ]

(* ---- a few directed cases on top of the property ---- *)

(* Parallel initial materialization: define a view over a long retained
   history with jobs = 4 and check against sequential evaluation. *)
let test_parallel_materialization () =
  let mk jobs =
    let db = Db.create ~jobs () in
    let c = Db.add_chronicle db ~retention:Chron.Full ~name:"c" schema in
    for i = 1 to 500 do
      ignore (Db.append db (Chron.name c) [ row (i mod 17, i) ])
    done;
    ignore
      (Db.define_view db
         (Sca.define ~name:"v" ~body:(Ca.Chronicle c)
            (Sca.Group_agg
               ( [ "acct" ],
                 [ Aggregate.sum "miles" "m"; Aggregate.count_star "n" ] ))));
    Db.view_contents db "v"
  in
  let seq = mk 1 and par = mk 4 in
  check_int "same cardinality" (List.length seq) (List.length par);
  check_bool "identical contents and order" true
    (List.equal Tuple.equal seq par)

(* A failing fold at jobs = 4 rolls back every view, exactly as the
   sequential path does. *)
let test_parallel_rollback () =
  let db = Db.create ~jobs:4 () in
  let c = Db.add_chronicle db ~name:"c" schema in
  for i = 0 to 7 do
    ignore
      (Db.define_view db
         (Sca.define ~name:(Printf.sprintf "v%d" i) ~body:(Ca.Chronicle c)
            (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "m" ]))))
  done;
  ignore (Db.append db "c" [ row (1, 10) ]);
  let before =
    List.map (fun v -> Db.view_contents db (View.name v)) (Db.views db)
  in
  let boom = ref true in
  Db.set_fold_probe db
    (Some
       (fun ~view ~sn:_ ->
         if !boom && String.equal view "v5" then failwith "injected"));
  check_raises_any "fold failure propagates" (fun () ->
      Db.append db "c" [ row (2, 20) ]);
  boom := false;
  Db.set_fold_probe db None;
  let after =
    List.map (fun v -> Db.view_contents db (View.name v)) (Db.views db)
  in
  check_bool "all views rolled back" true
    (List.for_all2 (List.equal Tuple.equal) before after);
  (* and the database still works *)
  ignore (Db.append db "c" [ row (2, 20) ]);
  check_int "post-rollback append maintained" 2
    (List.length (Db.view_contents db "v0"))

let suite =
  [
    qtest ~count:120 "parallel ≡ sequential (state and work)" scenario_arb
      prop_parallel_equals_sequential;
    test "parallel initial materialization" test_parallel_materialization;
    test "parallel fold failure rolls back all views" test_parallel_rollback;
  ]
