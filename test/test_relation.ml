open Relational
open Util

let schema =
  Schema.make
    [ ("id", Value.TInt); ("name", Value.TStr); ("score", Value.TFloat) ]

let mk ?key () = Relation.create ~name:"people" ~schema ?key ()

let row id name score = tup [ vi id; vs name; vf score ]

let test_insert_get () =
  let r = mk () in
  let rid = Relation.insert r (row 1 "ann" 3.5) in
  check_bool "get" true (Relation.get r rid = Some (row 1 "ann" 3.5));
  check_int "cardinality" 1 (Relation.cardinality r);
  check_bool "dead row id" true (Relation.get r 999 = None)

let test_type_check () =
  let r = mk () in
  check_raises_any "bad tuple" (fun () -> Relation.insert r (tup [ vs "x" ]))

let test_key_enforced () =
  let r = mk ~key:[ "id" ] () in
  ignore (Relation.insert r (row 1 "ann" 1.));
  check_raises_any "duplicate key" (fun () -> Relation.insert r (row 1 "bob" 2.));
  ignore (Relation.insert r (row 2 "bob" 2.));
  check_bool "find_by_key" true
    (Relation.find_by_key r [ vi 2 ] = Some (row 2 "bob" 2.));
  check_bool "find_by_key miss" true (Relation.find_by_key r [ vi 9 ] = None)

let test_delete () =
  let r = mk ~key:[ "id" ] () in
  let rid = Relation.insert r (row 1 "ann" 1.) in
  check_bool "delete returns tuple" true (Relation.delete r rid = Some (row 1 "ann" 1.));
  check_bool "second delete" true (Relation.delete r rid = None);
  check_int "cardinality" 0 (Relation.cardinality r);
  (* key is free again *)
  ignore (Relation.insert r (row 1 "ann2" 1.))

let test_update () =
  let r = mk ~key:[ "id" ] () in
  let rid = Relation.insert r (row 1 "ann" 1.) in
  Relation.update r rid (row 1 "ann" 9.);
  check_bool "updated" true (Relation.get r rid = Some (row 1 "ann" 9.));
  ignore (Relation.insert r (row 2 "bob" 2.));
  check_raises_any "key-changing update into collision" (fun () ->
      Relation.update r rid (row 2 "ann" 9.));
  Relation.update r rid (row 3 "ann" 9.);
  check_bool "key move ok" true (Relation.find_by_key r [ vi 3 ] <> None);
  check_bool "old key gone" true (Relation.find_by_key r [ vi 1 ] = None)

let test_delete_where () =
  let r = mk () in
  Relation.insert_all r [ row 1 "a" 1.; row 2 "b" 5.; row 3 "c" 9. ];
  check_int "deleted" 2 (Relation.delete_where r Predicate.("score" >% vf 2.));
  check_int "remaining" 1 (Relation.cardinality r)

let test_secondary_index_lookup () =
  let r = mk ~key:[ "id" ] () in
  Relation.insert_all r [ row 1 "ann" 1.; row 2 "ann" 2.; row 3 "bob" 3. ];
  (* without an index: scan fallback, correct *)
  check_tuples "scan lookup" [ row 1 "ann" 1.; row 2 "ann" 2. ]
    (Relation.lookup r ~attrs:[ "name" ] [ vs "ann" ]);
  Relation.create_index r Index.Hash [ "name" ];
  check_bool "has_index" true (Relation.has_index r [ "name" ]);
  (* with the index: same answer *)
  check_tuples "indexed lookup" [ row 1 "ann" 1.; row 2 "ann" 2. ]
    (Relation.lookup r ~attrs:[ "name" ] [ vs "ann" ]);
  (* index maintained across delete *)
  ignore (Relation.delete_where r Predicate.("id" =% vi 1));
  check_tuples "after delete" [ row 2 "ann" 2. ]
    (Relation.lookup r ~attrs:[ "name" ] [ vs "ann" ])

let test_index_avoids_scan () =
  let r = mk ~key:[ "id" ] () in
  for i = 1 to 500 do
    ignore (Relation.insert r (row i "n" 0.))
  done;
  let before = Stats.snapshot () in
  ignore (Relation.find_by_key r [ vi 250 ]);
  let after = Stats.snapshot () in
  check_bool "point lookup reads O(1) tuples" true
    (Stats.diff_get before after Stats.Tuple_read <= 2);
  check_int "one probe" 1 (Stats.diff_get before after Stats.Index_probe)

let test_bounded_lookup () =
  let r = mk ~key:[ "id" ] () in
  for i = 0 to 19 do
    ignore (Relation.insert r (row i (if i mod 3 = 0 then "ann" else "bob") 0.))
  done;
  (* tombstone a matching and a non-matching row: bounds still partition
     the row-id space, dead ids just contribute nothing *)
  ignore (Relation.delete_where r Predicate.("id" =% vi 6));
  ignore (Relation.delete_where r Predicate.("id" =% vi 7));
  let whole = Relation.lookup r ~attrs:[ "name" ] [ vs "ann" ] in
  let stitched cuts =
    let rec go = function
      | lo :: (hi :: _ as rest) ->
          Relation.lookup_bounded r ~attrs:[ "name" ] [ vs "ann" ] ~lo ~hi
          @ go rest
      | _ -> []
    in
    go cuts
  in
  let check_partition name cuts =
    check_bool name true (List.equal Tuple.equal whole (stitched cuts))
  in
  (* scan fallback (no index on "name") *)
  check_partition "scan: one cell" [ 0; Relation.row_bound r ];
  check_partition "scan: uneven cells" [ 0; 1; 7; 8; 20 ];
  check_bool "scan: clamped bounds" true
    (List.equal Tuple.equal whole (stitched [ -5; 500 ]));
  (* same partitions answered by a secondary index *)
  Relation.create_index r Index.Hash [ "name" ];
  check_partition "index: one cell" [ 0; Relation.row_bound r ];
  check_partition "index: uneven cells" [ 0; 1; 7; 8; 20 ];
  check_partition "index: many cells" [ 0; 3; 6; 9; 12; 15; 18; 20 ];
  check_bool "index: empty cell" true
    (Relation.lookup_bounded r ~attrs:[ "name" ] [ vs "ann" ] ~lo:4 ~hi:4 = [])

let test_version_counter () =
  let r = mk () in
  let v0 = Relation.version r in
  let rid = Relation.insert r (row 1 "a" 1.) in
  check_bool "insert bumps" true (Relation.version r > v0);
  let v1 = Relation.version r in
  Relation.update r rid (row 1 "a" 2.);
  check_bool "update bumps" true (Relation.version r > v1);
  let v2 = Relation.version r in
  ignore (Relation.delete r rid);
  check_bool "delete bumps" true (Relation.version r > v2)

let test_iter_skips_tombstones () =
  let r = mk () in
  let rid = Relation.insert r (row 1 "a" 1.) in
  ignore (Relation.insert r (row 2 "b" 2.));
  ignore (Relation.delete r rid);
  check_tuples "to_list" [ row 2 "b" 2. ] (Relation.to_list r)

let suite =
  [
    test "insert and get" test_insert_get;
    test "schema type check" test_type_check;
    test "primary key uniqueness" test_key_enforced;
    test "delete and key release" test_delete;
    test "update incl. key moves" test_update;
    test "delete_where" test_delete_where;
    test "secondary index lookup" test_secondary_index_lookup;
    test "indexed lookup avoids scans" test_index_avoids_scan;
    test "bounded lookup stitches to lookup" test_bounded_lookup;
    test "version counter" test_version_counter;
    test "iteration skips tombstones" test_iter_skips_tombstones;
  ]
