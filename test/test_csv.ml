open Relational
open Util

let schema =
  Schema.make
    [ ("id", Value.TInt); ("name", Value.TStr); ("score", Value.TFloat);
      ("active", Value.TBool) ]

let test_roundtrip () =
  let tuples =
    [
      tup [ vi 1; vs "plain"; vf 2.5; vb true ];
      tup [ vi 2; vs "with,comma"; vf (-1.); vb false ];
      tup [ vi 3; vs "with \"quotes\""; Value.Null; vb true ];
      tup [ vi 4; vs "multi\nline"; vf 0.125; vb false ];
    ]
  in
  let text = Csv_io.string_of_tuples schema tuples in
  check_tuples "roundtrip" tuples (Csv_io.tuples_of_string schema text)

let test_header_checked () =
  check_raises_any "wrong header" (fun () ->
      ignore (Csv_io.tuples_of_string schema "a,b,c,d\n1,x,2.0,true\n"));
  (* headerless mode *)
  let tuples = Csv_io.tuples_of_string ~header:false schema "1,x,2.0,true\n" in
  check_int "headerless" 1 (List.length tuples)

let test_value_parsing () =
  check_value "int" (vi 42) (Csv_io.parse_value Value.TInt " 42 ");
  check_value "float" (vf 2.5) (Csv_io.parse_value Value.TFloat "2.5");
  check_value "bool yes" (vb true) (Csv_io.parse_value Value.TBool "YES");
  check_value "empty is null" Value.Null (Csv_io.parse_value Value.TInt "");
  (match Csv_io.parse_value Value.TInt "zap" with
  | _ -> Alcotest.fail "bad int: typed error expected"
  | exception Csv_io.Csv_error _ -> ());
  match Csv_io.parse_value Value.TBool "maybe" with
  | _ -> Alcotest.fail "bad bool: typed error expected"
  | exception Csv_io.Csv_error _ -> ()

let test_errors_located () =
  (match Csv_io.tuples_of_string schema "id,name,score,active\n1,x,2.0\n" with
  | _ -> Alcotest.fail "arity error expected"
  | exception Csv_io.Csv_error { line; _ } -> check_int "line" 2 line);
  (match Csv_io.tuples_of_string schema "id,name,score,active\n1,x,zap,true\n" with
  | _ -> Alcotest.fail "type error expected"
  | exception Csv_io.Csv_error { message; line; column } ->
      check_int "type error line" 2 line;
      check_int "type error column" 3 column;
      check_bool "mentions field" true
        (String.length message > 0 && String.sub message 0 5 = "field"));
  (match
     Csv_io.tuples_of_string schema
       "id,name,score,active\n1,x,2.0,true\n2,y,1.5,maybe\n"
   with
  | _ -> Alcotest.fail "bool error expected"
  | exception Csv_io.Csv_error { line; column; _ } ->
      check_int "bool error line" 3 line;
      check_int "bool error column" 4 column);
  match Csv_io.tuples_of_string schema "id,name,score,active\n1,\"x,2.0,true\n" with
  | _ -> Alcotest.fail "quote error expected"
  | exception Csv_io.Csv_error _ -> ()

let test_relation_io () =
  let rel = Relation.create ~name:"r" ~schema ~key:[ "id" ] () in
  let n =
    Csv_io.load_relation rel
      "id,name,score,active\n1,ann,3.5,true\n2,bob,1.0,false\n"
  in
  check_int "loaded" 2 n;
  check_int "cardinality" 2 (Relation.cardinality rel);
  let dumped = Csv_io.dump_relation rel in
  let rel2 = Relation.create ~name:"r2" ~schema () in
  ignore (Csv_io.load_relation rel2 dumped);
  check_tuples "dump/load" (Relation.to_list rel) (Relation.to_list rel2)

let test_file_io () =
  let path = Filename.temp_file "chronicle_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let tuples = [ tup [ vi 1; vs "a"; vf 1.; vb true ] ] in
      Csv_io.save_file schema path tuples;
      check_tuples "file roundtrip" tuples (Csv_io.load_file schema path))

let qcheck_random_roundtrip =
  let gen =
    QCheck.(
      list_of_size (Gen.int_bound 20)
        (pair small_signed_int (string_gen (Gen.char_range ' ' '~'))))
  in
  qtest "random printable rows roundtrip" gen (fun rows ->
      let s2 = Schema.make [ ("n", Value.TInt); ("s", Value.TStr) ] in
      let tuples = List.map (fun (n, str) -> tup [ vi n; vs str ]) rows in
      let text = Csv_io.string_of_tuples s2 tuples in
      (* empty strings decode as NULL: normalize both sides *)
      let norm =
        List.map (fun (tu : Tuple.t) ->
            match Tuple.get tu 1 with
            | Value.Str "" -> tup [ Tuple.get tu 0; Value.Null ]
            | _ -> tu)
      in
      List.equal Tuple.equal (norm tuples)
        (norm (Csv_io.tuples_of_string s2 text)))

let suite =
  [
    test "quoting roundtrip" test_roundtrip;
    qcheck_random_roundtrip;
    test "header validation" test_header_checked;
    test "typed value parsing" test_value_parsing;
    test "errors carry line numbers" test_errors_located;
    test "relation load/dump" test_relation_io;
    test "file save/load" test_file_io;
  ]
