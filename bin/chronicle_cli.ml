(* chronicle-cli: run view-definition-language scripts against an
   in-memory chronicle database, or explore one interactively.

     dune exec bin/chronicle_cli.exe -- run script.cdl
     dune exec bin/chronicle_cli.exe -- run --durable DIR script.cdl
     dune exec bin/chronicle_cli.exe -- recover DIR
     dune exec bin/chronicle_cli.exe -- repl
     dune exec bin/chronicle_cli.exe -- demo *)

open Chronicle_lang
open Chronicle_durability

let print_result r = Format.printf "%a@." Analyze.pp_result r

let report_error = function
  | Lexer.Lex_error { message; line; column } ->
      Format.eprintf "lex error at %d:%d: %s@." line column message;
      1
  | Parser.Parse_error { message; line } ->
      Format.eprintf "parse error at line %d: %s@." line message;
      1
  | Analyze.Semantic_error message ->
      Format.eprintf "semantic error: %s@." message;
      1
  | Chronicle_core.Ca.Ill_formed message ->
      Format.eprintf "algebra error: %s@." message;
      1
  | Chronicle_core.Db.Unknown message ->
      Format.eprintf "catalog error: %s@." message;
      1
  | Chronicle_core.Db.Read_only message ->
      Format.eprintf "%s@." message;
      1
  | exn -> raise exn

let pp_recovery ppf (r : Durable.report) =
  Format.fprintf ppf "checkpoint %s; journal: %d replayed, %d skipped%s%s%s%s%s"
    (match r.generation with
    | Some g -> Printf.sprintf "generation %d loaded" g
    | None -> if r.checkpoint_loaded then "loaded" else "absent")
    r.replayed r.skipped
    (if r.dropped_torn then ", torn tail dropped" else "")
    (if r.dropped_failed then ", failed final record dropped" else "")
    (if r.fallbacks > 0 then
       Printf.sprintf ", %d checkpoint fallback(s)" r.fallbacks
     else "")
    (if r.quarantined > 0 then
       Printf.sprintf ", %d quarantined" r.quarantined
     else "")
    (if r.degraded then "; DEGRADED (read-only)" else "")

let report_recovery_error = function
  | Journal.Journal_corrupt { record; reason } ->
      Format.eprintf "journal corrupt at record %d: %s@." record reason;
      1
  | Durable.Recovery_error { record; reason } ->
      Format.eprintf "recovery failed at record %d: %s@." record reason;
      1
  | Durable.Checkpoint_corrupt { generation; reason } ->
      Format.eprintf "checkpoint corrupt%s: %s@."
        (match generation with
        | Some g -> Printf.sprintf " (generation %d)" g
        | None -> "")
        reason;
      1
  | Chronicle_core.Snapshot.Snapshot_error msg ->
      Format.eprintf "checkpoint error: %s@." msg;
      1
  | exn -> raise exn

let run_file snapshot_in snapshot_out durable_dir sync crash_after crash_point
    jobs batch salvage keep_checkpoints segment_bytes heavy_threshold path =
  let mode = if salvage then Durable.Salvage else Durable.Strict in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let base_session () =
    match snapshot_in with
    | None -> Session.create ~jobs ~heavy_threshold ()
    | Some snap -> (
        match Session_snapshot.load_file ~jobs ~heavy_threshold snap with
        | session ->
            Format.printf "restored snapshot %s@." snap;
            session
        | exception Chronicle_core.Snapshot.Snapshot_error msg
        | exception Session_snapshot.Session_snapshot_error msg ->
            Format.eprintf "snapshot error: %s@." msg;
            exit 1)
  in
  let session, durable =
    match durable_dir with
    | None -> (base_session (), None)
    | Some dir -> (
        let storage = Storage.disk ~dir in
        if Durable.has_state storage then
          match
            Durable.recover ~sync ~jobs ~heavy_threshold ~mode ~keep_checkpoints
              ?segment_bytes ~storage ()
          with
          | d, report ->
              Format.printf "recovered %s: %a@." dir pp_recovery report;
              (Session.of_db (Durable.db d), Some d)
          | exception e -> exit (report_recovery_error e)
        else
          let session = base_session () in
          ( session,
            Some
              (Durable.attach ~sync ~keep_checkpoints ?segment_bytes ~storage
                 (Session.db session)) ))
  in
  (match (durable, crash_after) with
  | Some d, Some n -> Fault.arm (Durable.fault d) ~after:n crash_point
  | _ -> ());
  (try Session.set_batch session batch
   with Invalid_argument msg ->
     Format.eprintf "%s@." msg;
     exit 1);
  match Parser.parse src with
  | exception e -> report_error e
  | stmts ->
      (* execute statement by statement so partial progress is visible;
         under --batch N an APPEND's ack is deferred until its group
         commits, so staged results queue here and print — in staging
         order, which is watermark order — as soon as the next flush
         resolves them, keeping the output byte-identical to --batch 1 *)
      let pending = Queue.create () in
      let drain_pending () =
        while not (Queue.is_empty pending) do
          print_result (Analyze.resolve_staged session (Queue.pop pending))
        done
      in
      let rec go = function
        | [] -> (
            match drain_pending () with
            | exception Fault.Crash point ->
                Format.printf "simulated crash at %s@." point;
                2
            | exception e -> report_error e
            | () -> (
                (match durable with
                | Some d -> (
                    match Durable.health d with
                    | Durable.Degraded reason ->
                        Format.printf "degraded (%s): checkpoint skipped@."
                          reason
                    | Durable.Healthy -> (
                        match Durable.checkpoint d with
                        | () ->
                            Format.printf "checkpointed %s@."
                              (Option.get durable_dir)
                        | exception Chronicle_core.Snapshot.Snapshot_error msg
                          ->
                            Format.eprintf "checkpoint error: %s@." msg;
                            exit 1))
                | None -> ());
                match snapshot_out with
                | None -> 0
                | Some snap -> (
                    match Session_snapshot.save_file session snap with
                    | () ->
                        Format.printf "saved snapshot %s@." snap;
                        0
                    | exception Chronicle_core.Snapshot.Snapshot_error msg
                    | exception Session_snapshot.Session_snapshot_error msg ->
                        Format.eprintf "snapshot error: %s@." msg;
                        1)))
        | stmt :: rest -> (
            match
              match Analyze.exec session stmt with
              | Analyze.Staged _ as staged -> Queue.add staged pending
              | result ->
                  drain_pending ();
                  print_result result
            with
            | () -> go rest
            | exception Fault.Crash point ->
                (* the process "dies" here: no checkpoint, no snapshot —
                   the journal keeps the batch's write-ahead record *)
                Format.printf "simulated crash at %s@." point;
                2
            | exception e -> report_error e)
      in
      go stmts

let recover_dir sync jobs salvage keep_checkpoints segment_bytes
    heavy_threshold dir =
  let mode = if salvage then Durable.Salvage else Durable.Strict in
  let storage = Storage.disk ~dir in
  if not (Durable.has_state storage) then begin
    Format.eprintf "no durable state in %s@." dir;
    1
  end
  else
    match
      Durable.recover ~sync ~jobs ~heavy_threshold ~mode ~keep_checkpoints
        ?segment_bytes ~storage ()
    with
    | d, report ->
        Format.printf "recovered %s: %a@." dir pp_recovery report;
        let db = Durable.db d in
        List.iter
          (fun v ->
            let name = Chronicle_core.View.name v in
            Format.printf "view %s: %d row(s)@." name
              (List.length (Chronicle_core.Db.view_contents db name)))
          (Chronicle_core.Db.views db);
        0
    | exception e -> report_recovery_error e

let scrub_dir dir =
  let storage = Storage.disk ~dir in
  if not (Durable.has_state storage) then begin
    Format.eprintf "no durable state in %s@." dir;
    1
  end
  else begin
    let inventory = Scrub.run storage in
    Format.printf "%a" Scrub.pp inventory;
    if Scrub.clean inventory then begin
      Format.printf "scrub %s: clean@." dir;
      0
    end
    else begin
      Format.printf "scrub %s: DAMAGED@." dir;
      1
    end
  end

let repl () =
  let session = Session.create () in
  Format.printf
    "chronicle repl — statements end with ';', Ctrl-D to exit.@.Try: CREATE \
     CHRONICLE t (a INT); DEFINE VIEW v AS SELECT a, COUNT(*) AS n FROM \
     CHRONICLE t GROUP BY a;@.";
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then Format.printf "> @?"
    else Format.printf "… @?";
    match input_line stdin with
    | exception End_of_file -> 0
    | line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        if String.contains line ';' then begin
          Buffer.clear buffer;
          (match Analyze.run_script session text with
          | results -> List.iter print_result results
          | exception e -> ignore (report_error e));
          loop ()
        end
        else loop ()
  in
  loop ()

let demo_script =
  "CREATE CHRONICLE mileage (acct INT, flight STRING, miles INT);\n\
   CREATE RELATION customers (cust INT, state STRING) KEY (cust);\n\
   INSERT INTO customers VALUES (1, 'NJ'), (2, 'NY');\n\
   DEFINE VIEW balance AS SELECT acct, SUM(miles) AS balance, COUNT(*) AS \
   flights FROM CHRONICLE mileage GROUP BY acct;\n\
   DEFINE VIEW by_state AS SELECT state, SUM(miles) AS total FROM CHRONICLE \
   mileage JOIN customers ON acct = cust GROUP BY state;\n\
   APPEND INTO mileage VALUES (1, 'EWR-SFO', 2565);\n\
   APPEND INTO mileage VALUES (2, 'JFK-LAX', 2475), (1, 'SFO-EWR', 2565);\n\
   SHOW VIEW balance;\n\
   SHOW VIEW by_state;\n\
   SHOW CLASSIFY by_state;"

let demo () =
  Format.printf "-- the script:@.%s@.@.-- results:@." demo_script;
  let session = Session.create () in
  match Analyze.run_script session demo_script with
  | results ->
      List.iter print_result results;
      0
  | exception e -> report_error e

(* ---- the server and its client ---- *)

module Server = Chronicle_net.Server
module Client = Chronicle_net.Client
module Protocol = Chronicle_net.Protocol

let serve_sock socket durable_dir sync jobs batch salvage keep_checkpoints
    segment_bytes heavy_threshold =
  let mode = if salvage then Durable.Salvage else Durable.Strict in
  let db, durable =
    match durable_dir with
    | None -> (Chronicle_core.Db.create ~jobs ~heavy_threshold (), None)
    | Some dir -> (
        let storage = Storage.disk ~dir in
        if Durable.has_state storage then
          match
            Durable.recover ~sync ~jobs ~heavy_threshold ~mode ~keep_checkpoints
              ?segment_bytes ~storage ()
          with
          | d, report ->
              Format.printf "recovered %s: %a@." dir pp_recovery report;
              (Durable.db d, Some d)
          | exception e -> exit (report_recovery_error e)
        else
          let db = Chronicle_core.Db.create ~jobs ~heavy_threshold () in
          ( db,
            Some
              (Durable.attach ~sync ~keep_checkpoints ?segment_bytes ~storage db)
          ))
  in
  match Server.create ~batch db with
  | exception Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      1
  | server ->
      let lfd = Server.listen_unix socket in
      Server.serve server lfd ~on_ready:(fun () ->
          Format.printf "listening on %s@." socket);
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      (match durable with
      | Some d -> (
          match Durable.health d with
          | Durable.Degraded reason ->
              Format.printf "degraded (%s): checkpoint skipped@." reason
          | Durable.Healthy -> (
              match Durable.checkpoint d with
              | () -> Format.printf "checkpointed %s@." (Option.get durable_dir)
              | exception Chronicle_core.Snapshot.Snapshot_error msg ->
                  Format.eprintf "checkpoint error: %s@." msg;
                  exit 1))
      | None -> ());
      Format.printf "server stopped@.";
      0

let client_run socket fast_append shutdown script_path =
  if script_path = None && not shutdown then begin
    Format.eprintf "client: nothing to do — pass a SCRIPT, --shutdown, or both@.";
    1
  end
  else
    match Client.connect_unix socket with
    | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot connect to %s: %s@." socket
          (Unix.error_message e);
        1
    | c ->
        let code = ref 0 in
        (match script_path with
        | None -> ()
        | Some path -> (
            let ic = open_in path in
            let src = really_input_string ic (in_channel_length ic) in
            close_in ic;
            (* validate locally first, so a bad script reports exactly as
               a local [run] would — and never reaches the server *)
            match Parser.parse src with
            | exception e -> code := report_error e
            | stmts ->
                (if fast_append then
                   (* pair each statement's AST with its source chunk;
                      appends ride the binary fast path, everything else
                      goes as its own source text *)
                   let chunks = Client.split_statements src in
                   if List.length chunks = List.length stmts then
                     List.iter2
                       (fun stmt chunk ->
                         match stmt with
                         | Ast.Append_into { chronicle; rows } ->
                             Client.send c (Protocol.Append { chronicle; rows })
                         | _ -> Client.send c (Protocol.Stmt chunk))
                       stmts chunks
                   else Client.send c (Protocol.Stmt src)
                 else Client.send c (Protocol.Stmt src));
                Client.send c Protocol.Flush;
                let rec loop () =
                  match Client.recv c with
                  | Protocol.Flushed -> ()
                  | Protocol.Result text ->
                      Format.printf "%s@." text;
                      loop ()
                  | Protocol.Ack { chronicle; sn; count } ->
                      Format.printf "appended %d row(s) to %s at sn %a@." count
                        chronicle Chronicle_core.Seqnum.pp sn;
                      loop ()
                  | Protocol.Err { kind = _; message } ->
                      Format.eprintf "%s@." message;
                      code := 1;
                      loop ()
                  | Protocol.Pong | Protocol.Bye -> loop ()
                in
                (match loop () with
                | () -> ()
                | exception End_of_file ->
                    Format.eprintf "connection closed by server@.";
                    code := 1
                | exception Chronicle_net.Wire.Decode_error msg ->
                    Format.eprintf "protocol error: %s@." msg;
                    code := 1)));
        (if shutdown then
           match
             Client.send c Protocol.Shutdown;
             Client.recv c
           with
           | Protocol.Bye -> Format.printf "server shutting down@."
           | _ -> ()
           | exception End_of_file -> ()
           | exception Chronicle_net.Wire.Decode_error _ -> ());
        Client.close c;
        !code

open Cmdliner

let sync_conv =
  let parse s =
    match Journal.sync_policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p =
    Format.pp_print_string ppf (Journal.sync_policy_to_string p)
  in
  Arg.conv (parse, print)

let sync_arg =
  Arg.(
    value
    & opt sync_conv Journal.Sync_always
    & info [ "sync" ] ~docv:"POLICY"
        ~doc:
          "Journal sync policy: $(b,always), $(b,never) or $(b,every:N) \
           (fsync once per N records).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Maintenance parallelism: fold affected views across $(docv) \
           domains per append ($(b,0) = the recommended domain count). \
           Results are identical for every value; only wall-clock time \
           changes.")

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Recover the maximal consistent prefix instead of raising on \
           damage: quarantine damaged journal/checkpoint bytes to \
           $(b,.quarantine) sidecars and open the database read-only \
           (degraded).")

let keep_arg =
  Arg.(
    value & opt int 1
    & info [ "keep-checkpoints" ] ~docv:"K"
        ~doc:
          "Checkpoint generations to retain. $(b,1) (default) keeps the \
           legacy single-file layout; $(b,K >= 2) rotates CRC-headed \
           $(b,checkpoint.N) generations, falling back one generation at a \
           time on recovery if the newest is damaged.")

let segment_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment-bytes" ] ~docv:"BYTES"
        ~doc:
          "Rotate the journal into sealed $(b,journal.N) segments once the \
           active file would exceed $(docv) bytes (default: unbounded, \
           single file). Corruption is isolated per segment.")

let heavy_threshold_arg =
  Arg.(
    value
    & opt int 0
    & info [ "heavy-threshold" ] ~docv:"N"
        ~doc:
          "Promotion bar of the heavy-light key partition used to maintain \
           key-join views: a join key seen at least $(docv) times gets its \
           matched tuples materialized and served from cache until the \
           relation changes. $(b,0) = adaptive (default); $(b,65536) or \
           more disables partitioning (the bar is unreachable, so probes \
           skip tracking entirely). Never changes view contents or order, \
           only per-append probe cost.")

let run_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT" ~doc:"Script file to execute.")
  in
  let snapshot_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "load" ] ~docv:"SNAPSHOT"
          ~doc:
            "Restore the database from a snapshot before the script runs \
             (ignored when $(b,--durable) finds existing state).")
  in
  let snapshot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"SNAPSHOT"
          ~doc:"Save the database to a snapshot after the script succeeds.")
  in
  let durable_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "durable" ] ~docv:"DIR"
          ~doc:
            "Run with write-ahead journaling into $(docv): existing state is \
             recovered first, every append is journaled before it executes, \
             and a checkpoint is taken when the script succeeds.")
  in
  let crash_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Simulate a crash at the $(b,--crash-point) fault point after \
             $(docv) hits (requires $(b,--durable)); the process stops with \
             exit status 2, leaving the journal for $(b,recover).")
  in
  let crash_point =
    Arg.(
      value
      & opt string "post-journal-write"
      & info [ "crash-point" ] ~docv:"POINT"
          ~doc:
            "Instrumented fault point armed by $(b,--crash-after) (default \
             $(b,post-journal-write); e.g. $(b,post-retract-write), \
             $(b,post-insert-write), $(b,view-fold)).")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Group commit: stage appends and commit up to $(docv) of them \
             as one journal record and one sync ($(b,1) = every append \
             commits immediately). Output is byte-identical for every \
             value; only the journal's record grouping — and the appends \
             lost to a mid-group crash — changes.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a view-definition-language script.")
    Term.(
      const run_file $ snapshot_in $ snapshot_out $ durable_dir $ sync_arg
      $ crash_after $ crash_point $ jobs_arg $ batch_arg $ salvage_arg
      $ keep_arg $ segment_arg $ heavy_threshold_arg $ path)

let recover_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Durable state directory to recover.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild a database from checkpoint + journal and report what was \
          replayed.")
    Term.(
      const recover_dir $ sync_arg $ jobs_arg $ salvage_arg $ keep_arg
      $ segment_arg $ heavy_threshold_arg $ dir)

let scrub_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Durable state directory to verify.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Read-only CRC verification of every checkpoint generation and \
          journal record; exit 0 if clean, 1 if damage was found.")
    Term.(const scrub_dir $ dir)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the server.")

let serve_cmd =
  let durable_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "durable" ] ~docv:"DIR"
          ~doc:
            "Serve with write-ahead journaling into $(docv): existing state \
             is recovered first, every commit is journaled, and a checkpoint \
             is taken on clean shutdown.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Initial group-commit staging threshold of every new \
             connection's session (each client changes its own with $(b,SET \
             BATCH)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve one shared database to wire-protocol clients over a \
          Unix-domain socket until a client sends SHUTDOWN.")
    Term.(
      const serve_sock $ socket_arg $ durable_dir $ sync_arg $ jobs_arg
      $ batch_arg $ salvage_arg $ keep_arg $ segment_arg
      $ heavy_threshold_arg)

let client_cmd =
  let script =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT" ~doc:"Script file to run against the server.")
  in
  let fast =
    Arg.(
      value & flag
      & info [ "fast-append" ]
          ~doc:
            "Parse the script locally and send each $(b,APPEND INTO) as a \
             pre-parsed binary APPEND frame — the server skips its \
             lexer/parser on the append path.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the server to shut down (after the script, if any).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Run a script against a chronicle server; output is byte-identical \
          to a local $(b,run) of the same script.")
    Term.(const client_run $ socket_arg $ fast $ shutdown $ script)

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive statement loop.") Term.(const repl $ const ())

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a canned frequent-flyer demo script.")
    Term.(const demo $ const ())

let () =
  let info =
    Cmd.info "chronicle-cli"
      ~doc:"The chronicle data model: declarative persistent views over transaction streams."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; recover_cmd; scrub_cmd; serve_cmd; client_cmd; repl_cmd;
            demo_cmd ]))
