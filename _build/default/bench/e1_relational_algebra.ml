(* E1 — Proposition 3.1: relational algebra over chronicles is IM-C^k,
   not IM-R^k.  A view with a chronicle-chronicle cross product needs
   per-append maintenance work that grows with |C|; a CA_1 view over
   the same stream stays flat; and the system statically rejects the
   cross product as a persistent-view definition. *)

open Relational
open Chronicle_core
open Chronicle_baseline

let schema = Schema.make [ ("k", Value.TInt); ("x", Value.TInt) ]

let row i = Tuple.make [ Value.Int (i mod 50); Value.Int i ]

let run () =
  Measure.section "E1: Proposition 3.1 — full RA is IM-C^k"
    "Per-append maintenance cost of a chronicle-x-chronicle view vs a CA_1 \
     view, as the chronicle grows.  The cross product must re-read retained \
     history on every append (chronicle_scan > 0, cost ~ |C|); the CA_1 \
     view never touches it.";
  let rows = ref [] in
  List.iter
    (fun size ->
      let group = Group.create "g" in
      let c1 = Chron.create ~group ~retention:Chron.Full ~name:"c1" schema in
      let c2 = Chron.create ~group ~retention:Chron.Full ~name:"c2" schema in
      (* the bad view: pairs of equal keys across the two chronicles *)
      let bad_def =
        Sca.define ~allow_non_ca:true ~name:"pairs"
          ~body:
            (Ca.Select
               ( Predicate.(Cmp (Attr "x", Eq, Attr "r.x")),
                 Ca.CrossChron (Ca.Chronicle c1, Ca.Chronicle c2) ))
          (Sca.Group_agg ([ "k" ], [ Aggregate.count_star "n" ]))
      in
      let bad = Delta_ra.create bad_def in
      let good_def =
        Sca.define ~name:"per_key" ~body:(Ca.Chronicle c1)
          (Sca.Group_agg ([ "k" ], [ Aggregate.sum "x" "total" ]))
      in
      let good = Delta_ra.create good_def in
      (* prefill both chronicles to [size] *)
      for i = 1 to size do
        let chron = if i mod 2 = 0 then c1 else c2 in
        let sn = Chron.append chron [ row i ] in
        ignore sn
      done;
      let appends = 20 in
      let bad_cost =
        Measure.per_op ~times:appends (fun i ->
            let tu = row (size + i) in
            let sn = Chron.append c1 [ tu ] in
            Delta_ra.on_batch bad ~sn ~batch:[ (c1, [ Chron.tag sn tu ]) ])
      in
      let good_cost =
        Measure.per_op ~times:appends (fun i ->
            let tu = row (size + appends + i) in
            let sn = Chron.append c1 [ tu ] in
            Delta_ra.on_batch good ~sn ~batch:[ (c1, [ Chron.tag sn tu ]) ])
      in
      rows :=
        [
          Measure.i size;
          Measure.f1 bad_cost.Measure.micros;
          Measure.f1 (Measure.counter bad_cost Stats.Chronicle_scan);
          Measure.f2 good_cost.Measure.micros;
          Measure.f1 (Measure.counter good_cost Stats.Chronicle_scan);
        ]
        :: !rows)
    [ 1_000; 2_000; 4_000; 8_000; 16_000 ];
  Measure.print_table ~title:"E1  per-append maintenance vs |C|"
    ~header:
      [ "|C|"; "RA-view us/append"; "RA scans/append"; "CA_1 us/append";
        "CA_1 scans/append" ]
    (List.rev !rows);
  (* the static side of the proposition: the engine refuses the view *)
  let db = Db.create () in
  let c = Db.add_chronicle db ~name:"c" schema in
  let bad =
    Sca.define ~allow_non_ca:true ~name:"bad"
      ~body:(Ca.CrossChron (Ca.Chronicle c, Ca.Chronicle c))
      (Sca.Group_agg ([ "k" ], [ Aggregate.count_star "n" ]))
  in
  (match Db.define_view db bad with
  | _ -> Measure.note "UNEXPECTED: the database accepted an IM-C^k view"
  | exception Ca.Ill_formed _ ->
      Measure.note
        "classifier verdict: chronicle cross product = %s; Db.define_view \
         rejected it (as Theorem 4.3 prescribes)"
        (Classify.im_class_name (Classify.sca bad).Classify.view_im))
