(* E12 — operational: snapshot save/load cost vs materialized state
   size.  Because the chronicle is not stored, the persistent views ARE
   the database; restart cost is proportional to |V| (plus retained
   windows), never to |C|. *)

open Relational
open Chronicle_core
open Chronicle_workload

let run () =
  Measure.section "E12: snapshot cost (restart without replay)"
    "Save/load a database whose views hold |V| groups after 5x|V| \
     appends with retention Discard.  Cost scales with the materialized \
     state, not with the (unstored, unbounded) chronicle.";
  let rows = ref [] in
  List.iter
    (fun groups ->
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"txns" Banking.txn_schema);
      ignore
        (Db.define_view db
           (Sca.define ~name:"balance"
              ~body:(Ca.Chronicle (Db.chronicle db "txns"))
              (Sca.Group_agg
                 ( [ "acct" ],
                   [ Aggregate.sum "amount" "bal"; Aggregate.count_star "n";
                     Aggregate.avg "amount" "avg" ] ))));
      let rng = Rng.create 3 in
      let zipf = Zipf.create ~n:groups ~s:0.5 in
      for _ = 1 to 5 * groups do
        ignore (Db.append db "txns" [ Banking.txn rng zipf ])
      done;
      let text = ref "" in
      let save_secs = Measure.median_time ~runs:3 (fun () -> text := Snapshot.save db) in
      let load_secs =
        Measure.median_time ~runs:3 (fun () -> ignore (Snapshot.load !text))
      in
      rows :=
        [
          Measure.i (View.size (Db.view db "balance"));
          Measure.i (Chron.total_appended (Db.chronicle db "txns"));
          Measure.f1 (save_secs *. 1e3);
          Measure.f1 (load_secs *. 1e3);
          Measure.i (String.length !text / 1024);
        ]
        :: !rows)
    [ 1_000; 10_000; 100_000 ];
  Measure.print_table ~title:"E12  snapshot save/load vs view size"
    ~header:[ "|V| groups"; "|C| appended"; "save ms"; "load ms"; "size KiB" ]
    (List.rev !rows)
