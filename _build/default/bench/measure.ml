(* Measurement kit for the experiment harness: wall-clock timing plus
   the engine's operation counters, and fixed-width table printing. *)

open Relational

let now () = Unix.gettimeofday ()

(* Median wall-clock time of [runs] executions of [f], in seconds. *)
let median_time ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = now () in
        f ();
        now () -. t0)
  in
  let sorted = List.sort Float.compare samples in
  List.nth sorted (runs / 2)

type per_op = {
  micros : float; (* wall micro-seconds per operation *)
  counters : (Stats.counter * float) list; (* per-operation counter deltas *)
}

(* Run [op] [times] times; report wall time and counters per call. *)
let per_op ?(times = 200) op =
  let before = Stats.snapshot () in
  let t0 = now () in
  for i = 0 to times - 1 do
    op i
  done;
  let elapsed = now () -. t0 in
  let after = Stats.snapshot () in
  let n = float_of_int times in
  {
    micros = elapsed /. n *. 1e6;
    counters =
      List.map (fun (c, d) -> (c, float_of_int d /. n)) (Stats.diff before after);
  }

let counter r c =
  match List.assoc_opt c r.counters with Some v -> v | None -> 0.

(* ---- table printing ---- *)

let rule width = String.make width '-'

let print_table ~title ~header rows =
  let columns = List.length header in
  let widths = Array.make columns 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  let total = Array.fold_left ( + ) 0 widths + (3 * (columns - 1)) in
  Printf.printf "\n%s\n%s\n" title (rule (max total (String.length title)));
  print_endline (String.concat " | " (List.mapi pad header));
  print_endline (rule total);
  List.iter (fun row -> print_endline (String.concat " | " (List.mapi pad row))) rows;
  flush stdout

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let i v = string_of_int v

let section title doc =
  Printf.printf "\n==== %s ====\n%s\n" title doc;
  flush stdout

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt
