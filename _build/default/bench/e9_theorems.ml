(* E9 — dynamic checks of Theorem 4.1 (monotonicity) and Theorem 4.3
   (maximality): randomized streams through random CA expressions, with
   the freshness invariant verified on every delta, plus the
   classifier's verdict on each of the four forbidden extensions. *)

open Relational
open Chronicle_core
open Chronicle_workload

let schema = Schema.make [ ("acct", Value.TInt); ("x", Value.TInt) ]

let random_expr rng c1 c2 =
  let base () = if Rng.bool rng then Ca.Chronicle c1 else Ca.Chronicle c2 in
  let pred () =
    match Rng.int rng 3 with
    | 0 -> Predicate.("x" >% Value.Int (Rng.int rng 100))
    | 1 -> Predicate.("acct" =% Value.Int (1 + Rng.int rng 5))
    | _ ->
        Predicate.(
          Or ("acct" =% Value.Int (1 + Rng.int rng 5), "x" <% Value.Int (Rng.int rng 50)))
  in
  let rec go depth =
    if depth = 0 then base ()
    else
      match Rng.int rng 4 with
      | 0 -> base ()
      | 1 -> Ca.Select (pred (), go (depth - 1))
      | 2 -> Ca.Union (go (depth - 1), go (depth - 1))
      | _ -> Ca.Diff (go (depth - 1), go (depth - 1))
  in
  go 3

let run () =
  Measure.section "E9: Theorems 4.1 and 4.3 — dynamic invariant checks"
    "Random CA expressions driven by random streams: every Δ tuple must \
     carry the batch's fresh sequence number (Thm 4.1), and the \
     accumulated Δs must equal full recomputation.  Then the four \
     forbidden extensions of Thm 4.3, as judged by the classifier.";
  let rng = Rng.create 23 in
  let trials = 200 in
  let violations = ref 0 and mismatches = ref 0 and deltas_checked = ref 0 in
  for _ = 1 to trials do
    let group = Group.create "g" in
    let c1 = Chron.create ~group ~retention:Chron.Full ~name:"c1" schema in
    let c2 = Chron.create ~group ~retention:Chron.Full ~name:"c2" schema in
    let expr = random_expr rng c1 c2 in
    let out_schema = Ca.schema_of expr in
    let collected = ref [] in
    for _ = 1 to 10 do
      let chron = if Rng.bool rng then c1 else c2 in
      let tuples =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            Tuple.make [ Value.Int (1 + Rng.int rng 5); Value.Int (Rng.int rng 100) ])
      in
      let sn = Chron.append chron tuples in
      let tagged = List.map (Chron.tag sn) tuples in
      let delta = Delta.eval expr ~sn ~batch:[ (chron, tagged) ] in
      incr deltas_checked;
      if not (Delta.all_fresh out_schema sn delta) then incr violations;
      collected := !collected @ delta
    done;
    let full = Eval.eval expr in
    let sort = List.sort Tuple.compare in
    if not (List.equal Tuple.equal (sort !collected) (sort full)) then
      incr mismatches
  done;
  Measure.print_table ~title:"E9a  randomized Thm 4.1 checks"
    ~header:[ "trials"; "deltas checked"; "freshness violations"; "recompute mismatches" ]
    [ [ Measure.i trials; Measure.i !deltas_checked; Measure.i !violations;
        Measure.i !mismatches ] ];

  let group = Group.create "g" in
  let c1 = Chron.create ~group ~name:"c1" schema in
  let c2 = Chron.create ~group ~name:"c2" schema in
  let rel = Relation.create ~name:"r" ~schema ~key:[ "acct" ] () in
  ignore rel;
  let forbidden =
    [
      ("projection dropping sn", Ca.Project ([ "acct" ], Ca.Chronicle c1));
      ( "grouping without sn",
        Ca.GroupBySeq ([ "acct" ], [ Aggregate.sum "x" "s" ], Ca.Chronicle c1) );
      ("chronicle cross product", Ca.CrossChron (Ca.Chronicle c1, Ca.Chronicle c2));
      ( "non-equijoin of chronicles",
        Ca.ThetaJoinChron
          ( Predicate.(Cmp (Attr "x", Lt, Attr "r.x")),
            Ca.Chronicle c1,
            Ca.Chronicle c2 ) );
    ]
  in
  let rows =
    List.map
      (fun (name, e) ->
        let r = Classify.ca e in
        let rejected =
          match Ca.check e with
          | () -> "accepted (BUG)"
          | exception Ca.Ill_formed _ -> "rejected"
        in
        [ name; Classify.im_class_name r.Classify.body_im; rejected ])
      forbidden
  in
  Measure.print_table ~title:"E9b  Thm 4.3 forbidden extensions"
    ~header:[ "extension"; "classified"; "Ca.check" ]
    rows
