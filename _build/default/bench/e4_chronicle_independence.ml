(* E4 — the headline claim: summary queries in sub-second time over
   arbitrarily large chronicles, with maintenance cost independent of
   |C| and zero access to stored history.

   The persistent-view engine runs with retention Discard — the
   chronicle is not stored AT ALL, which is the model's point — up to
   10^6 appends.  The recomputation baseline needs retention Full and
   its refresh cost grows linearly (we sweep it to 10^5 only, it is
   already ~1000x slower there). *)

open Relational
open Chronicle_core
open Chronicle_workload

let accounts = 1_000

let setup retention =
  let db = Db.create () in
  ignore (Db.add_chronicle db ?retention ~name:"mileage" Flyer.mileage_schema);
  let cust =
    Db.add_relation db ~name:"customers" ~schema:Flyer.customer_schema
      ~key:[ "acct" ] ()
  in
  let rng = Rng.create 4 in
  List.iter (Versioned.insert cust) (Flyer.customers rng ~n:accounts);
  let def =
    Sca.define ~name:"by_state"
      ~body:
        (Ca.KeyJoinRel
           ( Ca.Chronicle (Db.chronicle db "mileage"),
             Versioned.relation cust,
             [ ("acct", "acct") ] ))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))
  in
  ignore (Db.define_view db def);
  db

let run () =
  Measure.section "E4: chronicle-size independence (the headline)"
    "Frequent-flyer workload with a key-joined balance view (SCA_join).  \
     The engine column uses retention Discard: history does not even \
     exist.  Maintenance cost and summary-query latency stay flat from \
     10^3 to 10^6 appends; the naive recompute baseline grows linearly \
     and needs the full history retained.";
  let rng = Rng.create 11 in
  let zipf = Zipf.create ~n:accounts ~s:1.0 in
  let rows = ref [] in
  let db = setup None (* Discard *) in
  let appended = ref 0 in
  List.iter
    (fun target ->
      while !appended < target do
        ignore (Db.append db "mileage" [ Flyer.mileage_event rng zipf ]);
        incr appended
      done;
      let maint =
        Measure.per_op ~times:200 (fun _ ->
            ignore (Db.append db "mileage" [ Flyer.mileage_event rng zipf ]);
            incr appended)
      in
      let query =
        Measure.per_op ~times:500 (fun i ->
            ignore
              (Db.summary db ~view:"by_state" [ Value.Int ((i mod accounts) + 1) ]))
      in
      rows :=
        [
          Measure.i !appended;
          Measure.f2 maint.Measure.micros;
          Measure.f1 (Measure.counter maint Stats.Chronicle_scan);
          Measure.f2 query.Measure.micros;
        ]
        :: !rows)
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  Measure.print_table
    ~title:"E4a  persistent view engine (chronicle NOT stored)"
    ~header:[ "|C|"; "maintain us/append"; "scans/append"; "summary query us" ]
    (List.rev !rows);

  (* the baseline: naive recomputation over retained history *)
  let rows = ref [] in
  List.iter
    (fun size ->
      let group = Group.create "g" in
      let chron =
        Chron.create ~group ~retention:Chron.Full ~name:"mileage"
          Flyer.mileage_schema
      in
      let def =
        Sca.define ~name:"balance" ~body:(Ca.Chronicle chron)
          (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ]))
      in
      let naive = Chronicle_baseline.Naive.create def in
      let rng = Rng.create 11 in
      for _ = 1 to size do
        ignore (Chron.append chron [ Flyer.mileage_event rng zipf ])
      done;
      let before = Stats.snapshot () in
      let secs = Measure.median_time ~runs:3 (fun () -> Chronicle_baseline.Naive.refresh naive) in
      let after = Stats.snapshot () in
      rows :=
        [
          Measure.i size;
          Measure.f1 (secs *. 1e3);
          Measure.i (Stats.diff_get before after Stats.Chronicle_scan / 3);
        ]
        :: !rows)
    [ 1_000; 10_000; 100_000 ];
  Measure.print_table
    ~title:"E4b  naive recomputation baseline (needs retention Full)"
    ~header:[ "|C|"; "refresh ms"; "tuples scanned/refresh" ]
    (List.rev !rows)
