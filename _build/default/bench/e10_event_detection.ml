(* E10 — §6: history-less composite-event detection.

   Throughput of the event detector as rules and pattern sizes grow,
   with the chronicle-scan counter proving that no history is re-read,
   and bounded partial-instance state. *)

open Relational
open Chronicle_core
open Chronicle_events
open Chronicle_workload

let txn_schema = Banking.txn_schema

let withdrawal_over x =
  Predicate.(Or (False, And ("kind" =% Value.Str "withdrawal", "amount" <% Value.Float (-.x))))

let make_rules n =
  List.init n (fun i ->
      (Detector.rule
         ~name:(Printf.sprintf "rule_%d" i)
         ~pattern:
           (Pattern.seq
              [
                Pattern.atom "a" (withdrawal_over (float_of_int (50 + (i * 10))));
                Pattern.atom "b" (withdrawal_over (float_of_int (100 + (i * 10))));
              ])
         ~key:[ "acct" ] ~within:30 ()))

let run () =
  Measure.section "E10: §6 — history-less event detection"
    "Two-step fraud patterns correlated per account, Zipf traffic, one \
     chronon per event.  Cost grows with the number of rules, never with \
     the chronicle: the scan column stays 0 and partial state is bounded.";
  let rows = ref [] in
  List.iter
    (fun nrules ->
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"txns" txn_schema);
      let det = Detector.create (Db.chronicle db "txns") in
      Detector.attach db det;
      List.iter (Detector.add_rule det) (make_rules nrules);
      let rng = Rng.create 9 in
      let zipf = Zipf.create ~n:500 ~s:1.0 in
      let clock = ref 0 in
      (* warm up with history so a scan would show *)
      for _ = 1 to 5_000 do
        incr clock;
        Db.advance_clock db !clock;
        ignore (Db.append db "txns" [ Banking.txn rng zipf ])
      done;
      let cost =
        Measure.per_op ~times:5_000 (fun _ ->
            incr clock;
            Db.advance_clock db !clock;
            ignore (Db.append db "txns" [ Banking.txn rng zipf ]))
      in
      rows :=
        [
          Measure.i nrules;
          Measure.f2 cost.Measure.micros;
          Measure.f1 (Measure.counter cost Stats.Chronicle_scan);
          Measure.i (Detector.occurrence_count det);
          Measure.i (Detector.live_instances det);
        ]
        :: !rows)
    [ 1; 4; 16; 64 ];
  Measure.print_table ~title:"E10  event-detection cost per append"
    ~header:
      [ "rules"; "us/append"; "scans/append"; "alerts fired"; "live partials" ]
    (List.rev !rows)
