(* E7 — §5.3: batch vs incremental computation of a tiered discount.

   The incremental figure is maintained in O(1) per call and is always
   current; the batch figure requires one O(month) scan of retained
   call records at period end and is stale in between.  Both agree at
   period end. *)

open Relational
open Chronicle_core
open Chronicle_workload

let subscribers = 200

let run () =
  Measure.section "E7: §5.3 — batch to incremental (tiered discounts)"
    "A month of calls; the US-1995 plan (10% over $10, 20% over $25).  \
     The incremental column is the per-call maintenance cost of the \
     expenses view; the batch column is the end-of-month recomputation \
     for all subscribers from retained history.";
  let plan = Discount.us_phone_1995 in
  let rows = ref [] in
  List.iter
    (fun month_calls ->
      let group = Group.create "g" in
      let calls =
        Chron.create ~group ~retention:Chron.Full ~name:"calls"
          Telecom.call_schema
      in
      let def =
        Discount.view_def ~name:"expenses" ~chronicle:calls
          ~customer_attr:"number" ~amount_attr:"cost"
      in
      let view = View.create def in
      let rng = Rng.create 3 in
      let zipf = Zipf.create ~n:subscribers ~s:1.0 in
      let incr_cost =
        Measure.per_op ~times:month_calls (fun _ ->
            let tu = Telecom.call rng zipf in
            let sn = Chron.append calls [ tu ] in
            View.apply_delta view
              (Delta.eval (Sca.body def) ~sn ~batch:[ (calls, [ Chron.tag sn tu ]) ]))
      in
      (* end-of-month batch for every subscriber *)
      let batch_secs =
        Measure.median_time ~runs:3 (fun () ->
            for s = 1 to subscribers do
              ignore
                (Discount.batch_discounted plan calls ~customer_attr:"number"
                   ~amount_attr:"cost" ~customer:(Value.Int s))
            done)
      in
      (* agreement check *)
      let disagreements = ref 0 in
      for s = 1 to subscribers do
        let inc = Discount.current_discounted plan view ~customer:(Value.Int s) in
        let bat =
          Discount.batch_discounted plan calls ~customer_attr:"number"
            ~amount_attr:"cost" ~customer:(Value.Int s)
        in
        if Float.abs (inc -. bat) > 1e-6 then incr disagreements
      done;
      rows :=
        [
          Measure.i month_calls;
          Measure.f2 incr_cost.Measure.micros;
          Measure.f1 (batch_secs *. 1e3);
          Measure.i !disagreements;
        ]
        :: !rows)
    [ 1_000; 10_000; 100_000 ];
  Measure.print_table
    ~title:"E7  incremental vs end-of-period batch"
    ~header:
      [ "calls/month"; "incremental us/call"; "batch ms (all subs)";
        "disagreements" ]
    (List.rev !rows);
  Measure.note
    "staleness: the incremental figure is current after every call; the \
     batch figure is only correct once per period."
