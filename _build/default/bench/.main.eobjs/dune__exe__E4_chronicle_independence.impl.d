bench/e4_chronicle_independence.ml: Aggregate Ca Chron Chronicle_baseline Chronicle_core Chronicle_workload Db Flyer Group List Measure Relational Rng Sca Stats Value Versioned Zipf
