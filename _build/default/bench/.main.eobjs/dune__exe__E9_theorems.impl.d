bench/e9_theorems.ml: Aggregate Ca Chron Chronicle_core Chronicle_workload Classify Delta Eval Group List Measure Predicate Relation Relational Rng Schema Tuple Value
