bench/e7_batch_incremental.ml: Chron Chronicle_core Chronicle_workload Delta Discount Float Group List Measure Relational Rng Sca Telecom Value View Zipf
