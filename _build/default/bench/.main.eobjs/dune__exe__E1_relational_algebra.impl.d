bench/e1_relational_algebra.ml: Aggregate Ca Chron Chronicle_baseline Chronicle_core Classify Db Delta_ra Group List Measure Predicate Relational Sca Schema Stats Tuple Value
