bench/e2_delta_cost.ml: Ca Chron Chronicle_core Delta Group Index List Measure Predicate Relation Relational Schema Stats Tuple Value
