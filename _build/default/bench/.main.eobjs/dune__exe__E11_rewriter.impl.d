bench/e11_rewriter.ml: Aggregate Ca Chron Chronicle_core Delta Group List Measure Predicate Registry Relation Relational Rewrite Sca Schema Tuple Value View
