bench/e8_throughput.ml: Aggregate Banking Ca Chronicle_baseline Chronicle_core Chronicle_workload Db List Measure Printf Relational Rng Sca Summary_fields Zipf
