bench/main.mli:
