bench/e3_view_maintenance.ml: Aggregate Ca Chron Chronicle_core Delta Group Index List Measure Relational Sca Schema Stats Tuple Value View
