bench/measure.ml: Array Float List Printf Relational Stats String Unix
