bench/e12_snapshot.ml: Aggregate Banking Ca Chron Chronicle_core Chronicle_workload Db List Measure Relational Rng Sca Snapshot String View Zipf
