bench/e5_moving_window.ml: Aggregate Ca Calendar Chron Chronicle_core Chronicle_temporal Chronicle_workload Db Group List Measure Periodic Relational Rng Sca Stock Tuple Value Window Windowed_view
