bench/e10_event_detection.ml: Banking Chronicle_core Chronicle_events Chronicle_workload Db Detector List Measure Pattern Predicate Printf Relational Rng Stats Value Zipf
