bench/e6_affected_views.ml: Aggregate Ca Chron Chronicle_core Delta Group List Measure Predicate Printf Registry Relational Sca Schema Tuple Value View
