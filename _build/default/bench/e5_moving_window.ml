(* E5 — §5.1: periodic views over overlapping intervals.

   The daily "shares sold in the preceding W days" family can be
   maintained three ways:
     - recompute: scan the last W days of retained trades per day;
     - periodic view family: W overlapping interval views maintained
       generically (cost ~ W per trade);
     - cyclic buffer: W per-day partial sums, O(1) per trade and
       O(W) once per day (the paper's proposed optimization).
   The sweep over W shows the buffer's per-trade cost is flat. *)

open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_workload

let trades_per_day = 50
let days = 40

let run () =
  Measure.section "E5: §5.1 — moving windows (per-trade cost vs window size)"
    "Total shares over the last W days, maintained per trade.  The cyclic \
     buffer's cost does not depend on W; the generic periodic family pays \
     ~W view updates per trade; recomputation pays a scan of W days of \
     history per refresh and needs that history retained.";
  let rows = ref [] in
  List.iter
    (fun window ->
      (* --- cyclic buffer --- *)
      let rng = Rng.create 5 in
      let w =
        Window.create ~func:Aggregate.Sum ~buckets:window ~bucket_width:1
          ~start:0
      in
      let buf_cost =
        Measure.per_op ~times:(days * trades_per_day) (fun i ->
            let day = i / trades_per_day in
            Window.add w day (Value.Int (100 * (1 + Rng.int rng 50))))
      in
      (* --- auto-derived windowed view (buffer + group localization) --- *)
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"trades" Stock.trade_schema);
      let wdef =
        Sca.define ~name:"vol_w" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
          (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "s" ]))
      in
      let wv = Windowed_view.derive ~buckets:window wdef in
      Windowed_view.attach db wv;
      let rng = Rng.create 5 in
      let derived_cost =
        Measure.per_op ~times:(days * trades_per_day) (fun i ->
            let day = i / trades_per_day in
            Db.advance_clock db day;
            ignore (Db.append db "trades" [ Stock.trade_for rng "T" ]))
      in
      (* --- generic periodic family --- *)
      let db = Db.create () in
      ignore (Db.add_chronicle db ~name:"trades" Stock.trade_schema);
      let def =
        Sca.define ~name:"vol" ~body:(Ca.Chronicle (Db.chronicle db "trades"))
          (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "s" ]))
      in
      let family =
        Periodic.create ~expire_after:2 ~def
          ~calendar:(Calendar.periodic ~start:(-(window - 1)) ~width:window ~stride:1)
          ()
      in
      Periodic.attach db family;
      let rng = Rng.create 5 in
      let fam_cost =
        Measure.per_op ~times:(days * trades_per_day) (fun i ->
            let day = i / trades_per_day in
            Db.advance_clock db day;
            ignore (Db.append db "trades" [ Stock.trade_for rng "T" ]))
      in
      (* --- recomputation over retained history --- *)
      let group = Group.create "g" in
      let chron =
        Chron.create ~group ~retention:(Chron.Window (window * trades_per_day))
          ~name:"trades" Stock.trade_schema
      in
      let rng = Rng.create 5 in
      (* fill the retention ring completely so each recomputation scans
         exactly W days of trades *)
      for _ = 1 to window * trades_per_day do
        ignore (Chron.append chron [ Stock.trade_for rng "T" ])
      done;
      let recompute_cost =
        Measure.per_op ~times:50 (fun _ ->
            let total = ref 0 in
            Chron.scan
              (fun tu -> total := !total + Value.to_int (Tuple.get tu 2))
              chron;
            ignore !total)
      in
      rows :=
        [
          Measure.i window;
          Measure.f3 buf_cost.Measure.micros;
          Measure.f3 derived_cost.Measure.micros;
          Measure.f2 fam_cost.Measure.micros;
          Measure.f1 recompute_cost.Measure.micros;
          Measure.i (Periodic.live_views family);
        ]
        :: !rows)
    [ 10; 30; 100; 300 ];
  Measure.print_table
    ~title:"E5  per-trade cost of a W-day moving SUM"
    ~header:
      [ "W"; "cyclic buffer us"; "derived view us"; "periodic family us";
        "recompute us"; "live views (bounded)" ]
    (List.rev !rows)
