(* E3 — Theorems 4.4/4.5: persistent-view maintenance is
   O(t log |V|) time and O(|V|) space, never touching the chronicle.

   We sweep the number of groups |V| and measure the per-append cost of
   folding one tuple into a SUM/COUNT view backed by (a) a hash table
   (SCA_1's expected-O(1) story) and (b) a B+-tree (Theorem 4.4's
   worst-case O(log|V|)); the tree's node-visit counter exposes the
   logarithm directly. *)

open Relational
open Chronicle_core

let schema = Schema.make [ ("g", Value.TInt); ("x", Value.TInt) ]

let build index groups =
  let group = Group.create "grp" in
  let chron = Chron.create ~group ~name:"c" schema in
  let def =
    Sca.define ~name:"sums" ~body:(Ca.Chronicle chron)
      (Sca.Group_agg ([ "g" ], [ Aggregate.sum "x" "s"; Aggregate.count_star "n" ]))
  in
  let view = View.create ~index def in
  (* prefill one tuple per group so |V| = groups *)
  for g = 1 to groups do
    let tu = Tuple.make [ Value.Int g; Value.Int 1 ] in
    let sn = Chron.append chron [ tu ] in
    View.apply_delta view (Delta.eval (Sca.body def) ~sn ~batch:[ (chron, [ Chron.tag sn tu ]) ])
  done;
  (chron, def, view)

let per_append chron def view ~groups =
  Measure.per_op ~times:500 (fun i ->
      let tu = Tuple.make [ Value.Int ((i * 7919 mod groups) + 1); Value.Int 1 ] in
      let sn = Chron.append chron [ tu ] in
      View.apply_delta view
        (Delta.eval (Sca.body def) ~sn ~batch:[ (chron, [ Chron.tag sn tu ]) ]))

let run () =
  Measure.section "E3: Theorems 4.4/4.5 — maintenance vs view size |V|"
    "Per-append maintenance of a grouped SUM/COUNT view as the number of \
     groups grows.  Hash backing: flat (IM-Constant, SCA_1).  B+-tree \
     backing: the node-visit column grows logarithmically (IM-log).  The \
     chronicle-scan column stays 0: the chronicle is never read.";
  let rows = ref [] in
  List.iter
    (fun groups ->
      let hc, hd, hv = build Index.Hash groups in
      let hash = per_append hc hd hv ~groups in
      let tc, td, tv = build Index.Ordered groups in
      let tree = per_append tc td tv ~groups in
      rows :=
        [
          Measure.i groups;
          Measure.f2 hash.Measure.micros;
          Measure.f1 (Measure.counter hash Stats.Index_probe);
          Measure.f2 tree.Measure.micros;
          Measure.f1 (Measure.counter tree Stats.Index_node_visit);
          Measure.f1 (Measure.counter tree Stats.Chronicle_scan);
          Measure.i (View.size tv);
        ]
        :: !rows)
    [ 100; 1_000; 10_000; 100_000 ];
  Measure.print_table
    ~title:"E3  per-append view maintenance vs |V| (500 appends each)"
    ~header:
      [ "|V|"; "hash us"; "hash probes"; "tree us"; "tree node visits";
        "chron scans"; "rows (=O(|V|) space)" ]
    (List.rev !rows)
