(* E11 — ablation of the algebraic rewriter (DESIGN.md design choice):
   selection pushdown (a) shrinks Δ-computation when the selection is
   above a fan-out operator, and (b) turns opaque bodies into
   registry-filterable ones. *)

open Relational
open Chronicle_core

let schema = Schema.make [ ("k", Value.TInt); ("x", Value.TInt) ]

let make_rel size =
  let rschema = Schema.make [ ("rk", Value.TInt); ("rv", Value.TInt) ] in
  let rel = Relation.create ~name:"r" ~schema:rschema ~key:[ "rk" ] () in
  for i = 1 to size do
    ignore (Relation.insert rel (Tuple.make [ Value.Int i; Value.Int i ]))
  done;
  rel

let delta_cost expr chron ~appends =
  Measure.per_op ~times:appends (fun i ->
      let tu = Tuple.make [ Value.Int (i mod 50); Value.Int (i mod 97) ] in
      let sn = Chron.append chron [ tu ] in
      ignore (Delta.eval expr ~sn ~batch:[ (chron, [ Chron.tag sn tu ]) ]))

let run () =
  Measure.section "E11: rewriter ablation"
    "σ[k=0] above a chronicle x relation product: unoptimized, the delta \
     materializes |R| join tuples and then filters; optimized, the \
     selection runs first and 98% of appends never reach the product.";
  let rows = ref [] in
  List.iter
    (fun rsize ->
      let group = Group.create "g" in
      let chron = Chron.create ~group ~name:"c" schema in
      let rel = make_rel rsize in
      let body =
        Ca.Select
          (Predicate.("k" =% Value.Int 0), Ca.ProductRel (Ca.Chronicle chron, rel))
      in
      let unopt = delta_cost body chron ~appends:200 in
      let opt = delta_cost (Rewrite.optimize body) chron ~appends:200 in
      rows :=
        [
          Measure.i rsize;
          Measure.f2 unopt.Measure.micros;
          Measure.f2 opt.Measure.micros;
          Measure.f1 (unopt.Measure.micros /. opt.Measure.micros);
        ]
        :: !rows)
    [ 100; 1_000; 10_000 ];
  Measure.print_table ~title:"E11  Δ cost, selection above a product"
    ~header:[ "|R|"; "unoptimized us"; "optimized us"; "speedup" ]
    (List.rev !rows);
  (* registry filtering ablation *)
  let group = Group.create "g" in
  let chron = Chron.create ~group ~name:"c" schema in
  let mk name body =
    View.create
      (Sca.define ~name ~body (Sca.Group_agg ([ "k" ], [ Aggregate.sum "x" "s" ])))
  in
  let body =
    Ca.Select
      ( Predicate.("k" =% Value.Int 1),
        Ca.Union (Ca.Chronicle chron, Ca.Chronicle chron) )
  in
  let reg = Registry.create () in
  Registry.register reg (mk "unopt" body);
  Registry.register reg (mk "opt" (Rewrite.optimize body));
  let skipped0 = Registry.skipped reg in
  for i = 1 to 1_000 do
    let tu = Tuple.make [ Value.Int (i mod 50); Value.Int 1 ] in
    let sn = Chron.append chron [ tu ] in
    ignore (Registry.affected reg chron [ Chron.tag sn tu ])
  done;
  Measure.note
    "guard ablation: 1000 appends, 2%% matching — the optimized view was \
     skipped %d times, the unoptimized (guard-opaque) one 0 times"
    (Registry.skipped reg - skipped0)
