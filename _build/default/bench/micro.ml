(* Bechamel micro-benchmarks for the hot operators behind the IM
   complexity classes: index probes, aggregate steps, and the full
   Δ-pipeline of a fixed persistent view. *)

open Relational
open Chronicle_core
module Kit = Measure
open Bechamel
open Toolkit

module Int_tree = Btree.Make (Int)

let btree_find_test =
  let t = Int_tree.create () in
  for i = 0 to 99_999 do
    ignore (Int_tree.insert t i i)
  done;
  let k = ref 0 in
  Test.make ~name:"btree.find (100k keys)"
    (Staged.stage (fun () ->
         k := (!k + 7919) mod 100_000;
         ignore (Int_tree.find t !k)))

let btree_insert_test =
  let t = Int_tree.create () in
  let k = ref 0 in
  Test.make ~name:"btree.insert (growing)"
    (Staged.stage (fun () ->
         incr k;
         ignore (Int_tree.insert t !k !k)))

let hash_probe_test =
  let ix = Index.create Index.Hash ~attrs:[ "k" ] in
  for i = 0 to 99_999 do
    Index.add ix [ Value.Int i ] i
  done;
  let k = ref 0 in
  Test.make ~name:"hash index probe (100k keys)"
    (Staged.stage (fun () ->
         k := (!k + 7919) mod 100_000;
         ignore (Index.find ix [ Value.Int !k ])))

let agg_step_test =
  let st = ref (Aggregate.init Aggregate.Sum) in
  Test.make ~name:"aggregate SUM step"
    (Staged.stage (fun () -> st := Aggregate.step Aggregate.Sum !st (Value.Int 3)))

let delta_pipeline_test =
  let group = Group.create "g" in
  let schema = Schema.make [ ("acct", Value.TInt); ("x", Value.TInt) ] in
  let chron = Chron.create ~group ~name:"c" schema in
  let rel =
    Relation.create ~name:"r"
      ~schema:(Schema.make [ ("cust", Value.TInt); ("seg", Value.TStr) ])
      ~key:[ "cust" ] ()
  in
  for i = 1 to 1_000 do
    ignore (Relation.insert rel (Tuple.make [ Value.Int i; Value.Str "seg" ]))
  done;
  let def =
    Sca.define ~name:"v"
      ~body:
        (Ca.Select
           ( Predicate.("x" >% Value.Int 0),
             Ca.KeyJoinRel (Ca.Chronicle chron, rel, [ ("acct", "cust") ]) ))
      (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "x" "s" ]))
  in
  let view = View.create def in
  let i = ref 0 in
  Test.make ~name:"full append+maintain (SCA_join view)"
    (Staged.stage (fun () ->
         incr i;
         let tu = Tuple.make [ Value.Int ((!i mod 1_000) + 1); Value.Int !i ] in
         let sn = Chron.append chron [ tu ] in
         View.apply_delta view
           (Delta.eval (Sca.body def) ~sn ~batch:[ (chron, [ Chron.tag sn tu ]) ])))

let tests =
  Test.make_grouped ~name:"micro" ~fmt:"%s %s"
    [
      btree_find_test; btree_insert_test; hash_probe_test; agg_step_test;
      delta_pipeline_test;
    ]

let run () =
  Kit.section "MICRO: operator costs (bechamel)"
    "OLS estimate of nanoseconds per run against the monotonic clock.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.sprintf "%.1f" est
          | Some [] | None -> "n/a"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  Kit.print_table ~title:"MICRO  ns/run (OLS, monotonic clock)"
    ~header:[ "operation"; "ns/run" ] rows
