(* E6 — §5.2: identifying affected persistent views.

   n selective views over one chronicle, each watching one account; an
   append matches exactly one of them.  With registry guard filtering
   the append maintains 1 view (n cheap guard checks); without it all n
   dependents run the full Δ machinery.  The gap widens with n. *)

open Relational
open Chronicle_core

let schema = Schema.make [ ("acct", Value.TInt); ("x", Value.TInt) ]

let setup n =
  let group = Group.create "g" in
  let chron = Chron.create ~group ~name:"txns" schema in
  let reg = Registry.create () in
  let views =
    List.init n (fun i ->
        let acct = i + 1 in
        let def =
          Sca.define
            ~name:(Printf.sprintf "acct_%d" acct)
            ~body:
              (Ca.Select (Predicate.("acct" =% Value.Int acct), Ca.Chronicle chron))
            (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "x" "total" ]))
        in
        let v = View.create def in
        Registry.register reg v;
        v)
  in
  (chron, reg, views)

let run () =
  Measure.section "E6: §5.2 — affected-view identification"
    "n single-account views over one chronicle; each append concerns one \
     account.  'filtered' uses the registry's extracted guards; \
     'unfiltered' runs Δ-maintenance on every dependent view.";
  let rows = ref [] in
  List.iter
    (fun n ->
      let chron, reg, views = setup n in
      let tuple i = Tuple.make [ Value.Int ((i mod n) + 1); Value.Int 1 ] in
      let filtered =
        Measure.per_op ~times:300 (fun i ->
            let tu = tuple i in
            let sn = Chron.append chron [ tu ] in
            let batch = [ (chron, [ Chron.tag sn tu ]) ] in
            List.iter
              (fun v ->
                View.apply_delta v
                  (Delta.eval (Sca.body (View.def v)) ~sn ~batch))
              (Registry.affected reg chron [ Chron.tag sn tu ]))
      in
      let maintained_before = Registry.skipped reg in
      ignore maintained_before;
      let unfiltered =
        Measure.per_op ~times:300 (fun i ->
            let tu = tuple i in
            let sn = Chron.append chron [ tu ] in
            let batch = [ (chron, [ Chron.tag sn tu ]) ] in
            List.iter
              (fun v ->
                View.apply_delta v
                  (Delta.eval (Sca.body (View.def v)) ~sn ~batch))
              views)
      in
      rows :=
        [
          Measure.i n;
          Measure.f2 filtered.Measure.micros;
          Measure.f2 unfiltered.Measure.micros;
          Measure.f1 (unfiltered.Measure.micros /. filtered.Measure.micros);
        ]
        :: !rows)
    [ 10; 100; 300; 1_000 ];
  Measure.print_table
    ~title:"E6  per-append cost with n selective views"
    ~header:[ "n views"; "filtered us"; "unfiltered us"; "speedup" ]
    (List.rev !rows)
