(* Composite-event detection over a transaction chronicle (§6 of the
   paper: active-database event recognition as an incarnation of the
   chronicle model, evaluated history-lessly).

   Two fraud rules over card transactions:
     - rapid_drain : a large deposit followed by two large withdrawals,
       all within 10 minutes, on one account;
     - testing_card: three small withdrawals within 3 minutes (a thief
       probing a stolen card).

   Run with: dune exec examples/fraud_detection.exe *)

open Relational
open Chronicle_core
open Chronicle_events
open Chronicle_workload

let txn_schema =
  Schema.make
    [ ("acct", Value.TInt); ("kind", Value.TStr); ("amount", Value.TFloat) ]

let withdrawal_between lo hi =
  Predicate.(
    conj
      [ "kind" =% Value.Str "withdrawal";
        "amount" <% Value.Float (-.lo);
        "amount" >% Value.Float (-.hi) ])

let () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"txns" txn_schema);
  let det = Detector.create (Db.chronicle db "txns") in
  Detector.attach db det;

  (* the same chronicle simultaneously maintains an ordinary summary
     view — alarms and balances ride one transaction path.  (Defined
     up front: with retention Discard there is no history to
     initialize a later view from.) *)
  let _balance =
    Db.define_view db
      (Sca.define ~name:"balance"
         ~body:(Ca.Chronicle (Db.chronicle db "txns"))
         (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "amount" "balance" ])))
  in

  Detector.add_rule det
    (Detector.rule ~name:"rapid_drain"
       ~pattern:
         (Pattern.seq
            [
              Pattern.atom "big_deposit"
                Predicate.(
                  And ("kind" =% Value.Str "deposit", "amount" >% Value.Float 800.));
              Pattern.repeat 2
                (Pattern.atom "big_withdrawal" (withdrawal_between 300. 1e9));
            ])
       ~key:[ "acct" ] ~within:10 ~reset_on_match:true ());
  Detector.add_rule det
    (Detector.rule ~name:"testing_card"
       ~pattern:(Pattern.repeat 3 (Pattern.atom "probe" (withdrawal_between 0. 5.)))
       ~key:[ "acct" ] ~within:3 ~cooldown:30 ());

  Detector.on_match det (fun o ->
      Format.printf "ALERT %a@." Detector.pp_occurrence o);

  (* scripted incidents *)
  let post minute acct kind amount =
    Db.advance_clock db minute;
    ignore
      (Db.append db "txns"
         [ Tuple.make [ Value.Int acct; Value.Str kind; Value.Float amount ] ])
  in
  Format.printf "-- scripted incidents --@.";
  (* account 7: classic rapid drain *)
  post 0 7 "deposit" 900.;
  post 2 7 "withdrawal" (-400.);
  post 4 7 "withdrawal" (-450.);
  (* account 8: the same events but spread over an hour — no alert *)
  post 10 8 "deposit" 900.;
  post 30 8 "withdrawal" (-400.);
  post 60 8 "withdrawal" (-450.);
  (* account 9: card testing *)
  post 61 9 "withdrawal" (-1.);
  post 62 9 "withdrawal" (-2.);
  post 63 9 "withdrawal" (-1.5);

  Format.printf "@.-- a day of background traffic --@.";
  let rng = Rng.create 12 in
  let zipf = Zipf.create ~n:300 ~s:1.0 in
  let minute = ref 64 in
  for _ = 1 to 5_000 do
    incr minute;
    Db.advance_clock db !minute;
    ignore (Db.append db "txns" [ Banking.txn rng zipf ])
  done;
  Format.printf
    "%d alerts total; %d partial instances live (bounded, history-less)@."
    (Detector.occurrence_count det)
    (Detector.live_instances det);

  post (!minute + 1) 7 "deposit" 25.;
  match Db.summary db ~view:"balance" [ Value.Int 7 ] with
  | Some row ->
      Format.printf "account 7 balance now: %a@." Value.pp (Tuple.get row 1)
  | None -> ()
