(* Quickstart: a chronicle, a persistent view, summary queries.

   Run with: dune exec examples/quickstart.exe *)

open Relational
open Chronicle_core

let () =
  (* A chronicle database: chronicles + relations + persistent views. *)
  let db = Db.create () in

  (* The chronicle of card transactions.  By default nothing is retained:
     the stream is processed and dropped, exactly as the paper's model
     allows ("the entire chronicle may not be stored in the system"). *)
  let _txns =
    Db.add_chronicle db ~name:"txns"
      (Schema.make [ ("card", Value.TInt); ("amount", Value.TFloat) ])
  in

  (* A persistent view: per-card running balance and transaction count.
     Declarative — no procedural update code anywhere. *)
  let def =
    Sca.define ~name:"card_summary"
      ~body:(Ca.Chronicle (Db.chronicle db "txns"))
      (Sca.Group_agg
         ( [ "card" ],
           [ Aggregate.sum "amount" "total"; Aggregate.count_star "txn_count" ] ))
  in
  let _view = Db.define_view db def in

  (* The classifier proves the view is maintainable in constant time. *)
  Format.printf "view classification:@.%a@.@." Classify.pp_report
    (Classify.sca def);

  (* Stream transactions through. *)
  ignore (Db.append db "txns" [ Tuple.make [ Value.Int 1; Value.Float 25.0 ] ]);
  ignore (Db.append db "txns" [ Tuple.make [ Value.Int 2; Value.Float 10.0 ] ]);
  ignore (Db.append db "txns" [ Tuple.make [ Value.Int 1; Value.Float 5.5 ] ]);

  (* Summary queries are point lookups on the view — they never touch
     the (unstored) chronicle. *)
  (match Db.summary db ~view:"card_summary" [ Value.Int 1 ] with
  | Some row ->
      Format.printf "card 1 summary: %a@."
        (Tuple.pp_with (Sca.schema def))
        row
  | None -> print_endline "card 1: no activity");

  (* The same definitions work through the SQL-like surface language. *)
  let session = Chronicle_lang.Session.create () in
  let results =
    Chronicle_lang.Analyze.run_script session
      "CREATE CHRONICLE txns (card INT, amount FLOAT);\n\
       DEFINE VIEW card_summary AS\n\
       SELECT card, SUM(amount) AS total, COUNT(*) AS txn_count\n\
       FROM CHRONICLE txns GROUP BY card;\n\
       APPEND INTO txns VALUES (1, 25.0), (2, 10.0);\n\
       APPEND INTO txns VALUES (1, 5.5);\n\
       SHOW VIEW card_summary;"
  in
  Format.printf "@.via the view-definition language:@.";
  List.iter
    (fun r -> Format.printf "  %a@." Chronicle_lang.Analyze.pp_result r)
    results
