(* Industrial control (the paper's §1 lists "sensor outputs in a
   control system" among chronicle domains): a plant streams
   temperature readings; the database maintains

     - per-sensor lifetime statistics (persistent view),
     - a 60-tick moving MIN/MAX/AVG per sensor, derived automatically
       into cyclic buffers (§5.1's optimization),
     - an alarm rule: three over-threshold readings within 10 ticks
       (§6's event algebra),
     - and a consistency audit at the end.

   Run with: dune exec examples/sensor_monitoring.exe *)

open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_events
open Chronicle_workload

let reading_schema =
  Schema.make [ ("sensor", Value.TStr); ("temp", Value.TFloat) ]

let sensors = [| "boiler"; "turbine"; "condenser"; "pump" |]

let () =
  let db = Db.create () in
  ignore
    (Db.add_chronicle db ~retention:(Chron.Window 100_000) ~name:"readings"
       reading_schema);
  let chron = Db.chronicle db "readings" in

  (* lifetime statistics, maintained on every reading *)
  let stats_def =
    Sca.define ~name:"stats" ~body:(Ca.Chronicle chron)
      (Sca.Group_agg
         ( [ "sensor" ],
           [
             Aggregate.count_star "n"; Aggregate.min_ "temp" "low";
             Aggregate.max_ "temp" "high"; Aggregate.avg "temp" "mean";
           ] ))
  in
  ignore (Db.define_view db stats_def);

  (* the last 60 ticks, as auto-derived cyclic buffers *)
  let window_def =
    Sca.define ~name:"window60" ~body:(Ca.Chronicle chron)
      (Sca.Group_agg
         ( [ "sensor" ],
           [ Aggregate.max_ "temp" "peak_60"; Aggregate.avg "temp" "mean_60" ] ))
  in
  let window = Windowed_view.derive ~buckets:60 window_def in
  Windowed_view.attach db window;

  (* the alarm: three readings over 90 degrees within 10 ticks *)
  let det = Detector.create chron in
  Detector.attach db det;
  Detector.add_rule det
    (Detector.rule ~name:"overheat"
       ~pattern:
         (Pattern.repeat 3
            (Pattern.atom "hot" Predicate.("temp" >% Value.Float 90.)))
       ~key:[ "sensor" ] ~within:10 ~reset_on_match:true ~cooldown:5 ());
  let alarms = ref [] in
  Detector.on_match det (fun o -> alarms := o :: !alarms);

  (* a day of plant operation: the boiler drifts hot around tick 600 *)
  let rng = Rng.create 41 in
  for tick = 0 to 999 do
    Db.advance_clock db tick;
    Array.iter
      (fun sensor ->
        let base = if sensor = "boiler" && tick >= 600 && tick < 615 then 88. else 60. in
        let temp = base +. Rng.float rng 8. in
        ignore
          (Db.append db "readings"
             [ Tuple.make [ Value.Str sensor; Value.Float temp ] ]))
      sensors
  done;

  Format.printf "lifetime statistics:@.";
  View.iter
    (fun row ->
      Format.printf "  %a@." (Tuple.pp_with (Sca.schema stats_def)) row)
    (Db.view db "stats");

  Format.printf "@.last 60 ticks:@.";
  List.iter
    (fun row ->
      Format.printf "  %a@." (Tuple.pp_with (Sca.schema window_def)) row)
    (Windowed_view.to_list window);

  Format.printf "@.alarms (%d):@." (List.length !alarms);
  List.iter
    (fun o -> Format.printf "  %a@." Detector.pp_occurrence o)
    (List.rev !alarms);

  (* end-of-day audit: the retained window still covers everything, so
     every view can be recomputed and diffed *)
  Format.printf "@.audit:@.";
  List.iter
    (fun (name, verdict) ->
      Format.printf "  %s: %a@." name Audit.pp_verdict verdict)
    (Audit.check_db db)
