(* The §5.1 moving-window example: "a periodic view for every day that
   computes the total number of shares of a stock sold during the 30
   days preceding that day", optimized with a cyclic buffer of 30
   per-day partial sums.

   This example runs the same workload through (a) the generic periodic
   view family over a sliding calendar, and (b) the cyclic-buffer
   window optimizer, and shows that they agree while (b) does O(1)
   amortized work per trade.

   Run with: dune exec examples/stock_window.exe *)

open Relational
open Chronicle_core
open Chronicle_temporal
open Chronicle_workload

let days = 60
let window = 30

let () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"trades" Stock.trade_schema);
  let trades = Db.chronicle db "trades" in

  (* (a) a periodic view per day: shares by symbol over the last 30 days *)
  let def =
    Sca.define ~name:"volume30" ~body:(Ca.Chronicle trades)
      (Sca.Group_agg ([ "symbol" ], [ Aggregate.sum "shares" "shares30" ]))
  in
  let family =
    Periodic.create ~expire_after:3
      ~def
      ~calendar:(Calendar.periodic ~start:(-(window - 1)) ~width:window ~stride:1)
      ()
  in
  Periodic.attach db family;

  (* (b) the cyclic-buffer optimizer for one symbol *)
  let w =
    Window.create ~func:Aggregate.Sum ~buckets:window ~bucket_width:1 ~start:0
  in

  let rng = Rng.create 7 in
  let symbol = "T" in
  for day = 0 to days - 1 do
    Db.advance_clock db day;
    for _ = 1 to 20 do
      let trade = Stock.trade_for rng (if Rng.int rng 3 = 0 then symbol else "IBM") in
      ignore (Db.append db "trades" [ trade ]);
      if Value.equal (Tuple.get trade 0) (Value.Str symbol) then
        Window.add w day (Tuple.get trade 1)
    done;
    Window.advance w day
  done;

  (* Today's periodic view is the one whose 30-day interval ends now. *)
  let today = days - 1 in
  let current_view =
    match Periodic.current family with
    | Some (_, v) -> v
    | None -> failwith "no active window view"
  in
  let from_periodic =
    match View.lookup current_view [ Value.Str symbol ] with
    | Some row -> Value.to_int (Tuple.get row 1)
    | None -> 0
  in
  let from_buffer =
    match Window.total w with Value.Int n -> n | v -> Value.to_int v
  in
  Format.printf "day %d, 30-day volume of %s:@." today symbol;
  Format.printf "  periodic view family : %d shares@." from_periodic;
  Format.printf "  cyclic buffer        : %d shares (%s)@." from_buffer
    (if from_periodic = from_buffer then "agree" else "DISAGREE");
  Format.printf "  buffer rollovers     : %d (one per day, each O(buckets))@."
    (Window.rolls w);
  Format.printf
    "  live interval views  : %d (expiration keeps the infinite calendar \
     bounded)@."
    (Periodic.live_views family);

  (* per-bucket inspection: the paper's "30 numbers" *)
  let buckets = Window.bucket_totals w in
  Format.printf "  last 5 daily sums    : %a@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (List.filteri (fun i _ -> i >= window - 5) buckets)
