(* Consumer banking (§1): the dollar_balance summary field.  An ATM
   withdrawal must see a balance that already reflects every prior
   transaction — the summary view is maintained as part of each append.

   The example contrasts the declarative persistent view with the two
   hand-written procedural maintainers of the baseline library: a
   correct one and one reproducing the Chemical Bank double-posting of
   February 18, 1994 (front page of the New York Times, and the
   paper's motivating disaster).

   Run with: dune exec examples/atm_banking.exe *)

open Relational
open Chronicle_core
open Chronicle_baseline
open Chronicle_workload

let () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"txns" Banking.txn_schema);

  let _balance_view =
    Db.define_view db
      (Sca.define ~name:"balance"
         ~body:(Ca.Chronicle (Db.chronicle db "txns"))
         (Sca.Group_agg
            ( [ "acct" ],
              [ Aggregate.sum "amount" "dollar_balance";
                Aggregate.count_star "txn_count";
                Aggregate.min_ "amount" "largest_withdrawal" ] )))
  in

  let correct = Summary_fields.create_banking () in
  let buggy = Summary_fields.create_banking ~bug:`Chemical_bank () in

  let balance acct =
    match Db.summary db ~view:"balance" [ Value.Int acct ] with
    | Some row -> Value.to_float (Tuple.get row 1)
    | None -> 0.
  in

  let post acct kind amount =
    let tu = Tuple.make [ Value.Int acct; Value.Str kind; Value.Float amount ] in
    ignore (Db.append db "txns" [ tu ]);
    Summary_fields.process correct tu;
    Summary_fields.process buggy tu
  in

  (* An ATM session: deposit paycheck, withdraw cash twice. *)
  post 1 "deposit" 1200.;
  post 1 "withdrawal" (-100.);
  post 1 "withdrawal" (-60.);

  Format.printf "after 3 transactions on account 1:@.";
  Format.printf "  persistent view        : $%.2f@." (balance 1);
  Format.printf "  procedural (correct)   : $%.2f@."
    (Summary_fields.balance correct ~acct:1);
  Format.printf "  procedural (buggy 1994): $%.2f  <- withdrawals double-posted@."
    (Summary_fields.balance buggy ~acct:1);

  (* The authorization check an ATM performs before dispensing: *)
  let requested = 950. in
  Format.printf "@.authorize $%.2f withdrawal?@." requested;
  Format.printf "  view says balance $%.2f -> %s@." (balance 1)
    (if balance 1 >= requested then "approve" else "decline");
  Format.printf "  buggy field says $%.2f -> %s (wrongly bounced: the 1994 \
                 incident)@."
    (Summary_fields.balance buggy ~acct:1)
    (if Summary_fields.balance buggy ~acct:1 >= requested then "approve"
     else "decline");

  (* Scale it up: a day of branch traffic, then verify the view agrees
     with the correct procedural code on every account. *)
  let rng = Rng.create 99 in
  let zipf = Zipf.create ~n:500 ~s:1.0 in
  for _ = 1 to 5_000 do
    let tu = Banking.txn rng zipf in
    ignore (Db.append db "txns" [ tu ]);
    Summary_fields.process correct tu
  done;
  let disagreements = ref 0 in
  for acct = 1 to 500 do
    let v = balance acct and p = Summary_fields.balance correct ~acct in
    if Float.abs (v -. p) > 1e-6 then incr disagreements
  done;
  Format.printf
    "@.after 5000 more transactions: %d disagreements between the view and \
     the correct procedural code across 500 accounts@."
    !disagreements;
  Format.printf
    "the difference: the view needed zero lines of update code and is \
     guaranteed by Theorem 4.4 to cost O(log |V|) per transaction@."
