(* The paper's running example (Examples 2.1 and 2.2): an airline
   frequent-flyer database with a mileage chronicle, a customers
   relation, persistent views for balance / miles flown / premier
   status, the New-Jersey 500-mile bonus via the implicit temporal
   join, and a proactive address change.

   Run with: dune exec examples/frequent_flyer.exe *)

open Relational
open Chronicle_core

let mileage_schema =
  Schema.make
    [ ("acct", Value.TInt); ("flight", Value.TStr); ("miles", Value.TInt) ]

let customer_schema =
  Schema.make
    [ ("cust", Value.TInt); ("name", Value.TStr); ("state", Value.TStr) ]

let post db acct flight miles =
  ignore
    (Db.append db "mileage"
       [ Tuple.make [ Value.Int acct; Value.Str flight; Value.Int miles ] ])

let show_view db name =
  let v = Db.view db name in
  Format.printf "@[<v2>%s:%a@]@." name
    (fun ppf () ->
      View.iter
        (fun row -> Format.fprintf ppf "@,%a" (Tuple.pp_with (View.schema v)) row)
        v)
    ()

(* Premier status (Example 2.1's third view) is a tier function of the
   miles actually flown; deriving it from the maintained sum is O(1). *)
let status_of_miles m =
  if m >= 50_000 then "gold" else if m >= 25_000 then "silver" else "bronze"

let () =
  let db = Db.create () in
  ignore (Db.add_chronicle db ~name:"mileage" mileage_schema);
  let customers =
    Db.add_relation db ~name:"customers" ~schema:customer_schema ~key:[ "cust" ] ()
  in
  Versioned.insert customers
    (Tuple.make [ Value.Int 1; Value.Str "Ada"; Value.Str "NJ" ]);
  Versioned.insert customers
    (Tuple.make [ Value.Int 2; Value.Str "Bob"; Value.Str "NY" ]);

  let chron = Ca.Chronicle (Db.chronicle db "mileage") in
  let joined =
    Ca.KeyJoinRel (chron, Versioned.relation customers, [ ("acct", "cust") ])
  in

  (* View 1 — mileage balance: miles flown plus the 500-mile bonus for
     flights taken while resident in New Jersey.  The bonus eligibility
     is the temporal join of Example 2.2: each flight sees the address
     current at its sequence number. *)
  let nj_flights = Ca.Select (Predicate.("state" =% Value.Str "NJ"), joined) in
  let balance =
    Db.define_view db
      (Sca.define ~name:"balance" ~body:chron
         (Sca.Group_agg ([ "acct" ], [ Aggregate.sum "miles" "balance" ])))
  in
  let nj_bonus =
    Db.define_view db
      (Sca.define ~name:"nj_bonus" ~body:nj_flights
         (Sca.Group_agg ([ "acct" ], [ Aggregate.count_star "bonus_flights" ])))
  in

  (* View 2 — miles actually flown (no bonus), with flight count. *)
  let _flown =
    Db.define_view db
      (Sca.define ~name:"flown" ~body:chron
         (Sca.Group_agg
            ( [ "acct" ],
              [ Aggregate.sum "miles" "flown"; Aggregate.count_star "flights" ] )))
  in

  List.iter
    (fun name ->
      Format.printf "%s is %s@." name
        (Classify.im_class_name (Db.classify_view db name).Classify.view_im))
    [ "balance"; "nj_bonus"; "flown" ];

  (* Ada (NJ) and Bob (NY) fly. *)
  post db 1 "EWR-SFO" 2565;
  post db 2 "JFK-LAX" 2475;
  post db 1 "SFO-EWR" 2565;

  (* Ada moves to California: a proactive update (§2.3).  Flights
     already posted keep their NJ bonus; future flights do not earn it. *)
  Versioned.update_where customers
    Predicate.("cust" =% Value.Int 1)
    (fun _ -> Tuple.make [ Value.Int 1; Value.Str "Ada"; Value.Str "CA" ]);
  post db 1 "LAX-SEA" 954;

  show_view db "flown";
  show_view db "nj_bonus";

  (* The balance including bonuses, and premier status, read in O(1)
     from the persistent views at phone-power-on speed. *)
  Format.printf "@[<v2>statement:" ;
  List.iter
    (fun acct ->
      let flown =
        match Db.summary db ~view:"flown" [ Value.Int acct ] with
        | Some row -> Value.to_int (Tuple.field (View.schema (Db.view db "flown")) row "flown")
        | None -> 0
      in
      let bonus_flights =
        match View.lookup nj_bonus [ Value.Int acct ] with
        | Some row -> Value.to_int (Tuple.get row 1)
        | None -> 0
      in
      let total = flown + (500 * bonus_flights) in
      Format.printf "@,acct %d: %d miles flown, %d NJ bonus flights, balance \
                     %d, status %s"
        acct flown bonus_flights total (status_of_miles flown))
    [ 1; 2 ];
  Format.printf "@]@.";
  ignore balance;

  (* A retroactive address change is refused by the model. *)
  (try
     Versioned.update_where customers ~effective:1
       Predicate.("cust" =% Value.Int 1)
       (fun _ -> Tuple.make [ Value.Int 1; Value.Str "Ada"; Value.Str "TX" ])
   with Versioned.Retroactive_update { effective; watermark } ->
     Format.printf
       "retroactive update rejected: effective sn %d is behind watermark %d@."
       effective watermark)
