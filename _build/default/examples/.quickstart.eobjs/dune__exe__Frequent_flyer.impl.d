examples/frequent_flyer.ml: Aggregate Ca Chronicle_core Classify Db Format List Predicate Relational Sca Schema Tuple Value Versioned View
