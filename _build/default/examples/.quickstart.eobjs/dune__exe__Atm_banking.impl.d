examples/atm_banking.ml: Aggregate Banking Ca Chronicle_baseline Chronicle_core Chronicle_workload Db Float Format Relational Rng Sca Summary_fields Tuple Value Zipf
