examples/frequent_flyer.mli:
