examples/quickstart.mli:
