examples/telephone_billing.mli:
