examples/atm_banking.mli:
