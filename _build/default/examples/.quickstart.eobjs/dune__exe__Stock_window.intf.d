examples/stock_window.mli:
