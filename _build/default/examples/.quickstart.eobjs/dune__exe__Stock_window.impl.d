examples/stock_window.ml: Aggregate Ca Calendar Chronicle_core Chronicle_temporal Chronicle_workload Db Format List Periodic Relational Rng Sca Stock Tuple Value View Window
