examples/fraud_detection.ml: Aggregate Banking Ca Chronicle_core Chronicle_events Chronicle_workload Db Detector Format Pattern Predicate Relational Rng Sca Schema Tuple Value Zipf
