examples/quickstart.ml: Aggregate Ca Chronicle_core Chronicle_lang Classify Db Format List Relational Sca Schema Tuple Value
